# Empty dependencies file for example_design_flow_demo.
# This may be replaced when dependencies are built.
