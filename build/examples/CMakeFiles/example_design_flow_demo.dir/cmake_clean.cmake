file(REMOVE_RECURSE
  "CMakeFiles/example_design_flow_demo.dir/design_flow_demo.cpp.o"
  "CMakeFiles/example_design_flow_demo.dir/design_flow_demo.cpp.o.d"
  "example_design_flow_demo"
  "example_design_flow_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_flow_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
