file(REMOVE_RECURSE
  "CMakeFiles/example_lock_and_attack.dir/lock_and_attack.cpp.o"
  "CMakeFiles/example_lock_and_attack.dir/lock_and_attack.cpp.o.d"
  "example_lock_and_attack"
  "example_lock_and_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lock_and_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
