# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_lock_and_attack.
