# Empty compiler generated dependencies file for example_scan_debug.
# This may be replaced when dependencies are built.
