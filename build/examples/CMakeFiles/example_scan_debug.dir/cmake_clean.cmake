file(REMOVE_RECURSE
  "CMakeFiles/example_scan_debug.dir/scan_debug.cpp.o"
  "CMakeFiles/example_scan_debug.dir/scan_debug.cpp.o.d"
  "example_scan_debug"
  "example_scan_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scan_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
