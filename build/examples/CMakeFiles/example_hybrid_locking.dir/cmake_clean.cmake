file(REMOVE_RECURSE
  "CMakeFiles/example_hybrid_locking.dir/hybrid_locking.cpp.o"
  "CMakeFiles/example_hybrid_locking.dir/hybrid_locking.cpp.o.d"
  "example_hybrid_locking"
  "example_hybrid_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hybrid_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
