# Empty compiler generated dependencies file for example_hybrid_locking.
# This may be replaced when dependencies are built.
