# Empty compiler generated dependencies file for gkll_tests.
# This may be replaced when dependencies are built.
