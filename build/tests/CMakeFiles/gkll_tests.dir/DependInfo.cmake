
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_antisat.cpp" "tests/CMakeFiles/gkll_tests.dir/test_antisat.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_antisat.cpp.o.d"
  "/root/repo/tests/test_appsat.cpp" "tests/CMakeFiles/gkll_tests.dir/test_appsat.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_appsat.cpp.o.d"
  "/root/repo/tests/test_bench_io.cpp" "tests/CMakeFiles/gkll_tests.dir/test_bench_io.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_bench_io.cpp.o.d"
  "/root/repo/tests/test_benchgen.cpp" "tests/CMakeFiles/gkll_tests.dir/test_benchgen.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_benchgen.cpp.o.d"
  "/root/repo/tests/test_cell_library.cpp" "tests/CMakeFiles/gkll_tests.dir/test_cell_library.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_cell_library.cpp.o.d"
  "/root/repo/tests/test_cnf.cpp" "tests/CMakeFiles/gkll_tests.dir/test_cnf.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_cnf.cpp.o.d"
  "/root/repo/tests/test_core_smoke.cpp" "tests/CMakeFiles/gkll_tests.dir/test_core_smoke.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_core_smoke.cpp.o.d"
  "/root/repo/tests/test_cross_validation.cpp" "tests/CMakeFiles/gkll_tests.dir/test_cross_validation.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_cross_validation.cpp.o.d"
  "/root/repo/tests/test_dimacs.cpp" "tests/CMakeFiles/gkll_tests.dir/test_dimacs.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_dimacs.cpp.o.d"
  "/root/repo/tests/test_enhanced_removal.cpp" "tests/CMakeFiles/gkll_tests.dir/test_enhanced_removal.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_enhanced_removal.cpp.o.d"
  "/root/repo/tests/test_enhanced_sat.cpp" "tests/CMakeFiles/gkll_tests.dir/test_enhanced_sat.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_enhanced_sat.cpp.o.d"
  "/root/repo/tests/test_event_sim.cpp" "tests/CMakeFiles/gkll_tests.dir/test_event_sim.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_event_sim.cpp.o.d"
  "/root/repo/tests/test_event_sim_properties.cpp" "tests/CMakeFiles/gkll_tests.dir/test_event_sim_properties.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_event_sim_properties.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/gkll_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_ff_select.cpp" "tests/CMakeFiles/gkll_tests.dir/test_ff_select.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_ff_select.cpp.o.d"
  "/root/repo/tests/test_gk_constraints.cpp" "tests/CMakeFiles/gkll_tests.dir/test_gk_constraints.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_gk_constraints.cpp.o.d"
  "/root/repo/tests/test_gk_encryptor.cpp" "tests/CMakeFiles/gkll_tests.dir/test_gk_encryptor.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_gk_encryptor.cpp.o.d"
  "/root/repo/tests/test_gk_flow.cpp" "tests/CMakeFiles/gkll_tests.dir/test_gk_flow.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_gk_flow.cpp.o.d"
  "/root/repo/tests/test_gk_flow_sweep.cpp" "tests/CMakeFiles/gkll_tests.dir/test_gk_flow_sweep.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_gk_flow_sweep.cpp.o.d"
  "/root/repo/tests/test_glitch_keygate.cpp" "tests/CMakeFiles/gkll_tests.dir/test_glitch_keygate.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_glitch_keygate.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/gkll_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_logic_sim.cpp" "tests/CMakeFiles/gkll_tests.dir/test_logic_sim.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_logic_sim.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/gkll_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_netlist_ops.cpp" "tests/CMakeFiles/gkll_tests.dir/test_netlist_ops.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_netlist_ops.cpp.o.d"
  "/root/repo/tests/test_netlist_opt.cpp" "tests/CMakeFiles/gkll_tests.dir/test_netlist_opt.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_netlist_opt.cpp.o.d"
  "/root/repo/tests/test_oracle.cpp" "tests/CMakeFiles/gkll_tests.dir/test_oracle.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_oracle.cpp.o.d"
  "/root/repo/tests/test_paper_regression.cpp" "tests/CMakeFiles/gkll_tests.dir/test_paper_regression.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_paper_regression.cpp.o.d"
  "/root/repo/tests/test_placement.cpp" "tests/CMakeFiles/gkll_tests.dir/test_placement.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_placement.cpp.o.d"
  "/root/repo/tests/test_removal_attack.cpp" "tests/CMakeFiles/gkll_tests.dir/test_removal_attack.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_removal_attack.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/gkll_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sarlock.cpp" "tests/CMakeFiles/gkll_tests.dir/test_sarlock.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_sarlock.cpp.o.d"
  "/root/repo/tests/test_sat_attack.cpp" "tests/CMakeFiles/gkll_tests.dir/test_sat_attack.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_sat_attack.cpp.o.d"
  "/root/repo/tests/test_sat_solver.cpp" "tests/CMakeFiles/gkll_tests.dir/test_sat_solver.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_sat_solver.cpp.o.d"
  "/root/repo/tests/test_scan_attack.cpp" "tests/CMakeFiles/gkll_tests.dir/test_scan_attack.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_scan_attack.cpp.o.d"
  "/root/repo/tests/test_scan_chain.cpp" "tests/CMakeFiles/gkll_tests.dir/test_scan_chain.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_scan_chain.cpp.o.d"
  "/root/repo/tests/test_sensitization.cpp" "tests/CMakeFiles/gkll_tests.dir/test_sensitization.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_sensitization.cpp.o.d"
  "/root/repo/tests/test_solver_properties.cpp" "tests/CMakeFiles/gkll_tests.dir/test_solver_properties.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_solver_properties.cpp.o.d"
  "/root/repo/tests/test_sta.cpp" "tests/CMakeFiles/gkll_tests.dir/test_sta.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_sta.cpp.o.d"
  "/root/repo/tests/test_synth.cpp" "tests/CMakeFiles/gkll_tests.dir/test_synth.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_synth.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/gkll_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_tdk.cpp" "tests/CMakeFiles/gkll_tests.dir/test_tdk.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_tdk.cpp.o.d"
  "/root/repo/tests/test_variant_b.cpp" "tests/CMakeFiles/gkll_tests.dir/test_variant_b.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_variant_b.cpp.o.d"
  "/root/repo/tests/test_vcd.cpp" "tests/CMakeFiles/gkll_tests.dir/test_vcd.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_vcd.cpp.o.d"
  "/root/repo/tests/test_waveform.cpp" "tests/CMakeFiles/gkll_tests.dir/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_waveform.cpp.o.d"
  "/root/repo/tests/test_withholding.cpp" "tests/CMakeFiles/gkll_tests.dir/test_withholding.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_withholding.cpp.o.d"
  "/root/repo/tests/test_withholding_deep.cpp" "tests/CMakeFiles/gkll_tests.dir/test_withholding_deep.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_withholding_deep.cpp.o.d"
  "/root/repo/tests/test_xor_lock.cpp" "tests/CMakeFiles/gkll_tests.dir/test_xor_lock.cpp.o" "gcc" "tests/CMakeFiles/gkll_tests.dir/test_xor_lock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gkll.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
