# Empty dependencies file for bench_enhanced_sat.
# This may be replaced when dependencies are built.
