file(REMOVE_RECURSE
  "../bench/bench_enhanced_sat"
  "../bench/bench_enhanced_sat.pdb"
  "CMakeFiles/bench_enhanced_sat.dir/bench_enhanced_sat.cpp.o"
  "CMakeFiles/bench_enhanced_sat.dir/bench_enhanced_sat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enhanced_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
