# Empty dependencies file for bench_removal_attack.
# This may be replaced when dependencies are built.
