file(REMOVE_RECURSE
  "../bench/bench_removal_attack"
  "../bench/bench_removal_attack.pdb"
  "CMakeFiles/bench_removal_attack.dir/bench_removal_attack.cpp.o"
  "CMakeFiles/bench_removal_attack.dir/bench_removal_attack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_removal_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
