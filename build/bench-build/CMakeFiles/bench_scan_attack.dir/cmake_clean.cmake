file(REMOVE_RECURSE
  "../bench/bench_scan_attack"
  "../bench/bench_scan_attack.pdb"
  "CMakeFiles/bench_scan_attack.dir/bench_scan_attack.cpp.o"
  "CMakeFiles/bench_scan_attack.dir/bench_scan_attack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scan_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
