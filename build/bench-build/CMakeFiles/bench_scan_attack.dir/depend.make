# Empty dependencies file for bench_scan_attack.
# This may be replaced when dependencies are built.
