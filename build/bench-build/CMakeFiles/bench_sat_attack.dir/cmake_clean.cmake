file(REMOVE_RECURSE
  "../bench/bench_sat_attack"
  "../bench/bench_sat_attack.pdb"
  "CMakeFiles/bench_sat_attack.dir/bench_sat_attack.cpp.o"
  "CMakeFiles/bench_sat_attack.dir/bench_sat_attack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sat_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
