file(REMOVE_RECURSE
  "../bench/bench_fig2_tdk"
  "../bench/bench_fig2_tdk.pdb"
  "CMakeFiles/bench_fig2_tdk.dir/bench_fig2_tdk.cpp.o"
  "CMakeFiles/bench_fig2_tdk.dir/bench_fig2_tdk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_tdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
