# Empty dependencies file for bench_fig2_tdk.
# This may be replaced when dependencies are built.
