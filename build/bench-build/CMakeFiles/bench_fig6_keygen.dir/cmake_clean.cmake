file(REMOVE_RECURSE
  "../bench/bench_fig6_keygen"
  "../bench/bench_fig6_keygen.pdb"
  "CMakeFiles/bench_fig6_keygen.dir/bench_fig6_keygen.cpp.o"
  "CMakeFiles/bench_fig6_keygen.dir/bench_fig6_keygen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_keygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
