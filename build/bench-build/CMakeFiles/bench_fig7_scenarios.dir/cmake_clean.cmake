file(REMOVE_RECURSE
  "../bench/bench_fig7_scenarios"
  "../bench/bench_fig7_scenarios.pdb"
  "CMakeFiles/bench_fig7_scenarios.dir/bench_fig7_scenarios.cpp.o"
  "CMakeFiles/bench_fig7_scenarios.dir/bench_fig7_scenarios.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
