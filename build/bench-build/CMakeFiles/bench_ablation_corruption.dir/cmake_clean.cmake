file(REMOVE_RECURSE
  "../bench/bench_ablation_corruption"
  "../bench/bench_ablation_corruption.pdb"
  "CMakeFiles/bench_ablation_corruption.dir/bench_ablation_corruption.cpp.o"
  "CMakeFiles/bench_ablation_corruption.dir/bench_ablation_corruption.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_corruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
