file(REMOVE_RECURSE
  "../bench/bench_fig1_xorlock"
  "../bench/bench_fig1_xorlock.pdb"
  "CMakeFiles/bench_fig1_xorlock.dir/bench_fig1_xorlock.cpp.o"
  "CMakeFiles/bench_fig1_xorlock.dir/bench_fig1_xorlock.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_xorlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
