# Empty compiler generated dependencies file for bench_fig1_xorlock.
# This may be replaced when dependencies are built.
