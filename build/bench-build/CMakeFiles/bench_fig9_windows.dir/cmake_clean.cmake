file(REMOVE_RECURSE
  "../bench/bench_fig9_windows"
  "../bench/bench_fig9_windows.pdb"
  "CMakeFiles/bench_fig9_windows.dir/bench_fig9_windows.cpp.o"
  "CMakeFiles/bench_fig9_windows.dir/bench_fig9_windows.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
