file(REMOVE_RECURSE
  "../bench/bench_sat_micro"
  "../bench/bench_sat_micro.pdb"
  "CMakeFiles/bench_sat_micro.dir/bench_sat_micro.cpp.o"
  "CMakeFiles/bench_sat_micro.dir/bench_sat_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sat_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
