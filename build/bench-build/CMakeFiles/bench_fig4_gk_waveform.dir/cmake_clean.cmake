file(REMOVE_RECURSE
  "../bench/bench_fig4_gk_waveform"
  "../bench/bench_fig4_gk_waveform.pdb"
  "CMakeFiles/bench_fig4_gk_waveform.dir/bench_fig4_gk_waveform.cpp.o"
  "CMakeFiles/bench_fig4_gk_waveform.dir/bench_fig4_gk_waveform.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_gk_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
