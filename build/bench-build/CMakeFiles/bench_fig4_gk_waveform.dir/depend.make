# Empty dependencies file for bench_fig4_gk_waveform.
# This may be replaced when dependencies are built.
