# Empty dependencies file for bench_appsat.
# This may be replaced when dependencies are built.
