file(REMOVE_RECURSE
  "../bench/bench_appsat"
  "../bench/bench_appsat.pdb"
  "CMakeFiles/bench_appsat.dir/bench_appsat.cpp.o"
  "CMakeFiles/bench_appsat.dir/bench_appsat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
