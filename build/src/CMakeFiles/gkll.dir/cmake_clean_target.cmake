file(REMOVE_RECURSE
  "libgkll.a"
)
