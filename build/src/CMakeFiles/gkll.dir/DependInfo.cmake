
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/appsat.cpp" "src/CMakeFiles/gkll.dir/attack/appsat.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/attack/appsat.cpp.o.d"
  "/root/repo/src/attack/enhanced_removal.cpp" "src/CMakeFiles/gkll.dir/attack/enhanced_removal.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/attack/enhanced_removal.cpp.o.d"
  "/root/repo/src/attack/enhanced_sat.cpp" "src/CMakeFiles/gkll.dir/attack/enhanced_sat.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/attack/enhanced_sat.cpp.o.d"
  "/root/repo/src/attack/oracle.cpp" "src/CMakeFiles/gkll.dir/attack/oracle.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/attack/oracle.cpp.o.d"
  "/root/repo/src/attack/removal_attack.cpp" "src/CMakeFiles/gkll.dir/attack/removal_attack.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/attack/removal_attack.cpp.o.d"
  "/root/repo/src/attack/sat_attack.cpp" "src/CMakeFiles/gkll.dir/attack/sat_attack.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/attack/sat_attack.cpp.o.d"
  "/root/repo/src/attack/scan_attack.cpp" "src/CMakeFiles/gkll.dir/attack/scan_attack.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/attack/scan_attack.cpp.o.d"
  "/root/repo/src/attack/sensitization.cpp" "src/CMakeFiles/gkll.dir/attack/sensitization.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/attack/sensitization.cpp.o.d"
  "/root/repo/src/benchgen/synthetic_bench.cpp" "src/CMakeFiles/gkll.dir/benchgen/synthetic_bench.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/benchgen/synthetic_bench.cpp.o.d"
  "/root/repo/src/core/gk_encryptor.cpp" "src/CMakeFiles/gkll.dir/core/gk_encryptor.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/core/gk_encryptor.cpp.o.d"
  "/root/repo/src/flow/ff_select.cpp" "src/CMakeFiles/gkll.dir/flow/ff_select.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/flow/ff_select.cpp.o.d"
  "/root/repo/src/flow/gk_flow.cpp" "src/CMakeFiles/gkll.dir/flow/gk_flow.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/flow/gk_flow.cpp.o.d"
  "/root/repo/src/flow/placement.cpp" "src/CMakeFiles/gkll.dir/flow/placement.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/flow/placement.cpp.o.d"
  "/root/repo/src/flow/scan_chain.cpp" "src/CMakeFiles/gkll.dir/flow/scan_chain.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/flow/scan_chain.cpp.o.d"
  "/root/repo/src/flow/synth.cpp" "src/CMakeFiles/gkll.dir/flow/synth.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/flow/synth.cpp.o.d"
  "/root/repo/src/lock/antisat.cpp" "src/CMakeFiles/gkll.dir/lock/antisat.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/lock/antisat.cpp.o.d"
  "/root/repo/src/lock/glitch_keygate.cpp" "src/CMakeFiles/gkll.dir/lock/glitch_keygate.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/lock/glitch_keygate.cpp.o.d"
  "/root/repo/src/lock/locking.cpp" "src/CMakeFiles/gkll.dir/lock/locking.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/lock/locking.cpp.o.d"
  "/root/repo/src/lock/sarlock.cpp" "src/CMakeFiles/gkll.dir/lock/sarlock.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/lock/sarlock.cpp.o.d"
  "/root/repo/src/lock/tdk.cpp" "src/CMakeFiles/gkll.dir/lock/tdk.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/lock/tdk.cpp.o.d"
  "/root/repo/src/lock/withholding.cpp" "src/CMakeFiles/gkll.dir/lock/withholding.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/lock/withholding.cpp.o.d"
  "/root/repo/src/lock/xor_lock.cpp" "src/CMakeFiles/gkll.dir/lock/xor_lock.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/lock/xor_lock.cpp.o.d"
  "/root/repo/src/netlist/bench_io.cpp" "src/CMakeFiles/gkll.dir/netlist/bench_io.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/netlist/bench_io.cpp.o.d"
  "/root/repo/src/netlist/cell_library.cpp" "src/CMakeFiles/gkll.dir/netlist/cell_library.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/netlist/cell_library.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/gkll.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/netlist_ops.cpp" "src/CMakeFiles/gkll.dir/netlist/netlist_ops.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/netlist/netlist_ops.cpp.o.d"
  "/root/repo/src/netlist/netlist_opt.cpp" "src/CMakeFiles/gkll.dir/netlist/netlist_opt.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/netlist/netlist_opt.cpp.o.d"
  "/root/repo/src/sat/cnf.cpp" "src/CMakeFiles/gkll.dir/sat/cnf.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/sat/cnf.cpp.o.d"
  "/root/repo/src/sat/dimacs.cpp" "src/CMakeFiles/gkll.dir/sat/dimacs.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/sat/dimacs.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "src/CMakeFiles/gkll.dir/sat/solver.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/sat/solver.cpp.o.d"
  "/root/repo/src/sim/event_sim.cpp" "src/CMakeFiles/gkll.dir/sim/event_sim.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/sim/event_sim.cpp.o.d"
  "/root/repo/src/sim/logic_sim.cpp" "src/CMakeFiles/gkll.dir/sim/logic_sim.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/sim/logic_sim.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/CMakeFiles/gkll.dir/sim/vcd.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/sim/vcd.cpp.o.d"
  "/root/repo/src/sim/waveform.cpp" "src/CMakeFiles/gkll.dir/sim/waveform.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/sim/waveform.cpp.o.d"
  "/root/repo/src/timing/gk_constraints.cpp" "src/CMakeFiles/gkll.dir/timing/gk_constraints.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/timing/gk_constraints.cpp.o.d"
  "/root/repo/src/timing/sta.cpp" "src/CMakeFiles/gkll.dir/timing/sta.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/timing/sta.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/gkll.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/gkll.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/gkll.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
