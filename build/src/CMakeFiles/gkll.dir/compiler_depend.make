# Empty compiler generated dependencies file for gkll.
# This may be replaced when dependencies are built.
