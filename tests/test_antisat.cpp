#include "lock/antisat.h"

#include <gtest/gtest.h>

#include "attack/removal_attack.h"
#include "benchgen/synthetic_bench.h"
#include "sat/cnf.h"
#include "sim/logic_sim.h"

namespace gkll {
namespace {

TEST(AntiSat, CorrectKeyRestoresFunction) {
  const Netlist orig = makeC17();
  const LockedDesign ld = antiSatLock(orig, AntiSatOptions{3, 21});
  ASSERT_EQ(ld.keyInputs.size(), 6u);  // 2n bits
  const Netlist unlocked = applyKey(ld.netlist, ld.keyInputs, ld.correctKey);
  EXPECT_TRUE(sat::checkEquivalence(unlocked, orig).equivalent);
}

TEST(AntiSat, AnyEqualKeyHalvesIsCorrect) {
  // The Anti-SAT correctness condition is KA == KB, not a unique vector:
  // g(X^K) & !g(X^K) == 0 for every K.
  const Netlist orig = makeC17();
  const LockedDesign ld = antiSatLock(orig, AntiSatOptions{3, 22});
  for (int k = 0; k < 8; ++k) {
    std::vector<int> bits;
    for (int b = 0; b < 3; ++b) bits.push_back((k >> b) & 1);
    std::vector<int> full = bits;
    full.insert(full.end(), bits.begin(), bits.end());  // KA == KB
    const Netlist unlocked = applyKey(ld.netlist, ld.keyInputs, full);
    EXPECT_TRUE(sat::checkEquivalence(unlocked, orig).equivalent) << k;
  }
}

TEST(AntiSat, UnequalHalvesCorruptRarely) {
  // Wrong keys (KA != KB) flip the output on few input patterns — the
  // low-corruptibility property that throttles the SAT attack.
  const Netlist orig = makeC17();
  const LockedDesign ld = antiSatLock(orig, AntiSatOptions{3, 23});
  std::vector<int> bits = ld.correctKey;
  bits[0] ^= 1;  // KA != KB now
  const Netlist unlocked = applyKey(ld.netlist, ld.keyInputs, bits);
  int corrupted = 0;
  for (int m = 0; m < 32; ++m) {
    std::vector<Logic> in;
    for (int b = 0; b < 5; ++b) in.push_back(logicFromBool((m >> b) & 1));
    const auto a = outputValues(orig, evalCombinational(orig, in));
    const auto c = outputValues(unlocked, evalCombinational(unlocked, in));
    if (a != c) ++corrupted;
  }
  EXPECT_GT(corrupted, 0);
  EXPECT_LE(corrupted, 8);  // a small fraction of the 32 patterns
}

TEST(AntiSat, BlockOutputIsSkewedTowardsZero) {
  const Netlist orig = makeC17();
  const LockedDesign ld = antiSatLock(orig, AntiSatOptions{4, 24});
  const auto prob = estimateSignalProbabilities(ld.netlist, 4096, 99);
  const NetId y = *ld.netlist.findNet("antisat_y");
  EXPECT_LT(prob[y], 0.12);  // ~2^-n with random keys
}

TEST(AntiSat, DeterministicForSeed) {
  const Netlist orig = makeC17();
  EXPECT_EQ(antiSatLock(orig, AntiSatOptions{3, 5}).correctKey,
            antiSatLock(orig, AntiSatOptions{3, 5}).correctKey);
}

}  // namespace
}  // namespace gkll
