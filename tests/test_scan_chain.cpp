#include "flow/scan_chain.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "flow/gk_flow.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace gkll {
namespace {

TEST(InsertScanChain, Structure) {
  Netlist nl = makeToySeq();
  const std::size_t pis = nl.inputs().size();
  const std::size_t cells = nl.stats().numCells;
  const ScanChain chain = insertScanChain(nl);
  EXPECT_EQ(chain.order.size(), 4u);
  EXPECT_EQ(chain.muxes.size(), 4u);
  EXPECT_EQ(nl.inputs().size(), pis + 2);          // scan_en, scan_in
  EXPECT_EQ(nl.stats().numCells, cells + 4);       // one MUX per flop
  EXPECT_TRUE(nl.isPO(chain.scanOut));
  // Chain connectivity: mux[i] shift input is flop[i-1]'s Q.
  for (std::size_t i = 1; i < chain.order.size(); ++i) {
    const Gate& mux = nl.gate(chain.muxes[i]);
    EXPECT_EQ(mux.fanin[2], nl.gate(chain.order[i - 1]).out);
  }
  EXPECT_EQ(nl.gate(chain.muxes[0]).fanin[2], chain.scanIn);
}

TEST(InsertScanChain, ExclusionKeepsFlopsOffChain) {
  Netlist nl = makeToySeq();
  const GateId keep = nl.flops()[1];
  const ScanChain chain = insertScanChain(nl, {keep});
  EXPECT_EQ(chain.order.size(), 3u);
  EXPECT_EQ(std::count(chain.order.begin(), chain.order.end(), keep), 0);
  // The excluded flop's D pin is untouched (no scan mux).
  const GateId d = nl.net(nl.gate(keep).fanin[0]).driver;
  EXPECT_NE(nl.gate(d).kind, CellKind::kMux2);
}

TEST(InsertScanChain, FunctionalModePreservesBehaviour) {
  // With scan_en = 0 the chained circuit steps exactly like the original.
  Netlist plain = makeToySeq();
  Netlist scanned = makeToySeq();
  insertScanChain(scanned);
  SequentialSim a(plain), b(scanned);
  a.reset();
  b.reset();
  for (int cyc = 0; cyc < 12; ++cyc) {
    const Logic en = logicFromBool(cyc % 3 != 0);
    const auto oa = a.step({en});
    // scanned inputs: en, scan_en=0, scan_in=0.
    const auto ob = b.step({en, Logic::F, Logic::F});
    for (std::size_t i = 0; i < oa.size(); ++i) EXPECT_EQ(ob[i], oa[i]);
  }
}

TEST(InsertScanChain, ShiftModeMakesAShiftRegister) {
  Netlist nl = makeToySeq();
  insertScanChain(nl);
  SequentialSim sim(nl);
  sim.reset();
  // Shift 1,0,1,1 in; after 4 cycles the state is exactly that pattern.
  const Logic bits[] = {Logic::T, Logic::F, Logic::T, Logic::T};
  for (const Logic b : bits) sim.step({Logic::F, Logic::T, b});
  // bit fed first ends deepest in the chain.
  EXPECT_EQ(sim.state()[3], bits[0]);
  EXPECT_EQ(sim.state()[2], bits[1]);
  EXPECT_EQ(sim.state()[1], bits[2]);
  EXPECT_EQ(sim.state()[0], bits[3]);
}

TEST(ScanSession, MatchesZeroDelayCaptureOnPlainCircuit) {
  Netlist nl = makeToySeq();
  const ScanChain chain = insertScanChain(nl);
  Rng rng(12);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<Logic> state(4);
    for (Logic& v : state) v = logicFromBool(rng.flip());
    const std::vector<Logic> pi{logicFromBool(rng.flip())};

    ScanSessionConfig cfg;
    const ScanSessionResult r = runScanSession(nl, chain, state, pi, cfg);
    EXPECT_EQ(r.violations, 0);

    // Reference: one functional step of the original circuit.
    const Netlist orig = makeToySeq();
    SequentialSim ref(orig);
    ref.setState(state);
    ref.step(pi);
    ASSERT_EQ(r.captured.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_EQ(r.captured[i], ref.state()[i]) << "trial " << trial;
  }
}

TEST(ScanSession, GkCapturesCorrectlyThroughScan) {
  // The money test: a GK-locked design with an (unscanned-KEYGEN) scan
  // chain captures the *true* data through the glitch — validating the
  // TimingOracle's scan abstraction against a physically simulated
  // shift-in / capture / shift-out sequence.
  const Netlist orig = makeToySeq();
  GkFlowOptions opt;
  opt.numGks = 1;
  opt.clockPeriod = ns(8);
  GkFlowResult locked = runGkFlow(orig, opt);
  ASSERT_EQ(locked.insertions.size(), 1u);
  ASSERT_TRUE(locked.verify.ok());

  Netlist nl = locked.design.netlist;  // copy we may edit
  std::vector<GateId> keygenFfs;
  for (const GkInsertion& ins : locked.insertions)
    keygenFfs.push_back(ins.keygen.toggleFf);
  const ScanChain chain = insertScanChain(nl, keygenFfs);
  ASSERT_EQ(chain.order.size(), orig.flops().size());

  ScanSessionConfig cfg;
  cfg.clockPeriod = locked.clockPeriod;
  cfg.clockArrival = locked.clockArrival;
  cfg.keyInputs = locked.design.keyInputs;
  cfg.keyValues = locked.design.correctKey;

  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Logic> state(orig.flops().size());
    for (Logic& v : state) v = logicFromBool(rng.flip());
    const std::vector<Logic> pi{logicFromBool(rng.flip())};

    const ScanSessionResult r = runScanSession(nl, chain, state, pi, cfg);
    EXPECT_EQ(r.violations, 0) << "trial " << trial;

    SequentialSim ref(orig);
    ref.setState(state);
    ref.step(pi);
    for (std::size_t i = 0; i < state.size(); ++i)
      EXPECT_EQ(r.captured[i], ref.state()[i])
          << "trial " << trial << " flop " << i;
  }
}

}  // namespace
}  // namespace gkll
