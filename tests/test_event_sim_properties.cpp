// Event-simulator physics properties: pulse erosion, polarity tracking
// through inverting chains, capture-edge boundary semantics, and the
// glitch arithmetic the GK's security rests on.
#include <gtest/gtest.h>

#include "netlist/netlist.h"
#include "sim/event_sim.h"
#include "sim/waveform.h"

namespace gkll {
namespace {

const CellLibrary& lib() { return CellLibrary::tsmc013c(); }

/// Parameterised over chain length: a pulse through N inverters (even N)
/// erodes by the rise/fall asymmetry per stage and inverts per stage.
class PulseChain : public testing::TestWithParam<int> {};

TEST_P(PulseChain, ErosionIsLinearInStages) {
  const int stages = GetParam();
  Netlist nl;
  const NetId a = nl.addPI("a");
  NetId cur = a;
  for (int i = 0; i < stages; ++i) {
    const NetId next = nl.addNet();
    nl.addGate(CellKind::kInv, {cur}, next);
    cur = next;
  }
  nl.markPO(cur);

  EventSimConfig cfg;
  cfg.simTime = ns(6);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::F);
  const Ps width = 400;
  sim.drive(a, ns(1), Logic::T);
  sim.drive(a, ns(1) + width, Logic::F);
  sim.run();

  const auto g = glitches(sim.wave(cur), 0, ns(6), ns(1));
  ASSERT_EQ(g.size(), 1u) << stages << " stages";
  // A high pulse through an inverter pair shrinks by (rise - fall) per
  // inverter *pair*; individual stages alternate polarity, and the net
  // erosion over an even chain is stages/2 * (rise+fall - fall-rise)...
  // measured directly: each INV delays the leading edge by its output
  // transition delay.  For even chains the pulse polarity is preserved.
  EXPECT_EQ(g[0].level, (stages % 2 == 0) ? Logic::T : Logic::F);
  // Erosion bound: no more than the total rise/fall asymmetry.
  const Ps asym = lib().info(CellKind::kInv).rise - lib().info(CellKind::kInv).fall;
  EXPECT_LE(std::abs(static_cast<long long>(g[0].width() - width)),
            static_cast<long long>(stages) * asym);
}

INSTANTIATE_TEST_SUITE_P(Chains, PulseChain, testing::Values(2, 4, 6, 8, 10));

TEST(EventSimProperties, GlitchLengthTracksDelayElementExactly) {
  // For a GK-style structure the glitch width equals the delay element
  // plus the function-gate delay, to within the rise/fall spread — the
  // relation the flow's Eq. (2) bookkeeping depends on.
  for (const Ps element : {Ps{500}, Ps{912}, Ps{1500}, Ps{2500}}) {
    Netlist nl;
    const NetId x = nl.addPI("x");
    const NetId key = nl.addPI("key");
    const NetId del = nl.addNet("del");
    nl.addDelay(key, del, element);
    const NetId up = nl.addNet("up");
    nl.addGate(CellKind::kXnor2, {x, del}, up);
    const NetId lo = nl.addNet("lo");
    const NetId del2 = nl.addNet("del2");
    nl.addDelay(key, del2, element);
    nl.addGate(CellKind::kXor2, {x, del2}, lo);
    const NetId y = nl.addNet("y");
    nl.addGate(CellKind::kMux2, {key, up, lo}, y);
    nl.markPO(y);

    EventSimConfig cfg;
    cfg.simTime = ns(10);
    cfg.clockedFlops = false;
    EventSim sim(nl, cfg);
    sim.setInitialInput(x, Logic::T);
    sim.setInitialInput(key, Logic::F);
    sim.drive(key, ns(4), Logic::T);
    sim.run();
    const auto g = glitches(sim.wave(y), 0, ns(10), ns(4));
    ASSERT_EQ(g.size(), 1u) << element;
    EXPECT_NEAR(static_cast<double>(g[0].width()),
                static_cast<double>(element + lib().info(CellKind::kXor2).rise),
                10.0)
        << element;
  }
}

TEST(EventSimProperties, CaptureConsumesPreEdgeValueExactly) {
  // A D change arriving exactly Tsu before the edge is captured; one that
  // lands inside the open window poisons; one right after the edge+hold
  // waits for the next cycle.
  struct Case {
    Ps offset;  // change time relative to the 4 ns edge
    Logic expectQ1;
    int expectViolations;
  };
  const Case cases[] = {
      {-lib().setupTime(), Logic::T, 0},      // on the setup boundary: legal
      {-lib().setupTime() + 1, Logic::X, 1},  // inside: violation
      {+lib().holdTime(), Logic::F, 0},       // on the hold boundary: legal
      {+lib().holdTime() - 1, Logic::X, 1},   // inside: violation
  };
  for (const Case& c : cases) {
    Netlist nl;
    const NetId d = nl.addPI("d");
    const NetId q = nl.addNet("q");
    nl.addGate(CellKind::kDff, {d}, q);
    nl.markPO(q);
    EventSimConfig cfg;
    cfg.clockPeriod = ns(4);
    cfg.simTime = ns(6);
    EventSim sim(nl, cfg);
    sim.setInitialInput(d, Logic::F);
    sim.drive(d, ns(4) + c.offset, Logic::T);
    sim.run();
    EXPECT_EQ(sim.valueAt(q, ns(4) + lib().clkToQ() + 10), c.expectQ1)
        << "offset " << c.offset;
    EXPECT_EQ(static_cast<int>(sim.violations().size()), c.expectViolations)
        << "offset " << c.offset;
  }
}

TEST(EventSimProperties, TotalEventsScaleWithActivity) {
  // Doubling the number of input toggles at least doubles recorded events
  // on a pass-through chain (sanity for the activity metric).
  auto run = [&](int toggles) {
    Netlist nl;
    const NetId a = nl.addPI("a");
    const NetId y = nl.addNet("y");
    nl.addGate(CellKind::kBuf, {a}, y);
    nl.markPO(y);
    EventSimConfig cfg;
    cfg.simTime = ns(100);
    cfg.clockedFlops = false;
    EventSim sim(nl, cfg);
    Logic v = Logic::F;
    sim.setInitialInput(a, v);
    for (int i = 1; i <= toggles; ++i) {
      v = logicNot(v);
      sim.drive(a, i * ns(2), v);
    }
    sim.run();
    return sim.totalEvents();
  };
  EXPECT_EQ(run(10), 20u);
  EXPECT_EQ(run(20), 40u);
}

TEST(EventSimProperties, ReconvergentGlitchGeneration) {
  // The textbook hazard: XOR(a, INV(INV(a))) emits a pulse on every input
  // edge because the reconvergent paths race — transport delay must show
  // it (an inertial model would hide shorter-than-delay hazards).
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId n1 = nl.addNet("n1");
  nl.addGate(CellKind::kInv, {a}, n1);
  const NetId n2 = nl.addNet("n2");
  nl.addGate(CellKind::kInv, {n1}, n2);
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kXor2, {a, n2}, y);
  nl.markPO(y);

  EventSimConfig cfg;
  cfg.simTime = ns(4);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::F);
  sim.drive(a, ns(1), Logic::T);
  sim.run();
  const auto g = glitches(sim.wave(y), 0, ns(4), ns(1));
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].level, Logic::T);
  // Hazard width ~= the two-inverter detour delay.
  EXPECT_NEAR(static_cast<double>(g[0].width()),
              static_cast<double>(lib().info(CellKind::kInv).fall +
                                  lib().info(CellKind::kInv).rise),
              15.0);
}

}  // namespace
}  // namespace gkll
