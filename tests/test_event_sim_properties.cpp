// Event-simulator physics properties: pulse erosion, polarity tracking
// through inverting chains, capture-edge boundary semantics, the glitch
// arithmetic the GK's security rests on, and the session/scheduler
// equivalence properties of the reusable simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "netlist/compiled.h"
#include "netlist/netlist.h"
#include "sim/event_sim.h"
#include "sim/waveform.h"
#include "util/rng.h"

namespace gkll {
namespace {

const CellLibrary& lib() { return CellLibrary::tsmc013c(); }

/// Parameterised over chain length: a pulse through N inverters (even N)
/// erodes by the rise/fall asymmetry per stage and inverts per stage.
class PulseChain : public testing::TestWithParam<int> {};

TEST_P(PulseChain, ErosionIsLinearInStages) {
  const int stages = GetParam();
  Netlist nl;
  const NetId a = nl.addPI("a");
  NetId cur = a;
  for (int i = 0; i < stages; ++i) {
    const NetId next = nl.addNet();
    nl.addGate(CellKind::kInv, {cur}, next);
    cur = next;
  }
  nl.markPO(cur);

  EventSimConfig cfg;
  cfg.simTime = ns(6);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::F);
  const Ps width = 400;
  sim.drive(a, ns(1), Logic::T);
  sim.drive(a, ns(1) + width, Logic::F);
  sim.run();

  const auto g = glitches(sim.wave(cur), 0, ns(6), ns(1));
  ASSERT_EQ(g.size(), 1u) << stages << " stages";
  // A high pulse through an inverter pair shrinks by (rise - fall) per
  // inverter *pair*; individual stages alternate polarity, and the net
  // erosion over an even chain is stages/2 * (rise+fall - fall-rise)...
  // measured directly: each INV delays the leading edge by its output
  // transition delay.  For even chains the pulse polarity is preserved.
  EXPECT_EQ(g[0].level, (stages % 2 == 0) ? Logic::T : Logic::F);
  // Erosion bound: no more than the total rise/fall asymmetry.
  const Ps asym = lib().info(CellKind::kInv).rise - lib().info(CellKind::kInv).fall;
  EXPECT_LE(std::abs(static_cast<long long>(g[0].width() - width)),
            static_cast<long long>(stages) * asym);
}

INSTANTIATE_TEST_SUITE_P(Chains, PulseChain, testing::Values(2, 4, 6, 8, 10));

TEST(EventSimProperties, GlitchLengthTracksDelayElementExactly) {
  // For a GK-style structure the glitch width equals the delay element
  // plus the function-gate delay, to within the rise/fall spread — the
  // relation the flow's Eq. (2) bookkeeping depends on.
  for (const Ps element : {Ps{500}, Ps{912}, Ps{1500}, Ps{2500}}) {
    Netlist nl;
    const NetId x = nl.addPI("x");
    const NetId key = nl.addPI("key");
    const NetId del = nl.addNet("del");
    nl.addDelay(key, del, element);
    const NetId up = nl.addNet("up");
    nl.addGate(CellKind::kXnor2, {x, del}, up);
    const NetId lo = nl.addNet("lo");
    const NetId del2 = nl.addNet("del2");
    nl.addDelay(key, del2, element);
    nl.addGate(CellKind::kXor2, {x, del2}, lo);
    const NetId y = nl.addNet("y");
    nl.addGate(CellKind::kMux2, {key, up, lo}, y);
    nl.markPO(y);

    EventSimConfig cfg;
    cfg.simTime = ns(10);
    cfg.clockedFlops = false;
    EventSim sim(nl, cfg);
    sim.setInitialInput(x, Logic::T);
    sim.setInitialInput(key, Logic::F);
    sim.drive(key, ns(4), Logic::T);
    sim.run();
    const auto g = glitches(sim.wave(y), 0, ns(10), ns(4));
    ASSERT_EQ(g.size(), 1u) << element;
    EXPECT_NEAR(static_cast<double>(g[0].width()),
                static_cast<double>(element + lib().info(CellKind::kXor2).rise),
                10.0)
        << element;
  }
}

TEST(EventSimProperties, CaptureConsumesPreEdgeValueExactly) {
  // A D change arriving exactly Tsu before the edge is captured; one that
  // lands inside the open window poisons; one right after the edge+hold
  // waits for the next cycle.
  struct Case {
    Ps offset;  // change time relative to the 4 ns edge
    Logic expectQ1;
    int expectViolations;
  };
  const Case cases[] = {
      {-lib().setupTime(), Logic::T, 0},      // on the setup boundary: legal
      {-lib().setupTime() + 1, Logic::X, 1},  // inside: violation
      {+lib().holdTime(), Logic::F, 0},       // on the hold boundary: legal
      {+lib().holdTime() - 1, Logic::X, 1},   // inside: violation
  };
  for (const Case& c : cases) {
    Netlist nl;
    const NetId d = nl.addPI("d");
    const NetId q = nl.addNet("q");
    nl.addGate(CellKind::kDff, {d}, q);
    nl.markPO(q);
    EventSimConfig cfg;
    cfg.clockPeriod = ns(4);
    cfg.simTime = ns(6);
    EventSim sim(nl, cfg);
    sim.setInitialInput(d, Logic::F);
    sim.drive(d, ns(4) + c.offset, Logic::T);
    sim.run();
    EXPECT_EQ(sim.valueAt(q, ns(4) + lib().clkToQ() + 10), c.expectQ1)
        << "offset " << c.offset;
    EXPECT_EQ(static_cast<int>(sim.violations().size()), c.expectViolations)
        << "offset " << c.offset;
  }
}

TEST(EventSimProperties, TotalEventsScaleWithActivity) {
  // Doubling the number of input toggles at least doubles recorded events
  // on a pass-through chain (sanity for the activity metric).
  auto run = [&](int toggles) {
    Netlist nl;
    const NetId a = nl.addPI("a");
    const NetId y = nl.addNet("y");
    nl.addGate(CellKind::kBuf, {a}, y);
    nl.markPO(y);
    EventSimConfig cfg;
    cfg.simTime = ns(100);
    cfg.clockedFlops = false;
    EventSim sim(nl, cfg);
    Logic v = Logic::F;
    sim.setInitialInput(a, v);
    for (int i = 1; i <= toggles; ++i) {
      v = logicNot(v);
      sim.drive(a, i * ns(2), v);
    }
    sim.run();
    return sim.totalEvents();
  };
  EXPECT_EQ(run(10), 20u);
  EXPECT_EQ(run(20), 40u);
}

// ---------------------------------------------------------------------------
// Session / scheduler / census equivalence properties over random circuits.

/// A random acyclic sequential netlist: gates draw fanins only from nets
/// created earlier (plus flop Qs, created up front), so cycles are broken
/// by DFFs exactly as in a real design.  Sprinkles delay elements and
/// per-net wire delays so the event queue sees irregular timestamps.
Netlist randomNetlist(std::uint64_t seed) {
  Rng rng(seed);
  Netlist nl;
  const int numPIs = 3 + static_cast<int>(rng.below(4));
  const int numFFs = 1 + static_cast<int>(rng.below(3));
  const int numGates = 12 + static_cast<int>(rng.below(24));

  std::vector<NetId> pool;
  for (int i = 0; i < numPIs; ++i)
    pool.push_back(nl.addPI("pi" + std::to_string(i)));
  // Flop Q nets exist up front so combinational logic can read state; the
  // DFFs themselves are added last, reading nets from anywhere in the pool.
  std::vector<NetId> qs;
  for (int i = 0; i < numFFs; ++i) {
    qs.push_back(nl.addNet("q" + std::to_string(i)));
    pool.push_back(qs.back());
  }

  const CellKind kinds[] = {CellKind::kInv,   CellKind::kBuf,
                            CellKind::kAnd2,  CellKind::kOr2,
                            CellKind::kNand2, CellKind::kNor2,
                            CellKind::kXor2,  CellKind::kXnor2,
                            CellKind::kMux2,  CellKind::kAoi21};
  for (int g = 0; g < numGates; ++g) {
    const NetId out = nl.addNet();
    if (rng.chance(0.15)) {
      nl.addDelay(rng.pick(pool), out, 50 + static_cast<Ps>(rng.below(1800)));
    } else {
      const CellKind k = kinds[rng.below(std::size(kinds))];
      std::vector<NetId> fanin;
      for (int p = 0; p < cellNumInputs(k); ++p) fanin.push_back(rng.pick(pool));
      nl.addGate(k, std::move(fanin), out);
    }
    if (rng.chance(0.3)) nl.net(out).wireDelay = static_cast<Ps>(rng.below(90));
    pool.push_back(out);
  }
  for (int i = 0; i < numFFs; ++i) nl.addGate(CellKind::kDff, {rng.pick(pool)}, qs[i]);
  nl.markPO(pool.back());
  nl.markPO(rng.pick(qs));
  return nl;
}

/// Everything observable about one run, for whole-run equality checks.
struct SimRunResult {
  std::vector<Logic> initials;
  std::vector<std::vector<Transition>> waves;
  std::vector<TimingViolation> violations;
  std::uint64_t events = 0;
  std::uint64_t glitches = 0;
  std::size_t highWater = 0;

  bool operator==(const SimRunResult&) const = default;
};

/// Configure a (fresh or reset) session from Rng(seed) and run it.  The
/// stimulus stream is a pure function of (netlist, seed), so two sims fed
/// the same seed must agree bit for bit.
SimRunResult runSeeded(EventSim& sim, const Netlist& nl, std::uint64_t seed,
                       const EventSimConfig& cfg) {
  Rng rng(seed ^ 0xD1F7ull);
  for (NetId pi : nl.inputs()) {
    sim.setInitialInput(pi, logicFromBool(rng.flip()));
    const int drives = static_cast<int>(rng.below(6));
    for (int d = 0; d < drives; ++d)
      sim.drive(pi, 1 + static_cast<Ps>(rng.below(
                        static_cast<std::uint64_t>(cfg.simTime) - 2)),
                logicFromBool(rng.flip()));
  }
  for (GateId ff : nl.flops()) {
    sim.setInitialState(ff, logicFromBool(rng.flip()));
    sim.setClockArrival(ff, static_cast<Ps>(rng.below(300)));
  }
  sim.run();

  SimRunResult r;
  for (NetId n = 0; n < nl.numNets(); ++n) {
    r.initials.push_back(sim.wave(n).initial());
    r.waves.push_back(sim.wave(n).transitions());
  }
  r.violations = sim.violations();
  r.events = sim.totalEvents();
  r.glitches = sim.glitchesGenerated();
  r.highWater = sim.queueHighWater();
  return r;
}

TEST(EventSimSession, RecycledSessionMatchesFreshSingleShot) {
  // A compile-once session recycled with reset() across runs must be
  // indistinguishable from a freshly constructed single-shot simulator —
  // same waveforms, violations, glitch census, event counts.
  EventSimConfig cfg;
  cfg.clockPeriod = ns(4);
  cfg.simTime = ns(36);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Netlist nl = randomNetlist(seed);
    const CompiledNetlist cn = CompiledNetlist::compile(nl);
    EventSim session(cn, cfg);
    // Dirty the session with an unrelated run first, then recycle it.
    runSeeded(session, nl, seed + 1000, cfg);
    session.reset();
    const SimRunResult recycled = runSeeded(session, nl, seed, cfg);

    EventSim fresh(nl, cfg);
    const SimRunResult single = runSeeded(fresh, nl, seed, cfg);
    EXPECT_EQ(recycled, single) << "seed " << seed;
  }
}

TEST(EventSimSession, TimingWheelMatchesReferenceHeap) {
  // The two-level wheel and the reference binary heap must pop in the
  // identical (time, kind, seq) order: every observable — including the
  // queue high-water mark — agrees.
  EventSimConfig wheel;
  wheel.clockPeriod = ns(4);
  wheel.simTime = ns(36);
  wheel.scheduler = SimScheduler::kTimingWheel;
  EventSimConfig heap = wheel;
  heap.scheduler = SimScheduler::kReferenceHeap;
  for (std::uint64_t seed = 21; seed <= 32; ++seed) {
    const Netlist nl = randomNetlist(seed);
    EventSim a(nl, wheel);
    EventSim b(nl, heap);
    const SimRunResult ra = runSeeded(a, nl, seed, wheel);
    const SimRunResult rb = runSeeded(b, nl, seed, heap);
    EXPECT_EQ(ra, rb) << "seed " << seed;
  }
}

TEST(EventSimSession, GlitchCensusAgreesWithRecordedWaveforms) {
  // glitchesGenerated() must equal what a reader of the final waveforms
  // would count with gkll::glitches() — the contract the old incremental
  // census broke under same-time re-records.
  EventSimConfig cfg;
  cfg.clockPeriod = ns(4);
  cfg.simTime = ns(36);
  for (std::uint64_t seed = 41; seed <= 52; ++seed) {
    const Netlist nl = randomNetlist(seed);
    EventSim sim(nl, cfg);
    runSeeded(sim, nl, seed, cfg);
    std::uint64_t posthoc = 0;
    for (NetId n = 0; n < nl.numNets(); ++n)
      posthoc += glitches(sim.wave(n), 0, cfg.simTime, cfg.glitchWidth).size();
    EXPECT_EQ(sim.glitchesGenerated(), posthoc) << "seed " << seed;
  }
}

TEST(EventSimSession, GlitchCensusSurvivesSameTimeRerecord) {
  // Deterministic regression for the census bug: a same-time re-record
  // (later-wins) pops a transition that had just closed a narrow pulse.
  // The old incremental counter kept the popped pulse; the census must
  // agree with the waveform, which shows no glitch at all.
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kBuf, {a}, y);
  nl.markPO(y);

  EventSimConfig cfg;
  cfg.simTime = ns(6);
  cfg.clockedFlops = false;  // glitchWidth default ns(2)
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::T);
  sim.drive(a, 1000, Logic::F);  // opens a low pulse
  sim.drive(a, 1300, Logic::T);  // closes it: a 300 ps glitch... for now
  sim.drive(a, 1300, Logic::F);  // same-time re-record: the pulse never was
  sim.run();

  // The recorded waveform has a single transition (T -> F at 1000) on both
  // nets: no glitch anywhere, and the census agrees.
  EXPECT_EQ(sim.wave(a).transitions().size(), 1u);
  EXPECT_EQ(glitches(sim.wave(a), 0, cfg.simTime, cfg.glitchWidth).size(), 0u);
  EXPECT_EQ(glitches(sim.wave(y), 0, cfg.simTime, cfg.glitchWidth).size(), 0u);
  EXPECT_EQ(sim.glitchesGenerated(), 0u);
}

TEST(EventSimSession, ViolationListMatchesFromZeroScanOnLongSim) {
  // Long-run regression for the windowed (binary-search) setup/hold check:
  // the recorded violation list must equal the quadratic reference that
  // rescans the D waveform from zero at every capture edge.
  Netlist nl;
  const NetId d = nl.addPI("d");
  const NetId q1 = nl.addNet("q1");
  const NetId q2 = nl.addNet("q2");
  const GateId f1 = nl.addGate(CellKind::kDff, {d}, q1);
  const GateId f2 = nl.addGate(CellKind::kDff, {d}, q2);
  nl.markPO(q1);
  nl.markPO(q2);

  EventSimConfig cfg;
  cfg.clockPeriod = ns(2);
  cfg.simTime = ns(600);  // 300 capture edges per flop
  EventSim sim(nl, cfg);
  sim.setInitialInput(d, Logic::F);
  sim.setClockArrival(f1, 0);
  sim.setClockArrival(f2, 137);
  Logic v = Logic::F;
  for (Ps t = 313; t < cfg.simTime; t += 313) {
    v = logicNot(v);
    sim.drive(d, t, v);
  }
  sim.run();

  // Reference: linear from-zero scan per capture edge, in Q-commit order.
  const auto& trs = sim.wave(d).transitions();
  struct EdgeRec {
    Ps commit;
    Ps edge;
    GateId flop;
  };
  std::vector<EdgeRec> edges;
  const std::pair<GateId, Ps> flopArrival[] = {{f1, 0}, {f2, 137}};
  for (const auto& [flop, arrival] : flopArrival) {
    for (Ps edge = arrival + cfg.clockPeriod;
         edge < cfg.simTime && edge + lib().clkToQ() < cfg.simTime;
         edge += cfg.clockPeriod)
      edges.push_back({edge + lib().clkToQ(), edge, flop});
  }
  std::sort(edges.begin(), edges.end(),
            [](const EdgeRec& a, const EdgeRec& b) { return a.commit < b.commit; });
  std::vector<TimingViolation> expect;
  for (const EdgeRec& e : edges) {
    for (const Transition& tr : trs) {  // from zero, on purpose
      if (tr.time <= e.edge - lib().setupTime()) continue;
      if (tr.time < e.edge + lib().holdTime())
        expect.push_back({e.flop, e.edge, tr.time <= e.edge});
      break;
    }
  }
  ASSERT_GT(expect.size(), 20u);  // the stimulus genuinely hits windows
  EXPECT_EQ(sim.violations(), expect);
}

TEST(EventSimProperties, ReconvergentGlitchGeneration) {
  // The textbook hazard: XOR(a, INV(INV(a))) emits a pulse on every input
  // edge because the reconvergent paths race — transport delay must show
  // it (an inertial model would hide shorter-than-delay hazards).
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId n1 = nl.addNet("n1");
  nl.addGate(CellKind::kInv, {a}, n1);
  const NetId n2 = nl.addNet("n2");
  nl.addGate(CellKind::kInv, {n1}, n2);
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kXor2, {a, n2}, y);
  nl.markPO(y);

  EventSimConfig cfg;
  cfg.simTime = ns(4);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::F);
  sim.drive(a, ns(1), Logic::T);
  sim.run();
  const auto g = glitches(sim.wave(y), 0, ns(4), ns(1));
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].level, Logic::T);
  // Hazard width ~= the two-inverter detour delay.
  EXPECT_NEAR(static_cast<double>(g[0].width()),
              static_cast<double>(lib().info(CellKind::kInv).fall +
                                  lib().info(CellKind::kInv).rise),
              15.0);
}

}  // namespace
}  // namespace gkll
