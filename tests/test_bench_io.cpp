#include "netlist/bench_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "benchgen/synthetic_bench.h"
#include "netlist/netlist_ops.h"
#include "sat/cnf.h"

namespace gkll {
namespace {

TEST(BenchIo, ParseMinimal) {
  const auto r = parseBench(R"(
# a comment
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.netlist.inputs().size(), 2u);
  EXPECT_EQ(r.netlist.outputs().size(), 1u);
  EXPECT_EQ(r.netlist.stats().numCells, 1u);
}

TEST(BenchIo, ParseClassicAliases) {
  const auto r = parseBench(R"(
INPUT(a)
OUTPUT(y)
n = NOT(a)
y = BUFF(n)
)");
  ASSERT_TRUE(r.ok) << r.error;
  const GateId inv = r.netlist.net(*r.netlist.findNet("n")).driver;
  EXPECT_EQ(r.netlist.gate(inv).kind, CellKind::kInv);
}

TEST(BenchIo, NAryWidening) {
  const auto r = parseBench(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
y = AND(a, b, c, d)
)");
  ASSERT_TRUE(r.ok) << r.error;
  const GateId g = r.netlist.net(*r.netlist.findNet("y")).driver;
  EXPECT_EQ(r.netlist.gate(g).kind, CellKind::kAnd4);
}

TEST(BenchIo, RejectsTooWide) {
  const auto r = parseBench(R"(
INPUT(a)
OUTPUT(y)
y = AND(a, a, a, a, a)
)");
  EXPECT_FALSE(r.ok);
}

TEST(BenchIo, ForwardReferences) {
  const auto r = parseBench(R"(
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = NOT(a)
)");
  ASSERT_TRUE(r.ok) << r.error;
}

TEST(BenchIo, DffAndSequentialLoop) {
  const auto r = parseBench(R"(
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.netlist.flops().size(), 1u);
}

TEST(BenchIo, Extensions) {
  const auto r = parseBench(R"(
INPUT(a)
INPUT(s)
OUTPUT(y)
c = CONST1()
dly = DELAY(a, 2500)
l = LUT(0x8, a, c)
y = MUX(s, dly, l)
)");
  ASSERT_TRUE(r.ok) << r.error;
  const Netlist& nl = r.netlist;
  const GateId d = nl.net(*nl.findNet("dly")).driver;
  EXPECT_EQ(nl.gate(d).kind, CellKind::kDelay);
  EXPECT_EQ(nl.gate(d).delayPs, 2500);
  const GateId l = nl.net(*nl.findNet("l")).driver;
  EXPECT_EQ(nl.gate(l).kind, CellKind::kLut);
  EXPECT_EQ(nl.gate(l).lutMask, 0x8u);
}

TEST(BenchIo, ErrorsCarryLineNumbers) {
  const auto r = parseBench("INPUT(a)\nY = FROB(a)\n");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 2"), std::string::npos) << r.error;
}

TEST(BenchIo, DuplicateNetRejected) {
  const auto r = parseBench("INPUT(a)\na = NOT(a)\n");
  EXPECT_FALSE(r.ok);
}

TEST(BenchIo, UndefinedNetRejected) {
  const auto r = parseBench("OUTPUT(y)\ny = NOT(ghost)\n");
  EXPECT_FALSE(r.ok);
}

TEST(BenchIo, RoundTripC17) {
  const Netlist c17 = makeC17();
  const auto r = parseBench(writeBench(c17), "c17rt");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.netlist.inputs().size(), c17.inputs().size());
  EXPECT_EQ(r.netlist.outputs().size(), c17.outputs().size());
  EXPECT_TRUE(sat::checkEquivalence(c17, r.netlist).equivalent);
}

TEST(BenchIo, RoundTripSequentialToy) {
  const Netlist toy = makeToySeq();
  const auto r = parseBench(writeBench(toy), "toyrt");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.netlist.flops().size(), toy.flops().size());
  EXPECT_EQ(r.netlist.stats().numCells, toy.stats().numCells);
}

TEST(BenchIo, RoundTripWithExtensions) {
  Netlist nl("ext");
  const NetId a = nl.addPI("a");
  const NetId d = nl.addNet("d");
  nl.addDelay(a, d, 777);
  const NetId l = nl.addNet("l");
  nl.addLut({a, d}, l, 0x9);
  nl.markPO(l);
  const auto r = parseBench(writeBench(nl), "extrt");
  ASSERT_TRUE(r.ok) << r.error;
  const GateId lg = r.netlist.net(*r.netlist.findNet("l")).driver;
  EXPECT_EQ(r.netlist.gate(lg).lutMask, 0x9u);
  const GateId dg = r.netlist.net(*r.netlist.findNet("d")).driver;
  EXPECT_EQ(r.netlist.gate(dg).delayPs, 777);
}

TEST(BenchIo, FileRoundTrip) {
  const Netlist toy = makeToySeq();
  const std::string path = testing::TempDir() + "/gkll_toy.bench";
  ASSERT_TRUE(writeBenchFile(toy, path));
  const auto r = parseBenchFile(path);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.netlist.name(), "gkll_toy");
  EXPECT_EQ(r.netlist.stats().numCells, toy.stats().numCells);
}

// The stream overloads are the primary entry points (the string forms
// wrap them); both directions must agree with the string forms exactly.
TEST(BenchIo, StreamOverloadsMatchStringForms) {
  const Netlist toy = makeToySeq();
  std::ostringstream os;
  writeBench(toy, os);
  EXPECT_EQ(os.str(), writeBench(toy));

  std::istringstream is(os.str());
  const auto viaStream = parseBench(is, "toyseq");
  const auto viaString = parseBench(os.str(), "toyseq");
  ASSERT_TRUE(viaStream.ok) << viaStream.error;
  ASSERT_TRUE(viaString.ok) << viaString.error;
  EXPECT_EQ(viaStream.netlist.contentHash(), viaString.netlist.contentHash());
  EXPECT_TRUE(structurallyEqual(viaStream.netlist, viaString.netlist));
}

TEST(BenchIo, StreamParseReportsLinesAcrossChunks) {
  // A defect deep into the stream still carries its 1-based line number.
  std::string text = "INPUT(a)\nOUTPUT(y)\n";
  for (int i = 0; i < 200; ++i)
    text += "n" + std::to_string(i) + " = NOT(a)\n";
  text += "y = FROB(a)\n";  // line 203
  std::istringstream is(text);
  const auto r = parseBench(is);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.errorLine, 203);
}

TEST(BenchIo, MissingFileFails) {
  const auto r = parseBenchFile("/nonexistent/definitely.bench");
  EXPECT_FALSE(r.ok);
}

// --- untrusted-upload hardening ----------------------------------------------
// The service daemon feeds client-supplied text straight into the parser;
// every malformed shape must come back as a diagnostic with a line number,
// never an assert, abort, or silently corrupted netlist.

TEST(BenchIo, TruncatedAssignmentFails) {
  // File ends mid-expression (a download cut short).
  const auto r = parseBench("INPUT(a)\nOUTPUT(y)\ny = NAND(a,");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.errorLine, 3);
  EXPECT_NE(r.error.find("line 3"), std::string::npos) << r.error;
}

TEST(BenchIo, DuplicateDriverFails) {
  // Two assignments to the same net must be rejected before addGate's
  // "already driven" precondition is ever reachable.
  const auto r = parseBench(R"(INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
y = OR(a, b)
)");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.errorLine, 5);
  EXPECT_NE(r.error.find("duplicate net: y"), std::string::npos) << r.error;
}

TEST(BenchIo, AssignmentToInputFails) {
  const auto r = parseBench("INPUT(a)\nOUTPUT(a)\na = CONST1()\n");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.errorLine, 3);
}

TEST(BenchIo, UnknownCellFails) {
  const auto r = parseBench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.errorLine, 3);
  EXPECT_NE(r.error.find("unknown gate: FROB"), std::string::npos) << r.error;
}

TEST(BenchIo, EmptyDeclarationNameFails) {
  EXPECT_FALSE(parseBench("INPUT()\n").ok);
  EXPECT_FALSE(parseBench("OUTPUT()\n").ok);
}

TEST(BenchIo, MalformedDelayValueFails) {
  // strtoll would happily read "2500abc" as 2500; the strict parser must
  // not.
  const auto r = parseBench("INPUT(a)\nOUTPUT(y)\ny = DELAY(a, 2500abc)\n");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.errorLine, 3);
  EXPECT_NE(r.error.find("malformed delay"), std::string::npos) << r.error;
  EXPECT_FALSE(parseBench("INPUT(a)\nOUTPUT(y)\ny = DELAY(a, -5)\n").ok);
  EXPECT_FALSE(parseBench("INPUT(a)\nOUTPUT(y)\ny = DELAY(a, )\n").ok);
}

TEST(BenchIo, MalformedLutMaskFails) {
  const auto r = parseBench("INPUT(a)\nOUTPUT(y)\ny = LUT(0xZZ, a)\n");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.errorLine, 3);
  EXPECT_NE(r.error.find("malformed LUT mask"), std::string::npos) << r.error;
}

TEST(BenchIo, UndefinedNetReportsLine) {
  const auto r = parseBench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.errorLine, 3);
  EXPECT_NE(r.error.find("undefined net: ghost"), std::string::npos);
}

TEST(BenchIo, ParseOrThrowCarriesLine) {
  EXPECT_NO_THROW(parseBenchOrThrow("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"));
  try {
    parseBenchOrThrow("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("unknown gate"), std::string::npos);
  }
}

TEST(BenchIo, GarbageBytesFailCleanly) {
  // Binary noise must produce a diagnostic, not UB.
  std::string noise = "\x01\x02\xff\xfe(((=)))\n=\n(((\n";
  const auto r = parseBench(noise);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.errorLine, 0);
}

}  // namespace
}  // namespace gkll
