#include "attack/sat_attack.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "core/gk_encryptor.h"
#include "lock/antisat.h"
#include "lock/sarlock.h"
#include "lock/xor_lock.h"
#include "netlist/netlist_ops.h"

namespace gkll {
namespace {

TEST(SatAttack, CracksXorLockedC17) {
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{4, 77});
  const SatAttackResult r = satAttack(ld.netlist, ld.keyInputs, orig);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.unsatAtFirstIteration);
  EXPECT_TRUE(r.decrypted);
  EXPECT_GT(r.dips, 0);
  // The recovered key may differ from the inserted one only if both unlock
  // (possible with redundant logic); on c17 it is usually exact.
  ASSERT_EQ(r.recoveredKey.size(), 4u);
}

TEST(SatAttack, CracksXorLockedSequentialBenchmark) {
  const Netlist orig = generateByName("s1238");
  const LockedDesign ld = xorLock(orig, XorLockOptions{8, 78});
  const CombExtraction comb = extractCombinational(ld.netlist);
  const CombExtraction oracle = extractCombinational(orig);
  std::vector<NetId> keys;
  for (NetId k : ld.keyInputs) keys.push_back(comb.netMap[k]);
  const SatAttackResult r = satAttack(comb.netlist, keys, oracle.netlist);
  EXPECT_TRUE(r.decrypted);
}

TEST(SatAttack, SarLockNeedsManyDips) {
  // The point-function property: each DIP eliminates one key, so the
  // attack needs ~2^n iterations (still succeeds for small n).
  const Netlist orig = makeC17();
  const LockedDesign ld = sarLock(orig, SarLockOptions{4, 79});
  const SatAttackResult r = satAttack(ld.netlist, ld.keyInputs, orig);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.decrypted);
  EXPECT_GE(r.dips, 10);  // ~2^4 - few
}

TEST(SatAttack, AntiSatResistsProportionallyToo) {
  const Netlist orig = makeC17();
  const LockedDesign ld = antiSatLock(orig, AntiSatOptions{3, 80});
  const SatAttackResult r = satAttack(ld.netlist, ld.keyInputs, orig);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.decrypted);
}

TEST(SatAttack, GkLockedDesignUnsatAtFirstIteration) {
  // The paper's Sec. VI experiment in miniature.
  const Netlist orig = generateByName("s1238");
  GkEncryptor enc(orig);
  EncryptOptions opt;
  opt.numGks = 2;
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 2u);
  const auto surf = enc.attackSurface(locked);
  const SatAttackResult r =
      satAttack(surf.comb, surf.gkKeys, surf.oracleComb);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.unsatAtFirstIteration);
  EXPECT_EQ(r.dips, 0);
  EXPECT_FALSE(r.decrypted);  // the "recovered" circuit inverts the GKs
}

TEST(SatAttack, HybridAbortsWithContradictoryConstraints) {
  const Netlist orig = generateByName("s1238");
  GkEncryptor enc(orig);
  EncryptOptions opt;
  opt.numGks = 2;
  opt.hybridXorKeys = 4;
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 2u);
  const auto surf = enc.attackSurface(locked);
  std::vector<NetId> keys = surf.gkKeys;
  keys.insert(keys.end(), surf.otherKeys.begin(), surf.otherKeys.end());
  const SatAttackResult r = satAttack(surf.comb, keys, surf.oracleComb);
  EXPECT_GE(r.dips, 1);  // the XOR keys do produce DIPs
  EXPECT_TRUE(r.keyConstraintsUnsat);
  EXPECT_FALSE(r.decrypted);
}

TEST(SatAttack, ConflictBudgetGivesUpGracefully) {
  const Netlist orig = generateByName("s5378");
  const LockedDesign ld = xorLock(orig, XorLockOptions{16, 81});
  const CombExtraction comb = extractCombinational(ld.netlist);
  const CombExtraction oracle = extractCombinational(orig);
  std::vector<NetId> keys;
  for (NetId k : ld.keyInputs) keys.push_back(comb.netMap[k]);
  SatAttackOptions opt;
  opt.conflictBudget = 5;  // absurdly small
  const SatAttackResult r = satAttack(comb.netlist, keys, oracle.netlist, opt);
  EXPECT_TRUE(r.budgetExhausted);
  EXPECT_FALSE(r.decrypted);
}

TEST(SatAttack, MaxIterationsBoundsTheLoop) {
  const Netlist orig = makeC17();
  const LockedDesign ld = sarLock(orig, SarLockOptions{4, 82});
  SatAttackOptions opt;
  opt.maxIterations = 2;
  const SatAttackResult r = satAttack(ld.netlist, ld.keyInputs, orig, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.dips, 2);
}

}  // namespace
}  // namespace gkll
