#include "sat/solver.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gkll::sat {
namespace {

TEST(Literals, Encoding) {
  const Var v = 5;
  const Lit pos = mkLit(v);
  const Lit neg = mkLit(v, true);
  EXPECT_EQ(litVar(pos), v);
  EXPECT_EQ(litVar(neg), v);
  EXPECT_FALSE(litSign(pos));
  EXPECT_TRUE(litSign(neg));
  EXPECT_EQ(negLit(pos), neg);
  EXPECT_EQ(negLit(neg), pos);
}

TEST(Solver, TrivialSat) {
  Solver s;
  const Var a = s.newVar();
  s.addClause(mkLit(a));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(a));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.newVar();
  s.addClause(mkLit(a));
  EXPECT_FALSE(s.addClause(mkLit(a, true)));
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_FALSE(s.okay());
}

TEST(Solver, EmptyFormulaIsSat) {
  Solver s;
  s.newVar();
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Solver, UnitPropagationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.newVar());
  for (int i = 0; i + 1 < 10; ++i)
    s.addClause(mkLit(v[static_cast<std::size_t>(i)], true),
                mkLit(v[static_cast<std::size_t>(i + 1)]));
  s.addClause(mkLit(v[0]));
  ASSERT_EQ(s.solve(), Result::kSat);
  for (Var x : v) EXPECT_TRUE(s.modelValue(x));
}

TEST(Solver, TautologyIgnored) {
  Solver s;
  const Var a = s.newVar();
  EXPECT_TRUE(s.addClause(std::vector<Lit>{mkLit(a), mkLit(a, true)}));
  s.addClause(mkLit(a, true));
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.modelValue(a));
}

TEST(Solver, DuplicateLiteralsCollapsed) {
  Solver s;
  const Var a = s.newVar();
  s.addClause(std::vector<Lit>{mkLit(a), mkLit(a), mkLit(a)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(a));
}

TEST(Solver, XorChainUnsat) {
  // x1 ^ x2 = 1, x2 ^ x3 = 1, ..., and x1 = xn with odd parity: UNSAT.
  Solver s;
  const int n = 8;
  std::vector<Var> v;
  for (int i = 0; i < n; ++i) v.push_back(s.newVar());
  auto addXorEq1 = [&](Var a, Var b) {
    s.addClause(mkLit(a), mkLit(b));
    s.addClause(mkLit(a, true), mkLit(b, true));
  };
  for (int i = 0; i + 1 < n; ++i)
    addXorEq1(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i + 1)]);
  // n-1 = 7 xors flip parity an odd number of times, so x1 != x8; demanding
  // equality is UNSAT.
  s.addClause(mkLit(v[0]), mkLit(v[n - 1], true));
  s.addClause(mkLit(v[0], true), mkLit(v[n - 1]));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, PigeonHole3Into2) {
  // PHP(3,2): 3 pigeons, 2 holes — classically UNSAT, exercises learning.
  Solver s;
  Var p[3][2];
  for (auto& row : p)
    for (Var& x : row) x = s.newVar();
  for (auto& row : p) s.addClause(mkLit(row[0]), mkLit(row[1]));
  for (int h = 0; h < 2; ++h)
    for (int i = 0; i < 3; ++i)
      for (int j = i + 1; j < 3; ++j)
        s.addClause(mkLit(p[i][h], true), mkLit(p[j][h], true));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, AssumptionsSatAndUnsat) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  s.addClause(mkLit(a, true), mkLit(b));  // a -> b
  EXPECT_EQ(s.solve({mkLit(a)}), Result::kSat);
  EXPECT_TRUE(s.modelValue(b));
  s.addClause(mkLit(b, true));  // now b must be false
  EXPECT_EQ(s.solve({mkLit(a)}), Result::kUnsat);
  // Without the assumption the formula is still satisfiable.
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.modelValue(a));
  EXPECT_TRUE(s.okay());
}

TEST(Solver, IncrementalClauseAddition) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 6; ++i) v.push_back(s.newVar());
  EXPECT_EQ(s.solve(), Result::kSat);
  s.addClause(mkLit(v[0]));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(v[0]));
  s.addClause(mkLit(v[0], true), mkLit(v[1]));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(v[1]));
  s.addClause(mkLit(v[1], true));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, RandomThreeSatAgreesWithBruteForce) {
  // Property test: on random 12-var 3-SAT instances the solver's verdict
  // matches exhaustive enumeration, and SAT models actually satisfy.
  Rng rng(2024);
  for (int inst = 0; inst < 40; ++inst) {
    const int nVars = 12;
    const int nClauses = 40 + static_cast<int>(rng.below(25));
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < nClauses; ++c) {
      std::vector<Lit> cl;
      for (int k = 0; k < 3; ++k)
        cl.push_back(mkLit(static_cast<Var>(rng.below(nVars)), rng.flip()));
      clauses.push_back(cl);
    }
    Solver s;
    for (int i = 0; i < nVars; ++i) s.newVar();
    bool rootOk = true;
    for (auto& cl : clauses) rootOk &= s.addClause(cl) || !s.okay();
    (void)rootOk;
    const bool satResult = s.okay() && s.solve() == Result::kSat;

    bool brute = false;
    for (int m = 0; m < (1 << nVars) && !brute; ++m) {
      bool all = true;
      for (const auto& cl : clauses) {
        bool any = false;
        for (Lit l : cl)
          any |= (((m >> litVar(l)) & 1) != 0) != litSign(l);
        if (!any) {
          all = false;
          break;
        }
      }
      brute = all;
    }
    ASSERT_EQ(satResult, brute) << "instance " << inst;
    if (satResult) {
      for (const auto& cl : clauses) {
        bool any = false;
        for (Lit l : cl) any |= s.modelValue(litVar(l)) != litSign(l);
        EXPECT_TRUE(any);
      }
    }
  }
}

TEST(Solver, StatsAccumulate) {
  Solver s;
  Var p[4][3];
  for (auto& row : p)
    for (Var& x : row) x = s.newVar();
  for (auto& row : p) s.addClause(std::vector<Lit>{mkLit(row[0]), mkLit(row[1]), mkLit(row[2])});
  for (int h = 0; h < 3; ++h)
    for (int i = 0; i < 4; ++i)
      for (int j = i + 1; j < 4; ++j)
        s.addClause(mkLit(p[i][h], true), mkLit(p[j][h], true));
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
}

}  // namespace
}  // namespace gkll::sat
