// The Fig. 3(b) "buffer variant" flow mode: constant correct keys,
// inverter-level glitches, both taps aimed at the capture window.
#include <gtest/gtest.h>

#include "attack/sat_attack.h"
#include "benchgen/synthetic_bench.h"
#include "core/gk_encryptor.h"
#include "flow/gk_flow.h"

namespace gkll {
namespace {

GkFlowResult lockB(const Netlist& orig, int gks) {
  GkFlowOptions opt;
  opt.numGks = gks;
  opt.bufferVariant = true;
  return runGkFlow(orig, opt);
}

TEST(VariantB, CorrectConstantKeyVerifies) {
  const Netlist orig = generateByName("s1238");
  const GkFlowResult r = lockB(orig, 3);
  ASSERT_EQ(r.insertions.size(), 3u);
  EXPECT_TRUE(r.verify.ok());
  for (const GkInsertion& ins : r.insertions) {
    EXPECT_TRUE(ins.correct == GkBehavior::kConst0 ||
                ins.correct == GkBehavior::kConst1);
    EXPECT_TRUE(ins.gk.bufferVariant);
  }
}

TEST(VariantB, BothConstantsAreBehaviourallyCorrect) {
  // The documented caveat: const 0 and const 1 both buffer, so flipping a
  // GK's key from one constant to the other keeps the design verified.
  const Netlist orig = generateByName("s1238");
  const GkFlowResult r = lockB(orig, 2);
  ASSERT_EQ(r.insertions.size(), 2u);
  std::vector<int> other = r.design.correctKey;
  other[0] ^= 1;  // (0,0) <-> (1,1) for the first GK
  other[1] ^= 1;
  VerifyOptions vo;
  vo.clockPeriod = r.clockPeriod;
  vo.inputArrival = CellLibrary::tsmc013c().clkToQ();
  const VerifyReport v =
      verifySequential(orig, r.design.netlist, orig.flops().size(),
                       r.clockArrival, r.design.keyInputs, other, vo);
  EXPECT_TRUE(v.ok());
}

TEST(VariantB, TransitionKeysCorrupt) {
  // Any (k1,k2) selecting a transition puts an inverter-level glitch on
  // the capture window: the flop captures x'.
  const Netlist orig = generateByName("s1238");
  const GkFlowResult r = lockB(orig, 2);
  ASSERT_EQ(r.insertions.size(), 2u);
  for (const GkBehavior wrong : {GkBehavior::kTrigA, GkBehavior::kTrigB}) {
    std::vector<int> key = r.design.correctKey;
    const auto [k1, k2] = keyBitsFor(wrong);
    key[0] = k1;
    key[1] = k2;
    VerifyOptions vo;
    vo.clockPeriod = r.clockPeriod;
    vo.inputArrival = CellLibrary::tsmc013c().clkToQ();
    const VerifyReport v =
        verifySequential(orig, r.design.netlist, orig.flops().size(),
                         r.clockArrival, r.design.keyInputs, key, vo);
    EXPECT_GT(v.stateMismatches, 0) << "behaviour " << static_cast<int>(wrong);
  }
}

TEST(VariantB, SatAttackStillDiesAtIterationOne) {
  // Statically a variant-(b) GK is a *buffer* for both key constants —
  // still key-insensitive, so the miter has no DIP.
  const Netlist orig = generateByName("s1238");
  GkEncryptor enc(orig);
  EncryptOptions opt;
  opt.numGks = 2;
  opt.bufferVariant = true;
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 2u);
  const auto surf = enc.attackSurface(locked);
  const SatAttackResult sat =
      satAttack(surf.comb, surf.gkKeys, surf.oracleComb);
  EXPECT_TRUE(sat.unsatAtFirstIteration);
  // But note: unlike variant (a), the static view of a variant-(b) GK is
  // a buffer — the *correct* function.  The attacker's recovered netlist
  // is equivalent; variant (b)'s security rests only on the corruption
  // under transition keys, which is why the paper evaluates variant (a).
  EXPECT_TRUE(sat.decrypted);
}

}  // namespace
}  // namespace gkll
