#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace gkll {
namespace {

Netlist makeSmall() {
  // a, b PIs; n1 = AND(a,b); q = DFF(n1); y = XOR(q, a); PO y.
  Netlist nl("small");
  const NetId a = nl.addPI("a");
  const NetId b = nl.addPI("b");
  const NetId n1 = nl.addNet("n1");
  nl.addGate(CellKind::kAnd2, {a, b}, n1);
  const NetId q = nl.addNet("q");
  nl.addGate(CellKind::kDff, {n1}, q);
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kXor2, {q, a}, y);
  nl.markPO(y);
  return nl;
}

TEST(Netlist, BasicConstruction) {
  const Netlist nl = makeSmall();
  EXPECT_EQ(nl.numNets(), 5u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.flops().size(), 1u);
  EXPECT_FALSE(nl.validate().has_value());
}

TEST(Netlist, FindNetByName) {
  const Netlist nl = makeSmall();
  ASSERT_TRUE(nl.findNet("n1").has_value());
  EXPECT_FALSE(nl.findNet("nope").has_value());
  const NetId n1 = *nl.findNet("n1");
  EXPECT_EQ(nl.net(n1).name, "n1");
}

TEST(Netlist, AutoNamesAreUnique) {
  Netlist nl;
  const NetId a = nl.addNet();
  const NetId b = nl.addNet();
  EXPECT_NE(nl.net(a).name, nl.net(b).name);
}

TEST(Netlist, FanoutBookkeeping) {
  const Netlist nl = makeSmall();
  const NetId a = *nl.findNet("a");
  // a feeds the AND and the XOR.
  EXPECT_EQ(nl.net(a).fanouts.size(), 2u);
  const NetId q = *nl.findNet("q");
  EXPECT_EQ(nl.net(q).fanouts.size(), 1u);
}

TEST(Netlist, MultiPinReaderHasOneFanoutEntryPerPin) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kAnd2, {a, a}, y);  // reads a twice
  EXPECT_EQ(nl.net(a).fanouts.size(), 2u);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  const Netlist nl = makeSmall();
  const auto order = nl.topoOrder();
  ASSERT_EQ(order.size(), nl.numGates());
  std::vector<int> pos(nl.numGates());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<int>(i);
  for (GateId g = 0; g < nl.numGates(); ++g) {
    const Gate& gg = nl.gate(g);
    if (isSourceKind(gg.kind) || gg.kind == CellKind::kDff) continue;
    for (NetId in : gg.fanin) {
      const GateId d = nl.net(in).driver;
      if (isSourceKind(nl.gate(d).kind) || nl.gate(d).kind == CellKind::kDff)
        continue;
      EXPECT_LT(pos[d], pos[g]);
    }
  }
}

TEST(Netlist, SequentialLoopIsNotACombinationalCycle) {
  // q = DFF(INV(q)) — legal; the flop breaks the loop.
  Netlist nl;
  const NetId q = nl.addNet("q");
  const NetId d = nl.addNet("d");
  nl.addGate(CellKind::kInv, {q}, d);
  nl.addGate(CellKind::kDff, {d}, q);
  EXPECT_FALSE(nl.validate().has_value());
  EXPECT_EQ(nl.topoOrder().size(), 2u);
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl;
  const NetId a = nl.addNet("a");
  const NetId b = nl.addNet("b");
  nl.addGate(CellKind::kInv, {a}, b);
  nl.addGate(CellKind::kInv, {b}, a);
  EXPECT_TRUE(nl.validate().has_value());
}

TEST(Netlist, UndrivenReadNetDetected) {
  Netlist nl;
  const NetId a = nl.addNet("a");
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kInv, {a}, y);  // reads the undriven net
  EXPECT_TRUE(nl.validate().has_value());
}

TEST(Netlist, OrphanNetIsLegal) {
  // Undriven + unread + not a PO: a legal leftover of gate removal.
  Netlist nl;
  nl.addNet("orphan");
  EXPECT_FALSE(nl.validate().has_value());
}

TEST(Netlist, UndrivenPoDetected) {
  Netlist nl;
  const NetId a = nl.addNet("a");
  nl.markPO(a);
  EXPECT_TRUE(nl.validate().has_value());
}

TEST(Netlist, RewireReadersMovesAllPins) {
  Netlist nl = makeSmall();
  const NetId n1 = *nl.findNet("n1");
  const NetId w = nl.addNet("w");
  nl.rewireReaders(n1, w);
  // The DFF now reads w; n1 has no readers.
  EXPECT_TRUE(nl.net(n1).fanouts.empty());
  EXPECT_EQ(nl.net(w).fanouts.size(), 1u);
  const GateId ff = nl.flops()[0];
  EXPECT_EQ(nl.gate(ff).fanin[0], w);
}

TEST(Netlist, RewireReadersPreservesPoPosition) {
  Netlist nl = makeSmall();
  const NetId y = *nl.findNet("y");
  const NetId y2 = nl.addNet("y2");
  nl.rewireReaders(y, y2);
  ASSERT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.outputs()[0], y2);
}

TEST(Netlist, ReplaceFaninSinglePin) {
  Netlist nl = makeSmall();
  const GateId ff = nl.flops()[0];
  const NetId n1 = *nl.findNet("n1");
  const NetId w = nl.addNet("w");
  nl.replaceFanin(ff, n1, w);
  EXPECT_EQ(nl.gate(ff).fanin[0], w);
  EXPECT_TRUE(nl.net(n1).fanouts.empty());
  EXPECT_EQ(nl.net(w).fanouts.size(), 1u);
}

TEST(Netlist, RemoveGateTombstones) {
  Netlist nl = makeSmall();
  const NetId y = *nl.findNet("y");
  const GateId xorGate = nl.net(y).driver;
  nl.removeGate(xorGate);
  EXPECT_EQ(nl.net(y).driver, kNoGate);
  // The inputs no longer list the gate as a reader.
  const NetId q = *nl.findNet("q");
  EXPECT_TRUE(nl.net(q).fanouts.empty());
  // Re-drive to restore validity.
  nl.addGate(CellKind::kBuf, {q}, y);
  EXPECT_FALSE(nl.validate().has_value());
}

TEST(Netlist, RemoveFlopUpdatesFlopList) {
  Netlist nl = makeSmall();
  ASSERT_EQ(nl.flops().size(), 1u);
  nl.removeGate(nl.flops()[0]);
  EXPECT_TRUE(nl.flops().empty());
}

TEST(Netlist, ConstNetsAreCached) {
  Netlist nl;
  EXPECT_EQ(nl.constNet(false), nl.constNet(false));
  EXPECT_EQ(nl.constNet(true), nl.constNet(true));
  EXPECT_NE(nl.constNet(false), nl.constNet(true));
}

TEST(Netlist, UnregisterPI) {
  Netlist nl = makeSmall();
  const NetId a = *nl.findNet("a");
  nl.unregisterPI(a);
  EXPECT_EQ(nl.inputs().size(), 1u);
  EXPECT_EQ(std::count(nl.inputs().begin(), nl.inputs().end(), a), 0);
}

TEST(Netlist, AppendPOAllowsDuplicates) {
  Netlist nl = makeSmall();
  const NetId y = *nl.findNet("y");
  nl.appendPO(y);
  EXPECT_EQ(nl.outputs().size(), 2u);
  nl.markPO(y);  // dedupes
  EXPECT_EQ(nl.outputs().size(), 2u);
}

TEST(Netlist, StatsCountCellsAndArea) {
  const Netlist nl = makeSmall();
  const NetlistStats st = nl.stats();
  EXPECT_EQ(st.numCells, 3u);  // AND + DFF + XOR (inputs don't count)
  EXPECT_EQ(st.numFFs, 1u);
  EXPECT_EQ(st.numPIs, 2u);
  EXPECT_EQ(st.numPOs, 1u);
  const CellLibrary& lib = CellLibrary::tsmc013c();
  EXPECT_EQ(st.area, lib.info(CellKind::kAnd2).area +
                         lib.info(CellKind::kDff).area +
                         lib.info(CellKind::kXor2).area);
}

TEST(Netlist, DelayGateCarriesValue) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  const GateId g = nl.addDelay(a, y, 1234);
  EXPECT_EQ(nl.gate(g).delayPs, 1234);
  EXPECT_EQ(nl.gate(g).kind, CellKind::kDelay);
}

TEST(Netlist, LutGateCarriesMask) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId b = nl.addPI("b");
  const NetId y = nl.addNet("y");
  const GateId g = nl.addLut({a, b}, y, 0x6);
  EXPECT_EQ(nl.gate(g).lutMask, 0x6u);
}

}  // namespace
}  // namespace gkll
