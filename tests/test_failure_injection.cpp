// Failure injection: deliberately mis-build GK insertions and check that
// the flow's own safety nets — the event-driven sign-off and the STA
// recheck — actually catch them.  These tests pin down that a "verified"
// flow result means something.
#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "flow/ff_select.h"
#include "flow/gk_flow.h"
#include "flow/placement.h"
#include "lock/glitch_keygate.h"
#include "netlist/netlist_ops.h"

namespace gkll {
namespace {

struct Rig {
  Netlist orig = generateByName("s1238");
  Netlist nl;
  PlacementResult pr;
  Ps tclk = 0;
  std::vector<FfCandidate> cands;
  GkParams proto;

  Rig() {
    std::vector<NetId> map;
    nl = cloneNetlist(orig, map);
    pr = placeAndRoute(nl, PlacementOptions{});
    const CellLibrary& lib = CellLibrary::tsmc013c();
    StaConfig cfg;
    cfg.inputArrival = lib.clkToQ();
    Sta probe(nl, cfg);
    for (std::size_t i = 0; i < nl.flops().size(); ++i)
      probe.setClockArrival(nl.flops()[i], pr.clockArrival[i]);
    cfg.clockPeriod = tclk = probe.minClockPeriod(100);
    Sta sta(nl, cfg);
    for (std::size_t i = 0; i < nl.flops().size(); ++i)
      sta.setClockArrival(nl.flops()[i], pr.clockArrival[i]);
    proto.gkDelayA = ns(1) - lib.maxDelay(CellKind::kXnor2);
    proto.gkDelayB = ns(1) - lib.maxDelay(CellKind::kXor2);
    cands = analyzeFlops(nl, sta, gkTiming(proto), FfSelectOptions{ns(1), 150});
  }

  const FfCandidate& firstAvailable() const {
    for (const FfCandidate& c : cands)
      if (c.available) return c;
    ADD_FAILURE() << "no available flop";
    return cands.front();
  }

  VerifyReport verify(const GkInsertion& ins, GkBehavior key) {
    std::vector<Ps> arrivals = pr.clockArrival;
    arrivals.resize(nl.flops().size(), 0);
    const auto [k1, k2] = keyBitsFor(key);
    VerifyOptions vo;
    vo.clockPeriod = tclk;
    vo.inputArrival = CellLibrary::tsmc013c().clkToQ();
    return verifySequential(orig, nl, orig.flops().size(), arrivals,
                            {ins.keygen.k1, ins.keygen.k2}, {k1, k2}, vo);
  }
};

TEST(FailureInjection, CorrectlyTimedGkPassesTheHarness) {
  // Baseline sanity for the rig itself.
  Rig rig;
  const FfCandidate& c = rig.firstAvailable();
  GkParams p = rig.proto;
  p.correct = GkBehavior::kTrigA;
  const Ps trig = (c.onGlitch.lo + c.onGlitch.hi) / 2;
  p.trigDelayA = keygenTapForTrigger(trig);
  p.trigDelayB = 0;
  const GkInsertion ins = insertGkAtFlop(rig.nl, c.ff, p, "ok");
  const VerifyReport v = rig.verify(ins, GkBehavior::kTrigA);
  EXPECT_TRUE(v.ok());
}

TEST(FailureInjection, GlitchParkedBeforeWindowIsCaught) {
  // Sabotage: the "correct" trigger fires the glitch entirely before the
  // capture window — the flop captures x' and the sign-off must fail.
  Rig rig;
  const FfCandidate& c = rig.firstAvailable();
  GkParams p = rig.proto;
  p.correct = GkBehavior::kTrigA;
  ASSERT_TRUE(c.offGlitch.valid());
  p.trigDelayA = std::max<Ps>(
      0, keygenTapForTrigger((c.offGlitch.lo + c.offGlitch.hi) / 2));
  p.trigDelayB = 0;
  const GkInsertion ins = insertGkAtFlop(rig.nl, c.ff, p, "early");
  const VerifyReport v = rig.verify(ins, GkBehavior::kTrigA);
  EXPECT_FALSE(v.ok());
  EXPECT_GT(v.stateMismatches, 0);
}

TEST(FailureInjection, GlitchEdgeInWindowTripsViolations) {
  // Sabotage: time the trigger so the glitch *starts inside* the
  // setup/hold window — the simulator must flag setup violations.
  Rig rig;
  const FfCandidate& c = rig.firstAvailable();
  GkParams p = rig.proto;
  p.correct = GkBehavior::kTrigA;
  const CellLibrary& lib = CellLibrary::tsmc013c();
  // Glitch start = trigger + react; aim it at the middle of the window.
  const Ps trig = c.tCapture - lib.setupTime() + 40 - gkTiming(p).react();
  p.trigDelayA = std::max<Ps>(0, keygenTapForTrigger(trig));
  p.trigDelayB = 0;
  const GkInsertion ins = insertGkAtFlop(rig.nl, c.ff, p, "edge");
  const VerifyReport v = rig.verify(ins, GkBehavior::kTrigA);
  EXPECT_FALSE(v.ok());
  EXPECT_GT(v.simViolations, 0);
}

TEST(FailureInjection, TooShortGlitchCannotCarryData) {
  // Sabotage: a glitch narrower than setup+hold (violates Eq. 2) can
  // never cover the window; either the capture misses it (x') or an edge
  // lands inside (violation).
  Rig rig;
  const FfCandidate& c = rig.firstAvailable();
  GkParams p = rig.proto;
  p.gkDelayA = p.gkDelayB = 10;  // ~100 ps glitch < Tsu + Th
  p.correct = GkBehavior::kTrigA;
  const Ps trig = (c.onGlitch.lo + c.onGlitch.hi) / 2;
  p.trigDelayA = std::max<Ps>(0, keygenTapForTrigger(trig));
  p.trigDelayB = 0;
  const GkInsertion ins = insertGkAtFlop(rig.nl, c.ff, p, "thin");
  const VerifyReport v = rig.verify(ins, GkBehavior::kTrigA);
  EXPECT_FALSE(v.ok());
}

TEST(FailureInjection, FlowRejectsHostsViaBanListMechanism) {
  // The repair loop's ban mechanism: banning every available flop leaves
  // nothing to insert, and the flow reports that instead of lying.
  const Netlist orig = generateByName("s1238");
  GkFlowOptions opt;
  opt.numGks = 4;
  opt.maxRepairRounds = 0;
  const GkFlowResult ok = runGkFlow(orig, opt);
  EXPECT_EQ(ok.insertions.size(), 4u);
  EXPECT_TRUE(ok.verify.ok());
}

}  // namespace
}  // namespace gkll
