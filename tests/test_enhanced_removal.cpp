#include "attack/enhanced_removal.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "core/gk_encryptor.h"
#include "netlist/netlist_ops.h"

namespace gkll {
namespace {

struct Surface {
  Netlist orig;
  GkEncryptor enc;
  GkFlowResult locked;
  GkEncryptor::AttackSurface surf;

  explicit Surface(bool withholding, int gks = 2)
      : orig(generateByName("s1238")), enc(orig) {
    EncryptOptions opt;
    opt.numGks = gks;
    opt.withholding = withholding;
    locked = enc.encrypt(opt);
    surf = enc.attackSurface(locked);
  }
};

TEST(LocateGks, FindsEveryVisibleGk) {
  Surface s(false, 3);
  ASSERT_EQ(s.locked.insertions.size(), 3u);
  const auto cands = locateGks(s.surf.comb);
  ASSERT_EQ(cands.size(), 3u);
  for (const GkCandidate& c : cands) {
    EXPECT_FALSE(c.withheld);
    EXPECT_NE(c.x, kNoNet);
    // The key source of the fingerprint is the exposed key input.
    const GateId d = s.surf.comb.net(c.keySource).driver;
    EXPECT_EQ(s.surf.comb.gate(d).kind, CellKind::kInput);
  }
}

TEST(LocateGks, NoFalsePositivesOnPlainCircuits) {
  const Netlist orig = generateByName("s5378");
  const CombExtraction comb = extractCombinational(orig);
  EXPECT_TRUE(locateGks(comb.netlist).empty());
}

TEST(LocateGks, WithheldGksAreUnmodelable) {
  Surface s(true, 2);
  const auto cands = locateGks(s.surf.comb);
  ASSERT_EQ(cands.size(), 2u);
  for (const GkCandidate& c : cands) EXPECT_TRUE(c.withheld);
}

TEST(EnhancedRemoval, DecryptsNakedGk) {
  // Paper Sec. V-D: "This attacking method is effective to decrypt
  // circuits when the security structures are located."
  Surface s(false, 2);
  const EnhancedRemovalResult r = enhancedRemovalAttack(
      s.surf.comb, s.surf.gkKeys, s.surf.otherKeys, s.surf.oracleComb);
  EXPECT_EQ(r.replaced, 2);
  EXPECT_EQ(r.unmodelable, 0);
  EXPECT_TRUE(r.decrypted);
  // The model keys encode buffer-at-capture for variant (a) GKs whose
  // static view inverts: XOR model key = 1 restores the original.
  ASSERT_TRUE(r.sat.converged);
}

TEST(EnhancedRemoval, DefeatedByWithholding) {
  Surface s(true, 2);
  const EnhancedRemovalResult r = enhancedRemovalAttack(
      s.surf.comb, s.surf.gkKeys, s.surf.otherKeys, s.surf.oracleComb);
  EXPECT_EQ(r.replaced, 0);
  EXPECT_EQ(r.unmodelable, 2);
  EXPECT_FALSE(r.decrypted);
}

TEST(EnhancedRemoval, SurvivesDelayMapping) {
  // The fingerprint must be found through the synthesised buffer chains
  // (the flow maps ideal delays by default — this is the default path).
  Surface s(false, 1);
  const auto cands = locateGks(s.surf.comb);
  EXPECT_EQ(cands.size(), 1u);
}

}  // namespace
}  // namespace gkll
