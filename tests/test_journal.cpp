// Tests for the crash-safe run journal (src/obs/journal.h): writer/reader
// round-trip, the truncation contract at *every* byte offset, corrupt-tail
// recovery, schema gating, and the completed-scenario extraction that the
// sweep checkpoint/resume seam relies on.
#include "obs/journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace gkll {
namespace {

std::string tempPath(const std::string& name) {
  return testing::TempDir() + "gkll_journal_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Journal, RoundTripAllFieldTypes) {
  const std::string path = tempPath("roundtrip.jsonl");
  {
    obs::RunJournal j;
    ASSERT_TRUE(j.open(path, "unit-test", 0xDEADBEEFCAFEF00DULL));
    EXPECT_TRUE(j.enabled());
    j.record("attack.sat.dip")
        .i64("iter", 3)
        .f64("oracle_us", 12.5)
        .str("design", "c17 \"quoted\"\n")
        .boolean("converged", true)
        .hex("hash", 0x1234ULL);
    j.record("attack.sat.done").i64("dips", 4);
    EXPECT_EQ(j.recordsWritten(), 2u);
    j.close();
    EXPECT_FALSE(j.enabled());
  }

  obs::JournalReader r;
  ASSERT_TRUE(r.read(path)) << r.error();
  EXPECT_EQ(r.schema(), obs::kJournalSchemaVersion);
  EXPECT_EQ(r.tool(), "unit-test");
  EXPECT_EQ(r.netlistHash(), "0xdeadbeefcafef00d");
  EXPECT_FALSE(r.truncatedTail());
  EXPECT_EQ(r.droppedBytes(), 0u);
  ASSERT_EQ(r.records().size(), 2u);

  const obs::JournalRecord& rec = r.records()[0];
  EXPECT_EQ(rec.type, "attack.sat.dip");
  EXPECT_DOUBLE_EQ(rec.json.numberOr("iter", -1), 3.0);
  EXPECT_DOUBLE_EQ(rec.json.numberOr("oracle_us", -1), 12.5);
  EXPECT_EQ(rec.json.stringOr("design", ""), "c17 \"quoted\"\n");
  EXPECT_TRUE(rec.json.boolOr("converged", false));
  EXPECT_EQ(rec.json.stringOr("hash", ""), "0x0000000000001234");
  EXPECT_GE(rec.json.numberOr("ts_us", -1), 0.0);  // auto-attached
  EXPECT_EQ(r.records()[1].type, "attack.sat.done");
}

TEST(Journal, ClosedJournalIsInert) {
  obs::RunJournal j;
  EXPECT_FALSE(j.enabled());
  j.record("nothing").i64("x", 1).str("y", "z");  // must not crash or write
  EXPECT_EQ(j.recordsWritten(), 0u);
}

TEST(Journal, ReopenTruncatesAndRestartsSequence) {
  const std::string path = tempPath("reopen.jsonl");
  obs::RunJournal j;
  ASSERT_TRUE(j.open(path, "first"));
  j.record("a");
  j.record("b");
  ASSERT_TRUE(j.open(path, "second"));  // truncating reopen (default mode)
  j.record("c");
  EXPECT_EQ(j.recordsWritten(), 1u);
  j.close();

  obs::JournalReader r;
  ASSERT_TRUE(r.read(path)) << r.error();
  EXPECT_EQ(r.tool(), "second");
  ASSERT_EQ(r.records().size(), 1u);
  EXPECT_EQ(r.records()[0].type, "c");
}

// The resume-mode regression the sweep grid depends on: open -> write ->
// close -> reopen(kResume) preserves the prior records and extends the
// stream; the original header (including its tool name) is kept.
TEST(Journal, ResumeReopenPreservesAndExtends) {
  const std::string path = tempPath("resume.jsonl");
  {
    obs::RunJournal j;
    ASSERT_TRUE(j.open(path, "run1", 0xBEEFULL));
    j.record("scenario.done").str("key", "m/0");
    j.record("scenario.done").str("key", "m/1");
    j.close();
  }
  {
    obs::RunJournal j;
    ASSERT_TRUE(j.open(path, "run2-ignored", 0,
                       obs::JournalOpenMode::kResume));
    j.record("scenario.done").str("key", "m/2");
    EXPECT_EQ(j.recordsWritten(), 1u);  // process-local count
    j.close();
  }

  obs::JournalReader r;
  ASSERT_TRUE(r.read(path)) << r.error();
  EXPECT_EQ(r.tool(), "run1");  // header re-validated, never rewritten
  EXPECT_EQ(r.netlistHash(), "0x000000000000beef");
  EXPECT_FALSE(r.truncatedTail());
  ASSERT_EQ(r.records().size(), 3u);
  const auto done = r.completedScenarios();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], "m/0");
  EXPECT_EQ(done[1], "m/1");
  EXPECT_EQ(done[2], "m/2");
}

// Resume after a crash mid-record: the torn trailing line is trimmed on
// open so the first appended record starts at a record boundary.
TEST(Journal, ResumeTrimsTornTail) {
  const std::string path = tempPath("resume_torn.jsonl");
  {
    obs::RunJournal j;
    ASSERT_TRUE(j.open(path, "run1"));
    j.record("scenario.done").str("key", "m/0");
    j.close();
  }
  {
    // Simulate the crash: a partial record with no terminating newline.
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "{\"type\":\"scenario.done\",\"key\":\"m/half";
  }
  {
    obs::RunJournal j;
    ASSERT_TRUE(j.open(path, "run2", 0, obs::JournalOpenMode::kResume));
    j.record("scenario.done").str("key", "m/1");
    j.close();
  }
  obs::JournalReader r;
  ASSERT_TRUE(r.read(path)) << r.error();
  EXPECT_FALSE(r.truncatedTail());
  const auto done = r.completedScenarios();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], "m/0");
  EXPECT_EQ(done[1], "m/1");
}

// Resume on a missing or empty path degrades to a fresh start (header
// written); resume on a non-journal file refuses to touch it.
TEST(Journal, ResumeFreshAndForeignFiles) {
  const std::string path = tempPath("resume_fresh.jsonl");
  std::remove(path.c_str());
  {
    obs::RunJournal j;
    ASSERT_TRUE(j.open(path, "fresh", 0, obs::JournalOpenMode::kResume));
    j.record("rec");
    j.close();
  }
  obs::JournalReader r;
  ASSERT_TRUE(r.read(path)) << r.error();
  EXPECT_EQ(r.tool(), "fresh");
  ASSERT_EQ(r.records().size(), 1u);

  const std::string foreign = tempPath("resume_foreign.jsonl");
  spit(foreign, "not a journal at all\n");
  obs::RunJournal j2;
  EXPECT_FALSE(j2.open(foreign, "x", 0, obs::JournalOpenMode::kResume));
  EXPECT_FALSE(j2.enabled());
  EXPECT_EQ(slurp(foreign), "not a journal at all\n");  // left untouched

  // A journal from a different schema version is also refused: appending
  // current-schema records into it would corrupt the stream's contract.
  const std::string old = tempPath("resume_oldschema.jsonl");
  spit(old, "{\"type\":\"journal.header\",\"schema\":" +
                std::to_string(obs::kJournalSchemaVersion + 1) +
                ",\"tool\":\"future\"}\n");
  EXPECT_FALSE(j2.open(old, "x", 0, obs::JournalOpenMode::kResume));
}

// The ISSUE-mandated crash-safety property: truncate the file at EVERY
// byte offset and assert the reader recovers exactly the complete records
// before the cut, reports the damaged tail, and never misparses.
TEST(Journal, TruncationAtEveryByteOffset) {
  const std::string path = tempPath("full.jsonl");
  {
    obs::RunJournal j;
    ASSERT_TRUE(j.open(path, "trunc-test", 0xABCDULL));
    for (int i = 0; i < 8; ++i)
      j.record("attack.sat.dip").i64("iter", i).f64("wall_ms", 0.5 * i);
    j.close();
  }
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');

  const std::string cut = tempPath("cut.jsonl");
  for (std::size_t off = 0; off <= text.size(); ++off) {
    const std::string prefix = text.substr(0, off);
    spit(cut, prefix);

    // The reference model: lines ending in '\n' are durable; anything
    // after the last newline is the in-flight record and must be dropped.
    const std::size_t lastNl = prefix.rfind('\n');
    obs::JournalReader r;
    if (lastNl == std::string::npos) {
      // Header itself incomplete (or empty file): the journal is unusable
      // and the reader must say so rather than guess.
      EXPECT_FALSE(r.read(cut)) << "offset " << off;
      EXPECT_FALSE(r.error().empty()) << "offset " << off;
      continue;
    }
    std::size_t completeLines = 0;
    for (std::size_t p = 0; (p = prefix.find('\n', p)) != std::string::npos;
         ++p)
      ++completeLines;
    ASSERT_TRUE(r.read(cut)) << "offset " << off << ": " << r.error();
    EXPECT_EQ(r.records().size(), completeLines - 1) << "offset " << off;
    const std::size_t tail = prefix.size() - (lastNl + 1);
    EXPECT_EQ(r.truncatedTail(), tail > 0) << "offset " << off;
    EXPECT_EQ(r.droppedBytes(), tail) << "offset " << off;
    // Every surviving record is intact, in order.
    for (std::size_t i = 0; i < r.records().size(); ++i)
      EXPECT_DOUBLE_EQ(r.records()[i].json.numberOr("iter", -1),
                       static_cast<double>(i))
          << "offset " << off;
  }
}

TEST(Journal, CorruptMiddleLineDropsSuffixNotPrefix) {
  const std::string path = tempPath("corrupt.jsonl");
  {
    obs::RunJournal j;
    ASSERT_TRUE(j.open(path, "corrupt-test"));
    for (int i = 0; i < 4; ++i) j.record("rec").i64("iter", i);
    j.close();
  }
  std::string text = slurp(path);
  // Smash a byte inside the third record's line (header + 2 good records
  // must survive).  Find the start of the line containing iter":2.
  const std::size_t at = text.find("\"iter\":2");
  ASSERT_NE(at, std::string::npos);
  const std::size_t lineStart = text.rfind('\n', at) + 1;
  text[lineStart] = '#';  // no longer a JSON object
  spit(path, text);

  obs::JournalReader r;
  ASSERT_TRUE(r.read(path)) << r.error();
  ASSERT_EQ(r.records().size(), 2u);
  EXPECT_TRUE(r.truncatedTail());
  EXPECT_EQ(r.droppedBytes(), text.size() - lineStart);
}

TEST(Journal, FutureSchemaIsRejected) {
  const std::string path = tempPath("future.jsonl");
  spit(path,
       "{\"type\":\"journal.header\",\"schema\":" +
           std::to_string(obs::kJournalSchemaVersion + 1) +
           ",\"tool\":\"time-traveller\"}\n"
           "{\"type\":\"rec\",\"iter\":0}\n");
  obs::JournalReader r;
  EXPECT_FALSE(r.read(path));
  EXPECT_NE(r.error().find("schema"), std::string::npos) << r.error();
}

TEST(Journal, MissingHeaderIsRejected) {
  const std::string path = tempPath("headerless.jsonl");
  spit(path, "{\"type\":\"rec\",\"iter\":0}\n");
  obs::JournalReader r;
  EXPECT_FALSE(r.read(path));
  EXPECT_FALSE(r.error().empty());

  spit(path, "");
  EXPECT_FALSE(r.read(path));
}

TEST(Journal, CompletedScenariosExtractsKeysInOrder) {
  const std::string path = tempPath("scenarios.jsonl");
  {
    obs::RunJournal j;
    ASSERT_TRUE(j.open(path, "sweep"));
    j.record("scenario.done").str("key", "table1/0");
    j.record("attack.sat.dip").i64("iter", 0);
    j.record("scenario.done").str("key", "table1/1");
    j.record("scenario.done");  // keyless: ignored
    j.record("scenario.done").str("key", "fig7/0");
    j.close();
  }
  obs::JournalReader r;
  ASSERT_TRUE(r.read(path)) << r.error();
  const std::vector<std::string> done = r.completedScenarios();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], "table1/0");
  EXPECT_EQ(done[1], "table1/1");
  EXPECT_EQ(done[2], "fig7/0");
}

// Repeated keys — a resumed run re-journaling work it replayed, or reps
// sharing a key — must collapse to one entry each, first-seen order.
TEST(Journal, CompletedScenariosDedupesRepeatedKeys) {
  const std::string path = tempPath("scenarios_dup.jsonl");
  {
    obs::RunJournal j;
    ASSERT_TRUE(j.open(path, "sweep"));
    j.record("scenario.done").str("key", "m/1").i64("rep", 0);
    j.record("scenario.done").str("key", "m/0");
    j.record("scenario.done").str("key", "m/1").i64("rep", 1);
    j.record("scenario.done").str("key", "m/2");
    j.record("scenario.done").str("key", "m/0");
    j.close();
  }
  obs::JournalReader r;
  ASSERT_TRUE(r.read(path)) << r.error();
  const std::vector<std::string> done = r.completedScenarios();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], "m/1");
  EXPECT_EQ(done[1], "m/0");
  EXPECT_EQ(done[2], "m/2");
  // scenarioDoneRecords keeps the FIRST record for each key: its fields are
  // what the aggregator replays.
  const auto recs = r.scenarioDoneRecords();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(static_cast<std::int64_t>(recs[0]->json.numberOr("rep", -1)), 0);
}

}  // namespace
}  // namespace gkll
