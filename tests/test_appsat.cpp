#include "attack/appsat.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "core/gk_encryptor.h"
#include "lock/sarlock.h"
#include "lock/xor_lock.h"

namespace gkll {
namespace {

TEST(AppSat, ExactlyCracksXorLock) {
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{4, 61});
  const AppSatResult r = appSatAttack(ld.netlist, ld.keyInputs, orig);
  EXPECT_TRUE(r.succeeded);
  EXPECT_TRUE(r.exactlyCorrect);
  EXPECT_LE(r.errorRate, 0.02);
}

TEST(AppSat, ApproximatelyCracksSarLockFast) {
  // The whole point of AppSAT: it accepts an approximately correct key
  // long before the exponential DIP sequence completes — defeating the
  // point-function defence.
  const Netlist orig = makeC17();
  const LockedDesign ld = sarLock(orig, SarLockOptions{4, 62});
  AppSatOptions opt;
  opt.errorThreshold = 0.1;  // 2 corrupt patterns / 32 = ~0.06
  const AppSatResult r = appSatAttack(ld.netlist, ld.keyInputs, orig, opt);
  EXPECT_TRUE(r.succeeded);
  EXPECT_LT(r.dips, 12);  // far fewer than the ~2^4 exact DIPs
  EXPECT_LE(r.errorRate, 0.1);
}

TEST(AppSat, DefeatedByGk) {
  // A pure GK lock produces no DIPs at all, so AppSAT has nothing to
  // learn from; every candidate key fails the final error measurement
  // (the static view inverts what the glitch transmits).
  const Netlist orig = generateByName("s1238");
  GkEncryptor enc(orig);
  EncryptOptions eo;
  eo.numGks = 3;
  const GkFlowResult locked = enc.encrypt(eo);
  ASSERT_EQ(locked.insertions.size(), 3u);
  const auto surf = enc.attackSurface(locked);
  const AppSatResult r =
      appSatAttack(surf.comb, surf.gkKeys, surf.oracleComb);
  EXPECT_EQ(r.dips, 0);
  EXPECT_FALSE(r.succeeded);
  EXPECT_FALSE(r.exactlyCorrect);
}

TEST(AppSat, HybridObservationsGoUnsat) {
  // With hybrid XOR keys the miter does produce DIPs, and the very first
  // oracle observation contradicts the static GK model: the candidate
  // space empties out.
  const Netlist orig = generateByName("s1238");
  GkEncryptor enc(orig);
  EncryptOptions eo;
  eo.numGks = 2;
  eo.hybridXorKeys = 4;
  const GkFlowResult locked = enc.encrypt(eo);
  ASSERT_EQ(locked.insertions.size(), 2u);
  const auto surf = enc.attackSurface(locked);
  std::vector<NetId> keys = surf.gkKeys;
  keys.insert(keys.end(), surf.otherKeys.begin(), surf.otherKeys.end());
  const AppSatResult r = appSatAttack(surf.comb, keys, surf.oracleComb);
  EXPECT_FALSE(r.succeeded);
  EXPECT_TRUE(r.keyConstraintsUnsat);
}

TEST(AppSat, ReconciliationCountsReported) {
  const Netlist orig = makeC17();
  const LockedDesign ld = sarLock(orig, SarLockOptions{4, 63});
  AppSatOptions opt;
  opt.errorThreshold = 0.1;
  opt.reconcileEvery = 1;
  const AppSatResult r = appSatAttack(ld.netlist, ld.keyInputs, orig, opt);
  EXPECT_TRUE(r.succeeded);
  EXPECT_GE(r.reconciliations, 1);
}

}  // namespace
}  // namespace gkll
