// Additional CDCL solver behaviours: budgets, clause logging, assumption
// semantics across incremental use, and structured instance families.
#include <gtest/gtest.h>

#include "sat/solver.h"
#include "util/rng.h"

namespace gkll::sat {
namespace {

/// Pigeon-hole principle PHP(n+1, n): always UNSAT, exponentially hard
/// for resolution — the standard stress family.
void buildPhp(Solver& s, int holes) {
  std::vector<std::vector<Var>> p(
      static_cast<std::size_t>(holes + 1),
      std::vector<Var>(static_cast<std::size_t>(holes)));
  for (auto& row : p)
    for (Var& v : row) v = s.newVar();
  for (auto& row : p) {
    std::vector<Lit> cl;
    for (Var v : row) cl.push_back(mkLit(v));
    s.addClause(cl);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i <= holes; ++i)
      for (int j = i + 1; j <= holes; ++j)
        s.addClause(
            mkLit(p[static_cast<std::size_t>(i)][static_cast<std::size_t>(h)], true),
            mkLit(p[static_cast<std::size_t>(j)][static_cast<std::size_t>(h)], true));
}

TEST(SolverBudget, ExhaustsAndRecovers) {
  Solver s;
  buildPhp(s, 8);
  s.setConflictBudget(10);  // far too small for PHP(9,8)
  EXPECT_EQ(s.solve(), Result::kUnknown);
  EXPECT_TRUE(s.okay());  // unknown, not unsat
  // Lifting the budget finishes the refutation (learned clauses kept).
  s.setConflictBudget(0);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SolverBudget, UnknownDoesNotCorruptLaterSolves) {
  Solver s;
  buildPhp(s, 7);
  const Var extra = s.newVar();
  s.setConflictBudget(5);
  (void)s.solve();
  s.setConflictBudget(0);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  (void)extra;
}

TEST(SolverClauseLog, RecordsVerbatim) {
  Solver s;
  s.enableClauseLog();
  const Var a = s.newVar();
  const Var b = s.newVar();
  s.addClause(mkLit(a), mkLit(b, true));
  s.addClause(mkLit(b));
  ASSERT_EQ(s.loggedClauses().size(), 2u);
  EXPECT_EQ(s.loggedClauses()[0],
            (std::vector<Lit>{mkLit(a), mkLit(b, true)}));
  // Learned clauses never enter the log.
  buildPhp(s, 5);
  const std::size_t afterAdds = s.loggedClauses().size();
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_EQ(s.loggedClauses().size(), afterAdds);
}

TEST(SolverAssumptions, OrderIndependentVerdicts) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  const Var c = s.newVar();
  s.addClause(mkLit(a, true), mkLit(b, true), mkLit(c));
  s.addClause(mkLit(c, true));
  // a & b forces c, contradicting !c — regardless of assumption order.
  EXPECT_EQ(s.solve({mkLit(a), mkLit(b)}), Result::kUnsat);
  EXPECT_EQ(s.solve({mkLit(b), mkLit(a)}), Result::kUnsat);
  EXPECT_EQ(s.solve({mkLit(a)}), Result::kSat);
  EXPECT_FALSE(s.modelValue(b));
}

TEST(SolverAssumptions, RepeatedAndImpliedAssumptions) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  s.addClause(mkLit(a, true), mkLit(b));  // a -> b
  // Duplicate and implied assumptions must not confuse the replay.
  EXPECT_EQ(s.solve({mkLit(a), mkLit(a), mkLit(b)}), Result::kSat);
  EXPECT_EQ(s.solve({mkLit(a), mkLit(b, true)}), Result::kUnsat);
}

TEST(SolverStructured, GraphColoringTriangle) {
  // 3-coloring a triangle is SAT; 2-coloring is UNSAT.
  auto color = [&](int colors) {
    Solver s;
    std::vector<std::vector<Var>> v(3);
    for (auto& node : v)
      for (int c = 0; c < colors; ++c) node.push_back(s.newVar());
    for (auto& node : v) {
      std::vector<Lit> atLeast;
      for (Var x : node) atLeast.push_back(mkLit(x));
      s.addClause(atLeast);
    }
    for (int i = 0; i < 3; ++i)
      for (int j = i + 1; j < 3; ++j)
        for (int c = 0; c < colors; ++c)
          s.addClause(mkLit(v[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)], true),
                      mkLit(v[static_cast<std::size_t>(j)][static_cast<std::size_t>(c)], true));
    return s.solve();
  };
  EXPECT_EQ(color(3), Result::kSat);
  EXPECT_EQ(color(2), Result::kUnsat);
}

TEST(SolverStructured, ParityChainsScale) {
  // XOR constraint chains of odd parity: UNSAT at every size; checks the
  // learner on long, narrow refutations.
  for (const int n : {16, 32, 64}) {
    Solver s;
    std::vector<Var> v;
    for (int i = 0; i < n; ++i) v.push_back(s.newVar());
    auto xorEq1 = [&](Var a, Var b) {
      s.addClause(mkLit(a), mkLit(b));
      s.addClause(mkLit(a, true), mkLit(b, true));
    };
    for (int i = 0; i + 1 < n; ++i)
      xorEq1(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i + 1)]);
    if (n % 2 == 0) {
      // n-1 (odd) constraints flip parity oddly: x0 != x_{n-1}; demand ==.
      s.addClause(mkLit(v[0]), mkLit(v[static_cast<std::size_t>(n - 1)], true));
      s.addClause(mkLit(v[0], true), mkLit(v[static_cast<std::size_t>(n - 1)]));
      EXPECT_EQ(s.solve(), Result::kUnsat) << n;
    }
  }
}

TEST(SolverModel, SnapshotSurvivesLaterAdds) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  s.addClause(mkLit(a));
  ASSERT_EQ(s.solve(), Result::kSat);
  const bool bVal = s.modelValue(b);
  // Adding a clause after SAT must be legal and not disturb the snapshot
  // until the next solve.  Force b to flip: the unit literal must be
  // negated exactly when the snapshot had b true.
  s.addClause(mkLit(b, bVal));
  EXPECT_EQ(s.modelValue(a), true);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.modelValue(b), !bVal);
}

}  // namespace
}  // namespace gkll::sat
