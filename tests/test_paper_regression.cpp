// Paper-shape regression: pins the qualitative results the benches print
// so that refactors cannot silently drift the reproduction.  (Exact
// values live in EXPERIMENTS.md; here we assert the claims.)
#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "flow/ff_select.h"
#include "flow/gk_flow.h"
#include "flow/placement.h"
#include "lock/glitch_keygate.h"

namespace gkll {
namespace {

double coverageOf(const BenchSpec& spec) {
  Netlist nl = generateBenchmark(spec);
  const PlacementResult pr = placeAndRoute(nl, PlacementOptions{});
  const CellLibrary& lib = CellLibrary::tsmc013c();
  StaConfig cfg;
  cfg.inputArrival = lib.clkToQ();
  Sta probe(nl, cfg);
  for (std::size_t i = 0; i < nl.flops().size(); ++i)
    probe.setClockArrival(nl.flops()[i], pr.clockArrival[i]);
  cfg.clockPeriod = probe.minClockPeriod(100);
  Sta sta(nl, cfg);
  for (std::size_t i = 0; i < nl.flops().size(); ++i)
    sta.setClockArrival(nl.flops()[i], pr.clockArrival[i]);
  GkParams p;
  p.gkDelayA = ns(1) - lib.maxDelay(CellKind::kXnor2);
  p.gkDelayB = ns(1) - lib.maxDelay(CellKind::kXor2);
  const auto cands =
      analyzeFlops(nl, sta, gkTiming(p), FfSelectOptions{ns(1), 150});
  return 100.0 * static_cast<double>(countAvailable(cands)) /
         static_cast<double>(nl.flops().size());
}

TEST(PaperRegression, TableOneCoveragePerCircuit) {
  // Paper Table I coverage column; our calibrated values must stay within
  // a few points (and the two exact hits must stay exact).
  const struct {
    const char* name;
    double paper;
    double tolerance;
  } rows[] = {
      {"s1238", 88.89, 0.01},  {"s5378", 63.80, 6.0}, {"s9234", 51.03, 6.0},
      {"s13207", 56.06, 6.0},  {"s15850", 43.28, 6.0}, {"s38417", 66.30, 6.0},
      {"s38584", 79.11, 6.0},
  };
  double sum = 0;
  for (const auto& row : rows) {
    const BenchSpec* spec = nullptr;
    for (const BenchSpec& s : iwls2005Specs())
      if (s.name == row.name) spec = &s;
    ASSERT_NE(spec, nullptr);
    const double cov = coverageOf(*spec);
    EXPECT_NEAR(cov, row.paper, row.tolerance) << row.name;
    sum += cov;
  }
  EXPECT_NEAR(sum / 7.0, 64.07, 2.0);  // the paper's headline average
}

TEST(PaperRegression, TableTwoShapeInvariants) {
  // On one mid-size circuit: overhead grows with GK count and the hybrid
  // allocation undercuts the all-GK allocation at equal key width.
  const Netlist orig = generateByName("s5378");
  auto overhead = [&](int gks, int xors) {
    GkFlowOptions opt;
    opt.numGks = gks;
    opt.hybridXorKeys = xors;
    const GkFlowResult r = runGkFlow(orig, opt);
    EXPECT_TRUE(r.verify.ok());
    return r.cellOverheadPct;
  };
  const double oh4 = overhead(4, 0);
  const double oh8 = overhead(8, 0);
  const double oh16 = overhead(16, 0);
  const double ohHybrid = overhead(8, 16);  // 32 key inputs
  EXPECT_LT(oh4, oh8);
  EXPECT_LT(oh8, oh16);
  EXPECT_LT(ohHybrid, oh16);
  EXPECT_GT(ohHybrid, oh8 * 0.9);  // the XOR half is nearly free, not free
}

TEST(PaperRegression, OverheadInverseToCircuitSize) {
  // Paper Table II row shape: the 38k-cell circuits sit at a few percent
  // while the sub-1k circuits pay double digits.
  auto cellOh = [&](const char* name) {
    GkFlowOptions opt;
    opt.numGks = 4;
    const GkFlowResult r = runGkFlow(generateByName(name), opt);
    return r.cellOverheadPct;
  };
  const double small = cellOh("s1238");
  const double large = cellOh("s38584");
  EXPECT_GT(small, 15.0);
  EXPECT_LT(large, 5.0);
  EXPECT_GT(small, 5 * large);
}

}  // namespace
}  // namespace gkll
