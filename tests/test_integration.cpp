// End-to-end properties across the whole stack, parameterised over the
// benchmark suite: encrypt -> verify -> attack, the full paper pipeline.
#include <gtest/gtest.h>

#include "attack/sat_attack.h"
#include "benchgen/synthetic_bench.h"
#include "core/gk_encryptor.h"
#include "netlist/bench_io.h"
#include "netlist/netlist_ops.h"
#include "sat/cnf.h"

namespace gkll {
namespace {

/// The five small/medium circuits keep the suite fast; the two 38k
/// circuits are covered by the benches.
std::vector<BenchSpec> smallSpecs() {
  std::vector<BenchSpec> out;
  for (const BenchSpec& s : iwls2005Specs())
    if (s.cells < 2000) out.push_back(s);
  return out;
}

class PipelineTest : public testing::TestWithParam<BenchSpec> {};

TEST_P(PipelineTest, EncryptVerifyAttack) {
  const Netlist orig = generateBenchmark(GetParam());
  GkEncryptor enc(orig);
  EncryptOptions opt;
  opt.numGks = 4;
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 4u) << GetParam().name;

  // Correct key: timing-accurate equivalence.
  EXPECT_TRUE(locked.verify.ok())
      << GetParam().name << ": " << locked.verify.stateMismatches << "/"
      << locked.verify.poMismatches << "/" << locked.verify.simViolations;
  EXPECT_EQ(locked.trueViolations, 0);

  // SAT attack: the paper's headline.
  const auto surf = enc.attackSurface(locked);
  const SatAttackResult sat =
      satAttack(surf.comb, surf.gkKeys, surf.oracleComb);
  EXPECT_TRUE(sat.unsatAtFirstIteration) << GetParam().name;
  EXPECT_FALSE(sat.decrypted) << GetParam().name;
}

TEST_P(PipelineTest, WrongKeysCorrupt) {
  const Netlist orig = generateBenchmark(GetParam());
  GkEncryptor enc(orig);
  EncryptOptions opt;
  opt.numGks = 2;
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 2u);
  const CorruptionReport c = enc.measureCorruption(locked, 4);
  EXPECT_EQ(c.corruptedTrials, 4) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(SmallSuite, PipelineTest,
                         testing::ValuesIn(smallSpecs()),
                         [](const testing::TestParamInfo<BenchSpec>& info) {
                           return info.param.name;
                         });

TEST(Integration, LockedNetlistSurvivesBenchRoundTrip) {
  // The encrypted netlist (with mapped delay chains) serialises to .bench
  // and reparses into an equivalent static circuit.
  GkEncryptor enc(generateByName("s1238"));
  EncryptOptions opt;
  opt.numGks = 2;
  const GkFlowResult locked = enc.encrypt(opt);
  const auto parsed = parseBench(writeBench(locked.design.netlist), "rt");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const CombExtraction a = extractCombinational(locked.design.netlist);
  const CombExtraction b = extractCombinational(parsed.netlist);
  EXPECT_TRUE(sat::checkEquivalence(a.netlist, b.netlist).equivalent);
}

TEST(Integration, BiggestCircuitSmokeTest) {
  // One pass over s38417 keeps the 38k-scale path exercised in CI.
  GkEncryptor enc(generateByName("s38417"));
  EncryptOptions opt;
  opt.numGks = 4;
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 4u);
  EXPECT_TRUE(locked.verify.ok());
  EXPECT_LT(locked.cellOverheadPct, 10.0);  // big host, small footprint
}

}  // namespace
}  // namespace gkll
