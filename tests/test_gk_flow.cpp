#include "flow/gk_flow.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"

namespace gkll {
namespace {

TEST(GkFlow, BasicInsertionOnBenchmark) {
  const Netlist orig = generateByName("s1238");
  GkFlowOptions opt;
  opt.numGks = 4;
  const GkFlowResult r = runGkFlow(orig, opt);
  EXPECT_EQ(r.insertions.size(), 4u);
  EXPECT_EQ(r.lockedFfs.size(), 4u);
  EXPECT_EQ(r.design.keyInputs.size(), 8u);  // 2 bits per GK
  EXPECT_EQ(r.design.correctKey.size(), 8u);
  EXPECT_GT(r.clockPeriod, 0);
  EXPECT_FALSE(r.design.netlist.validate().has_value());
}

TEST(GkFlow, CorrectKeyVerifies) {
  const Netlist orig = generateByName("s5378");
  GkFlowOptions opt;
  opt.numGks = 4;
  const GkFlowResult r = runGkFlow(orig, opt);
  ASSERT_EQ(r.insertions.size(), 4u);
  EXPECT_TRUE(r.verify.ok()) << r.verify.stateMismatches << " state, "
                             << r.verify.poMismatches << " PO, "
                             << r.verify.simViolations << " violations";
  EXPECT_EQ(r.trueViolations, 0);
}

TEST(GkFlow, CorrectBehaviourIsATransition) {
  // Paper Sec. VI: every inserted GK transmits on the glitch level, so
  // the secret behaviour must be TrigA or TrigB, never a constant.
  const Netlist orig = generateByName("s1238");
  GkFlowOptions opt;
  opt.numGks = 4;
  const GkFlowResult r = runGkFlow(orig, opt);
  for (const GkInsertion& ins : r.insertions) {
    EXPECT_TRUE(ins.correct == GkBehavior::kTrigA ||
                ins.correct == GkBehavior::kTrigB);
  }
}

TEST(GkFlow, StaReportsFalseViolationsOnGkPaths) {
  // Paper Sec. IV-B: "EDA tools will report that the FF at the output of
  // the GK is violated" — a deliberate, false violation.
  const Netlist orig = generateByName("s1238");
  GkFlowOptions opt;
  opt.numGks = 4;
  const GkFlowResult r = runGkFlow(orig, opt);
  EXPECT_EQ(r.falseViolations, 4);
  EXPECT_EQ(r.trueViolations, 0);
}

TEST(GkFlow, KeepsTheOriginalClockPeriod) {
  const Netlist orig = generateByName("s1238");
  GkFlowOptions opt;
  opt.numGks = 2;
  opt.clockPeriod = ns(6);
  const GkFlowResult r = runGkFlow(orig, opt);
  EXPECT_EQ(r.clockPeriod, ns(6));
}

TEST(GkFlow, OverheadGrowsWithGkCount) {
  const Netlist orig = generateByName("s5378");
  GkFlowOptions o4;
  o4.numGks = 4;
  GkFlowOptions o8;
  o8.numGks = 8;
  const GkFlowResult r4 = runGkFlow(orig, o4);
  const GkFlowResult r8 = runGkFlow(orig, o8);
  ASSERT_EQ(r4.insertions.size(), 4u);
  ASSERT_EQ(r8.insertions.size(), 8u);
  EXPECT_GT(r8.cellOverheadPct, r4.cellOverheadPct);
  EXPECT_GT(r8.areaOverheadPct, r4.areaOverheadPct);
  EXPECT_GT(r4.cellOverheadPct, 0);
}

TEST(GkFlow, HybridAddsXorKeys) {
  const Netlist orig = generateByName("s5378");
  GkFlowOptions opt;
  opt.numGks = 4;
  opt.hybridXorKeys = 8;
  const GkFlowResult r = runGkFlow(orig, opt);
  ASSERT_EQ(r.insertions.size(), 4u);
  EXPECT_EQ(r.design.keyInputs.size(), 16u);
  EXPECT_EQ(r.design.scheme, "gk+xor");
  EXPECT_TRUE(r.verify.ok());
  EXPECT_EQ(r.trueViolations, 0);  // slack filtering protects the period
}

TEST(GkFlow, InsertsAtMostAvailable) {
  const Netlist orig = generateByName("s1238");  // 16 available flops
  GkFlowOptions opt;
  opt.numGks = 100;
  const GkFlowResult r = runGkFlow(orig, opt);
  EXPECT_LE(r.insertions.size(), r.availableFfs);
  EXPECT_GT(r.insertions.size(), 0u);
}

TEST(GkFlow, MapDelaysOffLeavesIdealElements) {
  const Netlist orig = generateByName("s1238");
  GkFlowOptions opt;
  opt.numGks = 2;
  opt.mapDelays = false;
  const GkFlowResult r = runGkFlow(orig, opt);
  int ideal = 0;
  for (GateId g = 0; g < r.design.netlist.numGates(); ++g)
    if (r.design.netlist.gate(g).kind == CellKind::kDelay) ++ideal;
  EXPECT_EQ(ideal, 2 * 4);  // A, B in the GK + two ADB taps per KEYGEN
  EXPECT_TRUE(r.verify.ok());
}

TEST(GkFlow, DeterministicForSeed) {
  const Netlist orig = generateByName("s1238");
  GkFlowOptions opt;
  opt.numGks = 3;
  const GkFlowResult a = runGkFlow(orig, opt);
  const GkFlowResult b = runGkFlow(orig, opt);
  EXPECT_EQ(a.design.correctKey, b.design.correctKey);
  EXPECT_EQ(a.lockedFfs, b.lockedFfs);
  EXPECT_EQ(a.cellOverheadPct, b.cellOverheadPct);
}

TEST(GkFlow, SeedVariesSelection) {
  const Netlist orig = generateByName("s5378");
  GkFlowOptions a, b;
  a.numGks = b.numGks = 4;
  a.seed = 11;
  b.seed = 12;
  const GkFlowResult ra = runGkFlow(orig, a);
  const GkFlowResult rb = runGkFlow(orig, b);
  EXPECT_NE(ra.lockedFfs, rb.lockedFfs);
}

TEST(GkFlow, ClockArrivalsCoverAllFlops) {
  const Netlist orig = generateByName("s1238");
  GkFlowOptions opt;
  opt.numGks = 2;
  const GkFlowResult r = runGkFlow(orig, opt);
  EXPECT_EQ(r.clockArrival.size(), r.design.netlist.flops().size());
  // KEYGEN flops ride the trunk (arrival 0).
  for (std::size_t i = orig.flops().size(); i < r.clockArrival.size(); ++i)
    EXPECT_EQ(r.clockArrival[i], kPostPlacementClockArrival);
}

TEST(VerifySequentialFn, DetectsDeliberateCorruption) {
  // Flipping one GK key bit must produce mismatches.
  const Netlist orig = generateByName("s1238");
  GkFlowOptions opt;
  opt.numGks = 2;
  const GkFlowResult r = runGkFlow(orig, opt);
  ASSERT_TRUE(r.verify.ok());
  std::vector<int> bad = r.design.correctKey;
  bad[0] ^= 1;
  VerifyOptions vo;
  vo.clockPeriod = r.clockPeriod;
  vo.inputArrival = CellLibrary::tsmc013c().clkToQ();
  const VerifyReport v =
      verifySequential(orig, r.design.netlist, orig.flops().size(),
                       r.clockArrival, r.design.keyInputs, bad, vo);
  EXPECT_GT(v.stateMismatches, 0);
}

}  // namespace
}  // namespace gkll
