// Tests for the task-graph scheduler (src/runtime/task_graph.*) and the
// in-place result slots behind parallelSweep: randomized DAGs byte-identical
// across thread counts, drain guarantees under exceptions / cancellation /
// deadlines (no orphaned tasks), stats and per-kind telemetry, and sweeps
// over result types that are not default-constructible.
#include "runtime/task_graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.h"
#include "runtime/cancel.h"
#include "runtime/parallel.h"
#include "runtime/pool.h"
#include "runtime/sweep.h"
#include "util/rng.h"

namespace gkll {
namespace {

using runtime::CancelToken;
using runtime::Deadline;
using runtime::ParallelOptions;
using runtime::TaskCtx;
using runtime::TaskGraph;
using runtime::TaskGraphOptions;
using runtime::ThreadPool;

// --- determinism across thread counts ---------------------------------------

// Build a pseudo-random DAG (topology drawn from `trial`, independent of the
// pool) whose node values mix the node's private rng stream with its
// dependencies' values, and return the per-node results.
std::vector<std::uint64_t> runRandomGraph(std::uint64_t trial,
                                          ThreadPool& pool) {
  Rng topo(0xD1CE0000 + trial);
  constexpr std::size_t kNodes = 64;
  std::vector<std::uint64_t> results(kNodes, 0);

  TaskGraphOptions opt;
  opt.pool = &pool;
  opt.masterSeed = 40 + trial;
  TaskGraph g(opt);
  for (std::size_t i = 0; i < kNodes; ++i) {
    std::vector<TaskGraph::NodeId> deps;
    if (i > 0) {
      const std::size_t ndeps = topo.next() % 4;  // 0..3 earlier nodes
      for (std::size_t d = 0; d < ndeps; ++d)
        deps.push_back(topo.next() % i);
    }
    g.add("rand",
          [&results, deps, i](TaskCtx& ctx) {
            std::uint64_t v = ctx.rng.next() ^ (ctx.seed * 0x9E3779B97F4A7C15ull);
            // Dependency edges synchronise these reads (happens-before via
            // the remaining-count release/acquire in the scheduler).
            for (TaskGraph::NodeId d : deps)
              v = v * 0x100000001B3ull + results[d];
            results[i] = v;
          },
          deps);
  }
  g.run();
  EXPECT_EQ(g.stats().executed, kNodes);
  EXPECT_EQ(g.stats().skipped, 0u);
  return results;
}

TEST(TaskGraph, RandomGraphsByteIdenticalAcrossThreadCounts) {
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    ThreadPool serial(1);
    const std::vector<std::uint64_t> expect = runRandomGraph(trial, serial);
    for (std::size_t lanes : {2u, 4u}) {
      ThreadPool pool(lanes);
      EXPECT_EQ(runRandomGraph(trial, pool), expect)
          << "trial " << trial << " lanes " << lanes;
    }
  }
}

TEST(TaskGraph, DiamondDependenciesSeeEveryPredecessor) {
  ThreadPool pool(4);
  TaskGraphOptions opt;
  opt.pool = &pool;
  TaskGraph g(opt);
  std::atomic<std::uint64_t> a{0}, b{0}, c{0};
  std::uint64_t joined = 0;
  const auto top = g.add("gen", [&](TaskCtx&) { a.store(3); });
  const auto left = g.add("mid", [&](TaskCtx&) { b.store(a.load() * 5); }, {top});
  const auto right = g.add("mid", [&](TaskCtx&) { c.store(a.load() * 7); }, {top});
  g.add("join", [&](TaskCtx&) { joined = b.load() + c.load(); },
        {left, right});
  g.run();
  EXPECT_EQ(joined, 3u * 5u + 3u * 7u);
  EXPECT_EQ(g.stats().executed, 4u);
  EXPECT_EQ(g.stats().executedByKind.at("mid"), 2u);
}

TEST(TaskGraph, SeedIndexOverrideGivesIdenticalStreams) {
  // Two structurally repeated nodes with the same seedIndex draw the same
  // randomness even though their node ids differ — the mechanism the bench
  // driver uses to byte-compare repetition instances.
  ThreadPool pool(2);
  TaskGraphOptions opt;
  opt.pool = &pool;
  opt.masterSeed = 77;
  TaskGraph g(opt);
  std::uint64_t d0 = 0, d1 = 0, dOther = 0;
  g.add("rep", [&](TaskCtx& ctx) { d0 = ctx.rng.next(); }, {}, 9);
  g.add("rep", [&](TaskCtx& ctx) { d1 = ctx.rng.next(); }, {}, 9);
  g.add("rep", [&](TaskCtx& ctx) { dOther = ctx.rng.next(); }, {}, 10);
  g.run();
  EXPECT_EQ(d0, d1);
  EXPECT_NE(d0, dOther);
}

TEST(TaskGraph, NestedParallelForInsideNodeBody) {
  // Node bodies may fan out on the graph's pool (helping join — no
  // deadlock even when every lane is busy with graph nodes).
  ThreadPool pool(2);
  TaskGraphOptions opt;
  opt.pool = &pool;
  TaskGraph g(opt);
  std::vector<std::uint64_t> sums(8, 0);
  for (std::size_t k = 0; k < sums.size(); ++k) {
    g.add("fan", [&sums, k](TaskCtx& ctx) {
      std::vector<std::uint64_t> parts(32, 0);
      ParallelOptions po;
      po.pool = ctx.pool;
      runtime::parallelFor(
          parts.size(), [&](std::size_t i) { parts[i] = i + k; }, po);
      for (std::uint64_t p : parts) sums[k] += p;
    });
  }
  g.run();
  for (std::size_t k = 0; k < sums.size(); ++k)
    EXPECT_EQ(sums[k], 32u * 31u / 2 + 32u * k);
}

// --- failure / cancellation / deadline drain ---------------------------------

TEST(TaskGraph, ExceptionPropagatesAndGraphDrains) {
  for (std::size_t lanes : {1u, 4u}) {
    ThreadPool pool(lanes);
    TaskGraphOptions opt;
    opt.pool = &pool;
    TaskGraph g(opt);
    std::atomic<std::size_t> ran{0};
    const auto a = g.add("gen", [&](TaskCtx&) { ++ran; });
    const auto boom = g.add(
        "gen", [&](TaskCtx&) { throw std::runtime_error("node failed"); },
        {a});
    g.add("gen", [&](TaskCtx&) { ++ran; }, {boom});  // must be skipped
    g.add("gen", [&](TaskCtx&) { ++ran; }, {boom});  // must be skipped
    EXPECT_THROW(g.run(), std::runtime_error);
    // The graph drained: every node was scheduled exactly once, nothing
    // orphaned in the pool (counted as executed or skipped).
    EXPECT_EQ(g.stats().executed + g.stats().skipped, g.size());
    EXPECT_GE(g.stats().skipped, 2u);
    EXPECT_EQ(ran.load(), 1u);
  }
}

TEST(TaskGraph, CancelMidGraphLeavesNoOrphanedTasks) {
  for (std::size_t lanes : {1u, 4u}) {
    ThreadPool pool(lanes);
    CancelToken cancel = CancelToken::make();
    TaskGraphOptions opt;
    opt.pool = &pool;
    opt.cancel = cancel;
    TaskGraph g(opt);
    constexpr std::size_t kChain = 50;
    std::size_t ran = 0;
    TaskGraph::NodeId prev = g.add("link", [&](TaskCtx&) { ++ran; });
    for (std::size_t i = 1; i < kChain; ++i) {
      prev = g.add("link",
                   [&ran, &cancel, i](TaskCtx&) {
                     ++ran;
                     if (i == 10) cancel.requestCancel();
                   },
                   {prev});
    }
    // Cancellation is not an error: run() returns normally with the whole
    // chain drained and everything after the firing node skipped.
    EXPECT_NO_THROW(g.run());
    EXPECT_TRUE(g.stats().canceled);
    EXPECT_FALSE(g.stats().deadlineExpired);
    EXPECT_EQ(g.stats().executed + g.stats().skipped, kChain);
    EXPECT_EQ(ran, 11u);  // chain order is deterministic: 0..10 ran
    EXPECT_EQ(g.stats().skipped, kChain - 11);
    // The pool is still healthy afterwards: a fresh graph runs fine.
    TaskGraphOptions opt2;
    opt2.pool = &pool;
    TaskGraph g2(opt2);
    bool again = false;
    g2.add("after", [&](TaskCtx&) { again = true; });
    g2.run();
    EXPECT_TRUE(again);
  }
}

TEST(TaskGraph, DeadlineExpiredSkipsRemainingBodies) {
  ThreadPool pool(2);
  TaskGraphOptions opt;
  opt.pool = &pool;
  opt.deadline = Deadline::afterMs(0);  // already expired
  TaskGraph g(opt);
  std::atomic<std::size_t> ran{0};
  for (std::size_t i = 0; i < 20; ++i)
    g.add("late", [&](TaskCtx&) { ++ran; });
  EXPECT_NO_THROW(g.run());
  EXPECT_TRUE(g.stats().deadlineExpired);
  EXPECT_EQ(g.stats().executed, 0u);
  EXPECT_EQ(g.stats().skipped, 20u);
  EXPECT_EQ(ran.load(), 0u);
}

// --- API validation and stats ------------------------------------------------

TEST(TaskGraph, AddAndRunValidation) {
  TaskGraphOptions opt;
  ThreadPool pool(1);
  opt.pool = &pool;
  TaskGraph g(opt);
  // A node may only depend on already-added nodes (acyclic by construction).
  EXPECT_THROW(g.add("bad", [](TaskCtx&) {}, {0}), std::logic_error);
  g.add("ok", [](TaskCtx&) {});
  EXPECT_THROW(g.add("bad", [](TaskCtx&) {}, {5}), std::logic_error);
  g.run();
  EXPECT_THROW(g.run(), std::logic_error);
  EXPECT_THROW(g.add("late", [](TaskCtx&) {}), std::logic_error);

  TaskGraph empty(opt);
  EXPECT_NO_THROW(empty.run());  // zero nodes is fine
  EXPECT_EQ(empty.stats().executed, 0u);
}

TEST(TaskGraph, StatsMeasureCriticalPathAndKinds) {
  ThreadPool pool(2);
  TaskGraphOptions opt;
  opt.pool = &pool;
  TaskGraph g(opt);
  const auto sleepBody = [](TaskCtx&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  // A 3-deep chain plus 3 independent nodes: critical path ≈ 3 node times,
  // total ≈ 6 node times.
  auto prev = g.add("chain", sleepBody);
  prev = g.add("chain", sleepBody, {prev});
  prev = g.add("chain", sleepBody, {prev});
  for (int i = 0; i < 3; ++i) g.add("free", sleepBody);
  g.run();
  const TaskGraph::Stats& st = g.stats();
  EXPECT_EQ(st.executed, 6u);
  EXPECT_EQ(st.executedByKind.at("chain"), 3u);
  EXPECT_EQ(st.executedByKind.at("free"), 3u);
  EXPECT_GE(st.criticalPathMs, 5.0);  // 3 chained 2 ms sleeps
  EXPECT_GE(st.totalTaskMs, st.criticalPathMs - 1e-9);
}

TEST(TaskGraph, TelemetryCountersPerKind) {
  obs::registry().reset();
  obs::setEnabled(true);
  {
    ThreadPool pool(2);
    TaskGraphOptions opt;
    opt.pool = &pool;
    TaskGraph g(opt);
    auto gen = g.add("gen", [](TaskCtx&) {});
    for (int i = 0; i < 4; ++i) g.add("sim", [](TaskCtx&) {}, {gen});
    g.run();
    EXPECT_EQ(obs::registry().counterValue("scheduler.execute.gen"), 1u);
    EXPECT_EQ(obs::registry().counterValue("scheduler.execute.sim"), 4u);
    // Steal counters never exceed executions of their kind.
    EXPECT_LE(obs::registry().counterValue("scheduler.steal.sim"), 4u);
    EXPECT_EQ(g.stats().stolen,
              obs::registry().counterValue("scheduler.steal.gen") +
                  obs::registry().counterValue("scheduler.steal.sim"));
  }
  obs::setEnabled(false);
  obs::registry().reset();
}

// --- in-place result slots / non-default-constructible sweeps ----------------

struct MoveOnlyRow {
  explicit MoveOnlyRow(std::uint64_t v) : value(v) {}
  MoveOnlyRow(MoveOnlyRow&&) = default;
  MoveOnlyRow& operator=(MoveOnlyRow&&) = delete;
  MoveOnlyRow(const MoveOnlyRow&) = delete;
  std::uint64_t value;
  bool operator==(const MoveOnlyRow&) const = default;
};
static_assert(!std::is_default_constructible_v<MoveOnlyRow>);

TEST(TaskGraphSlots, EmplaceOutOfOrderAndTake) {
  runtime::detail::Slots<MoveOnlyRow> slots(3);
  EXPECT_FALSE(slots.built(1));
  slots.emplace(2, MoveOnlyRow{20});
  slots.emplace(0, MoveOnlyRow{0});
  slots.emplace(1, MoveOnlyRow{10});
  EXPECT_TRUE(slots.built(1));
  const std::vector<MoveOnlyRow> rows = slots.take();
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(rows[i].value, 10u * i);
}

TEST(TaskGraphSlots, ParallelSweepWithoutDefaultConstruction) {
  const auto fn = [](std::size_t i, Rng& rng) {
    return MoveOnlyRow{rng.next() + i};
  };
  ThreadPool serial(1);
  ParallelOptions po;
  po.pool = &serial;
  const std::vector<MoveOnlyRow> expect =
      runtime::parallelSweep<MoveOnlyRow>(100, 5, fn, po);
  ThreadPool wide(4);
  po.pool = &wide;
  const std::vector<MoveOnlyRow> got =
      runtime::parallelSweep<MoveOnlyRow>(100, 5, fn, po);
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace gkll
