#include "sim/event_sim.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "benchgen/synthetic_bench.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace gkll {
namespace {

const CellLibrary& lib() { return CellLibrary::tsmc013c(); }

TEST(EventSim, InverterPropagatesWithDelay) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kInv, {a}, y);
  nl.markPO(y);

  EventSimConfig cfg;
  cfg.simTime = ns(5);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::F);
  sim.drive(a, ns(1), Logic::T);
  sim.run();

  EXPECT_EQ(sim.valueAt(y, 0), Logic::T);  // settled inverse of initial
  // y falls one INV fall-delay after the rise on a.
  EXPECT_EQ(sim.valueAt(y, ns(1) + lib().info(CellKind::kInv).fall - 1),
            Logic::T);
  EXPECT_EQ(sim.valueAt(y, ns(1) + lib().info(CellKind::kInv).fall), Logic::F);
}

TEST(EventSim, TransportPreservesNarrowPulses) {
  // A 30 ps pulse must survive a chain of gates whose delays exceed the
  // pulse width — that is the transport-delay property GKs rely on.
  Netlist nl;
  const NetId a = nl.addPI("a");
  NetId cur = a;
  for (int i = 0; i < 4; ++i) {
    const NetId next = nl.addNet();
    nl.addGate(CellKind::kBuf, {cur}, next);
    cur = next;
  }
  nl.markPO(cur);

  EventSimConfig cfg;
  cfg.simTime = ns(4);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::F);
  sim.drive(a, ns(1), Logic::T);
  sim.drive(a, ns(1) + 30, Logic::F);
  sim.run();

  const auto g = glitches(sim.wave(cur), 0, ns(4), 200);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].level, Logic::T);
  // Each buffer stage erodes a high pulse by its rise-fall asymmetry
  // (65 - 60 = 5 ps), so 30 ps in -> 10 ps out after four stages — but the
  // pulse must survive, never be swallowed (inertial delay would drop it).
  const Ps erosion = lib().info(CellKind::kBuf).rise - lib().info(CellKind::kBuf).fall;
  EXPECT_EQ(g[0].width(), 30 - 4 * erosion);
}

TEST(EventSim, IdealDelayElementShiftsExactly) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addDelay(a, y, 1234);
  nl.markPO(y);

  EventSimConfig cfg;
  cfg.simTime = ns(5);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::F);
  sim.drive(a, ns(1), Logic::T);
  sim.run();
  EXPECT_EQ(sim.valueAt(y, ns(1) + 1233), Logic::F);
  EXPECT_EQ(sim.valueAt(y, ns(1) + 1234), Logic::T);
}

TEST(EventSim, WireDelayAdds) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kBuf, {a}, y);
  nl.net(y).wireDelay = 500;
  nl.markPO(y);

  EventSimConfig cfg;
  cfg.simTime = ns(5);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::F);
  sim.drive(a, ns(1), Logic::T);
  sim.run();
  const Ps expect = ns(1) + lib().info(CellKind::kBuf).rise + 500;
  EXPECT_EQ(sim.valueAt(y, expect - 1), Logic::F);
  EXPECT_EQ(sim.valueAt(y, expect), Logic::T);
}

TEST(EventSim, CausalityUnderAsymmetricDelays) {
  // Two input changes closer together than the rise/fall asymmetry must
  // still leave the output at its final functional value (regression for
  // the scheduling-order hazard).
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId b = nl.addPI("b");
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kOr2, {a, b}, y);  // rise 66, fall 60
  nl.markPO(y);

  EventSimConfig cfg;
  cfg.simTime = ns(3);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::F);
  sim.setInitialInput(b, Logic::F);
  sim.drive(a, 1000, Logic::T);   // schedules y=1 at 1066
  sim.drive(a, 1002, Logic::F);   // would schedule y=0 at 1062 (!)
  sim.run();
  EXPECT_EQ(sim.wave(y).finalValue(), Logic::F);
}

TEST(EventSim, FlopCapturesOnEdges) {
  Netlist nl;
  const NetId d = nl.addPI("d");
  const NetId q = nl.addNet("q");
  const GateId ff = nl.addGate(CellKind::kDff, {d}, q);
  nl.markPO(q);
  (void)ff;

  EventSimConfig cfg;
  cfg.clockPeriod = ns(4);
  cfg.simTime = ns(14);
  EventSim sim(nl, cfg);
  sim.setInitialInput(d, Logic::T);
  sim.drive(d, ns(5), Logic::F);
  sim.run();

  EXPECT_EQ(sim.valueAt(q, ns(4) + lib().clkToQ()), Logic::T);   // edge 1
  EXPECT_EQ(sim.valueAt(q, ns(8) + lib().clkToQ()), Logic::F);   // edge 2
  EXPECT_TRUE(sim.violations().empty());
}

TEST(EventSim, SetupViolationDetectedAndPoisons) {
  Netlist nl;
  const NetId d = nl.addPI("d");
  const NetId q = nl.addNet("q");
  nl.addGate(CellKind::kDff, {d}, q);
  nl.markPO(q);

  EventSimConfig cfg;
  cfg.clockPeriod = ns(4);
  cfg.simTime = ns(6);
  EventSim sim(nl, cfg);
  sim.setInitialInput(d, Logic::F);
  // Change inside the setup window (edge at 4 ns, Tsu 90 ps).
  sim.drive(d, ns(4) - 40, Logic::T);
  sim.run();
  ASSERT_EQ(sim.violations().size(), 1u);
  EXPECT_TRUE(sim.violations()[0].isSetup);
  EXPECT_EQ(sim.valueAt(q, ns(4) + lib().clkToQ()), Logic::X);
}

TEST(EventSim, HoldViolationDetected) {
  Netlist nl;
  const NetId d = nl.addPI("d");
  const NetId q = nl.addNet("q");
  nl.addGate(CellKind::kDff, {d}, q);
  nl.markPO(q);

  EventSimConfig cfg;
  cfg.clockPeriod = ns(4);
  cfg.simTime = ns(6);
  EventSim sim(nl, cfg);
  sim.setInitialInput(d, Logic::F);
  // Change just after the edge, inside the 25 ps hold window.
  sim.drive(d, ns(4) + 10, Logic::T);
  sim.run();
  ASSERT_EQ(sim.violations().size(), 1u);
  EXPECT_FALSE(sim.violations()[0].isSetup);
}

TEST(EventSim, StableWindowBoundariesAreLegal) {
  Netlist nl;
  const NetId d = nl.addPI("d");
  const NetId q = nl.addNet("q");
  nl.addGate(CellKind::kDff, {d}, q);
  nl.markPO(q);

  EventSimConfig cfg;
  cfg.clockPeriod = ns(4);
  cfg.simTime = ns(6);
  EventSim sim(nl, cfg);
  sim.setInitialInput(d, Logic::F);
  sim.drive(d, ns(4) - lib().setupTime(), Logic::T);  // exactly at Tsu: legal
  sim.run();
  EXPECT_TRUE(sim.violations().empty());
  EXPECT_EQ(sim.valueAt(q, ns(4) + lib().clkToQ()), Logic::T);
}

TEST(EventSim, ClockSkewShiftsCaptures) {
  Netlist nl;
  const NetId d = nl.addPI("d");
  const NetId q = nl.addNet("q");
  const GateId ff = nl.addGate(CellKind::kDff, {d}, q);
  nl.markPO(q);

  EventSimConfig cfg;
  cfg.clockPeriod = ns(4);
  cfg.simTime = ns(6);
  EventSim sim(nl, cfg);
  sim.setClockArrival(ff, 300);
  sim.setInitialInput(d, Logic::F);
  sim.drive(d, ns(4) + 100, Logic::T);  // before the skewed edge at 4.3 ns
  sim.run();
  EXPECT_TRUE(sim.violations().empty());
  EXPECT_EQ(sim.valueAt(q, ns(4) + 300 + lib().clkToQ()), Logic::T);
}

TEST(EventSim, CaptureStartSkipsEarlyEdges) {
  Netlist nl;
  const NetId d = nl.addPI("d");
  const NetId q = nl.addNet("q");
  const GateId ff = nl.addGate(CellKind::kDff, {d}, q);
  nl.markPO(q);

  EventSimConfig cfg;
  cfg.clockPeriod = ns(4);
  cfg.simTime = ns(10);
  EventSim sim(nl, cfg);
  sim.setCaptureStart(ff, 2);
  sim.setInitialState(ff, Logic::T);
  sim.setInitialInput(d, Logic::F);
  sim.run();
  // Edge 1 skipped: Q still holds the preset state after it.
  EXPECT_EQ(sim.valueAt(q, ns(4) + lib().clkToQ() + 10), Logic::T);
  // Edge 2 captures.
  EXPECT_EQ(sim.valueAt(q, ns(8) + lib().clkToQ() + 10), Logic::F);
}

TEST(EventSim, InitialSettleMatchesZeroDelaySim) {
  // Property: at t=0 the event simulator's settled values equal the
  // zero-delay simulator's for the same inputs and state.
  const Netlist nl = generateByName("s1238");
  Rng rng(3);
  std::vector<Logic> in;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    in.push_back(logicFromBool(rng.flip()));

  EventSimConfig cfg;
  cfg.clockPeriod = ns(10);
  cfg.simTime = ns(1);
  EventSim sim(nl, cfg);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    sim.setInitialInput(nl.inputs()[i], in[i]);
  sim.run();

  SequentialSim ref(nl);
  ref.reset();
  ref.step(in);
  const auto& nets = ref.netValues();
  for (NetId n = 0; n < nl.numNets(); ++n)
    EXPECT_EQ(sim.wave(n).initial(), nets[n]) << nl.net(n).name;
}

TEST(EventSim, SteadyStateMatchesZeroDelayAfterSettle) {
  // Drive new PI values mid-cycle; before the next capture the settled
  // values must equal a zero-delay evaluation.
  const Netlist nl = generateByName("s1238");
  Rng rng(4);
  std::vector<Logic> in0, in1;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    in0.push_back(logicFromBool(rng.flip()));
    in1.push_back(logicFromBool(rng.flip()));
  }

  EventSimConfig cfg;
  cfg.clockPeriod = ns(10);
  cfg.simTime = ns(10);  // no captures before 10 ns: state stays at reset
  EventSim sim(nl, cfg);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    sim.setInitialInput(nl.inputs()[i], in0[i]);
    sim.drive(nl.inputs()[i], ns(2), in1[i]);
  }
  sim.run();

  SequentialSim ref(nl);
  ref.reset();
  ref.step(in1);
  const auto& nets = ref.netValues();
  for (NetId po : nl.outputs())
    EXPECT_EQ(sim.valueAt(po, ns(10) - 1), nets[po]) << nl.net(po).name;
}

// The guards below are real exceptions, not asserts: they must fire in
// Debug *and* Release/NDEBUG builds alike (CI exercises both — the ASan
// job builds Debug, the TSan and perf jobs build release configurations).
TEST(EventSimGuards, DriveRejectsNonPrimaryInputNets) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kInv, {a}, y);
  nl.markPO(y);
  EventSimConfig cfg;
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  EXPECT_THROW(sim.drive(y, 100, Logic::T), std::invalid_argument);
  EXPECT_THROW(sim.drive(static_cast<NetId>(nl.numNets() + 3), 100, Logic::T),
               std::invalid_argument);
  EXPECT_NO_THROW(sim.drive(a, 100, Logic::T));
}

TEST(EventSimGuards, SecondRunWithoutResetThrows) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kBuf, {a}, y);
  nl.markPO(y);
  EventSimConfig cfg;
  cfg.simTime = ns(2);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::F);
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
  sim.reset();  // recycling is the sanctioned way to go again
  EXPECT_NO_THROW(sim.run());
}

TEST(EventSimGuards, RejectsLibraryWithClkToQShorterThanHold) {
  // The Q-commit window check can only see the whole hold window when
  // clkToQ >= holdTime; a library violating that must be refused up front.
  Netlist nl;
  const NetId d = nl.addPI("d");
  const NetId q = nl.addNet("q");
  nl.addGate(CellKind::kDff, {d}, q);
  nl.markPO(q);
  EventSimConfig cfg;
  const CellLibrary bad = CellLibrary::withFlopTiming(90, 200, 120);
  EXPECT_THROW(EventSim(nl, cfg, bad), std::invalid_argument);
  const CellLibrary boundary = CellLibrary::withFlopTiming(90, 25, 25);
  EXPECT_NO_THROW(EventSim(nl, cfg, boundary));
}

TEST(EventSim, ActivityIsCounted) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kInv, {a}, y);
  nl.markPO(y);
  EventSimConfig cfg;
  cfg.simTime = ns(5);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::F);
  sim.drive(a, ns(1), Logic::T);
  sim.drive(a, ns(2), Logic::F);
  sim.run();
  EXPECT_EQ(sim.totalEvents(), 4u);  // two changes on a, two on y
}

}  // namespace
}  // namespace gkll
