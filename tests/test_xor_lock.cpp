#include "lock/xor_lock.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "netlist/netlist_ops.h"
#include "sat/cnf.h"
#include "util/rng.h"

namespace gkll {
namespace {

TEST(XorLock, CorrectKeyRestoresFunction) {
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{4, 42});
  ASSERT_EQ(ld.keyInputs.size(), 4u);
  const Netlist unlocked = applyKey(ld.netlist, ld.keyInputs, ld.correctKey);
  EXPECT_TRUE(sat::checkEquivalence(unlocked, orig).equivalent);
}

TEST(XorLock, EveryWrongKeyCorruptsC17) {
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{3, 43});
  for (int key = 0; key < 8; ++key) {
    std::vector<int> bits{key & 1, (key >> 1) & 1, (key >> 2) & 1};
    if (bits == ld.correctKey) continue;
    const Netlist unlocked = applyKey(ld.netlist, ld.keyInputs, bits);
    EXPECT_FALSE(sat::checkEquivalence(unlocked, orig).equivalent)
        << "key " << key << " should corrupt";
  }
}

TEST(XorLock, KeyGateKindsMatchKeyBits) {
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{4, 44});
  for (std::size_t i = 0; i < ld.keyInputs.size(); ++i) {
    const NetId key = ld.keyInputs[i];
    ASSERT_EQ(ld.netlist.net(key).fanouts.size(), 1u);
    const Gate& g = ld.netlist.gate(ld.netlist.net(key).fanouts[0]);
    if (ld.correctKey[i] == 0)
      EXPECT_EQ(g.kind, CellKind::kXor2);
    else
      EXPECT_EQ(g.kind, CellKind::kXnor2);
  }
}

TEST(XorLock, PreservesInterfaceCounts) {
  const Netlist orig = makeToySeq();
  const LockedDesign ld = xorLock(orig, XorLockOptions{2, 45});
  EXPECT_EQ(ld.netlist.inputs().size(), orig.inputs().size() + 2);
  EXPECT_EQ(ld.netlist.outputs().size(), orig.outputs().size());
  EXPECT_EQ(ld.netlist.flops().size(), orig.flops().size());
  EXPECT_EQ(ld.netlist.stats().numCells, orig.stats().numCells + 2);
}

TEST(XorLock, SequentialCorrectKeyEquivalence) {
  const Netlist orig = makeToySeq();
  const LockedDesign ld = xorLock(orig, XorLockOptions{3, 46});
  const Netlist unlocked = applyKey(ld.netlist, ld.keyInputs, ld.correctKey);
  // Compare the combinational cores (pseudo PI/PO alignment by position).
  const CombExtraction a = extractCombinational(orig);
  const CombExtraction b = extractCombinational(unlocked);
  EXPECT_TRUE(sat::checkEquivalence(a.netlist, b.netlist).equivalent);
}

TEST(XorLock, DeterministicForSeed) {
  const Netlist orig = makeC17();
  const LockedDesign a = xorLock(orig, XorLockOptions{4, 7});
  const LockedDesign b = xorLock(orig, XorLockOptions{4, 7});
  EXPECT_EQ(a.correctKey, b.correctKey);
  EXPECT_EQ(a.netlist.numGates(), b.netlist.numGates());
  const LockedDesign c = xorLock(orig, XorLockOptions{4, 8});
  EXPECT_TRUE(a.correctKey != c.correctKey ||
              a.netlist.net(a.keyInputs[0]).fanouts[0] !=
                  c.netlist.net(c.keyInputs[0]).fanouts[0]);
}

TEST(XorLock, InPlaceRespectsCandidateList) {
  Netlist nl = makeC17();
  const NetId g10 = *nl.findNet("G10");
  Rng rng(9);
  std::vector<NetId> keys;
  std::vector<int> bits;
  xorLockInPlace(nl, 1, rng, keys, bits, "k", {g10});
  ASSERT_EQ(keys.size(), 1u);
  // The key gate must read G10.
  const Gate& kg = nl.gate(nl.net(keys[0]).fanouts[0]);
  EXPECT_TRUE(kg.fanin[0] == g10 || kg.fanin[1] == g10);
}

TEST(XorLock, NeverLocksFlopOutputsOrDelays) {
  Netlist orig = makeToySeq();
  // Add a delay element to tempt the locker.
  const NetId hit = *orig.findNet("hit");
  const NetId dd = orig.addNet("dd");
  orig.addDelay(hit, dd, 500);
  orig.markPO(dd);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const LockedDesign ld = xorLock(orig, XorLockOptions{4, seed});
    for (NetId key : ld.keyInputs) {
      const Gate& kg = ld.netlist.gate(ld.netlist.net(key).fanouts[0]);
      const NetId target = kg.fanin[0] == key ? kg.fanin[1] : kg.fanin[0];
      const CellKind dk = ld.netlist.gate(ld.netlist.net(target).driver).kind;
      EXPECT_NE(dk, CellKind::kDff);
      EXPECT_NE(dk, CellKind::kDelay);
      EXPECT_FALSE(isSourceKind(dk));
    }
  }
}

}  // namespace
}  // namespace gkll
