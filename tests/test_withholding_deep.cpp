// Deep (multi-gate) withholding: the Sec. V-D escalation "we can encrypt
// the GK with more gates into LUT to elevate the security level".
#include <gtest/gtest.h>

#include "attack/enhanced_removal.h"
#include "lock/withholding.h"
#include "netlist/cell_library.h"
#include "sat/cnf.h"

namespace gkll {
namespace {

struct DeepHarness {
  Netlist nl{"deep"};
  NetId x = kNoNet, key = kNoNet;
  GkInstance gk;
};

/// u,v,w,z -> (u&v) | (w^z) -> x -> GK : a two-level absorbable cone.
DeepHarness makeDeep() {
  DeepHarness h;
  const NetId u = h.nl.addPI("u");
  const NetId v = h.nl.addPI("v");
  const NetId w = h.nl.addPI("w");
  const NetId z = h.nl.addPI("z");
  const NetId a = h.nl.addNet("a");
  h.nl.addGate(CellKind::kAnd2, {u, v}, a);
  const NetId b = h.nl.addNet("b");
  h.nl.addGate(CellKind::kXor2, {w, z}, b);
  h.x = h.nl.addNet("x");
  h.nl.addGate(CellKind::kOr2, {a, b}, h.x);
  h.key = h.nl.addPI("key");
  h.gk = buildGk(h.nl, h.x, h.key, false, ns(1), ns(1), "gk");
  h.nl.markPO(h.gk.y);
  return h;
}

TEST(WithholdingDeep, BudgetControlsAbsorptionDepth) {
  // Budget 3: only the OR is absorbed (leaves a, b + key).
  {
    DeepHarness h = makeDeep();
    WithholdingOptions opt;
    opt.maxLutInputs = 3;
    const WithholdingResult r = withholdGk(h.nl, h.gk, opt);
    EXPECT_EQ(r.absorbedGates, 2);  // one gate per LUT
    for (GateId l : r.luts) EXPECT_EQ(h.nl.gate(l).fanin.size(), 3u);
  }
  // Budget 5: the whole two-level cone fits (u,v,w,z + key).
  {
    DeepHarness h = makeDeep();
    WithholdingOptions opt;
    opt.maxLutInputs = 5;
    const WithholdingResult r = withholdGk(h.nl, h.gk, opt);
    EXPECT_EQ(r.absorbedGates, 6);  // three gates per LUT
    for (GateId l : r.luts) EXPECT_EQ(h.nl.gate(l).fanin.size(), 5u);
  }
}

TEST(WithholdingDeep, DeepAbsorptionPreservesFunction) {
  DeepHarness plain = makeDeep();
  DeepHarness hidden = makeDeep();
  WithholdingOptions opt;
  opt.maxLutInputs = 5;
  withholdGk(hidden.nl, hidden.gk, opt);
  EXPECT_TRUE(sat::checkEquivalence(plain.nl, hidden.nl).equivalent);
  EXPECT_FALSE(hidden.nl.validate().has_value());
}

TEST(WithholdingDeep, DeepLutsStillDefeatLocalisation) {
  DeepHarness h = makeDeep();
  WithholdingOptions opt;
  opt.maxLutInputs = 5;
  withholdGk(h.nl, h.gk, opt);
  const auto cands = locateGks(h.nl);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].withheld);
}

TEST(WithholdingDeep, WiderLutsCostMoreArea) {
  const CellLibrary& lib = CellLibrary::tsmc013c();
  DeepHarness narrow = makeDeep();
  DeepHarness wide = makeDeep();
  WithholdingOptions n3, n5;
  n3.maxLutInputs = 3;
  n5.maxLutInputs = 5;
  withholdGk(narrow.nl, narrow.gk, n3);
  withholdGk(wide.nl, wide.gk, n5);
  EXPECT_GT(wide.nl.stats(lib).area, narrow.nl.stats(lib).area);
}

TEST(WithholdingDeep, KeyTapIsAlwaysLastInput) {
  // locateGks and the withholding contract both rely on this layout.
  DeepHarness h = makeDeep();
  WithholdingOptions opt;
  opt.maxLutInputs = 5;
  const WithholdingResult r = withholdGk(h.nl, h.gk, opt);
  for (GateId l : r.luts) {
    const NetId last = h.nl.gate(l).fanin.back();
    // The last input traces back to the key through a delay element.
    const GateId d = h.nl.net(last).driver;
    EXPECT_EQ(h.nl.gate(d).kind, CellKind::kDelay);
    EXPECT_EQ(h.nl.gate(d).fanin[0], h.key);
  }
}

}  // namespace
}  // namespace gkll
