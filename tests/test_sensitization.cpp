#include "attack/sensitization.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "core/gk_encryptor.h"
#include "lock/xor_lock.h"
#include "netlist/netlist_ops.h"

namespace gkll {
namespace {

TEST(Sensitization, SingleIsolatedKeyGateIsReadOff) {
  // One key gate at a primary output is trivially sensitizable: the
  // golden pattern is any input, one oracle query reveals the bit.
  Netlist orig = makeC17();
  Netlist locked = makeC17();
  const NetId po = locked.outputs()[0];
  const NetId key = locked.addPI("keyin_0");
  const NetId enc = locked.addNet("enc");
  locked.rewireReaders(po, enc);
  locked.addGate(CellKind::kXnor2, {po, key}, enc);

  const SensitizationResult r =
      sensitizationAttack(locked, {key}, orig);
  ASSERT_EQ(r.recoveredKey.size(), 1u);
  EXPECT_EQ(r.resolvedBits, 1);
  EXPECT_EQ(r.recoveredKey[0], 1);  // XNOR: correct bit is 1
  EXPECT_GE(r.oracleQueries, 1);
}

TEST(Sensitization, RecoversBitsFromRandomXorLock) {
  // Random XOR locking on c17 leaves most key gates individually
  // sensitizable (the DAC'12 observation that motivated interference-
  // aware insertion).  Every bit the attack *does* resolve must be the
  // inserted one.
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{3, 85});
  const SensitizationResult r =
      sensitizationAttack(ld.netlist, ld.keyInputs, orig);
  EXPECT_GT(r.resolvedBits, 0);
  for (std::size_t i = 0; i < r.recoveredKey.size(); ++i) {
    if (r.recoveredKey[i] < 0) continue;
    EXPECT_EQ(r.recoveredKey[i], ld.correctKey[i]) << "bit " << i;
  }
}

TEST(Sensitization, GkKeysHaveNoGoldenPatterns) {
  // A stripped GK's key inputs never influence any output: the
  // existential step fails for every bit — the attack comes back empty.
  const Netlist orig = generateByName("s1238");
  GkEncryptor enc(orig);
  EncryptOptions opt;
  opt.numGks = 2;
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 2u);
  const auto surf = enc.attackSurface(locked);
  const SensitizationResult r =
      sensitizationAttack(surf.comb, surf.gkKeys, surf.oracleComb);
  EXPECT_EQ(r.resolvedBits, 0);
  EXPECT_EQ(r.oracleQueries, 0);
  for (int bit : r.recoveredKey) EXPECT_EQ(bit, -1);
}

TEST(Sensitization, MutuallyInterferingKeysResist) {
  // Two key gates back to back on the same path mask each other: the
  // universal check fails (the inner bit's effect depends on the outer
  // bit), so neither may be read off alone — yet the attack must not
  // return a *wrong* bit.
  const Netlist orig = makeC17();
  Netlist locked = makeC17();
  const NetId po = locked.outputs()[0];
  const NetId k0 = locked.addPI("k0");
  const NetId k1 = locked.addPI("k1");
  const NetId m1 = locked.addNet("m1");
  const NetId m2 = locked.addNet("m2");
  locked.rewireReaders(po, m2);
  locked.addGate(CellKind::kXor2, {po, k0}, m1);
  locked.addGate(CellKind::kXor2, {m1, k1}, m2);

  const SensitizationResult r =
      sensitizationAttack(locked, {k0, k1}, orig);
  // k0 and k1 XOR into the same output: only their parity matters, so
  // no individual bit has a golden pattern.
  EXPECT_EQ(r.resolvedBits, 0);
}

}  // namespace
}  // namespace gkll
