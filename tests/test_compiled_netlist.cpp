#include "netlist/compiled.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "benchgen/synthetic_bench.h"
#include "netlist/netlist_ops.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace gkll {
namespace {

Logic randomLogic(Rng& rng, double pX) {
  if (rng.chance(pX)) return Logic::X;
  return logicFromBool(rng.flip());
}

// --- CSR round-trip ---------------------------------------------------------

TEST(CompiledNetlist, CsrMatchesGateAndNetVectors) {
  for (const char* name : {"s1238", "s5378"}) {
    const Netlist nl = generateByName(name);
    const CompiledNetlist cn = CompiledNetlist::compile(nl);
    ASSERT_EQ(cn.numGates(), nl.numGates());
    ASSERT_EQ(cn.numNets(), nl.numNets());
    for (GateId g = 0; g < nl.numGates(); ++g) {
      const Gate& gg = nl.gate(g);
      EXPECT_EQ(cn.kind(g), gg.kind);
      EXPECT_EQ(cn.out(g), gg.out);
      EXPECT_EQ(cn.lutMask(g), gg.lutMask);
      const auto fi = cn.fanin(g);
      ASSERT_EQ(fi.size(), gg.fanin.size());
      for (std::size_t i = 0; i < fi.size(); ++i) EXPECT_EQ(fi[i], gg.fanin[i]);
    }
    for (NetId n = 0; n < nl.numNets(); ++n) {
      EXPECT_EQ(cn.driver(n), nl.net(n).driver);
      std::vector<GateId> a(cn.fanout(n).begin(), cn.fanout(n).end());
      std::vector<GateId> b = nl.net(n).fanouts;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "net " << n;
    }
  }
}

// --- dependency order and level properties ----------------------------------

TEST(CompiledNetlist, TopoOrderAndLevelsAreConsistent) {
  const Netlist nl = generateByName("s9234");
  const CompiledNetlist cn = CompiledNetlist::compile(nl);
  EXPECT_EQ(cn.topoOrder().size(), cn.numLiveGates());
  for (GateId g : cn.combGates()) {
    EXPECT_TRUE(cn.isCombGate(g));
    int maxIn = 0;
    for (NetId in : cn.fanin(g)) {
      maxIn = std::max(maxIn, cn.level(in));
      const GateId d = cn.driver(in);
      if (d != kNoGate && cn.isCombGate(d)) {
        // Every combinational fanin driver is sequenced strictly earlier.
        EXPECT_LT(cn.topoPos(d), cn.topoPos(g));
      } else if (d != kNoGate) {
        EXPECT_EQ(cn.level(in), 0);  // sources and flop Q pins
      }
    }
    if (cn.out(g) != kNoNet) {
      EXPECT_EQ(cn.level(cn.out(g)), maxIn + 1);
      EXPECT_LE(cn.level(cn.out(g)), cn.maxLevel());
    }
  }
  for (GateId g : cn.sourceGates()) EXPECT_FALSE(cn.isCombGate(g));
  for (std::size_t i = 0; i < cn.flops().size(); ++i)
    EXPECT_EQ(cn.flopIndex(cn.flops()[i]), static_cast<int>(i));
}

// --- structural rejection ----------------------------------------------------

TEST(CompiledNetlist, RejectsCombinationalCycleWithDiagnostic) {
  Netlist nl("cyclic");
  const NetId pi = nl.addPI("pi");
  const NetId n1 = nl.addNet("loop_a");
  const NetId n2 = nl.addNet("loop_b");
  nl.addGate(CellKind::kAnd2, {n2, pi}, n1);
  nl.addGate(CellKind::kBuf, {n1}, n2);
  nl.markPO(n2);

  std::string err;
  EXPECT_FALSE(CompiledNetlist::tryCompile(nl, &err).has_value());
  EXPECT_NE(err.find("combinational cycle"), std::string::npos) << err;
  EXPECT_NE(err.find("loop_"), std::string::npos) << err;

  // The builder-facing validators surface the same diagnostic.
  const auto v = nl.validate();
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("combinational cycle"), std::string::npos) << *v;
  EXPECT_TRUE(nl.topoOrder().empty());
}

TEST(CompiledNetlist, AcceptsDffFeedbackLoops) {
  // Sequential feedback through a flop is not a combinational cycle.
  const Netlist nl = makeToySeq();
  EXPECT_TRUE(CompiledNetlist::tryCompile(nl).has_value());
  EXPECT_FALSE(nl.validate().has_value());
}

// --- packed lane helpers ------------------------------------------------------

TEST(PackedBits, LaneHelpersRoundTrip) {
  Rng rng(7);
  PackedBits b;
  std::vector<Logic> ref(64, Logic::X);
  for (int step = 0; step < 500; ++step) {
    const unsigned lane = static_cast<unsigned>(rng.below(64));
    const Logic v = randomLogic(rng, 0.3);
    packedSetLane(b, lane, v);
    ref[lane] = v;
  }
  EXPECT_EQ(b.v & b.x, 0u) << "canonical form violated";
  for (unsigned lane = 0; lane < 64; ++lane)
    EXPECT_EQ(packedLane(b, lane), ref[lane]) << lane;
}

TEST(PackedBits, PackUnpackRoundTrip) {
  Rng rng(11);
  std::vector<std::vector<Logic>> patterns(37);
  for (auto& p : patterns) {
    p.resize(9);
    for (Logic& v : p) v = randomLogic(rng, 0.2);
  }
  const std::vector<PackedBits> packed = packPatterns(patterns);
  ASSERT_EQ(packed.size(), 9u);
  for (unsigned lane = 0; lane < patterns.size(); ++lane)
    EXPECT_EQ(unpackLane(packed, lane), patterns[lane]);
  // Lanes beyond the pattern count are X.
  for (PackedBits b : packed) EXPECT_EQ(packedLane(b, 60), Logic::X);
}

// --- the central property: evalPacked == 64 x scalar evalCombinational ------

void checkPackedAgainstScalar(const Netlist& comb, std::uint64_t seed,
                              double pX) {
  Rng rng(seed);
  const std::size_t numIns = comb.inputs().size();
  std::vector<std::vector<Logic>> patterns(64);
  for (auto& p : patterns) {
    p.resize(numIns);
    for (Logic& v : p) v = randomLogic(rng, pX);
  }

  const CompiledNetlist cn = CompiledNetlist::compile(comb);
  std::vector<PackedBits> nets;
  cn.evalPacked(packPatterns(patterns), {}, nets);
  ASSERT_EQ(nets.size(), comb.numNets());

  for (unsigned lane = 0; lane < 64; ++lane) {
    const std::vector<Logic> ref = evalCombinational(comb, patterns[lane]);
    for (NetId n = 0; n < comb.numNets(); ++n) {
      ASSERT_EQ(packedLane(nets[n], lane), ref[n])
          << comb.name() << " net " << n << " ('" << comb.net(n).name
          << "') lane " << lane;
    }
  }
}

TEST(PackedEval, MatchesScalarOnC17) {
  checkPackedAgainstScalar(makeC17(), 1, 0.0);
  checkPackedAgainstScalar(makeC17(), 2, 0.25);
}

TEST(PackedEval, MatchesScalarOnSyntheticBenches) {
  // Combinational cores of the synthetic IWLS circuits: every cell family
  // (NAND/NOR/AOI/OAI/MUX/XOR/...) appears, and the X-heavy variant
  // exercises the three-valued planes of every packed connective.
  for (const char* name : {"s1238", "s5378"}) {
    const Netlist comb = extractCombinational(generateByName(name)).netlist;
    checkPackedAgainstScalar(comb, 0xC0FFEE, 0.0);
    checkPackedAgainstScalar(comb, 0xBEEF, 0.15);
    checkPackedAgainstScalar(comb, 0xDEAD, 0.5);
  }
}

TEST(PackedEval, SequentialStateLanesMatchScalar) {
  const Netlist nl = makeToySeq();
  const CompiledNetlist cn = CompiledNetlist::compile(nl);
  Rng rng(23);
  std::vector<std::vector<Logic>> ins(64), ffs(64);
  for (auto& p : ins) {
    p.resize(nl.inputs().size());
    for (Logic& v : p) v = randomLogic(rng, 0.2);
  }
  for (auto& p : ffs) {
    p.resize(nl.flops().size());
    for (Logic& v : p) v = randomLogic(rng, 0.2);
  }
  std::vector<PackedBits> nets;
  cn.evalPacked(packPatterns(ins), packPatterns(ffs), nets);
  std::vector<Logic> ref;
  for (unsigned lane = 0; lane < 64; ++lane) {
    cn.evalInto(ins[lane], ffs[lane], ref);
    for (NetId n = 0; n < nl.numNets(); ++n)
      ASSERT_EQ(packedLane(nets[n], lane), ref[n]) << "net " << n;
  }
}

TEST(PackedEval, OutputLanesSelectPOs) {
  const Netlist c17 = makeC17();
  const CompiledNetlist cn = CompiledNetlist::compile(c17);
  std::vector<std::vector<Logic>> patterns(64);
  for (unsigned lane = 0; lane < 64; ++lane) {
    patterns[lane].resize(c17.inputs().size());
    for (std::size_t i = 0; i < patterns[lane].size(); ++i)
      patterns[lane][i] = logicFromBool((lane >> i) & 1u);
  }
  std::vector<PackedBits> nets;
  cn.evalPacked(packPatterns(patterns), {}, nets);
  const std::vector<PackedBits> outs = cn.outputLanes(nets);
  ASSERT_EQ(outs.size(), c17.outputs().size());
  for (unsigned lane = 0; lane < 64; ++lane) {
    const std::vector<Logic> ref =
        outputValues(c17, evalCombinational(c17, patterns[lane]));
    EXPECT_EQ(unpackLane(outs, lane), ref) << "lane " << lane;
  }
}

}  // namespace
}  // namespace gkll
