#include "timing/sta_incremental.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchgen/synthetic_bench.h"
#include "timing/sta.h"
#include "util/rng.h"

namespace gkll {
namespace {

bool sameResult(const StaResult& a, const StaResult& b) {
  return a.maxArrival == b.maxArrival && a.minArrival == b.minArrival &&
         a.requiredMax == b.requiredMax && a.setupSlack == b.setupSlack &&
         a.holdSlack == b.holdSlack && a.poSlack == b.poSlack &&
         a.worstSetupSlack == b.worstSetupSlack &&
         a.worstHoldSlack == b.worstHoldSlack &&
         a.criticalDelay == b.criticalDelay;
}

// One circuit with ideal delay elements spliced before a handful of flop
// D pins (the GK insertion shape) plus per-flop clock skews — the exact
// session the flow retunes in a loop.
struct EditFixture {
  Netlist nl;
  const CellLibrary& lib = CellLibrary::tsmc013c();
  StaConfig cfg;
  std::vector<Ps> skew;
  std::vector<GateId> delayGates;
  std::vector<NetId> delayNets;

  explicit EditFixture(const std::string& name, std::size_t hosts = 6)
      : nl(generateByName(name)) {
    cfg.inputArrival = lib.clkToQ();
    cfg.clockPeriod = ns(10);
    Rng rng(17);
    for (std::size_t i = 0; i < nl.flops().size(); ++i)
      skew.push_back(static_cast<Ps>(rng.next() % 120));
    const std::size_t stride =
        std::max<std::size_t>(1, nl.flops().size() / hosts);
    for (std::size_t i = 0; i < hosts && i * stride < nl.flops().size(); ++i) {
      const GateId ff = nl.flops()[i * stride];
      const NetId d = nl.gate(ff).fanin[0];
      const NetId mid = nl.addNet("inc_dly" + std::to_string(i));
      delayGates.push_back(nl.addDelay(d, mid, 0));
      delayNets.push_back(mid);
      nl.replaceFanin(ff, d, mid);
    }
  }

  Sta makeSta() const {
    Sta sta(nl, cfg, lib);
    for (std::size_t i = 0; i < nl.flops().size(); ++i)
      sta.setClockArrival(nl.flops()[i], skew[i]);
    return sta;
  }

  StaResult fullRun() const {
    Sta sta = makeSta();
    return sta.run();
  }
};

TEST(StaIncremental, InitialResultMatchesFullRun) {
  for (const char* name : {"toyseq", "s1238", "s5378"}) {
    SCOPED_TRACE(name);
    EditFixture f(name);
    Sta sta = f.makeSta();
    StaIncremental inc(sta);
    EXPECT_TRUE(sameResult(inc.result(), f.fullRun()));
    EXPECT_EQ(inc.minClockPeriod(100), sta.minClockPeriod(100));
  }
}

// The core identity: after every randomised delayPs / wireDelay edit,
// the incremental result equals a from-scratch full analysis, field for
// field — including the untimed-sink requiredMax sentinels.
TEST(StaIncremental, RandomizedDelayEditsMatchFullRun) {
  for (const char* name : {"toyseq", "s1238", "s9234"}) {
    SCOPED_TRACE(name);
    EditFixture f(name);

    // Edit targets: the spliced delay gates plus arbitrary comb nets for
    // wireDelay edits (Sta charges wire only on gate-driven nets, but the
    // identity must hold wherever the edit lands).
    std::vector<NetId> wireNets;
    for (NetId n = 0; n < f.nl.numNets() && wireNets.size() < 8; n += 7) {
      const GateId drv = f.nl.net(n).driver;
      if (drv == kNoGate) continue;
      const CellKind k = f.nl.gate(drv).kind;
      if (k == CellKind::kInput || k == CellKind::kDff) continue;
      wireNets.push_back(n);
    }
    ASSERT_FALSE(wireNets.empty());

    Sta sta = f.makeSta();
    StaIncremental inc(sta);
    Rng rng(101);
    for (int k = 0; k < 40; ++k) {
      if (rng.flip()) {
        const std::size_t j = rng.next() % f.delayGates.size();
        f.nl.gate(f.delayGates[j]).delayPs =
            static_cast<Ps>(rng.next() % 1500);
        inc.updateAfterDelayEdit(f.delayNets[j]);
      } else {
        const NetId n = wireNets[rng.next() % wireNets.size()];
        f.nl.net(n).wireDelay = static_cast<Ps>(rng.next() % 300);
        inc.updateAfterDelayEdit(n);
      }
      ASSERT_TRUE(sameResult(inc.result(), f.fullRun())) << "edit " << k;
    }
    EXPECT_EQ(inc.stats().edits, 40u);
  }
}

TEST(StaIncremental, SetClockPeriodRetargetsWithoutForwardResweep) {
  EditFixture f("s1238");
  Sta sta = f.makeSta();
  StaIncremental inc(sta);
  const std::uint64_t fwdBefore = inc.stats().gatesForward;
  for (const Ps period : {ns(4), ns(25), ns(10)}) {
    f.cfg.clockPeriod = period;
    inc.setClockPeriod(period);
    EXPECT_EQ(inc.clockPeriod(), period);
    ASSERT_TRUE(sameResult(inc.result(), f.fullRun())) << period;
  }
  // Retargeting reuses every forward arrival.
  EXPECT_EQ(inc.stats().gatesForward, fwdBefore);
  EXPECT_GE(inc.stats().fullBackward, 3u);
}

// Sta::run charges wireDelay only on gate-driven nets; a source net's
// wire edit must leave the incremental result exactly where a full run
// lands (i.e. unchanged), not half-applied.
TEST(StaIncremental, SourceNetWireEditIsANoOp) {
  EditFixture f("toyseq");
  Sta sta = f.makeSta();
  StaIncremental inc(sta);
  const StaResult before = inc.result();

  const NetId pi = f.nl.inputs()[0];
  f.nl.net(pi).wireDelay = 777;
  inc.updateAfterDelayEdit(pi);
  EXPECT_TRUE(sameResult(inc.result(), before));
  EXPECT_TRUE(sameResult(inc.result(), f.fullRun()));
}

// Interleaved edits + retargets through one session: the flow's actual
// usage pattern (probe at a derived period, retune, re-probe).
TEST(StaIncremental, InterleavedEditsAndRetargetsStayExact) {
  EditFixture f("s5378");
  Sta sta = f.makeSta();
  StaIncremental inc(sta);
  Rng rng(5);
  for (int k = 0; k < 12; ++k) {
    const std::size_t j = rng.next() % f.delayGates.size();
    f.nl.gate(f.delayGates[j]).delayPs = static_cast<Ps>(rng.next() % 900);
    inc.updateAfterDelayEdit(f.delayNets[j]);
    if (k % 3 == 2) {
      const Ps p = inc.minClockPeriod(100);
      f.cfg.clockPeriod = p;
      inc.setClockPeriod(p);
    }
    ASSERT_TRUE(sameResult(inc.result(), f.fullRun())) << "step " << k;
  }
}

TEST(StaIncremental, EditConeIsSmallerThanTheDesign) {
  EditFixture f("s9234", /*hosts=*/1);
  Sta sta = f.makeSta();
  StaIncremental inc(sta);
  const std::uint64_t fwd0 = inc.stats().gatesForward;
  f.nl.gate(f.delayGates[0]).delayPs = 400;
  inc.updateAfterDelayEdit(f.delayNets[0]);
  // A delay element feeding one flop D pin has no combinational readers:
  // the forward ripple must touch a small cone, not re-sweep the design.
  EXPECT_LT(inc.stats().gatesForward - fwd0, f.nl.numGates() / 4);
  EXPECT_TRUE(sameResult(inc.result(), f.fullRun()));
}

}  // namespace
}  // namespace gkll
