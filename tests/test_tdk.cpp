#include "lock/tdk.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "flow/gk_flow.h"
#include "netlist/netlist_ops.h"
#include "sat/cnf.h"
#include "sim/event_sim.h"
#include "timing/sta.h"

namespace gkll {
namespace {

Ps clockFor(const Netlist& nl) {
  StaConfig cfg;
  cfg.inputArrival = CellLibrary::tsmc013c().clkToQ();
  Sta probe(nl, cfg);
  return probe.minClockPeriod(100);
}

TEST(TdkLock, StructureAndKeys) {
  const Netlist orig = generateByName("s1238");
  const TdkLockResult r = tdkLock(orig, TdkOptions{4, 200, ns(3), 4}, clockFor(orig));
  EXPECT_EQ(r.instances.size(), 4u);
  EXPECT_EQ(r.design.keyInputs.size(), 8u);  // k1 + k2 per TDK
  EXPECT_FALSE(r.design.netlist.validate().has_value());
  for (const TdkInstance& inst : r.instances) {
    const Gate& mux = r.design.netlist.gate(inst.tdbMux);
    EXPECT_EQ(mux.kind, CellKind::kMux2);
    // Both data pins come from ideal delay elements (the TDB taps).
    for (int pin = 1; pin <= 2; ++pin) {
      const GateId d = r.design.netlist.net(mux.fanin[static_cast<std::size_t>(pin)]).driver;
      EXPECT_EQ(r.design.netlist.gate(d).kind, CellKind::kDelay);
    }
    // The correct delay key selects the short path.
    EXPECT_EQ(r.design.correctKey[inst.k2Index], 0);
  }
}

TEST(TdkLock, CorrectKeyIsFunctionallyClean) {
  // Statically (zero-delay), the TDK with correct functional keys is the
  // original circuit no matter the delay keys.
  const Netlist orig = generateByName("s1238");
  const TdkLockResult r = tdkLock(orig, TdkOptions{}, clockFor(orig));
  const Netlist unlocked =
      applyKey(r.design.netlist, r.design.keyInputs, r.design.correctKey);
  const CombExtraction a = extractCombinational(orig);
  const CombExtraction b = extractCombinational(unlocked);
  EXPECT_TRUE(sat::checkEquivalence(a.netlist, b.netlist).equivalent);
}

TEST(TdkLock, WrongFunctionalKeyCorruptsStatically) {
  const Netlist orig = generateByName("s1238");
  const TdkLockResult r = tdkLock(orig, TdkOptions{}, clockFor(orig));
  ASSERT_FALSE(r.instances.empty());
  std::vector<int> key = r.design.correctKey;
  key[r.instances[0].k1Index] ^= 1;
  const Netlist unlocked = applyKey(r.design.netlist, r.design.keyInputs, key);
  const CombExtraction a = extractCombinational(orig);
  const CombExtraction b = extractCombinational(unlocked);
  EXPECT_FALSE(sat::checkEquivalence(a.netlist, b.netlist).equivalent);
}

TEST(TdkLock, DelayKeyIsInvisibleToStaticAnalysis) {
  // The TDK's weakness in one line: the delay key never changes the
  // steady-state function, so CNF-based attacks only need the functional
  // keys.
  const Netlist orig = generateByName("s1238");
  const TdkLockResult r = tdkLock(orig, TdkOptions{}, clockFor(orig));
  ASSERT_FALSE(r.instances.empty());
  std::vector<int> key = r.design.correctKey;
  for (const TdkInstance& inst : r.instances) key[inst.k2Index] ^= 1;
  const Netlist unlocked = applyKey(r.design.netlist, r.design.keyInputs, key);
  const CombExtraction a = extractCombinational(orig);
  const CombExtraction b = extractCombinational(unlocked);
  EXPECT_TRUE(sat::checkEquivalence(a.netlist, b.netlist).equivalent);
}

TEST(TdkToyPath, WrongDelayKeyViolatesSetup) {
  // The Fig. 2(c) situation, deterministic: a toggling D with a long TDB
  // path landing inside the capture window.
  const CellLibrary& lib = CellLibrary::tsmc013c();
  Netlist nl("toy");
  const NetId x = nl.addPI("x");
  const NetId k2 = nl.addPI("k2");
  const NetId fast = nl.addNet("fast");
  nl.addDelay(x, fast, 200);
  const NetId slow = nl.addNet("slow");
  nl.addDelay(x, slow, 1760);  // 120 + 1760 + ~80 lands in (1910, 2025)
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kMux2, {k2, fast, slow}, y);
  const NetId q = nl.addNet("q");
  nl.addGate(CellKind::kDff, {y}, q);
  nl.markPO(q);

  for (int k2val = 0; k2val <= 1; ++k2val) {
    EventSimConfig cfg;
    cfg.clockPeriod = ns(2);
    cfg.simTime = 13 * ns(2);
    EventSim sim(nl, cfg);
    sim.setInitialInput(k2, logicFromBool(k2val != 0));
    Logic v = Logic::F;
    sim.setInitialInput(x, v);
    for (int k = 1; k < 13; ++k) {
      v = logicNot(v);
      sim.drive(x, k * ns(2) + lib.clkToQ(), v);
    }
    sim.run();
    if (k2val == 0)
      EXPECT_TRUE(sim.violations().empty());
    else
      EXPECT_GE(sim.violations().size(), 8u);
  }
}

TEST(TdkLock, DeterministicForSeed) {
  const Netlist orig = generateByName("s1238");
  const Ps tclk = clockFor(orig);
  const TdkLockResult a = tdkLock(orig, TdkOptions{}, tclk);
  const TdkLockResult b = tdkLock(orig, TdkOptions{}, tclk);
  EXPECT_EQ(a.design.correctKey, b.design.correctKey);
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (std::size_t i = 0; i < a.instances.size(); ++i)
    EXPECT_EQ(a.instances[i].flop, b.instances[i].flop);
}

}  // namespace
}  // namespace gkll
