// The portfolio's shared miter template: racers replay one pre-encoded
// clause log instead of each re-running the CNF encoder.  These tests pin
// the load-bearing property — the replayed formula is *literally* the
// formula a direct encode would have produced — and that an attack run
// from the template behaves identically to a direct run.
#include <gtest/gtest.h>

#include <vector>

#include "attack/portfolio.h"
#include "attack/sat_attack.h"
#include "benchgen/synthetic_bench.h"
#include "lock/locking.h"
#include "lock/xor_lock.h"
#include "sat/cnf.h"

namespace gkll {
namespace {

using sat::Lit;
using sat::mkLit;
using sat::Solver;
using sat::Var;

std::vector<NetId> dataInputs(const Netlist& locked,
                              const std::vector<NetId>& keyInputs) {
  std::vector<NetId> dataPIs;
  for (NetId pi : locked.inputs()) {
    bool isKey = false;
    for (NetId k : keyInputs) isKey |= (k == pi);
    if (!isKey) dataPIs.push_back(pi);
  }
  return dataPIs;
}

TEST(MiterTemplate, ReplayedFormulaIsLiterallyIdentical) {
  const LockedDesign ld = xorLock(makeC17(), XorLockOptions{4, 9});
  const CompiledNetlist locked = CompiledNetlist::compile(ld.netlist);
  const MiterTemplate t = buildMiterTemplate(locked, ld.keyInputs);

  // Encode the miter directly, logging every clause: two copies over
  // shared data inputs, outputs constrained to differ — the documented
  // satAttack encoding.
  Solver direct;
  direct.enableClauseLog();
  const std::vector<NetId> dataPIs = dataInputs(ld.netlist, ld.keyInputs);
  const std::vector<Var> v1 = sat::encodeNetlist(direct, locked);
  std::vector<Var> piVars;
  for (NetId n : dataPIs) piVars.push_back(v1[n]);
  const std::vector<Var> v2 =
      sat::encodeNetlist(direct, locked, dataPIs, piVars);
  std::vector<Var> diffs;
  for (NetId po : ld.netlist.outputs())
    diffs.push_back(sat::makeXor(direct, v1[po], v2[po]));
  direct.addClause(mkLit(sat::makeOrReduce(direct, diffs)));

  EXPECT_EQ(t.numVars, direct.numVars());
  EXPECT_EQ(t.v1, v1);
  EXPECT_EQ(t.v2, v2);
  ASSERT_EQ(t.clauses.size(), direct.loggedClauses().size());
  for (std::size_t i = 0; i < t.clauses.size(); ++i)
    EXPECT_EQ(t.clauses[i], direct.loggedClauses()[i]) << "clause " << i;

  // And a racer that replays the template logs the very same formula.
  Solver replay;
  replay.enableClauseLog();
  for (int i = 0; i < t.numVars; ++i) replay.newVar();
  for (const auto& cl : t.clauses) replay.addClause(cl);
  EXPECT_EQ(replay.numVars(), direct.numVars());
  EXPECT_EQ(replay.loggedClauses(), direct.loggedClauses());
}

TEST(MiterTemplate, AttackFromTemplateMatchesDirectAttack) {
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{4, 11});
  const CompiledNetlist locked = CompiledNetlist::compile(ld.netlist);
  const MiterTemplate t = buildMiterTemplate(locked, ld.keyInputs);

  const SatAttackResult direct =
      satAttack(ld.netlist, ld.keyInputs, orig, SatAttackOptions{});
  SatAttackOptions withTemplate;
  withTemplate.miter = &t;
  const SatAttackResult replayed =
      satAttack(ld.netlist, ld.keyInputs, orig, withTemplate);

  EXPECT_TRUE(direct.decrypted);
  EXPECT_EQ(replayed.converged, direct.converged);
  EXPECT_EQ(replayed.dips, direct.dips);
  EXPECT_EQ(replayed.recoveredKey, direct.recoveredKey);
  EXPECT_EQ(replayed.decrypted, direct.decrypted);
  EXPECT_EQ(replayed.solverStats.decisions, direct.solverStats.decisions);
  EXPECT_EQ(replayed.solverStats.conflicts, direct.solverStats.conflicts);
  EXPECT_EQ(replayed.solverStats.propagations,
            direct.solverStats.propagations);
}

TEST(MiterTemplate, PortfolioRacersShareTheTemplate) {
  // End-to-end: the portfolio (which builds and shares one template)
  // recovers the same key as the serial attack.
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{4, 13});
  PortfolioOptions popt;
  popt.racers = 3;
  const PortfolioResult pr =
      portfolioSatAttack(ld.netlist, ld.keyInputs, orig, popt);
  const SatAttackResult serial =
      satAttack(ld.netlist, ld.keyInputs, orig, SatAttackOptions{});
  ASSERT_TRUE(serial.decrypted);
  EXPECT_TRUE(pr.result.decrypted);
  EXPECT_EQ(pr.result.converged, serial.converged);
}

}  // namespace
}  // namespace gkll
