#include "attack/removal_attack.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "core/gk_encryptor.h"
#include "lock/antisat.h"
#include "lock/sarlock.h"
#include "lock/xor_lock.h"
#include "netlist/netlist_ops.h"
#include "sim/logic_sim.h"

namespace gkll {
namespace {

TEST(SignalProbabilities, BasicsOnToyGates) {
  Netlist nl("p");
  const NetId a = nl.addPI("a");
  const NetId b = nl.addPI("b");
  const NetId band = nl.addNet("and");
  nl.addGate(CellKind::kAnd2, {a, b}, band);
  const NetId bor = nl.addNet("or");
  nl.addGate(CellKind::kOr2, {a, b}, bor);
  const NetId c1 = nl.constNet(true);
  const NetId buf = nl.addNet("buf");
  nl.addGate(CellKind::kBuf, {c1}, buf);
  nl.markPO(band);
  nl.markPO(bor);
  nl.markPO(buf);
  const auto prob = estimateSignalProbabilities(nl, 8192, 7);
  EXPECT_NEAR(prob[a], 0.5, 0.05);
  EXPECT_NEAR(prob[band], 0.25, 0.05);
  EXPECT_NEAR(prob[bor], 0.75, 0.05);
  EXPECT_DOUBLE_EQ(prob[buf], 1.0);
}

// At toy scale a 4-bit comparator fires with probability 2^-4, so the
// skew threshold must sit above that (real SARLock keys are 64+ bits and
// the default 1% threshold applies).
RemovalAttackOptions toyScale() {
  RemovalAttackOptions opt;
  opt.skewThreshold = 0.08;
  return opt;
}

TEST(RemovalAttack, LocatesAndStripsSarLock) {
  const Netlist orig = makeC17();
  const LockedDesign ld = sarLock(orig, SarLockOptions{4, 31});
  const RemovalAttackResult r =
      removalAttack(ld.netlist, ld.keyInputs, orig, toyScale());
  EXPECT_TRUE(r.located);
  EXPECT_TRUE(r.restoredFunction);
  EXPECT_LT(r.flipProbability, 0.1);
  EXPECT_FALSE(r.skewedKeyNets.empty());
}

TEST(RemovalAttack, LocatesAndStripsAntiSat) {
  const Netlist orig = makeC17();
  const LockedDesign ld = antiSatLock(orig, AntiSatOptions{4, 32});
  const RemovalAttackResult r =
      removalAttack(ld.netlist, ld.keyInputs, orig, toyScale());
  EXPECT_TRUE(r.located);
  EXPECT_TRUE(r.restoredFunction);
}

TEST(RemovalAttack, FindsNothingOnXorLock) {
  // Paper Sec. V-C: conventional key gates have no probability skew, so
  // the removal attack has no handle.
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{4, 33});
  const RemovalAttackResult r =
      removalAttack(ld.netlist, ld.keyInputs, orig, toyScale());
  EXPECT_FALSE(r.located);
}

TEST(RemovalAttack, FindsNothingOnGk) {
  // Paper Sec. V-C: the GK acts as a buffer or inverter — its output is
  // as unbiased as the data it carries.
  const Netlist orig = generateByName("s1238");
  GkEncryptor enc(orig);
  EncryptOptions opt;
  opt.numGks = 3;
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 3u);
  const auto surf = enc.attackSurface(locked);
  std::vector<NetId> keys = surf.gkKeys;
  const RemovalAttackResult r =
      removalAttack(surf.comb, keys, surf.oracleComb, toyScale());
  EXPECT_FALSE(r.located);
}

TEST(RemovalAttack, SkewedNetsRequireKeyDependence) {
  // A constant-like net *outside* the key cone must not be reported.
  Netlist orig = makeC17();
  // Add a nearly-constant functional net: AND of all five inputs.
  const NetId a = orig.inputs()[0];
  NetId acc = a;
  for (std::size_t i = 1; i < orig.inputs().size(); ++i) {
    const NetId next = orig.addNet();
    orig.addGate(CellKind::kAnd2, {acc, orig.inputs()[i]}, next);
    acc = next;
  }
  orig.markPO(acc);
  const LockedDesign ld = xorLock(orig, XorLockOptions{2, 34});
  const RemovalAttackResult r = removalAttack(ld.netlist, ld.keyInputs, orig);
  for (NetId n : r.skewedKeyNets) {
    // Every reported net must actually be in a key fanout cone; acc's
    // clone is not (the key gates land elsewhere for this seed).
    EXPECT_NE(ld.netlist.net(n).name, orig.net(acc).name);
  }
}

}  // namespace
}  // namespace gkll
