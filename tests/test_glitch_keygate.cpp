#include "lock/glitch_keygate.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "netlist/netlist_ops.h"
#include "sim/event_sim.h"
#include "sim/logic_sim.h"
#include "sim/waveform.h"

namespace gkll {
namespace {

const CellLibrary& lib() { return CellLibrary::tsmc013c(); }

TEST(GkKeyBits, Fig6Order) {
  EXPECT_EQ(keyBitsFor(GkBehavior::kConst0), (std::pair<int, int>{0, 0}));
  EXPECT_EQ(keyBitsFor(GkBehavior::kTrigA), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(keyBitsFor(GkBehavior::kTrigB), (std::pair<int, int>{1, 0}));
  EXPECT_EQ(keyBitsFor(GkBehavior::kConst1), (std::pair<int, int>{1, 1}));
}

TEST(GkTimingModel, Eq2GlitchLengths) {
  GkParams p;
  p.gkDelayA = 2000;
  p.gkDelayB = 3000;
  const GkTiming t = gkTiming(p);
  EXPECT_EQ(t.dPathA, 2000 + lib().maxDelay(CellKind::kXnor2));
  EXPECT_EQ(t.dPathB, 3000 + lib().maxDelay(CellKind::kXor2));
  EXPECT_EQ(t.dMux, lib().maxDelay(CellKind::kMux2));
  // Eq. (2): L = D_Path + D_MUX.
  EXPECT_EQ(t.glitchLenRising(), t.dPathB + t.dMux);
  EXPECT_EQ(t.glitchLenFalling(), t.dPathA + t.dMux);
  EXPECT_EQ(t.readyRising(), t.dPathB);
  EXPECT_EQ(t.readyFalling(), t.dPathA);
  EXPECT_EQ(t.react(), t.dMux);
}

TEST(GkTimingModel, BufferVariantSwapsGates) {
  GkParams p;
  p.gkDelayA = 1000;
  p.gkDelayB = 1000;
  p.bufferVariant = true;
  const GkTiming t = gkTiming(p);
  EXPECT_EQ(t.dPathA, 1000 + lib().maxDelay(CellKind::kXor2));
  EXPECT_EQ(t.dPathB, 1000 + lib().maxDelay(CellKind::kXnor2));
}

TEST(KeygenTiming, TriggerArithmetic) {
  EXPECT_EQ(keygenTriggerTime(0), keygenEarliestTrigger());
  EXPECT_EQ(keygenTriggerTime(500), keygenEarliestTrigger() + 500);
  EXPECT_EQ(keygenTapForTrigger(keygenTriggerTime(777)), 777);
  EXPECT_LT(keygenTapForTrigger(0), 0);  // infeasible: before any tap
}

struct GkHarness {
  Netlist nl{"gk"};
  NetId x = kNoNet, key = kNoNet;
  GkInstance gk;
};

GkHarness makeGk(bool bufferVariant, Ps da = ns(2), Ps db = ns(3)) {
  GkHarness h;
  h.x = h.nl.addPI("x");
  h.key = h.nl.addPI("key");
  h.gk = buildGk(h.nl, h.x, h.key, bufferVariant, da, db, "gk");
  h.nl.markPO(h.gk.y);
  return h;
}

TEST(GkStructure, VariantAGateKinds) {
  const GkHarness h = makeGk(false);
  EXPECT_EQ(h.nl.gate(h.gk.xnorGate).kind, CellKind::kXnor2);
  EXPECT_EQ(h.nl.gate(h.gk.xorGate).kind, CellKind::kXor2);
  EXPECT_EQ(h.nl.gate(h.gk.muxGate).kind, CellKind::kMux2);
  // MUX select is the key, data 0 = XNOR (selected when key = 0).
  EXPECT_EQ(h.nl.gate(h.gk.muxGate).fanin[0], h.key);
  EXPECT_EQ(h.nl.gate(h.gk.muxGate).fanin[1], h.nl.gate(h.gk.xnorGate).out);
  EXPECT_FALSE(h.nl.validate().has_value());
}

TEST(GkBehaviorSim, VariantAConstantKeysInvert) {
  for (int keyVal = 0; keyVal <= 1; ++keyVal) {
    for (int xVal = 0; xVal <= 1; ++xVal) {
      GkHarness h = makeGk(false);
      EventSimConfig cfg;
      cfg.simTime = ns(10);
      cfg.clockedFlops = false;
      EventSim sim(h.nl, cfg);
      sim.setInitialInput(h.x, logicFromBool(xVal));
      sim.setInitialInput(h.key, logicFromBool(keyVal));
      sim.run();
      EXPECT_EQ(sim.valueAt(h.gk.y, ns(9)), logicFromBool(!xVal))
          << "key=" << keyVal << " x=" << xVal;
    }
  }
}

TEST(GkBehaviorSim, VariantBConstantKeysBuffer) {
  for (int keyVal = 0; keyVal <= 1; ++keyVal) {
    GkHarness h = makeGk(true);
    EventSimConfig cfg;
    cfg.simTime = ns(10);
    cfg.clockedFlops = false;
    EventSim sim(h.nl, cfg);
    sim.setInitialInput(h.x, Logic::T);
    sim.setInitialInput(h.key, logicFromBool(keyVal));
    sim.run();
    EXPECT_EQ(sim.valueAt(h.gk.y, ns(9)), Logic::T);
  }
}

TEST(GkBehaviorSim, Fig4GlitchLengthsAndLevels) {
  // Variant (a), x=1: rising key glitch of ~DB at level x, falling key
  // glitch of ~DA at level x.
  GkHarness h = makeGk(false, ns(2), ns(3));
  EventSimConfig cfg;
  cfg.simTime = ns(18);
  cfg.clockedFlops = false;
  EventSim sim(h.nl, cfg);
  sim.setInitialInput(h.x, Logic::T);
  sim.setInitialInput(h.key, Logic::F);
  sim.drive(h.key, ns(3), Logic::T);
  sim.drive(h.key, ns(11), Logic::F);
  sim.run();

  const auto g = glitches(sim.wave(h.gk.y), 0, ns(18), ns(4));
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g[0].level, Logic::T);  // buffer level = x
  EXPECT_EQ(g[1].level, Logic::T);
  // Widths ~ delay element + function-gate delay (within 30 ps).
  EXPECT_NEAR(static_cast<double>(g[0].width()), 3000 + 85, 30);
  EXPECT_NEAR(static_cast<double>(g[1].width()), 2000 + 88, 30);
  // Starts shortly (one MUX delay) after the key transitions.
  EXPECT_NEAR(static_cast<double>(g[0].start - ns(3)), 80, 10);
  EXPECT_NEAR(static_cast<double>(g[1].start - ns(11)), 75, 10);
}

TEST(GkBehaviorSim, VariantBGlitchesAtInvertedLevel) {
  GkHarness h = makeGk(true, ns(2), ns(2));
  EventSimConfig cfg;
  cfg.simTime = ns(10);
  cfg.clockedFlops = false;
  EventSim sim(h.nl, cfg);
  sim.setInitialInput(h.x, Logic::T);
  sim.setInitialInput(h.key, Logic::F);
  sim.drive(h.key, ns(3), Logic::T);
  sim.run();
  const auto g = glitches(sim.wave(h.gk.y), 0, ns(10), ns(4));
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].level, Logic::F);  // inverter level = x'
}

TEST(GkBehaviorSim, GlitchTracksXChangesBeforeTrigger) {
  // If x settles before the key transition (D_ready honoured), the glitch
  // carries the *new* x.
  GkHarness h = makeGk(false, ns(1), ns(1));
  EventSimConfig cfg;
  cfg.simTime = ns(10);
  cfg.clockedFlops = false;
  EventSim sim(h.nl, cfg);
  sim.setInitialInput(h.x, Logic::F);
  sim.setInitialInput(h.key, Logic::F);
  sim.drive(h.x, ns(2), Logic::T);    // settles well before...
  sim.drive(h.key, ns(5), Logic::T);  // ...the trigger
  sim.run();
  const auto g = glitches(sim.wave(h.gk.y), ns(4), ns(10), ns(2));
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].level, Logic::T);
}

TEST(InsertGkAtFlop, OnlyFlopPinRerouted) {
  Netlist nl = makeToySeq();
  const GateId ff = nl.flops()[2];
  const NetId d = nl.gate(ff).fanin[0];
  const std::size_t othersBefore = nl.net(d).fanouts.size() - 1;
  GkParams p;
  const GkInsertion ins = insertGkAtFlop(nl, ff, p, "g");
  EXPECT_EQ(nl.gate(ff).fanin[0], ins.gk.y);
  // d still feeds its other readers plus the GK's two function gates.
  EXPECT_EQ(nl.net(d).fanouts.size(), othersBefore + 2);
  EXPECT_FALSE(nl.validate().has_value());
}

TEST(InsertGkAtFlop, AddsKeygenFlopAndKeyInputs) {
  Netlist nl = makeToySeq();
  const std::size_t ffs = nl.flops().size();
  const std::size_t pis = nl.inputs().size();
  GkParams p;
  const GkInsertion ins = insertGkAtFlop(nl, nl.flops()[0], p, "g");
  EXPECT_EQ(nl.flops().size(), ffs + 1);  // the toggle flop
  EXPECT_EQ(nl.inputs().size(), pis + 2);  // k1, k2
  EXPECT_NE(ins.keygen.toggleFf, kNoGate);
  EXPECT_EQ(nl.gate(ins.keygen.toggleFf).kind, CellKind::kDff);
}

TEST(StripKeygens, RemovesKeygenExposesKey) {
  Netlist nl = makeToySeq();
  const Netlist orig = makeToySeq();
  GkParams p;
  std::vector<GkInsertion> ins;
  ins.push_back(insertGkAtFlop(nl, nl.flops()[0], p, "g0"));
  ins.push_back(insertGkAtFlop(nl, nl.flops()[1], p, "g1"));

  std::vector<NetId> keys;
  const Netlist stripped = stripKeygens(nl, ins, keys);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(stripped.flops().size(), orig.flops().size());  // toggles gone
  EXPECT_EQ(stripped.inputs().size(), orig.inputs().size() + 2);
  for (NetId k : keys) {
    const GateId d = stripped.net(k).driver;
    EXPECT_EQ(stripped.gate(d).kind, CellKind::kInput);
  }
  EXPECT_FALSE(stripped.validate().has_value());
}

TEST(StripKeygens, StaticGkIsKeyInsensitive) {
  // In the stripped combinational view, both key constants give y = x'
  // (variant a) — the CNF-invisibility property of Sec. V-A.
  Netlist nl = makeToySeq();
  GkParams p;
  std::vector<GkInsertion> ins;
  ins.push_back(insertGkAtFlop(nl, nl.flops()[0], p, "g0"));
  std::vector<NetId> keys;
  const Netlist stripped = stripKeygens(nl, ins, keys);
  const CombExtraction comb = extractCombinational(stripped);
  const NetId key = comb.netMap[keys[0]];

  // Evaluate with key = 0 and key = 1: all outputs identical.
  for (int other = 0; other < 4; ++other) {
    std::vector<Logic> in(comb.netlist.inputs().size(), Logic::F);
    for (std::size_t i = 0; i < in.size(); ++i)
      in[i] = logicFromBool((static_cast<int>(i) + other) % 3 == 0);
    std::vector<Logic> in0 = in, in1 = in;
    for (std::size_t i = 0; i < comb.netlist.inputs().size(); ++i) {
      if (comb.netlist.inputs()[i] == key) {
        in0[i] = Logic::F;
        in1[i] = Logic::T;
      }
    }
    const auto o0 = outputValues(comb.netlist, evalCombinational(comb.netlist, in0));
    const auto o1 = outputValues(comb.netlist, evalCombinational(comb.netlist, in1));
    EXPECT_EQ(o0, o1);
  }
}

}  // namespace
}  // namespace gkll
