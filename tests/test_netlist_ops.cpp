#include "netlist/netlist_ops.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "benchgen/synthetic_bench.h"
#include "sat/cnf.h"
#include "sim/logic_sim.h"

namespace gkll {
namespace {

TEST(CloneNetlist, PreservesEverything) {
  const Netlist src = makeToySeq();
  std::vector<NetId> map;
  const Netlist dst = cloneNetlist(src, map);
  EXPECT_EQ(dst.numNets(), src.numNets());
  EXPECT_EQ(dst.numGates(), src.numGates());
  EXPECT_EQ(dst.inputs().size(), src.inputs().size());
  EXPECT_EQ(dst.outputs().size(), src.outputs().size());
  EXPECT_EQ(dst.flops().size(), src.flops().size());
  EXPECT_FALSE(dst.validate().has_value());
  // Behavioural identity.
  SequentialSim a(src), b(dst);
  a.reset();
  b.reset();
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(a.step({Logic::T}), b.step({Logic::T}));
}

TEST(CloneNetlist, CopiesAnnotations) {
  Netlist src("anno");
  const NetId a = src.addPI("a");
  const NetId d = src.addNet("d");
  src.addDelay(a, d, 456);
  src.net(d).wireDelay = 33;
  const NetId l = src.addNet("l");
  src.addLut({a, d}, l, 0xE);
  src.markPO(l);

  std::vector<NetId> map;
  const Netlist dst = cloneNetlist(src, map);
  const GateId dg = dst.net(map[d]).driver;
  EXPECT_EQ(dst.gate(dg).delayPs, 456);
  EXPECT_EQ(dst.net(map[d]).wireDelay, 33);
  const GateId lg = dst.net(map[l]).driver;
  EXPECT_EQ(dst.gate(lg).lutMask, 0xEu);
}

TEST(CloneNetlist, SkipsTombstones) {
  Netlist src = makeC17();
  const NetId g22 = *src.findNet("G22");
  const GateId drv = src.net(g22).driver;
  const auto fanin = src.gate(drv).fanin;
  src.removeGate(drv);
  src.addGate(CellKind::kAnd2, fanin, g22);
  std::vector<NetId> map;
  const Netlist dst = cloneNetlist(src, map);
  EXPECT_EQ(dst.numGates(), src.numGates() - 1);  // tombstone dropped
  EXPECT_FALSE(dst.validate().has_value());
}

TEST(ExtractCombinational, InterfaceShape) {
  const Netlist seq = makeToySeq();
  const CombExtraction c = extractCombinational(seq);
  EXPECT_TRUE(c.netlist.flops().empty());
  EXPECT_EQ(c.pseudoPIs.size(), seq.flops().size());
  EXPECT_EQ(c.pseudoPOs.size(), seq.flops().size());
  EXPECT_EQ(c.netlist.inputs().size(),
            seq.inputs().size() + seq.flops().size());
  EXPECT_EQ(c.netlist.outputs().size(),
            seq.outputs().size() + seq.flops().size());
  EXPECT_FALSE(c.netlist.validate().has_value());
}

TEST(ExtractCombinational, MatchesSequentialStep) {
  // Property: evaluating the comb core at (state, inputs) equals one
  // SequentialSim step's next-state and outputs.
  const Netlist seq = makeToySeq();
  const CombExtraction c = extractCombinational(seq);

  for (int stateBits = 0; stateBits < 16; ++stateBits) {
    for (int en = 0; en <= 1; ++en) {
      std::vector<Logic> state;
      for (int b = 0; b < 4; ++b)
        state.push_back(logicFromBool((stateBits >> b) & 1));
      SequentialSim ref(seq);
      ref.setState(state);
      const auto poRef = ref.step({logicFromBool(en)});

      std::vector<Logic> in{logicFromBool(en)};
      in.insert(in.end(), state.begin(), state.end());
      const auto nets = evalCombinational(c.netlist, in);
      const auto outs = outputValues(c.netlist, nets);
      // Outputs: original POs first...
      for (std::size_t i = 0; i < seq.outputs().size(); ++i)
        EXPECT_EQ(outs[i], poRef[i]);
      // ...then next-state on the pseudo POs.
      for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(outs[seq.outputs().size() + i], ref.state()[i]);
    }
  }
}

TEST(ExtractCombinational, DelaysBecomeBuffers) {
  Netlist seq("d");
  const NetId a = seq.addPI("a");
  const NetId d = seq.addNet("d");
  seq.addDelay(a, d, 999);
  const NetId q = seq.addNet("q");
  seq.addGate(CellKind::kDff, {d}, q);
  seq.markPO(q);
  const CombExtraction c = extractCombinational(seq);
  const GateId g = c.netlist.net(c.netMap[d]).driver;
  EXPECT_EQ(c.netlist.gate(g).kind, CellKind::kBuf);
}

TEST(ExtractCombinational, SharedPoDNetKeepsSlots) {
  // A net that is both a PO and a flop's D must yield aligned output
  // slots (PO slot + pseudo-PO slot).
  Netlist seq("share");
  const NetId a = seq.addPI("a");
  const NetId n = seq.addNet("n");
  seq.addGate(CellKind::kInv, {a}, n);
  const NetId q = seq.addNet("q");
  seq.addGate(CellKind::kDff, {n}, q);
  seq.markPO(n);  // n is PO *and* D
  seq.markPO(q);
  const CombExtraction c = extractCombinational(seq);
  EXPECT_EQ(c.netlist.outputs().size(), 3u);  // n, q, pseudo(n)
}

TEST(Levelize, MonotoneAlongPaths) {
  const Netlist nl = generateByName("s1238");
  const auto level = levelize(nl);
  for (GateId g = 0; g < nl.numGates(); ++g) {
    const Gate& gg = nl.gate(g);
    if (isSourceKind(gg.kind) || gg.kind == CellKind::kDff) {
      EXPECT_EQ(level[gg.out], 0);
      continue;
    }
    for (NetId in : gg.fanin) EXPECT_GT(level[gg.out], level[in]);
  }
}

TEST(FaninCone, StopsAtSourcesAndFlops) {
  const Netlist seq = makeToySeq();
  const NetId hit = *seq.findNet("hit");
  const auto cone = faninCone(seq, hit);
  // Cone: the AND gate + the two flops driving q2/q3.
  EXPECT_EQ(cone.size(), 3u);
  int flops = 0;
  for (GateId g : cone) flops += seq.gate(g).kind == CellKind::kDff ? 1 : 0;
  EXPECT_EQ(flops, 2);
}

TEST(PoFanoutSignatures, ToyCircuit) {
  const Netlist seq = makeToySeq();
  const auto sigs = poFanoutSignatures(seq);
  ASSERT_EQ(sigs.size(), 4u);
  // q0 feeds PO1 (itself) and, through the carry chain, the 'hit' PO as
  // well?  hit = q2 & q3 only, so q0's combinational PO reach is exactly
  // {po index of q0} = {1}.
  EXPECT_EQ(sigs[0], (std::vector<std::uint32_t>{1}));
  // q2 and q3 share the 'hit' (index 0) signature.
  EXPECT_EQ(sigs[2], (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(sigs[3], (std::vector<std::uint32_t>{0}));
}

TEST(PoFanoutSignatures, SizesMatchOnBenchmarks) {
  const Netlist nl = generateByName("s1238");
  const auto sigs = poFanoutSignatures(nl);
  EXPECT_EQ(sigs.size(), nl.flops().size());
  // Every signature lists valid PO indices, sorted and unique.
  for (const auto& s : sigs) {
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    for (auto p : s) EXPECT_LT(p, nl.outputs().size());
  }
}

}  // namespace
}  // namespace gkll
