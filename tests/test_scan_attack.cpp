#include "attack/scan_attack.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "core/gk_encryptor.h"

namespace gkll {
namespace {

struct ScanFixture {
  Netlist orig;
  GkEncryptor enc;
  GkFlowResult locked;

  explicit ScanFixture(int xorKeys)
      : orig(generateByName("s1238")), enc(orig) {
    EncryptOptions opt;
    opt.numGks = 3;
    opt.hybridXorKeys = xorKeys;
    locked = enc.encrypt(opt);
  }

  TimingOracle chip() const {
    return TimingOracle(locked.design.netlist, locked.clockArrival,
                        locked.design.keyInputs, locked.design.correctKey,
                        locked.clockPeriod, orig.flops().size());
  }
};

TEST(MarkKeyDependent, ConesStopAtFlops) {
  const Netlist toy = makeToySeq();
  const NetId en = toy.inputs()[0];
  const auto dep = markKeyDependent(toy, {en});
  EXPECT_TRUE(dep[en]);
  // en feeds t0 (XOR) but the flop boundary stops the marking at q0.
  EXPECT_TRUE(dep[*toy.findNet("t0")]);
  EXPECT_FALSE(dep[*toy.findNet("q0")]);
}

TEST(ScanAttack, ResolvesNakedGksAsBuffers) {
  // With scan access and no other keys in the data cones, probing reveals
  // every GK transmits x at capture (buffer) — the BIST weakness the
  // paper concedes in Sec. VI.
  ScanFixture f(0);
  ASSERT_EQ(f.locked.insertions.size(), 3u);
  ASSERT_TRUE(f.locked.verify.ok());
  const TimingOracle chip = f.chip();
  const std::vector<bool> dep(
      f.locked.design.netlist.numNets(), false);  // attacker knows all keys? no: no XOR keys exist
  const ScanAttackResult r =
      scanAttack(f.locked.design.netlist, f.locked.insertions, dep, chip);
  EXPECT_TRUE(r.fullyResolved());
  EXPECT_EQ(r.resolvedBuffers, 3);
  EXPECT_EQ(r.resolvedInverters, 0);
}

TEST(ScanAttack, HybridKeysBlockProbesOnCoveredCones) {
  // With hybrid XOR keys the attacker cannot predict x wherever an
  // unknown key bit feeds the cone: those GKs stay unresolved.
  ScanFixture f(12);
  ASSERT_EQ(f.locked.insertions.size(), 3u);
  const std::size_t gkBits = f.locked.insertions.size() * 2;
  std::vector<NetId> unknownKeys(
      f.locked.design.keyInputs.begin() + static_cast<long>(gkBits),
      f.locked.design.keyInputs.end());
  const auto dep = markKeyDependent(f.locked.design.netlist, unknownKeys);

  int coveredGks = 0;
  for (const GkInsertion& ins : f.locked.insertions)
    coveredGks += dep[ins.gk.x] ? 1 : 0;

  const TimingOracle chip = f.chip();
  const ScanAttackResult r =
      scanAttack(f.locked.design.netlist, f.locked.insertions, dep, chip);
  EXPECT_EQ(r.unresolved, coveredGks);
  EXPECT_EQ(r.resolvedBuffers + r.resolvedInverters,
            3 - coveredGks);
}

TEST(ScanAttack, VerdictVectorAligned) {
  ScanFixture f(0);
  const TimingOracle chip = f.chip();
  const std::vector<bool> dep(f.locked.design.netlist.numNets(), false);
  const ScanAttackResult r =
      scanAttack(f.locked.design.netlist, f.locked.insertions, dep, chip);
  ASSERT_EQ(r.verdicts.size(), f.locked.insertions.size());
  for (int v : r.verdicts) EXPECT_EQ(v, 1);  // all buffers
}

}  // namespace
}  // namespace gkll
