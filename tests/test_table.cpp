#include "util/table.h"

#include <gtest/gtest.h>

#include "util/time_types.h"

namespace gkll {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("Title");
  t.header({"a", "bee"});
  t.row({"1", "2"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| a"), std::string::npos);
  EXPECT_NE(s.find("| bee |"), std::string::npos);
  EXPECT_NE(s.find("| 1"), std::string::npos);
}

TEST(Table, PadsToWidestCell) {
  Table t;
  t.header({"x"});
  t.row({"longvalue"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| x         |"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t;
  t.header({"a", "b"});
  t.row({"only"});
  EXPECT_NO_THROW(t.render());
  EXPECT_EQ(t.numRows(), 1u);
}

TEST(Table, SeparatorInsertsRule) {
  Table t;
  t.header({"a"});
  t.row({"1"});
  t.separator();
  t.row({"2"});
  const std::string s = t.render();
  // header rule + top + bottom + separator = 4 horizontal lines.
  int rules = 0;
  for (std::size_t p = s.find("+-"); p != std::string::npos;
       p = s.find("+-", p + 1))
    ++rules;
  EXPECT_EQ(rules, 4);
}

TEST(Formatters, Fixed) {
  EXPECT_EQ(fmtF(3.14159, 2), "3.14");
  EXPECT_EQ(fmtF(-0.5, 1), "-0.5");
  EXPECT_EQ(fmtF(2.0, 0), "2");
}

TEST(Formatters, Integer) {
  EXPECT_EQ(fmtI(0), "0");
  EXPECT_EQ(fmtI(-42), "-42");
  EXPECT_EQ(fmtI(123456789LL), "123456789");
}

TEST(Formatters, Nanoseconds) {
  EXPECT_EQ(fmtNs(1000), "1.00ns");
  EXPECT_EQ(fmtNs(2500), "2.50ns");
  EXPECT_EQ(fmtNs(0), "0.00ns");
  EXPECT_EQ(fmtNs(-500), "-0.50ns");
}

TEST(TimeTypes, Conversions) {
  EXPECT_EQ(ns(3), 3000);
  EXPECT_EQ(um2(5.1), 510);
  EXPECT_DOUBLE_EQ(toUm2(510), 5.1);
}

}  // namespace
}  // namespace gkll
