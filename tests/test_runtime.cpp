// Tests for the parallel runtime (src/runtime) and its consumers: pool
// determinism across thread counts, cancellation and deadlines, exception
// propagation, nested parallelism, the cooperative solver stop conditions,
// and the portfolio SAT attack.
#include "runtime/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "attack/portfolio.h"
#include "attack/sat_attack.h"
#include "benchgen/synthetic_bench.h"
#include "lock/xor_lock.h"
#include "netlist/netlist_ops.h"
#include "runtime/cancel.h"
#include "runtime/pool.h"
#include "runtime/seed.h"
#include "runtime/sweep.h"
#include "sat/solver.h"
#include "util/rng.h"

namespace gkll {
namespace {

using runtime::CancelToken;
using runtime::Deadline;
using runtime::ParallelOptions;
using runtime::TaskGroup;
using runtime::ThreadPool;

// --- pool + parallelFor ------------------------------------------------------

TEST(Pool, LaneCountAndSerialDegeneration) {
  ThreadPool serial(1);
  EXPECT_EQ(serial.threads(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.threads(), 4);
  EXPECT_GE(ThreadPool::defaultThreads(), 1);
  EXPECT_GE(ThreadPool::global().threads(), 1);
}

TEST(Pool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelOptions opt;
  opt.pool = &pool;
  runtime::parallelFor(
      kN, [&](std::size_t i) { hits[i].fetch_add(1); }, opt);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Pool, GrainOptionStillCoversTheIndexSpace) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1001;  // deliberately not a grain multiple
  std::vector<int> out(kN, 0);
  ParallelOptions opt;
  opt.pool = &pool;
  opt.grain = 64;
  runtime::parallelFor(
      kN, [&](std::size_t i) { out[i] = static_cast<int>(i); }, opt);
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(out[i], static_cast<int>(i));
}

// The determinism contract: a body that writes only its own slot produces
// byte-identical results on any pool size.
TEST(Pool, SweepByteIdenticalAcrossOneTwoEightThreads) {
  constexpr std::size_t kN = 257;
  constexpr std::uint64_t kSeed = 42;
  auto body = [](std::size_t i, Rng& rng) -> std::uint64_t {
    // Mix the per-task rng stream with some arithmetic on the index.
    std::uint64_t acc = i;
    for (int r = 0; r < 8; ++r) acc = acc * 6364136223846793005ULL + rng.next();
    return acc;
  };
  std::vector<std::vector<std::uint64_t>> runs;
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ParallelOptions opt;
    opt.pool = &pool;
    runs.push_back(
        runtime::parallelSweep<std::uint64_t>(kN, kSeed, body, opt));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(Pool, TaskSeedIsAPureInjectionOnSmallRanges) {
  EXPECT_EQ(runtime::taskSeed(7, 3), runtime::taskSeed(7, 3));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i)
    seeds.push_back(runtime::taskSeed(123, i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_TRUE(std::adjacent_find(seeds.begin(), seeds.end()) == seeds.end());
}

TEST(Pool, ExceptionPropagatesToTheCaller) {
  ThreadPool pool(4);
  ParallelOptions opt;
  opt.pool = &pool;
  EXPECT_THROW(
      runtime::parallelFor(
          1000,
          [&](std::size_t i) {
            if (i == 357) throw std::runtime_error("chunk failure");
          },
          opt),
      std::runtime_error);
}

TEST(Pool, PreCanceledParallelForRunsNothing) {
  ThreadPool pool(4);
  CancelToken token = CancelToken::make();
  token.requestCancel();
  std::atomic<int> ran{0};
  ParallelOptions opt;
  opt.pool = &pool;
  opt.cancel = token;
  runtime::parallelFor(
      5000, [&](std::size_t) { ran.fetch_add(1); }, opt);
  EXPECT_EQ(ran.load(), 0);
}

TEST(Pool, CancelMidFlightSkipsRemainingChunks) {
  ThreadPool pool(2);
  CancelToken token = CancelToken::make();
  std::atomic<int> ran{0};
  ParallelOptions opt;
  opt.pool = &pool;
  opt.cancel = token;
  constexpr int kN = 100000;
  runtime::parallelFor(
      kN,
      [&](std::size_t) {
        ran.fetch_add(1);
        token.requestCancel();  // first body to run cancels the rest
      },
      opt);
  // Chunks already claimed finish; unclaimed chunks are skipped.  With
  // 2 lanes there are at most 8 chunks, so well under half the indices run.
  EXPECT_GT(ran.load(), 0);
  EXPECT_LT(ran.load(), kN / 2);
}

TEST(Pool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);  // fewer lanes than outer iterations — must help
  constexpr std::size_t kOuter = 8, kInner = 64;
  std::vector<std::vector<int>> out(kOuter);
  ParallelOptions opt;
  opt.pool = &pool;
  runtime::parallelFor(
      kOuter,
      [&](std::size_t o) {
        out[o].assign(kInner, 0);
        runtime::parallelFor(
            kInner,
            [&](std::size_t i) { out[o][i] = static_cast<int>(o * kInner + i); },
            opt);
      },
      opt);
  for (std::size_t o = 0; o < kOuter; ++o)
    for (std::size_t i = 0; i < kInner; ++i)
      EXPECT_EQ(out[o][i], static_cast<int>(o * kInner + i));
}

// --- TaskGroup ---------------------------------------------------------------

TEST(TaskGroupTest, RunsHeterogeneousTasksToCompletion) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> sum{0};
  for (int t = 1; t <= 10; ++t)
    group.run([&sum, t] { sum.fetch_add(t); });
  group.wait();
  EXPECT_EQ(sum.load(), 55);
}

TEST(TaskGroupTest, WaitRethrowsTheFirstTaskException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.run([] {});
  group.run([] { throw std::logic_error("task failed"); });
  group.run([] {});
  EXPECT_THROW(group.wait(), std::logic_error);
}

TEST(TaskGroupTest, WaitAfterWaitIsIdempotent) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  group.run([&] { ran.fetch_add(1); });
  group.wait();
  group.wait();
  EXPECT_EQ(ran.load(), 1);
}

// --- CancelToken / Deadline --------------------------------------------------

TEST(Cancel, DefaultTokenNeverFires) {
  CancelToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.canceled());
}

TEST(Cancel, SharedTokenObservesRequest) {
  CancelToken a = CancelToken::make();
  CancelToken b = a;  // shared state
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(b.canceled());
  a.requestCancel();
  EXPECT_TRUE(b.canceled());
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
}

TEST(DeadlineTest, PastDeadlineIsExpiredWithZeroRemaining) {
  Deadline d = Deadline::afterMs(0);
  EXPECT_FALSE(d.unlimited());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remainingMs(), 0);
}

// --- solver stop conditions --------------------------------------------------

// A satisfiable formula the solver finishes instantly — enough to check
// the stop conditions fire at solve entry and clear cleanly.  Returns the
// variable that is true in every model.
sat::Var addSmallFormula(sat::Solver& s) {
  const sat::Var a = s.newVar();
  const sat::Var b = s.newVar();
  s.addClause(sat::mkLit(a), sat::mkLit(b));
  s.addClause(sat::mkLit(a, true), sat::mkLit(b));
  return b;
}

TEST(SolverStop, ExpiredDeadlineReturnsUnknownThenClears) {
  sat::Solver s;
  (void)addSmallFormula(s);
  s.setDeadline(Deadline::afterMs(0));
  EXPECT_EQ(s.solve(), sat::Result::kUnknown);
  EXPECT_EQ(s.stopCause(), sat::StopCause::kDeadline);
  // Clearing the deadline leaves the formula intact and solvable.
  s.setDeadline(Deadline());
  EXPECT_EQ(s.solve(), sat::Result::kSat);
  EXPECT_EQ(s.stopCause(), sat::StopCause::kNone);
}

TEST(SolverStop, CanceledSolverKeepsFormulaReusable) {
  sat::Solver s;
  const sat::Var b = addSmallFormula(s);
  CancelToken token = CancelToken::make();
  token.requestCancel();
  s.setCancelToken(token);
  EXPECT_EQ(s.solve(), sat::Result::kUnknown);
  EXPECT_EQ(s.stopCause(), sat::StopCause::kCanceled);
  // Clear the token: same solver, same clauses, normal solve.
  s.setCancelToken(CancelToken());
  EXPECT_EQ(s.solve(), sat::Result::kSat);
  EXPECT_EQ(s.stopCause(), sat::StopCause::kNone);
  EXPECT_TRUE(s.modelValue(b));  // b is true in every model
}

TEST(SolverStop, EveryPortfolioConfigSolvesTheSameFormula) {
  for (int racer = 0; racer < 8; ++racer) {
    sat::Solver s;
    s.setConfig(portfolioConfig(racer, /*seed=*/5));
    const sat::Var b = addSmallFormula(s);
    EXPECT_EQ(s.solve(), sat::Result::kSat) << "racer " << racer;
    EXPECT_TRUE(s.modelValue(b)) << "racer " << racer;
    // And an unsat core stays unsat under any heuristic.
    sat::Solver u;
    u.setConfig(portfolioConfig(racer, /*seed=*/5));
    const sat::Var v = u.newVar();
    u.addClause(sat::mkLit(v));
    u.addClause(sat::mkLit(v, true));
    EXPECT_EQ(u.solve(), sat::Result::kUnsat) << "racer " << racer;
  }
}

// --- SAT attack deadline / cancel --------------------------------------------

TEST(AttackStop, ExpiredDeadlineSetsDeadlineExceeded) {
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{4, 77});
  SatAttackOptions opt;
  opt.deadline = Deadline::afterMs(0);
  const SatAttackResult r = satAttack(ld.netlist, ld.keyInputs, orig, opt);
  EXPECT_TRUE(r.deadlineExceeded);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.canceled);
}

TEST(AttackStop, FiredCancelTokenSetsCanceled) {
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{4, 77});
  SatAttackOptions opt;
  CancelToken token = CancelToken::make();
  token.requestCancel();
  opt.cancel = token;
  const SatAttackResult r = satAttack(ld.netlist, ld.keyInputs, orig, opt);
  EXPECT_TRUE(r.canceled);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.deadlineExceeded);
}

// --- portfolio ---------------------------------------------------------------

TEST(Portfolio, ConfigScheduleIsDeterministicWithDefaultRacerZero) {
  const sat::SolverConfig def{};
  const sat::SolverConfig r0 = portfolioConfig(0, 999);
  EXPECT_EQ(r0.restartBase, def.restartBase);
  EXPECT_EQ(r0.varDecay, def.varDecay);
  EXPECT_EQ(r0.initialPhase, def.initialPhase);
  for (int racer = 0; racer < 16; ++racer) {
    const sat::SolverConfig a = portfolioConfig(racer, 7);
    const sat::SolverConfig b = portfolioConfig(racer, 7);
    EXPECT_EQ(a.restartBase, b.restartBase);
    EXPECT_EQ(a.varDecay, b.varDecay);
    EXPECT_EQ(a.initialPhase, b.initialPhase);
    EXPECT_EQ(a.seed, b.seed);
  }
}

TEST(Portfolio, SingleRacerReproducesTheSerialAttack) {
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{4, 77});
  const SatAttackResult serial = satAttack(ld.netlist, ld.keyInputs, orig);

  PortfolioOptions opt;
  opt.racers = 1;
  const PortfolioResult pr =
      portfolioSatAttack(ld.netlist, ld.keyInputs, orig, opt);
  EXPECT_EQ(pr.winner, 0);
  ASSERT_EQ(pr.outcomes.size(), 1u);
  EXPECT_TRUE(pr.result.converged);
  EXPECT_EQ(pr.result.dips, serial.dips);
  EXPECT_EQ(pr.result.recoveredKey, serial.recoveredKey);
  EXPECT_EQ(pr.result.decrypted, serial.decrypted);
}

TEST(Portfolio, RaceRecoversAWorkingKey) {
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{4, 81});
  PortfolioOptions opt;
  opt.racers = 3;
  const PortfolioResult pr =
      portfolioSatAttack(ld.netlist, ld.keyInputs, orig, opt);
  EXPECT_GE(pr.winner, 0);
  EXPECT_LT(pr.winner, 3);
  ASSERT_EQ(pr.outcomes.size(), 3u);
  EXPECT_TRUE(pr.outcomes[static_cast<std::size_t>(pr.winner)].definitive);
  EXPECT_TRUE(pr.result.converged);
  EXPECT_TRUE(pr.result.decrypted);
  // Losers either also finished (definitive) or were canceled by the race
  // token; nobody may report a deadline that was never set.
  for (const RacerOutcome& o : pr.outcomes)
    EXPECT_FALSE(o.result.deadlineExceeded);
}

TEST(Portfolio, SequentialBenchmarkRaceMatchesSerialOutcome) {
  const Netlist orig = generateByName("s1238");
  const LockedDesign ld = xorLock(orig, XorLockOptions{8, 78});
  const CombExtraction comb = extractCombinational(ld.netlist);
  const CombExtraction oracle = extractCombinational(orig);
  std::vector<NetId> keys;
  for (NetId k : ld.keyInputs) keys.push_back(comb.netMap[k]);

  PortfolioOptions opt;
  opt.racers = 2;
  const PortfolioResult pr =
      portfolioSatAttack(comb.netlist, keys, oracle.netlist, opt);
  EXPECT_GE(pr.winner, 0);
  EXPECT_TRUE(pr.result.converged);
  EXPECT_TRUE(pr.result.decrypted);
}

}  // namespace
}  // namespace gkll
