// Cross-validation property sweeps: the library's three models of a
// circuit — zero-delay simulation, event-driven timing simulation, and
// the CNF encoding — must agree wherever their domains overlap, across
// every generated benchmark.  These are the consistency guarantees all
// the attack/defence results stand on.
#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "flow/placement.h"
#include "netlist/bench_io.h"
#include "netlist/netlist_ops.h"
#include "sat/cnf.h"
#include "sim/event_sim.h"
#include "sim/logic_sim.h"
#include "timing/sta.h"
#include "util/rng.h"

namespace gkll {
namespace {

std::vector<BenchSpec> allSpecs() { return iwls2005Specs(); }

class CrossValidation : public testing::TestWithParam<BenchSpec> {};

TEST_P(CrossValidation, CnfAgreesWithSimulatorOnCombCore) {
  // Pin the CNF's inputs to random vectors; every net variable must take
  // exactly the simulator's value.
  const Netlist seq = generateBenchmark(GetParam());
  const CombExtraction comb = extractCombinational(seq);
  const Netlist& nl = comb.netlist;

  sat::Solver s;
  const std::vector<sat::Var> vars = sat::encodeNetlist(s, nl);
  Rng rng(GetParam().seed ^ 0xC0FFEE);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<Logic> in;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i)
      in.push_back(logicFromBool(rng.flip()));
    std::vector<sat::Lit> assumps;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i)
      assumps.push_back(sat::mkLit(vars[nl.inputs()[i]], in[i] != Logic::T));
    ASSERT_EQ(s.solve(assumps), sat::Result::kSat);
    const auto nets = evalCombinational(nl, in);
    int checked = 0;
    for (NetId n = 0; n < nl.numNets(); ++n) {
      if (nets[n] == Logic::X) continue;
      EXPECT_EQ(s.modelValue(vars[n]), nets[n] == Logic::T)
          << GetParam().name << " net " << nl.net(n).name;
      ++checked;
    }
    EXPECT_GT(checked, static_cast<int>(nl.numNets()) / 2);
  }
}

TEST_P(CrossValidation, EventSimAgreesWithCycleSimOverManyCycles) {
  // Run both simulators for 10 cycles of random stimulus on the placed
  // netlist and compare every captured state and sampled PO.
  Netlist nl = generateBenchmark(GetParam());
  const PlacementResult pr = placeAndRoute(nl, PlacementOptions{});
  const CellLibrary& lib = CellLibrary::tsmc013c();
  StaConfig cfg;
  cfg.inputArrival = lib.clkToQ();
  Sta probe(nl, cfg);
  for (std::size_t i = 0; i < nl.flops().size(); ++i)
    probe.setClockArrival(nl.flops()[i], pr.clockArrival[i]);
  const Ps tclk = probe.minClockPeriod(100);

  const int cycles = 10;
  Rng rng(GetParam().seed ^ 0xBEEF);
  std::vector<std::vector<Logic>> pattern(
      cycles, std::vector<Logic>(nl.inputs().size()));
  for (auto& cyc : pattern)
    for (Logic& v : cyc) v = logicFromBool(rng.flip());

  EventSimConfig ecfg;
  ecfg.clockPeriod = tclk;
  ecfg.simTime = (cycles + 1) * tclk;
  EventSim esim(nl, ecfg, lib);
  for (std::size_t i = 0; i < nl.flops().size(); ++i)
    esim.setClockArrival(nl.flops()[i], pr.clockArrival[i]);
  for (std::size_t p = 0; p < nl.inputs().size(); ++p) {
    esim.setInitialInput(nl.inputs()[p], pattern[0][p]);
    for (int k = 1; k < cycles; ++k)
      esim.drive(nl.inputs()[p], k * tclk + lib.clkToQ(),
                 pattern[static_cast<std::size_t>(k)][p]);
  }
  esim.run();
  ASSERT_TRUE(esim.violations().empty()) << GetParam().name;

  SequentialSim csim(nl);
  csim.reset();
  for (int m = 0; m < cycles; ++m) {
    const auto poRef = csim.step(pattern[static_cast<std::size_t>(m)]);
    // POs settle before the next edge.
    for (std::size_t j = 0; j < nl.outputs().size(); ++j)
      ASSERT_EQ(esim.valueAt(nl.outputs()[j], (m + 1) * tclk), poRef[j])
          << GetParam().name << " cycle " << m << " po " << j;
    // Captured state after edge m+1.
    for (std::size_t i = 0; i < nl.flops().size(); ++i) {
      const NetId q = nl.gate(nl.flops()[i]).out;
      ASSERT_EQ(esim.valueAt(q, (m + 1) * tclk + pr.clockArrival[i] +
                                    lib.clkToQ() + 20),
                csim.state()[i])
          << GetParam().name << " cycle " << m << " flop " << i;
    }
  }
}

TEST_P(CrossValidation, StaBoundsEventSimArrivals) {
  // Every transition the event simulator produces in one input frame must
  // land inside [minArrival, maxArrival] of the STA (same launch frame).
  Netlist nl = generateBenchmark(GetParam());
  placeAndRoute(nl, PlacementOptions{});
  StaConfig cfg;
  cfg.clockPeriod = ns(200);  // huge: captures out of the way
  cfg.inputArrival = 0;
  Sta sta(nl, cfg);
  const StaResult r = sta.run();

  EventSimConfig ecfg;
  ecfg.clockPeriod = ns(200);
  ecfg.simTime = ns(100);
  EventSim sim(nl, ecfg);
  Rng rng(GetParam().seed ^ 0xFACE);
  for (NetId pi : nl.inputs()) sim.setInitialInput(pi, logicFromBool(rng.flip()));
  for (NetId pi : nl.inputs())
    sim.drive(pi, 1, logicFromBool(rng.flip()));  // new frame at t=1
  sim.run();
  for (NetId n = 0; n < nl.numNets(); ++n) {
    const auto& trs = sim.wave(n).transitions();
    if (trs.empty()) continue;
    EXPECT_LE(trs.back().time - 1, r.maxArrival[n]) << GetParam().name;
    EXPECT_GE(trs.front().time - 1, r.minArrival[n]) << GetParam().name;
  }
}

TEST_P(CrossValidation, CombExtractionRoundTripsThroughBench) {
  // writeBench/parseBench preserve the combinational semantics of every
  // generated circuit (equivalence on the smaller ones; structure checks
  // everywhere).
  const Netlist seq = generateBenchmark(GetParam());
  const auto parsed = parseBench(writeBench(seq), GetParam().name + "_rt");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.netlist.stats().numCells, seq.stats().numCells);
  EXPECT_EQ(parsed.netlist.flops().size(), seq.flops().size());
  if (GetParam().cells <= 1000) {
    const CombExtraction a = extractCombinational(seq);
    const CombExtraction b = extractCombinational(parsed.netlist);
    EXPECT_TRUE(sat::checkEquivalence(a.netlist, b.netlist).equivalent)
        << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, CrossValidation,
                         testing::ValuesIn(allSpecs()),
                         [](const testing::TestParamInfo<BenchSpec>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace gkll
