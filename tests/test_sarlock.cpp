#include "lock/sarlock.h"

#include <gtest/gtest.h>

#include "attack/removal_attack.h"
#include "benchgen/synthetic_bench.h"
#include "sat/cnf.h"
#include "sim/logic_sim.h"

namespace gkll {
namespace {

TEST(SarLock, CorrectKeyRestoresFunction) {
  const Netlist orig = makeC17();
  const LockedDesign ld = sarLock(orig, SarLockOptions{4, 7});
  const Netlist unlocked = applyKey(ld.netlist, ld.keyInputs, ld.correctKey);
  EXPECT_TRUE(sat::checkEquivalence(unlocked, orig).equivalent);
}

TEST(SarLock, WrongKeyCorruptsExactlyOnePatternEach) {
  // The point-function property: under a wrong key K, the output flips
  // only when the comparator matches, i.e. on exactly the pattern X whose
  // compared bits equal K.
  const Netlist orig = makeC17();
  const SarLockOptions opt{4, 8};
  const LockedDesign ld = sarLock(orig, opt);
  for (int key = 0; key < 16; ++key) {
    std::vector<int> bits{key & 1, (key >> 1) & 1, (key >> 2) & 1,
                          (key >> 3) & 1};
    if (bits == ld.correctKey) continue;
    const Netlist unlocked = applyKey(ld.netlist, ld.keyInputs, bits);
    int corrupted = 0;
    for (int m = 0; m < 32; ++m) {
      std::vector<Logic> in;
      for (int b = 0; b < 5; ++b) in.push_back(logicFromBool((m >> b) & 1));
      const auto a = outputValues(orig, evalCombinational(orig, in));
      const auto c = outputValues(unlocked, evalCombinational(unlocked, in));
      if (a != c) ++corrupted;
    }
    // 5 PIs, 4 compared: the matching X has 2 completions (last PI free).
    EXPECT_EQ(corrupted, 2) << "key " << key;
  }
}

TEST(SarLock, FlipSignalIsHeavilySkewed) {
  const Netlist orig = makeC17();
  const LockedDesign ld = sarLock(orig, SarLockOptions{4, 9});
  const auto prob =
      estimateSignalProbabilities(ld.netlist, 4096, 1234);
  const NetId flip = *ld.netlist.findNet("sar_flip");
  EXPECT_LT(prob[flip], 0.1);  // ~2^-4 * (1 - 2^-4)
  EXPECT_GT(prob[flip], 0.0);  // but not constant
}

TEST(SarLock, InterfaceCounts) {
  const Netlist orig = makeC17();
  const LockedDesign ld = sarLock(orig, SarLockOptions{4, 10});
  EXPECT_EQ(ld.keyInputs.size(), 4u);
  EXPECT_EQ(ld.correctKey.size(), 4u);
  EXPECT_EQ(ld.netlist.inputs().size(), orig.inputs().size() + 4);
  EXPECT_EQ(ld.netlist.outputs().size(), orig.outputs().size());
}

TEST(SarLock, DeterministicForSeed) {
  const Netlist orig = makeC17();
  EXPECT_EQ(sarLock(orig, SarLockOptions{4, 3}).correctKey,
            sarLock(orig, SarLockOptions{4, 3}).correctKey);
}

TEST(SarLock, WorksOnSequentialHost) {
  const Netlist orig = makeToySeq();
  const LockedDesign ld = sarLock(orig, SarLockOptions{1, 11});
  EXPECT_FALSE(ld.netlist.validate().has_value());
  EXPECT_EQ(ld.netlist.flops().size(), orig.flops().size());
}

}  // namespace
}  // namespace gkll
