#include "timing/gk_constraints.h"

#include <gtest/gtest.h>

#include "lock/glitch_keygate.h"
#include "netlist/netlist.h"
#include "sim/event_sim.h"

namespace gkll {
namespace {

GkTiming idealGk(Ps pathA, Ps pathB, Ps mux) {
  GkTiming t;
  t.dPathA = pathA;
  t.dPathB = pathB;
  t.dMux = mux;
  return t;
}

TEST(Eq2, GlitchCoversWindow) {
  EXPECT_TRUE(glitchCoversWindow(1000, 90, 25));
  EXPECT_TRUE(glitchCoversWindow(115, 90, 25));
  EXPECT_FALSE(glitchCoversWindow(114, 90, 25));
}

TEST(Eq3, OnGlitchFeasibility) {
  const GkTiming gk = idealGk(1000, 1000, 80);
  // tArrival + D_ready + D_react must land inside [LB, UB].
  EXPECT_TRUE(feasibleOnGlitch(2000, gk, true, 100, 4000));
  EXPECT_FALSE(feasibleOnGlitch(3000, gk, true, 100, 4000));  // 4080 > 4000
  EXPECT_TRUE(feasibleOnGlitch(2920, gk, true, 100, 4000));   // == UB
  // Falling uses PathA; asymmetric paths flip the verdict.
  const GkTiming asym = idealGk(500, 2000, 80);
  EXPECT_FALSE(feasibleOnGlitch(2000, asym, true, 100, 4000));   // 4080
  EXPECT_TRUE(feasibleOnGlitch(2000, asym, false, 100, 4000));   // 2580
}

TEST(Eq4, OffGlitchUsesMaxPath) {
  const GkTiming asym = idealGk(500, 2000, 80);
  // max(DPath) + mux + tArrival within bounds.
  EXPECT_TRUE(feasibleOffGlitch(1000, asym, 100, 4000));   // 3080
  EXPECT_FALSE(feasibleOffGlitch(2000, asym, 100, 4000));  // 4080
}

TEST(Eq5, PaperFig9OnGlitchWindow) {
  // Paper numbers: Tclk=8ns, Tsu=Th=1ns, T_j(capture)=8ns, L=3ns, ideal.
  GkTiming gk = idealGk(ns(3), ns(3), 0);
  const TriggerWindow w =
      triggerWindowOnGlitch(/*tArrival=*/0, gk, true, ns(8), ns(1), ns(7));
  EXPECT_EQ(w.lo, ns(6));  // T_j + Th - L - D_react
  EXPECT_EQ(w.hi, ns(7));  // UB - D_react
  EXPECT_TRUE(w.valid());
  EXPECT_TRUE(w.contains(ns(6) + 500));
  EXPECT_FALSE(w.contains(ns(6)));  // open interval
}

TEST(Eq5, DataReadinessBindsTheWindow) {
  GkTiming gk = idealGk(ns(3), ns(3), 0);
  // Late-arriving data pushes the lower edge to tArrival + D_ready.
  const TriggerWindow w =
      triggerWindowOnGlitch(ns(4), gk, true, ns(8), ns(1), ns(7));
  EXPECT_EQ(w.lo, ns(7));  // 4 + 3 > 6
  EXPECT_FALSE(w.valid());
}

TEST(Eq6, PaperFig9OffGlitchWindow) {
  GkTiming gk = idealGk(ns(3), ns(3), 0);
  const TriggerWindow w = triggerWindowOffGlitch(gk, true, ns(1), ns(7));
  EXPECT_EQ(w.lo, ns(1));  // LB - D_react
  EXPECT_EQ(w.hi, ns(4));  // UB - L - D_react
}

TEST(Eq6, MuxDelayShiftsBothEdges) {
  GkTiming gk = idealGk(ns(3), ns(3), 100);
  const TriggerWindow w = triggerWindowOffGlitch(gk, true, ns(1), ns(7));
  EXPECT_EQ(w.lo, ns(1) - 100);
  EXPECT_EQ(w.hi, ns(7) - ns(3) - 100 - 100);  // L = path + mux
}

TEST(TriggerWindow, Helpers) {
  TriggerWindow w{100, 300};
  EXPECT_TRUE(w.valid());
  EXPECT_EQ(w.width(), 200);
  EXPECT_TRUE(w.contains(200));
  EXPECT_FALSE(w.contains(100));
  EXPECT_FALSE(w.contains(300));
  TriggerWindow bad{300, 100};
  EXPECT_FALSE(bad.valid());
  EXPECT_EQ(bad.width(), 0);
}

// --- simulated confirmation: the analytic windows predict the simulator ---

struct SweepFixture {
  Ps tclk = ns(8);
  Ps glitchLen = ns(3);

  /// One GK + flop, key transition at `trig`; returns {capturedX, violated}.
  std::pair<bool, bool> probe(Ps trig) {
    const CellLibrary& lib = CellLibrary::tsmc013c();
    Netlist nl("sweep");
    const NetId x = nl.addPI("x");
    const NetId key = nl.addPI("key");
    const GkInstance gk = buildGk(nl, x, key, false,
                                  glitchLen - lib.maxDelay(CellKind::kXnor2),
                                  glitchLen - lib.maxDelay(CellKind::kXor2),
                                  "gk");
    const NetId q = nl.addNet("q");
    nl.addGate(CellKind::kDff, {gk.y}, q);
    nl.markPO(q);
    EventSimConfig cfg;
    cfg.clockPeriod = tclk;
    cfg.simTime = tclk + ns(2);
    EventSim sim(nl, cfg);
    sim.setInitialInput(x, Logic::T);
    sim.setInitialInput(key, Logic::F);
    sim.drive(key, trig, Logic::T);
    sim.run();
    const Logic got = sim.valueAt(q, tclk + lib.clkToQ() + 20);
    return {got == Logic::T, !sim.violations().empty()};
  }
};

TEST(WindowsVsSimulation, FinePinpointsAllThreeRegimes) {
  SweepFixture f;
  // Deep inside the on-glitch window: capture x.
  auto [onX, onV] = f.probe(ns(7) - 500);
  EXPECT_TRUE(onX);
  EXPECT_FALSE(onV);
  // Deep inside the off-glitch window: capture x'.
  auto [offX, offV] = f.probe(ns(2));
  EXPECT_FALSE(offX);
  EXPECT_FALSE(offV);
  // Fine sweep: somewhere between the windows a trigger must violate
  // (glitch edge crossing the capture window).
  bool foundViolation = false;
  for (Ps trig = ns(4); trig <= ns(5) && !foundViolation; trig += 10)
    foundViolation = f.probe(trig).second;
  EXPECT_TRUE(foundViolation);
}

}  // namespace
}  // namespace gkll
