// Parameterised flow invariants: for every (circuit, GK-count)
// configuration the Sec. IV-B flow must deliver the same guarantees —
// verified function under the correct key, clean STA apart from the
// deliberate GK-path violations, exact key bookkeeping, and feasible
// trigger windows for every insertion.
#include <gtest/gtest.h>

#include <set>

#include "benchgen/synthetic_bench.h"
#include "flow/gk_flow.h"

namespace gkll {
namespace {

struct SweepCase {
  const char* circuit;
  int gks;
};

class FlowSweep : public testing::TestWithParam<SweepCase> {};

GkFlowResult run(const SweepCase& c) {
  GkFlowOptions opt;
  opt.numGks = c.gks;
  opt.seed = 11 + static_cast<std::uint64_t>(c.gks);
  return runGkFlow(generateByName(c.circuit), opt);
}

TEST_P(FlowSweep, VerifiedAndClean) {
  const GkFlowResult r = run(GetParam());
  ASSERT_EQ(static_cast<int>(r.insertions.size()), GetParam().gks);
  EXPECT_TRUE(r.verify.ok())
      << GetParam().circuit << "/" << GetParam().gks << ": "
      << r.verify.stateMismatches << "/" << r.verify.poMismatches << "/"
      << r.verify.simViolations;
  EXPECT_EQ(r.trueViolations, 0);
  EXPECT_EQ(r.falseViolations, GetParam().gks);
}

TEST_P(FlowSweep, KeyBookkeeping) {
  const GkFlowResult r = run(GetParam());
  EXPECT_EQ(r.design.keyInputs.size(), 2u * r.insertions.size());
  EXPECT_EQ(r.design.correctKey.size(), r.design.keyInputs.size());
  for (std::size_t i = 0; i < r.insertions.size(); ++i) {
    EXPECT_EQ(r.design.keyInputs[2 * i], r.insertions[i].keygen.k1);
    EXPECT_EQ(r.design.keyInputs[2 * i + 1], r.insertions[i].keygen.k2);
    const auto [k1, k2] = keyBitsFor(r.insertions[i].correct);
    EXPECT_EQ(r.design.correctKey[2 * i], k1);
    EXPECT_EQ(r.design.correctKey[2 * i + 1], k2);
  }
}

TEST_P(FlowSweep, HostsAreDistinctOriginalFlops) {
  const GkFlowResult r = run(GetParam());
  const Netlist orig = generateByName(GetParam().circuit);
  std::set<GateId> seen;
  for (GateId ff : r.lockedFfs) {
    EXPECT_TRUE(seen.insert(ff).second) << "duplicate host";
    EXPECT_NE(std::find(orig.flops().begin(), orig.flops().end(), ff),
              orig.flops().end());
  }
}

TEST_P(FlowSweep, NoIdealDelaysSurviveMapping) {
  const GkFlowResult r = run(GetParam());
  for (GateId g = 0; g < r.design.netlist.numGates(); ++g)
    EXPECT_NE(r.design.netlist.gate(g).kind, CellKind::kDelay);
}

TEST_P(FlowSweep, StatsConsistent) {
  const GkFlowResult r = run(GetParam());
  const NetlistStats st = r.design.netlist.stats();
  EXPECT_EQ(st.numCells, r.lockedStats.numCells);
  EXPECT_GT(r.lockedStats.numCells, r.originalStats.numCells);
  // One KEYGEN flop per insertion.
  EXPECT_EQ(st.numFFs, r.originalStats.numFFs + r.insertions.size());
  const double expectCellOh =
      100.0 *
      (static_cast<double>(r.lockedStats.numCells) -
       static_cast<double>(r.originalStats.numCells)) /
      static_cast<double>(r.originalStats.numCells);
  EXPECT_DOUBLE_EQ(r.cellOverheadPct, expectCellOh);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, FlowSweep,
    testing::Values(SweepCase{"s1238", 2}, SweepCase{"s1238", 6},
                    SweepCase{"s5378", 3}, SweepCase{"s5378", 10},
                    SweepCase{"s9234", 5}, SweepCase{"s13207", 8},
                    SweepCase{"s15850", 4}),
    [](const testing::TestParamInfo<SweepCase>& info) {
      return std::string(info.param.circuit) + "_" +
             std::to_string(info.param.gks);
    });

}  // namespace
}  // namespace gkll
