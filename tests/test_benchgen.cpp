#include "benchgen/synthetic_bench.h"

#include <gtest/gtest.h>

#include "netlist/netlist_ops.h"

namespace gkll {
namespace {

TEST(Specs, MatchPaperTableI) {
  const auto& specs = iwls2005Specs();
  ASSERT_EQ(specs.size(), 7u);
  // The paper's exact cell/FF counts.
  const struct {
    const char* name;
    int cells, ffs;
  } expect[] = {
      {"s1238", 341, 18},    {"s5378", 775, 163},  {"s9234", 613, 145},
      {"s13207", 901, 330},  {"s15850", 447, 134}, {"s38417", 5397, 1564},
      {"s38584", 5304, 1168},
  };
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(specs[static_cast<std::size_t>(i)].name, expect[i].name);
    EXPECT_EQ(specs[static_cast<std::size_t>(i)].cells, expect[i].cells);
    EXPECT_EQ(specs[static_cast<std::size_t>(i)].ffs, expect[i].ffs);
  }
}

/// Parameterised over every spec: the generated circuits must hit the
/// published counts exactly and be structurally sound.
class GenerateTest : public testing::TestWithParam<BenchSpec> {};

TEST_P(GenerateTest, ExactCountsAndValidity) {
  const BenchSpec& spec = GetParam();
  const Netlist nl = generateBenchmark(spec);
  const NetlistStats st = nl.stats();
  EXPECT_EQ(st.numCells, static_cast<std::size_t>(spec.cells));
  EXPECT_EQ(st.numFFs, static_cast<std::size_t>(spec.ffs));
  EXPECT_EQ(st.numPIs, static_cast<std::size_t>(spec.pis));
  EXPECT_EQ(st.numPOs, static_cast<std::size_t>(spec.pos));
  EXPECT_FALSE(nl.validate().has_value());
}

TEST_P(GenerateTest, DepthNearTarget) {
  const BenchSpec& spec = GetParam();
  const Netlist nl = generateBenchmark(spec);
  const auto level = levelize(nl);
  int maxLevel = 0;
  for (NetId n = 0; n < nl.numNets(); ++n)
    maxLevel = std::max(maxLevel, level[n]);
  EXPECT_EQ(maxLevel, std::min(spec.depth, spec.cells - spec.ffs));
}

TEST_P(GenerateTest, EveryStateBitIsRead) {
  const BenchSpec& spec = GetParam();
  const Netlist nl = generateBenchmark(spec);
  for (GateId f : nl.flops())
    EXPECT_FALSE(nl.net(nl.gate(f).out).fanouts.empty());
}

TEST_P(GenerateTest, Deterministic) {
  const BenchSpec& spec = GetParam();
  const Netlist a = generateBenchmark(spec);
  const Netlist b = generateBenchmark(spec);
  ASSERT_EQ(a.numGates(), b.numGates());
  for (GateId g = 0; g < a.numGates(); ++g) {
    EXPECT_EQ(a.gate(g).kind, b.gate(g).kind);
    EXPECT_EQ(a.gate(g).fanin, b.gate(g).fanin);
  }
}

INSTANTIATE_TEST_SUITE_P(AllIwls, GenerateTest,
                         testing::ValuesIn(iwls2005Specs()),
                         [](const testing::TestParamInfo<BenchSpec>& info) {
                           return info.param.name;
                         });

TEST(Generate, DifferentSeedsDiffer) {
  BenchSpec a = iwls2005Specs()[0];
  BenchSpec b = a;
  b.seed ^= 0xDEAD;
  const Netlist na = generateBenchmark(a);
  const Netlist nb = generateBenchmark(b);
  bool anyDiff = na.numGates() != nb.numGates();
  for (GateId g = 0; !anyDiff && g < na.numGates(); ++g)
    anyDiff = na.gate(g).kind != nb.gate(g).kind ||
              na.gate(g).fanin != nb.gate(g).fanin;
  EXPECT_TRUE(anyDiff);
}

TEST(Generate, ByNameAndUnknownThrows) {
  const Netlist nl = generateByName("s5378");
  EXPECT_EQ(nl.name(), "s5378");
  // Unknown names surface as a catchable diagnostic (the service daemon
  // feeds client-supplied names here), never an abort.
  try {
    generateByName("nonexistent");
    FAIL() << "expected BenchGenError";
  } catch (const BenchGenError& e) {
    EXPECT_NE(std::string(e.what()).find("s1238"), std::string::npos)
        << "diagnostic should list the known names: " << e.what();
  }
}

TEST(Generate, GenSpecScalesAndIsDeterministic) {
  const BenchSpec spec = genSpec(5000, 250, /*seed=*/9);
  EXPECT_EQ(spec.name, "gen5000x250@9");
  EXPECT_EQ(spec.cells, 5000);
  EXPECT_EQ(spec.ffs, 250);

  const Netlist a = generateBenchmark(spec);
  const NetlistStats st = a.stats();
  EXPECT_EQ(st.numCells, 5000u);
  EXPECT_EQ(st.numFFs, 250u);
  EXPECT_FALSE(a.validate().has_value());

  // Deterministic in (cells, ffs, seed) — same spec, same netlist.
  const Netlist b = generateBenchmark(genSpec(5000, 250, 9));
  EXPECT_EQ(a.contentHash(), b.contentHash());
  EXPECT_TRUE(structurallyEqual(a, b));
}

TEST(Generate, ParseGenNameRoundTrip) {
  const auto spec = parseGenName("gen:5000x250@9");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->cells, 5000);
  EXPECT_EQ(spec->ffs, 250);
  // Default seed spelled and implied forms agree.
  const auto dflt = parseGenName("gen:1000x50");
  ASSERT_TRUE(dflt.has_value());
  EXPECT_EQ(dflt->seed, genSpec(1000, 50).seed);
  // Non-gen names are not-a-gen-request, not an error.
  EXPECT_FALSE(parseGenName("s1238").has_value());
  // generateByName accepts the same spelling.
  const Netlist viaName = generateByName("gen:1000x50");
  EXPECT_EQ(viaName.contentHash(),
            generateBenchmark(genSpec(1000, 50)).contentHash());
}

TEST(Generate, GenSpecRejectsBadRequests) {
  EXPECT_THROW(genSpec(0, 0), BenchGenError);
  EXPECT_THROW(genSpec(-5, 1), BenchGenError);
  EXPECT_THROW(genSpec(100, 200), BenchGenError);  // more FFs than cells
  EXPECT_THROW(genSpec(kMaxGenCells + 1, 10), BenchGenError);
  EXPECT_THROW(parseGenName("gen:abcx10"), BenchGenError);
  EXPECT_THROW(parseGenName("gen:100"), BenchGenError);
  EXPECT_THROW(parseGenName("gen:100x10@"), BenchGenError);
}

TEST(ToyCircuits, C17Shape) {
  const Netlist c17 = makeC17();
  EXPECT_EQ(c17.inputs().size(), 5u);
  EXPECT_EQ(c17.outputs().size(), 2u);
  EXPECT_EQ(c17.stats().numCells, 6u);
  EXPECT_TRUE(c17.flops().empty());
  EXPECT_FALSE(c17.validate().has_value());
}

TEST(ToyCircuits, ToySeqShape) {
  const Netlist toy = makeToySeq();
  EXPECT_EQ(toy.flops().size(), 4u);
  EXPECT_EQ(toy.inputs().size(), 1u);
  EXPECT_EQ(toy.outputs().size(), 2u);
  EXPECT_FALSE(toy.validate().has_value());
}

}  // namespace
}  // namespace gkll
