// Tests for the distributed sweep grid (src/sweep/): scenario-spec
// parsing and deterministic enumeration, the claim-exactly-once work
// queue, manifest guarding — and the headline resume property the CI
// sweep-smoke job also gates end to end:
//
//   a sweep interrupted at ANY scenario boundary and re-run produces
//   aggregate artifacts byte-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/seed.h"
#include "sweep/coordinator.h"
#include "sweep/queue.h"
#include "sweep/spec.h"

namespace gkll {
namespace {

/// Fresh sweep directory: stale state from a previous test-binary run
/// would otherwise be resumed (that IS the coordinator's contract) and
/// flip the expected outcomes below.
std::string tempDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "gkll_sweep_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

/// The small scenario matrix every coordinator test runs: 2 designs x
/// 2 locks x 1 attack x 2 reps = 8 scenarios, all fast.
sweep::SweepSpec smallSpec() {
  sweep::SweepSpec spec;
  spec.designs = {"toyseq", "gen:60x8"};
  spec.locks = {"xor:4", "gk:2"};
  spec.attacks = {"sat"};
  spec.reps = 2;
  spec.masterSeed = 7;
  return spec;
}

// --- spec parsing ----------------------------------------------------------

TEST(SweepSpec, ParseLockAcceptsEveryGrammarForm) {
  sweep::LockKind lk;
  std::string err;
  ASSERT_TRUE(sweep::parseLock("none", lk, &err));
  EXPECT_EQ(lk.kind, sweep::LockKind::kNone);
  ASSERT_TRUE(sweep::parseLock("xor:12", lk, &err));
  EXPECT_EQ(lk.kind, sweep::LockKind::kXor);
  EXPECT_EQ(lk.a, 12);
  ASSERT_TRUE(sweep::parseLock("sarlock:8", lk, &err));
  EXPECT_EQ(lk.kind, sweep::LockKind::kSarlock);
  ASSERT_TRUE(sweep::parseLock("gk:3", lk, &err));
  EXPECT_EQ(lk.kind, sweep::LockKind::kGk);
  EXPECT_EQ(lk.a, 3);
  ASSERT_TRUE(sweep::parseLock("gkw:2", lk, &err));
  EXPECT_EQ(lk.kind, sweep::LockKind::kGkWithhold);
  ASSERT_TRUE(sweep::parseLock("hybrid:2x6", lk, &err));
  EXPECT_EQ(lk.kind, sweep::LockKind::kHybrid);
  EXPECT_EQ(lk.a, 2);
  EXPECT_EQ(lk.b, 6);
}

TEST(SweepSpec, ParseLockRejectsMalformedForms) {
  sweep::LockKind lk;
  std::string err;
  for (const char* bad : {"", "xor", "xor:", "xor:0", "xor:-3", "xor:abc",
                          "hybrid:2", "hybrid:x6", "bogus:4", "xor:9999999"}) {
    EXPECT_FALSE(sweep::parseLock(bad, lk, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(SweepSpec, EnumerationIsDeterministicAndSeedSplit) {
  const sweep::SweepSpec spec = smallSpec();
  std::string err;
  ASSERT_TRUE(spec.validate(&err)) << err;
  const std::vector<sweep::ScenarioSpec> a = spec.enumerate();
  const std::vector<sweep::ScenarioSpec> b = spec.enumerate();
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key(), b[i].key());
    EXPECT_EQ(a[i].index, i);
    // Per-scenario seeds come from the runtime's splitmix64 task-seed
    // splitter, keyed by enumeration index.
    EXPECT_EQ(a[i].seed, runtime::taskSeed(spec.masterSeed, i));
  }
  // Design-major order: the first reps*locks*attacks entries are design 0.
  EXPECT_EQ(a[0].key(), "toyseq|xor:4|sat|r0");
  EXPECT_EQ(a[1].key(), "toyseq|xor:4|sat|r1");
  EXPECT_EQ(a[4].key(), "gen:60x8|xor:4|sat|r0");
}

TEST(SweepSpec, CanonicalAndHashTrackSpecContent) {
  const sweep::SweepSpec spec = smallSpec();
  sweep::SweepSpec other = smallSpec();
  EXPECT_EQ(spec.canonical(), other.canonical());
  EXPECT_EQ(spec.hash(), other.hash());
  other.masterSeed = 8;
  EXPECT_NE(spec.canonical(), other.canonical());
  EXPECT_NE(spec.hash(), other.hash());
}

TEST(SweepSpec, SanitizeKeyMakesFilesystemSafeNames) {
  EXPECT_EQ(sweep::sanitizeKey("toyseq|xor:4|sat|r0"), "toyseq_xor_4_sat_r0");
  EXPECT_EQ(sweep::sanitizeKey("a/b\\c d"), "a_b_c_d");
  EXPECT_EQ(sweep::sanitizeKey("ok-name_1.2"), "ok-name_1.2");
}

// --- work queue ------------------------------------------------------------

TEST(SweepQueue, ClaimIsExactlyOncePerKey) {
  const std::string dir = tempDir("queue");
  sweep::WorkQueue q(dir);
  EXPECT_TRUE(q.claim("toyseq|xor:4|sat|r0"));
  EXPECT_FALSE(q.claim("toyseq|xor:4|sat|r0"));  // second claimant loses
  EXPECT_TRUE(q.claim("toyseq|xor:4|sat|r1"));
  EXPECT_EQ(q.claimed().size(), 2u);
  q.reset();
  EXPECT_TRUE(q.claimed().empty());
  EXPECT_TRUE(q.claim("toyseq|xor:4|sat|r0"));  // claimable again after reset
}

// --- coordinator: resume identity property ---------------------------------

struct SweepArtifacts {
  std::string bench;
  std::string cdf;
};

SweepArtifacts runToCompletion(const std::string& dir, int stopAfter = -1) {
  sweep::SweepOptions opt;
  opt.dir = dir;
  opt.quiet = true;
  opt.stopAfter = stopAfter;
  const sweep::SweepOutcome out = sweep::runSweep(smallSpec(), opt);
  SweepArtifacts art;
  if (out.complete) {
    art.bench = slurp(out.aggregatePath);
    art.cdf = slurp(out.cdfPath);
    EXPECT_FALSE(art.bench.empty());
    EXPECT_FALSE(art.cdf.empty());
  }
  return art;
}

TEST(SweepResume, InterruptedAtEveryBoundaryIsByteIdentical) {
  // Uninterrupted reference run.
  const std::string refDir = tempDir("ref");
  const SweepArtifacts ref = runToCompletion(refDir);
  ASSERT_FALSE(ref.bench.empty());

  const std::size_t total = smallSpec().enumerate().size();
  for (std::size_t k = 0; k < total; ++k) {
    const std::string dir = tempDir("stop" + std::to_string(k));
    // First pass stops cleanly after k newly-run scenarios...
    sweep::SweepOptions opt;
    opt.dir = dir;
    opt.quiet = true;
    opt.stopAfter = static_cast<int>(k);
    sweep::SweepOutcome first = sweep::runSweep(smallSpec(), opt);
    EXPECT_FALSE(first.complete) << "k=" << k;
    EXPECT_FALSE(first.failed) << "k=" << k;
    EXPECT_EQ(sweep::exitCodeFor(first), 3) << "k=" << k;

    // ...simulate the crash tearing the journal mid-record...
    {
      std::ofstream f(dir + "/journal.w0.jsonl",
                      std::ios::binary | std::ios::app);
      f << "{\"type\":\"scenario.done\",\"key\":\"torn";  // no newline
    }

    // ...then an unrestricted re-run finishes the remainder.
    opt.stopAfter = -1;
    sweep::SweepOutcome second = sweep::runSweep(smallSpec(), opt);
    ASSERT_TRUE(second.complete) << "k=" << k << ": " << second.error;
    EXPECT_EQ(second.skipped, k) << "k=" << k;
    EXPECT_EQ(second.ran, total - k) << "k=" << k;

    EXPECT_EQ(slurp(second.aggregatePath), ref.bench) << "k=" << k;
    EXPECT_EQ(slurp(second.cdfPath), ref.cdf) << "k=" << k;
  }
}

TEST(SweepResume, RerunOfCompleteSweepSkipsEverythingAndRewritesIdentically) {
  const std::string dir = tempDir("rerun");
  const SweepArtifacts first = runToCompletion(dir);
  ASSERT_FALSE(first.bench.empty());

  sweep::SweepOptions opt;
  opt.dir = dir;
  opt.quiet = true;
  const sweep::SweepOutcome again = sweep::runSweep(smallSpec(), opt);
  ASSERT_TRUE(again.complete) << again.error;
  EXPECT_EQ(again.skipped, again.total);
  EXPECT_EQ(again.ran, 0u);
  EXPECT_EQ(slurp(again.aggregatePath), first.bench);
  EXPECT_EQ(slurp(again.cdfPath), first.cdf);
}

TEST(SweepResume, MismatchedSpecIsRefused) {
  const std::string dir = tempDir("mismatch");
  sweep::SweepOptions opt;
  opt.dir = dir;
  opt.quiet = true;
  opt.stopAfter = 1;
  const sweep::SweepOutcome first = sweep::runSweep(smallSpec(), opt);
  EXPECT_FALSE(first.complete);

  sweep::SweepSpec other = smallSpec();
  other.masterSeed = 99;
  opt.stopAfter = -1;
  const sweep::SweepOutcome second = sweep::runSweep(other, opt);
  EXPECT_FALSE(second.complete);
  EXPECT_TRUE(second.failed);
  EXPECT_NE(second.error.find("different spec"), std::string::npos)
      << second.error;
}

TEST(SweepCoordinator, ScenarioFailureReportsFailedNotResumable) {
  sweep::SweepSpec spec;
  spec.designs = {"c17"};  // combinational: gk locking must refuse
  spec.locks = {"gk:2"};
  spec.attacks = {"sat"};
  sweep::SweepOptions opt;
  opt.dir = tempDir("fail");
  opt.quiet = true;
  const sweep::SweepOutcome out = sweep::runSweep(spec, opt);
  EXPECT_FALSE(out.complete);
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(sweep::exitCodeFor(out), 2);
}

}  // namespace
}  // namespace gkll
