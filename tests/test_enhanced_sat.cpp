#include "attack/enhanced_sat.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "core/gk_encryptor.h"
#include "lock/xor_lock.h"
#include "netlist/netlist_ops.h"

namespace gkll {
namespace {

TEST(EnhancedSat, ExplainsXorLockedChip) {
  // Sanity: for a purely functional lock the stable-value timed model is
  // complete — a consistent key exists and it is the correct one.
  const Netlist orig = makeToySeq();
  const LockedDesign ld = xorLock(orig, XorLockOptions{3, 55});
  const CombExtraction comb = extractCombinational(ld.netlist);
  std::vector<NetId> keys;
  for (NetId k : ld.keyInputs) keys.push_back(comb.netMap[k]);

  const std::vector<Ps> arrivals(ld.netlist.flops().size(), 0);
  TimingOracle chip(ld.netlist, arrivals, ld.keyInputs, ld.correctKey, ns(8),
                    orig.flops().size());
  const EnhancedSatResult r = enhancedSatAttack(comb.netlist, keys, chip);
  EXPECT_TRUE(r.modelConsistent);
  EXPECT_EQ(r.recoveredKey, ld.correctKey);
}

TEST(EnhancedSat, CannotModelGlitchTransmission) {
  // Paper Sec. V-B: no constant key makes the stable-value (TCF-class)
  // model reproduce what the glitch carries into the GK'd flop.
  const Netlist orig = makeToySeq();
  GkEncryptor enc(orig);
  EncryptOptions opt;
  opt.numGks = 1;
  opt.clockPeriod = ns(8);
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 1u);
  ASSERT_TRUE(locked.verify.ok());

  const auto surf = enc.attackSurface(locked);
  TimingOracle chip(locked.design.netlist, locked.clockArrival,
                    locked.design.keyInputs, locked.design.correctKey,
                    locked.clockPeriod, orig.flops().size());
  const EnhancedSatResult r =
      enhancedSatAttack(surf.comb, surf.gkKeys, chip);
  EXPECT_FALSE(r.modelConsistent);
  // The inexplicable bits are exactly the GK'd flop's capture slot.
  EXPECT_EQ(r.inexplicableBits, 1);
}

TEST(EnhancedSat, FewSamplesSuffice) {
  const Netlist orig = makeToySeq();
  GkEncryptor enc(orig);
  EncryptOptions opt;
  opt.numGks = 1;
  opt.clockPeriod = ns(8);
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 1u);
  const auto surf = enc.attackSurface(locked);
  TimingOracle chip(locked.design.netlist, locked.clockArrival,
                    locked.design.keyInputs, locked.design.correctKey,
                    locked.clockPeriod, orig.flops().size());
  EnhancedSatOptions eo;
  eo.samples = 4;
  const EnhancedSatResult r =
      enhancedSatAttack(surf.comb, surf.gkKeys, chip, eo);
  EXPECT_FALSE(r.modelConsistent);
  EXPECT_EQ(r.samplesUsed, 4);
}

}  // namespace
}  // namespace gkll
