#include "netlist/netlist_opt.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "lock/locking.h"
#include "lock/sarlock.h"
#include "netlist/netlist_ops.h"
#include "sat/cnf.h"

namespace gkll {
namespace {

TEST(FoldConstants, AndWithZeroLeg) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId c0 = nl.constNet(false);
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kAnd2, {a, c0}, y);
  nl.markPO(y);
  const OptReport r = foldConstants(nl);
  EXPECT_EQ(r.constantsFolded, 1u);
  EXPECT_EQ(nl.gate(nl.net(y).driver).kind, CellKind::kConst0);
  EXPECT_FALSE(nl.validate().has_value());
}

TEST(FoldConstants, PropagatesThroughChains) {
  // INV(CONST1) = 0; OR(x, INV(that)) = OR(x, 1) = 1.
  Netlist nl;
  const NetId x = nl.addPI("x");
  const NetId c1 = nl.constNet(true);
  const NetId n1 = nl.addNet("n1");
  nl.addGate(CellKind::kInv, {c1}, n1);  // 0
  const NetId n2 = nl.addNet("n2");
  nl.addGate(CellKind::kInv, {n1}, n2);  // 1
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kOr2, {x, n2}, y);  // 1
  nl.markPO(y);
  const OptReport r = foldConstants(nl);
  EXPECT_EQ(r.constantsFolded, 3u);
  EXPECT_EQ(nl.gate(nl.net(y).driver).kind, CellKind::kConst1);
}

TEST(FoldConstants, LeavesUnknownsAlone) {
  Netlist nl = makeC17();
  const OptReport r = foldConstants(nl);
  EXPECT_EQ(r.constantsFolded, 0u);
}

TEST(CollapseBuffers, RewiresReaders) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId b = nl.addNet("b");
  nl.addGate(CellKind::kBuf, {a}, b);
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kInv, {b}, y);
  nl.markPO(y);
  const OptReport r = collapseBuffers(nl);
  EXPECT_EQ(r.buffersCollapsed, 1u);
  const Gate& inv = nl.gate(nl.net(y).driver);
  EXPECT_EQ(inv.fanin[0], a);
  EXPECT_FALSE(nl.validate().has_value());  // b is now a legal orphan
}

TEST(CollapseBuffers, KeepsPoBuffers) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kBuf, {a}, y);
  nl.markPO(y);
  EXPECT_EQ(collapseBuffers(nl).buffersCollapsed, 0u);
}

TEST(RemoveDeadLogic, DropsUnreachableConeAndFlop) {
  Netlist nl = makeToySeq();
  // Graft an unused cone: two gates and a flop nothing observes.
  const NetId en = nl.inputs()[0];
  const NetId d1 = nl.addNet("dead1");
  nl.addGate(CellKind::kInv, {en}, d1);
  const NetId dq = nl.addNet("deadq");
  nl.addGate(CellKind::kDff, {d1}, dq);
  const NetId d2 = nl.addNet("dead2");
  nl.addGate(CellKind::kAnd2, {dq, en}, d2);
  const std::size_t before = nl.stats().numCells;
  const OptReport r = removeDeadLogic(nl);
  EXPECT_EQ(r.deadGatesRemoved, 3u);
  EXPECT_EQ(nl.stats().numCells, before - 3);
  EXPECT_FALSE(nl.validate().has_value());
}

TEST(RemoveDeadLogic, KeepsEverythingLiveOnBenchmarks) {
  // The generator guarantees every flop is observed transitively?  Not
  // necessarily — but removal must never break the interface or function.
  Netlist nl = generateByName("s1238");
  const CombExtraction before = extractCombinational(nl);
  removeDeadLogic(nl);
  EXPECT_FALSE(nl.validate().has_value());
  EXPECT_EQ(nl.inputs().size(), before.netlist.inputs().size() -
                                    before.pseudoPIs.size());
  EXPECT_EQ(nl.outputs().size(), 14u);
}

TEST(Optimize, SemanticsPreservedAfterBypass) {
  // The paper's removal-attack scenario: bypass SARLock's flip signal
  // with a constant, then "re-synthesise" — the result must equal the
  // original function.
  const Netlist orig = makeC17();
  const LockedDesign ld = sarLock(orig, SarLockOptions{4, 91});
  Netlist hacked = applyKey(ld.netlist, ld.keyInputs,
                            std::vector<int>(4, 0));
  // Bypass: tie the flip signal low.
  const NetId flip = *hacked.findNet("sar_flip");
  hacked.removeGate(hacked.net(flip).driver);
  hacked.addGate(CellKind::kConst0, {}, flip);

  const OptReport r = optimize(hacked);
  EXPECT_TRUE(r.changed());
  const Netlist clean = compact(hacked);
  EXPECT_TRUE(sat::checkEquivalence(clean, orig).equivalent);
  // The whole SARLock comparator is gone.
  EXPECT_LT(clean.stats().numCells, ld.netlist.stats().numCells);
}

TEST(Optimize, IdempotentOnCleanCircuits) {
  Netlist nl = makeC17();
  EXPECT_FALSE(optimize(nl).changed());
}

TEST(Compact, DropsTombstonesAndOrphans) {
  Netlist nl = makeC17();
  const NetId g10 = *nl.findNet("G10");
  const GateId drv = nl.net(g10).driver;
  const auto fanin = nl.gate(drv).fanin;
  nl.removeGate(drv);
  nl.addGate(CellKind::kNand2, fanin, g10);
  nl.addNet("orphan");
  const Netlist c = compact(nl);
  EXPECT_EQ(c.numGates(), nl.numGates() - 1);
  EXPECT_FALSE(c.findNet("orphan").has_value());
  EXPECT_TRUE(sat::checkEquivalence(c, makeC17()).equivalent);
}

TEST(Compact, PreservesInterfaceOrder) {
  Netlist nl = makeToySeq();
  const Netlist c = compact(nl);
  ASSERT_EQ(c.inputs().size(), nl.inputs().size());
  ASSERT_EQ(c.outputs().size(), nl.outputs().size());
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    EXPECT_EQ(c.net(c.inputs()[i]).name, nl.net(nl.inputs()[i]).name);
  for (std::size_t i = 0; i < nl.outputs().size(); ++i)
    EXPECT_EQ(c.net(c.outputs()[i]).name, nl.net(nl.outputs()[i]).name);
}

}  // namespace
}  // namespace gkll
