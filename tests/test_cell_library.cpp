#include "netlist/cell_library.h"

#include <gtest/gtest.h>

#include <vector>

namespace gkll {
namespace {

TEST(CellKindMeta, NamesRoundTrip) {
  for (int i = 0; i < kNumCellKinds; ++i) {
    const CellKind k = static_cast<CellKind>(i);
    CellKind back;
    ASSERT_TRUE(cellKindFromName(cellKindName(k), back)) << cellKindName(k);
    EXPECT_EQ(back, k);
  }
}

TEST(CellKindMeta, ClassicBenchAliases) {
  CellKind k;
  ASSERT_TRUE(cellKindFromName("NOT", k));
  EXPECT_EQ(k, CellKind::kInv);
  ASSERT_TRUE(cellKindFromName("BUFF", k));
  EXPECT_EQ(k, CellKind::kBuf);
  ASSERT_TRUE(cellKindFromName("NAND", k));
  EXPECT_EQ(k, CellKind::kNand2);
  EXPECT_FALSE(cellKindFromName("FROB", k));
}

TEST(CellKindMeta, InputCounts) {
  EXPECT_EQ(cellNumInputs(CellKind::kInv), 1);
  EXPECT_EQ(cellNumInputs(CellKind::kNand3), 3);
  EXPECT_EQ(cellNumInputs(CellKind::kMux2), 3);
  EXPECT_EQ(cellNumInputs(CellKind::kDff), 1);
  EXPECT_EQ(cellNumInputs(CellKind::kLut), -1);
  EXPECT_EQ(cellNumInputs(CellKind::kInput), 0);
}

TEST(CellKindMeta, Predicates) {
  EXPECT_TRUE(isSequential(CellKind::kDff));
  EXPECT_FALSE(isSequential(CellKind::kBuf));
  EXPECT_TRUE(isSourceKind(CellKind::kInput));
  EXPECT_TRUE(isSourceKind(CellKind::kConst1));
  EXPECT_FALSE(isSourceKind(CellKind::kDff));
  EXPECT_TRUE(isUnaryKind(CellKind::kDelay));
  EXPECT_TRUE(isUnaryKind(CellKind::kInv));
  EXPECT_FALSE(isUnaryKind(CellKind::kXor2));
}

Logic L(int v) { return v ? Logic::T : Logic::F; }

TEST(EvalCell, TwoInputGatesExhaustive) {
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const std::vector<Logic> in{L(a), L(b)};
      EXPECT_EQ(evalCell(CellKind::kAnd2, in), L(a & b));
      EXPECT_EQ(evalCell(CellKind::kNand2, in), L(!(a & b)));
      EXPECT_EQ(evalCell(CellKind::kOr2, in), L(a | b));
      EXPECT_EQ(evalCell(CellKind::kNor2, in), L(!(a | b)));
      EXPECT_EQ(evalCell(CellKind::kXor2, in), L(a ^ b));
      EXPECT_EQ(evalCell(CellKind::kXnor2, in), L(!(a ^ b)));
    }
  }
}

TEST(EvalCell, ThreeInputGatesExhaustive) {
  for (int m = 0; m < 8; ++m) {
    const int a = m & 1, b = (m >> 1) & 1, c = (m >> 2) & 1;
    const std::vector<Logic> in{L(a), L(b), L(c)};
    EXPECT_EQ(evalCell(CellKind::kAnd3, in), L(a & b & c));
    EXPECT_EQ(evalCell(CellKind::kNor3, in), L(!(a | b | c)));
    EXPECT_EQ(evalCell(CellKind::kAoi21, in), L(!((a & b) | c)));
    EXPECT_EQ(evalCell(CellKind::kOai21, in), L(!((a | b) & c)));
    // MUX fanin order {sel, in0, in1}.
    EXPECT_EQ(evalCell(CellKind::kMux2, in), L(a ? c : b));
  }
}

TEST(EvalCell, UnaryAndConstants) {
  const std::vector<Logic> t{Logic::T}, f{Logic::F};
  EXPECT_EQ(evalCell(CellKind::kBuf, t), Logic::T);
  EXPECT_EQ(evalCell(CellKind::kInv, t), Logic::F);
  EXPECT_EQ(evalCell(CellKind::kDelay, f), Logic::F);
  EXPECT_EQ(evalCell(CellKind::kConst0, {}), Logic::F);
  EXPECT_EQ(evalCell(CellKind::kConst1, {}), Logic::T);
}

TEST(EvalCell, XPropagation) {
  const Logic X = Logic::X;
  // 0 dominates AND; 1 dominates OR.
  EXPECT_EQ(evalCell(CellKind::kAnd2, std::vector<Logic>{Logic::F, X}), Logic::F);
  EXPECT_EQ(evalCell(CellKind::kAnd2, std::vector<Logic>{Logic::T, X}), X);
  EXPECT_EQ(evalCell(CellKind::kOr2, std::vector<Logic>{Logic::T, X}), Logic::T);
  EXPECT_EQ(evalCell(CellKind::kXor2, std::vector<Logic>{Logic::T, X}), X);
  // MUX with X select but agreeing data is known.
  EXPECT_EQ(evalCell(CellKind::kMux2, std::vector<Logic>{X, Logic::T, Logic::T}),
            Logic::T);
  EXPECT_EQ(evalCell(CellKind::kMux2, std::vector<Logic>{X, Logic::F, Logic::T}),
            X);
}

TEST(EvalCell, LutMatchesMask) {
  // 3-input LUT implementing the majority function: mask bits at indices
  // with >= 2 ones: 3,5,6,7 -> 0b11101000.
  const std::uint64_t maj = 0xE8;
  for (int m = 0; m < 8; ++m) {
    const std::vector<Logic> in{L(m & 1), L((m >> 1) & 1), L((m >> 2) & 1)};
    const int ones = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    EXPECT_EQ(evalCell(CellKind::kLut, in, maj), L(ones >= 2)) << m;
  }
}

TEST(EvalCell, LutXCofactoring) {
  // f = in0 (mask 0b10): in1 is a don't care, so X there stays known.
  const std::vector<Logic> in{Logic::T, Logic::X};
  EXPECT_EQ(evalCell(CellKind::kLut, in, 0b1010), Logic::T);
  // f = in0 ^ in1: X in1 makes the output unknown.
  EXPECT_EQ(evalCell(CellKind::kLut, in, 0b0110), Logic::X);
}

TEST(CellLibrary, AreasAndDelaysPositive) {
  const CellLibrary& lib = CellLibrary::tsmc013c();
  for (int i = 0; i < kNumCellKinds; ++i) {
    const CellKind k = static_cast<CellKind>(i);
    if (isSourceKind(k) || k == CellKind::kDelay) continue;
    const CellInfo ci = lib.info(k);
    EXPECT_GT(ci.area, 0) << cellKindName(k);
    EXPECT_GT(ci.rise, 0) << cellKindName(k);
    EXPECT_GT(ci.fall, 0) << cellKindName(k);
  }
}

TEST(CellLibrary, SaneRatios) {
  const CellLibrary& lib = CellLibrary::tsmc013c();
  const CellInfo inv = lib.info(CellKind::kInv);
  const CellInfo xor2 = lib.info(CellKind::kXor2);
  const CellInfo dff = lib.info(CellKind::kDff);
  EXPECT_GT(xor2.area, 2 * inv.area);  // XOR ~2.2x INV
  EXPECT_GT(dff.area, 4 * inv.area);   // DFF ~5x INV
  EXPECT_GT(lib.clkToQ(), lib.setupTime());
  EXPECT_GT(lib.setupTime(), lib.holdTime());
}

TEST(CellLibrary, DriveStrengthsMonotone) {
  const CellLibrary& lib = CellLibrary::tsmc013c();
  // Stronger drive: faster and bigger.
  EXPECT_LT(lib.info(CellKind::kInv, 4).rise, lib.info(CellKind::kInv, 1).rise);
  EXPECT_GT(lib.info(CellKind::kInv, 4).area, lib.info(CellKind::kInv, 1).area);
  EXPECT_LT(lib.info(CellKind::kBuf, 4).rise, lib.info(CellKind::kBuf, 1).rise);
}

TEST(CellLibrary, DelayCellsSymmetricAndOrdered) {
  const CellLibrary& lib = CellLibrary::tsmc013c();
  Ps prev = 0;
  for (int d : {8, 16, 32, 64}) {
    const CellInfo ci = lib.info(CellKind::kBuf, d);
    EXPECT_EQ(ci.rise, ci.fall) << "DLY cells must be edge-symmetric";
    EXPECT_GT(ci.rise, prev);
    prev = ci.rise;
  }
  EXPECT_EQ(lib.info(CellKind::kBuf, 64).rise, 2 * lib.info(CellKind::kBuf, 32).rise);
}

TEST(CellLibrary, LutAreaGrowsExponentially) {
  const CellLibrary& lib = CellLibrary::tsmc013c();
  EXPECT_GT(lib.lutArea(3), lib.lutArea(2));
  EXPECT_GT(lib.lutArea(6) - lib.lutArea(5), lib.lutArea(5) - lib.lutArea(4));
}

TEST(Logic3, Operators) {
  EXPECT_EQ(logicNot(Logic::T), Logic::F);
  EXPECT_EQ(logicNot(Logic::X), Logic::X);
  EXPECT_EQ(logicAnd(Logic::X, Logic::F), Logic::F);
  EXPECT_EQ(logicOr(Logic::X, Logic::T), Logic::T);
  EXPECT_EQ(logicXor(Logic::T, Logic::T), Logic::F);
  EXPECT_EQ(logicChar(Logic::X), 'X');
  EXPECT_TRUE(isKnown(Logic::F));
  EXPECT_FALSE(isKnown(Logic::X));
}

}  // namespace
}  // namespace gkll
