// Protocol-framing robustness: the service must survive anything a
// hostile or broken client can put on the wire — truncated frames,
// oversized length prefixes, garbage bytes, disconnects mid-request —
// with a clean error or close, never a crash or a leaked admission slot.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include "service/proto.h"
#include "service/server.h"
#include "service/service.h"
#include "util/json.h"

namespace gkll::service {
namespace {

// --- JsonWriter --------------------------------------------------------------

TEST(ServiceProto, JsonWriterDeterministicOrder) {
  JsonWriter w;
  w.i64("id", 7).str("verb", "ping").boolean("ok", true).u64("n", 3);
  EXPECT_EQ(w.finish(), R"({"id":7,"verb":"ping","ok":true,"n":3})");
}

TEST(ServiceProto, JsonWriterEscapes) {
  JsonWriter w;
  w.str("msg", "a\"b\\c\nd\te\rf\x01g");
  const std::string out = w.finish();
  EXPECT_EQ(out, "{\"msg\":\"a\\\"b\\\\c\\nd\\te\\rf\\u0001g\"}");
  // Parses cleanly with the repo's own JSON parser (which keeps \uXXXX
  // escapes verbatim rather than decoding them).
  util::JsonValue v;
  ASSERT_TRUE(util::parseJson(out, v));
  EXPECT_EQ(v.stringOr("msg", ""), "a\"b\\c\nd\te\rf\\u0001g");
}

TEST(ServiceProto, HashHandleSpelling) {
  EXPECT_EQ(hashHandle(0x1234abcdu), "0x000000001234abcd");
}

// --- FrameDecoder ------------------------------------------------------------

TEST(ServiceProto, FrameRoundTrip) {
  const std::string payload = R"({"verb":"ping"})";
  const std::string frame = encodeFrame(payload);
  ASSERT_EQ(frame.size(), payload.size() + 4);
  FrameDecoder dec;
  dec.feed(frame);
  std::string out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.pendingBytes(), 0u);
}

TEST(ServiceProto, DecoderHandlesBytewiseFeeds) {
  const std::string frame =
      encodeFrame("hello") + encodeFrame("") + encodeFrame("world!");
  FrameDecoder dec;
  std::vector<std::string> got;
  for (char c : frame) {
    dec.feed(std::string_view(&c, 1));
    std::string out;
    while (dec.next(out) == FrameDecoder::Status::kFrame) got.push_back(out);
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "hello");
  EXPECT_EQ(got[1], "");
  EXPECT_EQ(got[2], "world!");
}

TEST(ServiceProto, OversizedLengthPrefixIsFatal) {
  FrameDecoder dec(/*maxFrameBytes=*/1024);
  // 4 GiB length prefix — the classic memory-bomb probe.
  const unsigned char hdr[4] = {0xff, 0xff, 0xff, 0xff};
  dec.feed(std::string_view(reinterpret_cast<const char*>(hdr), 4));
  std::string out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kError);
  EXPECT_NE(dec.error().find("exceeds limit"), std::string::npos);
  // Dead decoder stays dead — no resynchronisation on garbage.
  dec.feed(encodeFrame("x"));
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kError);
}

TEST(ServiceProto, TruncatedFrameNeedsMore) {
  const std::string frame = encodeFrame("abcdef");
  FrameDecoder dec;
  dec.feed(std::string_view(frame).substr(0, frame.size() - 2));
  std::string out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kNeedMore);
  dec.feed(std::string_view(frame).substr(frame.size() - 2));
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out, "abcdef");
}

// --- stream serving ----------------------------------------------------------

struct Pipes {
  int toServer[2];
  int fromServer[2];
  Pipes() {
    EXPECT_EQ(::pipe(toServer), 0);
    EXPECT_EQ(::pipe(fromServer), 0);
  }
  ~Pipes() {
    for (int fd : {toServer[0], toServer[1], fromServer[0], fromServer[1]})
      if (fd >= 0) ::close(fd);
  }
  void closeWrite() {
    ::close(toServer[1]);
    toServer[1] = -1;
  }
};

TEST(ServiceProto, ServeStreamAnswersAndStopsAtEof) {
  Service svc;
  Pipes p;
  std::thread server([&] {
    serveStream(svc, p.toServer[0], p.fromServer[1]);
    ::close(p.fromServer[1]);
    p.fromServer[1] = -1;
  });
  ASSERT_TRUE(writeFrame(p.toServer[1], R"({"id":1,"verb":"ping"})"));
  std::string resp;
  ASSERT_EQ(readFrame(p.fromServer[0], resp, nullptr), ReadStatus::kOk);
  EXPECT_EQ(resp, R"({"id":1,"verb":"ping","ok":true})");
  p.closeWrite();
  server.join();
}

TEST(ServiceProto, GarbagePayloadGetsErrorResponse) {
  Service svc;
  Pipes p;
  std::thread server([&] { serveStream(svc, p.toServer[0], p.fromServer[1]); });
  ASSERT_TRUE(writeFrame(p.toServer[1], "\x00\x01garbage not json"));
  std::string resp;
  ASSERT_EQ(readFrame(p.fromServer[0], resp, nullptr), ReadStatus::kOk);
  util::JsonValue v;
  ASSERT_TRUE(util::parseJson(resp, v));
  EXPECT_FALSE(v.boolOr("ok", true));
  EXPECT_EQ(v.stringOr("error", ""), "bad_request");
  p.closeWrite();
  server.join();
}

TEST(ServiceProto, OversizedFrameClosesWithErrorFrame) {
  Service svc;
  Pipes p;
  std::thread server([&] {
    serveStream(svc, p.toServer[0], p.fromServer[1], /*maxFrameBytes=*/64);
  });
  // Length prefix far past the stream limit.
  const unsigned char hdr[4] = {0x7f, 0xff, 0xff, 0xff};
  ASSERT_TRUE(writeAll(p.toServer[1], hdr, 4));
  std::string resp;
  ASSERT_EQ(readFrame(p.fromServer[0], resp, nullptr), ReadStatus::kOk);
  util::JsonValue v;
  ASSERT_TRUE(util::parseJson(resp, v));
  EXPECT_EQ(v.stringOr("error", ""), "framing");
  server.join();  // stream is over after a framing error
}

TEST(ServiceProto, MidRequestDisconnectLeaksNoSlot) {
  // Client sends half a frame and vanishes.  The server must unwind the
  // connection and leave every admission slot free for the next client.
  ServiceOptions opt;
  opt.maxInflight = 1;
  opt.maxQueue = 0;
  Service svc(opt);
  {
    Pipes p;
    std::thread server([&] {
      serveStream(svc, p.toServer[0], p.fromServer[1]);
    });
    const std::string frame = encodeFrame(R"({"id":9,"verb":"ping"})");
    ASSERT_TRUE(
        writeAll(p.toServer[1], frame.data(), frame.size() - 3));  // partial
    p.closeWrite();  // disconnect mid-frame
    server.join();
  }
  // A fresh, well-behaved session must get a normal answer immediately —
  // with maxInflight=1/maxQueue=0, any leaked slot would answer "busy".
  const std::string resp = svc.handle(R"({"id":2,"verb":"ping"})");
  EXPECT_EQ(resp, R"({"id":2,"verb":"ping","ok":true})");
}

}  // namespace
}  // namespace gkll::service
