#include "attack/oracle.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "flow/gk_flow.h"
#include "netlist/netlist_ops.h"
#include "runtime/pool.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace gkll {
namespace {

TEST(CombOracle, MatchesDirectEvaluation) {
  const Netlist c17 = makeC17();
  CombOracle oracle(c17);
  Rng rng(1);
  for (int t = 0; t < 20; ++t) {
    std::vector<Logic> in;
    for (std::size_t i = 0; i < c17.inputs().size(); ++i)
      in.push_back(logicFromBool(rng.flip()));
    EXPECT_EQ(oracle.query(in),
              outputValues(c17, evalCombinational(c17, in)));
  }
  EXPECT_EQ(oracle.numQueries(), 20u);
}

// Batches past 64 patterns switch CombOracle::queryBatch onto the wide
// W-word sweep; the answers must be byte-identical to per-pattern queries
// (and X patterns must flow through the wide path unchanged).
TEST(CombOracle, LargeBatchWidePathMatchesPerQuery) {
  const Netlist nl = generateByName("gen:800x0@2");  // combinational
  CombOracle oracle(nl);
  Rng rng(3);
  std::vector<std::vector<Logic>> patterns(200);
  for (auto& p : patterns) {
    p.resize(nl.inputs().size());
    for (Logic& v : p)
      v = rng.chance(0.1) ? Logic::X : logicFromBool(rng.flip());
  }
  const auto batch = oracle.queryBatch(patterns);
  ASSERT_EQ(batch.size(), patterns.size());

  CombOracle ref(nl);
  for (std::size_t i = 0; i < patterns.size(); ++i)
    EXPECT_EQ(batch[i], ref.query(patterns[i])) << "pattern " << i;
  // Batch accounting counts patterns, not sweeps.
  EXPECT_EQ(oracle.numQueries(), patterns.size());
}

struct LockedFixture {
  Netlist orig = makeToySeq();
  GkFlowResult locked;
  LockedFixture() {
    GkFlowOptions opt;
    opt.numGks = 1;
    opt.clockPeriod = ns(8);
    locked = runGkFlow(orig, opt);
  }
};

TEST(TimingOracle, CorrectKeyCapturesMatchOriginalTransitionFunction) {
  LockedFixture f;
  ASSERT_EQ(f.locked.insertions.size(), 1u);
  ASSERT_TRUE(f.locked.verify.ok());
  TimingOracle chip(f.locked.design.netlist, f.locked.clockArrival,
                    f.locked.design.keyInputs, f.locked.design.correctKey,
                    f.locked.clockPeriod, f.orig.flops().size());
  EXPECT_EQ(chip.numDataPIs(), f.orig.inputs().size());
  EXPECT_EQ(chip.numSharedFlops(), f.orig.flops().size());

  Rng rng(2);
  for (int t = 0; t < 12; ++t) {
    std::vector<Logic> pis(chip.numDataPIs());
    std::vector<Logic> state(chip.numSharedFlops());
    for (Logic& v : pis) v = logicFromBool(rng.flip());
    for (Logic& v : state) v = logicFromBool(rng.flip());
    const TimingOracle::Capture cap = chip.query(pis, state);
    EXPECT_EQ(cap.violations, 0);

    SequentialSim ref(f.orig);
    ref.setState(state);
    const auto poRef = ref.step(pis);
    EXPECT_EQ(cap.captured, ref.state()) << "trial " << t;
    for (std::size_t i = 0; i < poRef.size(); ++i)
      EXPECT_EQ(cap.poValues[i], poRef[i]);
  }
}

TEST(TimingOracle, WrongKeyCapturesInvertedAtGkFlop) {
  LockedFixture f;
  // Wrong key: constant 0 on the KEYGEN (GK variant (a) then inverts).
  std::vector<int> wrong = f.locked.design.correctKey;
  for (int& b : wrong) b = 0;  // (k1,k2) = (0,0): glitchless
  TimingOracle chip(f.locked.design.netlist, f.locked.clockArrival,
                    f.locked.design.keyInputs, wrong, f.locked.clockPeriod,
                    f.orig.flops().size());
  // Find the locked flop's index.
  const GateId host = f.locked.lockedFfs[0];
  std::size_t hostIdx = 0;
  for (std::size_t i = 0; i < f.orig.flops().size(); ++i)
    if (f.orig.flops()[i] == host) hostIdx = i;

  Rng rng(3);
  int inverted = 0, total = 0;
  for (int t = 0; t < 10; ++t) {
    std::vector<Logic> pis(chip.numDataPIs());
    std::vector<Logic> state(chip.numSharedFlops());
    for (Logic& v : pis) v = logicFromBool(rng.flip());
    for (Logic& v : state) v = logicFromBool(rng.flip());
    const auto cap = chip.query(pis, state);
    SequentialSim ref(f.orig);
    ref.setState(state);
    ref.step(pis);
    if (cap.captured[hostIdx] == Logic::X) continue;
    ++total;
    if (cap.captured[hostIdx] == logicNot(ref.state()[hostIdx])) ++inverted;
  }
  EXPECT_GT(total, 0);
  EXPECT_EQ(inverted, total);  // every clean capture is inverted
}

TEST(TimingOracle, QueryBatchMatchesSerialQueriesOnAnyPool) {
  LockedFixture f;
  TimingOracle chip(f.locked.design.netlist, f.locked.clockArrival,
                    f.locked.design.keyInputs, f.locked.design.correctKey,
                    f.locked.clockPeriod, f.orig.flops().size());
  Rng rng(11);
  std::vector<TimingOracle::Query> qs(24);
  for (auto& q : qs) {
    q.piValues.resize(chip.numDataPIs());
    q.state.resize(chip.numSharedFlops());
    for (Logic& v : q.piValues) v = logicFromBool(rng.flip());
    for (Logic& v : q.state) v = logicFromBool(rng.flip());
  }

  std::vector<TimingOracle::Capture> serial;
  for (const auto& q : qs) serial.push_back(chip.query(q.piValues, q.state));

  // Byte-identical results regardless of how the batch is scheduled: the
  // global pool, an explicit serial pool, and an oversubscribed one.
  const auto viaGlobal = chip.queryBatch(qs);
  runtime::ThreadPool one(1);
  const auto viaOne = chip.queryBatch(qs, &one);
  runtime::ThreadPool four(4);
  const auto viaFour = chip.queryBatch(qs, &four);
  EXPECT_EQ(viaGlobal, serial);
  EXPECT_EQ(viaOne, serial);
  EXPECT_EQ(viaFour, serial);
  EXPECT_EQ(chip.numQueries(), 4u * qs.size());
}

TEST(TimingOracle, RepeatedQueriesThroughRecycledSessionAreDeterministic) {
  // The cached query() session must leak nothing between queries: the
  // same stimulus gives the same capture no matter what ran in between.
  LockedFixture f;
  TimingOracle chip(f.locked.design.netlist, f.locked.clockArrival,
                    f.locked.design.keyInputs, f.locked.design.correctKey,
                    f.locked.clockPeriod, f.orig.flops().size());
  Rng rng(12);
  std::vector<Logic> pisA(chip.numDataPIs()), stateA(chip.numSharedFlops());
  std::vector<Logic> pisB(chip.numDataPIs()), stateB(chip.numSharedFlops());
  for (Logic& v : pisA) v = logicFromBool(rng.flip());
  for (Logic& v : stateA) v = logicFromBool(rng.flip());
  for (Logic& v : pisB) v = logicFromBool(rng.flip());
  for (Logic& v : stateB) v = logicFromBool(rng.flip());

  const auto first = chip.query(pisA, stateA);
  const auto other = chip.query(pisB, stateB);  // dirty the session
  const auto again = chip.query(pisA, stateA);
  EXPECT_EQ(first, again);
  EXPECT_EQ(other, chip.query(pisB, stateB));
}

}  // namespace
}  // namespace gkll
