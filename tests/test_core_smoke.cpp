// End-to-end smoke of everything the README's quickstart promises, plus
// combined-feature interactions (withholding x hybrid, variant-b x
// withholding) that no single-feature suite exercises together.
#include <gtest/gtest.h>

#include "attack/sat_attack.h"
#include "benchgen/synthetic_bench.h"
#include "core/gk_encryptor.h"

namespace gkll {
namespace {

TEST(CoreSmoke, ReadmeQuickstartContract) {
  GkEncryptor enc(generateByName("s1238"));
  EncryptOptions opt;
  opt.numGks = 4;
  const GkFlowResult locked = enc.encrypt(opt);
  EXPECT_TRUE(locked.verify.ok());
  const CorruptionReport cr = enc.measureCorruption(locked, 10);
  EXPECT_EQ(cr.corruptedTrials, 10);
  const AttackReport rep = enc.attackReport(locked);
  EXPECT_TRUE(rep.sat.unsatAtFirstIteration);
  EXPECT_TRUE(rep.satDefeated);
}

TEST(CoreSmoke, HybridPlusWithholdingStacks) {
  // The paper's full defensive stack: GKs + conventional XORs + withheld
  // GK structure — verified, SAT-dead, structurally opaque.
  GkEncryptor enc(generateByName("s5378"));
  EncryptOptions opt;
  opt.numGks = 4;
  opt.hybridXorKeys = 8;
  opt.withholding = true;
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 4u);
  EXPECT_TRUE(locked.verify.ok());

  const AttackReport rep = enc.attackReport(locked);
  EXPECT_TRUE(rep.satDefeated);
  EXPECT_TRUE(rep.sat.keyConstraintsUnsat);  // XOR DIPs poisoned by GKs
  // Deep random logic contains skewed nets, so candidates may exist; what
  // matters is that no bypass survives verification.
  EXPECT_FALSE(rep.removalRestored);
  EXPECT_TRUE(rep.enhancedRemovalDefeated);  // LUTs block the modelling
  EXPECT_EQ(rep.enhancedRemoval.unmodelable, 4);
}

TEST(CoreSmoke, VariantBPlusWithholding) {
  GkEncryptor enc(generateByName("s1238"));
  EncryptOptions opt;
  opt.numGks = 2;
  opt.bufferVariant = true;
  opt.withholding = true;
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 2u);
  EXPECT_TRUE(locked.verify.ok());
  // Transition keys still corrupt through the LUTs.
  const CorruptionReport cr = enc.measureCorruption(locked, 6);
  EXPECT_GT(cr.corruptedTrials, 0);
}

TEST(CoreSmoke, CustomGlitchLengthEndToEnd) {
  GkEncryptor enc(generateByName("s9234"));
  EncryptOptions opt;
  opt.numGks = 3;
  opt.glitchLen = ns(2);
  const GkFlowResult locked = enc.encrypt(opt);
  ASSERT_EQ(locked.insertions.size(), 3u);
  EXPECT_TRUE(locked.verify.ok());
  const auto surf = enc.attackSurface(locked);
  const SatAttackResult sat =
      satAttack(surf.comb, surf.gkKeys, surf.oracleComb);
  EXPECT_TRUE(sat.unsatAtFirstIteration);
}

TEST(CoreSmoke, ExplicitClockPeriodRespectedEndToEnd) {
  GkEncryptor enc(generateByName("s1238"));
  EncryptOptions opt;
  opt.numGks = 2;
  opt.clockPeriod = ns(7);
  const GkFlowResult locked = enc.encrypt(opt);
  EXPECT_EQ(locked.clockPeriod, ns(7));
  EXPECT_TRUE(locked.verify.ok());
}

}  // namespace
}  // namespace gkll
