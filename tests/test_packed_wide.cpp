#include "netlist/packed_eval.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchgen/synthetic_bench.h"
#include "netlist/compiled.h"
#include "util/rng.h"

namespace gkll {
namespace {

// Canonical random PackedBits: X lanes from `x`, value lanes only where
// known (v & x == 0, the representation invariant).
PackedBits randomWord(Rng& rng) {
  const std::uint64_t x = rng.next() & rng.next();  // ~25% X lanes
  return {rng.next() & ~x, x};
}

struct WideCase {
  Netlist nl;
  CompiledNetlist cn;
  explicit WideCase(const std::string& name)
      : nl(generateByName(name)), cn(CompiledNetlist::compile(nl)) {}
};

// The core identity: one W-word wide sweep equals W independent narrow
// evalPacked passes on every net and every word, X lanes included, for
// every kernel this machine can run.
TEST(WideEval, MatchesNarrowEvalPackedPerWord) {
  Rng rng(2024);
  for (const char* name : {"c17", "toyseq", "s1238", "gen:3000x120@5"}) {
    SCOPED_TRACE(name);
    const WideCase c(name);
    const std::size_t numPIs = c.nl.inputs().size();
    const std::size_t numFfs = c.nl.flops().size();

    for (const std::size_t W : {1u, 2u, 3u, 5u}) {
      PackedLanes wideIn(numPIs, W), wideFf(numFfs, W);
      std::vector<std::vector<PackedBits>> narrowIn(
          W, std::vector<PackedBits>(numPIs));
      std::vector<std::vector<PackedBits>> narrowFf(
          W, std::vector<PackedBits>(numFfs));
      for (std::size_t s = 0; s < numPIs; ++s)
        for (std::size_t w = 0; w < W; ++w) {
          const PackedBits b = randomWord(rng);
          wideIn.setWord(s, w, b);
          narrowIn[w][s] = b;
        }
      for (std::size_t s = 0; s < numFfs; ++s)
        for (std::size_t w = 0; w < W; ++w) {
          const PackedBits b = randomWord(rng);
          wideFf.setWord(s, w, b);
          narrowFf[w][s] = b;
        }

      std::vector<std::vector<PackedBits>> ref(W);
      for (std::size_t w = 0; w < W; ++w)
        c.cn.evalPacked(narrowIn[w], narrowFf[w], ref[w]);

      for (const SimdLevel level :
           {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
        if (!simdLevelAvailable(level)) continue;
        SCOPED_TRACE(simdLevelName(level));
        const WideEvaluator wide(c.cn, level);
        ASSERT_EQ(wide.simd(), level);
        WideEvaluator::Buffer buf;
        wide.eval(wideIn, wideFf, buf);
        ASSERT_EQ(buf.words(), W);
        for (NetId n = 0; n < c.nl.numNets(); ++n)
          for (std::size_t w = 0; w < W; ++w)
            ASSERT_EQ(wide.netWord(buf, n, w), ref[w][n])
                << "net " << n << " word " << w << " W=" << W;
      }
    }
  }
}

TEST(WideEval, OutputWordsMatchOutputLanes) {
  Rng rng(7);
  const WideCase c("s1238");
  const std::size_t W = 3;
  PackedLanes wideIn(c.nl.inputs().size(), W),
      wideFf(c.nl.flops().size(), W);  // flops float at X
  std::vector<std::vector<PackedBits>> narrowIn(
      W, std::vector<PackedBits>(c.nl.inputs().size()));
  for (std::size_t s = 0; s < c.nl.inputs().size(); ++s)
    for (std::size_t w = 0; w < W; ++w) {
      const PackedBits b = randomWord(rng);
      wideIn.setWord(s, w, b);
      narrowIn[w][s] = b;
    }
  const std::vector<PackedBits> narrowFf(c.nl.flops().size());  // all X

  const WideEvaluator wide(c.cn);
  WideEvaluator::Buffer buf;
  wide.eval(wideIn, wideFf, buf);
  for (std::size_t w = 0; w < W; ++w) {
    std::vector<PackedBits> nets;
    c.cn.evalPacked(narrowIn[w], narrowFf, nets);
    EXPECT_EQ(wide.outputWords(buf, w), c.cn.outputLanes(nets));
  }
}

// Missing trailing inputs float at X, exactly like a short narrow span.
TEST(WideEval, ShortInputLanesFloatAtX) {
  const WideCase c("c17");
  const WideEvaluator wide(c.cn);
  WideEvaluator::Buffer buf;
  const PackedLanes in(2, 1);  // only 2 of c17's 5 PIs, themselves all X
  const PackedLanes ff(0, 1);
  wide.eval(in, ff, buf);
  std::vector<PackedBits> nets;
  c.cn.evalPacked(std::vector<PackedBits>(2), {}, nets);
  for (NetId n = 0; n < c.nl.numNets(); ++n)
    EXPECT_EQ(wide.netWord(buf, n, 0), nets[n]) << "net " << n;
}

// A Buffer grown by a wide evaluation shrinks/regrows cleanly when the
// same buffer is reused with a different word count.
TEST(WideEval, BufferReuseAcrossWordCounts) {
  Rng rng(99);
  const WideCase c("toyseq");
  const WideEvaluator wide(c.cn);
  WideEvaluator::Buffer buf;
  for (const std::size_t W : {4u, 1u, 6u}) {
    PackedLanes in(c.nl.inputs().size(), W), ff(c.nl.flops().size(), W);
    std::vector<std::vector<PackedBits>> narrowIn(
        W, std::vector<PackedBits>(c.nl.inputs().size()));
    std::vector<std::vector<PackedBits>> narrowFf(
        W, std::vector<PackedBits>(c.nl.flops().size()));
    for (std::size_t s = 0; s < c.nl.inputs().size(); ++s)
      for (std::size_t w = 0; w < W; ++w) {
        const PackedBits b = randomWord(rng);
        in.setWord(s, w, b);
        narrowIn[w][s] = b;
      }
    for (std::size_t s = 0; s < c.nl.flops().size(); ++s)
      for (std::size_t w = 0; w < W; ++w) {
        const PackedBits b = randomWord(rng);
        ff.setWord(s, w, b);
        narrowFf[w][s] = b;
      }
    wide.eval(in, ff, buf);
    ASSERT_EQ(buf.words(), W);
    for (std::size_t w = 0; w < W; ++w) {
      std::vector<PackedBits> nets;
      c.cn.evalPacked(narrowIn[w], narrowFf[w], nets);
      for (NetId n = 0; n < c.nl.numNets(); ++n)
        ASSERT_EQ(wide.netWord(buf, n, w), nets[n]) << "W=" << W;
    }
  }
}

// The row kernel behind the withholding cone-LUT pass: W words of
// evalWideCellRows equal W calls of evalPackedCell, for a sample of every
// arity class including LUTs.
TEST(WideEval, CellRowsMatchScalarHelperPerWord) {
  Rng rng(31);
  const std::size_t W = 5;
  const struct {
    CellKind kind;
    std::uint64_t mask;
  } cases[] = {
      {CellKind::kInv, 0},  {CellKind::kAnd2, 0}, {CellKind::kNor3, 0},
      {CellKind::kXor2, 0}, {CellKind::kMux2, 0}, {CellKind::kLut, 0},
  };
  for (auto [kind, mask] : cases) {
    const int arity = kind == CellKind::kLut ? 4 : cellNumInputs(kind);
    if (kind == CellKind::kLut) mask = rng.next();
    std::vector<std::vector<PackedBits>> rows(
        static_cast<std::size_t>(arity), std::vector<PackedBits>(W));
    std::vector<const PackedBits*> ins;
    for (auto& row : rows) {
      for (PackedBits& b : row) b = randomWord(rng);
      ins.push_back(row.data());
    }
    std::vector<PackedBits> out(W);
    evalWideCellRows(kind, ins, out.data(), W, mask);
    for (std::size_t w = 0; w < W; ++w) {
      std::vector<PackedBits> scalarIns;
      for (const auto& row : rows) scalarIns.push_back(row[w]);
      EXPECT_EQ(out[w], evalPackedCell(kind, scalarIns, mask))
          << cellKindName(kind) << " word " << w;
    }
  }
}

TEST(WideEval, EnvOverrideNeverExceedsAvailable) {
  // bestSimdLevel() must return something runnable regardless of the
  // GKLL_SIMD override already in the environment.
  EXPECT_TRUE(simdLevelAvailable(bestSimdLevel()));
  EXPECT_TRUE(simdLevelAvailable(SimdLevel::kScalar));
}

}  // namespace
}  // namespace gkll
