#include "core/gk_encryptor.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"

namespace gkll {
namespace {

TEST(GkEncryptor, EncryptVerifiesAndReportsOverheads) {
  GkEncryptor enc(generateByName("s1238"));
  EncryptOptions opt;
  opt.numGks = 4;
  const GkFlowResult r = enc.encrypt(opt);
  ASSERT_EQ(r.insertions.size(), 4u);
  EXPECT_TRUE(r.verify.ok());
  EXPECT_GT(r.cellOverheadPct, 0);
  EXPECT_GT(r.areaOverheadPct, 0);
  EXPECT_EQ(r.originalStats.numCells, 341u);
}

TEST(GkEncryptor, CorruptionUnderWrongKeys) {
  GkEncryptor enc(generateByName("s1238"));
  EncryptOptions opt;
  opt.numGks = 4;
  const GkFlowResult r = enc.encrypt(opt);
  const CorruptionReport c = enc.measureCorruption(r, 8);
  EXPECT_EQ(c.trials, 8);
  EXPECT_EQ(c.corruptedTrials, 8);  // every wrong key corrupts
  EXPECT_GT(c.avgStateMismatches, 0.0);
}

TEST(GkEncryptor, AttackReportShowsTheHeadlineResults) {
  GkEncryptor enc(generateByName("s1238"));
  EncryptOptions opt;
  opt.numGks = 2;
  const GkFlowResult r = enc.encrypt(opt);
  ASSERT_EQ(r.insertions.size(), 2u);
  const AttackReport rep = enc.attackReport(r);
  EXPECT_TRUE(rep.satDefeated);
  EXPECT_TRUE(rep.sat.unsatAtFirstIteration);
  EXPECT_FALSE(rep.removalLocated);
  // Without withholding, the enhanced removal attack wins (Sec. V-D).
  EXPECT_FALSE(rep.enhancedRemovalDefeated);
}

TEST(GkEncryptor, WithholdingClosesTheEnhancedRemovalHole) {
  GkEncryptor enc(generateByName("s1238"));
  EncryptOptions opt;
  opt.numGks = 2;
  opt.withholding = true;
  const GkFlowResult r = enc.encrypt(opt);
  ASSERT_EQ(r.insertions.size(), 2u);
  EXPECT_TRUE(r.verify.ok());  // re-verified after the LUT swap
  const AttackReport rep = enc.attackReport(r);
  EXPECT_TRUE(rep.satDefeated);
  EXPECT_TRUE(rep.enhancedRemovalDefeated);
  EXPECT_EQ(rep.enhancedRemoval.unmodelable, 2);
}

TEST(GkEncryptor, AttackSurfaceInterfaceAligned) {
  GkEncryptor enc(generateByName("s1238"));
  EncryptOptions opt;
  opt.numGks = 3;
  opt.hybridXorKeys = 5;
  const GkFlowResult r = enc.encrypt(opt);
  const auto surf = enc.attackSurface(r);
  EXPECT_EQ(surf.gkKeys.size(), 3u);
  EXPECT_EQ(surf.otherKeys.size(), 5u);
  EXPECT_EQ(surf.comb.outputs().size(), surf.oracleComb.outputs().size());
  EXPECT_EQ(surf.comb.inputs().size(),
            surf.oracleComb.inputs().size() + 3 + 5);
  EXPECT_FALSE(surf.comb.validate().has_value());
}

TEST(GkEncryptor, CorruptionOnEmptyLockIsZero) {
  GkEncryptor enc(makeToySeq());
  GkFlowResult empty;  // nothing locked
  const CorruptionReport c = enc.measureCorruption(empty, 4);
  EXPECT_EQ(c.trials, 0);
  EXPECT_EQ(c.corruptedTrials, 0);
}

}  // namespace
}  // namespace gkll
