#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gkll {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng r(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(19);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto before = v;
  r.shuffle(v);
  EXPECT_NE(v, before);  // 1/32! chance of false failure
}

TEST(Rng, ForkIsIndependent) {
  Rng a(23);
  Rng child = a.fork();
  Rng a2(23);
  a2.fork();
  // Parent keeps producing the same stream as a reference parent.
  EXPECT_EQ(a.next(), a2.next());
  // The child stream differs from the parent's.
  Rng c2 = Rng(23).fork();
  EXPECT_EQ(child.next(), c2.next());
}

TEST(Rng, FlipIsRoughlyFair) {
  Rng r(29);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.flip() ? 1 : 0;
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Rng, PickReturnsElements) {
  Rng r(31);
  const std::vector<int> v{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.pick(v));
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace gkll
