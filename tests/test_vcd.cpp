#include "sim/vcd.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "lock/glitch_keygate.h"

namespace gkll {
namespace {

struct VcdFixture {
  Netlist nl{"vcd"};
  NetId x = kNoNet, key = kNoNet;
  GkInstance gk;
  std::unique_ptr<EventSim> sim;

  VcdFixture() {
    x = nl.addPI("x");
    key = nl.addPI("key");
    gk = buildGk(nl, x, key, false, ns(2), ns(3), "gk");
    nl.markPO(gk.y);
    EventSimConfig cfg;
    cfg.simTime = ns(10);
    cfg.clockedFlops = false;
    sim = std::make_unique<EventSim>(nl, cfg);
    sim->setInitialInput(x, Logic::T);
    sim->setInitialInput(key, Logic::F);
    sim->drive(key, ns(3), Logic::T);
    sim->run();
  }
};

TEST(Vcd, HeaderAndDefinitions) {
  VcdFixture f;
  const std::string vcd = writeVcd(*f.sim, f.nl);
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module gkll $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! x $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
}

TEST(Vcd, DumpsInitialValuesAndChanges) {
  VcdFixture f;
  VcdOptions opt;
  opt.nets = {f.key, f.gk.y};
  const std::string vcd = writeVcd(*f.sim, f.nl, opt);
  // key (id '!') initially 0, y (id '"') initially 0 (x' with x=1... y=0).
  EXPECT_NE(vcd.find("0!"), std::string::npos);
  // The key rise at exactly 3 ns.
  EXPECT_NE(vcd.find("#3000\n1!"), std::string::npos);
  // Final timestamp is the horizon.
  EXPECT_NE(vcd.find("#10000\n"), std::string::npos);
}

TEST(Vcd, TimesAreMonotone) {
  VcdFixture f;
  const std::string vcd = writeVcd(*f.sim, f.nl);
  std::istringstream in(vcd);
  std::string line;
  long long last = -1;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '#') continue;
    const long long t = std::stoll(line.substr(1));
    EXPECT_GE(t, last);
    last = t;
  }
  EXPECT_GT(last, 0);
}

TEST(Vcd, HorizonClips) {
  VcdFixture f;
  VcdOptions opt;
  opt.nets = {f.gk.y};
  opt.horizon = ns(4);  // before the glitch ends at ~6.2 ns
  const std::string vcd = writeVcd(*f.sim, f.nl, opt);
  EXPECT_EQ(vcd.find("#6"), std::string::npos);
  EXPECT_NE(vcd.find("#4000\n"), std::string::npos);
}

TEST(Vcd, AutoNamedNetsSkippedByDefault) {
  Netlist nl("auto");
  const NetId a = nl.addPI("a");
  const NetId hidden = nl.addNet();  // "_n0"
  nl.addGate(CellKind::kInv, {a}, hidden);
  nl.markPO(hidden);
  EventSimConfig cfg;
  cfg.simTime = ns(1);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.run();
  const std::string vcd = writeVcd(sim, nl);
  EXPECT_EQ(vcd.find("_n0"), std::string::npos);
  EXPECT_NE(vcd.find(" a $end"), std::string::npos);
}

TEST(Vcd, FileRoundTrip) {
  VcdFixture f;
  const std::string path = testing::TempDir() + "/gkll_wave.vcd";
  ASSERT_TRUE(writeVcdFile(*f.sim, f.nl, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), writeVcd(*f.sim, f.nl));
}

}  // namespace
}  // namespace gkll
