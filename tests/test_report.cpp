// Tests for the perf-comparison core behind gkll_report (src/obs/report.h):
// the direction heuristic, both metric-file formats, and the gate verdicts —
// including the two properties CI leans on: an identical-run self-compare
// must pass, and an injected 20%+ regression must fail.
#include "obs/report.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace gkll {
namespace {

using obs::CompareResult;
using obs::DeltaVerdict;
using obs::MetricDelta;
using obs::MetricDirection;
using obs::MetricsFile;

std::string tempPath(const std::string& name) {
  return testing::TempDir() + "gkll_report_" + name;
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

const MetricDelta* find(const CompareResult& r, const std::string& name) {
  for (const MetricDelta& d : r.deltas)
    if (d.name == name) return &d;
  return nullptr;
}

TEST(Report, DirectionHeuristic) {
  using obs::directionOf;
  EXPECT_EQ(directionOf("oracle.queries_per_sec"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(directionOf("session_speedup"), MetricDirection::kHigherIsBetter);
  EXPECT_EQ(directionOf("sim.throughput"), MetricDirection::kHigherIsBetter);
  EXPECT_EQ(directionOf("attack_wall_ms_p50"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(directionOf("attack.oracle.us.p99"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(directionOf("solve.cpu_seconds"), MetricDirection::kLowerIsBetter);
  EXPECT_EQ(directionOf("arena.bytes"), MetricDirection::kLowerIsBetter);
  EXPECT_EQ(directionOf("conflicts_per_dip"), MetricDirection::kLowerIsBetter);
  // Workload descriptors never gate.
  EXPECT_EQ(directionOf("attack_wall_ms_count"),
            MetricDirection::kInformational);
  EXPECT_EQ(directionOf("attack.dips.count"), MetricDirection::kInformational);
  EXPECT_EQ(directionOf("pool.threads"), MetricDirection::kInformational);
  EXPECT_EQ(directionOf("parallel_identical"),
            MetricDirection::kInformational);
}

TEST(Report, LoadsBenchJsonObject) {
  const std::string path = tempPath("bench.json");
  spit(path,
       "{\n  \"events_per_sec\": 1.5e6,\n  \"queue_high_water\": 42,\n"
       "  \"label\": \"not-a-number\",\n  \"sim_runs\": 300\n}\n");
  MetricsFile mf;
  std::string err;
  ASSERT_TRUE(obs::loadMetricsFile(path, mf, err)) << err;
  EXPECT_EQ(mf.metrics.size(), 3u);  // the string field is skipped
  EXPECT_DOUBLE_EQ(mf.metrics.at("events_per_sec").value, 1.5e6);
  EXPECT_DOUBLE_EQ(mf.metrics.at("queue_high_water").value, 42.0);
}

TEST(Report, LoadsMetricsJsonlStream) {
  const std::string path = tempPath("metrics.jsonl");
  spit(path,
       "{\"type\":\"counter\",\"name\":\"attack.dips\",\"value\":128}\n"
       "\n"
       "{\"type\":\"dist\",\"name\":\"oracle.us\",\"count\":10,"
       "\"mean\":5.5,\"p50\":5.0,\"p95\":9.0}\n"
       "{\"type\":\"hist\",\"name\":\"attack.oracle.us\",\"count\":10,"
       "\"min\":1,\"max\":20,\"mean\":6.0,\"p50\":5.0,\"p90\":12.0,"
       "\"p99\":19.0,\"p999\":20.0,\"cdf\":[[20,1.0]]}\n");
  MetricsFile mf;
  std::string err;
  ASSERT_TRUE(obs::loadMetricsFile(path, mf, err)) << err;
  EXPECT_DOUBLE_EQ(mf.metrics.at("attack.dips").value, 128.0);
  EXPECT_DOUBLE_EQ(mf.metrics.at("oracle.us.p95").value, 9.0);
  EXPECT_DOUBLE_EQ(mf.metrics.at("attack.oracle.us.p999").value, 20.0);
  // The cdf array and the name field don't flatten into scalars.
  EXPECT_EQ(mf.metrics.count("attack.oracle.us.cdf"), 0u);
  EXPECT_EQ(mf.metrics.count("attack.oracle.us.name"), 0u);
}

TEST(Report, RejectsUnreadableAndGarbage) {
  MetricsFile mf;
  std::string err;
  EXPECT_FALSE(obs::loadMetricsFile(tempPath("missing.json"), mf, err));
  EXPECT_FALSE(err.empty());

  const std::string path = tempPath("garbage.jsonl");
  spit(path, "this is not json\n");
  err.clear();
  EXPECT_FALSE(obs::loadMetricsFile(path, mf, err));
  EXPECT_NE(err.find(":1:"), std::string::npos) << err;  // line number
}

MetricsFile mf(std::initializer_list<std::pair<const char*, double>> kv) {
  MetricsFile m;
  for (const auto& [k, v] : kv) m.metrics[k] = {v};
  return m;
}

TEST(Report, SelfCompareIsAlwaysClean) {
  const MetricsFile run = mf({{"attack_wall_ms_p50", 120.0},
                              {"oracle.queries_per_sec", 5e4},
                              {"attack.dips.count", 17.0}});
  const CompareResult r = obs::compareMetrics(run, run, 0.10);
  EXPECT_EQ(r.regressions, 0u);
  EXPECT_EQ(r.improvements, 0u);
  for (const MetricDelta& d : r.deltas) EXPECT_DOUBLE_EQ(d.relChange, 0.0);
}

TEST(Report, DetectsInjectedRegressionBothDirections) {
  const MetricsFile base =
      mf({{"attack_wall_ms_p50", 100.0}, {"oracle.queries_per_sec", 1000.0}});
  // +25% wall time and -25% throughput: both must gate at 10% tolerance.
  const MetricsFile cur =
      mf({{"attack_wall_ms_p50", 125.0}, {"oracle.queries_per_sec", 750.0}});
  const CompareResult r = obs::compareMetrics(base, cur, 0.10);
  EXPECT_EQ(r.regressions, 2u);
  const MetricDelta* wall = find(r, "attack_wall_ms_p50");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->verdict, DeltaVerdict::kRegression);
  EXPECT_NEAR(wall->relChange, 0.25, 1e-12);
  const MetricDelta* qps = find(r, "oracle.queries_per_sec");
  ASSERT_NE(qps, nullptr);
  EXPECT_EQ(qps->verdict, DeltaVerdict::kRegression);
  EXPECT_NEAR(qps->relChange, -0.25, 1e-12);
  // Regressions sort to the front for the CI log.
  EXPECT_EQ(r.deltas.front().verdict, DeltaVerdict::kRegression);
}

TEST(Report, GoodMovementIsImprovementNotRegression) {
  const MetricsFile base =
      mf({{"attack_wall_ms_p50", 100.0}, {"oracle.queries_per_sec", 1000.0}});
  const MetricsFile cur =
      mf({{"attack_wall_ms_p50", 60.0}, {"oracle.queries_per_sec", 2000.0}});
  const CompareResult r = obs::compareMetrics(base, cur, 0.10);
  EXPECT_EQ(r.regressions, 0u);
  EXPECT_EQ(r.improvements, 2u);
}

TEST(Report, ToleranceAndOverridesGate) {
  const MetricsFile base = mf({{"a_wall_ms", 100.0}, {"b_wall_ms", 100.0}});
  const MetricsFile cur = mf({{"a_wall_ms", 115.0}, {"b_wall_ms", 115.0}});
  // Default 10%: both regress.  Override b to 25%: only a regresses.
  EXPECT_EQ(obs::compareMetrics(base, cur, 0.10).regressions, 2u);
  obs::ToleranceMap loose{{"b_wall_ms", 0.25}};
  const CompareResult r = obs::compareMetrics(base, cur, 0.10, loose);
  EXPECT_EQ(r.regressions, 1u);
  EXPECT_EQ(find(r, "a_wall_ms")->verdict, DeltaVerdict::kRegression);
  EXPECT_EQ(find(r, "b_wall_ms")->verdict, DeltaVerdict::kOk);
  // A 30% default lets both through.
  EXPECT_EQ(obs::compareMetrics(base, cur, 0.30).regressions, 0u);
}

TEST(Report, InformationalAndOneSidedMetricsNeverGate) {
  const MetricsFile base =
      mf({{"dips.count", 100.0}, {"gone_wall_ms", 50.0}});
  const MetricsFile cur = mf({{"dips.count", 500.0}, {"new_wall_ms", 70.0}});
  const CompareResult r = obs::compareMetrics(base, cur, 0.10);
  EXPECT_EQ(r.regressions, 0u);
  EXPECT_EQ(find(r, "dips.count")->verdict, DeltaVerdict::kInfo);
  const MetricDelta* gone = find(r, "gone_wall_ms");
  ASSERT_NE(gone, nullptr);
  EXPECT_EQ(gone->verdict, DeltaVerdict::kInfo);
  EXPECT_TRUE(gone->inBaseline);
  EXPECT_FALSE(gone->inCurrent);
  const MetricDelta* fresh = find(r, "new_wall_ms");
  ASSERT_NE(fresh, nullptr);
  EXPECT_FALSE(fresh->inBaseline);
  EXPECT_TRUE(fresh->inCurrent);
}

TEST(Report, ZeroBaselineUsesFullScaleChange) {
  const MetricsFile base = mf({{"x_wall_ms", 0.0}});
  const MetricsFile cur = mf({{"x_wall_ms", 5.0}});
  const CompareResult r = obs::compareMetrics(base, cur, 0.10);
  const MetricDelta* d = find(r, "x_wall_ms");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->relChange, 1.0);
  EXPECT_EQ(d->verdict, DeltaVerdict::kRegression);
}

TEST(Report, FormatCompareMentionsEveryVerdict) {
  const MetricsFile base =
      mf({{"slow_wall_ms", 100.0}, {"fast_wall_ms", 100.0},
          {"steady_wall_ms", 100.0}, {"n.count", 3.0}});
  const MetricsFile cur =
      mf({{"slow_wall_ms", 150.0}, {"fast_wall_ms", 50.0},
          {"steady_wall_ms", 101.0}, {"n.count", 4.0}});
  const std::string text =
      obs::formatCompare(obs::compareMetrics(base, cur, 0.10));
  EXPECT_NE(text.find("REGRESSION"), std::string::npos) << text;
  EXPECT_NE(text.find("improvement"), std::string::npos) << text;
  EXPECT_NE(text.find("1 regression(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("1 improvement(s)"), std::string::npos) << text;
}

}  // namespace
}  // namespace gkll
