// Differential tests for the high-throughput SAT core:
//   - every gate encoding vs the packed evaluator (CompiledNetlist), all
//     input assignments at once through the 64 lanes;
//   - random small CNFs vs brute-force enumeration, exercising the arena
//     clause database, the binary-in-watcher fast path, incremental clause
//     addition, and assumption solving;
//   - key-cone-reduced residual stamping (encodeResidual) vs the full
//     encoding on a locked circuit;
//   - the arena statistics (arenaBytes / binaryClauses / reducedClauses).
#include <gtest/gtest.h>

#include <vector>

#include "benchgen/synthetic_bench.h"
#include "lock/locking.h"
#include "lock/xor_lock.h"
#include "netlist/compiled.h"
#include "sat/cnf.h"
#include "sat/solver.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace gkll::sat {
namespace {

// --- gate encodings vs evalPacked ------------------------------------------

class GatePackedTest : public testing::TestWithParam<CellKind> {};

TEST_P(GatePackedTest, ModelMatchesPackedEvaluator) {
  const CellKind kind = GetParam();
  const int n = cellNumInputs(kind);
  ASSERT_GT(n, 0);
  ASSERT_LE(n, 6);

  Netlist nl("g");
  std::vector<NetId> pis;
  for (int i = 0; i < n; ++i) pis.push_back(nl.addPI("i" + std::to_string(i)));
  const NetId out = nl.addNet("o");
  nl.addGate(kind, pis, out);
  nl.markPO(out);
  const CompiledNetlist cn = CompiledNetlist::compile(nl);

  // All 2^n assignments at once: lane m carries assignment m.
  std::vector<PackedBits> in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::uint64_t bits = 0;
    for (std::uint64_t m = 0; m < (1ULL << n); ++m)
      bits |= ((m >> i) & 1ULL) << m;
    in[static_cast<std::size_t>(i)] = PackedBits{bits, 0};
  }
  std::vector<PackedBits> nets;
  cn.evalPacked(in, {}, nets);

  Solver s;
  const std::vector<Var> vars = encodeNetlist(s, cn);
  for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
    std::vector<Lit> assumps;
    for (int i = 0; i < n; ++i)
      assumps.push_back(
          mkLit(vars[pis[static_cast<std::size_t>(i)]], !((m >> i) & 1ULL)));
    ASSERT_EQ(s.solve(assumps), Result::kSat) << "m=" << m;
    const Logic want = packedLane(nets[out], static_cast<unsigned>(m));
    ASSERT_NE(want, Logic::X);
    EXPECT_EQ(s.modelValue(vars[out]), want == Logic::T)
        << cellKindName(kind) << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGateKinds, GatePackedTest,
    testing::Values(CellKind::kBuf, CellKind::kInv, CellKind::kAnd2,
                    CellKind::kAnd3, CellKind::kAnd4, CellKind::kNand2,
                    CellKind::kNand3, CellKind::kNand4, CellKind::kOr2,
                    CellKind::kOr3, CellKind::kOr4, CellKind::kNor2,
                    CellKind::kNor3, CellKind::kNor4, CellKind::kXor2,
                    CellKind::kXnor2, CellKind::kMux2, CellKind::kAoi21,
                    CellKind::kOai21, CellKind::kDelay),
    [](const testing::TestParamInfo<CellKind>& info) {
      return cellKindName(info.param);
    });

// --- random CNFs vs brute force --------------------------------------------

bool clauseSatisfied(const std::vector<Lit>& clause, std::uint64_t assign) {
  for (Lit l : clause) {
    const bool val = (assign >> litVar(l)) & 1ULL;
    if (val != litSign(l)) return true;  // litSign==false means positive lit
  }
  return false;
}

/// Exhaustive SAT over `numVars` variables; `fixed` pins vars like
/// assumptions do.  Returns whether a satisfying assignment exists.
bool bruteForce(int numVars, const std::vector<std::vector<Lit>>& clauses,
                const std::vector<Lit>& fixed = {}) {
  for (std::uint64_t a = 0; a < (1ULL << numVars); ++a) {
    bool ok = true;
    for (Lit l : fixed)
      if ((((a >> litVar(l)) & 1ULL) != 0) == litSign(l)) { ok = false; break; }
    if (!ok) continue;
    for (const auto& c : clauses)
      if (!clauseSatisfied(c, a)) { ok = false; break; }
    if (ok) return true;
  }
  return false;
}

TEST(SatCoreRandom, MatchesBruteForce) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    const int numVars = static_cast<int>(rng.range(3, 10));
    const int numClauses = static_cast<int>(rng.range(2, 4 * numVars));
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < numClauses; ++c) {
      // Widths 1..4: plenty of units and binaries so the binary-in-watcher
      // path and the root propagation both get exercised.
      const int width = static_cast<int>(rng.range(1, 4));
      std::vector<Lit> cl;
      for (int i = 0; i < width; ++i)
        cl.push_back(mkLit(static_cast<Var>(rng.range(0, numVars - 1)),
                           rng.flip()));
      clauses.push_back(std::move(cl));
    }

    Solver s;
    for (int v = 0; v < numVars; ++v) s.newVar();
    // Incremental: add in two batches with a solve in between.
    const std::size_t half = clauses.size() / 2;
    std::vector<std::vector<Lit>> firstHalf(clauses.begin(),
                                            clauses.begin() + half);
    for (const auto& c : firstHalf) s.addClause(c);
    EXPECT_EQ(s.solve() == Result::kSat, bruteForce(numVars, firstHalf))
        << "trial " << trial << " (first half)";
    for (std::size_t c = half; c < clauses.size(); ++c) s.addClause(clauses[c]);
    const bool expect = bruteForce(numVars, clauses);
    const Result got = s.solve();
    ASSERT_EQ(got == Result::kSat, expect) << "trial " << trial;
    if (got == Result::kSat) {
      // The model must actually satisfy every clause.
      std::uint64_t a = 0;
      for (int v = 0; v < numVars; ++v)
        a |= static_cast<std::uint64_t>(s.modelValue(v) ? 1 : 0) << v;
      for (const auto& c : clauses) EXPECT_TRUE(clauseSatisfied(c, a));
    }

    // Assumption solving agrees with pinning, and is repeatable.
    std::vector<Lit> assumps;
    for (int v = 0; v < numVars; ++v)
      if (rng.range(0, 2) == 0) assumps.push_back(mkLit(v, rng.flip()));
    const bool expectA = bruteForce(numVars, clauses, assumps);
    EXPECT_EQ(s.solve(assumps) == Result::kSat, expectA) << "trial " << trial;
    EXPECT_EQ(s.solve() == Result::kSat, expect) << "trial " << trial;
  }
}

// --- residual (key-cone reduced) stamping vs the full encoding -------------

TEST(SatCoreResidual, ResidualAgreesWithFullEncodingOnLockedC17) {
  const Netlist orig = makeC17();
  const LockedDesign ld = xorLock(orig, XorLockOptions{4, 77});
  const CompiledNetlist locked = CompiledNetlist::compile(ld.netlist);
  const std::size_t numKeys = ld.keyInputs.size();

  std::vector<NetId> dataPIs;
  for (NetId pi : ld.netlist.inputs()) {
    bool isKey = false;
    for (NetId k : ld.keyInputs) isKey |= (k == pi);
    if (!isKey) dataPIs.push_back(pi);
  }
  std::vector<int> slot(ld.netlist.numNets(), -1);
  for (std::size_t i = 0; i < ld.netlist.inputs().size(); ++i)
    slot[ld.netlist.inputs()[i]] = static_cast<int>(i);

  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    // Fold a random DIP through the circuit with the keys X.
    std::vector<PackedBits> foldIn(ld.netlist.inputs().size(),
                                   packedSplat(Logic::X));
    std::vector<Logic> dip;
    for (NetId n : dataPIs) {
      dip.push_back(logicFromBool(rng.flip()));
      foldIn[static_cast<std::size_t>(slot[n])] = packedSplat(dip.back());
    }
    std::vector<PackedBits> folded;
    locked.evalPacked(foldIn, {}, folded);

    Solver rs;
    ConstVars consts;
    std::vector<Var> keyVars;
    for (std::size_t i = 0; i < numKeys; ++i) keyVars.push_back(rs.newVar());
    const std::vector<Var> vc =
        encodeResidual(rs, locked, folded, 0, ld.keyInputs, keyVars, consts);

    // The residual must be strictly smaller than a full circuit copy.
    Solver full;
    encodeNetlist(full, locked);
    EXPECT_LT(rs.numClauses(), full.numClauses());

    // Under every key assignment the residual model reproduces the
    // concrete evaluation of the locked circuit.
    for (std::uint64_t k = 0; k < (1ULL << numKeys); ++k) {
      std::vector<Lit> assumps;
      std::vector<PackedBits> concIn = foldIn;
      for (std::size_t i = 0; i < numKeys; ++i) {
        const bool bit = (k >> i) & 1ULL;
        assumps.push_back(mkLit(keyVars[i], !bit));
        concIn[static_cast<std::size_t>(slot[ld.keyInputs[i]])] =
            packedSplat(logicFromBool(bit));
      }
      std::vector<PackedBits> concNets;
      locked.evalPacked(concIn, {}, concNets);
      ASSERT_EQ(rs.solve(assumps), Result::kSat);
      for (NetId po : ld.netlist.outputs()) {
        const Logic want = packedLane(concNets[po], 0);
        const Logic fv = packedLane(folded[po], 0);
        if (fv != Logic::X) {
          // Folded-constant output: the fold already is the answer.
          EXPECT_EQ(fv, want);
          continue;
        }
        ASSERT_GE(vc[po], 0);
        EXPECT_EQ(rs.modelValue(vc[po]), want == Logic::T)
            << "trial " << trial << " key " << k;
      }
    }
  }
}

// --- arena statistics -------------------------------------------------------

TEST(SatCoreStats, ArenaAndBinaryCounts) {
  Solver s;
  const Var a = s.newVar(), b = s.newVar(), c = s.newVar();
  EXPECT_EQ(s.stats().arenaBytes, 0u);
  s.addClause(mkLit(a), mkLit(b));                       // binary
  s.addClause(mkLit(a, true), mkLit(c));                 // binary
  s.addClause(mkLit(a), mkLit(b, true), mkLit(c, true)); // ternary
  EXPECT_EQ(s.stats().binaryClauses, 2u);
  EXPECT_EQ(s.numClauses(), 3u);
  EXPECT_GT(s.stats().arenaBytes, 0u);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatCoreStats, ReductionFiresOnHardInstance) {
  // Random 3-SAT at clause ratio 4.5, deterministically UNSAT with well
  // over the first-reduce conflict threshold, so the tiered database must
  // have dropped learned clauses along the way.
  Rng rng(2);
  Solver s;
  const int numVars = 200;
  for (int v = 0; v < numVars; ++v) s.newVar();
  for (int c = 0; c < numVars * 9 / 2; ++c) {
    const Var a = static_cast<Var>(rng.range(0, numVars - 1));
    const Var b = static_cast<Var>(rng.range(0, numVars - 1));
    const Var d = static_cast<Var>(rng.range(0, numVars - 1));
    s.addClause(mkLit(a, rng.flip()), mkLit(b, rng.flip()),
                mkLit(d, rng.flip()));
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 4000u);
  EXPECT_GT(s.stats().reducedClauses, 0u);
}

}  // namespace
}  // namespace gkll::sat
