#include "lock/withholding.h"

#include <gtest/gtest.h>

#include "attack/enhanced_removal.h"
#include "benchgen/synthetic_bench.h"
#include "netlist/netlist_ops.h"
#include "sat/cnf.h"
#include "sim/event_sim.h"

namespace gkll {
namespace {

struct Harness {
  Netlist nl{"wh"};
  NetId x = kNoNet, key = kNoNet;
  GkInstance gk;
};

Harness makeGkOnGate(CellKind innerKind) {
  // u, v -> inner gate -> x -> GK; the inner gate is absorbable.
  Harness h;
  const NetId u = h.nl.addPI("u");
  const NetId v = h.nl.addPI("v");
  h.x = h.nl.addNet("x");
  h.nl.addGate(innerKind, {u, v}, h.x);
  h.key = h.nl.addPI("key");
  h.gk = buildGk(h.nl, h.x, h.key, false, ns(1), ns(1), "gk");
  h.nl.markPO(h.gk.y);
  return h;
}

TEST(Withholding, ReplacesGatesWithLuts) {
  Harness h = makeGkOnGate(CellKind::kAnd2);
  const WithholdingResult r = withholdGk(h.nl, h.gk);
  EXPECT_EQ(r.luts.size(), 2u);
  EXPECT_EQ(r.absorbedGates, 2);  // AND absorbed into both LUTs
  EXPECT_EQ(h.nl.gate(h.gk.xnorGate).kind, CellKind::kLut);
  EXPECT_EQ(h.nl.gate(h.gk.xorGate).kind, CellKind::kLut);
  EXPECT_FALSE(h.nl.validate().has_value());
}

TEST(Withholding, AbsorbedLutHasThreeInputs) {
  Harness h = makeGkOnGate(CellKind::kNand2);
  const WithholdingResult r = withholdGk(h.nl, h.gk);
  for (GateId l : r.luts) EXPECT_EQ(h.nl.gate(l).fanin.size(), 3u);
}

TEST(Withholding, PreservesSteadyStateFunction) {
  // The withheld GK must compute the same steady-state function: y = x'
  // for constant keys (variant a), where x = AND(u, v).
  for (const CellKind inner :
       {CellKind::kAnd2, CellKind::kOr2, CellKind::kXor2, CellKind::kNand2}) {
    Harness plain = makeGkOnGate(inner);
    Harness hidden = makeGkOnGate(inner);
    withholdGk(hidden.nl, hidden.gk);
    // Compare statically over all input combinations (delays are buffers
    // in CNF).
    EXPECT_TRUE(
        sat::checkEquivalence(plain.nl, hidden.nl).equivalent)
        << cellKindName(inner);
  }
}

TEST(Withholding, GlitchBehaviourSurvives) {
  Harness h = makeGkOnGate(CellKind::kAnd2);
  withholdGk(h.nl, h.gk);
  EventSimConfig cfg;
  cfg.simTime = ns(10);
  cfg.clockedFlops = false;
  EventSim sim(h.nl, cfg);
  // u = v = 1 -> x = 1; steady y = 0; glitch at level 1 on key rise.
  for (NetId pi : h.nl.inputs())
    sim.setInitialInput(pi, pi == h.key ? Logic::F : Logic::T);
  sim.drive(h.key, ns(4), Logic::T);
  sim.run();
  const auto g = glitches(sim.wave(h.gk.y), 0, ns(10), ns(3));
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].level, Logic::T);
  EXPECT_NEAR(static_cast<double>(g[0].width()), 1000, 120);
}

TEST(Withholding, NoAbsorbableDriverFallsBackToTwoInputs) {
  // x driven by a PI: nothing to absorb.
  Harness h;
  h.x = h.nl.addPI("x");
  h.key = h.nl.addPI("key");
  h.gk = buildGk(h.nl, h.x, h.key, false, ns(1), ns(1), "gk");
  h.nl.markPO(h.gk.y);
  const WithholdingResult r = withholdGk(h.nl, h.gk);
  EXPECT_EQ(r.absorbedGates, 0);
  for (GateId l : r.luts) EXPECT_EQ(h.nl.gate(l).fanin.size(), 2u);
}

TEST(Withholding, DefeatsStructuralLocalisation) {
  // Before withholding the GK fingerprint is visible; after, the located
  // candidates are flagged unmodelable.
  Harness plain = makeGkOnGate(CellKind::kAnd2);
  const auto before = locateGks(plain.nl);
  ASSERT_EQ(before.size(), 1u);
  EXPECT_FALSE(before[0].withheld);

  Harness hidden = makeGkOnGate(CellKind::kAnd2);
  withholdGk(hidden.nl, hidden.gk);
  const auto after = locateGks(hidden.nl);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_TRUE(after[0].withheld);
}

}  // namespace
}  // namespace gkll
