#include "timing/sta.h"

#include <gtest/gtest.h>

#include <chrono>

#include "benchgen/synthetic_bench.h"
#include "flow/placement.h"
#include "sim/event_sim.h"
#include "util/rng.h"

namespace gkll {
namespace {

const CellLibrary& lib() { return CellLibrary::tsmc013c(); }

/// PI -> INV -> BUF -> DFF, PO on the BUF output.
Netlist makePath(NetId* dOut = nullptr, GateId* ffOut = nullptr) {
  Netlist nl("path");
  const NetId a = nl.addPI("a");
  const NetId n1 = nl.addNet("n1");
  nl.addGate(CellKind::kInv, {a}, n1);
  const NetId n2 = nl.addNet("n2");
  nl.addGate(CellKind::kBuf, {n1}, n2);
  const NetId q = nl.addNet("q");
  const GateId ff = nl.addGate(CellKind::kDff, {n2}, q);
  nl.markPO(n2);
  if (dOut) *dOut = n2;
  if (ffOut) *ffOut = ff;
  return nl;
}

TEST(Sta, ArrivalTimesAddUp) {
  NetId d;
  const Netlist nl = makePath(&d);
  Sta sta(nl, StaConfig{ns(10), 0});
  const StaResult r = sta.run();
  const Ps maxExpect = std::max(lib().info(CellKind::kInv).rise,
                                lib().info(CellKind::kInv).fall) +
                       std::max(lib().info(CellKind::kBuf).rise,
                                lib().info(CellKind::kBuf).fall);
  const Ps minExpect = std::min(lib().info(CellKind::kInv).rise,
                                lib().info(CellKind::kInv).fall) +
                       std::min(lib().info(CellKind::kBuf).rise,
                                lib().info(CellKind::kBuf).fall);
  EXPECT_EQ(r.maxArrival[d], maxExpect);
  EXPECT_EQ(r.minArrival[d], minExpect);
}

TEST(Sta, InputArrivalShifts) {
  NetId d;
  const Netlist nl = makePath(&d);
  Sta sta0(nl, StaConfig{ns(10), 0});
  Sta sta120(nl, StaConfig{ns(10), 120});
  EXPECT_EQ(sta120.run().maxArrival[d], sta0.run().maxArrival[d] + 120);
}

TEST(Sta, SetupSlackDefinition) {
  NetId d;
  GateId ff;
  const Netlist nl = makePath(&d, &ff);
  Sta sta(nl, StaConfig{ns(10), 0});
  const StaResult r = sta.run();
  EXPECT_EQ(r.setupSlack[0],
            ns(10) - lib().setupTime() - r.maxArrival[d]);
  EXPECT_EQ(r.holdSlack[0], r.minArrival[d] - lib().holdTime());
  EXPECT_TRUE(r.meetsTiming());
}

TEST(Sta, ClockSkewMovesBounds) {
  NetId d;
  GateId ff;
  const Netlist nl = makePath(&d, &ff);
  Sta sta(nl, StaConfig{ns(10), 0});
  sta.setClockArrival(ff, 200);
  const StaResult r = sta.run();
  EXPECT_EQ(r.setupSlack[0],
            200 + ns(10) - lib().setupTime() - r.maxArrival[d]);
  EXPECT_EQ(sta.absLowerBound(ff), 200 + lib().holdTime());
  EXPECT_EQ(sta.absUpperBound(ff), 200 + ns(10) - lib().setupTime());
}

TEST(Sta, FlopLaunchIncludesClkToQ) {
  // q -> INV -> DFF2: arrival at DFF2's D = T_1 + clkToQ + inv.
  Netlist nl;
  const NetId q1 = nl.addNet("q1");
  const NetId d1 = nl.addPI("d1");
  const GateId ff1 = nl.addGate(CellKind::kDff, {d1}, q1);
  const NetId n = nl.addNet("n");
  nl.addGate(CellKind::kInv, {q1}, n);
  const NetId q2 = nl.addNet("q2");
  nl.addGate(CellKind::kDff, {n}, q2);
  nl.markPO(q2);

  Sta sta(nl, StaConfig{ns(10), 0});
  sta.setClockArrival(ff1, 50);
  const StaResult r = sta.run();
  EXPECT_EQ(r.maxArrival[n],
            50 + lib().clkToQ() + std::max(lib().info(CellKind::kInv).rise,
                                           lib().info(CellKind::kInv).fall));
}

TEST(Sta, Eq1BoundsMatchPaper) {
  // LB_ij = Thold + T_j - T_i ; UB_ij = Tclk + T_j - T_i - Tsetup.
  Netlist nl;
  const NetId d1 = nl.addPI("d1");
  const NetId q1 = nl.addNet("q1");
  const GateId ff1 = nl.addGate(CellKind::kDff, {d1}, q1);
  const NetId q2 = nl.addNet("q2");
  const GateId ff2 = nl.addGate(CellKind::kDff, {q1}, q2);
  nl.markPO(q2);
  Sta sta(nl, StaConfig{ns(8), 0});
  sta.setClockArrival(ff1, 100);
  sta.setClockArrival(ff2, 250);
  EXPECT_EQ(sta.lowerBound(ff1, ff2), lib().holdTime() + 250 - 100);
  EXPECT_EQ(sta.upperBound(ff1, ff2), ns(8) + 250 - 100 - lib().setupTime());
}

TEST(Sta, RequiredTimesBackwardPass) {
  NetId d;
  const Netlist nl = makePath(&d);
  Sta sta(nl, StaConfig{ns(10), 0});
  const StaResult r = sta.run();
  // d feeds the PO (required Tclk) and the flop (required Tclk - Tsu).
  EXPECT_EQ(r.requiredMax[d], ns(10) - lib().setupTime());
  // The PI's required time backs off through both gates.
  const NetId a = nl.inputs()[0];
  EXPECT_LT(r.requiredMax[a], r.requiredMax[d]);
  EXPECT_GE(r.requiredMax[a] - 0,
            r.requiredMax[d] -
                std::max(lib().info(CellKind::kInv).rise,
                         lib().info(CellKind::kInv).fall) -
                std::max(lib().info(CellKind::kBuf).rise,
                         lib().info(CellKind::kBuf).fall));
}

TEST(Sta, MinClockPeriodIsTightAndRounded) {
  NetId d;
  const Netlist nl = makePath(&d);
  Sta sta(nl, StaConfig{ns(10), 0});
  const Ps minP = sta.minClockPeriod(100);
  EXPECT_EQ(minP % 100, 0);
  // At the minimum period timing is met...
  Sta tight(nl, StaConfig{minP, 0});
  EXPECT_TRUE(tight.run().meetsTiming());
  // ...one quantum below it is not.
  Sta broken(nl, StaConfig{minP - 100, 0});
  EXPECT_FALSE(broken.run().meetsTiming());
}

TEST(Sta, DelayElementsAreHonored) {
  Netlist nl;
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addDelay(a, y, 3000);
  nl.markPO(y);
  Sta sta(nl, StaConfig{ns(10), 0});
  const StaResult r = sta.run();
  EXPECT_EQ(r.maxArrival[y], 3000);
  EXPECT_EQ(r.minArrival[y], 3000);
}

TEST(Sta, FlopIndexLookupScalesToHugeRegisterFiles) {
  // Regression for the O(F^2) flop-index lookup: setting and reading the
  // clock arrival of every flop in a 60k-DFF shift register must be fast.
  // The old per-call std::find over flops() needed ~3.6e9 comparisons
  // here (tens of seconds); the one-time map does it in milliseconds.
  constexpr int kFlops = 60000;
  Netlist nl;
  NetId cur = nl.addPI("d");
  for (int i = 0; i < kFlops; ++i) {
    const NetId q = nl.addNet();
    nl.addGate(CellKind::kDff, {cur}, q);
    cur = q;
  }
  nl.markPO(cur);

  const auto t0 = std::chrono::steady_clock::now();
  Sta sta(nl, StaConfig{ns(10), 0});
  Ps expect = 0;
  for (std::size_t i = 0; i < nl.flops().size(); ++i) {
    const Ps t = static_cast<Ps>((i % 7) * 10);
    sta.setClockArrival(nl.flops()[i], t);
    expect += t;
  }
  Ps sum = 0;
  for (GateId ff : nl.flops()) sum += sta.clockArrival(ff);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(sum, expect);
  EXPECT_LT(elapsed.count(), 5000) << "flop-index lookup is not O(1)";
}

TEST(Sta, StaIsConservativeAgainstEventSim) {
  // Property: on a placed benchmark driven once, every net settles in the
  // event simulator no later than the STA max arrival (same input frame).
  Netlist nl = generateByName("s1238");
  placeAndRoute(nl, PlacementOptions{});
  StaConfig cfg;
  cfg.clockPeriod = ns(100);  // huge: no captures interfere
  cfg.inputArrival = 0;
  Sta sta(nl, cfg);
  const StaResult r = sta.run();

  EventSimConfig ecfg;
  ecfg.clockPeriod = ns(100);
  ecfg.simTime = ns(60);
  EventSim sim(nl, ecfg);
  Rng rng(5);
  for (NetId pi : nl.inputs())
    sim.setInitialInput(pi, logicFromBool(rng.flip()));
  // Flip every input at t=0+epsilon? Instead drive new values at t=1ps.
  for (NetId pi : nl.inputs()) sim.drive(pi, 1, logicFromBool(rng.flip()));
  sim.run();
  for (NetId n = 0; n < nl.numNets(); ++n) {
    const auto& trs = sim.wave(n).transitions();
    if (trs.empty()) continue;
    EXPECT_LE(trs.back().time - 1, r.maxArrival[n]) << nl.net(n).name;
  }
}

}  // namespace
}  // namespace gkll
