#include "flow/synth.h"

#include <gtest/gtest.h>

#include "sim/event_sim.h"
#include "timing/sta.h"

namespace gkll {
namespace {

const CellLibrary& lib() { return CellLibrary::tsmc013c(); }

/// Parameterised accuracy sweep: the planner must hit any target in the
/// GK-relevant range within the flow's tolerance on both edges.
class ChainPlanTest : public testing::TestWithParam<Ps> {};

TEST_P(ChainPlanTest, AccurateWithinTolerance) {
  const Ps target = GetParam();
  const ChainPlan plan = planDelayChain(target, lib());
  EXPECT_LE(std::llabs(plan.rise - target), 25) << target;
  EXPECT_LE(std::llabs(plan.fall - target), 25) << target;
}

TEST_P(ChainPlanTest, PreservesPolarity) {
  const ChainPlan plan = planDelayChain(GetParam(), lib());
  int inversions = 0;
  for (const auto& [kind, drive] : plan.cells)
    if (kind == CellKind::kInv) ++inversions;
  EXPECT_EQ(inversions % 2, 0);
}

INSTANTIATE_TEST_SUITE_P(TargetSweep, ChainPlanTest,
                         testing::Values(Ps{100}, Ps{250}, Ps{444}, Ps{912},
                                         Ps{915}, Ps{1675}, Ps{2500}, Ps{3555},
                                         Ps{5000}, Ps{7321}));

TEST(ChainPlan, ZeroTargetIsEmpty) {
  EXPECT_TRUE(planDelayChain(0, lib()).cells.empty());
}

TEST(ChainPlan, UsesCoarseDelayCellsForLongTargets) {
  const ChainPlan plan = planDelayChain(ns(5), lib());
  // 5 ns from inverter pairs alone would need ~150 cells; delay cells
  // keep it compact.
  EXPECT_LE(plan.cells.size(), 10u);
  bool anyDly = false;
  for (const auto& [kind, drive] : plan.cells)
    anyDly |= (kind == CellKind::kBuf && drive >= 8);
  EXPECT_TRUE(anyDly);
}

TEST(ChainPlan, MinimisesCellsWithinTolerance) {
  // 1440 is exactly one DLY8: the planner must not pile up fine cells.
  const ChainPlan plan = planDelayChain(1440, lib());
  EXPECT_EQ(plan.cells.size(), 1u);
  EXPECT_EQ(plan.cells[0].first, CellKind::kBuf);
  EXPECT_EQ(plan.cells[0].second, 64);
}

TEST(MapDelayElements, ReplacesIdealDelays) {
  Netlist nl("map");
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addDelay(a, y, 912);
  nl.markPO(y);

  const SynthReport rep = mapDelayElements(nl);
  ASSERT_EQ(rep.chains.size(), 1u);
  EXPECT_GT(rep.cellsAdded, 0);
  EXPECT_GT(rep.areaAdded, 0);
  EXPECT_LE(rep.worstError, 25);
  // No ideal delay elements left.
  for (GateId g = 0; g < nl.numGates(); ++g)
    EXPECT_NE(nl.gate(g).kind, CellKind::kDelay);
  EXPECT_FALSE(nl.validate().has_value());
}

TEST(MapDelayElements, MappedChainMatchesStaAndSim) {
  Netlist nl("timed");
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addDelay(a, y, 2500);
  nl.markPO(y);
  mapDelayElements(nl);

  // STA view.
  Sta sta(nl, StaConfig{ns(10), 0});
  const StaResult r = sta.run();
  EXPECT_NEAR(static_cast<double>(r.maxArrival[y]), 2500, 30);

  // Event-sim view: a rising edge arrives ~target later.
  EventSimConfig cfg;
  cfg.simTime = ns(8);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::F);
  sim.drive(a, ns(1), Logic::T);
  sim.run();
  ASSERT_EQ(sim.wave(y).numTransitions(), 1u);
  EXPECT_NEAR(static_cast<double>(sim.wave(y).transitions()[0].time - ns(1)),
              2500, 30);
}

TEST(MapDelayElements, ZeroDelayBecomesBuffer) {
  Netlist nl("z");
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addDelay(a, y, 0);
  nl.markPO(y);
  const SynthReport rep = mapDelayElements(nl);
  EXPECT_EQ(rep.cellsAdded, 1);
  EXPECT_EQ(nl.net(y).driver != kNoGate &&
                nl.gate(nl.net(y).driver).kind == CellKind::kBuf,
            true);
}

TEST(MapDelayElements, PreservesExistingGateIds) {
  Netlist nl("ids");
  const NetId a = nl.addPI("a");
  const NetId n = nl.addNet("n");
  const GateId inv = nl.addGate(CellKind::kInv, {a}, n);
  const NetId y = nl.addNet("y");
  nl.addDelay(n, y, 500);
  nl.markPO(y);
  mapDelayElements(nl);
  EXPECT_EQ(nl.gate(inv).kind, CellKind::kInv);
  EXPECT_EQ(nl.gate(inv).out, n);
}

TEST(MapDelayElements, FunctionalTransparency) {
  // The mapped chain must still pass the value through unchanged.
  Netlist nl("func");
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addDelay(a, y, 1800);
  nl.markPO(y);
  mapDelayElements(nl);
  EventSimConfig cfg;
  cfg.simTime = ns(10);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(a, Logic::T);
  sim.run();
  EXPECT_EQ(sim.valueAt(y, ns(9)), Logic::T);
}

}  // namespace
}  // namespace gkll
