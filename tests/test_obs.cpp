// Tests for the telemetry layer (src/obs): counters, distributions (P²
// quantile sketches), span nesting, exporter round-trips, and — crucially —
// that a disabled registry records nothing at all.
#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "runtime/parallel.h"
#include "runtime/pool.h"
#include "sat/solver.h"
#include "sim/event_sim.h"
#include "util/json.h"
#include "util/rng.h"

namespace gkll {
namespace {

// --- a minimal JSON syntax checker (round-trip parse for the exporters) ----

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        ++pos_;
      } else if (c == '"') {
        return true;
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::registry().reset();
    obs::setEnabled(true);
  }
  void TearDown() override {
    obs::registry().reset();
    obs::setEnabled(false);
  }
};

TEST_F(ObsTest, CountersAccumulate) {
  obs::registry().counter("x.y").add(3);
  obs::count("x.y", 4);
  obs::count("x.z");
  EXPECT_EQ(obs::registry().counterValue("x.y"), 7u);
  EXPECT_EQ(obs::registry().counterValue("x.z"), 1u);
  EXPECT_EQ(obs::registry().counterValue("absent"), 0u);
}

TEST_F(ObsTest, DistributionExactForSmallSamples) {
  obs::Distribution d;
  d.record(10);
  d.record(30);
  d.record(20);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_DOUBLE_EQ(d.min(), 10);
  EXPECT_DOUBLE_EQ(d.max(), 30);
  EXPECT_DOUBLE_EQ(d.mean(), 20);
  EXPECT_DOUBLE_EQ(d.p50(), 20);  // exact below five samples
}

TEST_F(ObsTest, DistributionQuantileSketch) {
  // 1..1000 in a shuffled order: the P² estimates must land close to the
  // true quantiles, min/max/mean exactly.
  std::vector<double> vals;
  for (int i = 1; i <= 1000; ++i) vals.push_back(i);
  Rng rng(7);
  rng.shuffle(vals);
  obs::Distribution d;
  for (double v : vals) d.record(v);
  EXPECT_EQ(d.count(), 1000u);
  EXPECT_DOUBLE_EQ(d.min(), 1);
  EXPECT_DOUBLE_EQ(d.max(), 1000);
  EXPECT_DOUBLE_EQ(d.mean(), 500.5);
  EXPECT_NEAR(d.p50(), 500, 50);
  EXPECT_NEAR(d.p95(), 950, 50);
}

TEST_F(ObsTest, SpanNestingRecordsContainedEvents) {
  {
    obs::Span outer("outer");
    {
      obs::Span inner("inner");
      inner.arg("k", 42);
    }
  }
  ASSERT_EQ(obs::registry().numTraceEvents(), 2u);
  // Both span names also feed wall-time distributions.
  std::ostringstream os;
  obs::registry().writeMetricsJsonl(os);
  const std::string jsonl = os.str();
  EXPECT_NE(jsonl.find("span.outer.us"), std::string::npos);
  EXPECT_NE(jsonl.find("span.inner.us"), std::string::npos);
}

TEST_F(ObsTest, SpanEndIsIdempotent) {
  obs::Span s("once");
  s.end();
  s.end();  // destructor will call a third time
  EXPECT_EQ(obs::registry().numTraceEvents(), 1u);
}

TEST_F(ObsTest, MetricsJsonlRoundTrip) {
  obs::count("sat.conflicts", 123);
  obs::record("queue.depth", 5);
  obs::record("queue.depth", 15);
  { obs::Span s("phase \"quoted\"\n"); }  // exercises JSON escaping

  std::ostringstream os;
  obs::registry().writeMetricsJsonl(os);
  const std::string jsonl = os.str();

  // Every line must parse as a standalone JSON object.
  std::istringstream lines(jsonl);
  std::string line;
  int parsed = 0;
  bool sawCounter = false;
  bool sawDist = false;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(JsonChecker(line).valid()) << "bad JSONL line: " << line;
    ++parsed;
    if (line.find("\"type\":\"counter\"") != std::string::npos &&
        line.find("\"name\":\"sat.conflicts\"") != std::string::npos) {
      sawCounter = true;
      EXPECT_NE(line.find("\"value\":123"), std::string::npos);
    }
    if (line.find("\"name\":\"queue.depth\"") != std::string::npos) {
      sawDist = true;
      EXPECT_NE(line.find("\"count\":2"), std::string::npos);
      EXPECT_NE(line.find("\"min\":5"), std::string::npos);
      EXPECT_NE(line.find("\"max\":15"), std::string::npos);
      EXPECT_NE(line.find("\"mean\":10"), std::string::npos);
    }
  }
  EXPECT_GE(parsed, 3);
  EXPECT_TRUE(sawCounter);
  EXPECT_TRUE(sawDist);
}

TEST_F(ObsTest, ChromeTraceIsValidJson) {
  {
    obs::Span outer("attack.sat");
    obs::Span inner("sat.solve");
    inner.arg("conflicts", 7);
  }
  std::ostringstream os;
  obs::registry().writeChromeTrace(os);
  const std::string trace = os.str();
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"sat.solve\""), std::string::npos);
  EXPECT_NE(trace.find("\"conflicts\":7"), std::string::npos);
}

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  obs::setEnabled(false);
  obs::registry().reset();

  // Free helpers, spans, and the instrumented solver/sim hot paths must
  // all leave the registry untouched.
  obs::count("nope");
  obs::record("nope.dist", 1.0);
  {
    obs::Span s("nope.span");
    s.arg("k", 1);
  }
  sat::Solver solver;
  const sat::Var a = solver.newVar();
  const sat::Var b = solver.newVar();
  solver.addClause(sat::mkLit(a), sat::mkLit(b));
  solver.addClause(sat::mkLit(a, true), sat::mkLit(b));
  EXPECT_EQ(solver.solve(), sat::Result::kSat);

  EXPECT_EQ(obs::registry().numCounters(), 0u);
  EXPECT_EQ(obs::registry().numDistributions(), 0u);
  EXPECT_EQ(obs::registry().numTraceEvents(), 0u);
}

TEST_F(ObsTest, SolverBridgesStatsIntoRegistry) {
  sat::Solver s;
  std::vector<sat::Var> vars;
  for (int i = 0; i < 8; ++i) vars.push_back(s.newVar());
  // Small pigeonhole-ish contradiction to force real search work.
  for (int i = 0; i < 8; ++i)
    for (int j = i + 1; j < 8; ++j)
      s.addClause(sat::mkLit(vars[static_cast<std::size_t>(i)], true),
                  sat::mkLit(vars[static_cast<std::size_t>(j)], true));
  std::vector<sat::Lit> all;
  for (sat::Var v : vars) all.push_back(sat::mkLit(v));
  s.addClause(all);
  ASSERT_EQ(s.solve(), sat::Result::kSat);

  EXPECT_EQ(obs::registry().counterValue("sat.solve_calls"), 1u);
  EXPECT_GE(obs::registry().numTraceEvents(), 1u);  // the sat.solve span
  EXPECT_EQ(s.stats().solveCalls, 1u);
  EXPECT_GE(s.stats().maxDecisionLevel, 1u);
}

TEST_F(ObsTest, EventSimCountersReachRegistry) {
  // A two-inverter chain driven with a fast pulse: events and a glitch.
  Netlist nl("obs_sim");
  const NetId in = nl.addPI("a");
  const NetId mid = nl.addNet("m");
  const NetId out = nl.addNet("y");
  nl.addGate(CellKind::kInv, {in}, mid);
  nl.addGate(CellKind::kInv, {mid}, out);
  nl.markPO(out);

  EventSimConfig cfg;
  cfg.simTime = ns(20);
  cfg.clockedFlops = false;
  EventSim sim(nl, cfg);
  sim.setInitialInput(in, Logic::F);
  sim.drive(in, ns(5), Logic::T);
  sim.drive(in, ns(5) + 300, Logic::F);  // 300 ps pulse -> glitch traffic
  sim.run();

  EXPECT_GT(sim.totalEvents(), 0u);
  EXPECT_GT(sim.glitchesGenerated(), 0u);
  EXPECT_GT(sim.queueHighWater(), 0u);
  EXPECT_EQ(obs::registry().counterValue("sim.runs"), 1u);
  EXPECT_EQ(obs::registry().counterValue("sim.events"), sim.totalEvents());
  EXPECT_EQ(obs::registry().counterValue("sim.glitches"),
            sim.glitchesGenerated());
}

TEST_F(ObsTest, RegistryResetClearsEverything) {
  obs::count("a");
  { obs::Span s("b"); }
  EXPECT_GT(obs::registry().numCounters() + obs::registry().numTraceEvents(),
            0u);
  obs::registry().reset();
  EXPECT_EQ(obs::registry().numCounters(), 0u);
  EXPECT_EQ(obs::registry().numDistributions(), 0u);
  EXPECT_EQ(obs::registry().numTraceEvents(), 0u);
}

// --- threading contract (see the header's doc block) -------------------------

TEST_F(ObsTest, CountersSumAcrossPoolThreads) {
  runtime::ThreadPool pool(8);
  runtime::ParallelOptions opt;
  opt.pool = &pool;
  constexpr std::size_t kN = 8000;
  runtime::parallelFor(
      kN, [](std::size_t) { obs::count("par.hits"); }, opt);
  EXPECT_EQ(obs::registry().counterValue("par.hits"), kN);
}

TEST_F(ObsTest, ConcurrentDistributionRecordsAreAllCounted) {
  constexpr int kThreads = 8, kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        obs::record("par.dist", t * kPerThread + i);
    });
  for (std::thread& t : threads) t.join();
  const obs::Distribution& d = obs::registry().distribution("par.dist");
  EXPECT_EQ(d.count(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(d.min(), 0);
  EXPECT_DOUBLE_EQ(d.max(), kThreads * kPerThread - 1);
}

TEST_F(ObsTest, SpansFromDistinctThreadsGetDistinctTraceTids) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] { obs::Span s("threaded.span"); });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(obs::registry().numTraceEvents(),
            static_cast<std::size_t>(kThreads));

  std::ostringstream os;
  obs::registry().writeChromeTrace(os);
  const std::string trace = os.str();
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace;
  std::set<std::string> tids;
  for (std::size_t pos = trace.find("\"tid\":"); pos != std::string::npos;
       pos = trace.find("\"tid\":", pos + 1)) {
    std::size_t end = pos + 6;
    while (end < trace.size() &&
           std::isdigit(static_cast<unsigned char>(trace[end])) != 0)
      ++end;
    tids.insert(trace.substr(pos + 6, end - pos - 6));
  }
  EXPECT_GE(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(ObsTest, ResetKeepsThreadRegistrationsUsable) {
  // The contract: reset() drops events but a thread's cached log handle
  // (and its tid) stays valid, so threads keep tracing after a reset.
  { obs::Span s("before.reset"); }
  obs::registry().reset();
  EXPECT_EQ(obs::registry().numTraceEvents(), 0u);
  { obs::Span s("after.reset"); }
  EXPECT_EQ(obs::registry().numTraceEvents(), 1u);
  std::ostringstream os;
  obs::registry().writeChromeTrace(os);
  EXPECT_NE(os.str().find("after.reset"), std::string::npos);
  EXPECT_EQ(os.str().find("before.reset"), std::string::npos);
}

// --- the use-after-reset footgun (regression) --------------------------------

TEST_F(ObsTest, CachedReferencesSurviveReset) {
  // The historical footgun: a hot site caches Counter&/Distribution& once,
  // registry().reset() destroyed the entries, and the next add() wrote
  // through a dangling reference.  The fix recycles entries in place, so
  // cached handles must keep working across any number of resets.
  obs::Counter& c = obs::registry().counter("cached.counter");
  obs::Distribution& d = obs::registry().distribution("cached.dist");
  obs::LogHistogram& h = obs::registry().histogram("cached.hist");
  c.add(5);
  d.record(1.0);
  h.record(10.0);
  const std::uint64_t gen0 = obs::registry().generation();

  obs::registry().reset();
  EXPECT_EQ(obs::registry().generation(), gen0 + 1);
  // Zeroed and hidden from introspection...
  EXPECT_EQ(obs::registry().numCounters(), 0u);
  EXPECT_EQ(obs::registry().numDistributions(), 0u);
  EXPECT_EQ(obs::registry().numHistograms(), 0u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(h.count(), 0u);

  // ...but the cached references are live, and recording into them makes
  // the entries visible again without a re-lookup.
  c.add(2);
  d.record(7.0);
  h.record(3.0);
  EXPECT_EQ(obs::registry().counterValue("cached.counter"), 2u);
  EXPECT_EQ(obs::registry().numCounters(), 1u);
  EXPECT_EQ(obs::registry().numDistributions(), 1u);
  EXPECT_EQ(obs::registry().numHistograms(), 1u);
  EXPECT_DOUBLE_EQ(d.mean(), 7.0);
  EXPECT_EQ(h.count(), 1u);

  // Same story for the identical reference returned by a fresh lookup.
  EXPECT_EQ(&obs::registry().counter("cached.counter"), &c);
  EXPECT_EQ(&obs::registry().distribution("cached.dist"), &d);
  EXPECT_EQ(&obs::registry().histogram("cached.hist"), &h);
}

TEST_F(ObsTest, ResetHidesUntouchedEntriesFromExporters) {
  obs::count("stale.counter");
  obs::record("stale.dist", 1.0);
  obs::registry().reset();
  std::ostringstream os;
  obs::registry().writeMetricsJsonl(os);
  EXPECT_EQ(os.str().find("stale."), std::string::npos) << os.str();
  // A re-lookup resurrects the entry even at value zero (gen refresh).
  obs::registry().counter("stale.counter");
  std::ostringstream os2;
  obs::registry().writeMetricsJsonl(os2);
  EXPECT_NE(os2.str().find("stale.counter"), std::string::npos);
}

TEST_F(ObsTest, MetricsJsonlCarriesHistogramLines) {
  obs::histRecord("hist.latency.us", 5.0);
  obs::histRecord("hist.latency.us", 50.0);
  obs::histRecord("hist.latency.us", 500.0);
  std::ostringstream os;
  obs::registry().writeMetricsJsonl(os);

  // Find and parse the hist line; it must carry the full percentile set
  // (monotone) and a CDF array ending at fraction 1.
  std::istringstream lines(os.str());
  std::string line;
  bool found = false;
  while (std::getline(lines, line)) {
    util::JsonValue v;
    std::string err;
    ASSERT_TRUE(util::parseJson(line, v, &err)) << err << ": " << line;
    if (v.stringOr("type", "") != "hist") continue;
    found = true;
    EXPECT_EQ(v.stringOr("name", ""), "hist.latency.us");
    EXPECT_DOUBLE_EQ(v.numberOr("count", -1), 3.0);
    const double p50 = v.numberOr("p50", -1);
    const double p90 = v.numberOr("p90", -1);
    const double p99 = v.numberOr("p99", -1);
    const double p999 = v.numberOr("p999", -1);
    EXPECT_GE(p50, v.numberOr("min", 1e300));
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, p999);
    EXPECT_LE(p999, v.numberOr("max", -1));
    const util::JsonValue* cdf = v.find("cdf");
    ASSERT_NE(cdf, nullptr);
    ASSERT_TRUE(cdf->isArray());
    ASSERT_FALSE(cdf->array.empty());
    const util::JsonValue& last = cdf->array.back();
    ASSERT_TRUE(last.isArray());
    ASSERT_EQ(last.array.size(), 2u);
    EXPECT_DOUBLE_EQ(last.array[1].number, 1.0);
  }
  EXPECT_TRUE(found) << os.str();
}

// --- Chrome-trace field validation (parsed, not substring-matched) -----------

TEST_F(ObsTest, ChromeTraceFieldsParseAndCarryRequiredKeys) {
  {
    obs::Span s("trace.fields");
    s.arg("n", 3);
  }
  std::ostringstream os;
  obs::registry().writeChromeTrace(os);

  util::JsonValue doc;
  std::string err;
  ASSERT_TRUE(util::parseJson(os.str(), doc, &err)) << err;
  const util::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  ASSERT_EQ(events->array.size(), 1u);
  const util::JsonValue& ev = events->array[0];
  EXPECT_EQ(ev.stringOr("ph", ""), "X");
  EXPECT_EQ(ev.stringOr("name", ""), "trace.fields");
  ASSERT_NE(ev.find("ts"), nullptr);
  ASSERT_NE(ev.find("dur"), nullptr);
  ASSERT_NE(ev.find("tid"), nullptr);
  ASSERT_NE(ev.find("pid"), nullptr);
  EXPECT_GE(ev.numberOr("dur", -1), 0.0);
  EXPECT_GE(ev.numberOr("tid", 0), 1.0);
  const util::JsonValue* args = ev.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->numberOr("n", 0), 3.0);
}

TEST_F(ObsTest, PoolWorkerTidsAreStableAcrossReset) {
  // Worker threads register their trace logs at spawn; reset() must not
  // renumber them.  Run spans on the pool, snapshot the tids, reset, run
  // again: the tid set must be identical.
  runtime::ThreadPool pool(4);
  runtime::ParallelOptions opt;
  opt.pool = &pool;
  auto tidSet = [&] {
    std::ostringstream os;
    obs::registry().writeChromeTrace(os);
    util::JsonValue doc;
    std::string err;
    EXPECT_TRUE(util::parseJson(os.str(), doc, &err)) << err;
    std::set<double> tids;
    if (const util::JsonValue* evs = doc.find("traceEvents"))
      for (const util::JsonValue& ev : evs->array)
        tids.insert(ev.numberOr("tid", -1));
    return tids;
  };
  runtime::parallelFor(
      64, [](std::size_t) { obs::Span s("pool.work"); }, opt);
  const std::set<double> before = tidSet();
  EXPECT_GE(before.size(), 1u);
  obs::registry().reset();
  runtime::parallelFor(
      64, [](std::size_t) { obs::Span s("pool.work2"); }, opt);
  const std::set<double> after = tidSet();
  for (const double t : after)
    EXPECT_TRUE(before.count(t) == 1 || t >= *before.rbegin())
        << "tid " << t << " renumbered by reset";
}

// --- P² degenerate-input hardening + property test ---------------------------

TEST_F(ObsTest, P2ConstantStreamStaysInRange) {
  // Constant and near-duplicate streams: estimates must stay within the
  // observed range and the published (p50, p95) pair must be monotone.
  obs::Distribution d;
  for (int i = 0; i < 1000; ++i) d.record(42.0);
  EXPECT_DOUBLE_EQ(d.p50(), 42.0);
  EXPECT_DOUBLE_EQ(d.p95(), 42.0);

  obs::Distribution d2;
  for (int i = 0; i < 1000; ++i) d2.record(i % 2 == 0 ? 1.0 : 1.0 + 1e-12);
  EXPECT_GE(d2.p50(), 1.0);
  EXPECT_LE(d2.p95(), 1.0 + 1e-12);
  EXPECT_LE(d2.p50(), d2.p95());
}

TEST_F(ObsTest, P2VersusHistogramVersusExactSort) {
  // Property test across stream shapes: P² (sketch), LogHistogram
  // (bucketed) and an exact sort must agree within their documented error
  // bounds, and both sketches must respect range and monotonicity.
  struct Shape {
    const char* name;
    std::function<double(Rng&, int)> gen;
  };
  const std::vector<Shape> shapes = {
      {"uniform", [](Rng& r, int) {
         return static_cast<double>(r.range(1, 100000));
       }},
      {"constant", [](Rng&, int) { return 777.0; }},
      {"two-point", [](Rng& r, int) { return r.flip() ? 10.0 : 1000.0; }},
      {"ramp", [](Rng&, int i) { return static_cast<double>(i + 1); }},
      {"heavy-tail", [](Rng& r, int) {
         return 1.0 / (1.0 - r.uniform() * 0.999);
       }},
  };
  for (const Shape& shape : shapes) {
    SCOPED_TRACE(shape.name);
    Rng rng(99);
    obs::Distribution d;
    obs::LogHistogram h;
    std::vector<double> exact;
    for (int i = 0; i < 5000; ++i) {
      const double v = shape.gen(rng, i);
      d.record(v);
      h.record(v);
      exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    const double lo = exact.front(), hi = exact.back();
    auto exactQ = [&](double p) {
      return exact[std::min(exact.size() - 1,
                            static_cast<std::size_t>(
                                p * static_cast<double>(exact.size())))];
    };

    // Range + monotonicity invariants (the degenerate-input fix).
    EXPECT_GE(d.p50(), lo);
    EXPECT_LE(d.p50(), hi);
    EXPECT_GE(d.p95(), lo);
    EXPECT_LE(d.p95(), hi);
    EXPECT_LE(d.p50(), d.p95());

    const obs::LogHistogram::Snapshot s = h.snapshot();
    double prev = 0;
    for (const double p : {0.5, 0.9, 0.99}) {
      const double q = s.quantile(p);
      EXPECT_GE(q, prev);  // monotone in p by construction
      prev = q;
      // Histogram error bound: <= 1/32 relative plus integer rounding.
      const double want = exactQ(p);
      EXPECT_NEAR(q, want, want / 16.0 + 1.5)
          << "hist quantile p=" << p;
    }
    // P² accuracy is only loosely bounded; sanity-check the median lands
    // in the central mass on continuous-ish shapes.
    if (std::string(shape.name) == "uniform" ||
        std::string(shape.name) == "ramp") {
      EXPECT_NEAR(d.p50(), exactQ(0.5), (hi - lo) * 0.1);
    }
  }
}

}  // namespace
}  // namespace gkll
