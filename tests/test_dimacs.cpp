#include "sat/dimacs.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "sat/cnf.h"
#include "util/rng.h"

namespace gkll::sat {
namespace {

TEST(Dimacs, WriteFormat) {
  const std::vector<std::vector<Lit>> clauses{
      {mkLit(0), mkLit(1, true)}, {mkLit(2)}};
  const std::string s = writeDimacs(clauses, 3);
  EXPECT_NE(s.find("p cnf 3 2"), std::string::npos);
  EXPECT_NE(s.find("1 -2 0"), std::string::npos);
  EXPECT_NE(s.find("3 0"), std::string::npos);
}

TEST(Dimacs, ParseRoundTrip) {
  const std::vector<std::vector<Lit>> clauses{
      {mkLit(0), mkLit(1, true)}, {mkLit(2)}, {mkLit(0, true), mkLit(2, true)}};
  DimacsFormula f;
  std::string err;
  ASSERT_TRUE(parseDimacs(writeDimacs(clauses, 3), f, err)) << err;
  EXPECT_EQ(f.numVars, 3);
  ASSERT_EQ(f.clauses.size(), 3u);
  EXPECT_EQ(f.clauses[0], clauses[0]);
  EXPECT_EQ(f.clauses[2], clauses[2]);
}

TEST(Dimacs, ParseToleratesCommentsAndMissingTerminator) {
  DimacsFormula f;
  std::string err;
  ASSERT_TRUE(parseDimacs("c hello\np cnf 2 1\n1 2", f, err)) << err;
  EXPECT_EQ(f.clauses.size(), 1u);
}

TEST(Dimacs, ParseRejectsGarbage) {
  DimacsFormula f;
  std::string err;
  EXPECT_FALSE(parseDimacs("p cnf x y\n", f, err));
  EXPECT_FALSE(parseDimacs("p cnf 2 1\n1 frog 0\n", f, err));
}

TEST(Dimacs, SolveSatAndUnsat) {
  DimacsFormula f;
  std::string err;
  ASSERT_TRUE(parseDimacs("p cnf 2 2\n1 2 0\n-1 0\n", f, err));
  std::vector<bool> model;
  EXPECT_EQ(solveDimacs(f, &model), Result::kSat);
  EXPECT_FALSE(model[0]);
  EXPECT_TRUE(model[1]);

  ASSERT_TRUE(parseDimacs("p cnf 1 2\n1 0\n-1 0\n", f, err));
  EXPECT_EQ(solveDimacs(f), Result::kUnsat);
}

TEST(Dimacs, ClauseLogExportsNetlistCnf) {
  // Export a c17 miter through the clause log, reparse, resolve: the
  // verdict must match solving in-process (UNSAT: identical copies).
  const Netlist c17 = makeC17();
  Solver s;
  s.enableClauseLog();
  const auto v1 = encodeNetlist(s, c17);
  std::vector<Var> pi;
  for (NetId n : c17.inputs()) pi.push_back(v1[n]);
  const auto v2 = encodeNetlist(s, c17, c17.inputs(), pi);
  std::vector<Var> diffs;
  for (NetId po : c17.outputs()) diffs.push_back(makeXor(s, v1[po], v2[po]));
  s.addClause(mkLit(makeOrReduce(s, diffs)));

  const std::string dimacs = writeDimacs(s.loggedClauses(), s.numVars());
  DimacsFormula f;
  std::string err;
  ASSERT_TRUE(parseDimacs(dimacs, f, err)) << err;
  EXPECT_EQ(solveDimacs(f), Result::kUnsat);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Dimacs, DifferentialRandomThreeSat) {
  // Property: write -> parse -> solve agrees with direct solving on
  // random instances.
  Rng rng(31337);
  for (int inst = 0; inst < 25; ++inst) {
    const int nVars = 10;
    std::vector<std::vector<Lit>> clauses;
    const int nClauses = 30 + static_cast<int>(rng.below(20));
    for (int c = 0; c < nClauses; ++c) {
      std::vector<Lit> cl;
      for (int k = 0; k < 3; ++k)
        cl.push_back(mkLit(static_cast<Var>(rng.below(nVars)), rng.flip()));
      clauses.push_back(cl);
    }
    Solver direct;
    for (int i = 0; i < nVars; ++i) direct.newVar();
    bool ok = true;
    for (auto& cl : clauses)
      if (!direct.addClause(cl)) ok = false;
    const Result want =
        ok ? direct.solve() : Result::kUnsat;

    DimacsFormula f;
    std::string err;
    ASSERT_TRUE(parseDimacs(writeDimacs(clauses, nVars), f, err));
    EXPECT_EQ(solveDimacs(f), want) << "instance " << inst;
  }
}

}  // namespace
}  // namespace gkll::sat
