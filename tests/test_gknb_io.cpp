#include "netlist/gknb_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "benchgen/synthetic_bench.h"
#include "netlist/netlist_ops.h"
#include "service/store.h"
#include "util/time_types.h"

namespace gkll {
namespace {

std::string serialize(const Netlist& nl) {
  std::ostringstream os;
  writeGknb(nl, os);
  return os.str();
}

GknbReadResult deserialize(const std::string& bytes) {
  std::istringstream is(bytes);
  return readGknb(is);
}

// A netlist exercising every serialised feature: constants, an ideal
// delay element with a nonzero delayPs, a LUT, per-net wire delays, a
// tombstone from removeGate, and a duplicated PO slot.
Netlist makeKitchenSink() {
  Netlist nl("sink");
  const NetId a = nl.addPI("a");
  const NetId b = nl.addPI("b");
  const NetId one = nl.constNet(true);
  const NetId n1 = nl.addNet("n1");
  nl.addGate(CellKind::kAnd2, {a, one}, n1);
  const NetId n2 = nl.addNet("n2");
  nl.addLut({a, b, n1}, n2, 0xCA);
  const NetId n3 = nl.addNet("n3");
  nl.addDelay(n2, n3, 275);
  const NetId dead = nl.addNet("dead");
  const GateId doomed = nl.addGate(CellKind::kInv, {b}, dead);
  nl.removeGate(doomed);
  nl.net(n3).wireDelay = 42;
  nl.net(n1).wireDelay = 7;
  nl.markPO(n3);
  nl.appendPO(n3);  // duplicate slot, deliberately
  nl.markPO(n2);
  return nl;
}

TEST(Gknb, RoundTripPreservesHashAndStructure) {
  for (const char* name : {"c17", "toyseq", "s1238", "gen:2000x80@3"}) {
    SCOPED_TRACE(name);
    const Netlist nl = generateByName(name);
    const GknbReadResult r = deserialize(serialize(nl));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.netlist.name(), nl.name());
    EXPECT_EQ(r.netlist.contentHash(), nl.contentHash());
    EXPECT_TRUE(structurallyEqual(r.netlist, nl));
    EXPECT_EQ(r.netlist.flops(), nl.flops());
  }
}

TEST(Gknb, RoundTripKitchenSink) {
  const Netlist nl = makeKitchenSink();
  const GknbReadResult r = deserialize(serialize(nl));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.netlist.contentHash(), nl.contentHash());
  EXPECT_TRUE(structurallyEqual(r.netlist, nl));
  // Tombstone slot preserved so GateIds stay aligned.
  EXPECT_EQ(r.netlist.numGates(), nl.numGates());
  // Duplicate PO slots preserved positionally.
  EXPECT_EQ(r.netlist.outputs(), nl.outputs());
  // Wire delays survive.
  const NetId n3 = *r.netlist.findNet("n3");
  EXPECT_EQ(r.netlist.net(n3).wireDelay, 42);
}

TEST(Gknb, ConstCacheRebindsAfterLoad) {
  Netlist nl("consts");
  const NetId a = nl.addPI("a");
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kAnd2, {a, nl.constNet(false)}, y);
  nl.markPO(y);

  GknbReadResult r = deserialize(serialize(nl));
  ASSERT_TRUE(r.ok) << r.error;
  // constNet() on the loaded netlist must reuse the deserialised
  // "_const0" net instead of trying to create a duplicate.
  const std::size_t nets = r.netlist.numNets();
  const NetId c0 = r.netlist.constNet(false);
  EXPECT_EQ(r.netlist.numNets(), nets);
  EXPECT_EQ(r.netlist.net(c0).name, "_const0");
}

TEST(Gknb, FileRoundTripAndMissingFile) {
  const Netlist nl = generateByName("toyseq");
  const std::string path = testing::TempDir() + "/gkll_toy.gknb";
  ASSERT_TRUE(writeGknbFile(nl, path));
  const GknbReadResult r = readGknbFile(path);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(structurallyEqual(r.netlist, nl));
  EXPECT_FALSE(readGknbFile("/nonexistent/dir/x.gknb").ok);
}

// --- untrusted-bytes hardening ----------------------------------------------
// Spill files live on disk between runs; every corruption must come back
// as a diagnostic, never an abort or a silently wrong netlist.

TEST(Gknb, BadMagicRejected) {
  std::string bytes = serialize(makeC17());
  bytes[0] = 'X';
  const GknbReadResult r = deserialize(bytes);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("magic"), std::string::npos) << r.error;
}

TEST(Gknb, BadVersionRejected) {
  std::string bytes = serialize(makeC17());
  bytes[4] = static_cast<char>(0x7f);  // version varint follows the magic
  const GknbReadResult r = deserialize(bytes);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("version"), std::string::npos) << r.error;
}

TEST(Gknb, HashTrailerMismatchRejected) {
  std::string bytes = serialize(makeC17());
  bytes[bytes.size() - 3] ^= 0x01;  // corrupt the content-hash trailer
  const GknbReadResult r = deserialize(bytes);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("hash"), std::string::npos) << r.error;
}

TEST(Gknb, TruncationAnywhereFailsCleanly) {
  const std::string bytes = serialize(generateByName("toyseq"));
  // Every proper prefix must fail without crashing.  Step through at a
  // coarse stride plus the tail byte-by-byte to keep the test fast.
  for (std::size_t cut = 0; cut < bytes.size();
       cut += (cut + 64 < bytes.size() ? 17 : 1)) {
    const GknbReadResult r = deserialize(bytes.substr(0, cut));
    EXPECT_FALSE(r.ok) << "prefix of " << cut << " bytes parsed";
  }
}

TEST(Gknb, FlippedPayloadByteNeverYieldsWrongNetlist) {
  const Netlist nl = makeC17();
  const std::string bytes = serialize(nl);
  int okEqual = 0;
  for (std::size_t i = 8; i < bytes.size(); i += 3) {
    std::string mut = bytes;
    mut[i] ^= 0x20;
    const GknbReadResult r = deserialize(mut);
    if (r.ok) {
      // The only acceptable "ok" is a flip the format genuinely cannot
      // see — and then the result must still hash-match the original.
      EXPECT_EQ(r.netlist.contentHash(), nl.contentHash());
      ++okEqual;
    }
  }
  EXPECT_EQ(okEqual, 0);  // every payload byte is load-bearing for c17
}

// --- store spill --------------------------------------------------------------

TEST(GknbStore, EvictionSpillsAndFindReloads) {
  using service::NetlistStore;
  const std::string dir = testing::TempDir();
  NetlistStore store(/*byteBudget=*/1);  // everything but the newest evicts
  store.setSpillDir(dir);

  const Netlist a = generateByName("c17");
  const std::string ha = store.insert(a).entry->handle;
  store.insert(generateByName("toyseq"));  // evicts a -> spill file

  auto st = store.stats();
  EXPECT_GE(st.spillWrites, 1u);
  EXPECT_EQ(st.entries, 1u);

  const auto reloaded = store.find(ha);
  ASSERT_TRUE(reloaded);
  EXPECT_TRUE(structurallyEqual(reloaded->netlist, a));
  EXPECT_EQ(reloaded->handle, ha);
  st = store.stats();
  EXPECT_GE(st.spillLoads, 1u);
}

TEST(GknbStore, SwappedSpillFileIsAMissNeverAWrongNetlist) {
  using service::NetlistStore;
  const std::string dir = testing::TempDir() + "/gkll_spill_swap";
  std::filesystem::create_directories(dir);
  NetlistStore store(/*byteBudget=*/1);
  store.setSpillDir(dir);

  const std::string ha = store.insert(generateByName("c17")).entry->handle;
  store.insert(generateByName("toyseq"));  // evicts c17

  // Overwrite c17's spill file with a different (self-consistent) design:
  // the file parses, but its hash cannot reproduce the handle.
  ASSERT_TRUE(writeGknbFile(generateByName("toyseq"), dir + "/" + ha + ".gknb"));
  EXPECT_EQ(store.find(ha), nullptr);
  EXPECT_EQ(store.stats().spillLoads, 0u);
}

TEST(GknbStore, NoSpillDirMeansEvictionForgets) {
  using service::NetlistStore;
  NetlistStore store(/*byteBudget=*/1);
  const std::string ha = store.insert(generateByName("c17")).entry->handle;
  store.insert(generateByName("toyseq"));
  EXPECT_EQ(store.find(ha), nullptr);
  const auto st = store.stats();
  EXPECT_EQ(st.spillWrites, 0u);
  EXPECT_EQ(st.spillLoads, 0u);
}

}  // namespace
}  // namespace gkll
