// End-to-end tests of the locking service: content-addressed store
// semantics (dedup, LRU, forced collisions), the determinism contract
// (warm repeats and concurrent clients return byte-identical responses,
// equal to direct library calls), warm-path latency, admission control
// and the journal trail.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "attack/oracle.h"
#include "attack/sat_attack.h"
#include "benchgen/synthetic_bench.h"
#include "lock/xor_lock.h"
#include "netlist/bench_io.h"
#include "netlist/logic.h"
#include "netlist/netlist_ops.h"
#include "obs/journal.h"
#include "service/service.h"
#include "service/store.h"
#include "util/json.h"

namespace gkll::service {
namespace {

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string field(const std::string& response, const char* key) {
  util::JsonValue v;
  if (!util::parseJson(response, v)) return {};
  return v.stringOr(key, "");
}

double numField(const std::string& response, const char* key) {
  util::JsonValue v;
  if (!util::parseJson(response, v)) return -1;
  return v.numberOr(key, -1);
}

std::string uploadReq(const std::string& benchText, const std::string& name) {
  JsonWriter w;
  w.i64("id", 1).str("verb", "upload").str("bench", benchText).str("name",
                                                                   name);
  return w.finish();
}

std::string generateReq(const std::string& name) {
  JsonWriter w;
  w.i64("id", 1).str("verb", "upload").str("generate", name);
  return w.finish();
}

// --- store -------------------------------------------------------------------

TEST(ServiceStore, InsertDedupsVerifiedEqualDesigns) {
  NetlistStore store;
  auto a = store.insert(generateByName("c17"));
  EXPECT_FALSE(a.existed);
  auto b = store.insert(generateByName("c17"));
  EXPECT_TRUE(b.existed);
  EXPECT_EQ(a.entry.get(), b.entry.get());  // same resident entry, warm kept
  const auto st = store.stats();
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.collisions, 0u);
}

TEST(ServiceStore, LruEvictionRespectsRecentUse) {
  const Netlist a = generateByName("c17");
  const Netlist b = generateByName("toyseq");
  const auto tinyParse = parseBench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t");
  ASSERT_TRUE(tinyParse.ok);
  const Netlist& c = tinyParse.netlist;
  ASSERT_LE(approxNetlistBytes(c), approxNetlistBytes(b));

  NetlistStore store(approxNetlistBytes(a) + approxNetlistBytes(b));
  const std::string ha = store.insert(a).entry->handle;
  const std::string hb = store.insert(b).entry->handle;
  ASSERT_TRUE(store.find(ha));  // bump a: b becomes least recently used
  const std::string hc = store.insert(c).entry->handle;

  EXPECT_EQ(store.find(hb), nullptr);  // evicted
  EXPECT_TRUE(store.find(ha));
  EXPECT_TRUE(store.find(hc));
  const auto st = store.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 2u);
}

TEST(ServiceStore, EvictionKeepsHolderAlive) {
  NetlistStore store(/*byteBudget=*/1);  // everything but the newest evicts
  auto first = store.insert(generateByName("c17"));
  const std::shared_ptr<StoreEntry> held = first.entry;
  store.insert(generateByName("toyseq"));
  EXPECT_EQ(store.find(held->handle), nullptr);
  // The detached entry is still fully usable by its holder.
  EXPECT_EQ(held->netlist.inputs().size(), 5u);
  EXPECT_GE(store.stats().evictions, 1u);
}

TEST(ServiceStore, ForcedCollisionFallsBackToSuffixedHandle) {
  NetlistStore store;
  store.setHashForTest([](const Netlist&) { return 0xdeadbeefu; });

  auto a = store.insert(generateByName("c17"));
  EXPECT_EQ(a.entry->handle, "0x00000000deadbeef");
  auto b = store.insert(generateByName("toyseq"));  // same hash, different
  EXPECT_EQ(b.entry->handle, "0x00000000deadbeef#1");
  EXPECT_EQ(store.stats().collisions, 1u);

  // Re-inserting either design still dedups onto its own slot — the probe
  // chain verifies structural equality, never the hash alone.
  EXPECT_TRUE(store.insert(generateByName("c17")).existed);
  auto b2 = store.insert(generateByName("toyseq"));
  EXPECT_TRUE(b2.existed);
  EXPECT_EQ(b2.entry.get(), b.entry.get());

  // Lookups resolve each coexisting design, not its collision partner.
  EXPECT_TRUE(structurallyEqual(store.find(a.entry->handle)->netlist,
                                generateByName("c17")));
  EXPECT_TRUE(structurallyEqual(store.find(b.entry->handle)->netlist,
                                generateByName("toyseq")));
}

// --- verbs: determinism contract ---------------------------------------------

TEST(ServiceVerbs, RepeatedUploadIsByteIdenticalAndDedups) {
  Service svc;
  const std::string req = uploadReq(writeBench(generateByName("s1238")),
                                    "s1238");
  const std::string cold = svc.handle(req);
  const std::string warm = svc.handle(req);
  EXPECT_EQ(cold, warm);
  EXPECT_NE(field(cold, "handle"), "");
  const auto st = svc.store().stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
}

TEST(ServiceVerbs, OracleMatchesDirectLibraryCall) {
  Service svc;
  const std::string handle =
      field(svc.handle(generateReq("toyseq")), "handle");
  ASSERT_NE(handle, "");

  // Direct library call on the same design: extraction + CombOracle.
  const CombExtraction ce = extractCombinational(generateByName("toyseq"));
  const std::size_t n = ce.netlist.inputs().size();
  std::string inputs;
  for (std::size_t i = 0; i < n; ++i) inputs += (i % 2) ? '1' : '0';
  std::vector<Logic> pattern;
  for (char ch : inputs) pattern.push_back(ch == '1' ? Logic::T : Logic::F);
  CombOracle direct(ce.netlist);
  std::string expectOut;
  for (Logic l : direct.query(pattern)) expectOut += logicChar(l);

  JsonWriter q;
  q.i64("id", 7).str("verb", "oracle_query").str("handle", handle).str(
      "inputs", inputs);
  JsonWriter expect;
  expect.i64("id", 7).str("verb", "oracle_query").boolean("ok", true).str(
      "outputs", expectOut);
  EXPECT_EQ(svc.handle(q.finish()), expect.finish());
}

TEST(ServiceVerbs, AttackMatchesDirectLibraryCallColdAndWarm) {
  Service svc;
  const std::string handle = field(svc.handle(generateReq("c17")), "handle");
  ASSERT_NE(handle, "");

  JsonWriter lw;
  lw.i64("id", 2).str("verb", "lock").str("handle", handle).str(
      "scheme", "xor").i64("key_bits", 4);
  const std::string lockReq = lw.finish();
  const std::string lockResp = svc.handle(lockReq);
  const std::string lockedHandle = field(lockResp, "locked_handle");
  ASSERT_NE(lockedHandle, "") << lockResp;
  // Lock dedupe: the repeat is answered from the recorded response.
  EXPECT_EQ(svc.handle(lockReq), lockResp);

  // Direct library flow with the service's resolved defaults (seed=1).
  const Netlist original = generateByName("c17");
  XorLockOptions xo;
  xo.numKeyBits = 4;
  xo.seed = 1;
  const LockedDesign design = xorLock(original, xo);
  const CombExtraction ce = extractCombinational(design.netlist);
  std::vector<NetId> keyInputs;
  for (NetId k : design.keyInputs) keyInputs.push_back(ce.netMap[k]);
  const Netlist oracleComb = extractCombinational(original).netlist;
  SatAttackOptions o;
  o.maxIterations = 1 << 20;
  const SatAttackResult r =
      satAttack(ce.netlist, keyInputs, oracleComb, o);
  std::string key;
  for (int b : r.recoveredKey) key += b ? '1' : '0';
  JsonWriter expect;
  expect.i64("id", 3)
      .str("verb", "attack")
      .boolean("ok", true)
      .str("mode", "sat")
      .boolean("converged", r.converged)
      .i64("dips", r.dips)
      .boolean("decrypted", r.decrypted)
      .boolean("unsat_at_first_iteration", r.unsatAtFirstIteration)
      .boolean("key_constraints_unsat", r.keyConstraintsUnsat)
      .boolean("budget_exhausted", r.budgetExhausted)
      .boolean("deadline_exceeded", r.deadlineExceeded)
      .boolean("canceled", r.canceled)
      .str("recovered_key", key);
  const std::string expected = expect.finish();

  JsonWriter aw;
  aw.i64("id", 3).str("verb", "attack").str("handle", lockedHandle).str(
      "mode", "sat");
  const std::string attackReq = aw.finish();
  const std::string cold = svc.handle(attackReq);  // builds surface + miter
  const std::string warm = svc.handle(attackReq);  // replays the clause log
  EXPECT_EQ(cold, expected);
  EXPECT_EQ(warm, expected);
  EXPECT_TRUE(cold.find("\"decrypted\":true") != std::string::npos) << cold;

  // The XOR baseline must fall to the SAT attack with the correct key.
  EXPECT_EQ(field(cold, "recovered_key"), field(lockResp, "correct_key"));
}

TEST(ServiceVerbs, WarmRepeatSkipsCompileObservably) {
  Service svc;
  const std::string handle = field(svc.handle(generateReq("toyseq")), "handle");
  std::shared_ptr<StoreEntry> entry = svc.store().find(handle);
  ASSERT_TRUE(entry);
  const std::size_t n =
      entry->netlist.inputs().size() + entry->netlist.flops().size();
  JsonWriter q;
  q.i64("id", 4).str("verb", "oracle_query").str("handle", handle).str(
      "inputs", std::string(n, '0'));
  const std::string req = q.finish();

  const std::string first = svc.handle(req);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(svc.handle(req), first);
  // One extraction, one oracle compile — every repeat leased the session.
  EXPECT_EQ(entry->warm.combBuilds(), 1u);
  EXPECT_EQ(entry->warm.oraclePool().builds(), 1u);
  EXPECT_EQ(entry->warm.oraclePool().reuses(), 3u);
}

TEST(ServiceVerbs, StaAndBatchAreDeterministic) {
  Service svc;
  const std::string handle = field(svc.handle(generateReq("toyseq")), "handle");
  std::shared_ptr<StoreEntry> entry = svc.store().find(handle);
  const std::size_t n =
      entry->netlist.inputs().size() + entry->netlist.flops().size();

  JsonWriter s;
  s.i64("id", 5).str("verb", "sta").str("handle", handle);
  const std::string staReq = s.finish();
  const std::string staResp = svc.handle(staReq);
  EXPECT_EQ(svc.handle(staReq), staResp);
  EXPECT_NE(staResp.find("\"min_clock_period_ps\""), std::string::npos);

  JsonWriter b;
  b.i64("id", 6).str("verb", "oracle_batch").str("handle", handle).raw(
      "queries", "[\"" + std::string(n, '0') + "\",\"" +
                     std::string(n, '1') + "\"]");
  const std::string batchReq = b.finish();
  const std::string batchResp = svc.handle(batchReq);
  EXPECT_EQ(svc.handle(batchReq), batchResp);
  util::JsonValue v;
  ASSERT_TRUE(util::parseJson(batchResp, v));
  const util::JsonValue* outs = v.find("outputs");
  ASSERT_TRUE(outs && outs->isArray());
  EXPECT_EQ(outs->array.size(), 2u);
}

TEST(ServiceVerbs, ConcurrentClientsGetByteIdenticalResponses) {
  ServiceOptions opt;
  opt.maxInflight = 8;  // the 1-core default would serialise everything
  Service svc(opt);
  const std::string hComb = field(svc.handle(generateReq("c17")), "handle");
  const std::string hSeq = field(svc.handle(generateReq("toyseq")), "handle");
  ASSERT_NE(hComb, "");
  ASSERT_NE(hSeq, "");
  std::shared_ptr<StoreEntry> seq = svc.store().find(hSeq);
  const std::size_t nSeq =
      seq->netlist.inputs().size() + seq->netlist.flops().size();

  // Request mix; the serial (cold) response is the expected byte string.
  std::vector<std::string> reqs;
  for (int p = 0; p < 2; ++p) {
    std::string in(5, p ? '1' : '0');
    JsonWriter w;
    w.i64("id", 10 + p).str("verb", "oracle_query").str("handle", hComb).str(
        "inputs", in);
    reqs.push_back(w.finish());
  }
  {
    JsonWriter w;
    w.i64("id", 12).str("verb", "oracle_query").str("handle", hSeq).str(
        "inputs", std::string(nSeq, '1'));
    reqs.push_back(w.finish());
    JsonWriter w2;
    w2.i64("id", 13).str("verb", "sta").str("handle", hSeq);
    reqs.push_back(w2.finish());
  }
  std::vector<std::string> expected;
  for (const std::string& r : reqs) expected.push_back(svc.handle(r));

  constexpr int kThreads = 6;
  constexpr int kIters = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t r = (t + i) % reqs.size();
        if (svc.handle(reqs[r]) != expected[r])
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServiceVerbs, WarmOracleLatencyBeatsColdByFiveX) {
  Service svc;
  const std::string handle =
      field(svc.handle(generateReq("s13207")), "handle");
  std::shared_ptr<StoreEntry> entry = svc.store().find(handle);
  ASSERT_TRUE(entry);
  const std::size_t n =
      entry->netlist.inputs().size() + entry->netlist.flops().size();
  JsonWriter q;
  q.i64("id", 8).str("verb", "oracle_query").str("handle", handle).str(
      "inputs", std::string(n, '0'));
  const std::string req = q.finish();

  const double c0 = nowUs();
  const std::string cold = svc.handle(req);  // pays extraction + compile
  const double coldUs = nowUs() - c0;
  ASSERT_NE(field(cold, "outputs"), "") << cold;

  double warmMinUs = coldUs;
  for (int i = 0; i < 50; ++i) {
    const double t0 = nowUs();
    EXPECT_EQ(svc.handle(req), cold);
    warmMinUs = std::min(warmMinUs, nowUs() - t0);
  }
  EXPECT_GE(coldUs, 5.0 * warmMinUs)
      << "cold " << coldUs << "us vs warm-min " << warmMinUs << "us";
}

// --- errors & admission ------------------------------------------------------

TEST(ServiceAdmission, MalformedAndUnknownRequests) {
  Service svc;
  EXPECT_EQ(field(svc.handle("this is not json"), "error"), "bad_request");
  EXPECT_EQ(field(svc.handle("[1,2,3]"), "error"), "bad_request");
  EXPECT_EQ(field(svc.handle(R"({"id":1,"verb":"frobnicate"})"), "error"),
            "unknown_verb");
  EXPECT_EQ(field(svc.handle(R"({"id":1,"verb":"sta","handle":"0x0"})"),
                  "error"),
            "unknown_handle");
  EXPECT_EQ(field(svc.handle(R"({"id":1,"verb":"attack","handle":"nope"})"),
                  "error"),
            "unknown_handle");
  const std::string parse = svc.handle(
      R"({"id":1,"verb":"upload","bench":"INPUT(a)\ny = FROB(a)\n"})");
  EXPECT_EQ(field(parse, "error"), "parse_error");
  EXPECT_EQ(numField(parse, "line"), 2);
  EXPECT_EQ(field(svc.handle(R"({"id":1,"verb":"upload","generate":"c999"})"),
                  "error"),
            "unknown_bench");
}

TEST(ServiceAdmission, ExpiredDeadlineRejectsBeforeWork) {
  Service svc;
  const std::string resp =
      svc.handle(R"({"id":3,"verb":"ping","deadline_ms":0.000001})");
  EXPECT_EQ(field(resp, "error"), "deadline");
}

TEST(ServiceAdmission, BusyBackpressureWhenQueueFull) {
  ServiceOptions opt;
  opt.maxInflight = 1;
  opt.maxQueue = 0;
  Service svc(opt);

  std::string slowResp;
  std::thread slow(
      [&] { slowResp = svc.handle(R"({"id":1,"verb":"ping","sleep_ms":500})"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const std::string busy = svc.handle(R"({"id":2,"verb":"ping"})");
  EXPECT_EQ(field(busy, "error"), "busy");
  slow.join();
  EXPECT_EQ(slowResp, R"({"id":1,"verb":"ping","ok":true})");

  const std::string stats = svc.handle(R"({"id":3,"verb":"stats"})");
  EXPECT_GE(numField(stats, "rejected_busy"), 1);
}

TEST(ServiceAdmission, DrainFinishesInflightAndRejectsNew) {
  ServiceOptions opt;
  opt.maxInflight = 4;
  Service svc(opt);

  std::string slowResp;
  std::thread slow(
      [&] { slowResp = svc.handle(R"({"id":1,"verb":"ping","sleep_ms":400})"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  svc.beginDrain();
  EXPECT_EQ(field(svc.handle(R"({"id":2,"verb":"ping"})"), "error"),
            "shutting_down");
  slow.join();
  EXPECT_EQ(slowResp, R"({"id":1,"verb":"ping","ok":true})");
  svc.waitIdle();  // must return promptly once the slow ping finished
}

TEST(ServiceAdmission, CancelAllWakesSleepingRequests) {
  ServiceOptions opt;
  opt.maxInflight = 4;
  Service svc(opt);

  std::string resp;
  std::thread sleeper(
      [&] { resp = svc.handle(R"({"id":1,"verb":"ping","sleep_ms":30000})"); });
  // Wait until the sleeper holds a slot (stats itself holds the second).
  for (int i = 0; i < 200; ++i) {
    if (numField(svc.handle(R"({"id":9,"verb":"stats"})"), "inflight") >= 2)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double t0 = nowUs();
  svc.cancelAll();
  sleeper.join();
  EXPECT_LT(nowUs() - t0, 5e6) << "cancel did not interrupt the sleep";
  EXPECT_NE(resp.find("\"canceled\":true"), std::string::npos) << resp;
}

// --- journal -----------------------------------------------------------------

TEST(ServiceJournal, EveryRequestLeavesARecord) {
  const std::string path = testing::TempDir() + "/gkll_service_journal.jsonl";
  ASSERT_TRUE(obs::RunJournal::global().open(path, "test_service"));
  {
    Service svc;
    const std::string req = uploadReq(writeBench(generateByName("c17")),
                                      "c17");
    svc.handle(req);
    svc.handle(req);  // dedup hit
    svc.handle(R"({"id":3,"verb":"frobnicate"})");
  }
  obs::RunJournal::global().close();

  obs::JournalReader reader;
  ASSERT_TRUE(reader.read(path)) << reader.error();
  EXPECT_EQ(reader.tool(), "test_service");
  EXPECT_FALSE(reader.truncatedTail());

  std::vector<const obs::JournalRecord*> reqs;
  for (const obs::JournalRecord& r : reader.records())
    if (r.type == "service.request") reqs.push_back(&r);
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[0]->json.stringOr("verb", ""), "upload");
  EXPECT_EQ(reqs[0]->json.stringOr("cache", ""), "miss");
  EXPECT_EQ(reqs[0]->json.stringOr("outcome", ""), "ok");
  EXPECT_EQ(reqs[1]->json.stringOr("cache", ""), "hit");  // skip observable
  EXPECT_EQ(reqs[1]->json.stringOr("handle", ""),
            reqs[0]->json.stringOr("handle", "-"));
  EXPECT_EQ(reqs[2]->json.stringOr("outcome", ""), "unknown_verb");
  EXPECT_GE(reqs[0]->json.numberOr("latency_ms", -1), 0.0);
}

}  // namespace
}  // namespace gkll::service
