#include "sat/cnf.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace gkll::sat {
namespace {

/// Property scaffold: for every cell kind, the Tseitin clauses must agree
/// with evalCell on all complete input assignments.
class GateEncodingTest : public testing::TestWithParam<CellKind> {};

TEST_P(GateEncodingTest, MatchesEvalCellExhaustively) {
  const CellKind kind = GetParam();
  const int n = cellNumInputs(kind);
  ASSERT_GT(n, 0);
  for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
    for (int outVal = 0; outVal < 2; ++outVal) {
      Solver s;
      std::vector<Var> ins;
      std::vector<Logic> vals;
      for (int i = 0; i < n; ++i) {
        ins.push_back(s.newVar());
        vals.push_back(logicFromBool((m >> i) & 1));
      }
      const Var out = s.newVar();
      addGateClauses(s, kind, ins, out);
      std::vector<Lit> assumps;
      for (int i = 0; i < n; ++i)
        assumps.push_back(mkLit(ins[static_cast<std::size_t>(i)], !((m >> i) & 1)));
      assumps.push_back(mkLit(out, outVal == 0));
      const Logic expect = evalCell(kind, vals);
      const bool shouldBeSat = (expect == Logic::T) == (outVal == 1);
      EXPECT_EQ(s.solve(assumps) == Result::kSat, shouldBeSat)
          << cellKindName(kind) << " m=" << m << " out=" << outVal;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGateKinds, GateEncodingTest,
    testing::Values(CellKind::kBuf, CellKind::kInv, CellKind::kAnd2,
                    CellKind::kAnd3, CellKind::kAnd4, CellKind::kNand2,
                    CellKind::kNand3, CellKind::kNand4, CellKind::kOr2,
                    CellKind::kOr3, CellKind::kOr4, CellKind::kNor2,
                    CellKind::kNor3, CellKind::kNor4, CellKind::kXor2,
                    CellKind::kXnor2, CellKind::kMux2, CellKind::kAoi21,
                    CellKind::kOai21, CellKind::kDelay),
    [](const testing::TestParamInfo<CellKind>& info) {
      return cellKindName(info.param);
    });

TEST(CnfEncode, LutClausesMatchMask) {
  // Majority-of-3 LUT.
  const std::uint64_t maj = 0xE8;
  for (std::uint64_t m = 0; m < 8; ++m) {
    Solver s;
    std::vector<Var> ins{s.newVar(), s.newVar(), s.newVar()};
    const Var out = s.newVar();
    addGateClauses(s, CellKind::kLut, ins, out, maj);
    std::vector<Lit> assumps;
    for (int i = 0; i < 3; ++i)
      assumps.push_back(mkLit(ins[static_cast<std::size_t>(i)], !((m >> i) & 1)));
    ASSERT_EQ(s.solve(assumps), Result::kSat);
    EXPECT_EQ(s.modelValue(out), ((maj >> m) & 1) != 0) << m;
  }
}

TEST(CnfEncode, ConstantsForceValues) {
  Solver s;
  const Var z = s.newVar();
  const Var o = s.newVar();
  addGateClauses(s, CellKind::kConst0, {}, z);
  addGateClauses(s, CellKind::kConst1, {}, o);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.modelValue(z));
  EXPECT_TRUE(s.modelValue(o));
}

TEST(CnfEncode, NetlistModelMatchesSimulator) {
  // Property: for random input vectors, pinning the CNF inputs yields
  // exactly the simulator's outputs (on c17 and the toy counter's comb
  // core via its gates' steady-state function).
  const Netlist c17 = makeC17();
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Logic> in;
    for (std::size_t i = 0; i < c17.inputs().size(); ++i)
      in.push_back(logicFromBool(rng.flip()));
    const auto nets = evalCombinational(c17, in);

    Solver s;
    const std::vector<Var> vars = encodeNetlist(s, c17);
    std::vector<Lit> assumps;
    for (std::size_t i = 0; i < c17.inputs().size(); ++i)
      assumps.push_back(mkLit(vars[c17.inputs()[i]], in[i] != Logic::T));
    ASSERT_EQ(s.solve(assumps), Result::kSat);
    for (NetId po : c17.outputs())
      EXPECT_EQ(s.modelValue(vars[po]), nets[po] == Logic::T);
  }
}

TEST(CnfEncode, BoundVariablesAreShared) {
  const Netlist c17 = makeC17();
  Solver s;
  const std::vector<Var> a = encodeNetlist(s, c17);
  std::vector<Var> piVars;
  for (NetId pi : c17.inputs()) piVars.push_back(a[pi]);
  const std::vector<Var> b = encodeNetlist(s, c17, c17.inputs(), piVars);
  // Same circuit, same inputs -> outputs must match; asserting a
  // difference is UNSAT.
  std::vector<Var> diffs;
  for (NetId po : c17.outputs()) diffs.push_back(makeXor(s, a[po], b[po]));
  s.addClause(mkLit(makeOrReduce(s, diffs)));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(CnfHelpers, MakeAndOrXor) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  const Var land = makeAnd(s, a, b);
  const Var lor = makeOr(s, a, b);
  const Var lxor = makeXor(s, a, b);
  for (int m = 0; m < 4; ++m) {
    const std::vector<Lit> assumps{mkLit(a, !(m & 1)), mkLit(b, !((m >> 1) & 1))};
    ASSERT_EQ(s.solve(assumps), Result::kSat);
    EXPECT_EQ(s.modelValue(land), (m & 1) && ((m >> 1) & 1));
    EXPECT_EQ(s.modelValue(lor), (m & 1) || ((m >> 1) & 1));
    EXPECT_EQ(s.modelValue(lxor), ((m & 1) ^ ((m >> 1) & 1)) != 0);
  }
}

TEST(CnfHelpers, OrReduceEmptyIsFalse) {
  Solver s;
  const Var o = makeOrReduce(s, {});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.modelValue(o));
}

TEST(Equivalence, IdenticalCircuits) {
  const Netlist c17 = makeC17();
  EXPECT_TRUE(checkEquivalence(c17, c17).equivalent);
}

TEST(Equivalence, DifferentCircuitsGiveCounterexample) {
  const Netlist a = makeC17();
  Netlist b = makeC17();
  // Flip one gate: NAND -> AND on the first output.
  const NetId g22 = *b.findNet("G22");
  const GateId drv = b.net(g22).driver;
  const auto fanin = b.gate(drv).fanin;
  b.removeGate(drv);
  b.addGate(CellKind::kAnd2, fanin, g22);
  const EquivResult r = checkEquivalence(a, b);
  ASSERT_FALSE(r.equivalent);
  ASSERT_EQ(r.counterexample.size(), a.inputs().size());
  // The counterexample must actually distinguish the two circuits.
  const auto oa = outputValues(a, evalCombinational(a, r.counterexample));
  const auto ob = outputValues(b, evalCombinational(b, r.counterexample));
  EXPECT_NE(oa, ob);
}

TEST(Equivalence, StructurallyDifferentButFunctionallyEqual) {
  // y = a via double inversion vs direct buffer.
  Netlist a("a");
  const NetId ai = a.addPI("x");
  const NetId an = a.addNet("n");
  a.addGate(CellKind::kInv, {ai}, an);
  const NetId ay = a.addNet("y");
  a.addGate(CellKind::kInv, {an}, ay);
  a.markPO(ay);

  Netlist b("b");
  const NetId bi = b.addPI("x");
  const NetId by = b.addNet("y");
  b.addGate(CellKind::kBuf, {bi}, by);
  b.markPO(by);

  EXPECT_TRUE(checkEquivalence(a, b).equivalent);
}

}  // namespace
}  // namespace gkll::sat
