#include "sim/logic_sim.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"

namespace gkll {
namespace {

TEST(EvalCombinational, C17KnownVectors) {
  const Netlist c17 = makeC17();
  // c17: G22 = NAND(G10, G16), G23 = NAND(G16, G19)
  //   G10 = NAND(G1,G3)  G11 = NAND(G3,G6)  G16 = NAND(G2,G11)
  //   G19 = NAND(G11,G7)
  auto run = [&](int g1, int g2, int g3, int g6, int g7) {
    const std::vector<Logic> in{logicFromBool(g1), logicFromBool(g2),
                                logicFromBool(g3), logicFromBool(g6),
                                logicFromBool(g7)};
    return outputValues(c17, evalCombinational(c17, in));
  };
  // All-zero input: G10=1, G11=1, G16=1, G19=1 -> G22=0? NAND(1,1)=0.
  auto out = run(0, 0, 0, 0, 0);
  EXPECT_EQ(out[0], Logic::F);
  EXPECT_EQ(out[1], Logic::F);
  // Exhaustive self-consistency against a direct model.
  for (int m = 0; m < 32; ++m) {
    const int g1 = m & 1, g2 = (m >> 1) & 1, g3 = (m >> 2) & 1,
              g6 = (m >> 3) & 1, g7 = (m >> 4) & 1;
    const int g10 = !(g1 && g3), g11 = !(g3 && g6), g16 = !(g2 && g11),
              g19 = !(g11 && g7);
    const int g22 = !(g10 && g16), g23 = !(g16 && g19);
    out = run(g1, g2, g3, g6, g7);
    EXPECT_EQ(out[0], logicFromBool(g22)) << m;
    EXPECT_EQ(out[1], logicFromBool(g23)) << m;
  }
}

TEST(EvalCombinational, MissingInputsAreX) {
  const Netlist c17 = makeC17();
  const auto nets = evalCombinational(c17, {});
  for (NetId po : c17.outputs()) EXPECT_EQ(nets[po], Logic::X);
}

TEST(EvalCombinational, SequentialNetlistGivesXStates) {
  const Netlist toy = makeToySeq();
  const auto nets =
      evalCombinational(toy, std::vector<Logic>(toy.inputs().size(), Logic::T));
  // Flop outputs are unknown in a purely combinational evaluation.
  for (GateId f : toy.flops()) EXPECT_EQ(nets[toy.gate(f).out], Logic::X);
}

TEST(SequentialSim, CounterCountsWithEnable) {
  const Netlist toy = makeToySeq();
  SequentialSim sim(toy);
  sim.reset();
  // With en=1 the 4-bit state increments each cycle.
  int expected = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    sim.step({Logic::T});
    expected = (expected + 1) & 0xF;
    int got = 0;
    for (int b = 0; b < 4; ++b)
      if (sim.state()[static_cast<std::size_t>(b)] == Logic::T) got |= 1 << b;
    EXPECT_EQ(got, expected) << "cycle " << cycle;
  }
}

TEST(SequentialSim, EnableFreezesState) {
  const Netlist toy = makeToySeq();
  SequentialSim sim(toy);
  sim.reset();
  sim.step({Logic::T});
  const auto snapshot = sim.state();
  for (int i = 0; i < 5; ++i) sim.step({Logic::F});
  EXPECT_EQ(sim.state(), snapshot);
}

TEST(SequentialSim, OutputsAreMealySampledPreEdge) {
  const Netlist toy = makeToySeq();
  SequentialSim sim(toy);
  sim.reset();
  // PO[1] mirrors q0 of the *current* state (before the edge): first step
  // sees q0 = 0.
  const auto out = sim.step({Logic::T});
  EXPECT_EQ(out[1], Logic::F);
  const auto out2 = sim.step({Logic::T});
  EXPECT_EQ(out2[1], Logic::T);  // q0 toggled at the previous edge
}

TEST(SequentialSim, SetStateRoundTrips) {
  const Netlist toy = makeToySeq();
  SequentialSim sim(toy);
  const std::vector<Logic> s{Logic::T, Logic::F, Logic::T, Logic::T};
  sim.setState(s);
  EXPECT_EQ(sim.state(), s);
}

TEST(SequentialSim, XStateStaysUntilReset) {
  const Netlist toy = makeToySeq();
  SequentialSim sim(toy);
  // Default-constructed state is X; stepping with en=1 XORs X in.
  const auto out = sim.step({Logic::T});
  (void)out;
  EXPECT_EQ(sim.state()[0], Logic::X);
  sim.reset();
  EXPECT_EQ(sim.state()[0], Logic::F);
}

TEST(SequentialSim, DeterministicOnBenchmarks) {
  const Netlist nl = generateByName("s1238");
  SequentialSim a(nl), b(nl);
  a.reset();
  b.reset();
  const std::vector<Logic> in(nl.inputs().size(), Logic::T);
  for (int i = 0; i < 10; ++i) {
    const auto oa = a.step(in);
    const auto ob = b.step(in);
    EXPECT_EQ(oa, ob);
  }
  EXPECT_EQ(a.state(), b.state());
}

}  // namespace
}  // namespace gkll
