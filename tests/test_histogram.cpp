// Tests for the mergeable log-linear histogram (src/obs/histogram.h):
// bucket geometry invariants, quantile accuracy against an exact sort,
// snapshot merging, and the lock-free concurrent record/snapshot contract
// (the test TSan leans on).
#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace gkll {
namespace {

using obs::LogHistogram;

TEST(LogHistogram, BucketGeometryIsExhaustive) {
  // Every bucket: non-empty inclusive range, both endpoints map back to
  // the bucket, and consecutive buckets tile the integers with no gap.
  for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
    const std::uint64_t lo = LogHistogram::bucketLo(i);
    const std::uint64_t hi = LogHistogram::bucketHi(i);
    ASSERT_LE(lo, hi) << "bucket " << i;
    ASSERT_EQ(LogHistogram::bucketOf(lo), i);
    ASSERT_EQ(LogHistogram::bucketOf(hi), i);
    if (i + 1 < LogHistogram::kNumBuckets) {
      ASSERT_EQ(LogHistogram::bucketLo(i + 1), hi + 1) << "bucket " << i;
    }
    const double mid = LogHistogram::bucketMid(i);
    ASSERT_GE(mid, static_cast<double>(lo));
    ASSERT_LE(mid, static_cast<double>(hi));
  }
}

TEST(LogHistogram, UnitBucketsAreExact) {
  for (std::uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
    const int idx = LogHistogram::bucketOf(v);
    EXPECT_EQ(LogHistogram::bucketLo(idx), v);
    EXPECT_EQ(LogHistogram::bucketHi(idx), v);
    EXPECT_DOUBLE_EQ(LogHistogram::bucketMid(idx), static_cast<double>(v));
  }
}

TEST(LogHistogram, RelativeBucketWidthIsBounded) {
  // Above the unit range each octave has 32 sub-buckets, so the width of
  // any bucket is at most lo/32 (the documented <=1/32 relative error).
  Rng rng(5);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t v = static_cast<std::uint64_t>(
        rng.range(LogHistogram::kSubBuckets, 1'000'000'000));
    const int idx = LogHistogram::bucketOf(v);
    const double lo = static_cast<double>(LogHistogram::bucketLo(idx));
    const double hi = static_cast<double>(LogHistogram::bucketHi(idx));
    EXPECT_LE((hi - lo + 1.0) / lo, 1.0 / 32.0 + 1e-12) << "value " << v;
  }
}

TEST(LogHistogram, BasicStatsAndClamping) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty: quantile is 0

  h.record(10.0);
  h.record(20.0);
  h.record(-5.0);  // negatives clamp to 0
  const LogHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 20u);
  EXPECT_DOUBLE_EQ(s.mean(), 10.0);
}

TEST(LogHistogram, QuantileMatchesExactSortWithinBucketError) {
  Rng rng(7);
  LogHistogram h;
  std::vector<std::uint64_t> exact;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(rng.range(0, 500000));
    h.record(static_cast<double>(v));
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());

  double prev = -1.0;
  for (const double p : {0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    const double got = h.quantile(p);
    EXPECT_GE(got, prev) << "p=" << p;  // monotone in p
    prev = got;
    const double want = static_cast<double>(
        exact[std::min(exact.size() - 1,
                       static_cast<std::size_t>(
                           p * static_cast<double>(exact.size())))]);
    // Bucket midpoint: half a bucket of error, i.e. <= 1/64 relative,
    // plus sampling granularity near the extremes.
    EXPECT_NEAR(got, want, want / 16.0 + 2.0) << "p=" << p;
    EXPECT_GE(got, static_cast<double>(exact.front()));
    EXPECT_LE(got, static_cast<double>(exact.back()));
  }
}

TEST(LogHistogram, SnapshotAddEqualsCombinedStream) {
  Rng rng(11);
  LogHistogram a, b, both;
  for (int i = 0; i < 4000; ++i) {
    const double v = static_cast<double>(rng.range(1, 100000));
    (i % 2 == 0 ? a : b).record(v);
    both.record(v);
  }
  LogHistogram::Snapshot sum = a.snapshot();
  sum.add(b.snapshot());
  const LogHistogram::Snapshot ref = both.snapshot();
  EXPECT_EQ(sum.count, ref.count);
  EXPECT_EQ(sum.min, ref.min);
  EXPECT_EQ(sum.max, ref.max);
  EXPECT_DOUBLE_EQ(sum.sum, ref.sum);
  ASSERT_EQ(sum.buckets.size(), ref.buckets.size());
  EXPECT_EQ(sum.buckets, ref.buckets);
  for (const double p : {0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(sum.quantile(p), ref.quantile(p));
}

TEST(LogHistogram, MergeFoldsASnapshotBackIn) {
  LogHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record(10.0);
  for (int i = 0; i < 100; ++i) b.record(1000.0);
  a.merge(b.snapshot());  // the cross-process aggregation seam
  EXPECT_EQ(a.count(), 200u);
  const LogHistogram::Snapshot s = a.snapshot();
  EXPECT_EQ(s.min, 10u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_LT(a.quantile(0.25), 100.0);
  EXPECT_GT(a.quantile(0.75), 900.0);
}

TEST(LogHistogram, CdfIsMonotoneEndsAtOneAndDownsamples) {
  Rng rng(13);
  LogHistogram h;
  for (int i = 0; i < 10000; ++i)
    h.record(static_cast<double>(rng.range(1, 1'000'000)));
  const auto cdf = h.snapshot().cdf(16);
  ASSERT_FALSE(cdf.empty());
  EXPECT_LE(cdf.size(), 16u);
  double prevX = -1.0, prevF = -1.0;
  for (const auto& [x, f] : cdf) {
    EXPECT_GT(x, prevX);
    EXPECT_GE(f, prevF);
    prevX = x;
    prevF = f;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(LogHistogram, ResetInPlaceZeroesAndStaysUsable) {
  LogHistogram h;
  for (int i = 0; i < 50; ++i) h.record(5.0);
  h.resetInPlace();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.record(7.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.snapshot().min, 7u);
}

TEST(LogHistogram, ConcurrentRecordSnapshotAndMerge) {
  // The lock-free contract under TSan: recorders on pinned and unpinned
  // shards race against snapshot() and merge() readers; after the join the
  // total must be exact (no lost updates).
  LogHistogram h;
  LogHistogram other;
  for (int i = 0; i < 64; ++i) other.record(3.0);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const LogHistogram::Snapshot s = h.snapshot();
      EXPECT_GE(s.count, last);  // counts only grow while recording
      last = s.count;
      if (s.count > 0) s.quantile(0.5);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      if (t % 2 == 0) obs::registerThreadShard(t);  // half pinned
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<double>(rng.range(1, 10000)));
    });
  }
  h.merge(other.snapshot());  // merge races with record(): allowed
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread + 64);
}

}  // namespace
}  // namespace gkll
