#include "flow/ff_select.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "benchgen/synthetic_bench.h"
#include "flow/placement.h"
#include "lock/glitch_keygate.h"
#include "netlist/netlist_ops.h"
#include "runtime/pool.h"

namespace gkll {
namespace {

struct Analysis {
  Netlist nl;
  PlacementResult pr;
  Ps tclk = 0;
  std::vector<FfCandidate> cands;
};

Analysis analyze(const std::string& name, Ps glitchLen = ns(1)) {
  Analysis a{generateByName(name), {}, 0, {}};
  a.pr = placeAndRoute(a.nl, PlacementOptions{});
  const CellLibrary& lib = CellLibrary::tsmc013c();
  StaConfig cfg;
  cfg.inputArrival = lib.clkToQ();
  Sta probe(a.nl, cfg);
  for (std::size_t i = 0; i < a.nl.flops().size(); ++i)
    probe.setClockArrival(a.nl.flops()[i], a.pr.clockArrival[i]);
  cfg.clockPeriod = a.tclk = probe.minClockPeriod(100);
  Sta sta(a.nl, cfg);
  for (std::size_t i = 0; i < a.nl.flops().size(); ++i)
    sta.setClockArrival(a.nl.flops()[i], a.pr.clockArrival[i]);
  GkParams p;
  p.gkDelayA = glitchLen - lib.maxDelay(CellKind::kXnor2);
  p.gkDelayB = glitchLen - lib.maxDelay(CellKind::kXor2);
  a.cands = analyzeFlops(a.nl, sta, gkTiming(p), FfSelectOptions{glitchLen, 150});
  return a;
}

TEST(AnalyzeFlops, OneRecordPerFlop) {
  const Analysis a = analyze("s1238");
  EXPECT_EQ(a.cands.size(), a.nl.flops().size());
  for (std::size_t i = 0; i < a.cands.size(); ++i)
    EXPECT_EQ(a.cands[i].ff, a.nl.flops()[i]);
}

TEST(AnalyzeFlops, AvailableImpliesValidWindows) {
  const Analysis a = analyze("s5378");
  for (const FfCandidate& c : a.cands) {
    if (!c.available) continue;
    EXPECT_TRUE(c.onGlitch.valid());
    EXPECT_LT(c.tArrival, c.absUB);
    EXPECT_GT(c.onGlitch.lo, 0);
    // The window must leave room for the KEYGEN's earliest trigger.
    EXPECT_GE(c.onGlitch.lo, keygenEarliestTrigger());
  }
}

TEST(AnalyzeFlops, DeepFlopsUnavailable) {
  const Analysis a = analyze("s5378");
  // The flop with the latest-arriving data must not be available (it sits
  // on the critical path by construction of the clock period).
  const auto worst = std::max_element(
      a.cands.begin(), a.cands.end(),
      [](const FfCandidate& x, const FfCandidate& y) {
        return x.tArrival < y.tArrival;
      });
  EXPECT_FALSE(worst->available);
}

TEST(AnalyzeFlops, CoverageMatchesPaperShape) {
  // Spot-check two calibrated circuits (exact values are pinned by seeds).
  const Analysis s1238 = analyze("s1238");
  EXPECT_EQ(countAvailable(s1238.cands), 16u);  // paper: 16 (88.89%)
  const Analysis s15850 = analyze("s15850");
  const double cov = 100.0 * static_cast<double>(countAvailable(s15850.cands)) /
                     static_cast<double>(s15850.nl.flops().size());
  EXPECT_NEAR(cov, 43.28, 8.0);  // paper: 43.28%
}

TEST(AnalyzeFlops, LongerGlitchShrinksAvailability) {
  const Analysis l1 = analyze("s9234", ns(1));
  const Analysis l3 = analyze("s9234", ns(3));
  EXPECT_LE(countAvailable(l3.cands), countAvailable(l1.cands));
}

TEST(AnalyzeFlops, ImpossibleGlitchMeansNoneAvailable) {
  // A glitch shorter than setup+hold can never carry data (Eq. 2).
  const CellLibrary& lib = CellLibrary::tsmc013c();
  const Ps tooShort = lib.setupTime() + lib.holdTime() - 10;
  Analysis a{generateByName("s1238"), {}, 0, {}};
  a.pr = placeAndRoute(a.nl, PlacementOptions{});
  StaConfig cfg;
  cfg.inputArrival = lib.clkToQ();
  cfg.clockPeriod = ns(10);
  Sta sta(a.nl, cfg);
  GkParams p;
  p.gkDelayA = p.gkDelayB = 1;  // dPath ~ gate delay only: ~90 ps glitch
  const auto cands =
      analyzeFlops(a.nl, sta, gkTiming(p), FfSelectOptions{tooShort, 0});
  EXPECT_EQ(countAvailable(cands), 0u);
}

bool sameCandidate(const FfCandidate& a, const FfCandidate& b) {
  return a.ff == b.ff && a.tArrival == b.tArrival && a.absLB == b.absLB &&
         a.absUB == b.absUB && a.tCapture == b.tCapture &&
         a.onGlitch.lo == b.onGlitch.lo && a.onGlitch.hi == b.onGlitch.hi &&
         a.offGlitch.lo == b.offGlitch.lo &&
         a.offGlitch.hi == b.offGlitch.hi && a.available == b.available;
}

// The pooled overload must reproduce the serial loop record-for-record,
// whatever the pool shape — and the precomputed-StaResult path must equal
// the run-it-yourself convenience wrapper.
TEST(AnalyzeFlops, ParallelPoolMatchesSerial) {
  const std::string name = "s5378";
  Analysis a{generateByName(name), {}, 0, {}};
  a.pr = placeAndRoute(a.nl, PlacementOptions{});
  const CellLibrary& lib = CellLibrary::tsmc013c();
  StaConfig cfg;
  cfg.inputArrival = lib.clkToQ();
  cfg.clockPeriod = ns(6);
  Sta sta(a.nl, cfg);
  for (std::size_t i = 0; i < a.nl.flops().size(); ++i)
    sta.setClockArrival(a.nl.flops()[i], a.pr.clockArrival[i]);
  GkParams p;
  p.gkDelayA = ns(1) - lib.maxDelay(CellKind::kXnor2);
  p.gkDelayB = ns(1) - lib.maxDelay(CellKind::kXor2);
  const GkTiming gk = gkTiming(p);
  const FfSelectOptions opt{ns(1), 150};

  const StaResult timing = sta.run();
  const auto serial = analyzeFlops(a.nl, sta, timing, gk, opt, nullptr);
  // The precomputed-timing serial path IS the legacy wrapper.
  const auto legacy = analyzeFlops(a.nl, sta, gk, opt);
  ASSERT_EQ(serial.size(), legacy.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_TRUE(sameCandidate(serial[i], legacy[i])) << "flop " << i;

  runtime::ThreadPool one(1), four(4);
  for (runtime::ThreadPool* pool : {&one, &four}) {
    const auto par = analyzeFlops(a.nl, sta, timing, gk, opt, pool);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < par.size(); ++i)
      EXPECT_TRUE(sameCandidate(par[i], serial[i])) << "flop " << i;
  }
}

TEST(KarmakarGroup, MembersShareSignatureAndAreAvailable) {
  const Analysis a = analyze("s5378");
  const auto group = karmakarGroup(a.nl, a.cands);
  ASSERT_GT(group.size(), 1u);
  const auto sigs = poFanoutSignatures(a.nl);
  std::vector<std::uint32_t> ref;
  for (GateId ff : group) {
    const auto it = std::find(a.nl.flops().begin(), a.nl.flops().end(), ff);
    ASSERT_NE(it, a.nl.flops().end());
    const std::size_t idx =
        static_cast<std::size_t>(it - a.nl.flops().begin());
    EXPECT_TRUE(a.cands[idx].available);
    if (ref.empty())
      ref = sigs[idx];
    else
      EXPECT_EQ(sigs[idx], ref);
  }
  EXPECT_FALSE(ref.empty());  // the shared PO set is non-empty
}

TEST(KarmakarGroup, EmptyWhenNothingAvailable) {
  Analysis a{makeToySeq(), {}, 0, {}};
  StaConfig cfg;
  cfg.clockPeriod = 600;  // absurdly tight: nothing fits a 1 ns glitch
  Sta sta(a.nl, cfg);
  GkParams p;
  const auto cands =
      analyzeFlops(a.nl, sta, gkTiming(p), FfSelectOptions{ns(1), 150});
  EXPECT_EQ(countAvailable(cands), 0u);
  EXPECT_TRUE(karmakarGroup(a.nl, cands).empty());
}

}  // namespace
}  // namespace gkll
