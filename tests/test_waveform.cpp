#include "sim/waveform.h"

#include <gtest/gtest.h>

namespace gkll {
namespace {

TEST(Waveform, InitialAndFinal) {
  Waveform w(Logic::F);
  EXPECT_EQ(w.initial(), Logic::F);
  EXPECT_EQ(w.finalValue(), Logic::F);
  w.set(100, Logic::T);
  EXPECT_EQ(w.finalValue(), Logic::T);
  EXPECT_EQ(w.numTransitions(), 1u);
}

TEST(Waveform, ValueAtBinarySearch) {
  Waveform w(Logic::F);
  w.set(100, Logic::T);
  w.set(200, Logic::F);
  w.set(300, Logic::X);
  EXPECT_EQ(w.valueAt(0), Logic::F);
  EXPECT_EQ(w.valueAt(99), Logic::F);
  EXPECT_EQ(w.valueAt(100), Logic::T);  // changes take effect at their time
  EXPECT_EQ(w.valueAt(199), Logic::T);
  EXPECT_EQ(w.valueAt(200), Logic::F);
  EXPECT_EQ(w.valueAt(299), Logic::F);
  EXPECT_EQ(w.valueAt(1000), Logic::X);
}

TEST(Waveform, RedundantSetIsNoOp) {
  Waveform w(Logic::T);
  w.set(50, Logic::T);
  EXPECT_EQ(w.numTransitions(), 0u);
}

TEST(Waveform, SameTimeReRecordReplaces) {
  Waveform w(Logic::F);
  w.set(100, Logic::T);
  w.set(100, Logic::X);
  ASSERT_EQ(w.numTransitions(), 1u);
  EXPECT_EQ(w.valueAt(100), Logic::X);
}

TEST(Waveform, SameTimeRevertCollapses) {
  Waveform w(Logic::F);
  w.set(100, Logic::T);
  w.set(100, Logic::F);  // back to the previous value: zero-width pulse
  EXPECT_EQ(w.numTransitions(), 0u);
  EXPECT_EQ(w.valueAt(100), Logic::F);
}

TEST(Pulses, DecomposesSegments) {
  Waveform w(Logic::F);
  w.set(100, Logic::T);
  w.set(300, Logic::F);
  const auto segs = pulses(w, 0, 1000);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].level, Logic::F);
  EXPECT_EQ(segs[0].width(), 100);
  EXPECT_EQ(segs[1].level, Logic::T);
  EXPECT_EQ(segs[1].width(), 200);
  EXPECT_EQ(segs[2].level, Logic::F);
  EXPECT_EQ(segs[2].end, 1000);
}

TEST(Pulses, WindowClipsHistory) {
  Waveform w(Logic::F);
  w.set(100, Logic::T);
  w.set(300, Logic::F);
  const auto segs = pulses(w, 150, 250);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].level, Logic::T);
  EXPECT_EQ(segs[0].start, 150);
  EXPECT_EQ(segs[0].end, 250);
}

TEST(Glitches, OnlyInteriorNarrowSegments) {
  Waveform w(Logic::F);
  w.set(100, Logic::T);   // 50-wide pulse
  w.set(150, Logic::F);
  w.set(500, Logic::T);   // wide pulse
  w.set(900, Logic::F);
  const auto g = glitches(w, 0, 1000, 100);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].start, 100);
  EXPECT_EQ(g[0].width(), 50);
}

TEST(Glitches, TrailingSegmentNeverCounts) {
  Waveform w(Logic::F);
  w.set(990, Logic::T);  // 10 before the horizon, but unbounded
  EXPECT_TRUE(glitches(w, 0, 1000, 100).empty());
}

TEST(RenderDiagram, ShowsLevelsAndEdges) {
  Waveform w(Logic::F);
  w.set(400, Logic::T);
  w.set(800, Logic::F);
  const std::string s = renderDiagram({{"sig", &w}}, 0, 1200, 200);
  // 6 sample columns: __/-\_ plus ruler lines.
  EXPECT_NE(s.find("sig : "), std::string::npos);
  EXPECT_NE(s.find('/'), std::string::npos);
  EXPECT_NE(s.find('\\'), std::string::npos);
  EXPECT_NE(s.find("(ns)"), std::string::npos);
}

TEST(RenderDiagram, UnknownRendersAsX) {
  Waveform w(Logic::X);
  const std::string s = renderDiagram({{"u", &w}}, 0, 600, 200);
  EXPECT_NE(s.find("XXX"), std::string::npos);
}

TEST(RenderDiagram, LabelsAligned) {
  Waveform a(Logic::F), b(Logic::T);
  const std::string s =
      renderDiagram({{"short", &a}, {"a_much_longer_name", &b}}, 0, 400, 200);
  // Both rows must place the " : " separator at the same offset from the
  // start of their label (labels are padded to the widest).
  const auto l1 = s.find("short");
  const auto c1 = s.find(" : ", l1);
  const auto l2 = s.find("a_much_longer_name");
  const auto c2 = s.find(" : ", l2);
  EXPECT_EQ(c1 - l1, c2 - l2);
}

}  // namespace
}  // namespace gkll
