#include "flow/placement.h"

#include <gtest/gtest.h>

#include "benchgen/synthetic_bench.h"
#include "timing/sta.h"

namespace gkll {
namespace {

TEST(Placement, AnnotatesWireDelays) {
  Netlist nl = generateByName("s1238");
  const PlacementResult r = placeAndRoute(nl, PlacementOptions{});
  int annotated = 0;
  for (NetId n = 0; n < nl.numNets(); ++n)
    if (nl.net(n).wireDelay > 0) ++annotated;
  EXPECT_GT(annotated, static_cast<int>(nl.numNets()) / 2);
  EXPECT_GT(r.maxWireDelay, 0);
}

TEST(Placement, SourceAndDelayNetsStayClean) {
  Netlist nl("src");
  const NetId a = nl.addPI("a");
  const NetId d = nl.addNet("d");
  nl.addDelay(a, d, 500);
  const NetId y = nl.addNet("y");
  nl.addGate(CellKind::kBuf, {d}, y);
  nl.markPO(y);
  placeAndRoute(nl, PlacementOptions{});
  EXPECT_EQ(nl.net(a).wireDelay, 0);  // PI
  EXPECT_EQ(nl.net(d).wireDelay, 0);  // delay-element output
  EXPECT_GT(nl.net(y).wireDelay, 0);
}

TEST(Placement, FanoutIncreasesWireDelay) {
  PlacementOptions opt;
  opt.wireJitter = 0;
  Netlist nl("fan");
  const NetId a = nl.addPI("a");
  const NetId one = nl.addNet("one");
  nl.addGate(CellKind::kInv, {a}, one);
  const NetId big = nl.addNet("big");
  nl.addGate(CellKind::kInv, {a}, big);
  // one sink for `one`, four sinks for `big`.
  for (int i = 0; i < 1; ++i) {
    const NetId t = nl.addNet();
    nl.addGate(CellKind::kBuf, {one}, t);
    nl.markPO(t);
  }
  for (int i = 0; i < 4; ++i) {
    const NetId t = nl.addNet();
    nl.addGate(CellKind::kBuf, {big}, t);
    nl.markPO(t);
  }
  placeAndRoute(nl, opt);
  EXPECT_GT(nl.net(big).wireDelay, nl.net(one).wireDelay);
  EXPECT_EQ(nl.net(big).wireDelay - nl.net(one).wireDelay,
            3 * opt.wireDelayPerFanout);
}

TEST(Placement, ClockSkewBounded) {
  Netlist nl = generateByName("s13207");
  PlacementOptions opt;
  const PlacementResult r = placeAndRoute(nl, opt);
  ASSERT_EQ(r.clockArrival.size(), nl.flops().size());
  for (Ps t : r.clockArrival) {
    EXPECT_GE(t, 0);
    EXPECT_LE(t, opt.maxClockSkew);
  }
}

TEST(Placement, SkewBoundPreventsPlainHoldViolations) {
  // The documented invariant: maxClockSkew < clkToQ - Thold - baseWire so
  // a direct Q->D path cannot hold-violate.
  const PlacementOptions opt;
  const CellLibrary& lib = CellLibrary::tsmc013c();
  EXPECT_LT(opt.maxClockSkew,
            lib.clkToQ() - lib.holdTime() + opt.baseWireDelay);
}

TEST(Placement, DeterministicForSeed) {
  Netlist a = generateByName("s1238");
  Netlist b = generateByName("s1238");
  const PlacementResult ra = placeAndRoute(a, PlacementOptions{});
  const PlacementResult rb = placeAndRoute(b, PlacementOptions{});
  EXPECT_EQ(ra.clockArrival, rb.clockArrival);
  for (NetId n = 0; n < a.numNets(); ++n)
    EXPECT_EQ(a.net(n).wireDelay, b.net(n).wireDelay);
}

TEST(Placement, SeedChangesLayout) {
  Netlist a = generateByName("s1238");
  Netlist b = generateByName("s1238");
  PlacementOptions oa, ob;
  ob.seed = oa.seed + 1;
  placeAndRoute(a, oa);
  placeAndRoute(b, ob);
  bool anyDiff = false;
  for (NetId n = 0; n < a.numNets() && !anyDiff; ++n)
    anyDiff = a.net(n).wireDelay != b.net(n).wireDelay;
  EXPECT_TRUE(anyDiff);
}

TEST(Placement, TimingStillMetAtDerivedPeriod) {
  Netlist nl = generateByName("s9234");
  const PlacementResult pr = placeAndRoute(nl, PlacementOptions{});
  StaConfig cfg;
  cfg.inputArrival = CellLibrary::tsmc013c().clkToQ();
  Sta sta(nl, cfg);
  for (std::size_t i = 0; i < nl.flops().size(); ++i)
    sta.setClockArrival(nl.flops()[i], pr.clockArrival[i]);
  cfg.clockPeriod = sta.minClockPeriod(100);
  Sta at(nl, cfg);
  for (std::size_t i = 0; i < nl.flops().size(); ++i)
    at.setClockArrival(nl.flops()[i], pr.clockArrival[i]);
  EXPECT_TRUE(at.run().meetsTiming());
}

}  // namespace
}  // namespace gkll
