// gkll_client — scriptable client for the gkll_serve daemon.
//
//   gkll_client (--unix PATH | --tcp PORT) [--time] COMMAND...
//
// Commands (each is one request; responses print one JSON line each):
//   VERB [key=value ...]     e.g.  upload generate=c432
//                                  lock handle=0x... scheme=xor key_bits=8
//                                  attack handle=0x... mode=sat
//                                  oracle_query handle=0x... inputs=0101...
//                                  stats
//     Values: integers/floats/true/false pass as JSON scalars, @FILE
//     substitutes the file's contents (for bench= uploads), anything else
//     is a JSON string.
//   --jsonl FILE|-           send each line of FILE (or stdin) verbatim as
//                            one request payload.
//
// --time prints "time_us N" to stderr after every request — the smoke
// script's cold-vs-warm latency check reads those.
//
// --stress N --repeat M      open N concurrent keep-alive connections and
//                            send the command M times on EACH, then print a
//                            latency/throughput summary (p50/p90/p99 in
//                            microseconds, plus the clients' transport byte
//                            counters).  The sweep runner's --service mode
//                            uses one such keep-alive connection per worker;
//                            this is the standalone saturation probe.
//
// Exit: 0 when every response has "ok":true, 1 otherwise, 2 on usage or
// transport errors.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/proto.h"
#include "util/json.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: gkll_client (--unix PATH | --tcp PORT) [--time]\n"
               "                   [--stress N --repeat M]\n"
               "                   VERB [key=value ...] | --jsonl FILE|-\n");
  return 2;
}

/// One stress-mode worker: its own keep-alive connection, `repeat`
/// round trips of the same payload, per-request latencies recorded.
struct StressWorker {
  std::vector<double> latencyUs;
  gkll::service::ServiceClient::TransportStats transport;
  std::uint64_t failures = 0;  ///< transport errors or "ok":false replies
};

void runStressWorker(const std::string& unixPath, int tcpPort,
                     const std::string& payload, int repeat,
                     StressWorker& out) {
  gkll::service::ServiceClient client;
  const bool connected = unixPath.empty() ? client.connectTcp(tcpPort)
                                          : client.connectUnix(unixPath);
  if (!connected) {
    out.failures = static_cast<std::uint64_t>(repeat);
    return;
  }
  out.latencyUs.reserve(static_cast<std::size_t>(repeat));
  for (int i = 0; i < repeat; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    std::string response;
    if (!client.request(payload, response)) {
      // The connection is gone; remaining repeats would all fail the
      // same way — count them and stop.
      out.failures += static_cast<std::uint64_t>(repeat - i);
      break;
    }
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    out.latencyUs.push_back(static_cast<double>(us));
    gkll::util::JsonValue parsed;
    if (!gkll::util::parseJson(response, parsed) ||
        !parsed.boolOr("ok", false))
      out.failures += 1;
  }
  out.transport = client.stats();
}

double percentileOf(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

int runStress(const std::string& unixPath, int tcpPort,
              const std::string& payload, int stress, int repeat) {
  std::vector<StressWorker> workers(static_cast<std::size_t>(stress));
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (StressWorker& w : workers)
      threads.emplace_back(runStressWorker, std::cref(unixPath), tcpPort,
                           std::cref(payload), repeat, std::ref(w));
    for (std::thread& t : threads) t.join();
  }
  const double wallUs =
      static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count());

  std::vector<double> all;
  std::uint64_t failures = 0, requests = 0, sent = 0, received = 0;
  for (const StressWorker& w : workers) {
    all.insert(all.end(), w.latencyUs.begin(), w.latencyUs.end());
    failures += w.failures;
    requests += w.transport.requests;
    sent += w.transport.bytesSent;
    received += w.transport.bytesReceived;
  }
  std::sort(all.begin(), all.end());
  const double meanUs =
      all.empty() ? 0.0
                  : std::accumulate(all.begin(), all.end(), 0.0) /
                        static_cast<double>(all.size());
  std::printf("stress connections=%d repeat=%d requests=%llu failures=%llu\n",
              stress, repeat, static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(failures));
  std::printf("latency_us mean=%.1f p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
              meanUs, percentileOf(all, 0.50), percentileOf(all, 0.90),
              percentileOf(all, 0.99), all.empty() ? 0.0 : all.back());
  std::printf("throughput_rps %.1f\n",
              wallUs > 0 ? static_cast<double>(requests) * 1e6 / wallUs : 0.0);
  std::printf("transport bytes_sent=%llu bytes_received=%llu\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(received));
  return failures == 0 ? 0 : 1;
}

/// Keys whose values are always strings, whatever they look like —
/// "inputs=0101" must not become a (malformed) JSON number.
bool stringKey(const std::string& key) {
  static const char* const kStringKeys[] = {
      "handle", "scheme", "mode", "inputs", "name", "generate", "bench"};
  for (const char* k : kStringKeys)
    if (key == k) return true;
  return false;
}

bool looksNumeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size()) return false;
  // Leading zeros are not valid JSON numbers ("007") — pass as strings.
  if (s[i] == '0' && i + 1 < s.size() && s[i + 1] != '.') return false;
  bool dot = false;
  for (; i < s.size(); ++i) {
    if (s[i] == '.' && !dot) {
      dot = true;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool readFile(const std::string& path, std::string& out, std::string& err) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    err = "cannot read " + path;
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  out = buf.str();
  return true;
}

/// Build one request payload from "VERB key=value..." arguments.
bool buildRequest(const std::vector<std::string>& args, std::int64_t id,
                  std::string& payload, std::string& err) {
  gkll::service::JsonWriter w;
  w.i64("id", id).str("verb", args[0]);
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& kv = args[i];
    const auto eq = kv.find('=');
    if (eq == std::string::npos) {
      err = "argument is not key=value: " + kv;
      return false;
    }
    const std::string key = kv.substr(0, eq);
    std::string value = kv.substr(eq + 1);
    if (!value.empty() && value[0] == '@') {
      std::string contents;
      if (!readFile(value.substr(1), contents, err)) return false;
      w.str(key, contents);
    } else if (stringKey(key)) {
      w.str(key, value);
    } else if (value == "true" || value == "false") {
      w.boolean(key, value == "true");
    } else if (looksNumeric(value)) {
      w.raw(key, value);
    } else {
      w.str(key, value);
    }
  }
  payload = w.finish();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unixPath;
  int tcpPort = -1;
  bool timeRequests = false;
  int stress = 0;
  int repeat = 1;
  std::string jsonlPath;
  std::vector<std::string> cmd;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (cmd.empty() && a == "--unix" && i + 1 < argc) {
      unixPath = argv[++i];
    } else if (cmd.empty() && a == "--tcp" && i + 1 < argc) {
      tcpPort = std::atoi(argv[++i]);
    } else if (cmd.empty() && a == "--time") {
      timeRequests = true;
    } else if (cmd.empty() && a == "--stress" && i + 1 < argc) {
      stress = std::atoi(argv[++i]);
    } else if (cmd.empty() && a == "--repeat" && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else if (cmd.empty() && a == "--jsonl" && i + 1 < argc) {
      jsonlPath = argv[++i];
    } else {
      cmd.push_back(a);
    }
  }
  if ((unixPath.empty() && tcpPort < 0) || (cmd.empty() && jsonlPath.empty()))
    return usage();
  if (stress > 0) {
    if (cmd.empty() || repeat < 1) {
      std::fprintf(stderr,
                   "gkll_client: --stress needs a VERB command and "
                   "--repeat >= 1\n");
      return 2;
    }
    std::string payload;
    std::string err;
    if (!buildRequest(cmd, 1, payload, err)) {
      std::fprintf(stderr, "gkll_client: %s\n", err.c_str());
      return 2;
    }
    return runStress(unixPath, tcpPort, payload, stress, repeat);
  }

  gkll::service::ServiceClient client;
  const bool ok = unixPath.empty() ? client.connectTcp(tcpPort)
                                   : client.connectUnix(unixPath);
  if (!ok) {
    std::fprintf(stderr, "gkll_client: %s\n", client.error().c_str());
    return 2;
  }

  std::vector<std::string> payloads;
  if (!jsonlPath.empty()) {
    std::istream* in = &std::cin;
    std::ifstream file;
    if (jsonlPath != "-") {
      file.open(jsonlPath);
      if (!file) {
        std::fprintf(stderr, "gkll_client: cannot read %s\n",
                     jsonlPath.c_str());
        return 2;
      }
      in = &file;
    }
    std::string line;
    while (std::getline(*in, line))
      if (!line.empty()) payloads.push_back(line);
  } else {
    std::string payload;
    std::string err;
    if (!buildRequest(cmd, 1, payload, err)) {
      std::fprintf(stderr, "gkll_client: %s\n", err.c_str());
      return 2;
    }
    payloads.push_back(std::move(payload));
  }

  int rc = 0;
  for (const std::string& payload : payloads) {
    const auto t0 = std::chrono::steady_clock::now();
    std::string response;
    if (!client.request(payload, response)) {
      std::fprintf(stderr, "gkll_client: %s\n", client.error().c_str());
      return 2;
    }
    if (timeRequests) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      std::fprintf(stderr, "time_us %lld\n", static_cast<long long>(us));
    }
    std::printf("%s\n", response.c_str());
    gkll::util::JsonValue parsed;
    if (!gkll::util::parseJson(response, parsed) ||
        !parsed.boolOr("ok", false))
      rc = 1;
  }
  std::fflush(stdout);
  return rc;
}
