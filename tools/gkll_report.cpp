// gkll_report — the perf-regression gate and artifact validator.
//
//   gkll_report compare BASELINE CURRENT [--tolerance PCT]
//                       [--metric-tolerance NAME=PCT ...] [--all]
//     Diff two metric files (BENCH_*.json or *.metrics.jsonl).  Prints a
//     delta table; exits 1 when any gated metric regressed past its
//     tolerance, 0 otherwise.  --all prints ok/info lines too (default
//     prints regressions, improvements and one-sided metrics).
//
//   gkll_report validate FILE...
//     Each FILE is parsed as a run journal (first line "journal.header"),
//     a metrics JSONL stream, or a BENCH json object.  Prints a summary
//     per file; exits 1 on any unreadable/corrupt file.  A journal with a
//     truncated tail validates (that is the crash-safety contract) but the
//     damage is reported.
//
//   gkll_report gate BENCH.json [--min-speedup X] [--min FIELD=X ...]
//     CI gate over one dual-run bench artifact: fails when the recorded
//     parallel run was not byte-identical to the serial run
//     (parallel_identical != 1), with --min-speedup when the measured
//     serial/parallel speedup is below the floor, or with --min when any
//     named field is missing or below its floor (repeatable — the scale
//     bench gates wide_speedup and sta_incremental_speedup this way).
//
//   gkll_report cdf A B [--metric NAME] [--max-ks X]
//     Diff two sweep CDF sidecars (SWEEP_*.cdf.json, written by
//     gkll_sweep).  For every "g.<group>.<metric>" step-CDF present in
//     both files, prints the Kolmogorov–Smirnov distance (the largest
//     vertical gap between the two step functions); --metric restricts to
//     keys containing NAME.  With --max-ks, exits 1 when any compared
//     distance exceeds X — the distribution-shift gate for comparing a
//     sweep against a baseline sweep.
//
// Exit codes: 0 ok, 1 regression/validation failure, 2 usage error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/report.h"
#include "util/json.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: gkll_report compare BASELINE CURRENT [--tolerance PCT]\n"
      "                   [--metric-tolerance NAME=PCT ...] [--all]\n"
      "       gkll_report validate FILE...\n"
      "       gkll_report gate BENCH.json [--min-speedup X]\n"
      "                   [--min FIELD=X ...]\n"
      "       gkll_report cdf A.cdf.json B.cdf.json [--metric NAME]\n"
      "                   [--max-ks X]\n");
  return 2;
}

bool looksLikeJournal(const std::string& path) {
  std::ifstream f(path);
  std::string first;
  if (!f || !std::getline(f, first)) return false;
  return first.find("\"journal.header\"") != std::string::npos;
}

int runCompare(const std::vector<std::string>& args) {
  std::string basePath, curPath;
  double tolerance = 0.10;
  gkll::obs::ToleranceMap overrides;
  bool showAll = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--tolerance") {
      if (++i == args.size()) return usage();
      tolerance = std::atof(args[i].c_str()) / 100.0;
    } else if (a == "--metric-tolerance") {
      if (++i == args.size()) return usage();
      const std::size_t eq = args[i].find('=');
      if (eq == std::string::npos) return usage();
      overrides[args[i].substr(0, eq)] =
          std::atof(args[i].c_str() + eq + 1) / 100.0;
    } else if (a == "--all") {
      showAll = true;
    } else if (basePath.empty()) {
      basePath = a;
    } else if (curPath.empty()) {
      curPath = a;
    } else {
      return usage();
    }
  }
  if (basePath.empty() || curPath.empty()) return usage();

  gkll::obs::MetricsFile base, cur;
  std::string err;
  if (!gkll::obs::loadMetricsFile(basePath, base, err)) {
    std::fprintf(stderr, "gkll_report: %s\n", err.c_str());
    return 1;
  }
  if (!gkll::obs::loadMetricsFile(curPath, cur, err)) {
    std::fprintf(stderr, "gkll_report: %s\n", err.c_str());
    return 1;
  }

  gkll::obs::CompareResult r =
      gkll::obs::compareMetrics(base, cur, tolerance, overrides);
  if (!showAll) {
    std::vector<gkll::obs::MetricDelta> kept;
    for (gkll::obs::MetricDelta& d : r.deltas) {
      if (d.verdict == gkll::obs::DeltaVerdict::kRegression ||
          d.verdict == gkll::obs::DeltaVerdict::kImprovement ||
          !d.inBaseline || !d.inCurrent)
        kept.push_back(std::move(d));
    }
    const std::size_t total = r.deltas.size();
    r.deltas = std::move(kept);
    std::printf("%s vs %s (%zu metrics, showing %zu; --all for everything)\n",
                basePath.c_str(), curPath.c_str(), total, r.deltas.size());
  } else {
    std::printf("%s vs %s\n", basePath.c_str(), curPath.c_str());
  }
  std::fputs(gkll::obs::formatCompare(r).c_str(), stdout);
  return r.regressions > 0 ? 1 : 0;
}

int validateOne(const std::string& path) {
  if (looksLikeJournal(path)) {
    gkll::obs::JournalReader reader;
    if (!reader.read(path)) {
      std::printf("%s: INVALID journal (%s)\n", path.c_str(),
                  reader.error().c_str());
      return 1;
    }
    std::printf("%s: journal ok — schema %d, tool \"%s\", %zu record(s)",
                path.c_str(), reader.schema(), reader.tool().c_str(),
                reader.records().size());
    if (reader.truncatedTail())
      std::printf(", TRUNCATED tail (%zu byte(s) dropped)",
                  reader.droppedBytes());
    const auto done = reader.completedScenarios();
    if (!done.empty())
      std::printf(", %zu completed scenario(s)", done.size());
    std::printf("\n");
    return 0;
  }
  gkll::obs::MetricsFile mf;
  std::string err;
  if (!gkll::obs::loadMetricsFile(path, mf, err)) {
    std::printf("%s: INVALID metrics (%s)\n", path.c_str(), err.c_str());
    return 1;
  }
  std::printf("%s: metrics ok — %zu metric(s)\n", path.c_str(),
              mf.metrics.size());
  return 0;
}

int runGate(const std::vector<std::string>& args) {
  std::string path;
  double minSpeedup = 0.0;
  bool haveFloor = false;
  std::vector<std::pair<std::string, double>> floors;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--min-speedup") {
      if (++i == args.size()) return usage();
      minSpeedup = std::atof(args[i].c_str());
      haveFloor = true;
    } else if (a == "--min") {
      // Repeatable generic floor: --min FIELD=X fails the gate when the
      // artifact's FIELD is missing or below X.
      if (++i == args.size()) return usage();
      const auto eq = args[i].find('=');
      if (eq == std::string::npos || eq == 0) return usage();
      floors.emplace_back(args[i].substr(0, eq),
                          std::atof(args[i].c_str() + eq + 1));
    } else if (path.empty()) {
      path = a;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  gkll::obs::MetricsFile mf;
  std::string err;
  if (!gkll::obs::loadMetricsFile(path, mf, err)) {
    std::fprintf(stderr, "gkll_report: %s\n", err.c_str());
    return 1;
  }

  int rc = 0;
  const auto identical = mf.metrics.find("parallel_identical");
  if (identical == mf.metrics.end()) {
    std::printf("%s: FAIL — no parallel_identical field (not a dual-run "
                "bench artifact?)\n",
                path.c_str());
    rc = 1;
  } else if (identical->second.value != 1.0) {
    std::printf("%s: FAIL — parallel run diverged from serial "
                "(parallel_identical = %g)\n",
                path.c_str(), identical->second.value);
    rc = 1;
  } else {
    std::printf("%s: parallel_identical ok\n", path.c_str());
  }

  if (haveFloor) {
    const auto speedup = mf.metrics.find("speedup");
    if (speedup == mf.metrics.end()) {
      std::printf("%s: FAIL — no speedup field\n", path.c_str());
      rc = 1;
    } else if (speedup->second.value < minSpeedup) {
      std::printf("%s: FAIL — speedup %.2fx below floor %.2fx\n",
                  path.c_str(), speedup->second.value, minSpeedup);
      rc = 1;
    } else {
      std::printf("%s: speedup %.2fx >= %.2fx\n", path.c_str(),
                  speedup->second.value, minSpeedup);
    }
  }

  for (const auto& [field, floor] : floors) {
    const auto it = mf.metrics.find(field);
    if (it == mf.metrics.end()) {
      std::printf("%s: FAIL — no %s field\n", path.c_str(), field.c_str());
      rc = 1;
    } else if (it->second.value < floor) {
      std::printf("%s: FAIL — %s %.3g below floor %.3g\n", path.c_str(),
                  field.c_str(), it->second.value, floor);
      rc = 1;
    } else {
      std::printf("%s: %s %.3g >= %.3g\n", path.c_str(), field.c_str(),
                  it->second.value, floor);
    }
  }
  return rc;
}

/// One step CDF from a sweep sidecar: sorted (upperBound, cumulativeFrac)
/// pairs, as written by the coordinator from merged LogHistogram buckets.
using StepCdf = std::vector<std::pair<double, double>>;

bool loadCdfFile(const std::string& path,
                 std::vector<std::pair<std::string, StepCdf>>& out,
                 std::string& err) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    err = "cannot read " + path;
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  gkll::util::JsonValue root;
  if (!gkll::util::parseJson(buf.str(), root, &err) || !root.isObject()) {
    err = path + ": " + (err.empty() ? "not a JSON object" : err);
    return false;
  }
  for (const auto& [key, value] : root.object) {
    if (!value.isArray()) continue;
    StepCdf cdf;
    cdf.reserve(value.array.size());
    for (const gkll::util::JsonValue& pair : value.array) {
      if (!pair.isArray() || pair.array.size() != 2) continue;
      cdf.emplace_back(pair.array[0].number, pair.array[1].number);
    }
    out.emplace_back(key, std::move(cdf));
  }
  return true;
}

/// Step-function value of a CDF at x: the cumulative fraction of the last
/// bucket whose upper bound is <= x (0 before the first bucket).
double cdfAt(const StepCdf& cdf, double x) {
  double y = 0.0;
  for (const auto& [ub, frac] : cdf) {
    if (ub > x) break;
    y = frac;
  }
  return y;
}

/// Kolmogorov–Smirnov distance between two step CDFs: the largest
/// vertical gap, evaluated at every breakpoint of either function (a step
/// function's sup-gap is always attained at a breakpoint).
double ksDistance(const StepCdf& a, const StepCdf& b) {
  double ks = 0.0;
  for (const auto& [ub, frac] : a)
    ks = std::max(ks, std::fabs(frac - cdfAt(b, ub)));
  for (const auto& [ub, frac] : b)
    ks = std::max(ks, std::fabs(cdfAt(a, ub) - frac));
  return ks;
}

int runCdf(const std::vector<std::string>& args) {
  std::string pathA, pathB, metricFilter;
  double maxKs = -1.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--metric") {
      if (++i == args.size()) return usage();
      metricFilter = args[i];
    } else if (a == "--max-ks") {
      if (++i == args.size()) return usage();
      maxKs = std::atof(args[i].c_str());
    } else if (pathA.empty()) {
      pathA = a;
    } else if (pathB.empty()) {
      pathB = a;
    } else {
      return usage();
    }
  }
  if (pathA.empty() || pathB.empty()) return usage();

  std::vector<std::pair<std::string, StepCdf>> cdfA, cdfB;
  std::string err;
  if (!loadCdfFile(pathA, cdfA, err) || !loadCdfFile(pathB, cdfB, err)) {
    std::fprintf(stderr, "gkll_report: %s\n", err.c_str());
    return 1;
  }

  int rc = 0;
  std::size_t compared = 0;
  double worst = 0.0;
  std::string worstKey;
  for (const auto& [key, a] : cdfA) {
    if (!metricFilter.empty() && key.find(metricFilter) == std::string::npos)
      continue;
    const StepCdf* b = nullptr;
    for (const auto& [keyB, valB] : cdfB)
      if (keyB == key) {
        b = &valB;
        break;
      }
    if (b == nullptr) {
      std::printf("%-60s only in %s\n", key.c_str(), pathA.c_str());
      continue;
    }
    const double ks = ksDistance(a, *b);
    ++compared;
    if (ks > worst) {
      worst = ks;
      worstKey = key;
    }
    const bool over = maxKs >= 0.0 && ks > maxKs;
    std::printf("%-60s ks=%.4f%s\n", key.c_str(), ks,
                over ? "  FAIL (over --max-ks)" : "");
    if (over) rc = 1;
  }
  for (const auto& [key, b] : cdfB) {
    if (!metricFilter.empty() && key.find(metricFilter) == std::string::npos)
      continue;
    bool inA = false;
    for (const auto& [keyA, valA] : cdfA)
      if (keyA == key) {
        inA = true;
        break;
      }
    if (!inA) std::printf("%-60s only in %s\n", key.c_str(), pathB.c_str());
  }
  if (compared == 0) {
    std::fprintf(stderr, "gkll_report: no common CDF keys to compare\n");
    return 1;
  }
  std::printf("%zu CDF(s) compared, worst ks=%.4f (%s)\n", compared, worst,
              worstKey.c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args[0];
  args.erase(args.begin());
  if (cmd == "compare") return runCompare(args);
  if (cmd == "gate") return runGate(args);
  if (cmd == "cdf") return runCdf(args);
  if (cmd == "validate") {
    if (args.empty()) return usage();
    int rc = 0;
    for (const std::string& p : args)
      if (validateOne(p) != 0) rc = 1;
    return rc;
  }
  return usage();
}
