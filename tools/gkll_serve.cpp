// gkll_serve — the locking-as-a-service daemon.
//
//   gkll_serve --unix PATH | --tcp PORT | --stdio
//              [--threads N] [--max-inflight N] [--max-queue N]
//              [--store-mb N] [--store-spill-dir DIR] [--journal PATH]
//
// Speaks the length-prefixed JSONL protocol of src/service/proto.h.
// --tcp 0 picks an ephemeral port and prints "listening tcp PORT" on
// stdout (scripts parse that line).  --stdio serves a single session on
// stdin/stdout, the mode the protocol tests and one-shot scripting use.
//
// SIGTERM/SIGINT: graceful drain — stop accepting, let in-flight requests
// finish, flush the journal, exit 0.  A second signal cancels in-flight
// work (SAT attacks unwind at the next solver boundary).
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/journal.h"
#include "service/server.h"
#include "service/service.h"

namespace {

std::atomic<int> gSignals{0};

void onSignal(int) { gSignals.fetch_add(1, std::memory_order_relaxed); }

int usage() {
  std::fprintf(stderr,
               "usage: gkll_serve --unix PATH | --tcp PORT | --stdio\n"
               "                  [--threads N] [--max-inflight N]\n"
               "                  [--max-queue N] [--store-mb N]\n"
               "                  [--store-spill-dir DIR] [--journal PATH]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unixPath;
  bool tcp = false;
  int tcpPort = 0;
  bool stdio = false;
  std::string journalPath;
  gkll::service::ServiceOptions opt;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--unix") {
      const char* v = next();
      if (!v) return usage();
      unixPath = v;
    } else if (a == "--tcp") {
      const char* v = next();
      if (!v) return usage();
      tcp = true;
      tcpPort = std::atoi(v);
    } else if (a == "--stdio") {
      stdio = true;
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return usage();
      opt.threads = std::atoi(v);
    } else if (a == "--max-inflight") {
      const char* v = next();
      if (!v) return usage();
      opt.maxInflight = std::atoi(v);
    } else if (a == "--max-queue") {
      const char* v = next();
      if (!v) return usage();
      opt.maxQueue = std::atoi(v);
    } else if (a == "--store-mb") {
      const char* v = next();
      if (!v) return usage();
      opt.storeBudgetBytes =
          static_cast<std::size_t>(std::atoll(v)) << 20;
    } else if (a == "--store-spill-dir") {
      const char* v = next();
      if (!v) return usage();
      opt.storeSpillDir = v;
    } else if (a == "--journal") {
      const char* v = next();
      if (!v) return usage();
      journalPath = v;
    } else {
      std::fprintf(stderr, "gkll_serve: unknown option %s\n", a.c_str());
      return usage();
    }
  }
  if (!stdio && unixPath.empty() && !tcp) return usage();

  if (!journalPath.empty() &&
      !gkll::obs::RunJournal::global().open(journalPath, "gkll_serve")) {
    std::fprintf(stderr, "gkll_serve: cannot open journal %s\n",
                 journalPath.c_str());
    return 1;
  }

  gkll::service::Service svc(opt);

  if (stdio) {
    const std::size_t served = gkll::service::serveStream(svc, STDIN_FILENO,
                                                          STDOUT_FILENO);
    svc.beginDrain();
    svc.waitIdle();
    std::fprintf(stderr, "gkll_serve: served %zu requests\n", served);
    gkll::obs::RunJournal::global().close();
    return 0;
  }

  gkll::service::ServerOptions sopt;
  sopt.unixPath = unixPath;
  sopt.tcp = tcp;
  sopt.tcpPort = tcpPort;
  gkll::service::Server server(svc, sopt);
  if (!server.start()) {
    std::fprintf(stderr, "gkll_serve: %s\n", server.error().c_str());
    return 1;
  }
  if (!unixPath.empty())
    std::printf("listening unix %s\n", unixPath.c_str());
  if (tcp) std::printf("listening tcp %d\n", server.boundTcpPort());
  std::fflush(stdout);

  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);

  std::thread accept([&] { server.run(); });
  while (gSignals.load(std::memory_order_relaxed) == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  // Escalate to cancellation if a second signal arrives during the drain.
  std::atomic<bool> drained{false};
  std::thread watchdog([&] {
    while (!drained.load(std::memory_order_acquire)) {
      if (gSignals.load(std::memory_order_relaxed) > 1) {
        svc.cancelAll();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  server.drain();
  accept.join();
  drained.store(true, std::memory_order_release);
  watchdog.join();
  gkll::obs::RunJournal::global().close();
  return 0;
}
