// gkll_sweep — distributed scenario-matrix runner with checkpoint/resume
// (ROADMAP item 5, DESIGN.md §14).
//
//   gkll_sweep run --dir DIR [options]
//
// Options:
//   --dir DIR           sweep directory (work queue, journals, artifacts)
//   --name NAME         artifact stem (BENCH_<name>.json); default "sweep"
//   --designs a,b,...   benchgen names (default "c17,toyseq")
//   --locks a,b,...     none | xor:<bits> | sarlock:<bits> | gk:<g> |
//                       gkw:<g> | hybrid:<g>x<k>   (default "xor:8,gk:4")
//   --attacks a,b,...   none | sat | removal       (default "sat")
//   --reps N            repetition instances per cell (default 1)
//   --seed S            master seed (default 1)
//   --workers N         fork N worker processes; 0 = in-process (default 0)
//   --service-unix P    run scenarios through a gkll_serve daemon at P
//   --service-tcp PORT  ... or at loopback TCP PORT
//   --crash-after K     fault injection: worker 0 SIGKILLs itself after K
//                       new scenarios (forked mode only)
//   --stop-after K      stop cleanly after K new scenarios (resume later)
//   --quiet             no per-scenario progress lines
//
// Exit codes: 0 = complete (aggregates written), 3 = interrupted/partial
// (re-run the SAME command to resume — completed scenarios are skipped by
// replaying the journals), 2 = configuration or scenario failure.
//
// The determinism contract: for a fixed spec, BENCH_<name>.json and
// SWEEP_<name>.cdf.json are byte-identical no matter how many workers ran,
// how often the sweep was killed, or where it resumed.  Wall-clock numbers
// live only in SWEEP_<name>.latency.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sweep/coordinator.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run --dir DIR [--name N] [--designs a,b]\n"
               "  [--locks xor:8,gk:4] [--attacks sat] [--reps N] [--seed S]\n"
               "  [--workers N] [--service-unix PATH | --service-tcp PORT]\n"
               "  [--crash-after K] [--stop-after K] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gkll;
  if (argc < 2 || std::strcmp(argv[1], "run") != 0) return usage(argv[0]);

  sweep::SweepSpec spec;
  spec.designs = {"c17", "toyseq"};
  spec.locks = {"xor:8", "gk:4"};
  spec.attacks = {"sat"};
  sweep::SweepOptions opt;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--quiet") {
      opt.quiet = true;
    } else if ((v = value()) == nullptr) {
      std::fprintf(stderr, "%s needs a value\n", arg.c_str());
      return usage(argv[0]);
    } else if (arg == "--dir") {
      opt.dir = v;
    } else if (arg == "--name") {
      opt.name = v;
    } else if (arg == "--designs") {
      spec.designs = sweep::splitList(v);
    } else if (arg == "--locks") {
      spec.locks = sweep::splitList(v);
    } else if (arg == "--attacks") {
      spec.attacks = sweep::splitList(v);
    } else if (arg == "--reps") {
      spec.reps = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--seed") {
      spec.masterSeed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--workers") {
      opt.workers = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--service-unix") {
      opt.service.unixPath = v;
    } else if (arg == "--service-tcp") {
      opt.service.tcpPort = std::atoi(v);
    } else if (arg == "--crash-after") {
      opt.crashAfter = std::atoi(v);
    } else if (arg == "--stop-after") {
      opt.stopAfter = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (opt.crashAfter >= 0 && opt.workers == 0) {
    std::fprintf(stderr,
                 "--crash-after needs --workers >= 1 (an in-process SIGKILL "
                 "would take the coordinator too); use --stop-after for a "
                 "clean in-process interruption\n");
    return 2;
  }

  const sweep::SweepOutcome out = sweep::runSweep(spec, opt);
  if (!out.error.empty()) std::fprintf(stderr, "gkll_sweep: %s\n", out.error.c_str());
  std::printf(
      "sweep %s: %zu scenario(s), %zu skipped (resumed), %zu ran, %s\n",
      opt.name.c_str(), out.total, out.skipped, out.ran,
      out.complete ? "COMPLETE" : (out.failed ? "FAILED" : "INTERRUPTED"));
  if (out.complete)
    std::printf("  %s\n  %s\n  %s\n", out.aggregatePath.c_str(),
                out.cdfPath.c_str(), out.latencyPath.c_str());
  return sweep::exitCodeFor(out);
}
