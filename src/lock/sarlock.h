// SARLock (Yasin et al. [14]) — a SAT-attack-resistant point-function
// scheme the paper discusses in Secs. I and V.
//
// A comparator raises `flip` when the input pattern X equals the key K,
// and a mask suppresses the flip when K is the correct key; `flip` is
// XOR-ed into one primary output.  Every DIP the SAT attack finds rules
// out exactly one wrong key, so attack effort grows as 2^|K| — but the
// block's output is almost always 0, the probability skew that the
// removal attack (attack/removal_attack) exploits to locate and strip it.
#pragma once

#include <cstdint>

#include "lock/locking.h"

namespace gkll {

struct SarLockOptions {
  int numKeyBits = 8;   ///< comparator width (uses the first n PIs)
  std::uint64_t seed = 2;
};

/// Attach a SARLock block to a copy of `original`.  Requires at least
/// numKeyBits primary inputs and one primary output.
LockedDesign sarLock(const Netlist& original, const SarLockOptions& opt);

}  // namespace gkll
