#include "lock/withholding.h"

#include <cassert>
#include <map>
#include <vector>

namespace gkll {
namespace {

/// A combinational cone rooted at the GK's data net: `leaves` are the
/// (external) inputs, `gates` the absorbed cells in topological order.
struct Cone {
  std::vector<NetId> leaves;
  std::vector<GateId> gates;  // root last
};

bool isAbsorbable(const Netlist& nl, NetId n) {
  const GateId d = nl.net(n).driver;
  if (d == kNoGate) return false;
  const Gate& g = nl.gate(d);
  return !isSourceKind(g.kind) && g.kind != CellKind::kDff &&
         g.kind != CellKind::kLut && g.kind != CellKind::kDelay;
}

/// Greedy cone growth: expand leaves breadth-first while the leaf count
/// stays within `maxLeaves`.  The root net `x` is always expanded first
/// when possible.
Cone growCone(const Netlist& nl, NetId x, int maxLeaves) {
  Cone cone;
  cone.leaves = {x};
  std::size_t head = 0;
  while (head < cone.leaves.size()) {
    const NetId leaf = cone.leaves[head];
    if (!isAbsorbable(nl, leaf)) {
      ++head;
      continue;
    }
    const Gate& g = nl.gate(nl.net(leaf).driver);
    const int newCount = static_cast<int>(cone.leaves.size()) - 1 +
                         static_cast<int>(g.fanin.size());
    if (newCount > maxLeaves) {
      ++head;
      continue;
    }
    // Replace this leaf with the gate's fanins (dedup against existing).
    cone.leaves.erase(cone.leaves.begin() + static_cast<long>(head));
    for (NetId in : g.fanin) {
      bool dup = false;
      for (NetId l : cone.leaves) dup |= (l == in);
      if (!dup) cone.leaves.push_back(in);
    }
    cone.gates.push_back(nl.net(leaf).driver);
    head = 0;  // restart: earlier leaves may now be expandable in budget
  }
  return cone;
}

/// Evaluate the cone + outer XOR/XNOR for one leaf/key assignment.
Logic evalConeFunction(const Netlist& nl, const Cone& cone, NetId root,
                       CellKind outer, std::uint64_t assignment,
                       bool keyValue) {
  std::map<NetId, Logic> value;
  for (std::size_t i = 0; i < cone.leaves.size(); ++i)
    value[cone.leaves[i]] = logicFromBool((assignment >> i) & 1ULL);
  // Worklist evaluation: the cone is a tiny DAG, so repeatedly evaluating
  // any gate whose fanins are ready terminates quickly regardless of the
  // recording order.
  std::vector<bool> done(cone.gates.size(), false);
  std::size_t remaining = cone.gates.size();
  std::vector<Logic> ins;
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t gi = 0; gi < cone.gates.size(); ++gi) {
      if (done[gi]) continue;
      const Gate& gg = nl.gate(cone.gates[gi]);
      bool ready = true;
      ins.clear();
      for (NetId in : gg.fanin) {
        const auto it = value.find(in);
        if (it == value.end()) {
          ready = false;
          break;
        }
        ins.push_back(it->second);
      }
      if (!ready) continue;
      value[gg.out] = evalCell(gg.kind, ins, gg.lutMask);
      done[gi] = true;
      --remaining;
      progress = true;
    }
    assert(progress && "cone is not self-contained");
    (void)progress;
  }
  const auto it = value.find(root);
  assert(it != value.end());
  const Logic x = it->second;
  const Logic iv[] = {x, logicFromBool(keyValue)};
  return evalCell(outer, iv);
}

}  // namespace

WithholdingResult withholdGk(Netlist& nl, GkInstance& gk,
                             const WithholdingOptions& opt) {
  WithholdingResult res;
  assert(opt.maxLutInputs >= 2 && opt.maxLutInputs <= 6);
  const Cone cone = growCone(nl, gk.x, opt.maxLutInputs - 1);

  auto replaceWithLut = [&](GateId old) -> GateId {
    const Gate g = nl.gate(old);  // copy before removal
    assert(g.kind == CellKind::kXnor2 || g.kind == CellKind::kXor2);
    const NetId keyIn = g.fanin[1];  // delayed key tap
    const NetId outNet = g.out;

    const std::size_t n = cone.leaves.size();
    std::uint64_t mask = 0;
    for (std::uint64_t m = 0; m < (1ULL << (n + 1)); ++m) {
      const bool keyVal = (m >> n) & 1ULL;
      if (evalConeFunction(nl, cone, gk.x, g.kind, m, keyVal) == Logic::T)
        mask |= 1ULL << m;
    }
    nl.removeGate(old);
    std::vector<NetId> ins = cone.leaves;
    ins.push_back(keyIn);
    const GateId lut = nl.addLut(std::move(ins), outNet, mask);
    res.luts.push_back(lut);
    res.absorbedGates += static_cast<int>(cone.gates.size());
    return lut;
  };

  const GateId lutA = replaceWithLut(gk.xnorGate);
  const GateId lutB = replaceWithLut(gk.xorGate);
  gk.xnorGate = lutA;
  gk.xorGate = lutB;
  return res;
}

}  // namespace gkll
