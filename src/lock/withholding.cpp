#include "lock/withholding.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <vector>

#include "netlist/compiled.h"
#include "netlist/packed_eval.h"
#include "runtime/parallel.h"

namespace gkll {
namespace {

/// A combinational cone rooted at the GK's data net: `leaves` are the
/// (external) inputs, `gates` the absorbed cells (expansion order).
struct Cone {
  std::vector<NetId> leaves;
  std::vector<GateId> gates;
};

bool isAbsorbable(const Netlist& nl, NetId n) {
  const GateId d = nl.net(n).driver;
  if (d == kNoGate) return false;
  const Gate& g = nl.gate(d);
  return !isSourceKind(g.kind) && g.kind != CellKind::kDff &&
         g.kind != CellKind::kLut && g.kind != CellKind::kDelay;
}

/// Greedy cone growth: expand leaves breadth-first while the leaf count
/// stays within `maxLeaves`.  The root net `x` is always expanded first
/// when possible.
Cone growCone(const Netlist& nl, NetId x, int maxLeaves) {
  Cone cone;
  cone.leaves = {x};
  std::size_t head = 0;
  while (head < cone.leaves.size()) {
    const NetId leaf = cone.leaves[head];
    if (!isAbsorbable(nl, leaf)) {
      ++head;
      continue;
    }
    const Gate& g = nl.gate(nl.net(leaf).driver);
    const int newCount = static_cast<int>(cone.leaves.size()) - 1 +
                         static_cast<int>(g.fanin.size());
    if (newCount > maxLeaves) {
      ++head;
      continue;
    }
    // Replace this leaf with the gate's fanins (dedup against existing).
    cone.leaves.erase(cone.leaves.begin() + static_cast<long>(head));
    for (NetId in : g.fanin) {
      bool dup = false;
      for (NetId l : cone.leaves) dup |= (l == in);
      if (!dup) cone.leaves.push_back(in);
    }
    cone.gates.push_back(nl.net(leaf).driver);
    head = 0;  // restart: earlier leaves may now be expandable in budget
  }
  return cone;
}

/// Truth table of cone ∘ outer(root, key) over all 2^(n+1) assignments in
/// ONE packed evaluation: lane m is minterm m (leaf i = bit i of m, the
/// key = bit n).  With maxLutInputs <= 6 the whole table fits in the 64
/// lanes exactly — no per-assignment loop.
std::uint64_t coneLutMask(const CompiledNetlist& cn, const Cone& cone,
                          NetId root, CellKind outer) {
  const std::size_t n = cone.leaves.size();
  assert(n + 1 <= 6);
  // Binary-counting lane constants: leaf i reads 1 in exactly the lanes
  // whose index has bit i set.
  std::map<NetId, PackedBits> value;
  for (std::size_t i = 0; i <= n; ++i) {
    std::uint64_t bits = 0;
    for (std::uint64_t m = 0; m < 64; ++m)
      if ((m >> i) & 1ULL) bits |= 1ULL << m;
    if (i < n)
      value[cone.leaves[i]] = PackedBits{bits, 0};
    else
      value[kNoNet] = PackedBits{bits, 0};  // the key, addressed below
  }
  // The cone is recorded in expansion order; sorting by the compiled
  // view's dependency position makes a single forward pass sufficient.
  std::vector<GateId> order = cone.gates;
  std::sort(order.begin(), order.end(), [&](GateId a, GateId b) {
    return cn.topoPos(a) < cn.topoPos(b);
  });
  // One-word rows through the shared wide-cell helper (packed_eval.h):
  // the cone pass is the W == 1 case of the wide path, so it stays
  // byte-identical to the kernel the oracles sweep with.
  std::vector<const PackedBits*> insRows;
  for (GateId g : order) {
    insRows.clear();
    for (NetId in : cn.fanin(g)) insRows.push_back(&value.at(in));
    PackedBits out;
    evalWideCellRows(cn.kind(g), insRows, &out, 1, cn.lutMask(g));
    value[cn.out(g)] = out;
  }
  const PackedBits* outIns[] = {&value.at(root), &value.at(kNoNet)};
  PackedBits f;
  evalWideCellRows(outer, outIns, &f, 1);
  assert(f.x == 0 && "cone evaluation left X lanes");
  const std::uint64_t tableLanes =
      (n + 1) == 6 ? ~0ULL : ((1ULL << (1ULL << (n + 1))) - 1);
  return f.v & tableLanes;
}

}  // namespace

WithholdingResult withholdGk(Netlist& nl, GkInstance& gk,
                             const WithholdingOptions& opt) {
  WithholdingResult res;
  assert(opt.maxLutInputs >= 2 && opt.maxLutInputs <= 6);
  const Cone cone = growCone(nl, gk.x, opt.maxLutInputs - 1);
  // Compiled once, before any edit below: only topoPos/fanin/kind of the
  // (unmodified) cone gates are consulted afterwards.
  const CompiledNetlist cn = CompiledNetlist::compile(nl);

  auto replaceWithLut = [&](GateId old) -> GateId {
    const Gate g = nl.gate(old);  // copy before removal
    assert(g.kind == CellKind::kXnor2 || g.kind == CellKind::kXor2);
    const NetId keyIn = g.fanin[1];  // delayed key tap
    const NetId outNet = g.out;

    const std::uint64_t mask = coneLutMask(cn, cone, gk.x, g.kind);
    nl.removeGate(old);
    std::vector<NetId> ins = cone.leaves;
    ins.push_back(keyIn);
    const GateId lut = nl.addLut(std::move(ins), outNet, mask);
    res.luts.push_back(lut);
    res.absorbedGates += static_cast<int>(cone.gates.size());
    return lut;
  };

  const GateId lutA = replaceWithLut(gk.xnorGate);
  const GateId lutB = replaceWithLut(gk.xorGate);
  gk.xnorGate = lutA;
  gk.xorGate = lutB;
  return res;
}

std::vector<WithholdingResult> withholdAllGks(Netlist& nl,
                                              std::vector<GkInsertion>& ins,
                                              const WithholdingOptions& opt,
                                              runtime::ThreadPool* pool) {
  assert(opt.maxLutInputs >= 2 && opt.maxLutInputs <= 6);
  std::vector<WithholdingResult> results(ins.size());
  if (ins.empty()) return results;

  // --- plan: grow every cone against the un-edited netlist ------------------
  std::vector<Cone> cones;
  cones.reserve(ins.size());
  for (const GkInsertion& i : ins)
    cones.push_back(growCone(nl, i.gk.x, opt.maxLutInputs - 1));

  // The sequential loop grows GK j's cone on the netlist *after* GKs 0..j-1
  // were edited; those edits only swap each GK's own XNOR/XOR for a LUT.
  // A cone that never absorbs another GK's function gates therefore grows
  // identically pre- and post-edit — when one does, bail out to the loop.
  for (std::size_t j = 0; j < ins.size(); ++j) {
    for (const GateId g : cones[j].gates) {
      for (std::size_t i = 0; i < ins.size(); ++i) {
        if (i != j && (g == ins[i].gk.xnorGate || g == ins[i].gk.xorGate)) {
          for (std::size_t k = 0; k < ins.size(); ++k)
            results[k] = withholdGk(nl, ins[k].gk, opt);
          return results;
        }
      }
    }
  }

  // --- parallel mask computation over one compiled view ---------------------
  // coneLutMask is a pure function of (cn, cone, root, outer); mask slot
  // 2j / 2j+1 is owned by task j's XNOR / XOR gate, so the sweep is
  // deterministic at any thread count.
  const CompiledNetlist cn = CompiledNetlist::compile(nl);
  std::vector<std::uint64_t> masks(2 * ins.size());
  runtime::ParallelOptions popt;
  popt.pool = pool;
  runtime::parallelFor(
      2 * ins.size(),
      [&](std::size_t m) {
        const GkInstance& gk = ins[m / 2].gk;
        const GateId old = (m % 2 == 0) ? gk.xnorGate : gk.xorGate;
        masks[m] = coneLutMask(cn, cones[m / 2], gk.x, nl.gate(old).kind);
      },
      popt);

  // --- serial commit, byte-identical mutation order to the loop -------------
  for (std::size_t j = 0; j < ins.size(); ++j) {
    GkInstance& gk = ins[j].gk;
    WithholdingResult& res = results[j];
    auto swapInLut = [&](GateId old, std::uint64_t mask) -> GateId {
      const Gate g = nl.gate(old);  // copy before removal
      assert(g.kind == CellKind::kXnor2 || g.kind == CellKind::kXor2);
      const NetId keyIn = g.fanin[1];
      const NetId outNet = g.out;
      nl.removeGate(old);
      std::vector<NetId> lutIns = cones[j].leaves;
      lutIns.push_back(keyIn);
      const GateId lut = nl.addLut(std::move(lutIns), outNet, mask);
      res.luts.push_back(lut);
      res.absorbedGates += static_cast<int>(cones[j].gates.size());
      return lut;
    };
    gk.xnorGate = swapInLut(gk.xnorGate, masks[2 * j]);
    gk.xorGate = swapInLut(gk.xorGate, masks[2 * j + 1]);
  }
  return results;
}

}  // namespace gkll
