#include "lock/antisat.h"

#include <cassert>

#include "netlist/netlist_ops.h"
#include "util/rng.h"

namespace gkll {

LockedDesign antiSatLock(const Netlist& original, const AntiSatOptions& opt) {
  LockedDesign ld;
  ld.scheme = "antisat";
  std::vector<NetId> netMap;
  ld.netlist = cloneNetlist(original, netMap);
  Netlist& nl = ld.netlist;
  nl.setName(original.name() + "_antisat");
  const int n = opt.numInputBits;
  assert(n >= 2 && "the complement tree needs at least two bits");
  assert(static_cast<int>(nl.inputs().size()) >= n);
  assert(!nl.outputs().empty());

  Rng rng(opt.seed);
  // The correct key has KA == KB (element-wise): pick KA at random.
  std::vector<int> ka(static_cast<std::size_t>(n));
  for (int& b : ka) b = rng.flip() ? 1 : 0;

  std::vector<NetId> keysA, keysB;
  for (int i = 0; i < n; ++i)
    keysA.push_back(nl.addPI("keyin_a" + std::to_string(i)));
  for (int i = 0; i < n; ++i)
    keysB.push_back(nl.addPI("keyin_b" + std::to_string(i)));

  auto xorTree = [&](const std::vector<NetId>& keys) {
    std::vector<NetId> bits;
    for (int i = 0; i < n; ++i) {
      const NetId x = nl.inputs()[static_cast<std::size_t>(i)];
      const NetId b = nl.addNet();
      nl.addGate(CellKind::kXor2, {x, keys[static_cast<std::size_t>(i)]}, b);
      bits.push_back(b);
    }
    return bits;
  };
  auto andReduce = [&](const std::vector<NetId>& bits, bool invertLast) {
    NetId acc = bits[0];
    for (std::size_t i = 1; i < bits.size(); ++i) {
      const NetId next = nl.addNet();
      const bool last = i + 1 == bits.size();
      nl.addGate(last && invertLast ? CellKind::kNand2 : CellKind::kAnd2,
                 {acc, bits[i]}, next);
      acc = next;
    }
    return acc;
  };

  const NetId g = andReduce(xorTree(keysA), false);      // g(X ^ KA)
  const NetId gbar = andReduce(xorTree(keysB), true);    // !g(X ^ KB)
  const NetId y = nl.addNet("antisat_y");
  nl.addGate(CellKind::kAnd2, {g, gbar}, y);

  const NetId po = nl.outputs()[0];
  const NetId poEnc = nl.addNet(nl.net(po).name + "_as");
  nl.rewireReaders(po, poEnc);
  nl.addGate(CellKind::kXor2, {po, y}, poEnc);

  ld.keyInputs = keysA;
  ld.keyInputs.insert(ld.keyInputs.end(), keysB.begin(), keysB.end());
  ld.correctKey = ka;
  ld.correctKey.insert(ld.correctKey.end(), ka.begin(), ka.end());
  assert(!nl.validate().has_value());
  return ld;
}

}  // namespace gkll
