// The paper's contribution: the Glitch Key-gate (Sec. II) and its KEYGEN
// (Sec. II-B), as structural netlist builders.
//
// GK structure (Fig. 3(a)):
//
//            +--DELAY(A)--> XNOR(x,.) --+
//   key -----+                          +--> MUX(sel=key) --> y
//            +--DELAY(B)--> XOR(x,.) ---+
//
// With a constant key the selected gate sees the settled (equal) key value
// and acts as an inverter of x (Fig. 3(b) swaps XNOR/XOR and acts as a
// buffer).  A key *transition* retargets the MUX while the delayed key is
// still stale, producing a glitch at the old gate's output polarity — for
// variant (a) the glitch level equals x on both rising and falling
// transitions, i.e. the GK briefly acts as a buffer.
//
// KEYGEN structure (Fig. 5): a toggle flop (D = !Q) produces one
// transition per clock cycle; a simplified Adjustable Delay Buffer (two
// delay taps + a 4:1 MUX built from three MUX2s) selected by the key bits
// (k1, k2) emits, in Fig. 6 order:
//   (0,0) constant 0   (0,1) transition shifted by trigDelayA
//   (1,0) transition shifted by trigDelayB   (1,1) constant 1.
//
// The key of one GK is therefore the pair (k1, k2); the secret is *which*
// of the four behaviours — and hence which trigger timing — is correct.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.h"
#include "timing/gk_constraints.h"

namespace gkll {

/// The four KEYGEN behaviours, in (k1,k2) binary order (Fig. 6).
enum class GkBehavior { kConst0 = 0, kTrigA = 1, kTrigB = 2, kConst1 = 3 };

/// The (k1, k2) assignment selecting a behaviour.
std::pair<int, int> keyBitsFor(GkBehavior b);

/// Structural parameters of one GK + KEYGEN insertion.
struct GkParams {
  /// false: Fig. 3(a) — inverter on constant key, buffer-level glitch.
  /// true:  Fig. 3(b) — buffer on constant key, inverter-level glitch.
  bool bufferVariant = false;
  Ps gkDelayA = ns(1);    ///< ideal delay element A inside the GK
  Ps gkDelayB = ns(1);    ///< ideal delay element B inside the GK
  Ps trigDelayA = 0;      ///< KEYGEN ADB tap A (trigger-time shift)
  Ps trigDelayB = 0;      ///< KEYGEN ADB tap B
  GkBehavior correct = GkBehavior::kTrigB;  ///< the secret behaviour
};

/// Gates/nets of one GK proper.
struct GkInstance {
  NetId x = kNoNet;       ///< encrypted data net (GK input)
  NetId y = kNoNet;       ///< GK output net
  NetId keyNet = kNoNet;  ///< key input net (driven by the KEYGEN)
  GateId delayA = kNoGate;
  GateId delayB = kNoGate;
  GateId xnorGate = kNoGate;
  GateId xorGate = kNoGate;
  GateId muxGate = kNoGate;
  bool bufferVariant = false;
};

/// Gates/nets of one KEYGEN.
struct KeygenInstance {
  NetId k1 = kNoNet;  ///< key-input PI (MSB of the behaviour selector)
  NetId k2 = kNoNet;  ///< key-input PI (LSB)
  NetId keyOut = kNoNet;
  GateId toggleFf = kNoGate;
  Ps trigDelayA = 0;
  Ps trigDelayB = 0;
  /// Every gate of the KEYGEN (for stripping before a SAT attack).
  std::vector<GateId> allGates;
};

/// One complete insertion: GK + its KEYGEN + the secret behaviour.
struct GkInsertion {
  GkInstance gk;
  KeygenInstance keygen;
  GkBehavior correct = GkBehavior::kTrigB;
};

/// Analytic timing view of a GK instance (feeds Eqs. (2)-(6)).
GkTiming gkTiming(const GkParams& p,
                  const CellLibrary& lib = CellLibrary::tsmc013c());

/// Key-transition arrival time at the GK key pin, relative to the clock
/// edge that toggles the KEYGEN flop: clkToQ + trigDelay + 2 MUX delays.
Ps keygenTriggerTime(Ps trigDelay,
                     const CellLibrary& lib = CellLibrary::tsmc013c());

/// The earliest trigger any KEYGEN can realise (a zero-length tap).
Ps keygenEarliestTrigger(const CellLibrary& lib = CellLibrary::tsmc013c());

/// The ADB tap delay needed for a key transition at `trigger` (relative to
/// the clock edge).  Returns a negative value when the trigger is earlier
/// than keygenEarliestTrigger() (infeasible).
Ps keygenTapForTrigger(Ps trigger,
                       const CellLibrary& lib = CellLibrary::tsmc013c());

/// Build a GK that encrypts the D pin of flop `ff`: only the flop's input
/// is re-routed through the GK (other readers of the original net are
/// untouched).  Also builds the KEYGEN and wires its key_out to the GK.
/// `prefix` names the created nets (e.g. "gk0").
GkInsertion insertGkAtFlop(Netlist& nl, GateId ff, const GkParams& p,
                           const std::string& prefix);

/// Build only the GK structure, splicing in front of *all* readers of
/// `target`, with an externally supplied key net (used by unit tests and
/// by the withholding wrapper).
GkInstance buildGk(Netlist& nl, NetId target, NetId keyNet, bool bufferVariant,
                   Ps delayA, Ps delayB, const std::string& prefix);

/// Attack-surface preparation (paper Sec. VI): return a copy of `locked`
/// with every KEYGEN removed and each GK key net exposed as a fresh
/// primary input.  `gkKeys` receives those nets (one per insertion), which
/// the SAT attack then treats as the design's key inputs.
/// `netMapOut`, when non-null, receives the locked-net -> stripped-net
/// mapping (kNoNet for nets that did not survive).
Netlist stripKeygens(const Netlist& locked,
                     const std::vector<GkInsertion>& insertions,
                     std::vector<NetId>& gkKeys,
                     std::vector<NetId>* netMapOut = nullptr);

}  // namespace gkll
