#include "lock/sarlock.h"

#include <cassert>

#include "netlist/netlist_ops.h"
#include "util/rng.h"

namespace gkll {

LockedDesign sarLock(const Netlist& original, const SarLockOptions& opt) {
  LockedDesign ld;
  ld.scheme = "sarlock";
  std::vector<NetId> netMap;
  ld.netlist = cloneNetlist(original, netMap);
  Netlist& nl = ld.netlist;
  nl.setName(original.name() + "_sarlock");
  assert(static_cast<int>(nl.inputs().size()) >= opt.numKeyBits);
  assert(!nl.outputs().empty());

  Rng rng(opt.seed);
  std::vector<int> correct;
  std::vector<NetId> keys;
  for (int i = 0; i < opt.numKeyBits; ++i) {
    keys.push_back(nl.addPI("keyin_s" + std::to_string(i)));
    correct.push_back(rng.flip() ? 1 : 0);
  }

  // eq = AND_i XNOR(x_i, k_i)  — comparator X == K.
  NetId eq = kNoNet;
  for (int i = 0; i < opt.numKeyBits; ++i) {
    const NetId x = nl.inputs()[static_cast<std::size_t>(i)];
    const NetId bit = nl.addNet();
    nl.addGate(CellKind::kXnor2, {x, keys[static_cast<std::size_t>(i)]}, bit);
    if (eq == kNoNet) {
      eq = bit;
    } else {
      const NetId acc = nl.addNet();
      nl.addGate(CellKind::kAnd2, {eq, bit}, acc);
      eq = acc;
    }
  }

  // wrong = NOT(AND_i XNOR(k_i, correct_i)) — mask off the correct key.
  NetId match = kNoNet;
  for (int i = 0; i < opt.numKeyBits; ++i) {
    const NetId cbit = nl.constNet(correct[static_cast<std::size_t>(i)] != 0);
    const NetId bit = nl.addNet();
    nl.addGate(CellKind::kXnor2, {keys[static_cast<std::size_t>(i)], cbit}, bit);
    if (match == kNoNet) {
      match = bit;
    } else {
      const NetId acc = nl.addNet();
      nl.addGate(CellKind::kAnd2, {match, bit}, acc);
      match = acc;
    }
  }
  const NetId wrong = nl.addNet("sar_wrongkey");
  nl.addGate(CellKind::kInv, {match}, wrong);

  const NetId flip = nl.addNet("sar_flip");
  nl.addGate(CellKind::kAnd2, {eq, wrong}, flip);

  // XOR the flip into the first primary output.
  const NetId po = nl.outputs()[0];
  const NetId poEnc = nl.addNet(nl.net(po).name + "_sar");
  nl.rewireReaders(po, poEnc);
  nl.addGate(CellKind::kXor2, {po, flip}, poEnc);

  ld.keyInputs = std::move(keys);
  ld.correctKey = std::move(correct);
  assert(!nl.validate().has_value());
  return ld;
}

}  // namespace gkll
