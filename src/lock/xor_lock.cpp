#include "lock/xor_lock.h"

#include <cassert>

#include "netlist/netlist_ops.h"
#include "util/rng.h"

namespace gkll {

void xorLockInPlace(Netlist& nl, int numKeyBits, Rng& rng,
                    std::vector<NetId>& keyInputs, std::vector<int>& correctKey,
                    const std::string& namePrefix,
                    std::vector<NetId> candidates, bool shuffleCandidates) {
  // Default candidate nets: outputs of combinational gates (never FF Q
  // pins, so the locked netlist stays a clean sequential design), and
  // never ideal delay elements (locking inside a delay chain would corrupt
  // GK timing).
  if (candidates.empty()) {
    for (NetId n = 0; n < nl.numNets(); ++n) {
      const GateId d = nl.net(n).driver;
      if (d == kNoGate) continue;
      const CellKind k = nl.gate(d).kind;
      if (isSourceKind(k) || k == CellKind::kDff || k == CellKind::kDelay)
        continue;
      candidates.push_back(n);
    }
  }
  assert(static_cast<int>(candidates.size()) >= numKeyBits);
  if (shuffleCandidates) rng.shuffle(candidates);

  for (int i = 0; i < numKeyBits; ++i) {
    const NetId target = candidates[static_cast<std::size_t>(i)];
    const bool useXnor = rng.flip();
    const NetId key =
        nl.addPI(namePrefix + std::to_string(keyInputs.size()));
    const NetId locked = nl.addNet(nl.net(target).name + "_enc");
    nl.rewireReaders(target, locked);
    nl.addGate(useXnor ? CellKind::kXnor2 : CellKind::kXor2, {target, key},
               locked);
    keyInputs.push_back(key);
    correctKey.push_back(useXnor ? 1 : 0);
  }
}

LockedDesign xorLock(const Netlist& original, const XorLockOptions& opt) {
  LockedDesign ld;
  ld.scheme = "xor";
  std::vector<NetId> netMap;
  ld.netlist = cloneNetlist(original, netMap);
  ld.netlist.setName(original.name() + "_xorlock");
  Rng rng(opt.seed);
  xorLockInPlace(ld.netlist, opt.numKeyBits, rng, ld.keyInputs, ld.correctKey);
  assert(!ld.netlist.validate().has_value());
  return ld;
}

}  // namespace gkll
