// Tunable Delay Key-gate (Xie et al., "Delay Locking", DAC'17 [12]) —
// the timing-based predecessor the paper's Fig. 2 reviews and improves on.
//
// A TDK is a functional XOR key gate (functional key k1) followed by a
// Tunable Delay Buffer: a MUX (delay key k2) choosing between a short and
// a long delay path.  The wrong k2 either adds enough delay to violate
// setup or removes expected delay and violates hold.  Unlike the GK, the
// TDB is *removable*: stripping it and re-synthesising restores a working
// (SAT-attackable) circuit — the weakness Sec. I points out and that
// attack/enhanced_removal demonstrates.
#pragma once

#include <cstdint>

#include "lock/locking.h"
#include "util/time_types.h"

namespace gkll {

struct TdkOptions {
  int numTdks = 4;          ///< 2 key bits each (k1 functional, k2 delay)
  Ps shortDelay = 200;      ///< TDB fast path
  Ps longDelay = ns(3);     ///< TDB slow path
  std::uint64_t seed = 4;
};

/// One inserted TDK instance (indices into LockedDesign::keyInputs).
struct TdkInstance {
  std::size_t k1Index = 0;  ///< functional key bit
  std::size_t k2Index = 0;  ///< delay key bit
  GateId tdbMux = kNoGate;  ///< the tunable-delay MUX (removal target)
  GateId flop = kNoGate;    ///< capture flop of the locked path
};

struct TdkLockResult {
  LockedDesign design;
  std::vector<TdkInstance> instances;
};

/// Insert TDKs in front of randomly chosen flops.  The correct k2 per
/// instance is chosen so the path meets setup/hold at `clockPeriod`.
TdkLockResult tdkLock(const Netlist& original, const TdkOptions& opt,
                      Ps clockPeriod);

}  // namespace gkll
