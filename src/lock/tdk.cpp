#include "lock/tdk.h"

#include <cassert>

#include "netlist/netlist_ops.h"
#include "timing/sta.h"
#include "util/rng.h"

namespace gkll {

TdkLockResult tdkLock(const Netlist& original, const TdkOptions& opt,
                      Ps clockPeriod) {
  TdkLockResult res;
  LockedDesign& ld = res.design;
  ld.scheme = "tdk";
  std::vector<NetId> netMap;
  ld.netlist = cloneNetlist(original, netMap);
  Netlist& nl = ld.netlist;
  nl.setName(original.name() + "_tdk");

  // Fig. 2(c) scenario: the correct delay key selects the *short* path
  // (which fits the slack); the wrong key switches in the long path, whose
  // extra delay exceeds the flop's setup slack and breaks timing.  So we
  // want flops whose setup slack absorbs shortDelay+mux but not longDelay.
  Sta sta(nl, StaConfig{clockPeriod});
  const StaResult timing = sta.run();
  const Ps margin =
      sta.library().maxDelay(CellKind::kMux2) + sta.library().maxDelay(CellKind::kXor2) + 100;

  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < nl.flops().size(); ++i) {
    if (timing.setupSlack[i] > opt.shortDelay + margin &&
        timing.setupSlack[i] < opt.longDelay + margin)
      candidates.push_back(i);
  }
  // Fallback: flops where at least the short path fits (wrong keys then
  // corrupt function via k1 but not timing) — keeps insertion count up on
  // slack-rich designs.
  if (static_cast<int>(candidates.size()) < opt.numTdks) {
    for (std::size_t i = 0; i < nl.flops().size(); ++i) {
      if (timing.setupSlack[i] >= opt.longDelay + margin) candidates.push_back(i);
    }
  }
  Rng rng(opt.seed);
  rng.shuffle(candidates);
  const int count = std::min<int>(opt.numTdks, static_cast<int>(candidates.size()));

  // Snapshot flop gate ids: inserting gates does not invalidate GateIds.
  const std::vector<GateId> flops = nl.flops();

  for (int t = 0; t < count; ++t) {
    const GateId ff = flops[candidates[static_cast<std::size_t>(t)]];
    const NetId d = nl.gate(ff).fanin[0];

    const NetId k1 = nl.addPI("keyin_t" + std::to_string(t) + "_f");
    const NetId k2 = nl.addPI("keyin_t" + std::to_string(t) + "_d");
    const bool useXnor = rng.flip();

    // Functional key gate on the D path.
    const NetId xored = nl.addNet();
    nl.addGate(useXnor ? CellKind::kXnor2 : CellKind::kXor2, {d, k1}, xored);

    // Tunable Delay Buffer: MUX(k2, short, long).
    const NetId slow = nl.addNet();
    nl.addDelay(xored, slow, opt.longDelay);
    const NetId fast = nl.addNet();
    nl.addDelay(xored, fast, opt.shortDelay);
    const NetId y = nl.addNet();
    const GateId mux = nl.addGate(CellKind::kMux2, {k2, fast, slow}, y);
    nl.replaceFanin(ff, d, y);

    TdkInstance inst;
    inst.k1Index = ld.keyInputs.size();
    ld.keyInputs.push_back(k1);
    ld.correctKey.push_back(useXnor ? 1 : 0);
    inst.k2Index = ld.keyInputs.size();
    ld.keyInputs.push_back(k2);
    // Correct delay key selects the short path (MUX input 1, k2 = 0).
    ld.correctKey.push_back(0);
    inst.tdbMux = mux;
    inst.flop = ff;
    res.instances.push_back(inst);
  }
  assert(!nl.validate().has_value());
  return res;
}

}  // namespace gkll
