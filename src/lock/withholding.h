// Design withholding (Khaleghi et al. [5], Liu et al. [6]; paper Sec. V-D,
// Fig. 10): the defence that hides a GK's gate-level structure inside a
// lookup table whose contents live in tamper-proof storage.
//
// Each of the GK's XNOR/XOR gates becomes a kLut cell computing the same
// function.  When the encrypted net's driver cone is small enough, it is
// absorbed into the LUT ("reusing an AND gate from the encrypted path",
// Fig. 10(b)) — and, per the paper's "we can encrypt the GK with more
// gates into LUT to elevate the security level", the absorption is
// greedy up to a configurable LUT width: every absorbed gate multiplies
// the candidate functions an attacker must consider.  Attack code in
// this repository honours the withholding contract: structural matchers
// may look at LUT *shape* but never at lutMask.
#pragma once

#include <vector>

#include "lock/glitch_keygate.h"
#include "netlist/netlist.h"
#include "runtime/pool.h"

namespace gkll {

struct WithholdingOptions {
  /// Total LUT width budget (data leaves + 1 key tap).  3 reproduces
  /// Fig. 10(b)'s single-gate reuse; up to 6 absorbs whole subcones.
  int maxLutInputs = 3;
};

struct WithholdingResult {
  std::vector<GateId> luts;  ///< the LUTs now implementing the GK gates
  int absorbedGates = 0;     ///< path gates folded in (across both LUTs)
};

/// Hide the two function gates of a GK inside LUTs (in place).  The GK's
/// MUX and delay elements stay visible — they are timing, not function.
WithholdingResult withholdGk(Netlist& nl, GkInstance& gk,
                             const WithholdingOptions& opt = {});

/// Batch form: withhold every GK of the flow at once.  Plans all cones and
/// computes the 2N LUT masks in parallel over a single compiled view, then
/// commits the netlist edits serially in insertion order — the resulting
/// netlist is identical to calling withholdGk in a loop.  When one GK's
/// cone would absorb another GK's function gates (the only case where the
/// per-GK recompile of the sequential loop can change an answer), the
/// whole batch falls back to that loop.  Returns one result per insertion.
std::vector<WithholdingResult> withholdAllGks(
    Netlist& nl, std::vector<GkInsertion>& insertions,
    const WithholdingOptions& opt = {}, runtime::ThreadPool* pool = nullptr);

}  // namespace gkll
