#include "lock/locking.h"

#include <cassert>

#include "netlist/netlist_ops.h"

namespace gkll {

Netlist applyKey(const Netlist& locked, const std::vector<NetId>& keyInputs,
                 const std::vector<int>& keyBits) {
  assert(keyInputs.size() == keyBits.size());
  std::vector<NetId> netMap;
  Netlist nl = cloneNetlist(locked, netMap);
  for (std::size_t i = 0; i < keyInputs.size(); ++i) {
    const NetId kn = netMap[keyInputs[i]];
    const GateId input = nl.net(kn).driver;
    assert(input != kNoGate && nl.gate(input).kind == CellKind::kInput);
    nl.removeGate(input);
    nl.unregisterPI(kn);
    nl.addGate(keyBits[i] != 0 ? CellKind::kConst1 : CellKind::kConst0, {}, kn);
  }
  assert(!nl.validate().has_value());
  return nl;
}

}  // namespace gkll
