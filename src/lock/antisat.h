// Anti-SAT (Xie & Srivastava [13]) — the second SAT-attack-resistant
// baseline the paper discusses.
//
// Two complementary blocks g(X xor KA) and !g(X xor KB) (g = AND tree)
// feed an AND gate: with the correct keys (KA == KB) the output Y is
// constantly 0; with wrong keys Y is 1 on a tiny fraction of inputs, so
// each DIP eliminates few keys and SAT-attack effort grows exponentially
// in the key width.  Like SARLock, the block's near-constant output makes
// it locatable by signal-probability analysis (removal attack).
#pragma once

#include <cstdint>

#include "lock/locking.h"

namespace gkll {

struct AntiSatOptions {
  int numInputBits = 8;  ///< n: width of each half; total key bits = 2n
  std::uint64_t seed = 3;
};

/// Attach an Anti-SAT block (type-0: g = AND tree) to a copy of `original`.
LockedDesign antiSatLock(const Netlist& original, const AntiSatOptions& opt);

}  // namespace gkll
