#include "lock/glitch_keygate.h"

#include <algorithm>
#include <cassert>

namespace gkll {

std::pair<int, int> keyBitsFor(GkBehavior b) {
  const int v = static_cast<int>(b);
  return {(v >> 1) & 1, v & 1};
}

GkTiming gkTiming(const GkParams& p, const CellLibrary& lib) {
  GkTiming t;
  // PathA = delay element A + the gate it feeds (XNOR in variant (a),
  // XOR in variant (b)); PathB symmetrically.
  const Ps xnorD = lib.maxDelay(CellKind::kXnor2);
  const Ps xorD = lib.maxDelay(CellKind::kXor2);
  t.dPathA = p.gkDelayA + (p.bufferVariant ? xorD : xnorD);
  t.dPathB = p.gkDelayB + (p.bufferVariant ? xnorD : xorD);
  t.dMux = lib.maxDelay(CellKind::kMux2);
  return t;
}

Ps keygenTriggerTime(Ps trigDelay, const CellLibrary& lib) {
  return lib.clkToQ() + trigDelay + 2 * lib.maxDelay(CellKind::kMux2);
}

Ps keygenEarliestTrigger(const CellLibrary& lib) {
  return keygenTriggerTime(0, lib);
}

Ps keygenTapForTrigger(Ps trigger, const CellLibrary& lib) {
  return trigger - keygenEarliestTrigger(lib);
}

GkInstance buildGk(Netlist& nl, NetId target, NetId keyNet, bool bufferVariant,
                   Ps delayA, Ps delayB, const std::string& prefix) {
  GkInstance gk;
  gk.x = target;
  gk.keyNet = keyNet;
  gk.bufferVariant = bufferVariant;

  const NetId aOut = nl.addNet(prefix + "_aout");
  const NetId bOut = nl.addNet(prefix + "_bout");
  gk.delayA = nl.addDelay(keyNet, aOut, delayA);
  gk.delayB = nl.addDelay(keyNet, bOut, delayB);

  // Variant (a): upper gate (selected by key = 0) is the XNOR fed by A.
  // Variant (b) swaps the two gate kinds (Fig. 3(b)).
  const NetId upper = nl.addNet(prefix + "_up");
  const NetId lower = nl.addNet(prefix + "_lo");
  if (!bufferVariant) {
    gk.xnorGate = nl.addGate(CellKind::kXnor2, {target, aOut}, upper);
    gk.xorGate = nl.addGate(CellKind::kXor2, {target, bOut}, lower);
  } else {
    gk.xorGate = nl.addGate(CellKind::kXor2, {target, aOut}, upper);
    gk.xnorGate = nl.addGate(CellKind::kXnor2, {target, bOut}, lower);
  }

  gk.y = nl.addNet(prefix + "_y");
  gk.muxGate = nl.addGate(CellKind::kMux2, {keyNet, upper, lower}, gk.y);
  return gk;
}

namespace {

KeygenInstance buildKeygen(Netlist& nl, Ps trigDelayA, Ps trigDelayB,
                           const std::string& prefix) {
  KeygenInstance kg;
  kg.trigDelayA = trigDelayA;
  kg.trigDelayB = trigDelayB;
  kg.k1 = nl.addPI(prefix + "_k1");
  kg.k2 = nl.addPI(prefix + "_k2");

  // Toggle flop: q = DFF(!q) produces one transition every clock cycle.
  const NetId q = nl.addNet(prefix + "_q");
  const NetId d = nl.addNet(prefix + "_d");
  const GateId inv = nl.addGate(CellKind::kInv, {q}, d);
  kg.toggleFf = nl.addGate(CellKind::kDff, {d}, q);

  // Simplified ADB: taps at trigDelayA / trigDelayB, 4:1 MUX from three
  // MUX2s, Fig. 6 input order {0, tapA, tapB, 1}.
  const NetId tapA = nl.addNet(prefix + "_tapa");
  const GateId dA = nl.addDelay(q, tapA, trigDelayA);
  const NetId tapB = nl.addNet(prefix + "_tapb");
  const GateId dB = nl.addDelay(q, tapB, trigDelayB);
  const NetId c0 = nl.constNet(false);
  const NetId c1 = nl.constNet(true);

  const NetId m0 = nl.addNet(prefix + "_m0");
  const GateId mux0 = nl.addGate(CellKind::kMux2, {kg.k2, c0, tapA}, m0);
  const NetId m1 = nl.addNet(prefix + "_m1");
  const GateId mux1 = nl.addGate(CellKind::kMux2, {kg.k2, tapB, c1}, m1);
  kg.keyOut = nl.addNet(prefix + "_keyout");
  const GateId muxT = nl.addGate(CellKind::kMux2, {kg.k1, m0, m1}, kg.keyOut);

  kg.allGates = {inv, kg.toggleFf, dA, dB, mux0, mux1, muxT};
  return kg;
}

}  // namespace

GkInsertion insertGkAtFlop(Netlist& nl, GateId ff, const GkParams& p,
                           const std::string& prefix) {
  GkInsertion ins;
  ins.correct = p.correct;
  ins.keygen = buildKeygen(nl, p.trigDelayA, p.trigDelayB, prefix + "_kg");

  const NetId d = nl.gate(ff).fanin[0];
  ins.gk = buildGk(nl, d, ins.keygen.keyOut, p.bufferVariant, p.gkDelayA,
                   p.gkDelayB, prefix);
  // Only the flop's D pin is re-routed through the GK.
  nl.replaceFanin(ff, d, ins.gk.y);
  return ins;
}

Netlist stripKeygens(const Netlist& locked,
                     const std::vector<GkInsertion>& insertions,
                     std::vector<NetId>& gkKeys,
                     std::vector<NetId>* netMapOut) {
  // Gates to drop: the backward cone of each GK key net — the whole
  // KEYGEN, including any buffer/inverter chains re-synthesis put in place
  // of the ideal delay elements.  Constants and primary inputs stay (they
  // may be shared); the k1/k2 PIs are dropped explicitly.
  std::vector<bool> dropGate(locked.numGates(), false);
  std::vector<bool> dropPI(locked.numNets(), false);
  for (const GkInsertion& ins : insertions) {
    dropPI[ins.keygen.k1] = true;
    dropPI[ins.keygen.k2] = true;
    std::vector<GateId> stack;
    const GateId root = locked.net(ins.gk.keyNet).driver;
    assert(root != kNoGate);
    stack.push_back(root);
    while (!stack.empty()) {
      const GateId g = stack.back();
      stack.pop_back();
      if (dropGate[g]) continue;
      const Gate& gg = locked.gate(g);
      if (isSourceKind(gg.kind)) continue;  // constants / k1,k2 stay here
      dropGate[g] = true;
      for (NetId in : gg.fanin) {
        const GateId d = locked.net(in).driver;
        if (d != kNoGate) stack.push_back(d);
      }
    }
  }

  Netlist out(locked.name() + "_attack");
  // A net survives if its driver survives, it becomes a key input, or it
  // is an input/constant still referenced.  Build the net set first.
  std::vector<NetId> netMap(locked.numNets(), kNoNet);
  auto mapNet = [&](NetId n) {
    if (netMap[n] == kNoNet) netMap[n] = out.addNet(locked.net(n).name);
    return netMap[n];
  };

  for (GateId g = 0; g < locked.numGates(); ++g) {
    const Gate& gg = locked.gate(g);
    if (gg.out == kNoNet && gg.fanin.empty()) continue;  // tombstone
    if (dropGate[g]) continue;
    if (gg.kind == CellKind::kInput && dropPI[gg.out]) continue;
    if (gg.kind == CellKind::kInput) {
      out.addGate(CellKind::kInput, {}, mapNet(gg.out));
      continue;
    }
    std::vector<NetId> fanin;
    fanin.reserve(gg.fanin.size());
    for (NetId in : gg.fanin) fanin.push_back(mapNet(in));
    const GateId ng = out.addGate(gg.kind, std::move(fanin), mapNet(gg.out));
    out.gate(ng).drive = gg.drive;
    out.gate(ng).delayPs = gg.delayPs;
    out.gate(ng).lutMask = gg.lutMask;
  }

  // Expose the key nets as primary inputs.
  gkKeys.clear();
  for (const GkInsertion& ins : insertions) {
    const NetId kn = mapNet(ins.gk.keyNet);
    assert(out.net(kn).driver == kNoGate);
    out.addGate(CellKind::kInput, {}, kn);
    gkKeys.push_back(kn);
  }

  // Rebuild the interface lists: original PIs (minus dropped ones) first,
  // then the exposed key nets.
  for (NetId pi : locked.inputs()) {
    if (dropPI[pi]) continue;
    out.registerPI(netMap[pi]);
  }
  for (NetId kn : gkKeys) out.registerPI(kn);
  for (NetId po : locked.outputs()) out.appendPO(netMap[po]);
  assert(!out.validate().has_value());
  if (netMapOut) *netMapOut = std::move(netMap);
  return out;
}

}  // namespace gkll
