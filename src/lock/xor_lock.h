// Classic XOR/XNOR logic locking (EPIC, Roy et al. [9]; paper Fig. 1).
//
// Each key gate is an XOR (correct key bit 0) or XNOR (correct key bit 1)
// spliced into a randomly chosen internal net; under the correct key every
// key gate degenerates to a buffer and the circuit computes its original
// function.  This is both a baseline the paper compares against (SAT
// attack cracks it) and one half of the hybrid XOR+GK scheme of Table II.
#pragma once

#include <cstdint>
#include <string>

#include "lock/locking.h"

namespace gkll {

struct XorLockOptions {
  int numKeyBits = 8;
  std::uint64_t seed = 1;
};

/// Insert `numKeyBits` XOR/XNOR key gates at random internal nets.
LockedDesign xorLock(const Netlist& original, const XorLockOptions& opt);

class Rng;

/// In-place variant used by the hybrid XOR+GK flow (Table II, last column):
/// splices key gates directly into `nl`, appending to keyInputs/correctKey.
/// `namePrefix` keeps key-input names unique across schemes.
/// When `candidates` is non-empty, key gates are only spliced into those
/// nets (the GK flow passes slack-filtered nets so hybrid locking never
/// breaks the original clock period); otherwise any combinational net
/// qualifies.  With `shuffleCandidates` false the caller's priority order
/// is honoured (the hybrid flow puts GK-path nets first).
void xorLockInPlace(Netlist& nl, int numKeyBits, Rng& rng,
                    std::vector<NetId>& keyInputs, std::vector<int>& correctKey,
                    const std::string& namePrefix = "keyin_x",
                    std::vector<NetId> candidates = {},
                    bool shuffleCandidates = true);

}  // namespace gkll
