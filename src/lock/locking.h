// Common types shared by all logic-locking schemes.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace gkll {

/// A locked design: the encrypted netlist plus its key metadata.
///
/// Key inputs are ordinary primary-input nets appended to the netlist (so
/// a locked netlist is a plain netlist an attacker can analyse), together
/// with the correct key bit per input.  Schemes with transition keys (GK)
/// additionally carry scheme-specific metadata in their own result types;
/// the bits here are the KEYGEN selection bits (k1, k2) per GK.
struct LockedDesign {
  Netlist netlist;
  std::vector<NetId> keyInputs;
  std::vector<int> correctKey;  ///< one 0/1 per entry of keyInputs
  std::string scheme;
};

/// Return a copy of `locked` with the listed key-input nets re-driven by
/// constants (the nets leave the PI list).  This is "programming the key"
/// — the result is a plain netlist with the original PI interface, ready
/// for equivalence checks against the original design.
Netlist applyKey(const Netlist& locked, const std::vector<NetId>& keyInputs,
                 const std::vector<int>& keyBits);

}  // namespace gkll
