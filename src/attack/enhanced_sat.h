// Enhanced (timing-aware) SAT attack, after Ho et al.'s Timed
// Characteristic Functions [3] — paper Sec. V-B.
//
// TCF extends CNF with timing: every net carries its *stable* value plus
// arrival-time reasoning, which suffices to generate two-pattern tests for
// delay defects (and would crack pure delay locking like the TDK's delay
// key).  What TCF cannot express is the value carried *on a glitch*: a
// glitch is a momentary level between transitions; the characteristic
// function only constrains values once stable.  This module implements
// the stable-value timed model and demonstrates the gap operationally:
// it asks a SAT solver for any constant key under which the timed model
// reproduces the chip's (timing-oracle) captures — for GK-locked designs
// the answer is UNSAT with a handful of samples.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/oracle.h"
#include "netlist/netlist.h"

namespace gkll {

namespace runtime {
class ThreadPool;
}

struct EnhancedSatOptions {
  int samples = 16;        ///< random (PI, state) probes of the chip
  std::uint64_t seed = 23;
  /// Pool for the oracle probe phase: the stimuli are pre-drawn serially
  /// (keeping the RNG stream intact) and answered through
  /// TimingOracle::queryBatch, one cached sim session per lane.  null =
  /// the global pool; a 1-lane pool degenerates to the serial loop.
  /// Results are byte-identical regardless — queryBatch's contract.
  runtime::ThreadPool* pool = nullptr;
};

struct EnhancedSatResult {
  bool modelConsistent = false;  ///< a key exists explaining all captures
  int samplesUsed = 0;
  std::vector<int> recoveredKey;  ///< when consistent
  /// Number of capture bits where the timed model could not possibly match
  /// the chip under any key (glitch-carried values).
  int inexplicableBits = 0;
};

/// Attack a combinational locked core `lockedComb` (key nets exposed)
/// against the physical chip `chip` (timing oracle, correct key inside).
/// The locked core's pseudo-POs must be ordered original-POs first, then
/// one per shared flop — the extractCombinational convention.
EnhancedSatResult enhancedSatAttack(const Netlist& lockedComb,
                                    const std::vector<NetId>& keyInputs,
                                    const TimingOracle& chip,
                                    const EnhancedSatOptions& opt = {});

}  // namespace gkll
