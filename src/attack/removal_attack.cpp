#include "attack/removal_attack.h"

#include <algorithm>
#include <cassert>

#include "lock/locking.h"
#include "netlist/netlist_ops.h"
#include "sat/cnf.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace gkll {

std::vector<double> estimateSignalProbabilities(const Netlist& comb,
                                                int samples,
                                                std::uint64_t seed) {
  assert(comb.flops().empty());
  Rng rng(seed);
  std::vector<std::uint32_t> ones(comb.numNets(), 0);
  std::vector<Logic> inputs(comb.inputs().size());
  for (int s = 0; s < samples; ++s) {
    for (Logic& v : inputs) v = logicFromBool(rng.flip());
    const std::vector<Logic> nets = evalCombinational(comb, inputs);
    for (NetId n = 0; n < comb.numNets(); ++n)
      if (nets[n] == Logic::T) ++ones[n];
  }
  std::vector<double> prob(comb.numNets());
  for (NetId n = 0; n < comb.numNets(); ++n)
    prob[n] = static_cast<double>(ones[n]) / static_cast<double>(samples);
  return prob;
}

namespace {

/// Nets in the transitive fanout of any key input.
std::vector<bool> keyFanoutCone(const Netlist& nl,
                                const std::vector<NetId>& keyInputs) {
  std::vector<bool> inCone(nl.numNets(), false);
  std::vector<NetId> stack(keyInputs.begin(), keyInputs.end());
  for (NetId n : keyInputs) inCone[n] = true;
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    for (GateId g : nl.net(n).fanouts) {
      const Gate& gg = nl.gate(g);
      if (gg.out == kNoNet || gg.kind == CellKind::kDff) continue;
      if (!inCone[gg.out]) {
        inCone[gg.out] = true;
        stack.push_back(gg.out);
      }
    }
  }
  return inCone;
}

}  // namespace

RemovalAttackResult removalAttack(const Netlist& lockedComb,
                                  const std::vector<NetId>& keyInputs,
                                  const Netlist& oracleComb,
                                  const RemovalAttackOptions& opt) {
  RemovalAttackResult res;
  const std::vector<double> prob =
      estimateSignalProbabilities(lockedComb, opt.samples, opt.seed);
  const std::vector<bool> inCone = keyFanoutCone(lockedComb, keyInputs);

  // Collect key-dependent, extremely skewed nets.
  for (NetId n = 0; n < lockedComb.numNets(); ++n) {
    if (!inCone[n]) continue;
    if (prob[n] <= opt.skewThreshold || prob[n] >= 1.0 - opt.skewThreshold)
      res.skewedKeyNets.push_back(n);
  }

  // Candidate bypass targets: skewed nets read by an XOR/XNOR whose
  // *other* input is functional (outside the key cone) — the classic flip
  // splice.  Most-skewed first: the real flip signal is the block's
  // near-constant output, while functional nets rarely sit as close to a
  // rail.
  std::vector<NetId> candidates;
  for (NetId n : res.skewedKeyNets) {
    for (GateId g : lockedComb.net(n).fanouts) {
      const Gate& gg = lockedComb.gate(g);
      if (gg.kind != CellKind::kXor2 && gg.kind != CellKind::kXnor2) continue;
      const NetId other = gg.fanin[0] == n ? gg.fanin[1] : gg.fanin[0];
      if (inCone[other]) continue;  // both inputs key-dependent: not a splice
      candidates.push_back(n);
      break;
    }
  }
  std::sort(candidates.begin(), candidates.end(), [&](NetId a, NetId b) {
    return std::min(prob[a], 1.0 - prob[a]) < std::min(prob[b], 1.0 - prob[b]);
  });
  res.located = !candidates.empty();

  // The attacker owns a working chip, so every bypass hypothesis can be
  // validated; try the best few.
  constexpr std::size_t kMaxTries = 10;
  for (std::size_t i = 0; i < std::min(candidates.size(), kMaxTries); ++i) {
    const NetId target = candidates[i];
    std::vector<NetId> netMap;
    Netlist repaired = cloneNetlist(lockedComb, netMap);
    const NetId flip = netMap[target];
    const GateId driver = repaired.net(flip).driver;
    repaired.removeGate(driver);
    repaired.addGate(
        prob[target] < 0.5 ? CellKind::kConst0 : CellKind::kConst1, {}, flip);

    // With the block bypassed, keys should be don't-cares: tie them off
    // and check equivalence against the oracle.
    std::vector<NetId> mappedKeys;
    for (NetId k : keyInputs) mappedKeys.push_back(netMap[k]);
    const std::vector<int> zeros(keyInputs.size(), 0);
    const Netlist untied = applyKey(repaired, mappedKeys, zeros);
    if (sat::checkEquivalence(untied, oracleComb).equivalent) {
      res.flipSignal = target;
      res.flipProbability = prob[target];
      res.repaired = std::move(repaired);
      res.restoredFunction = true;
      return res;
    }
  }
  if (res.located) {
    res.flipSignal = candidates.front();
    res.flipProbability = prob[candidates.front()];
  }
  return res;
}

}  // namespace gkll
