#include "attack/removal_attack.h"

#include <algorithm>
#include <cassert>

#include "lock/locking.h"
#include "netlist/netlist_ops.h"
#include "sat/cnf.h"
#include "util/rng.h"

namespace gkll {

SignalProbSession::SignalProbSession(const Netlist& comb)
    : numNets_(comb.numNets()),
      numInputs_(comb.inputs().size()),
      cn_(CompiledNetlist::compile(comb)),
      wide_(cn_) {
  assert(comb.flops().empty());
}

std::vector<double> SignalProbSession::estimate(int samples,
                                                std::uint64_t seed) {
  Rng rng(seed);
  // 4 words = 256 patterns per sweep: wide enough to amortise the sweep,
  // small enough that the slot planes stay cache-resident on big designs.
  constexpr std::size_t kWords = 4;
  constexpr std::size_t kLanes = kWords * 64;
  std::vector<std::uint64_t> ones(numNets_, 0);
  PackedLanes in(numInputs_, kWords);
  const PackedLanes ff(0, kWords);  // flop-free: no state plane
  const std::size_t total = samples < 0 ? 0 : static_cast<std::size_t>(samples);
  for (std::size_t base = 0; base < total; base += kLanes) {
    const std::size_t chunk = std::min(kLanes, total - base);
    in.reset(numInputs_, kWords);  // surplus lanes of the tail chunk stay X
    // Exactly the historical draw order: sample-major, input order within
    // a sample — byte-identical probabilities to the per-sample path.
    for (std::size_t lane = 0; lane < chunk; ++lane)
      for (std::size_t i = 0; i < numInputs_; ++i)
        in.setLane(i, lane, logicFromBool(rng.flip()));
    wide_.eval(in, ff, buf_);
    for (NetId n = 0; n < numNets_; ++n) {
      std::uint64_t cnt = 0;
      for (std::size_t w = 0; w < kWords; ++w) {
        const std::size_t lo = w * 64;
        if (lo >= chunk) break;
        const std::size_t rem = chunk - lo;
        const std::uint64_t mask =
            rem >= 64 ? ~0ULL : ((1ULL << rem) - 1);  // drawn lanes only
        const PackedBits b = wide_.netWord(buf_, n, w);
        cnt += static_cast<std::uint64_t>(
            __builtin_popcountll(b.v & ~b.x & mask));
      }
      ones[n] += cnt;
    }
  }
  std::vector<double> prob(numNets_);
  for (NetId n = 0; n < numNets_; ++n)
    prob[n] = static_cast<double>(ones[n]) / static_cast<double>(samples);
  return prob;
}

std::vector<double> estimateSignalProbabilities(const Netlist& comb,
                                                int samples,
                                                std::uint64_t seed) {
  SignalProbSession session(comb);
  return session.estimate(samples, seed);
}

namespace {

/// Nets in the transitive fanout of any key input.
std::vector<bool> keyFanoutCone(const Netlist& nl,
                                const std::vector<NetId>& keyInputs) {
  std::vector<bool> inCone(nl.numNets(), false);
  std::vector<NetId> stack(keyInputs.begin(), keyInputs.end());
  for (NetId n : keyInputs) inCone[n] = true;
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    for (GateId g : nl.net(n).fanouts) {
      const Gate& gg = nl.gate(g);
      if (gg.out == kNoNet || gg.kind == CellKind::kDff) continue;
      if (!inCone[gg.out]) {
        inCone[gg.out] = true;
        stack.push_back(gg.out);
      }
    }
  }
  return inCone;
}

}  // namespace

RemovalAttackResult removalAttack(const Netlist& lockedComb,
                                  const std::vector<NetId>& keyInputs,
                                  const Netlist& oracleComb,
                                  const RemovalAttackOptions& opt) {
  RemovalAttackResult res;
  const std::vector<double> prob =
      estimateSignalProbabilities(lockedComb, opt.samples, opt.seed);
  const std::vector<bool> inCone = keyFanoutCone(lockedComb, keyInputs);

  // Collect key-dependent, extremely skewed nets.
  for (NetId n = 0; n < lockedComb.numNets(); ++n) {
    if (!inCone[n]) continue;
    if (prob[n] <= opt.skewThreshold || prob[n] >= 1.0 - opt.skewThreshold)
      res.skewedKeyNets.push_back(n);
  }

  // Candidate bypass targets: skewed nets read by an XOR/XNOR whose
  // *other* input is functional (outside the key cone) — the classic flip
  // splice.  Most-skewed first: the real flip signal is the block's
  // near-constant output, while functional nets rarely sit as close to a
  // rail.
  std::vector<NetId> candidates;
  for (NetId n : res.skewedKeyNets) {
    for (GateId g : lockedComb.net(n).fanouts) {
      const Gate& gg = lockedComb.gate(g);
      if (gg.kind != CellKind::kXor2 && gg.kind != CellKind::kXnor2) continue;
      const NetId other = gg.fanin[0] == n ? gg.fanin[1] : gg.fanin[0];
      if (inCone[other]) continue;  // both inputs key-dependent: not a splice
      candidates.push_back(n);
      break;
    }
  }
  std::sort(candidates.begin(), candidates.end(), [&](NetId a, NetId b) {
    return std::min(prob[a], 1.0 - prob[a]) < std::min(prob[b], 1.0 - prob[b]);
  });
  res.located = !candidates.empty();

  // The attacker owns a working chip, so every bypass hypothesis can be
  // validated; try the best few.
  constexpr std::size_t kMaxTries = 10;
  for (std::size_t i = 0; i < std::min(candidates.size(), kMaxTries); ++i) {
    const NetId target = candidates[i];
    std::vector<NetId> netMap;
    Netlist repaired = cloneNetlist(lockedComb, netMap);
    const NetId flip = netMap[target];
    const GateId driver = repaired.net(flip).driver;
    repaired.removeGate(driver);
    repaired.addGate(
        prob[target] < 0.5 ? CellKind::kConst0 : CellKind::kConst1, {}, flip);

    // With the block bypassed, keys should be don't-cares: tie them off
    // and check equivalence against the oracle.
    std::vector<NetId> mappedKeys;
    for (NetId k : keyInputs) mappedKeys.push_back(netMap[k]);
    const std::vector<int> zeros(keyInputs.size(), 0);
    const Netlist untied = applyKey(repaired, mappedKeys, zeros);
    if (sat::checkEquivalence(untied, oracleComb).equivalent) {
      res.flipSignal = target;
      res.flipProbability = prob[target];
      res.repaired = std::move(repaired);
      res.restoredFunction = true;
      return res;
    }
  }
  if (res.located) {
    res.flipSignal = candidates.front();
    res.flipProbability = prob[candidates.front()];
  }
  return res;
}

}  // namespace gkll
