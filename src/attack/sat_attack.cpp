#include "attack/sat_attack.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "attack/oracle.h"
#include "lock/locking.h"
#include "obs/journal.h"
#include "obs/progress.h"
#include "obs/telemetry.h"
#include "sat/cnf.h"

namespace gkll {

using sat::Lit;
using sat::mkLit;
using sat::Result;
using sat::Solver;
using sat::Var;

namespace {

/// Encode the miter into `s`: copy 1 with fresh vars, copy 2 sharing the
/// data inputs, outputs constrained to differ.  The one encoding path both
/// the direct attack and buildMiterTemplate go through, so a template
/// replay reproduces the direct formula literally.
void encodeMiter(Solver& s, const CompiledNetlist& locked,
                 const std::vector<NetId>& dataPIs, std::vector<Var>& v1,
                 std::vector<Var>& v2) {
  const Netlist& src = locked.source();
  v1 = encodeNetlist(s, locked);
  std::vector<Var> boundVars;
  for (NetId n : dataPIs) boundVars.push_back(v1[n]);
  v2 = encodeNetlist(s, locked, dataPIs, boundVars);
  std::vector<Var> diffs;
  for (NetId po : src.outputs())
    diffs.push_back(makeXor(s, v1[po], v2[po]));
  s.addClause(mkLit(makeOrReduce(s, diffs)));
}

std::vector<NetId> dataInputsOf(const Netlist& lockedComb,
                                const std::vector<NetId>& keyInputs) {
  std::vector<NetId> dataPIs;
  for (NetId pi : lockedComb.inputs()) {
    if (std::find(keyInputs.begin(), keyInputs.end(), pi) == keyInputs.end())
      dataPIs.push_back(pi);
  }
  return dataPIs;
}

SatAttackResult satAttackImpl(const Netlist& lockedComb,
                              const std::vector<NetId>& keyInputs,
                              const Netlist& oracleComb,
                              const SatAttackOptions& opt) {
  SatAttackResult res;
  assert(lockedComb.flops().empty() && "attack wants a combinational core");

  // Split the locked design's inputs into data PIs and key PIs.
  const std::vector<NetId> dataPIs = dataInputsOf(lockedComb, keyInputs);
  assert(dataPIs.size() == oracleComb.inputs().size());
  assert(lockedComb.outputs().size() == oracleComb.outputs().size());

  CombOracle oracle(oracleComb);
  // The locked core is re-encoded per DIP; compile it once and stamp every
  // copy from the analyzed view.
  const CompiledNetlist locked = CompiledNetlist::compile(lockedComb);

  // Miter solver: two copies sharing the data inputs, independent keys.
  Solver s;
  s.setConflictBudget(opt.conflictBudget);
  s.setDeadline(opt.deadline);
  s.setCancelToken(opt.cancel);
  s.setConfig(opt.solverConfig);
  std::vector<Var> v1, v2;
  if (opt.miter != nullptr) {
    // Portfolio path: replay the shared pre-encoded miter instead of
    // re-running the encoder.  addClause is deterministic, so the replayed
    // formula is literally the one encodeMiter would have produced.
    for (int i = 0; i < opt.miter->numVars; ++i) s.newVar();
    for (const std::vector<Lit>& cl : opt.miter->clauses) s.addClause(cl);
    v1 = opt.miter->v1;
    v2 = opt.miter->v2;
  } else {
    encodeMiter(s, locked, dataPIs, v1, v2);
  }

  // Key solver: accumulates only the I/O consistency constraints; its
  // models are the keys still compatible with every oracle response.
  Solver ks;
  ks.setDeadline(opt.deadline);
  ks.setCancelToken(opt.cancel);
  std::vector<Var> kVars;
  for (std::size_t i = 0; i < keyInputs.size(); ++i) kVars.push_back(ks.newVar());

  // Map a solver's kUnknown back onto the attack-level outcome flags.
  auto markStopped = [&](const Solver& solver) {
    switch (solver.stopCause()) {
      case sat::StopCause::kDeadline: res.deadlineExceeded = true; break;
      case sat::StopCause::kCanceled: res.canceled = true; break;
      default: res.budgetExhausted = true; break;
    }
  };

  // Per-DIP copies are key-cone reduced: fold the concrete DIP through the
  // circuit once with the key inputs X (packed three-valued evaluation),
  // then encode only the gates the key still influences.  Folded-constant
  // nets bind to one pinned constant variable per solver, which addClause's
  // root-level simplification folds out of the residual clauses.
  std::vector<std::uint8_t> isKeySlot(lockedComb.inputs().size(), 0);
  for (std::size_t i = 0; i < lockedComb.inputs().size(); ++i)
    if (std::find(keyInputs.begin(), keyInputs.end(),
                  lockedComb.inputs()[i]) != keyInputs.end())
      isKeySlot[i] = 1;
  std::vector<PackedBits> foldIn(lockedComb.inputs().size());
  std::vector<PackedBits> foldedNets;
  sat::ConstVars sConsts, ksConsts;

  // Microseconds the last oracle query took — the quantity the paper's
  // attack-cost model charges per DIP, so it gets its own histogram and a
  // field in every journal record.
  std::int64_t lastOracleUs = 0;
  auto constrainWithOracle = [&](const std::vector<Logic>& dip) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<Logic> y = oracle.query(dip);
    lastOracleUs = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    obs::histRecord("attack.oracle.us", static_cast<double>(lastOracleUs));

    std::size_t di = 0;
    for (std::size_t i = 0; i < foldIn.size(); ++i)
      foldIn[i] = packedSplat(isKeySlot[i] ? Logic::X : dip[di++]);
    locked.evalPacked(foldIn, {}, foldedNets);

    // Pin one residual copy per key set to (X*, Y*).  Outputs the fold
    // already decided only need a check: a constant that contradicts the
    // oracle holds for *every* key, so the whole formula is unsatisfiable
    // (the GK case — the CNF disagrees with the chip on all keys).
    auto addCopy = [&](Solver& solver, const std::vector<Var>& keyVars,
                       sat::ConstVars& consts) {
      const std::vector<Var> vc = sat::encodeResidual(
          solver, locked, foldedNets, 0, keyInputs, keyVars, consts);
      for (std::size_t i = 0; i < lockedComb.outputs().size(); ++i) {
        const NetId on = lockedComb.outputs()[i];
        const Logic fv = packedLane(foldedNets[on], 0);
        if (fv == Logic::X)
          solver.addClause(mkLit(vc[on], y[i] != Logic::T));
        else if ((fv == Logic::T) != (y[i] == Logic::T))
          solver.addClause(std::vector<Lit>{});
      }
    };

    std::vector<Var> k1, k2;
    for (NetId kn : keyInputs) k1.push_back(v1[kn]);
    for (NetId kn : keyInputs) k2.push_back(v2[kn]);
    addCopy(s, k1, sConsts);
    addCopy(s, k2, sConsts);
    addCopy(ks, kVars, ksConsts);
  };

  // --- DIP loop --------------------------------------------------------------
  std::int64_t dipVars = 0, dipClauses = 0;
  auto finishCnfStats = [&] {
    if (res.dips > 0) {
      res.cnfVarsPerDip = static_cast<double>(dipVars) / res.dips;
      res.cnfClausesPerDip = static_cast<double>(dipClauses) / res.dips;
    }
  };
  obs::ProgressReporter progress("sat-attack", {.units = "dips"});
  for (int it = 0; it < opt.maxIterations; ++it) {
    // One span per iteration: miter solve + oracle query + key-solver check,
    // annotated with the running DIP count and the miter CNF's growth.
    obs::Span iter("attack.sat.iter");
    iter.arg("iter", it);
    const sat::SolverStats statsBefore = s.stats();
    const Result miter = s.solve();
    if (miter == Result::kUnknown) {
      markStopped(s);
      res.solverStats = s.stats();
      finishCnfStats();
      return res;
    }
    if (miter == Result::kUnsat) {
      res.converged = true;
      res.unsatAtFirstIteration = (it == 0);
      break;
    }
    ++res.dips;
    obs::count("attack.sat.dips");
    std::vector<Logic> dip;
    dip.reserve(dataPIs.size());
    for (NetId n : dataPIs)
      dip.push_back(logicFromBool(s.modelValue(v1[n])));
    const int varsBefore = s.numVars();
    const std::size_t clausesBefore = s.numClauses();
    constrainWithOracle(dip);
    dipVars += s.numVars() - varsBefore;
    dipClauses += static_cast<std::int64_t>(s.numClauses()) -
                  static_cast<std::int64_t>(clausesBefore);
    iter.arg("dips", res.dips);
    iter.arg("cnf_vars", s.numVars());
    iter.arg("cnf_clauses", static_cast<std::int64_t>(s.numClauses()));
    progress.tick();
    if (obs::journalEnabled()) {
      const sat::SolverStats& st = s.stats();
      const std::uint64_t learnt = st.learnedClauses - statsBefore.learnedClauses;
      const std::uint64_t lbdSum = st.sumLearnedLbd - statsBefore.sumLearnedLbd;
      obs::journalRecord("attack.sat.dip")
          .i64("iter", it)
          .i64("dips", res.dips)
          .i64("conflicts",
               static_cast<std::int64_t>(st.conflicts - statsBefore.conflicts))
          .i64("props", static_cast<std::int64_t>(st.propagations -
                                                  statsBefore.propagations))
          .i64("learned", static_cast<std::int64_t>(learnt))
          .f64("mean_lbd", learnt > 0 ? static_cast<double>(lbdSum) /
                                            static_cast<double>(learnt)
                                      : 0.0)
          .i64("cnf_vars", s.numVars())
          .i64("cnf_clauses", static_cast<std::int64_t>(s.numClauses()))
          .i64("oracle_us", lastOracleUs);
    }
    const Result keyCheck = ks.solve();
    if (keyCheck == Result::kUnknown) {
      markStopped(ks);
      res.solverStats = s.stats();
      finishCnfStats();
      return res;
    }
    if (keyCheck == Result::kUnsat) {
      // No key can explain the oracle's response: the static CNF model is
      // wrong about the chip (the GK case — the glitch transmits the value
      // the CNF says is impossible).
      res.keyConstraintsUnsat = true;
      break;
    }
  }
  res.solverStats = s.stats();
  finishCnfStats();
  if (!res.converged && !res.keyConstraintsUnsat) return res;  // budget out

  // --- key extraction --------------------------------------------------------
  if (!res.keyConstraintsUnsat) {
    const Result finalKey = ks.solve();
    if (finalKey == Result::kUnknown) {
      markStopped(ks);
      return res;
    }
    if (finalKey == Result::kUnsat) {
      res.keyConstraintsUnsat = true;
    } else {
      for (std::size_t i = 0; i < keyInputs.size(); ++i)
        res.recoveredKey.push_back(ks.modelValue(kVars[i]) ? 1 : 0);
    }
  }
  if (res.keyConstraintsUnsat) return res;

  // --- did the attack actually decrypt? --------------------------------------
  const Netlist unlocked = applyKey(lockedComb, keyInputs, res.recoveredKey);
  res.decrypted = sat::checkEquivalence(unlocked, oracleComb).equivalent;
  return res;
}

}  // namespace

MiterTemplate buildMiterTemplate(const CompiledNetlist& locked,
                                 const std::vector<NetId>& keyInputs) {
  MiterTemplate t;
  Solver scratch;
  scratch.enableClauseLog();
  const std::vector<NetId> dataPIs = dataInputsOf(locked.source(), keyInputs);
  encodeMiter(scratch, locked, dataPIs, t.v1, t.v2);
  t.numVars = scratch.numVars();
  t.clauses = scratch.loggedClauses();
  return t;
}

SatAttackResult satAttack(const Netlist& lockedComb,
                          const std::vector<NetId>& keyInputs,
                          const Netlist& oracleComb,
                          const SatAttackOptions& opt) {
  obs::Span span("attack.sat");
  const SatAttackResult res =
      satAttackImpl(lockedComb, keyInputs, oracleComb, opt);
  if (obs::enabled()) {
    span.arg("dips", res.dips);
    span.arg("keys", static_cast<std::int64_t>(keyInputs.size()));
    span.arg("converged", res.converged ? 1 : 0);
    span.arg("decrypted", res.decrypted ? 1 : 0);
    obs::count("attack.sat.runs");
    obs::record("attack.sat.dips_per_run", res.dips);
    if (res.unsatAtFirstIteration) obs::count("attack.sat.unsat_at_iter1");
    if (res.keyConstraintsUnsat) obs::count("attack.sat.key_constraints_unsat");
    if (res.budgetExhausted) obs::count("attack.sat.budget_exhausted");
    if (res.deadlineExceeded) obs::count("attack.sat.deadline_exceeded");
    if (res.canceled) obs::count("attack.sat.canceled");
    if (res.decrypted) obs::count("attack.sat.decrypted");
  }
  if (obs::journalEnabled()) {
    obs::journalRecord("attack.sat.done")
        .hex("netlist_hash", lockedComb.contentHash())
        .i64("keys", static_cast<std::int64_t>(keyInputs.size()))
        .i64("dips", res.dips)
        .boolean("converged", res.converged)
        .boolean("decrypted", res.decrypted)
        .boolean("key_constraints_unsat", res.keyConstraintsUnsat)
        .boolean("budget_exhausted", res.budgetExhausted)
        .i64("conflicts", static_cast<std::int64_t>(res.solverStats.conflicts))
        .i64("learned",
             static_cast<std::int64_t>(res.solverStats.learnedClauses));
  }
  return res;
}

}  // namespace gkll
