#include "attack/sat_attack.h"

#include <algorithm>
#include <cassert>

#include "attack/oracle.h"
#include "lock/locking.h"
#include "obs/telemetry.h"
#include "sat/cnf.h"

namespace gkll {

using sat::Lit;
using sat::mkLit;
using sat::Result;
using sat::Solver;
using sat::Var;

namespace {

SatAttackResult satAttackImpl(const Netlist& lockedComb,
                              const std::vector<NetId>& keyInputs,
                              const Netlist& oracleComb,
                              const SatAttackOptions& opt) {
  SatAttackResult res;
  assert(lockedComb.flops().empty() && "attack wants a combinational core");

  // Split the locked design's inputs into data PIs and key PIs.
  std::vector<NetId> dataPIs;
  for (NetId pi : lockedComb.inputs()) {
    if (std::find(keyInputs.begin(), keyInputs.end(), pi) == keyInputs.end())
      dataPIs.push_back(pi);
  }
  assert(dataPIs.size() == oracleComb.inputs().size());
  assert(lockedComb.outputs().size() == oracleComb.outputs().size());

  CombOracle oracle(oracleComb);
  // The locked core is re-encoded 2 + 3/DIP times; compile it once and
  // stamp every copy from the analyzed view.
  const CompiledNetlist locked = CompiledNetlist::compile(lockedComb);

  // Miter solver: two copies sharing the data inputs, independent keys.
  Solver s;
  s.setConflictBudget(opt.conflictBudget);
  s.setDeadline(opt.deadline);
  s.setCancelToken(opt.cancel);
  s.setConfig(opt.solverConfig);
  const std::vector<Var> v1 = encodeNetlist(s, locked);
  std::vector<NetId> bound = dataPIs;
  std::vector<Var> boundVars;
  for (NetId n : dataPIs) boundVars.push_back(v1[n]);
  const std::vector<Var> v2 = encodeNetlist(s, locked, bound, boundVars);

  std::vector<Var> diffs;
  for (std::size_t i = 0; i < lockedComb.outputs().size(); ++i)
    diffs.push_back(makeXor(s, v1[lockedComb.outputs()[i]],
                            v2[lockedComb.outputs()[i]]));
  s.addClause(mkLit(makeOrReduce(s, diffs)));

  // Key solver: accumulates only the I/O consistency constraints; its
  // models are the keys still compatible with every oracle response.
  Solver ks;
  ks.setDeadline(opt.deadline);
  ks.setCancelToken(opt.cancel);
  std::vector<Var> kVars;
  for (std::size_t i = 0; i < keyInputs.size(); ++i) kVars.push_back(ks.newVar());

  // Map a solver's kUnknown back onto the attack-level outcome flags.
  auto markStopped = [&](const Solver& solver) {
    switch (solver.stopCause()) {
      case sat::StopCause::kDeadline: res.deadlineExceeded = true; break;
      case sat::StopCause::kCanceled: res.canceled = true; break;
      default: res.budgetExhausted = true; break;
    }
  };

  auto constrainWithOracle = [&](const std::vector<Logic>& dip) {
    const std::vector<Logic> y = oracle.query(dip);

    // In the miter solver: pin a fresh copy per key set to (X*, Y*).
    auto addCopy = [&](const std::vector<Var>& keySrc, Solver& solver,
                       const std::vector<Var>* keyVarsOverride) {
      std::vector<NetId> b = dataPIs;
      std::vector<Var> bv;
      for (std::size_t i = 0; i < dataPIs.size(); ++i) {
        const Var c = solver.newVar();
        solver.addClause(mkLit(c, dip[i] != Logic::T));
        bv.push_back(c);
      }
      // Bind the key nets to the existing key variables of this solver.
      for (std::size_t i = 0; i < keyInputs.size(); ++i) {
        b.push_back(keyInputs[i]);
        bv.push_back(keyVarsOverride ? (*keyVarsOverride)[i] : keySrc[i]);
      }
      const std::vector<Var> vc = encodeNetlist(solver, locked, b, bv);
      for (std::size_t i = 0; i < lockedComb.outputs().size(); ++i) {
        solver.addClause(
            mkLit(vc[lockedComb.outputs()[i]], y[i] != Logic::T));
      }
    };

    std::vector<Var> k1, k2;
    for (NetId kn : keyInputs) k1.push_back(v1[kn]);
    for (NetId kn : keyInputs) k2.push_back(v2[kn]);
    addCopy(k1, s, nullptr);
    addCopy(k2, s, nullptr);
    addCopy({}, ks, &kVars);
  };

  // --- DIP loop --------------------------------------------------------------
  for (int it = 0; it < opt.maxIterations; ++it) {
    // One span per iteration: miter solve + oracle query + key-solver check,
    // annotated with the running DIP count and the miter CNF's growth.
    obs::Span iter("attack.sat.iter");
    iter.arg("iter", it);
    const Result miter = s.solve();
    if (miter == Result::kUnknown) {
      markStopped(s);
      res.solverStats = s.stats();
      return res;
    }
    if (miter == Result::kUnsat) {
      res.converged = true;
      res.unsatAtFirstIteration = (it == 0);
      break;
    }
    ++res.dips;
    obs::count("attack.sat.dips");
    std::vector<Logic> dip;
    dip.reserve(dataPIs.size());
    for (NetId n : dataPIs)
      dip.push_back(logicFromBool(s.modelValue(v1[n])));
    constrainWithOracle(dip);
    iter.arg("dips", res.dips);
    iter.arg("cnf_vars", s.numVars());
    iter.arg("cnf_clauses", static_cast<std::int64_t>(s.numClauses()));
    const Result keyCheck = ks.solve();
    if (keyCheck == Result::kUnknown) {
      markStopped(ks);
      res.solverStats = s.stats();
      return res;
    }
    if (keyCheck == Result::kUnsat) {
      // No key can explain the oracle's response: the static CNF model is
      // wrong about the chip (the GK case — the glitch transmits the value
      // the CNF says is impossible).
      res.keyConstraintsUnsat = true;
      break;
    }
  }
  res.solverStats = s.stats();
  if (!res.converged && !res.keyConstraintsUnsat) return res;  // budget out

  // --- key extraction --------------------------------------------------------
  if (!res.keyConstraintsUnsat) {
    const Result finalKey = ks.solve();
    if (finalKey == Result::kUnknown) {
      markStopped(ks);
      return res;
    }
    if (finalKey == Result::kUnsat) {
      res.keyConstraintsUnsat = true;
    } else {
      for (std::size_t i = 0; i < keyInputs.size(); ++i)
        res.recoveredKey.push_back(ks.modelValue(kVars[i]) ? 1 : 0);
    }
  }
  if (res.keyConstraintsUnsat) return res;

  // --- did the attack actually decrypt? --------------------------------------
  const Netlist unlocked = applyKey(lockedComb, keyInputs, res.recoveredKey);
  res.decrypted = sat::checkEquivalence(unlocked, oracleComb).equivalent;
  return res;
}

}  // namespace

SatAttackResult satAttack(const Netlist& lockedComb,
                          const std::vector<NetId>& keyInputs,
                          const Netlist& oracleComb,
                          const SatAttackOptions& opt) {
  obs::Span span("attack.sat");
  const SatAttackResult res =
      satAttackImpl(lockedComb, keyInputs, oracleComb, opt);
  if (obs::enabled()) {
    span.arg("dips", res.dips);
    span.arg("keys", static_cast<std::int64_t>(keyInputs.size()));
    span.arg("converged", res.converged ? 1 : 0);
    span.arg("decrypted", res.decrypted ? 1 : 0);
    obs::count("attack.sat.runs");
    obs::record("attack.sat.dips_per_run", res.dips);
    if (res.unsatAtFirstIteration) obs::count("attack.sat.unsat_at_iter1");
    if (res.keyConstraintsUnsat) obs::count("attack.sat.key_constraints_unsat");
    if (res.budgetExhausted) obs::count("attack.sat.budget_exhausted");
    if (res.deadlineExceeded) obs::count("attack.sat.deadline_exceeded");
    if (res.canceled) obs::count("attack.sat.canceled");
    if (res.decrypted) obs::count("attack.sat.decrypted");
  }
  return res;
}

}  // namespace gkll
