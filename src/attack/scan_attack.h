// Scan-chain attack on GK-encrypted flops — the BIST weakness the paper
// concedes in Sec. VI and the motivation for the hybrid XOR+GK mode.
//
// With scan access the attacker controls flop states and observes
// captures directly.  A GK in front of flop j either buffers or inverts
// the settled data x at capture time; if the attacker can *compute* x
// (every net in x's cone is key-free), two probes with differing x reveal
// which, and the GK is resolved — its key gate is bypassable.  When a
// hybrid XOR key gate sits inside x's cone, x is unknown without the XOR
// key, and the probe is inconclusive; the XOR keys in turn resist the SAT
// attack because the GK poisons the oracle constraints (sat_attack's
// keyConstraintsUnsat outcome).  That mutual protection is the paper's
// closing argument.
#pragma once

#include <vector>

#include "attack/oracle.h"
#include "lock/glitch_keygate.h"
#include "netlist/netlist.h"

namespace gkll {

struct ScanAttackResult {
  int resolvedBuffers = 0;    ///< GKs identified as buffer-at-capture
  int resolvedInverters = 0;  ///< GKs identified as inverter-at-capture
  int unresolved = 0;  ///< probes inconclusive (key-dependent data cone)
  /// Per insertion: +1 buffer, -1 inverter, 0 unresolved.
  std::vector<int> verdicts;
  bool fullyResolved() const { return unresolved == 0; }
};

/// Probe each GK-encrypted flop through the scan interface of `chip`
/// (a timing oracle over the locked design running the correct key).
/// `locked` is the same netlist the oracle wraps; `insertions` identify
/// the GK-hosting flops; `keyDependentNets` flags nets whose value the
/// attacker cannot compute (fanout cones of unknown key bits).
ScanAttackResult scanAttack(const Netlist& locked,
                            const std::vector<GkInsertion>& insertions,
                            const std::vector<bool>& keyDependentNets,
                            const TimingOracle& chip);

/// Helper: fanout-cone marking of unknown key inputs (e.g. hybrid XOR
/// keys) over a sequential netlist, stopping at flop boundaries.
std::vector<bool> markKeyDependent(const Netlist& nl,
                                   const std::vector<NetId>& unknownKeys);

}  // namespace gkll
