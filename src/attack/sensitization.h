// Key-sensitization attack (Rajendran et al., "Security Analysis of Logic
// Obfuscation", DAC'12) — the classic pre-SAT attack on XOR/XNOR locking
// and the reason fault-analysis-based insertion ([7] in the paper) exists.
//
// For each key bit the attacker looks for a *golden pattern*: an input X
// that propagates that bit to some primary output no matter what the
// other key bits are.  Applying X to the activated chip then reads the
// bit off directly — one oracle query per key, no SAT-attack loop.
//
// Implementation: per key bit k and output o,
//   1. existential step — find (X, A) with C(X,0,A)[o] != C(X,1,A)[o];
//   2. universal step  — verify no other-key assignment B un-sensitises
//      it: the query "exists B with C(X,0,B)[o] == C(X,1,B)[o]" is UNSAT.
// Both are plain SAT calls on our CDCL engine (the universal check is the
// negation trick, sound because X is fixed).
//
// Outcome against the GK: the key inputs of a stripped GK never influence
// any output, so step 1 already fails for every bit — yet another classic
// attack with zero purchase on glitch keys.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace gkll {

struct SensitizationOptions {
  int maxPatternsPerKey = 8;  ///< existential retries per key bit
};

struct SensitizationResult {
  /// Per key bit: recovered value (0/1) or -1 when no golden pattern
  /// exists.
  std::vector<int> recoveredKey;
  int resolvedBits = 0;
  int oracleQueries = 0;
  bool fullKeyRecovered() const {
    return resolvedBits == static_cast<int>(recoveredKey.size());
  }
};

/// Run the attack on a combinational locked core against the oracle
/// circuit (interfaces as in satAttack).
SensitizationResult sensitizationAttack(
    const Netlist& lockedComb, const std::vector<NetId>& keyInputs,
    const Netlist& oracleComb, const SensitizationOptions& opt = {});

}  // namespace gkll
