#include "attack/enhanced_removal.h"

#include <algorithm>
#include <cassert>

#include "netlist/netlist_ops.h"

namespace gkll {
namespace {

/// Walk upwards through unary cells (buffers, inverters, ideal delays) to
/// the root net of a delay chain.
NetId traceUnaryRoot(const Netlist& nl, NetId n) {
  for (;;) {
    const GateId d = nl.net(n).driver;
    if (d == kNoGate) return n;
    const Gate& gg = nl.gate(d);
    if (!isUnaryKind(gg.kind)) return n;
    n = gg.fanin[0];
  }
}

}  // namespace

std::vector<GkCandidate> locateGks(const Netlist& comb) {
  std::vector<GkCandidate> out;
  for (GateId g = 0; g < comb.numGates(); ++g) {
    const Gate& mux = comb.gate(g);
    if (mux.kind != CellKind::kMux2) continue;
    const NetId sel = mux.fanin[0];
    const GateId dUp = comb.net(mux.fanin[1]).driver;
    const GateId dLo = comb.net(mux.fanin[2]).driver;
    if (dUp == kNoGate || dLo == kNoGate) continue;
    const Gate& up = comb.gate(dUp);
    const Gate& lo = comb.gate(dLo);

    const NetId selRoot = traceUnaryRoot(comb, sel);

    // Withheld variant: both data pins driven by opaque LUTs whose last
    // fanin chains back to the same root as the select.
    if (up.kind == CellKind::kLut && lo.kind == CellKind::kLut) {
      const NetId ra = traceUnaryRoot(comb, up.fanin.back());
      const NetId rb = traceUnaryRoot(comb, lo.fanin.back());
      if (ra == selRoot && rb == selRoot) {
        GkCandidate c;
        c.mux = g;
        c.keySource = selRoot;
        c.withheld = true;
        out.push_back(c);
      }
      continue;
    }

    // Visible variant: XOR + XNOR sharing one fanin.
    const bool kindsMatch =
        (up.kind == CellKind::kXor2 && lo.kind == CellKind::kXnor2) ||
        (up.kind == CellKind::kXnor2 && lo.kind == CellKind::kXor2);
    if (!kindsMatch) continue;
    NetId shared = kNoNet;
    NetId tapUp = kNoNet, tapLo = kNoNet;
    for (NetId a : up.fanin) {
      for (NetId b : lo.fanin) {
        if (a == b) {
          shared = a;
          tapUp = up.fanin[0] == a ? up.fanin[1] : up.fanin[0];
          tapLo = lo.fanin[0] == b ? lo.fanin[1] : lo.fanin[0];
        }
      }
    }
    if (shared == kNoNet) continue;
    if (traceUnaryRoot(comb, tapUp) != selRoot ||
        traceUnaryRoot(comb, tapLo) != selRoot)
      continue;

    GkCandidate c;
    c.mux = g;
    c.x = shared;
    c.keySource = selRoot;
    out.push_back(c);
  }
  return out;
}

EnhancedRemovalResult enhancedRemovalAttack(
    const Netlist& lockedComb, const std::vector<NetId>& gkKeyInputs,
    const std::vector<NetId>& otherKeyInputs, const Netlist& oracleComb,
    const SatAttackOptions& satOpt) {
  EnhancedRemovalResult res;
  res.candidates = locateGks(lockedComb);

  std::vector<NetId> netMap;
  res.rewritten = cloneNetlist(lockedComb, netMap);
  Netlist& nl = res.rewritten;

  int idx = 0;
  for (const GkCandidate& c : res.candidates) {
    if (c.withheld) {
      ++res.unmodelable;
      continue;
    }
    // Model the GK as a conventional XOR key gate: at capture time it is
    // either a buffer or an inverter.
    const NetId outNet = netMap[lockedComb.gate(c.mux).out];
    const GateId mux = nl.net(outNet).driver;
    nl.removeGate(mux);
    const NetId nk = nl.addPI("keyin_er" + std::to_string(idx++));
    nl.addGate(CellKind::kXor2, {netMap[c.x], nk}, outNet);
    res.newKeyInputs.push_back(nk);
    ++res.replaced;
  }
  if (res.replaced == 0) return res;

  // SAT stage: every original key input plus the fresh model keys.
  std::vector<NetId> keys;
  for (NetId k : gkKeyInputs) keys.push_back(netMap[k]);
  for (NetId k : otherKeyInputs) keys.push_back(netMap[k]);
  keys.insert(keys.end(), res.newKeyInputs.begin(), res.newKeyInputs.end());
  res.sat = satAttack(nl, keys, oracleComb, satOpt);
  res.decrypted = res.sat.decrypted;
  return res;
}

}  // namespace gkll
