#include "attack/appsat.h"

#include <algorithm>
#include <cassert>

#include "attack/oracle.h"
#include "lock/locking.h"
#include "obs/journal.h"
#include "obs/progress.h"
#include "obs/telemetry.h"
#include "runtime/parallel.h"
#include "sat/cnf.h"
#include "util/rng.h"

namespace gkll {

using sat::Lit;
using sat::mkLit;
using sat::Result;
using sat::Solver;
using sat::Var;

namespace {

AppSatResult appSatAttackImpl(const Netlist& lockedComb,
                              const std::vector<NetId>& keyInputs,
                              const Netlist& oracleComb,
                              const AppSatOptions& opt) {
  AppSatResult res;
  assert(lockedComb.flops().empty());

  std::vector<NetId> dataPIs;
  for (NetId pi : lockedComb.inputs()) {
    if (std::find(keyInputs.begin(), keyInputs.end(), pi) == keyInputs.end())
      dataPIs.push_back(pi);
  }
  assert(dataPIs.size() == oracleComb.inputs().size());

  // Input-slot bookkeeping for simulating the locked core under a key.
  std::vector<int> slotOf(lockedComb.numNets(), -1);
  for (std::size_t i = 0; i < lockedComb.inputs().size(); ++i)
    slotOf[lockedComb.inputs()[i]] = static_cast<int>(i);

  CombOracle oracle(oracleComb);
  const CompiledNetlist locked = CompiledNetlist::compile(lockedComb);
  Rng rng(opt.seed);

  Solver s;
  s.setConflictBudget(opt.conflictBudget);
  const std::vector<Var> v1 = encodeNetlist(s, locked);
  std::vector<Var> piVars;
  for (NetId n : dataPIs) piVars.push_back(v1[n]);
  const std::vector<Var> v2 = encodeNetlist(s, locked, dataPIs, piVars);
  std::vector<Var> diffs;
  for (NetId po : lockedComb.outputs())
    diffs.push_back(sat::makeXor(s, v1[po], v2[po]));
  s.addClause(mkLit(sat::makeOrReduce(s, diffs)));

  Solver ks;
  ks.setConflictBudget(opt.conflictBudget);
  std::vector<Var> kVars;
  for (std::size_t i = 0; i < keyInputs.size(); ++i) kVars.push_back(ks.newVar());

  std::vector<Var> k1, k2;
  for (NetId kn : keyInputs) k1.push_back(v1[kn]);
  for (NetId kn : keyInputs) k2.push_back(v2[kn]);

  // Key-cone-reduced copy pinning (see encodeResidual): each observed
  // (X, Y) pair folds X through the circuit once with the keys X-valued,
  // then every solver copy encodes only the residual key cone.
  std::vector<PackedBits> foldIn(lockedComb.inputs().size());
  std::vector<PackedBits> foldedNets;
  sat::ConstVars sConsts, ksConsts;

  // Pin one circuit copy to (X, Y) in `solver`, keys bound to `keyVars`.
  // Assumes `foldedNets` holds the fold of X (lane 0).
  auto pinCopy = [&](Solver& solver, const std::vector<Var>& keyVars,
                     sat::ConstVars& consts, const std::vector<Logic>& y) {
    const std::vector<Var> vc = sat::encodeResidual(
        solver, locked, foldedNets, 0, keyInputs, keyVars, consts);
    for (std::size_t i = 0; i < lockedComb.outputs().size(); ++i) {
      const NetId on = lockedComb.outputs()[i];
      const Logic fv = packedLane(foldedNets[on], 0);
      if (fv == Logic::X)
        solver.addClause(mkLit(vc[on], y[i] != Logic::T));
      else if ((fv == Logic::T) != (y[i] == Logic::T))
        solver.addClause(std::vector<Lit>{});
    }
  };
  auto constrainAll = [&](const std::vector<Logic>& x,
                          const std::vector<Logic>& y) {
    for (std::size_t i = 0; i < foldIn.size(); ++i) foldIn[i] = packedSplat(Logic::X);
    for (std::size_t i = 0; i < dataPIs.size(); ++i)
      foldIn[static_cast<std::size_t>(slotOf[dataPIs[i]])] = packedSplat(x[i]);
    locked.evalPacked(foldIn, {}, foldedNets);
    pinCopy(s, k1, sConsts, y);
    pinCopy(s, k2, sConsts, y);
    pinCopy(ks, kVars, ksConsts, y);
  };

  // Bit-parallel random-query engine: 64-lane batches are drawn exactly as
  // before, then evaluated in wide groups of up to kWideWords batches per
  // sweep (WideEvaluator) on both the locked core (under `key`) and the
  // oracle, with the groups spread across the pool.  Returns the number
  // of disagreeing lanes; with `feedback` each disagreeing (pattern,
  // oracle response) pair is re-pinned as a constraint in all three
  // solvers.
  //
  // Determinism: patterns are drawn from the single Rng serially
  // (batch-major, PI-major, lane-minor — the historical draw order) and
  // the feedback constraints are applied serially in batch/lane order.
  // Only the pure evaluations run in parallel, each with task-local
  // buffers; word w of a group is batch g*kWideWords+w, so the wide sweep
  // is byte-identical to the old per-batch narrow passes at any thread
  // count.
  struct BatchEval {
    std::vector<PackedBits> oracleIn;  ///< patterns, dataPIs order
    std::vector<PackedBits> want;      ///< oracle output lanes
    std::uint64_t diff = 0;            ///< disagreeing-lane mask
    unsigned n = 0;                    ///< live lanes in this batch
  };
  constexpr std::size_t kWideWords = 8;  // 512 patterns per sweep
  const CompiledNetlist& oracleNl = oracle.compiled();
  const WideEvaluator lockedWide(locked);
  const WideEvaluator oracleWide(oracleNl);
  auto runBatches = [&](const std::vector<int>& key, int total,
                        bool feedback) {
    std::vector<BatchEval> batches((static_cast<std::size_t>(total) + 63) /
                                   64);
    for (std::size_t b = 0; b < batches.size(); ++b) {
      BatchEval& be = batches[b];
      be.n = static_cast<unsigned>(
          std::min<std::size_t>(64, static_cast<std::size_t>(total) - 64 * b));
      be.oracleIn.assign(dataPIs.size(), packedConst(false));
      for (std::size_t i = 0; i < dataPIs.size(); ++i) {
        std::uint64_t bits = 0;
        for (unsigned l = 0; l < be.n; ++l)
          bits |= static_cast<std::uint64_t>(rng.flip() ? 1 : 0) << l;
        be.oracleIn[i] = PackedBits{bits, 0};
      }
    }
    const std::size_t numIns = lockedComb.inputs().size();
    const std::size_t groups = (batches.size() + kWideWords - 1) / kWideWords;
    runtime::ParallelOptions popt;
    popt.pool = opt.pool;
    runtime::parallelFor(
        groups,
        [&](std::size_t g) {
          const std::size_t b0 = g * kWideWords;
          const std::size_t b1 =
              std::min(b0 + kWideWords, batches.size());
          const std::size_t W = b1 - b0;
          PackedLanes lockedIn(numIns, W);
          PackedLanes oracleIn(dataPIs.size(), W);
          // Non-PI-pattern signals are known 0, key rows splat the key —
          // the wide image of the old keyedIn vector.
          for (std::size_t i = 0; i < numIns; ++i)
            for (std::size_t w = 0; w < W; ++w)
              lockedIn.setWord(i, w, packedConst(false));
          for (std::size_t i = 0; i < keyInputs.size(); ++i) {
            const auto s = static_cast<std::size_t>(slotOf[keyInputs[i]]);
            for (std::size_t w = 0; w < W; ++w)
              lockedIn.setWord(s, w, packedConst(key[i] != 0));
          }
          for (std::size_t w = 0; w < W; ++w) {
            const BatchEval& be = batches[b0 + w];
            for (std::size_t i = 0; i < dataPIs.size(); ++i) {
              oracleIn.setWord(i, w, be.oracleIn[i]);
              lockedIn.setWord(static_cast<std::size_t>(slotOf[dataPIs[i]]),
                               w, be.oracleIn[i]);
            }
          }
          WideEvaluator::Buffer lockedBuf, oracleBuf;
          lockedWide.eval(lockedIn, PackedLanes{}, lockedBuf);
          oracleWide.eval(oracleIn, PackedLanes{}, oracleBuf);
          for (std::size_t w = 0; w < W; ++w) {
            BatchEval& be = batches[b0 + w];
            const std::vector<PackedBits> got =
                lockedWide.outputWords(lockedBuf, w);
            be.want = oracleWide.outputWords(oracleBuf, w);
            std::uint64_t diff = 0;
            for (std::size_t o = 0; o < got.size(); ++o)
              diff |= (got[o].v ^ be.want[o].v) | (got[o].x ^ be.want[o].x);
            if (be.n < 64) diff &= (1ULL << be.n) - 1;
            be.diff = diff;
          }
        },
        popt);
    oracle.noteQueries(static_cast<std::uint64_t>(total));
    int fails = 0;
    for (const BatchEval& be : batches) {
      for (unsigned l = 0; l < be.n; ++l) {
        if (!((be.diff >> l) & 1ULL)) continue;
        ++fails;
        if (feedback)
          constrainAll(unpackLane(be.oracleIn, l), unpackLane(be.want, l));
      }
    }
    return fails;
  };
  auto measureError = [&](const std::vector<int>& key, int queries) {
    return static_cast<double>(runBatches(key, queries, false)) / queries;
  };
  auto currentKey = [&]() -> std::vector<int> {
    std::vector<int> key;
    key.reserve(kVars.size());
    for (Var v : kVars) key.push_back(ks.modelValue(v) ? 1 : 0);
    return key;
  };

  obs::ProgressReporter progress("appsat", {.units = "dips"});
  for (int it = 0; it < opt.maxIterations; ++it) {
    obs::Span iter("attack.appsat.iter");
    iter.arg("iter", it);
    const sat::SolverStats statsBefore = s.stats();
    const Result miter = s.solve();
    if (miter != Result::kSat) break;  // UNSAT (converged) or budget out
    ++res.dips;
    obs::count("attack.appsat.dips");
    std::vector<Logic> dip;
    for (NetId n : dataPIs) dip.push_back(logicFromBool(s.modelValue(v1[n])));
    constrainAll(dip, oracle.query(dip));
    iter.arg("dips", res.dips);
    iter.arg("cnf_vars", s.numVars());
    iter.arg("cnf_clauses", static_cast<std::int64_t>(s.numClauses()));
    progress.tick();
    if (obs::journalEnabled()) {
      const sat::SolverStats& st = s.stats();
      obs::journalRecord("attack.appsat.dip")
          .i64("iter", it)
          .i64("dips", res.dips)
          .i64("conflicts",
               static_cast<std::int64_t>(st.conflicts - statsBefore.conflicts))
          .i64("props", static_cast<std::int64_t>(st.propagations -
                                                  statsBefore.propagations))
          .i64("cnf_clauses", static_cast<std::int64_t>(s.numClauses()));
    }
    if (ks.solve() == Result::kUnsat) {
      res.keyConstraintsUnsat = true;
      return res;
    }

    if (res.dips % opt.reconcileEvery != 0) continue;
    ++res.reconciliations;
    const std::vector<int> key = currentKey();
    // Random-query reconciliation: packed 64-lane batches evaluated across
    // the pool, disagreeing lanes unpacked and fed back as constraints.
    const int fails = runBatches(key, opt.randomQueries, true);
    const double err = static_cast<double>(fails) / opt.randomQueries;
    if (obs::journalEnabled()) {
      obs::journalRecord("attack.appsat.reconcile")
          .i64("iter", it)
          .i64("dips", res.dips)
          .i64("queries", opt.randomQueries)
          .i64("fails", fails)
          .f64("error_rate", err);
    }
    if (err <= opt.errorThreshold) {
      res.succeeded = true;
      res.approximateKey = key;
      break;
    }
    if (ks.solve() == Result::kUnsat) {
      res.keyConstraintsUnsat = true;
      return res;
    }
  }

  // Converged without early exit: take any remaining consistent key.
  if (!res.succeeded) {
    if (ks.solve() != Result::kSat) {
      res.keyConstraintsUnsat = true;
      return res;
    }
    const std::vector<int> key = currentKey();
    const double err = measureError(key, opt.randomQueries);
    if (err <= opt.errorThreshold) {
      res.succeeded = true;
      res.approximateKey = key;
    }
  }

  if (res.succeeded) {
    res.errorRate = measureError(res.approximateKey, 256);
    const Netlist unlocked =
        applyKey(lockedComb, keyInputs, res.approximateKey);
    res.exactlyCorrect =
        sat::checkEquivalence(unlocked, oracleComb).equivalent;
  }
  return res;
}

}  // namespace

AppSatResult appSatAttack(const Netlist& lockedComb,
                          const std::vector<NetId>& keyInputs,
                          const Netlist& oracleComb, const AppSatOptions& opt) {
  obs::Span span("attack.appsat");
  const AppSatResult res =
      appSatAttackImpl(lockedComb, keyInputs, oracleComb, opt);
  if (obs::enabled()) {
    span.arg("dips", res.dips);
    span.arg("reconciliations", res.reconciliations);
    span.arg("succeeded", res.succeeded ? 1 : 0);
    obs::count("attack.appsat.runs");
    obs::count("attack.appsat.reconciliations",
               static_cast<std::uint64_t>(res.reconciliations));
    obs::record("attack.appsat.dips_per_run", res.dips);
    if (res.succeeded) obs::record("attack.appsat.error_rate", res.errorRate);
  }
  if (obs::journalEnabled()) {
    obs::journalRecord("attack.appsat.done")
        .hex("netlist_hash", lockedComb.contentHash())
        .i64("dips", res.dips)
        .i64("reconciliations", res.reconciliations)
        .boolean("succeeded", res.succeeded)
        .boolean("exactly_correct", res.exactlyCorrect)
        .f64("error_rate", res.errorRate);
  }
  return res;
}

}  // namespace gkll
