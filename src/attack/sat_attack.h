// The SAT attack of Subramanyan, Ray & Malik (HOST'15 [11]) — the attack
// the Glitch Key-gate is designed to invalidate.
//
// Standard algorithm on a combinational locked netlist C(X, K) with a
// functional oracle O(X):
//   1. build a miter  C(X, K1) != C(X, K2)  over shared data inputs X;
//   2. while SAT: extract the distinguishing input pattern (DIP) X*,
//      query the oracle Y* = O(X*), and constrain both key copies with
//      C(X*, Ki) == Y*;
//   3. when the miter goes UNSAT, any key satisfying the accumulated
//      I/O constraints is functionally correct.
//
// Two GK-specific outcomes this implementation surfaces explicitly:
//   - unsatAtFirstIteration: the miter found no DIP at all (paper Sec. VI:
//     "the attack stopped at the first iteration ... and reported
//     unsatisfiable") — the key inputs simply do not influence the CNF.
//   - keyConstraintsUnsat: a DIP existed (e.g. from hybrid XOR keys) but
//     no key can reproduce the oracle's response, because the static CNF
//     of a GK computes the inverse of what the chip's glitch transmits.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/compiled.h"
#include "netlist/netlist.h"
#include "sat/solver.h"

namespace gkll {

class CombOracle;

/// A pre-encoded miter formula: the two locked-circuit copies over shared
/// data inputs plus the difference constraint, captured as the solver's
/// verbatim clause log.  Replaying the log through Solver::addClause is
/// deterministic, so every consumer that replays the template holds a
/// literally identical formula — the portfolio builds it once and seeds
/// all racers from it instead of re-running the CNF encoder per racer.
struct MiterTemplate {
  int numVars = 0;
  std::vector<std::vector<sat::Lit>> clauses;
  std::vector<sat::Var> v1;  ///< per-net vars of miter copy 1
  std::vector<sat::Var> v2;  ///< per-net vars of miter copy 2
};

/// Encode the SAT-attack miter for `locked` once.  `keyInputs` are left
/// free in both copies; all other inputs are shared between them.
MiterTemplate buildMiterTemplate(const CompiledNetlist& locked,
                                 const std::vector<NetId>& keyInputs);

struct SatAttackOptions {
  int maxIterations = 1 << 20;
  /// Conflict budget per solver call (0 = unlimited).  When a call runs
  /// out the attack gives up with budgetExhausted set — the practical
  /// "attacker ran out of patience" outcome for very large baselines.
  std::uint64_t conflictBudget = 0;
  /// Wall-clock budget for the whole attack (default unlimited).  Checked
  /// cooperatively inside both solvers; on expiry the attack returns with
  /// deadlineExceeded set and all accumulated constraints intact.
  runtime::Deadline deadline;
  /// External cancellation (portfolio racing): when the token fires the
  /// attack winds down at the next solver boundary with canceled set.
  runtime::CancelToken cancel;
  /// Search-heuristic knobs for the miter solver — the diversification
  /// lever the portfolio varies per racer.  Defaults reproduce the
  /// historical single-threaded behaviour exactly.
  sat::SolverConfig solverConfig;
  /// Optional pre-encoded miter (see buildMiterTemplate).  When set, the
  /// attack replays the template's clause log instead of re-encoding the
  /// locked circuit — the formula is identical either way.  The template
  /// must have been built from the same locked netlist and key set.
  const MiterTemplate* miter = nullptr;
};

struct SatAttackResult {
  bool converged = false;  ///< miter exhausted (no further DIPs)
  int dips = 0;
  bool unsatAtFirstIteration = false;
  bool keyConstraintsUnsat = false;
  bool budgetExhausted = false;   ///< a solver call hit the conflict budget
  bool deadlineExceeded = false;  ///< the wall-clock deadline expired
  bool canceled = false;          ///< the cancel token fired (lost the race)
  std::vector<int> recoveredKey;  ///< valid when converged && !keyConstraintsUnsat
  /// True when the unlocked circuit (locked netlist with recoveredKey
  /// applied) is SAT-equivalent to the oracle circuit — i.e. the attack
  /// actually decrypted the design.
  bool decrypted = false;
  sat::SolverStats solverStats;
  /// Mean CNF growth of the miter solver per DIP (both pinned copies):
  /// with key-cone-reduced stamping this measures the residual, not the
  /// whole circuit.  0 when no DIP was found.
  double cnfVarsPerDip = 0.0;
  double cnfClausesPerDip = 0.0;
};

/// Run the attack.  `lockedComb` must be combinational (sequential designs
/// go through extractCombinational + stripKeygens first, as in the paper);
/// its non-key inputs must match `oracleComb.inputs()` 1:1 in order.
SatAttackResult satAttack(const Netlist& lockedComb,
                          const std::vector<NetId>& keyInputs,
                          const Netlist& oracleComb,
                          const SatAttackOptions& opt = {});

}  // namespace gkll
