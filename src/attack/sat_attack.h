// The SAT attack of Subramanyan, Ray & Malik (HOST'15 [11]) — the attack
// the Glitch Key-gate is designed to invalidate.
//
// Standard algorithm on a combinational locked netlist C(X, K) with a
// functional oracle O(X):
//   1. build a miter  C(X, K1) != C(X, K2)  over shared data inputs X;
//   2. while SAT: extract the distinguishing input pattern (DIP) X*,
//      query the oracle Y* = O(X*), and constrain both key copies with
//      C(X*, Ki) == Y*;
//   3. when the miter goes UNSAT, any key satisfying the accumulated
//      I/O constraints is functionally correct.
//
// Two GK-specific outcomes this implementation surfaces explicitly:
//   - unsatAtFirstIteration: the miter found no DIP at all (paper Sec. VI:
//     "the attack stopped at the first iteration ... and reported
//     unsatisfiable") — the key inputs simply do not influence the CNF.
//   - keyConstraintsUnsat: a DIP existed (e.g. from hybrid XOR keys) but
//     no key can reproduce the oracle's response, because the static CNF
//     of a GK computes the inverse of what the chip's glitch transmits.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "sat/solver.h"

namespace gkll {

class CombOracle;

struct SatAttackOptions {
  int maxIterations = 1 << 20;
  /// Conflict budget per solver call (0 = unlimited).  When a call runs
  /// out the attack gives up with budgetExhausted set — the practical
  /// "attacker ran out of patience" outcome for very large baselines.
  std::uint64_t conflictBudget = 0;
  /// Wall-clock budget for the whole attack (default unlimited).  Checked
  /// cooperatively inside both solvers; on expiry the attack returns with
  /// deadlineExceeded set and all accumulated constraints intact.
  runtime::Deadline deadline;
  /// External cancellation (portfolio racing): when the token fires the
  /// attack winds down at the next solver boundary with canceled set.
  runtime::CancelToken cancel;
  /// Search-heuristic knobs for the miter solver — the diversification
  /// lever the portfolio varies per racer.  Defaults reproduce the
  /// historical single-threaded behaviour exactly.
  sat::SolverConfig solverConfig;
};

struct SatAttackResult {
  bool converged = false;  ///< miter exhausted (no further DIPs)
  int dips = 0;
  bool unsatAtFirstIteration = false;
  bool keyConstraintsUnsat = false;
  bool budgetExhausted = false;   ///< a solver call hit the conflict budget
  bool deadlineExceeded = false;  ///< the wall-clock deadline expired
  bool canceled = false;          ///< the cancel token fired (lost the race)
  std::vector<int> recoveredKey;  ///< valid when converged && !keyConstraintsUnsat
  /// True when the unlocked circuit (locked netlist with recoveredKey
  /// applied) is SAT-equivalent to the oracle circuit — i.e. the attack
  /// actually decrypted the design.
  bool decrypted = false;
  sat::SolverStats solverStats;
};

/// Run the attack.  `lockedComb` must be combinational (sequential designs
/// go through extractCombinational + stripKeygens first, as in the paper);
/// its non-key inputs must match `oracleComb.inputs()` 1:1 in order.
SatAttackResult satAttack(const Netlist& lockedComb,
                          const std::vector<NetId>& keyInputs,
                          const Netlist& oracleComb,
                          const SatAttackOptions& opt = {});

}  // namespace gkll
