// Portfolio SAT attack: race N diversified attack instances on the
// work-stealing pool, first definitive answer wins, losers are canceled.
//
// Why a portfolio and not a parallel solver: CDCL runtimes are heavy-tailed
// in the search-heuristic choices (restart cadence, branching polarity,
// activity decay).  Racing a handful of *differently configured* but
// otherwise independent attacks and keeping the first finisher routinely
// beats the mean single-config runtime — the classic ManySAT/ppfolio
// observation — and needs no clause-sharing machinery.
//
// Each racer runs the full SAT attack (attack/sat_attack.h) on its own
// Solver with a config from portfolioConfig(i, seed).  Racer 0 always gets
// the historical default config, so a 1-racer portfolio reproduces the
// serial attack exactly.  A shared CancelToken is fired by the first racer
// to reach a *definitive* outcome (converged or keyConstraintsUnsat — the
// two states that settle what the attack can learn); the rest wind down at
// their next solver boundary and report canceled.  Cancellation is
// cooperative, so a canceled racer's solver and accumulated constraints
// remain intact and reusable.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/sat_attack.h"
#include "runtime/pool.h"

namespace gkll {

struct PortfolioOptions {
  int racers = 4;
  /// Template for every racer: budgets/deadline are shared, the per-racer
  /// solverConfig is overwritten from portfolioConfig(i, seed).  The base
  /// cancel token is replaced by the portfolio's internal race token.
  SatAttackOptions base;
  std::uint64_t seed = 1;  ///< diversification seed for the config schedule
  runtime::ThreadPool* pool = nullptr;  ///< null = ThreadPool::global()
};

/// One racer's end state, index-aligned with the config schedule.
struct RacerOutcome {
  sat::SolverConfig config;
  SatAttackResult result;
  double wallMs = 0.0;
  bool definitive = false;  ///< converged || keyConstraintsUnsat
};

struct PortfolioResult {
  /// The winning racer's attack result; when no racer was definitive
  /// (deadline/budget hit everywhere), racer 0's result — the default
  /// config, i.e. what the serial attack would have reported.
  SatAttackResult result;
  int winner = -1;          ///< racer index, -1 when nobody finished
  int canceledRacers = 0;   ///< losers stopped by the race token
  double wallMs = 0.0;      ///< whole-portfolio wall time
  std::vector<RacerOutcome> outcomes;  ///< one per racer, in racer order
};

/// The deterministic config schedule: racer 0 is the solver's historical
/// default, racers 1+ diversify polarity, restart cadence and VSIDS decay
/// (pseudo-randomised from `seed` past the hand-picked first few).  Pure
/// function of (racer, seed) — tests pin it down.
sat::SolverConfig portfolioConfig(int racer, std::uint64_t seed);

PortfolioResult portfolioSatAttack(const Netlist& lockedComb,
                                   const std::vector<NetId>& keyInputs,
                                   const Netlist& oracleComb,
                                   const PortfolioOptions& opt = {});

}  // namespace gkll
