// Enhanced removal attack (paper Sec. V-D): combine structural
// localisation with SAT.
//
//   1. Locate candidate GKs by their structural fingerprint: a MUX whose
//      two data pins are driven by an XOR and an XNOR sharing one fanin
//      (the encrypted net x), the other fanins and the MUX select all
//      tracing back through unary delay chains to one key source.
//   2. Replace each located GK with a conventional XOR key gate — the
//      candidate behaviours of a GK at capture time are exactly
//      {buffer, inverter}, so an XOR with a fresh key bit models them.
//   3. Run the SAT attack on the rewritten netlist.
//
// Against naked GKs this attack *succeeds* (which is the paper's point:
// the structure must be hidden); with the withholding defence of Sec. V-D
// the XOR/XNOR pair is gone — the MUX data pins come from opaque LUTs —
// and step 1 finds nothing it can model.
#pragma once

#include <vector>

#include "attack/sat_attack.h"
#include "netlist/netlist.h"

namespace gkll {

/// One structurally located GK candidate.
struct GkCandidate {
  GateId mux = kNoGate;
  NetId x = kNoNet;       ///< the shared (encrypted) data net
  NetId keySource = kNoNet;  ///< root of the delay chains / MUX select
  bool withheld = false;  ///< data pins are LUTs: located but unmodelable
};

/// Structural scan for GK fingerprints.
std::vector<GkCandidate> locateGks(const Netlist& comb);

struct EnhancedRemovalResult {
  std::vector<GkCandidate> candidates;
  int replaced = 0;   ///< GKs modelled as XOR key gates
  int unmodelable = 0;  ///< withheld candidates that could not be replaced
  Netlist rewritten;  ///< netlist after replacement (valid when replaced > 0)
  std::vector<NetId> newKeyInputs;  ///< fresh key bits of the XOR models
  SatAttackResult sat;  ///< the follow-up SAT attack (when replaced > 0)
  bool decrypted = false;
};

/// Run the full pipeline on a combinational locked core whose GK keys were
/// already exposed (stripKeygens).  `gkKeyInputs` are those exposed nets;
/// `otherKeyInputs` (e.g. hybrid XOR keys) stay as ordinary key inputs for
/// the SAT stage.
EnhancedRemovalResult enhancedRemovalAttack(
    const Netlist& lockedComb, const std::vector<NetId>& gkKeyInputs,
    const std::vector<NetId>& otherKeyInputs, const Netlist& oracleComb,
    const SatAttackOptions& satOpt = {});

}  // namespace gkll
