// Attack oracles — the "functionally correct chip" of the SAT-attack
// threat model.
//
// CombOracle is the standard zero-delay functional oracle over the
// combinational core (the attacker scans a state in, clocks once, scans
// out).  TimingOracle is the physically faithful version backed by the
// event-driven simulator: it returns what the flops of the *locked* chip
// (running with the correct key, KEYGENs alive) actually capture,
// glitches, violations and all.  The gap between the two on GK-encrypted
// flops is precisely the paper's security argument.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/compiled.h"
#include "netlist/logic.h"
#include "netlist/netlist.h"
#include "netlist/packed_eval.h"
#include "sim/event_sim.h"
#include "util/time_types.h"

namespace gkll {

namespace runtime {
class ThreadPool;
}

/// Zero-delay functional oracle over a combinational netlist.  Compiles the
/// netlist once at construction; the netlist must outlive the oracle and
/// may not be mutated while it is in use.
class CombOracle {
 public:
  explicit CombOracle(const Netlist& comb);

  /// inputs in comb.inputs() order; returns values in comb.outputs() order.
  std::vector<Logic> query(const std::vector<Logic>& inputs) const;

  /// Bit-parallel batch query: lane l of every PackedBits word is one
  /// independent pattern, so a single call answers up to 64 queries.
  /// `inputs` in comb.inputs() order; returns per-output lane words in
  /// comb.outputs() order.  Counts `patterns` towards numQueries().
  std::vector<PackedBits> queryPacked(const std::vector<PackedBits>& inputs,
                                      unsigned patterns = 64) const;

  /// Convenience batch API over scalar patterns (each inner vector in
  /// comb.inputs() order).  Up to 64 patterns go through the narrow packed
  /// pass; larger batches run one wide W-word sweep (WideEvaluator, built
  /// lazily on first use) — byte-identical to the chunked narrow loop.
  std::vector<std::vector<Logic>> queryBatch(
      const std::vector<std::vector<Logic>>& patterns) const;

  const CompiledNetlist& compiled() const { return comb_; }

  std::uint64_t numQueries() const { return queries_; }

  /// Query accounting for callers that evaluate through compiled()
  /// directly (parallel sweeps keep task-local scratch because
  /// queryPacked's shared buffer is not thread-safe) — call serially
  /// after the sweep so numQueries() stays honest.
  void noteQueries(std::uint64_t n) const { queries_ += n; }

 private:
  CompiledNetlist comb_;
  mutable std::vector<PackedBits> packedNets_;  // scratch, reused per batch
  mutable std::unique_ptr<WideEvaluator> wide_;  // lazy; large batches only
  mutable WideEvaluator::Buffer wideBuf_;
  mutable std::uint64_t queries_ = 0;
};

/// Timing-accurate oracle over a *sequential locked* netlist driven with a
/// fixed key.  A query sets the primary inputs and the shared flop states,
/// runs one clock cycle of event simulation and reports what each shared
/// flop captured (X on a setup/hold violation) and the settled PO values.
///
/// The locked netlist is compiled exactly once, at construction; every
/// query recycles a reusable EventSim session (reset() + run()), so a
/// thousand queries perform no further CompiledNetlist::compile and ~zero
/// allocation.  Like CombOracle's packed scratch, the cached session makes
/// query() non-thread-safe — concurrent callers go through queryBatch,
/// which gives every worker its own session.
class TimingOracle {
 public:
  TimingOracle(const Netlist& locked, std::vector<Ps> clockArrival,
               std::vector<NetId> keyInputs, std::vector<int> keyValues,
               Ps clockPeriod, std::size_t numSharedFlops);

  struct Capture {
    std::vector<Logic> poValues;  ///< settled just before the capture edge
    std::vector<Logic> captured;  ///< per shared flop; X on violation
    int violations = 0;

    bool operator==(const Capture&) const = default;
  };

  /// One oracle stimulus: `piValues` in original-PI order (locked PIs
  /// minus key inputs), `state` per shared flop.
  struct Query {
    std::vector<Logic> piValues;
    std::vector<Logic> state;
  };

  /// `piValues` in original-PI order (locked PIs minus key inputs);
  /// `state` per shared flop.
  Capture query(const std::vector<Logic>& piValues,
                const std::vector<Logic>& state) const;

  /// Answer independent queries across the runtime thread pool (null =
  /// the global pool), one reusable sim session per worker task.  Results
  /// come back in query order; because each Capture is a pure function of
  /// its Query, a parallel batch is byte-identical to a serial loop of
  /// query() calls — the benches check exactly that.
  std::vector<Capture> queryBatch(const std::vector<Query>& queries,
                                  runtime::ThreadPool* pool = nullptr) const;

  std::uint64_t numQueries() const { return queries_; }
  std::size_t numSharedFlops() const { return numShared_; }
  std::size_t numDataPIs() const { return dataPIs_.size(); }
  const CompiledNetlist& compiled() const { return compiled_; }

 private:
  EventSim& session() const;  ///< the lazily-built cached query() session
  Capture queryWith(EventSim& sim, const std::vector<Logic>& piValues,
                    const std::vector<Logic>& state) const;

  const Netlist& locked_;
  CompiledNetlist compiled_;
  std::vector<Ps> clockArrival_;
  std::vector<NetId> keyInputs_;
  std::vector<int> keyValues_;
  std::vector<NetId> dataPIs_;
  Ps clockPeriod_;
  std::size_t numShared_;
  EventSimConfig simCfg_;
  mutable std::unique_ptr<EventSim> session_;
  mutable std::uint64_t queries_ = 0;
};

}  // namespace gkll
