#include "attack/oracle.h"

#include <algorithm>
#include <cassert>

#include "netlist/cell_library.h"
#include "runtime/parallel.h"
#include "runtime/pool.h"
#include "sim/event_sim.h"
#include "sim/logic_sim.h"

namespace gkll {

CombOracle::CombOracle(const Netlist& comb)
    : comb_(CompiledNetlist::compile(comb)) {
  assert(comb.flops().empty() && "CombOracle wants a combinational netlist");
}

std::vector<Logic> CombOracle::query(const std::vector<Logic>& inputs) const {
  ++queries_;
  const std::vector<Logic> nets = comb_.evalComb(inputs);
  return outputValues(comb_.source(), nets);
}

std::vector<PackedBits> CombOracle::queryPacked(
    const std::vector<PackedBits>& inputs, unsigned patterns) const {
  assert(patterns >= 1 && patterns <= 64);
  queries_ += patterns;
  comb_.evalPacked(inputs, {}, packedNets_);
  return comb_.outputLanes(packedNets_);
}

std::vector<std::vector<Logic>> CombOracle::queryBatch(
    const std::vector<std::vector<Logic>>& patterns) const {
  std::vector<std::vector<Logic>> results(patterns.size());
  if (patterns.size() <= 64) {
    for (std::size_t base = 0; base < patterns.size(); base += 64) {
      const std::size_t n = std::min<std::size_t>(64, patterns.size() - base);
      const std::vector<std::vector<Logic>> chunk(
          patterns.begin() + static_cast<std::ptrdiff_t>(base),
          patterns.begin() + static_cast<std::ptrdiff_t>(base + n));
      const std::vector<PackedBits> outs =
          queryPacked(packPatterns(chunk), static_cast<unsigned>(n));
      for (std::size_t l = 0; l < n; ++l)
        results[base + l] = unpackLane(outs, static_cast<unsigned>(l));
    }
    return results;
  }
  // Large batch: one W-word wide sweep instead of ceil(n/64) narrow passes.
  // Lane k of the sweep is pattern k; unset trailing signals stay X, so
  // this is byte-identical to the narrow chunked loop above.
  const std::size_t W = (patterns.size() + 63) / 64;
  const auto& pis = comb_.source().inputs();
  PackedLanes in(pis.size(), W);
  for (std::size_t k = 0; k < patterns.size(); ++k) {
    const auto& p = patterns[k];
    const std::size_t n = std::min(p.size(), pis.size());
    for (std::size_t i = 0; i < n; ++i) in.setLane(i, k, p[i]);
  }
  if (!wide_) wide_ = std::make_unique<WideEvaluator>(comb_);
  wide_->eval(in, PackedLanes{}, wideBuf_);
  queries_ += patterns.size();
  const auto& pos = comb_.source().outputs();
  for (std::size_t k = 0; k < patterns.size(); ++k) {
    auto& r = results[k];
    r.reserve(pos.size());
    for (NetId po : pos) r.push_back(wide_->netLane(wideBuf_, po, k));
  }
  return results;
}

TimingOracle::TimingOracle(const Netlist& locked, std::vector<Ps> clockArrival,
                           std::vector<NetId> keyInputs,
                           std::vector<int> keyValues, Ps clockPeriod,
                           std::size_t numSharedFlops)
    : locked_(locked),
      compiled_(CompiledNetlist::compile(locked)),
      clockArrival_(std::move(clockArrival)),
      keyInputs_(std::move(keyInputs)),
      keyValues_(std::move(keyValues)),
      clockPeriod_(clockPeriod),
      numShared_(numSharedFlops) {
  assert(clockArrival_.size() == locked_.flops().size());
  assert(keyInputs_.size() == keyValues_.size());
  // Data PIs = every primary input that is not a key input.
  for (NetId pi : locked_.inputs()) {
    if (std::find(keyInputs_.begin(), keyInputs_.end(), pi) ==
        keyInputs_.end())
      dataPIs_.push_back(pi);
  }
  // The shared (functional) flops hold their scanned state through edge 1
  // while the KEYGEN flops toggle normally; the single observed functional
  // capture is edge 2, whose GK glitches were triggered by the edge-1
  // KEYGEN toggle — matching a real scan sequence, where shift pulses keep
  // the KEYGEN toggling right up to the capture pulse.
  simCfg_.clockPeriod = clockPeriod_;
  // The last value a query ever samples is Q at edge2 + clkToQ + 20; the
  // next Q commit is a full period later.  Truncating the horizon just past
  // that sample point drops the entire post-capture propagation wave at
  // push — a third or more of the event traffic — without changing any
  // sampled value, capture or recorded violation.  Capped at the old
  // 3-period horizon so huge clock skews cannot pull edge-3 captures (and
  // their violations) into the run.
  const Ps maxArrival =
      clockArrival_.empty()
          ? 0
          : *std::max_element(clockArrival_.begin(), clockArrival_.end());
  simCfg_.simTime =
      std::min(3 * clockPeriod_, 2 * clockPeriod_ + maxArrival +
                                     CellLibrary::tsmc013c().clkToQ() + 21);
}

EventSim& TimingOracle::session() const {
  if (!session_)
    session_ = std::make_unique<EventSim>(compiled_, simCfg_,
                                          CellLibrary::tsmc013c());
  return *session_;
}

TimingOracle::Capture TimingOracle::queryWith(
    EventSim& sim, const std::vector<Logic>& piValues,
    const std::vector<Logic>& state) const {
  assert(piValues.size() == dataPIs_.size());
  assert(state.size() == numShared_);
  const CellLibrary& lib = CellLibrary::tsmc013c();

  sim.reset();
  const auto& flops = locked_.flops();
  for (std::size_t i = 0; i < flops.size(); ++i)
    sim.setClockArrival(flops[i], clockArrival_[i]);
  for (std::size_t i = 0; i < numShared_; ++i)
    sim.setCaptureStart(flops[i], 2);
  for (std::size_t i = 0; i < keyInputs_.size(); ++i)
    sim.setInitialInput(keyInputs_[i], logicFromBool(keyValues_[i] != 0));
  for (std::size_t i = 0; i < dataPIs_.size(); ++i)
    sim.setInitialInput(dataPIs_[i], piValues[i]);
  for (std::size_t i = 0; i < numShared_; ++i)
    sim.setInitialState(flops[i], state[i]);
  sim.run();

  Capture cap;
  cap.poValues.reserve(locked_.outputs().size());
  for (NetId po : locked_.outputs())
    cap.poValues.push_back(sim.valueAt(po, 2 * clockPeriod_));
  cap.captured.reserve(numShared_);
  for (std::size_t i = 0; i < numShared_; ++i) {
    const NetId q = locked_.gate(flops[i]).out;
    cap.captured.push_back(sim.valueAt(
        q, 2 * clockPeriod_ + clockArrival_[i] + lib.clkToQ() + 20));
  }
  cap.violations = static_cast<int>(sim.violations().size());
  return cap;
}

TimingOracle::Capture TimingOracle::query(
    const std::vector<Logic>& piValues, const std::vector<Logic>& state) const {
  ++queries_;
  return queryWith(session(), piValues, state);
}

std::vector<TimingOracle::Capture> TimingOracle::queryBatch(
    const std::vector<Query>& queries, runtime::ThreadPool* pool) const {
  std::vector<Capture> out(queries.size());
  runtime::ThreadPool& p = pool ? *pool : runtime::ThreadPool::global();
  const std::size_t lanes =
      std::min<std::size_t>(static_cast<std::size_t>(p.threads()),
                            queries.size());
  if (lanes <= 1) {
    EventSim sim(compiled_, simCfg_);
    for (std::size_t i = 0; i < queries.size(); ++i)
      out[i] = queryWith(sim, queries[i].piValues, queries[i].state);
  } else {
    // Contiguous chunks, one task (and one reusable session) per lane;
    // every out[i] depends only on queries[i], so scheduling cannot change
    // the result.
    runtime::TaskGroup group(&p);
    for (std::size_t t = 0; t < lanes; ++t) {
      const std::size_t begin = queries.size() * t / lanes;
      const std::size_t end = queries.size() * (t + 1) / lanes;
      group.run([this, &queries, &out, begin, end] {
        EventSim sim(compiled_, simCfg_);
        for (std::size_t i = begin; i < end; ++i)
          out[i] = queryWith(sim, queries[i].piValues, queries[i].state);
      });
    }
    group.wait();
  }
  queries_ += queries.size();
  return out;
}

}  // namespace gkll
