#include "attack/oracle.h"

#include <algorithm>
#include <cassert>

#include "netlist/cell_library.h"
#include "sim/event_sim.h"
#include "sim/logic_sim.h"

namespace gkll {

CombOracle::CombOracle(const Netlist& comb)
    : comb_(CompiledNetlist::compile(comb)) {
  assert(comb.flops().empty() && "CombOracle wants a combinational netlist");
}

std::vector<Logic> CombOracle::query(const std::vector<Logic>& inputs) const {
  ++queries_;
  const std::vector<Logic> nets = comb_.evalComb(inputs);
  return outputValues(comb_.source(), nets);
}

std::vector<PackedBits> CombOracle::queryPacked(
    const std::vector<PackedBits>& inputs, unsigned patterns) const {
  assert(patterns >= 1 && patterns <= 64);
  queries_ += patterns;
  comb_.evalPacked(inputs, {}, packedNets_);
  return comb_.outputLanes(packedNets_);
}

std::vector<std::vector<Logic>> CombOracle::queryBatch(
    const std::vector<std::vector<Logic>>& patterns) const {
  std::vector<std::vector<Logic>> results(patterns.size());
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t n = std::min<std::size_t>(64, patterns.size() - base);
    const std::vector<std::vector<Logic>> chunk(
        patterns.begin() + static_cast<std::ptrdiff_t>(base),
        patterns.begin() + static_cast<std::ptrdiff_t>(base + n));
    const std::vector<PackedBits> outs =
        queryPacked(packPatterns(chunk), static_cast<unsigned>(n));
    for (std::size_t l = 0; l < n; ++l)
      results[base + l] = unpackLane(outs, static_cast<unsigned>(l));
  }
  return results;
}

TimingOracle::TimingOracle(const Netlist& locked, std::vector<Ps> clockArrival,
                           std::vector<NetId> keyInputs,
                           std::vector<int> keyValues, Ps clockPeriod,
                           std::size_t numSharedFlops)
    : locked_(locked),
      clockArrival_(std::move(clockArrival)),
      keyInputs_(std::move(keyInputs)),
      keyValues_(std::move(keyValues)),
      clockPeriod_(clockPeriod),
      numShared_(numSharedFlops) {
  assert(clockArrival_.size() == locked_.flops().size());
  assert(keyInputs_.size() == keyValues_.size());
  // Data PIs = every primary input that is not a key input.
  for (NetId pi : locked_.inputs()) {
    if (std::find(keyInputs_.begin(), keyInputs_.end(), pi) ==
        keyInputs_.end())
      dataPIs_.push_back(pi);
  }
}

TimingOracle::Capture TimingOracle::query(
    const std::vector<Logic>& piValues, const std::vector<Logic>& state) const {
  ++queries_;
  assert(piValues.size() == dataPIs_.size());
  assert(state.size() == numShared_);
  const CellLibrary& lib = CellLibrary::tsmc013c();

  // The shared (functional) flops hold their scanned state through edge 1
  // while the KEYGEN flops toggle normally; the single observed functional
  // capture is edge 2, whose GK glitches were triggered by the edge-1
  // KEYGEN toggle — matching a real scan sequence, where shift pulses keep
  // the KEYGEN toggling right up to the capture pulse.
  EventSimConfig cfg;
  cfg.clockPeriod = clockPeriod_;
  cfg.simTime = 3 * clockPeriod_;
  EventSim sim(locked_, cfg, lib);
  for (std::size_t i = 0; i < locked_.flops().size(); ++i)
    sim.setClockArrival(locked_.flops()[i], clockArrival_[i]);
  for (std::size_t i = 0; i < numShared_; ++i)
    sim.setCaptureStart(locked_.flops()[i], 2);
  for (std::size_t i = 0; i < keyInputs_.size(); ++i)
    sim.setInitialInput(keyInputs_[i], logicFromBool(keyValues_[i] != 0));
  for (std::size_t i = 0; i < dataPIs_.size(); ++i)
    sim.setInitialInput(dataPIs_[i], piValues[i]);
  for (std::size_t i = 0; i < numShared_; ++i)
    sim.setInitialState(locked_.flops()[i], state[i]);
  sim.run();

  Capture cap;
  for (NetId po : locked_.outputs())
    cap.poValues.push_back(sim.valueAt(po, 2 * clockPeriod_));
  for (std::size_t i = 0; i < numShared_; ++i) {
    const NetId q = locked_.gate(locked_.flops()[i]).out;
    cap.captured.push_back(sim.valueAt(
        q, 2 * clockPeriod_ + clockArrival_[i] + lib.clkToQ() + 20));
  }
  cap.violations = static_cast<int>(sim.violations().size());
  return cap;
}

}  // namespace gkll
