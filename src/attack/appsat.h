// AppSAT — approximate SAT-based deobfuscation (Shamsi et al., HOST'17
// [10]), the attack the paper credits with cracking the SAT-resistant
// point-function schemes.
//
// Idea: run the ordinary DIP loop, but every `reconcileEvery` iterations
// draw `randomQueries` random input patterns, compare the current
// candidate key's circuit against the oracle, add the failing patterns
// as constraints, and *stop early* once the observed error rate drops
// below `errorThreshold`.  Against SARLock/Anti-SAT this converges
// almost immediately to an approximate key whose only residual errors
// are the point-function patterns — "approximately deobfuscated", which
// defeats those schemes' exponential-DIP defence.  Against a GK-locked
// design the very first reconciliation shows the candidate is wrong on
// roughly every pattern that exercises a GK'd flop, no key ever scores
// below the threshold, and the attack exits empty-handed.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "runtime/pool.h"
#include "sat/solver.h"

namespace gkll {

struct AppSatOptions {
  int maxIterations = 4096;
  int reconcileEvery = 2;     ///< DIPs between random-query reconciliations
  int randomQueries = 64;     ///< patterns per reconciliation
  double errorThreshold = 0.02;  ///< accept keys with error rate below this
  std::uint64_t seed = 71;
  std::uint64_t conflictBudget = 0;  ///< per solver call; 0 = unlimited
  /// Pool for the packed-oracle reconciliation sweeps (null = global pool).
  /// Patterns are drawn and constraints applied serially, so the result is
  /// byte-identical at any thread count.
  runtime::ThreadPool* pool = nullptr;
};

struct AppSatResult {
  bool succeeded = false;  ///< found a key under the error threshold
  std::vector<int> approximateKey;
  double errorRate = 1.0;  ///< measured on fresh random patterns
  int dips = 0;
  int reconciliations = 0;
  bool exactlyCorrect = false;  ///< the approximate key is SAT-equivalent
  bool keyConstraintsUnsat = false;  ///< no key fits the observations (GK)
};

/// Run AppSAT on a combinational locked core against the oracle circuit
/// (interfaces as in satAttack).
AppSatResult appSatAttack(const Netlist& lockedComb,
                          const std::vector<NetId>& keyInputs,
                          const Netlist& oracleComb,
                          const AppSatOptions& opt = {});

}  // namespace gkll
