#include "attack/enhanced_sat.h"

#include <algorithm>
#include <cassert>

#include "obs/telemetry.h"
#include "sat/cnf.h"
#include "util/rng.h"

namespace gkll {

using sat::mkLit;
using sat::Result;
using sat::Solver;
using sat::Var;

namespace {

struct Sample {
  std::vector<Logic> pis;
  std::vector<Logic> state;
  TimingOracle::Capture cap;
};

/// Encode one chip probe into `solver`: a copy of the locked core with the
/// probe's inputs pinned and the key nets bound to `keyVars`.  When
/// `onlyOutput` >= 0 only that output's observation is asserted (used for
/// the per-bit explainability analysis); X observations are skipped.
void encodeSample(Solver& solver, const Netlist& comb,
                  const std::vector<NetId>& dataPIs,
                  const std::vector<NetId>& keyInputs,
                  const std::vector<Var>& keyVars, const Sample& smp,
                  const std::vector<Logic>& observed, int onlyOutput) {
  std::vector<NetId> bound;
  std::vector<Var> boundVars;
  std::size_t di = 0;
  auto pin = [&](NetId n, Logic v) {
    const Var c = solver.newVar();
    solver.addClause(mkLit(c, v != Logic::T));
    bound.push_back(n);
    boundVars.push_back(c);
  };
  for (Logic v : smp.pis) pin(dataPIs[di++], v);
  for (Logic v : smp.state) pin(dataPIs[di++], v);
  for (std::size_t i = 0; i < keyInputs.size(); ++i) {
    bound.push_back(keyInputs[i]);
    boundVars.push_back(keyVars[i]);
  }
  const std::vector<Var> vc = encodeNetlist(solver, comb, bound, boundVars);
  for (std::size_t o = 0; o < comb.outputs().size(); ++o) {
    if (onlyOutput >= 0 && static_cast<std::size_t>(onlyOutput) != o) continue;
    if (observed[o] == Logic::X) continue;  // violation: no observation
    solver.addClause(mkLit(vc[comb.outputs()[o]], observed[o] != Logic::T));
  }
}

}  // namespace

EnhancedSatResult enhancedSatAttack(const Netlist& lockedComb,
                                    const std::vector<NetId>& keyInputs,
                                    const TimingOracle& chip,
                                    const EnhancedSatOptions& opt) {
  EnhancedSatResult res;
  assert(lockedComb.flops().empty());
  obs::Span span("attack.enhanced_sat");

  // Data inputs: everything that is not a key, in inputs() order — first
  // the original PIs, then the pseudo (state) PIs.
  std::vector<NetId> dataPIs;
  for (NetId pi : lockedComb.inputs()) {
    if (std::find(keyInputs.begin(), keyInputs.end(), pi) == keyInputs.end())
      dataPIs.push_back(pi);
  }
  const std::size_t numPIs = chip.numDataPIs();
  const std::size_t numState = chip.numSharedFlops();
  assert(dataPIs.size() == numPIs + numState);

  // Probe the chip.
  obs::Span probeSpan("attack.enhanced_sat.probe");
  probeSpan.arg("samples", opt.samples);
  Rng rng(opt.seed);
  std::vector<Sample> samples;
  for (int s = 0; s < opt.samples; ++s) {
    Sample smp;
    smp.pis.resize(numPIs);
    smp.state.resize(numState);
    for (Logic& v : smp.pis) v = logicFromBool(rng.flip());
    for (Logic& v : smp.state) v = logicFromBool(rng.flip());
    smp.cap = chip.query(smp.pis, smp.state);
    samples.push_back(std::move(smp));
  }
  res.samplesUsed = opt.samples;
  probeSpan.end();
  obs::count("attack.enhanced_sat.samples",
             static_cast<std::uint64_t>(opt.samples));

  auto observedOf = [&](const Sample& smp) {
    std::vector<Logic> obs = smp.cap.poValues;
    obs.insert(obs.end(), smp.cap.captured.begin(), smp.cap.captured.end());
    assert(obs.size() == lockedComb.outputs().size());
    return obs;
  };

  // Main question: is there any constant key under which the stable-value
  // timed model reproduces every observation?
  {
    obs::Span consistencySpan("attack.enhanced_sat.consistency");
    Solver s;
    std::vector<Var> keyVars;
    for (std::size_t i = 0; i < keyInputs.size(); ++i) keyVars.push_back(s.newVar());
    for (const Sample& smp : samples)
      encodeSample(s, lockedComb, dataPIs, keyInputs, keyVars, smp,
                   observedOf(smp), -1);
    if (s.solve() == Result::kSat) {
      res.modelConsistent = true;
      for (std::size_t i = 0; i < keyInputs.size(); ++i)
        res.recoveredKey.push_back(s.modelValue(keyVars[i]) ? 1 : 0);
      return res;
    }
  }

  // Per-output explainability: which capture bits no key can account for
  // (these are the glitch-transmitted values).  Bounded for large designs.
  if (lockedComb.outputs().size() <= 512) {
    obs::Span explainSpan("attack.enhanced_sat.explain");
    explainSpan.arg("outputs",
                    static_cast<std::int64_t>(lockedComb.outputs().size()));
    for (std::size_t o = 0; o < lockedComb.outputs().size(); ++o) {
      Solver s;
      std::vector<Var> keyVars;
      for (std::size_t i = 0; i < keyInputs.size(); ++i)
        keyVars.push_back(s.newVar());
      for (const Sample& smp : samples)
        encodeSample(s, lockedComb, dataPIs, keyInputs, keyVars, smp,
                     observedOf(smp), static_cast<int>(o));
      if (s.solve() == Result::kUnsat) ++res.inexplicableBits;
    }
  }
  if (obs::enabled()) {
    span.arg("model_consistent", res.modelConsistent ? 1 : 0);
    span.arg("inexplicable_bits", res.inexplicableBits);
    obs::count("attack.enhanced_sat.runs");
    obs::count("attack.enhanced_sat.inexplicable_bits",
               static_cast<std::uint64_t>(res.inexplicableBits));
  }
  return res;
}

}  // namespace gkll
