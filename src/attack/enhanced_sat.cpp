#include "attack/enhanced_sat.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "obs/journal.h"
#include "obs/progress.h"
#include "obs/telemetry.h"
#include "sat/cnf.h"
#include "util/rng.h"

namespace gkll {

using sat::mkLit;
using sat::Result;
using sat::Solver;
using sat::Var;

namespace {

struct Sample {
  std::vector<Logic> pis;
  std::vector<Logic> state;
  TimingOracle::Capture cap;
};

/// Encode one chip probe into `solver`: a key-cone-reduced copy of the
/// locked core under the probe's inputs (pre-folded into `foldedNets` with
/// the keys X-valued), key nets bound to `keyVars`.  When `onlyOutput` >= 0
/// only that output's observation is asserted (used for the per-bit
/// explainability analysis); X observations are skipped.  A folded-constant
/// output that contradicts its observation is inexplicable under *every*
/// key, so the whole formula is made unsatisfiable.
void encodeSample(Solver& solver, const CompiledNetlist& locked,
                  const std::vector<NetId>& keyInputs,
                  const std::vector<Var>& keyVars,
                  const std::vector<PackedBits>& foldedNets,
                  sat::ConstVars& consts, const std::vector<Logic>& observed,
                  int onlyOutput) {
  const Netlist& comb = locked.source();
  const std::vector<Var> vc = sat::encodeResidual(
      solver, locked, foldedNets, 0, keyInputs, keyVars, consts);
  for (std::size_t o = 0; o < comb.outputs().size(); ++o) {
    if (onlyOutput >= 0 && static_cast<std::size_t>(onlyOutput) != o) continue;
    if (observed[o] == Logic::X) continue;  // violation: no observation
    const NetId on = comb.outputs()[o];
    const Logic fv = packedLane(foldedNets[on], 0);
    if (fv == Logic::X)
      solver.addClause(mkLit(vc[on], observed[o] != Logic::T));
    else if ((fv == Logic::T) != (observed[o] == Logic::T))
      solver.addClause(std::vector<sat::Lit>{});
  }
}

}  // namespace

EnhancedSatResult enhancedSatAttack(const Netlist& lockedComb,
                                    const std::vector<NetId>& keyInputs,
                                    const TimingOracle& chip,
                                    const EnhancedSatOptions& opt) {
  EnhancedSatResult res;
  assert(lockedComb.flops().empty());
  obs::Span span("attack.enhanced_sat");

  // Data inputs: everything that is not a key, in inputs() order — first
  // the original PIs, then the pseudo (state) PIs.
  std::vector<NetId> dataPIs;
  for (NetId pi : lockedComb.inputs()) {
    if (std::find(keyInputs.begin(), keyInputs.end(), pi) == keyInputs.end())
      dataPIs.push_back(pi);
  }
  const std::size_t numPIs = chip.numDataPIs();
  const std::size_t numState = chip.numSharedFlops();
  assert(dataPIs.size() == numPIs + numState);

  // Probe the chip.  Stimuli are pre-drawn serially — every rng.flip()
  // happens in the exact order the old per-query loop drew them, so the
  // stream (and therefore every downstream result) is unchanged — then the
  // whole batch fans across queryBatch's per-lane cached sim sessions.
  obs::Span probeSpan("attack.enhanced_sat.probe");
  probeSpan.arg("samples", opt.samples);
  Rng rng(opt.seed);
  std::vector<TimingOracle::Query> queries(
      static_cast<std::size_t>(opt.samples));
  for (TimingOracle::Query& q : queries) {
    q.piValues.resize(numPIs);
    q.state.resize(numState);
    for (Logic& v : q.piValues) v = logicFromBool(rng.flip());
    for (Logic& v : q.state) v = logicFromBool(rng.flip());
  }
  obs::ProgressReporter progress(
      "enhanced-sat probe",
      {.total = static_cast<std::uint64_t>(opt.samples), .units = "queries"});
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<TimingOracle::Capture> captures =
      chip.queryBatch(queries, opt.pool);
  const double batchUs = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  if (obs::enabled() && opt.samples > 0) {
    obs::histRecord("attack.oracle.batch_us", batchUs);
    // Amortised per-query cost — the batch analogue of the old per-query
    // "attack.oracle.us" samples.
    obs::histRecord("attack.oracle.us", batchUs / opt.samples);
  }
  std::vector<Sample> samples;
  samples.reserve(queries.size());
  for (std::size_t s = 0; s < queries.size(); ++s) {
    samples.push_back(Sample{std::move(queries[s].piValues),
                             std::move(queries[s].state),
                             std::move(captures[s])});
    progress.tick();
  }
  progress.done();
  res.samplesUsed = opt.samples;
  probeSpan.end();
  obs::count("attack.enhanced_sat.samples",
             static_cast<std::uint64_t>(opt.samples));
  if (obs::journalEnabled()) {
    obs::journalRecord("attack.enhanced_sat.probe")
        .i64("samples", opt.samples)
        .i64("data_pis", static_cast<std::int64_t>(numPIs))
        .i64("state_bits", static_cast<std::int64_t>(numState));
  }

  auto observedOf = [&](const Sample& smp) {
    std::vector<Logic> obs = smp.cap.poValues;
    obs.insert(obs.end(), smp.cap.captured.begin(), smp.cap.captured.end());
    assert(obs.size() == lockedComb.outputs().size());
    return obs;
  };

  // Fold each probe through the circuit once (keys X-valued): both the
  // consistency and the explainability phases stamp the same residual.
  const CompiledNetlist locked = CompiledNetlist::compile(lockedComb);
  std::vector<std::vector<PackedBits>> foldedBySample(samples.size());
  {
    std::vector<PackedBits> foldIn(lockedComb.inputs().size(),
                                   packedSplat(Logic::X));
    std::vector<int> slotOf(lockedComb.numNets(), -1);
    for (std::size_t i = 0; i < lockedComb.inputs().size(); ++i)
      slotOf[lockedComb.inputs()[i]] = static_cast<int>(i);
    for (std::size_t si = 0; si < samples.size(); ++si) {
      std::size_t di = 0;
      for (Logic v : samples[si].pis)
        foldIn[static_cast<std::size_t>(slotOf[dataPIs[di++]])] =
            packedSplat(v);
      for (Logic v : samples[si].state)
        foldIn[static_cast<std::size_t>(slotOf[dataPIs[di++]])] =
            packedSplat(v);
      locked.evalPacked(foldIn, {}, foldedBySample[si]);
    }
  }

  auto journalDone = [&] {
    if (!obs::journalEnabled()) return;
    obs::journalRecord("attack.enhanced_sat.done")
        .hex("netlist_hash", lockedComb.contentHash())
        .i64("samples", res.samplesUsed)
        .boolean("model_consistent", res.modelConsistent)
        .i64("inexplicable_bits", res.inexplicableBits);
  };

  // Main question: is there any constant key under which the stable-value
  // timed model reproduces every observation?
  {
    obs::Span consistencySpan("attack.enhanced_sat.consistency");
    Solver s;
    std::vector<Var> keyVars;
    for (std::size_t i = 0; i < keyInputs.size(); ++i) keyVars.push_back(s.newVar());
    sat::ConstVars consts;
    for (std::size_t si = 0; si < samples.size(); ++si)
      encodeSample(s, locked, keyInputs, keyVars, foldedBySample[si], consts,
                   observedOf(samples[si]), -1);
    if (s.solve() == Result::kSat) {
      res.modelConsistent = true;
      for (std::size_t i = 0; i < keyInputs.size(); ++i)
        res.recoveredKey.push_back(s.modelValue(keyVars[i]) ? 1 : 0);
      journalDone();
      return res;
    }
  }

  // Per-output explainability: which capture bits no key can account for
  // (these are the glitch-transmitted values).  Bounded for large designs.
  if (lockedComb.outputs().size() <= 512) {
    obs::Span explainSpan("attack.enhanced_sat.explain");
    explainSpan.arg("outputs",
                    static_cast<std::int64_t>(lockedComb.outputs().size()));
    for (std::size_t o = 0; o < lockedComb.outputs().size(); ++o) {
      Solver s;
      std::vector<Var> keyVars;
      for (std::size_t i = 0; i < keyInputs.size(); ++i)
        keyVars.push_back(s.newVar());
      sat::ConstVars consts;
      for (std::size_t si = 0; si < samples.size(); ++si)
        encodeSample(s, locked, keyInputs, keyVars, foldedBySample[si], consts,
                     observedOf(samples[si]), static_cast<int>(o));
      if (s.solve() == Result::kUnsat) ++res.inexplicableBits;
    }
  }
  if (obs::enabled()) {
    span.arg("model_consistent", res.modelConsistent ? 1 : 0);
    span.arg("inexplicable_bits", res.inexplicableBits);
    obs::count("attack.enhanced_sat.runs");
    obs::count("attack.enhanced_sat.inexplicable_bits",
               static_cast<std::uint64_t>(res.inexplicableBits));
  }
  journalDone();
  return res;
}

}  // namespace gkll
