// Removal attack (Yasin et al. [15][16]; paper Secs. I and V-C).
//
// SAT-attack-resistant blocks (SARLock, Anti-SAT) keep output corruption
// rare, which forces an internal "flip" signal to be almost always 0 —
// a signal-probability skew an attacker can measure by random simulation.
// The attack: estimate per-net signal probabilities, look for a
// key-dependent, extremely skewed net that is XOR-ed into functional
// logic, and bypass it with its dominant constant.  Against conventional
// XOR key gates (and against GKs, whose outputs are unbiased) there is no
// such skew and the attack finds nothing — matching Sec. V-C.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/logic.h"
#include "netlist/netlist.h"
#include "netlist/packed_eval.h"

namespace gkll {

/// Reusable Monte-Carlo signal-probability sampler for one combinational
/// netlist.  Compiles the design ONCE (CompiledNetlist + WideEvaluator
/// sweep plan) at construction and evaluates 256 random patterns per
/// packed sweep; the historical path recompiled the netlist for every
/// single sample, which made the removal/withholding attack side O(samples
/// x compile) — the ROADMAP item 2 residual bench_scale's sigprob stage
/// now gates against.
///
/// estimate() is byte-identical to that historical path: the Rng draw
/// order (sample-major, then input order within a sample) is preserved
/// exactly, and the wide kernels are property-tested bit-equal to the
/// narrow evaluator, so existing skew thresholds and tests see the same
/// probabilities to the last ulp.
class SignalProbSession {
 public:
  /// `comb` must be flop-free and outlive the session.
  explicit SignalProbSession(const Netlist& comb);
  SignalProbSession(const SignalProbSession&) = delete;
  SignalProbSession& operator=(const SignalProbSession&) = delete;

  /// Per-net P(net == 1) over `samples` uniform random input patterns.
  std::vector<double> estimate(int samples, std::uint64_t seed);

 private:
  std::size_t numNets_ = 0;
  std::size_t numInputs_ = 0;
  CompiledNetlist cn_;
  WideEvaluator wide_;        // points into cn_: session is immovable
  WideEvaluator::Buffer buf_; // reused across estimate() calls
};

/// Monte-Carlo signal-probability estimate over a combinational netlist
/// with uniformly random inputs (data and key alike).  One-shot wrapper
/// around SignalProbSession; repeated callers should hold a session.
std::vector<double> estimateSignalProbabilities(const Netlist& comb,
                                                int samples,
                                                std::uint64_t seed);

struct RemovalAttackOptions {
  int samples = 4096;
  double skewThreshold = 0.01;  ///< prob within this of 0/1 counts as skewed
  std::uint64_t seed = 17;
};

struct RemovalAttackResult {
  bool located = false;      ///< a bypassable flip signal was found
  NetId flipSignal = kNoNet; ///< the skewed net feeding an XOR splice
  double flipProbability = 0.0;
  std::vector<NetId> skewedKeyNets;  ///< all skewed nets in key fanout cones
  Netlist repaired;          ///< locked netlist with the block bypassed
  /// True when the repaired circuit (keys tied off arbitrarily) is
  /// equivalent to the oracle — the attack fully restored the function.
  bool restoredFunction = false;
};

/// Run the attack on a combinational locked netlist against the oracle.
RemovalAttackResult removalAttack(const Netlist& lockedComb,
                                  const std::vector<NetId>& keyInputs,
                                  const Netlist& oracleComb,
                                  const RemovalAttackOptions& opt = {});

}  // namespace gkll
