// Removal attack (Yasin et al. [15][16]; paper Secs. I and V-C).
//
// SAT-attack-resistant blocks (SARLock, Anti-SAT) keep output corruption
// rare, which forces an internal "flip" signal to be almost always 0 —
// a signal-probability skew an attacker can measure by random simulation.
// The attack: estimate per-net signal probabilities, look for a
// key-dependent, extremely skewed net that is XOR-ed into functional
// logic, and bypass it with its dominant constant.  Against conventional
// XOR key gates (and against GKs, whose outputs are unbiased) there is no
// such skew and the attack finds nothing — matching Sec. V-C.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/logic.h"
#include "netlist/netlist.h"

namespace gkll {

/// Monte-Carlo signal-probability estimate over a combinational netlist
/// with uniformly random inputs (data and key alike).
std::vector<double> estimateSignalProbabilities(const Netlist& comb,
                                                int samples,
                                                std::uint64_t seed);

struct RemovalAttackOptions {
  int samples = 4096;
  double skewThreshold = 0.01;  ///< prob within this of 0/1 counts as skewed
  std::uint64_t seed = 17;
};

struct RemovalAttackResult {
  bool located = false;      ///< a bypassable flip signal was found
  NetId flipSignal = kNoNet; ///< the skewed net feeding an XOR splice
  double flipProbability = 0.0;
  std::vector<NetId> skewedKeyNets;  ///< all skewed nets in key fanout cones
  Netlist repaired;          ///< locked netlist with the block bypassed
  /// True when the repaired circuit (keys tied off arbitrarily) is
  /// equivalent to the oracle — the attack fully restored the function.
  bool restoredFunction = false;
};

/// Run the attack on a combinational locked netlist against the oracle.
RemovalAttackResult removalAttack(const Netlist& lockedComb,
                                  const std::vector<NetId>& keyInputs,
                                  const Netlist& oracleComb,
                                  const RemovalAttackOptions& opt = {});

}  // namespace gkll
