#include "attack/sensitization.h"

#include <algorithm>
#include <cassert>

#include "attack/oracle.h"
#include "sat/cnf.h"
#include "sim/logic_sim.h"

namespace gkll {

using sat::mkLit;
using sat::Result;
using sat::Solver;
using sat::Var;

namespace {

/// Evaluate one output of the locked core under a concrete (X, key).
Logic evalOutput(const Netlist& lockedComb, const std::vector<NetId>& dataPIs,
                 const std::vector<NetId>& keyInputs,
                 const std::vector<Logic>& x, const std::vector<int>& key,
                 std::size_t outIdx) {
  std::vector<Logic> in(lockedComb.inputs().size(), Logic::F);
  std::vector<int> slot(lockedComb.numNets(), -1);
  for (std::size_t i = 0; i < lockedComb.inputs().size(); ++i)
    slot[lockedComb.inputs()[i]] = static_cast<int>(i);
  for (std::size_t i = 0; i < dataPIs.size(); ++i)
    in[static_cast<std::size_t>(slot[dataPIs[i]])] = x[i];
  for (std::size_t i = 0; i < keyInputs.size(); ++i)
    in[static_cast<std::size_t>(slot[keyInputs[i]])] =
        logicFromBool(key[i] != 0);
  const auto nets = evalCombinational(lockedComb, in);
  return nets[lockedComb.outputs()[outIdx]];
}

}  // namespace

SensitizationResult sensitizationAttack(const Netlist& lockedComb,
                                        const std::vector<NetId>& keyInputs,
                                        const Netlist& oracleComb,
                                        const SensitizationOptions& opt) {
  SensitizationResult res;
  res.recoveredKey.assign(keyInputs.size(), -1);
  assert(lockedComb.flops().empty());

  std::vector<NetId> dataPIs;
  for (NetId pi : lockedComb.inputs()) {
    if (std::find(keyInputs.begin(), keyInputs.end(), pi) == keyInputs.end())
      dataPIs.push_back(pi);
  }
  CombOracle oracle(oracleComb);
  const CompiledNetlist locked = CompiledNetlist::compile(lockedComb);
  std::vector<int> slot(lockedComb.numNets(), -1);
  for (std::size_t i = 0; i < lockedComb.inputs().size(); ++i)
    slot[lockedComb.inputs()[i]] = static_cast<int>(i);

  // For the universal checks we pin X and let the other keys roam; this
  // helper builds a two-copy instance with k_i = 0 / kOtherFixed and
  // returns UNSAT-ness of "the two outputs can agree".  X is concrete in
  // both checks, so each copy is key-cone reduced: fold X through the
  // circuit once with the keys X-valued and stamp only the residual.  A
  // folded-constant output binds both copies to the same pinned constant,
  // making "can agree" trivially SAT (not golden) and "can differ"
  // trivially UNSAT (constant in the other keys) — exactly the full
  // encoding's answers for a key-independent output.
  auto goldenFor = [&](std::size_t ki, const std::vector<Logic>& x,
                       std::size_t outIdx) -> bool {
    std::vector<PackedBits> foldIn(lockedComb.inputs().size(),
                                   packedSplat(Logic::X));
    for (std::size_t i = 0; i < dataPIs.size(); ++i)
      foldIn[static_cast<std::size_t>(slot[dataPIs[i]])] = packedSplat(x[i]);
    std::vector<PackedBits> foldedNets;
    locked.evalPacked(foldIn, {}, foldedNets);
    const NetId o = lockedComb.outputs()[outIdx];
    const Logic fo = packedLane(foldedNets[o], 0);

    Solver u;
    sat::ConstVars uConsts;
    auto pinInputs = [&](int kiValue,
                         const std::vector<Var>& sharedOther) -> Var {
      std::vector<NetId> bound;
      std::vector<Var> bv;
      std::size_t oi = 0;
      for (std::size_t i = 0; i < keyInputs.size(); ++i) {
        bound.push_back(keyInputs[i]);
        if (i == ki) {
          const Var c = u.newVar();
          u.addClause(mkLit(c, kiValue == 0));
          bv.push_back(c);
        } else {
          bv.push_back(sharedOther[oi++]);
        }
      }
      const auto vc =
          sat::encodeResidual(u, locked, foldedNets, 0, bound, bv, uConsts);
      return fo == Logic::X ? vc[o] : uConsts.get(u, fo == Logic::T);
    };
    std::vector<Var> other;
    for (std::size_t i = 0; i < keyInputs.size(); ++i)
      if (i != ki) other.push_back(u.newVar());
    const Var vA = pinInputs(0, other);
    const Var vB = pinInputs(1, other);
    // "They can agree" — UNSAT means the pattern is golden for this bit.
    const Var agree = u.newVar();
    sat::addGateClauses(u, CellKind::kXnor2, {vA, vB}, agree);
    u.addClause(mkLit(agree));
    if (u.solve() != Result::kUnsat) return false;

    // The read-off also needs C(X, 0, ·)[o] to be constant in the other
    // keys (two independent other-key copies must agree).
    Solver w;
    sat::ConstVars wConsts;
    std::vector<Var> otherA, otherB;
    for (std::size_t i = 0; i < keyInputs.size(); ++i)
      if (i != ki) {
        otherA.push_back(w.newVar());
        otherB.push_back(w.newVar());
      }
    auto pinW = [&](const std::vector<Var>& others) -> Var {
      std::vector<NetId> bound;
      std::vector<Var> bv;
      std::size_t oi = 0;
      for (std::size_t i = 0; i < keyInputs.size(); ++i) {
        bound.push_back(keyInputs[i]);
        if (i == ki) {
          const Var c = w.newVar();
          w.addClause(mkLit(c, true));  // k_i = 0
          bv.push_back(c);
        } else {
          bv.push_back(others[oi++]);
        }
      }
      const auto vc =
          sat::encodeResidual(w, locked, foldedNets, 0, bound, bv, wConsts);
      return fo == Logic::X ? vc[o] : wConsts.get(w, fo == Logic::T);
    };
    const Var wA = pinW(otherA);
    const Var wB = pinW(otherB);
    const Var differ = w.newVar();
    sat::addGateClauses(w, CellKind::kXor2, {wA, wB}, differ);
    w.addClause(mkLit(differ));
    return w.solve() == Result::kUnsat;
  };

  for (std::size_t ki = 0; ki < keyInputs.size(); ++ki) {
    // Existential search: X and some other-key witness under which the
    // two k_i polarities split an output.
    Solver s;
    std::vector<Var> other;
    for (std::size_t i = 0; i < keyInputs.size(); ++i)
      if (i != ki) other.push_back(s.newVar());
    std::vector<Var> xVars;
    for (std::size_t i = 0; i < dataPIs.size(); ++i) xVars.push_back(s.newVar());
    auto pinS = [&](int kiValue) {
      std::vector<NetId> bound = dataPIs;
      std::vector<Var> bv = xVars;
      std::size_t oi = 0;
      for (std::size_t i = 0; i < keyInputs.size(); ++i) {
        bound.push_back(keyInputs[i]);
        if (i == ki) {
          const Var c = s.newVar();
          s.addClause(mkLit(c, kiValue == 0));
          bv.push_back(c);
        } else {
          bv.push_back(other[oi++]);
        }
      }
      // The existential phase leaves X free, so it keeps the full
      // encoding — but stamps it from the shared compiled view.
      return encodeNetlist(s, locked, bound, bv);
    };
    const auto v0 = pinS(0);
    const auto v1 = pinS(1);
    std::vector<Var> diffs;
    for (NetId po : lockedComb.outputs())
      diffs.push_back(sat::makeXor(s, v0[po], v1[po]));
    s.addClause(mkLit(sat::makeOrReduce(s, diffs)));

    for (int attempt = 0; attempt < opt.maxPatternsPerKey; ++attempt) {
      if (s.solve() != Result::kSat) break;  // bit never reaches an output
      std::vector<Logic> x;
      for (std::size_t i = 0; i < dataPIs.size(); ++i)
        x.push_back(logicFromBool(s.modelValue(xVars[i])));
      std::size_t outIdx = lockedComb.outputs().size();
      for (std::size_t o = 0; o < diffs.size(); ++o) {
        if (s.modelValue(diffs[o])) {
          outIdx = o;
          break;
        }
      }
      assert(outIdx < lockedComb.outputs().size());

      if (goldenFor(ki, x, outIdx)) {
        // Read the bit off the chip.
        const std::vector<Logic> y = oracle.query(x);
        ++res.oracleQueries;
        std::vector<int> probeKey(keyInputs.size(), 0);
        const Logic value0 =
            evalOutput(lockedComb, dataPIs, keyInputs, x, probeKey, outIdx);
        res.recoveredKey[ki] = (y[outIdx] == value0) ? 0 : 1;
        ++res.resolvedBits;
        break;
      }
      // Block this X and look for another candidate pattern.
      std::vector<sat::Lit> block;
      for (std::size_t i = 0; i < xVars.size(); ++i)
        block.push_back(mkLit(xVars[i], s.modelValue(xVars[i])));
      s.addClause(std::move(block));
    }
  }
  return res;
}

}  // namespace gkll
