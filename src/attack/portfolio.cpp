#include "attack/portfolio.h"

#include <atomic>
#include <utility>

#include "obs/telemetry.h"
#include "runtime/parallel.h"
#include "runtime/seed.h"
#include "runtime/sweep.h"

namespace gkll {

sat::SolverConfig portfolioConfig(int racer, std::uint64_t seed) {
  using Phase = sat::SolverConfig::Phase;
  sat::SolverConfig cfg;  // racer 0: the historical default, untouched
  switch (racer) {
    case 0:
      break;
    case 1:
      cfg.initialPhase = Phase::kAllTrue;
      cfg.restartBase = 128;
      break;
    case 2:
      cfg.initialPhase = Phase::kRandom;
      cfg.restartBase = 32;
      cfg.varDecay = 0.92;
      break;
    case 3:
      cfg.initialPhase = Phase::kRandom;
      cfg.restartBase = 256;
      cfg.varDecay = 0.98;
      break;
    default: {
      // Past the hand-picked schedule: pseudo-random but fully determined
      // by (racer, seed).
      const std::uint64_t h =
          runtime::taskSeed(seed, static_cast<std::uint64_t>(racer));
      cfg.initialPhase = (h & 1) ? Phase::kAllTrue : Phase::kRandom;
      cfg.restartBase = 32ULL << ((h >> 1) & 3);       // 32..256
      cfg.varDecay = 0.91 + 0.02 * ((h >> 3) & 3);     // 0.91..0.97
      break;
    }
  }
  if (cfg.initialPhase == Phase::kRandom)
    cfg.seed = runtime::taskSeed(seed, static_cast<std::uint64_t>(racer));
  return cfg;
}

PortfolioResult portfolioSatAttack(const Netlist& lockedComb,
                                   const std::vector<NetId>& keyInputs,
                                   const Netlist& oracleComb,
                                   const PortfolioOptions& opt) {
  obs::Span span("attack.portfolio");
  const double t0 = runtime::wallMsNow();

  PortfolioResult pr;
  const int racers = opt.racers > 0 ? opt.racers : 1;
  pr.outcomes.resize(static_cast<std::size_t>(racers));

  // Encode the miter once; every racer replays the shared template's
  // clause log instead of re-running the CNF encoder.  The replayed
  // formula is literally identical to a direct encode, so diversification
  // stays purely heuristic.
  const MiterTemplate miter =
      buildMiterTemplate(CompiledNetlist::compile(lockedComb), keyInputs);

  // One shared flag stops every racer the moment a winner is definitive.
  const runtime::CancelToken race = runtime::CancelToken::make();
  std::atomic<int> winner{-1};

  runtime::ThreadPool& pool =
      opt.pool != nullptr ? *opt.pool : runtime::ThreadPool::global();
  runtime::TaskGroup group(&pool);
  for (int i = 0; i < racers; ++i) {
    group.run([&, i] {
      RacerOutcome& out = pr.outcomes[static_cast<std::size_t>(i)];
      out.config = portfolioConfig(i, opt.seed);
      SatAttackOptions ro = opt.base;
      ro.solverConfig = out.config;
      ro.cancel = race;
      ro.miter = &miter;
      const double rt0 = runtime::wallMsNow();
      out.result = satAttack(lockedComb, keyInputs, oracleComb, ro);
      out.wallMs = runtime::wallMsNow() - rt0;
      out.definitive =
          out.result.converged || out.result.keyConstraintsUnsat;
      if (out.definitive) {
        int expect = -1;
        if (winner.compare_exchange_strong(expect, i))
          race.requestCancel();  // we own the race: stop the losers
      }
    });
  }
  group.wait();

  pr.winner = winner.load();
  // Nobody definitive (deadline/budget everywhere): report the default
  // config's outcome, which is what the serial attack would have said.
  pr.result = pr.outcomes[static_cast<std::size_t>(
                              pr.winner >= 0 ? pr.winner : 0)]
                  .result;
  for (const RacerOutcome& o : pr.outcomes)
    if (o.result.canceled) ++pr.canceledRacers;
  pr.wallMs = runtime::wallMsNow() - t0;

  if (obs::enabled()) {
    span.arg("racers", racers);
    span.arg("winner", pr.winner);
    span.arg("canceled", pr.canceledRacers);
    obs::count("attack.portfolio.runs");
    obs::count("attack.portfolio.canceled_racers",
               static_cast<std::uint64_t>(pr.canceledRacers));
    obs::record("attack.portfolio.wall_ms", pr.wallMs);
  }
  return pr;
}

}  // namespace gkll
