#include "attack/scan_attack.h"

#include <algorithm>
#include <cassert>

#include "sim/logic_sim.h"
#include "util/rng.h"

namespace gkll {

std::vector<bool> markKeyDependent(const Netlist& nl,
                                   const std::vector<NetId>& unknownKeys) {
  std::vector<bool> dep(nl.numNets(), false);
  std::vector<NetId> stack(unknownKeys.begin(), unknownKeys.end());
  for (NetId n : unknownKeys) dep[n] = true;
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    for (GateId g : nl.net(n).fanouts) {
      const Gate& gg = nl.gate(g);
      if (gg.out == kNoNet || gg.kind == CellKind::kDff) continue;
      if (!dep[gg.out]) {
        dep[gg.out] = true;
        stack.push_back(gg.out);
      }
    }
  }
  return dep;
}

ScanAttackResult scanAttack(const Netlist& locked,
                            const std::vector<GkInsertion>& insertions,
                            const std::vector<bool>& keyDependentNets,
                            const TimingOracle& chip) {
  ScanAttackResult res;
  const std::size_t numPIs = chip.numDataPIs();
  const std::size_t numState = chip.numSharedFlops();

  // Flop index of each GK host (hosts are original flops, hence shared).
  std::vector<std::size_t> hostIndex;
  for (const GkInsertion& ins : insertions) {
    const GateId host = locked.net(ins.gk.y).fanouts.empty()
                            ? kNoGate
                            : locked.net(ins.gk.y).fanouts.front();
    assert(host != kNoGate && locked.gate(host).kind == CellKind::kDff);
    const auto& flops = locked.flops();
    const auto it = std::find(flops.begin(), flops.end(), host);
    assert(it != flops.end());
    hostIndex.push_back(static_cast<std::size_t>(it - flops.begin()));
  }

  Rng rng(0x5CA9);
  SequentialSim model(locked);
  const std::size_t totalPIs = locked.inputs().size();

  for (std::size_t gi = 0; gi < insertions.size(); ++gi) {
    const GkInsertion& ins = insertions[gi];
    if (keyDependentNets[ins.gk.x]) {
      ++res.unresolved;  // the attacker cannot predict x
      res.verdicts.push_back(0);
      continue;
    }

    int verdict = 0;  // +1 buffer, -1 inverter
    bool consistent = true;
    int probes = 0;
    for (int t = 0; t < 8 && probes < 4; ++t) {
      std::vector<Logic> pis(numPIs), state(numState);
      for (Logic& v : pis) v = logicFromBool(rng.flip());
      for (Logic& v : state) v = logicFromBool(rng.flip());

      // Attacker-side prediction of x from the static netlist (unknown
      // keys driven arbitrarily — x's cone is key-free here).
      std::vector<Logic> fullPIs(totalPIs, Logic::F);
      for (std::size_t p = 0; p < numPIs; ++p) fullPIs[p] = pis[p];
      std::vector<Logic> fullState(locked.flops().size(), Logic::F);
      for (std::size_t i = 0; i < numState; ++i) fullState[i] = state[i];
      model.setState(fullState);
      model.step(fullPIs);
      const Logic xPred = model.netValues()[ins.gk.x];
      if (xPred == Logic::X) continue;

      const TimingOracle::Capture cap = chip.query(pis, state);
      const Logic got = cap.captured[hostIndex[gi]];
      if (got == Logic::X) continue;  // violating probe: retry
      ++probes;
      const int thisVerdict = (got == xPred) ? 1 : -1;
      if (verdict == 0) {
        verdict = thisVerdict;
      } else if (verdict != thisVerdict) {
        consistent = false;
        break;
      }
    }

    if (!consistent || probes == 0) {
      ++res.unresolved;
      res.verdicts.push_back(0);
    } else if (verdict > 0) {
      ++res.resolvedBuffers;
      res.verdicts.push_back(1);
    } else {
      ++res.resolvedInverters;
      res.verdicts.push_back(-1);
    }
  }
  return res;
}

}  // namespace gkll
