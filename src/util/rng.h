// Deterministic pseudo-random number generation.
//
// All randomised algorithms in the library (benchmark generation, key-gate
// placement, random pattern simulation, ...) take an explicit seed and use
// this generator so that every experiment is exactly reproducible.  The
// engine is xoshiro256** seeded through splitmix64, which has excellent
// statistical quality and is far faster than std::mt19937_64.
#pragma once

#include <cstdint>
#include <vector>

namespace gkll {

/// Deterministic xoshiro256** PRNG.  Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Fair coin flip.
  bool flip() { return (next() & 1ULL) != 0; }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derive an independent child generator (for parallel sub-tasks).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace gkll
