#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace gkll {

std::string Table::render() const {
  std::vector<std::size_t> widths;
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto hline = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      out << ' ' << c << std::string(widths[i] - c.size(), ' ') << " |";
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  hline();
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (std::find(separators_.begin(), separators_.end(), i) != separators_.end())
      hline();
    emit(rows_[i]);
  }
  hline();
  return out.str();
}

std::string fmtF(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmtI(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string fmtNs(std::int64_t ps) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2fns", static_cast<double>(ps) / 1000.0);
  return buf;
}

}  // namespace gkll
