#include "util/rng.h"

namespace gkll {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // A state of all zeros is the one forbidden state of xoshiro256**.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace gkll
