// Minimal JSON value model + recursive-descent parser.
//
// This exists for the *reading* side of the observability stack: the
// run-journal replayer (obs/journal.h), the metrics/BENCH file loader in
// obs/report.h, and the exporter round-trip tests all need to consume the
// JSON this codebase itself emits.  It is a strict parser of standard
// JSON (RFC 8259) minus surrogate-pair decoding (escapes are preserved
// verbatim in the decoded string as \uXXXX text never appears in our own
// emitters' input data); it is not a general-purpose serializer — the
// writers stay hand-rolled where they live today.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gkll::util {

/// One parsed JSON value.  Objects keep insertion order (journal records
/// are written with a deliberate field order and the reader preserves it).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool isObject() const { return kind == Kind::kObject; }
  bool isArray() const { return kind == Kind::kArray; }
  bool isNumber() const { return kind == Kind::kNumber; }
  bool isString() const { return kind == Kind::kString; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* find(std::string_view key) const;

  /// Convenience typed getters with defaults, for tolerant consumers.
  double numberOr(std::string_view key, double def) const;
  std::string stringOr(std::string_view key, std::string_view def) const;
  bool boolOr(std::string_view key, bool def) const;
};

/// Parse `text` as exactly one JSON document (trailing whitespace allowed,
/// anything else is an error).  On failure returns false and, when `err`
/// is non-null, stores a byte-offset-annotated message.
bool parseJson(std::string_view text, JsonValue& out,
               std::string* err = nullptr);

}  // namespace gkll::util
