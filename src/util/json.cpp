#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace gkll::util {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::numberOr(std::string_view key, double def) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::kNumber) ? v->number : def;
}

std::string JsonValue::stringOr(std::string_view key,
                                std::string_view def) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::kString) ? v->string
                                                    : std::string(def);
}

bool JsonValue::boolOr(std::string_view key, bool def) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::kBool) ? v->boolean : def;
}

namespace {

class Parser {
 public:
  Parser(std::string_view s, std::string* err) : s_(s), err_(err) {}

  bool parse(JsonValue& out) {
    skipWs();
    if (!value(out)) return false;
    skipWs();
    if (pos_ != s_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (err_ != nullptr) {
      char buf[160];
      std::snprintf(buf, sizeof buf, "JSON error at byte %zu: %s", pos_, msg);
      *err_ = buf;
    }
    return false;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool value(JsonValue& out) {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    bool ok;
    switch (peek()) {
      case '{': ok = object(out); break;
      case '[': ok = array(out); break;
      case '"':
        out.kind = JsonValue::Kind::kString;
        ok = string(out.string);
        break;
      case 't':
        ok = literal("true");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        break;
      case 'f':
        ok = literal("false");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        break;
      case 'n':
        ok = literal("null");
        out.kind = JsonValue::Kind::kNull;
        break;
      default: ok = number(out); break;
    }
    --depth_;
    return ok;
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skipWs();
      std::string key;
      if (!string(key)) return false;
      skipWs();
      if (peek() != ':') return fail("expected ':' in object");
      ++pos_;
      skipWs();
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skipWs();
      JsonValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string(std::string& out) {
    if (peek() != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("short \\u escape");
          for (int i = 0; i < 4; ++i)
            if (std::isxdigit(static_cast<unsigned char>(s_[pos_ + static_cast<std::size_t>(i)])) == 0)
              return fail("bad \\u escape");
          // Preserved verbatim (see header): our own emitters only escape
          // control characters, which round-trip fine as text.
          out += "\\u";
          out.append(s_, pos_, 4);
          pos_ += 4;
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(peek())) == 0)
      return fail("expected value");
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return fail("bad fraction");
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return fail("bad exponent");
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                             nullptr);
    return true;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  static constexpr int kMaxDepth = 64;
  std::string_view s_;
  std::string* err_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool parseJson(std::string_view text, JsonValue& out, std::string* err) {
  out = JsonValue{};
  return Parser(text, err).parse(out);
}

}  // namespace gkll::util
