// Time and area units used throughout the library.
//
// All delays, arrival times, clock periods and timing windows are integer
// picoseconds (Ps).  Integer time makes static timing analysis and the
// event-driven simulator exactly reproducible and free of floating-point
// accumulation error.  Areas are integer centi-square-microns (CentiUm2,
// i.e. um^2 * 100) for the same reason.
#pragma once

#include <cstdint>

namespace gkll {

/// Picoseconds.  1 ns == 1000 ps.
using Ps = std::int64_t;

/// Convenience: construct a picosecond count from nanoseconds.
constexpr Ps ns(std::int64_t n) { return n * 1000; }

/// Area in hundredths of a square micron (um^2 * 100).
using CentiUm2 = std::int64_t;

/// Convenience: construct an area from square microns.
constexpr CentiUm2 um2(double a) { return static_cast<CentiUm2>(a * 100.0 + 0.5); }

/// Convert an area back to square microns for reporting.
constexpr double toUm2(CentiUm2 a) { return static_cast<double>(a) / 100.0; }

/// Sentinel for "no/unknown time" in STA results.
inline constexpr Ps kNoTime = INT64_MIN;

}  // namespace gkll
