// Plain-text table rendering used by the benchmark harnesses to print the
// paper's tables in a shape directly comparable with the publication.
#pragma once

#include <string>
#include <vector>

namespace gkll {

/// Column-aligned ASCII table with a header row and a title.
///
/// Usage:
///   Table t("TABLE I: available FFs");
///   t.header({"Bench.", "Cell", "FF"});
///   t.row({"s1238", "341", "18"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  void header(std::vector<std::string> cells) { header_ = std::move(cells); }
  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Insert a horizontal separator before the next row.
  void separator() { separators_.push_back(rows_.size()); }

  /// Render the table; every column is padded to its widest cell.
  [[nodiscard]] std::string render() const;

  std::size_t numRows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;
};

/// Format a double with fixed decimals (for overhead percentages etc.).
std::string fmtF(double v, int decimals = 2);

/// Format an integer with no grouping.
std::string fmtI(long long v);

/// Format a picosecond count as nanoseconds with 2 decimals, e.g. "3.00ns".
std::string fmtNs(std::int64_t ps);

}  // namespace gkll
