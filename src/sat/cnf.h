// Tseitin encoding of combinational netlists into CNF, plus the SAT-based
// equivalence checker used by the tests and by the attack evaluation.
//
// Only combinational netlists can be encoded (run netlist_ops'
// extractCombinational first for sequential designs — exactly what the
// paper does before applying the SAT attack).  kDelay elements encode as
// buffers: CNF sees steady-state logic only, which is precisely why a SAT
// model cannot see the value carried on a glitch (paper Sec. V-A).
#pragma once

#include <vector>

#include "netlist/compiled.h"
#include "netlist/logic.h"
#include "netlist/netlist.h"
#include "sat/solver.h"

namespace gkll::sat {

/// Add the consistency clauses of one cell to the solver.
void addGateClauses(Solver& s, CellKind kind, const std::vector<Var>& ins,
                    Var out, std::uint64_t lutMask = 0);

/// Encode a combinational netlist.  Nets listed in `boundNets` reuse the
/// corresponding variable from `boundVars` (used to share PIs between the
/// two miter copies); all other nets get fresh variables.  Returns one
/// variable per net, indexed by NetId.
///
/// The CompiledNetlist overload is the repeated-encoding path: the SAT
/// attacks pin a fresh circuit copy per DIP, so they compile the locked
/// core once and re-encode from the analyzed view.
std::vector<Var> encodeNetlist(Solver& s, const CompiledNetlist& cn,
                               const std::vector<NetId>& boundNets = {},
                               const std::vector<Var>& boundVars = {});
std::vector<Var> encodeNetlist(Solver& s, const Netlist& nl,
                               const std::vector<NetId>& boundNets = {},
                               const std::vector<Var>& boundVars = {});

/// Static transitive fanout cone of a set of seed nets (typically the key
/// inputs): every gate/net whose value can depend on some seed.  Computed
/// once per compiled netlist and shared across all DIP iterations; the
/// complement is the part of the circuit a concrete DIP folds to constants.
struct FanoutCone {
  std::vector<std::uint8_t> gateInCone;  ///< per GateId
  std::vector<std::uint8_t> netInCone;   ///< per NetId (seeds included)
  std::size_t gateCount = 0;             ///< live gates inside the cone
};
FanoutCone computeFanoutCone(const CompiledNetlist& cn,
                             const std::vector<NetId>& seeds);

/// Lazily created pinned constant variables (one true, one false) per
/// solver — the binding points for folded-constant nets in encodeResidual.
/// Reuse one instance per solver so repeated residual copies share them.
class ConstVars {
 public:
  Var get(Solver& s, bool value);

 private:
  Var var_[2] = {-1, -1};
};

/// Key-cone-reduced copy encoding: the repeated-stamping path of the SAT
/// attacks.  `folded` is a packed evaluation of `cn` with the data inputs
/// concrete and the key inputs X; gates whose folded output on `lane` is a
/// constant are NOT encoded — their nets bind to a pinned constant from
/// `consts`, and addClause's root-level simplification folds them out of
/// the residual clauses.  Only the gates the key can still influence under
/// this input (folded output X on `lane`) get clauses.  `boundNets`/
/// `boundVars` bind nets (typically the key inputs) to existing variables,
/// taking precedence over folded constants.  Returns one variable per net;
/// nets outside the residual that no residual gate reads stay -1 — callers
/// must consult `folded` before indexing an output net.
std::vector<Var> encodeResidual(Solver& s, const CompiledNetlist& cn,
                                const std::vector<PackedBits>& folded,
                                unsigned lane,
                                const std::vector<NetId>& boundNets,
                                const std::vector<Var>& boundVars,
                                ConstVars& consts);

/// Tseitin helpers over already-created variables.
Var makeAnd(Solver& s, Var a, Var b);
Var makeOr(Solver& s, Var a, Var b);
Var makeXor(Solver& s, Var a, Var b);
/// OR-reduce a set of variables into one output variable (0 vars -> const
/// false variable).
Var makeOrReduce(Solver& s, const std::vector<Var>& vs);

/// Combinational equivalence result.
struct EquivResult {
  bool equivalent = false;
  /// When inequivalent: an input assignment (in inputs() order of `a`)
  /// on which the two circuits' outputs differ.
  std::vector<Logic> counterexample;
};

/// SAT-based combinational equivalence of two netlists with identical
/// PI/PO counts (matched by position).
EquivResult checkEquivalence(const Netlist& a, const Netlist& b);

}  // namespace gkll::sat
