// DIMACS CNF interchange: export the solver's clause log (or any clause
// list) for cross-checking with external SAT solvers, and import/solve
// DIMACS files with this library's CDCL engine.  Used by the differential
// tests and handy for debugging hard attack instances offline.
#pragma once

#include <string>
#include <vector>

#include "sat/solver.h"

namespace gkll::sat {

/// A parsed DIMACS formula (variables are 0-based internally).
struct DimacsFormula {
  int numVars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Serialise clauses in DIMACS CNF format (1-based, negative = negated).
std::string writeDimacs(const std::vector<std::vector<Lit>>& clauses,
                        int numVars);

/// Parse DIMACS text.  Returns false (with a diagnostic) on malformed
/// input; tolerates comments and missing/underspecified headers.
bool parseDimacs(const std::string& text, DimacsFormula& out,
                 std::string& error);

/// Load a formula into a fresh solver and solve it.
Result solveDimacs(const DimacsFormula& f, std::vector<bool>* model = nullptr);

}  // namespace gkll::sat
