#include "sat/dimacs.h"

#include <cstdlib>
#include <sstream>

namespace gkll::sat {

std::string writeDimacs(const std::vector<std::vector<Lit>>& clauses,
                        int numVars) {
  std::ostringstream out;
  out << "c gkll CNF export\n";
  out << "p cnf " << numVars << ' ' << clauses.size() << '\n';
  for (const auto& cl : clauses) {
    for (const Lit l : cl)
      out << (litSign(l) ? -(litVar(l) + 1) : (litVar(l) + 1)) << ' ';
    out << "0\n";
  }
  return out.str();
}

bool parseDimacs(const std::string& text, DimacsFormula& out,
                 std::string& error) {
  out = DimacsFormula{};
  std::istringstream in(text);
  std::string line;
  std::vector<Lit> current;
  int declaredClauses = -1;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream hdr(line);
      std::string p, cnf;
      hdr >> p >> cnf >> out.numVars >> declaredClauses;
      if (hdr.fail() || cnf != "cnf" || out.numVars < 0 ||
          declaredClauses < 0) {
        error = "line " + std::to_string(lineNo) + ": bad header";
        return false;
      }
      continue;
    }
    std::istringstream body(line);
    long long v;
    while (body >> v) {
      if (v == 0) {
        out.clauses.push_back(current);
        current.clear();
        continue;
      }
      const long long var = v > 0 ? v : -v;
      if (var > (1LL << 28)) {
        error = "line " + std::to_string(lineNo) + ": variable too large";
        return false;
      }
      out.numVars = std::max(out.numVars, static_cast<int>(var));
      current.push_back(mkLit(static_cast<Var>(var - 1), v < 0));
    }
    if (body.fail() && !body.eof()) {
      error = "line " + std::to_string(lineNo) + ": not a number";
      return false;
    }
  }
  if (!current.empty()) out.clauses.push_back(current);  // tolerate missing 0
  if (declaredClauses >= 0 &&
      static_cast<std::size_t>(declaredClauses) != out.clauses.size()) {
    // Header mismatch is a warning-grade issue in the wild; accept it.
  }
  error.clear();
  return true;
}

Result solveDimacs(const DimacsFormula& f, std::vector<bool>* model) {
  Solver s;
  for (int i = 0; i < f.numVars; ++i) s.newVar();
  for (const auto& cl : f.clauses) {
    if (!s.addClause(cl)) return Result::kUnsat;
  }
  const Result r = s.solve();
  if (r == Result::kSat && model) {
    model->assign(static_cast<std::size_t>(f.numVars), false);
    for (int i = 0; i < f.numVars; ++i) (*model)[static_cast<std::size_t>(i)] = s.modelValue(i);
  }
  return r;
}

}  // namespace gkll::sat
