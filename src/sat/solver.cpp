#include "sat/solver.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "obs/telemetry.h"
#include "runtime/seed.h"

namespace gkll::sat {
namespace {

/// Conflicts/decisions between cooperative deadline checks.  The cancel
/// token is a bare atomic load and is polled on the same cadence; the
/// deadline additionally reads the steady clock, so the interval keeps the
/// clock off the hot path (64 conflicts is microseconds of search).
inline constexpr std::uint64_t kStopCheckInterval = 64;

/// Learned-clause tier boundaries (glucose): LBD <= kCoreLbd lives forever,
/// LBD <= kMidLbd survives reductions while it keeps getting used.
inline constexpr std::uint32_t kCoreLbd = 2;
inline constexpr std::uint32_t kMidLbd = 6;

/// reduceDb cadence: first reduction after this many conflicts, then the
/// interval stretches by kReduceIncrement per reduction so long refutations
/// keep the clauses they need.
inline constexpr std::uint64_t kFirstReduce = 4000;
inline constexpr std::uint64_t kReduceIncrement = 100;

/// The (i+1)-th element of the Luby restart sequence: 1 1 2 1 1 2 4 ...
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return 1ULL << seq;
}

}  // namespace

Solver::Solver() = default;

// --- arena clause database ---------------------------------------------------

float Solver::clauseActivity(ClauseRef c) const {
  return std::bit_cast<float>(arena_[c + 2]);
}

void Solver::setClauseActivity(ClauseRef c, float a) {
  arena_[c + 2] = std::bit_cast<std::uint32_t>(a);
}

Solver::ClauseRef Solver::allocClause(const std::vector<Lit>& lits,
                                      bool learned, std::uint32_t lbd) {
  const ClauseRef c = static_cast<ClauseRef>(arena_.size());
  const std::uint32_t header =
      (static_cast<std::uint32_t>(lits.size()) << kSizeShift) |
      (learned ? kLearnedBit : 0u);
  arena_.push_back(header);
  if (learned) {
    arena_.push_back(lbd);
    arena_.push_back(std::bit_cast<std::uint32_t>(0.0f));
    setClauseTier(c, lbd <= kCoreLbd   ? kTierCore
                     : lbd <= kMidLbd ? kTierMid
                                      : kTierLocal);
  }
  arena_.insert(arena_.end(), reinterpret_cast<const std::uint32_t*>(lits.data()),
                reinterpret_cast<const std::uint32_t*>(lits.data()) +
                    lits.size());
  stats_.arenaBytes = arena_.size() * sizeof(std::uint32_t);
  return c;
}

std::uint8_t Solver::initialPhaseOf(Var v) const {
  switch (cfg_.initialPhase) {
    case SolverConfig::Phase::kAllTrue:
      return kTrue;
    case SolverConfig::Phase::kRandom:
      // Deterministic per-variable polarity: same seed => same phases,
      // independent of variable creation order interleaving.
      return (runtime::taskSeed(cfg_.seed, static_cast<std::uint64_t>(v)) & 1)
                 ? kTrue
                 : kFalse;
    case SolverConfig::Phase::kAllFalse:
    default:
      return kFalse;
  }
}

void Solver::setConfig(const SolverConfig& cfg) {
  cfg_ = cfg;
  // Re-seed the saved polarity of every variable not yet pinned by search,
  // so setConfig after CNF encoding still diversifies the first descent.
  for (Var v = 0; v < static_cast<Var>(phase_.size()); ++v)
    phase_[static_cast<std::size_t>(v)] = initialPhaseOf(v);
}

Var Solver::newVar() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(kUndef);
  phase_.push_back(initialPhaseOf(v));
  level_.push_back(0);
  reason_.push_back(kRefUndef);
  activity_.push_back(0.0);
  heapPos_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heapInsert(v);
  return v;
}

void Solver::attach(ClauseRef c) {
  const Lit* lits = clauseLits(c);
  const std::uint32_t n = clauseSize(c);
  assert(n >= 2);
  if (n == 2) {
    // Binary specialization: the co-literal rides in the watcher, so
    // propagating a binary clause never dereferences the arena.
    watches_[negLit(lits[0])].push_back({c | kBinFlag, lits[1]});
    watches_[negLit(lits[1])].push_back({c | kBinFlag, lits[0]});
    ++stats_.binaryClauses;
    return;
  }
  watches_[negLit(lits[0])].push_back({c, lits[1]});
  watches_[negLit(lits[1])].push_back({c, lits[0]});
}

bool Solver::addClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  assert(trailLim_.empty() && "clauses must be added at the root level");
  if (logClauses_) clauseLog_.push_back(lits);
  // Normalise: sort, dedupe, drop tautologies and root-false literals.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> out;
  out.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const Lit l = lits[i];
    if (i + 1 < lits.size() && litVar(lits[i + 1]) == litVar(l))
      return true;  // adjacent after sort => x and !x: tautology
    const std::uint8_t v = litValue(l);
    if (v == kTrue) return true;  // satisfied at root
    if (v == kFalse) continue;    // drop
    out.push_back(l);
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kRefUndef);
    if (propagate() != kRefUndef) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const ClauseRef c = allocClause(out, /*learned=*/false, 0);
  ++numOriginal_;
  attach(c);
  return true;
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  const Var v = litVar(l);
  assert(assign_[v] == kUndef);
  assign_[v] = litSign(l) ? kFalse : kTrue;
  phase_[v] = assign_[v];
  level_[v] = static_cast<int>(trailLim_.size());
  reason_[v] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    const Lit falseLit = negLit(p);

    std::vector<Watcher>& ws = watches_[p];
    Watcher* const begin = ws.data();
    Watcher* const end = begin + ws.size();
    Watcher* keep = begin;
    for (Watcher* i = begin; i != end; ++i) {
      const Watcher w = *i;
      if (i + 1 != end)
        __builtin_prefetch(arena_.data() + (i[1].clause & ~kBinFlag));
      if (w.clause & kBinFlag) {
        // Binary clause: conflict/satisfied/unit all decided from the
        // co-literal — the arena is never touched.  The watcher never
        // migrates, so it is always kept.
        *keep++ = w;
        const std::uint8_t v = litValue(w.blocker);
        if (v == kFalse) {
          for (Watcher* k = i + 1; k != end; ++k) *keep++ = *k;
          ws.resize(static_cast<std::size_t>(keep - begin));
          qhead_ = trail_.size();
          return w.clause & ~kBinFlag;
        }
        if (v == kUndef) enqueue(w.blocker, w.clause & ~kBinFlag);
        continue;
      }
      // Blocker check first: if it is true the clause is satisfied and we
      // never touch the clause body.
      if (litValue(w.blocker) == kTrue) {
        *keep++ = w;
        continue;
      }
      const ClauseRef cr = w.clause;
      const std::uint32_t header = arena_[cr];
      // Branchless literal offset: +1 header word, +2 more when learned.
      Lit* lits =
          reinterpret_cast<Lit*>(arena_.data() + cr + 1 + ((header & 1u) << 1));
      const std::uint32_t n = header >> kSizeShift;
      if (lits[0] == falseLit) std::swap(lits[0], lits[1]);
      assert(lits[1] == falseLit);
      if (litValue(lits[0]) == kTrue) {  // satisfied by the other watch
        *keep++ = {cr, lits[0]};
        continue;
      }
      bool moved = false;
      for (std::uint32_t k = 2; k < n; ++k) {
        if (litValue(lits[k]) != kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[negLit(lits[1])].push_back({cr, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      *keep++ = {cr, lits[0]};  // stays watched here
      if (litValue(lits[0]) == kFalse) {
        // Conflict: keep the remaining watches and report.
        for (Watcher* k = i + 1; k != end; ++k) *keep++ = *k;
        ws.resize(static_cast<std::size_t>(keep - begin));
        qhead_ = trail_.size();
        return cr;
      }
      enqueue(lits[0], cr);
    }
    ws.resize(static_cast<std::size_t>(keep - begin));
  }
  return kRefUndef;
}

void Solver::bumpVar(Var v) {
  activity_[v] += varInc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    varInc_ *= 1e-100;
  }
  if (inHeap(v)) heapUp(heapPos_[v]);
}

void Solver::decayVarActivity() { varInc_ /= cfg_.varDecay; }

void Solver::bumpClause(ClauseRef c) {
  if (!clauseLearned(c)) return;
  arena_[c] |= kTouchedBit;  // used since the last reduction: protected
  const float a = clauseActivity(c) + clauseInc_;
  setClauseActivity(c, a);
  if (a > 1e20f) {
    // Rescale every learned clause's activity (arena walk: rare).
    for (ClauseRef r = 0; r < static_cast<ClauseRef>(arena_.size());
         r += (clauseLearned(r) ? 3 : 1) + clauseSize(r)) {
      if (clauseLearned(r)) setClauseActivity(r, clauseActivity(r) * 1e-20f);
    }
    clauseInc_ *= 1e-20f;
  }
}

std::uint32_t Solver::computeLbd(const std::vector<Lit>& lits) {
  if (lbdStamp_.size() < trailLim_.size() + 1)
    lbdStamp_.resize(trailLim_.size() + 1, 0);
  ++lbdStampGen_;
  std::uint32_t lbd = 0;
  for (const Lit l : lits) {
    const std::size_t lv = static_cast<std::size_t>(level_[litVar(l)]);
    if (lbdStamp_[lv] != lbdStampGen_) {
      lbdStamp_[lv] = lbdStampGen_;
      ++lbd;
    }
  }
  return lbd;
}

bool Solver::litRedundant(Lit l, std::uint32_t abstractLevels) {
  analyzeStack_.clear();
  analyzeStack_.push_back(l);
  const std::size_t clearTop = analyzeToClear_.size();
  while (!analyzeStack_.empty()) {
    const Lit q = analyzeStack_.back();
    analyzeStack_.pop_back();
    const ClauseRef r = reason_[litVar(q)];
    assert(r != kRefUndef);
    const Lit* lits = clauseLits(r);
    const std::uint32_t n = clauseSize(r);
    for (std::uint32_t i = 0; i < n; ++i) {
      const Lit cl = lits[i];
      const Var v = litVar(cl);
      if (seen_[v] || level_[v] == 0) continue;
      if (reason_[v] == kRefUndef ||
          ((1u << (level_[v] & 31)) & abstractLevels) == 0) {
        // Hit a decision or a level outside the clause: not redundant.
        for (std::size_t j = clearTop; j < analyzeToClear_.size(); ++j)
          seen_[litVar(analyzeToClear_[j])] = 0;
        analyzeToClear_.resize(clearTop);
        return false;
      }
      seen_[v] = 1;
      analyzeStack_.push_back(cl);
      analyzeToClear_.push_back(cl);
    }
  }
  return true;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                     int& btLevel) {
  learnt.clear();
  learnt.push_back(kLitUndef);  // slot for the asserting literal
  int counter = 0;
  Lit p = kLitUndef;
  ClauseRef reason = conflict;
  std::size_t index = trail_.size();
  analyzeToClear_.clear();
  const int curLevel = static_cast<int>(trailLim_.size());

  do {
    assert(reason != kRefUndef);
    bumpClause(reason);
    const Lit* lits = clauseLits(reason);
    const std::uint32_t n = clauseSize(reason);
    for (std::uint32_t i = 0; i < n; ++i) {
      const Lit q = lits[i];
      if (q == p) continue;
      const Var v = litVar(q);
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      analyzeToClear_.push_back(q);
      bumpVar(v);
      if (level_[v] >= curLevel)
        ++counter;
      else
        learnt.push_back(q);
    }
    while (!seen_[litVar(trail_[--index])]) {
    }
    p = trail_[index];
    reason = reason_[litVar(p)];
    seen_[litVar(p)] = 0;
    --counter;
  } while (counter > 0);
  learnt[0] = negLit(p);

  // Learned-clause minimisation: drop literals implied by the rest.
  std::uint32_t abstractLevels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i)
    abstractLevels |= 1u << (level_[litVar(learnt[i])] & 31);
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[litVar(learnt[i])] == kRefUndef ||
        !litRedundant(learnt[i], abstractLevels))
      learnt[keep++] = learnt[i];
  }
  learnt.resize(keep);

  btLevel = 0;
  std::size_t maxIdx = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (level_[litVar(learnt[i])] > btLevel) {
      btLevel = level_[litVar(learnt[i])];
      maxIdx = i;
    }
  }
  if (learnt.size() > 1) std::swap(learnt[1], learnt[maxIdx]);

  for (const Lit q : analyzeToClear_) seen_[litVar(q)] = 0;
  analyzeToClear_.clear();
}

void Solver::backtrack(int toLevel) {
  if (static_cast<int>(trailLim_.size()) <= toLevel) return;
  const std::size_t bound = static_cast<std::size_t>(trailLim_[toLevel]);
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const Var v = litVar(trail_[i - 1]);
    assign_[v] = kUndef;
    reason_[v] = kRefUndef;
    if (!inHeap(v)) heapInsert(v);
  }
  trail_.resize(bound);
  trailLim_.resize(static_cast<std::size_t>(toLevel));
  qhead_ = bound;
}

Lit Solver::pickBranchLit() {
  while (!heap_.empty()) {
    const Var v = heapPop();
    if (assign_[v] == kUndef) return mkLit(v, phase_[v] == kFalse);
  }
  return kLitUndef;
}

void Solver::reduceDb() {
  assert(trailLim_.empty() && "reduceDb runs at the root level");
  nextReduceConflicts_ =
      stats_.conflicts + kFirstReduce + kReduceIncrement * ++reduceCount_;
  if (numLearned_ < 2000) return;

  // Root-level assignments are permanent, so reasons are never consulted
  // again for level-0 variables — clear them before the arena moves.
  for (const Lit l : trail_) reason_[litVar(l)] = kRefUndef;

  // Pass 1 (tier management): demote mid-tier clauses that went unused
  // since the last reduction, then rank the unprotected local tier by
  // (LBD desc, activity asc) and mark the worse half for deletion.
  struct Victim {
    std::uint32_t lbd;
    float act;
    ClauseRef ref;
  };
  std::vector<Victim> victims;
  const auto refEnd = static_cast<ClauseRef>(arena_.size());
  for (ClauseRef c = 0; c < refEnd;
       c += (clauseLearned(c) ? 3 : 1) + clauseSize(c)) {
    if (!clauseLearned(c)) continue;
    const bool touched = (arena_[c] & kTouchedBit) != 0;
    arena_[c] &= ~kTouchedBit;  // protection lasts one reduction round
    if (clauseTier(c) == kTierMid && !touched) setClauseTier(c, kTierLocal);
    if (clauseTier(c) == kTierLocal && !touched)
      victims.push_back({clauseLbd(c), clauseActivity(c), c});
  }
  std::sort(victims.begin(), victims.end(), [](const Victim& a, const Victim& b) {
    if (a.lbd != b.lbd) return a.lbd > b.lbd;
    if (a.act != b.act) return a.act < b.act;
    return a.ref < b.ref;
  });
  victims.resize(victims.size() * 3 / 4);  // worse three quarters die
  std::vector<ClauseRef> deadRefs;
  deadRefs.reserve(victims.size());
  for (const Victim& v : victims) deadRefs.push_back(v.ref);
  std::sort(deadRefs.begin(), deadRefs.end());

  // Pass 2 (compaction with on-the-fly shrinking): copy the survivors into
  // a fresh arena, dropping clauses satisfied at the root and removing
  // root-false literals.  After root propagation every unsatisfied clause
  // keeps >= 2 unassigned literals, so the watch invariant is rebuilt
  // directly from the first two.
  const std::vector<std::uint32_t> old = std::move(arena_);
  arena_ = {};
  arena_.reserve(old.size());
  stats_.binaryClauses = 0;
  numOriginal_ = 0;
  numLearned_ = 0;
  for (auto& ws : watches_) ws.clear();

  auto oldLearned = [&](ClauseRef c) { return (old[c] & kLearnedBit) != 0; };
  auto oldSize = [&](ClauseRef c) { return old[c] >> kSizeShift; };
  std::vector<Lit> shrunk;
  std::uint64_t dropped = 0;
  for (ClauseRef c = 0; c < static_cast<ClauseRef>(old.size());
       c += (oldLearned(c) ? 3 : 1) + oldSize(c)) {
    const bool learned = oldLearned(c);
    if (learned &&
        std::binary_search(deadRefs.begin(), deadRefs.end(), c)) {
      ++dropped;
      continue;
    }
    const Lit* lits =
        reinterpret_cast<const Lit*>(old.data() + c + (learned ? 3 : 1));
    const std::uint32_t n = oldSize(c);
    shrunk.clear();
    bool satisfied = false;
    for (std::uint32_t i = 0; i < n && !satisfied; ++i) {
      const std::uint8_t v = litValue(lits[i]);
      if (v == kTrue) satisfied = true;
      else if (v == kUndef) shrunk.push_back(lits[i]);
    }
    if (satisfied) {
      ++dropped;
      continue;
    }
    assert(shrunk.size() >= 2);
    if (shrunk.size() == 1) {  // defensive: re-imply instead of dropping
      if (litValue(shrunk[0]) == kUndef) enqueue(shrunk[0], kRefUndef);
      ++dropped;
      continue;
    }
    const std::uint32_t lbd = learned
        ? std::min(old[c + 1], static_cast<std::uint32_t>(shrunk.size()))
        : 0;
    const Tier tier = learned ? static_cast<Tier>((old[c] >> 1) & 3u)
                              : kTierCore;
    const ClauseRef nc = allocClause(shrunk, learned, lbd);
    if (learned) {
      // Keep the earned tier (shrinking can only improve a clause).
      setClauseTier(nc, lbd <= kCoreLbd ? kTierCore : tier);
      arena_[nc + 2] = old[c + 2];  // activity carries over
      ++numLearned_;
    } else {
      ++numOriginal_;
    }
    attach(nc);
  }
  stats_.reducedClauses += dropped;
  stats_.arenaBytes = arena_.size() * sizeof(std::uint32_t);
  if (qhead_ < trail_.size()) propagate();  // defensive unit replay
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  ++stats_.solveCalls;
  if (!obs::enabled()) return solveImpl(assumptions);

  // Telemetry bridge: one span per solve() call, and the per-call deltas of
  // the cumulative SolverStats folded into the process-wide registry.  All
  // recording sits at the call boundary — the search loop itself is
  // untouched, so a disabled run pays only the enabled() check above.
  obs::Span span("sat.solve");
  const SolverStats before = stats_;
  const Result r = solveImpl(assumptions);
  obs::Registry& reg = obs::registry();
  reg.counter("sat.solve_calls").add(1);
  reg.counter("sat.decisions").add(stats_.decisions - before.decisions);
  reg.counter("sat.propagations").add(stats_.propagations - before.propagations);
  reg.counter("sat.conflicts").add(stats_.conflicts - before.conflicts);
  reg.counter("sat.learned_clauses")
      .add(stats_.learnedClauses - before.learnedClauses);
  reg.counter("sat.restarts").add(stats_.restarts - before.restarts);
  reg.distribution("sat.solve.conflicts")
      .record(static_cast<double>(stats_.conflicts - before.conflicts));
  span.arg("vars", numVars());
  span.arg("clauses", static_cast<std::int64_t>(numClauses()));
  span.arg("conflicts",
           static_cast<std::int64_t>(stats_.conflicts - before.conflicts));
  span.arg("result", r == Result::kSat ? 1 : (r == Result::kUnsat ? 0 : -1));
  return r;
}

Result Solver::solveImpl(const std::vector<Lit>& assumptions) {
  stopCause_ = StopCause::kNone;
  if (!ok_) return Result::kUnsat;

  // Cooperative stop poll: the cancel flag is checked (one atomic load) and
  // the deadline clock read.  Called at restart boundaries and every
  // kStopCheckInterval conflicts/decisions; on fire we unwind to the root so
  // the formula and learned clauses stay reusable.
  auto stopRequested = [&]() -> bool {
    if (cancel_.canceled()) {
      stopCause_ = StopCause::kCanceled;
      return true;
    }
    if (deadline_.expired()) {
      stopCause_ = StopCause::kDeadline;
      return true;
    }
    return false;
  };
  const bool mayStop = cancel_.valid() || !deadline_.unlimited();
  if (mayStop && stopRequested()) return Result::kUnknown;

  backtrack(0);
  if (propagate() != kRefUndef) {
    ok_ = false;
    return Result::kUnsat;
  }
  // Incremental callers (the SAT attack's DIP checks) solve thousands of
  // times under assumptions with few conflicts per call, so restarts — the
  // other reduce trigger — may never fire inside a single call.  Check the
  // reduction schedule here too, while we are guaranteed at the root.
  if (stats_.conflicts >= nextReduceConflicts_) reduceDb();

  std::uint64_t restartCount = 0;
  std::uint64_t restartBudget = cfg_.restartBase * luby(restartCount);
  std::uint64_t conflictsThisRestart = 0;
  std::uint64_t conflictsThisCall = 0;
  std::uint64_t stopCountdown = kStopCheckInterval;
  std::vector<Lit> learnt;

  for (;;) {
    const ClauseRef conflict = propagate();
    if (conflict != kRefUndef) {
      ++stats_.conflicts;
      ++conflictsThisRestart;
      if (conflictBudget_ != 0 && ++conflictsThisCall >= conflictBudget_) {
        stopCause_ = StopCause::kConflictBudget;
        backtrack(0);
        return Result::kUnknown;
      }
      if (mayStop && --stopCountdown == 0) {
        stopCountdown = kStopCheckInterval;
        if (stopRequested()) {
          backtrack(0);
          return Result::kUnknown;
        }
      }
      if (trailLim_.empty()) {
        ok_ = false;
        return Result::kUnsat;
      }
      int btLevel = 0;
      analyze(conflict, learnt, btLevel);
      const std::uint32_t lbd = computeLbd(learnt);
      backtrack(btLevel);
      if (learnt.size() == 1) {
        assert(btLevel == 0);
        if (litValue(learnt[0]) == kFalse) {
          ok_ = false;
          return Result::kUnsat;
        }
        if (litValue(learnt[0]) == kUndef) enqueue(learnt[0], kRefUndef);
      } else {
        const ClauseRef c = allocClause(learnt, /*learned=*/true, lbd);
        ++numLearned_;
        attach(c);
        bumpClause(c);
        ++stats_.learnedClauses;
        stats_.sumLearnedLbd += lbd;
        enqueue(learnt[0], c);
      }
      decayVarActivity();
      clauseInc_ /= 0.999f;
      continue;
    }

    if (conflictsThisRestart >= restartBudget) {
      ++stats_.restarts;
      ++restartCount;
      restartBudget = cfg_.restartBase * luby(restartCount);
      conflictsThisRestart = 0;
      backtrack(0);
      if (mayStop && stopRequested()) return Result::kUnknown;
      if (stats_.conflicts >= nextReduceConflicts_) reduceDb();
      continue;
    }

    // Replay assumptions as pseudo-decisions below real decisions.
    if (trailLim_.size() < assumptions.size()) {
      const Lit a = assumptions[trailLim_.size()];
      const std::uint8_t v = litValue(a);
      if (v == kTrue) {  // already implied: open an empty level
        trailLim_.push_back(static_cast<int>(trail_.size()));
        continue;
      }
      if (v == kFalse) {  // contradicts earlier assumptions/implications
        backtrack(0);
        return Result::kUnsat;
      }
      trailLim_.push_back(static_cast<int>(trail_.size()));
      enqueue(a, kRefUndef);
      continue;
    }

    const Lit next = pickBranchLit();
    if (next == kLitUndef) {
      // Full model found: snapshot it, then restore the root level so the
      // caller may add clauses afterwards.
      model_.assign(assign_.begin(), assign_.end());
      backtrack(0);
      return Result::kSat;
    }
    ++stats_.decisions;
    // Decision-boundary poll too: propagation-heavy instances can run long
    // stretches without a single conflict.
    if (mayStop && --stopCountdown == 0) {
      stopCountdown = kStopCheckInterval;
      if (stopRequested()) {
        backtrack(0);
        return Result::kUnknown;
      }
    }
    trailLim_.push_back(static_cast<int>(trail_.size()));
    if (trailLim_.size() > stats_.maxDecisionLevel)
      stats_.maxDecisionLevel = trailLim_.size();
    enqueue(next, kRefUndef);
  }
}

bool Solver::modelValue(Var v) const {
  return static_cast<std::size_t>(v) < model_.size() && model_[v] == kTrue;
}

// --- activity heap ---------------------------------------------------------

void Solver::heapInsert(Var v) {
  heapPos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heapUp(heapPos_[v]);
}

Var Solver::heapPop() {
  const Var top = heap_[0];
  heapPos_[top] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heapPos_[heap_[0]] = 0;
    heap_.pop_back();
    heapDown(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

void Solver::heapUp(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heapPos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heapPos_[v] = i;
}

void Solver::heapDown(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && activity_[heap_[child + 1]] > activity_[heap_[child]])
      ++child;
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heapPos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heapPos_[v] = i;
}

}  // namespace gkll::sat
