// A from-scratch CDCL SAT solver.
//
// This is the engine behind the SAT attack (attack/sat_attack) and the
// SAT-based equivalence checks used in the tests.  Feature set: two-literal
// watching with blocking literals, binary-clause specialization (the
// co-literal lives in the watcher, so binary propagation never touches the
// clause database), first-UIP conflict analysis with clause learning,
// glucose-style LBD-tiered learned-clause management, VSIDS decision
// heuristic with a binary heap, phase saving and Luby restarts.  Solving
// under assumptions is supported (used for incremental miter queries).
//
// Clause storage is a flat uint32_t arena: every clause is a small inline
// header (size, learned flag, tier, and — for learned clauses — LBD and a
// float activity) followed by its literals, so propagation walks contiguous
// memory instead of chasing per-clause vector allocations.  A ClauseRef is
// an offset into the arena.
//
// The encoding layer (sat/cnf.h) maps netlists onto variables.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/cancel.h"

namespace gkll::sat {

using Var = std::int32_t;
/// Literal encoding: var*2 + sign (sign 1 = negated).
using Lit = std::int32_t;

inline constexpr Lit kLitUndef = -1;

constexpr Lit mkLit(Var v, bool negated = false) {
  return (v << 1) | static_cast<Lit>(negated);
}
constexpr Lit negLit(Lit l) { return l ^ 1; }
constexpr Var litVar(Lit l) { return l >> 1; }
constexpr bool litSign(Lit l) { return (l & 1) != 0; }

enum class Result {
  kSat,
  kUnsat,
  kUnknown,  ///< a stop condition fired first — see Solver::stopCause()
};

/// Why the last solve() call returned kUnknown.
enum class StopCause {
  kNone,            ///< last call ran to completion (kSat/kUnsat)
  kConflictBudget,  ///< per-call conflict budget exhausted
  kDeadline,        ///< wall-clock deadline expired
  kCanceled,        ///< the cancel token fired (portfolio racing)
};

/// Search-heuristic knobs.  The defaults reproduce the solver's historical
/// behaviour bit-for-bit; a portfolio runs several configs in parallel so
/// the racers explore *different* search trees (sat/portfolio-style
/// diversification: restart cadence, branching polarity, decay rate).
struct SolverConfig {
  enum class Phase : std::uint8_t {
    kAllFalse,  ///< branch to false first (the classic circuit-SAT default)
    kAllTrue,   ///< branch to true first
    kRandom,    ///< per-variable pseudo-random polarity derived from `seed`
  };

  std::uint64_t restartBase = 64;  ///< Luby restart unit (conflicts)
  double varDecay = 0.95;          ///< VSIDS decay factor (varInc /= decay)
  Phase initialPhase = Phase::kAllFalse;
  std::uint64_t seed = 0;  ///< polarity seed, only read when Phase::kRandom
};

/// Solver statistics (cumulative across solve() calls).
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learnedClauses = 0;
  std::uint64_t sumLearnedLbd = 0;  ///< sum of learnt-clause LBDs; divide by
                                    ///< learnedClauses for the mean "glue"
  std::uint64_t restarts = 0;
  std::uint64_t maxDecisionLevel = 0;  ///< deepest decision stack ever seen
  std::uint64_t solveCalls = 0;
  std::uint64_t arenaBytes = 0;      ///< current clause-arena footprint
  std::uint64_t binaryClauses = 0;   ///< binary clauses currently in the DB
  std::uint64_t reducedClauses = 0;  ///< clauses dropped by DB reductions
};

class Solver {
 public:
  Solver();

  /// Create a fresh variable and return it.
  Var newVar();
  int numVars() const { return static_cast<int>(assign_.size()); }

  /// Add a clause over existing variables.  Returns false if the clause
  /// makes the formula trivially unsatisfiable at the root level.
  /// Clauses may be added between solve() calls (incremental use).
  bool addClause(std::vector<Lit> lits);

  /// Convenience single-/double-/triple-literal clause helpers.
  bool addClause(Lit a) { return addClause(std::vector<Lit>{a}); }
  bool addClause(Lit a, Lit b) { return addClause(std::vector<Lit>{a, b}); }
  bool addClause(Lit a, Lit b, Lit c) {
    return addClause(std::vector<Lit>{a, b, c});
  }

  /// Solve, optionally under assumptions (temporary unit decisions).
  /// Returns kUnknown when a conflict budget is set and exhausted.
  Result solve(const std::vector<Lit>& assumptions = {});

  /// Limit the number of conflicts *per solve() call* (0 = unlimited).
  /// When the budget runs out solve() returns kUnknown; the formula and
  /// learned clauses stay intact, so callers may simply retry or give up.
  void setConflictBudget(std::uint64_t budget) { conflictBudget_ = budget; }

  /// Wall-clock sibling of setConflictBudget: when the deadline expires the
  /// current and all future solve() calls return kUnknown with
  /// stopCause() == kDeadline.  Checked cooperatively at conflict, decision
  /// and restart boundaries — never mid-propagation — so the formula stays
  /// intact and reusable (tighten/clear by setting a new Deadline).
  void setDeadline(runtime::Deadline d) { deadline_ = d; }

  /// Cooperative cancellation (portfolio racing): once the token fires,
  /// solve() winds down at the next conflict/decision boundary and returns
  /// kUnknown with stopCause() == kCanceled.  The formula and learned
  /// clauses survive — a canceled racer can keep its solver for reuse.
  void setCancelToken(runtime::CancelToken t) { cancel_ = std::move(t); }

  /// Why the most recent solve() returned kUnknown (kNone after kSat/kUnsat).
  StopCause stopCause() const { return stopCause_; }

  /// Install search-heuristic knobs.  Call before solve(); the initial
  /// polarity is applied to every existing *and* future variable's saved
  /// phase, so configs may be set after encoding the CNF.
  void setConfig(const SolverConfig& cfg);
  const SolverConfig& config() const { return cfg_; }

  /// Record every original (non-learned) clause exactly as passed to
  /// addClause, before simplification — for DIMACS export (sat/dimacs.h),
  /// portfolio formula replay, and differential testing.  Call before
  /// adding clauses.
  void enableClauseLog() { logClauses_ = true; }
  const std::vector<std::vector<Lit>>& loggedClauses() const {
    return clauseLog_;
  }

  /// Total clause count (original + currently retained learned clauses) —
  /// the CNF-growth signal the attack telemetry reports per iteration.
  std::size_t numClauses() const { return numOriginal_ + numLearned_; }

  /// Model access after kSat.  Unassigned variables read as false.
  bool modelValue(Var v) const;

  /// False once the formula is known unsatisfiable at the root.
  bool okay() const { return ok_; }

  const SolverStats& stats() const { return stats_; }

 private:
  enum : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  /// Offset of a clause header in the arena.  kRefUndef doubles as the
  /// "no reason / no conflict" sentinel.
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kRefUndef = 0xFFFFFFFFu;

  /// Watcher-list tag: binary clauses share the per-literal watcher list
  /// with long clauses (one header load, one contiguous scan per trail
  /// pop), distinguished by this bit in the stored ClauseRef.  Stripped
  /// before the ref is used as a reason, so the arena stays < 2^31 words.
  static constexpr ClauseRef kBinFlag = 0x80000000u;

  /// Learned-clause tiers (glucose): core clauses (LBD <= 2) are kept
  /// forever, mid clauses (LBD <= 6) survive reductions but are demoted to
  /// local when they sit untouched, local clauses compete on (LBD,
  /// activity) and the worse half dies at every reduction.
  enum Tier : std::uint32_t { kTierCore = 0, kTierMid = 1, kTierLocal = 2 };

  // --- arena clause layout ---------------------------------------------------
  // word 0: size << 5 | touched << 3 | tier << 1 | learned
  // learned clauses only:
  //   word 1: LBD
  //   word 2: activity (IEEE float bits)
  // then `size` literal words.
  static constexpr std::uint32_t kLearnedBit = 1u;
  static constexpr std::uint32_t kTouchedBit = 1u << 3;
  static constexpr std::uint32_t kSizeShift = 5;

  bool clauseLearned(ClauseRef c) const { return (arena_[c] & kLearnedBit) != 0; }
  std::uint32_t clauseSize(ClauseRef c) const { return arena_[c] >> kSizeShift; }
  Tier clauseTier(ClauseRef c) const {
    return static_cast<Tier>((arena_[c] >> 1) & 3u);
  }
  void setClauseTier(ClauseRef c, Tier t) {
    arena_[c] = (arena_[c] & ~(3u << 1)) | (static_cast<std::uint32_t>(t) << 1);
  }
  std::uint32_t clauseLbd(ClauseRef c) const { return arena_[c + 1]; }
  Lit* clauseLits(ClauseRef c) {
    return reinterpret_cast<Lit*>(arena_.data() + c +
                                  (clauseLearned(c) ? 3 : 1));
  }
  const Lit* clauseLits(ClauseRef c) const {
    return reinterpret_cast<const Lit*>(arena_.data() + c +
                                        (clauseLearned(c) ? 3 : 1));
  }
  float clauseActivity(ClauseRef c) const;
  void setClauseActivity(ClauseRef c, float a);
  ClauseRef allocClause(const std::vector<Lit>& lits, bool learned,
                        std::uint32_t lbd);

  /// Watcher with a blocker literal: when the blocker is already true the
  /// clause is satisfied and the clause body is never touched (the classic
  /// cache-miss saver).  For binary clauses (kBinFlag set) the blocker IS
  /// the co-literal, so propagation/conflict detection needs zero clause
  /// derefs; the ClauseRef is only consulted when the clause becomes a
  /// reason.
  struct Watcher {
    ClauseRef clause;
    Lit blocker;
  };

  std::uint8_t litValue(Lit l) const {
    const std::uint8_t a = assign_[litVar(l)];
    if (a == kUndef) return kUndef;
    return static_cast<std::uint8_t>(a ^ static_cast<std::uint8_t>(litSign(l)));
  }

  Result solveImpl(const std::vector<Lit>& assumptions);
  std::uint8_t initialPhaseOf(Var v) const;

  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& btLevel);
  std::uint32_t computeLbd(const std::vector<Lit>& lits);
  void backtrack(int level);
  void bumpVar(Var v);
  void decayVarActivity();
  void bumpClause(ClauseRef c);
  Lit pickBranchLit();
  void attach(ClauseRef c);
  void reduceDb();
  bool litRedundant(Lit l, std::uint32_t abstractLevels);

  // heap of variables ordered by activity
  void heapInsert(Var v);
  Var heapPop();
  void heapUp(int i);
  void heapDown(int i);
  bool inHeap(Var v) const { return heapPos_[v] >= 0; }

  bool ok_ = true;
  std::uint64_t conflictBudget_ = 0;
  runtime::Deadline deadline_;
  runtime::CancelToken cancel_;
  StopCause stopCause_ = StopCause::kNone;
  SolverConfig cfg_;
  bool logClauses_ = false;
  std::vector<std::vector<Lit>> clauseLog_;

  std::vector<std::uint32_t> arena_;           // flat clause database
  std::size_t numOriginal_ = 0;                // live original clauses
  std::size_t numLearned_ = 0;                 // live learned clauses
  std::uint64_t nextReduceConflicts_ = 4000;   // reduceDb trigger
  std::uint64_t reduceCount_ = 0;

  std::vector<std::vector<Watcher>> watches_;  // per literal (bin + long)
  std::vector<std::uint8_t> assign_;              // per var
  std::vector<std::uint8_t> phase_;               // saved polarity per var
  std::vector<int> level_;                        // per var
  std::vector<ClauseRef> reason_;                 // per var
  std::vector<Lit> trail_;
  std::vector<int> trailLim_;
  std::vector<std::uint8_t> model_;  // snapshot of assign_ at last kSat
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double varInc_ = 1.0;
  float clauseInc_ = 1.0f;
  std::vector<Var> heap_;
  std::vector<int> heapPos_;

  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyzeStack_;
  std::vector<Lit> analyzeToClear_;
  std::vector<std::uint64_t> lbdStamp_;  // per level, for computeLbd
  std::uint64_t lbdStampGen_ = 0;

  SolverStats stats_;
};

}  // namespace gkll::sat
