#include "sat/cnf.h"

#include <cassert>

namespace gkll::sat {
namespace {

void encodeAnd(Solver& s, const std::vector<Var>& ins, Var out, bool invert) {
  // out = AND(ins)   (or NAND when invert).
  const Lit outPos = mkLit(out, invert);   // literal true when AND is true
  const Lit outNeg = negLit(outPos);
  std::vector<Lit> big;
  big.reserve(ins.size() + 1);
  for (Var in : ins) {
    s.addClause(outNeg, mkLit(in));  // AND true -> every input true
    big.push_back(mkLit(in, true));
  }
  big.push_back(outPos);  // all inputs true -> AND true
  s.addClause(std::move(big));
}

void encodeOr(Solver& s, const std::vector<Var>& ins, Var out, bool invert) {
  // out = OR(ins)   (or NOR when invert).
  const Lit outPos = mkLit(out, invert);
  const Lit outNeg = negLit(outPos);
  std::vector<Lit> big;
  big.reserve(ins.size() + 1);
  for (Var in : ins) {
    s.addClause(outPos, mkLit(in, true));  // any input true -> OR true
    big.push_back(mkLit(in));
  }
  big.push_back(outNeg);  // all inputs false -> OR false
  s.addClause(std::move(big));
}

}  // namespace

void addGateClauses(Solver& s, CellKind kind, const std::vector<Var>& ins,
                    Var out, std::uint64_t lutMask) {
  switch (kind) {
    case CellKind::kInput:
      return;  // free variable
    case CellKind::kConst0:
      s.addClause(mkLit(out, true));
      return;
    case CellKind::kConst1:
      s.addClause(mkLit(out));
      return;
    case CellKind::kBuf:
    case CellKind::kDelay:
      s.addClause(mkLit(ins[0], true), mkLit(out));
      s.addClause(mkLit(ins[0]), mkLit(out, true));
      return;
    case CellKind::kInv:
      s.addClause(mkLit(ins[0], true), mkLit(out, true));
      s.addClause(mkLit(ins[0]), mkLit(out));
      return;
    case CellKind::kAnd2:
    case CellKind::kAnd3:
    case CellKind::kAnd4:
      encodeAnd(s, ins, out, false);
      return;
    case CellKind::kNand2:
    case CellKind::kNand3:
    case CellKind::kNand4:
      encodeAnd(s, ins, out, true);
      return;
    case CellKind::kOr2:
    case CellKind::kOr3:
    case CellKind::kOr4:
      encodeOr(s, ins, out, false);
      return;
    case CellKind::kNor2:
    case CellKind::kNor3:
    case CellKind::kNor4:
      encodeOr(s, ins, out, true);
      return;
    case CellKind::kXor2:
    case CellKind::kXnor2: {
      const bool n = kind == CellKind::kXnor2;  // XNOR flips output polarity
      const Var a = ins[0], b = ins[1];
      s.addClause(mkLit(a, true), mkLit(b, true), mkLit(out, !n));
      s.addClause(mkLit(a), mkLit(b), mkLit(out, !n));
      s.addClause(mkLit(a, true), mkLit(b), mkLit(out, n));
      s.addClause(mkLit(a), mkLit(b, true), mkLit(out, n));
      return;
    }
    case CellKind::kMux2: {
      const Var sel = ins[0], i0 = ins[1], i1 = ins[2];
      s.addClause(mkLit(sel), mkLit(i0, true), mkLit(out));
      s.addClause(mkLit(sel), mkLit(i0), mkLit(out, true));
      s.addClause(mkLit(sel, true), mkLit(i1, true), mkLit(out));
      s.addClause(mkLit(sel, true), mkLit(i1), mkLit(out, true));
      // Redundant but propagation-strengthening clauses:
      s.addClause(mkLit(i0, true), mkLit(i1, true), mkLit(out));
      s.addClause(mkLit(i0), mkLit(i1), mkLit(out, true));
      return;
    }
    case CellKind::kAoi21: {
      const Var a = ins[0], b = ins[1], c = ins[2];
      // out = !((a & b) | c)
      s.addClause(mkLit(out, true), mkLit(c, true));
      s.addClause(mkLit(out, true), mkLit(a, true), mkLit(b, true));
      s.addClause(mkLit(out), mkLit(a), mkLit(c));
      s.addClause(mkLit(out), mkLit(b), mkLit(c));
      return;
    }
    case CellKind::kOai21: {
      const Var a = ins[0], b = ins[1], c = ins[2];
      // out = !((a | b) & c)
      s.addClause(mkLit(out, true), mkLit(a, true), mkLit(c, true));
      s.addClause(mkLit(out, true), mkLit(b, true), mkLit(c, true));
      s.addClause(mkLit(out), mkLit(a), mkLit(b));
      s.addClause(mkLit(out), mkLit(c));
      return;
    }
    case CellKind::kLut: {
      assert(ins.size() <= 6);
      const std::size_t n = ins.size();
      for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
        std::vector<Lit> clause;
        clause.reserve(n + 1);
        for (std::size_t i = 0; i < n; ++i)
          clause.push_back(mkLit(ins[i], (m >> i) & 1ULL));  // negate set bits
        const bool f = (lutMask >> m) & 1ULL;
        clause.push_back(mkLit(out, !f));
        s.addClause(std::move(clause));
      }
      return;
    }
    case CellKind::kDff:
      assert(false && "encode combinational netlists only (use extractCombinational)");
      return;
  }
}

std::vector<Var> encodeNetlist(Solver& s, const CompiledNetlist& cn,
                               const std::vector<NetId>& boundNets,
                               const std::vector<Var>& boundVars) {
  assert(boundNets.size() == boundVars.size());
  std::vector<Var> varOf(cn.numNets(), -1);
  for (std::size_t i = 0; i < boundNets.size(); ++i)
    varOf[boundNets[i]] = boundVars[i];
  for (NetId n = 0; n < cn.numNets(); ++n)
    if (varOf[n] < 0) varOf[n] = s.newVar();

  std::vector<Var> ins;
  for (GateId g : cn.topoOrder()) {
    const CellKind k = cn.kind(g);
    if (k == CellKind::kInput) continue;
    ins.clear();
    for (NetId in : cn.fanin(g)) ins.push_back(varOf[in]);
    addGateClauses(s, k, ins, varOf[cn.out(g)], cn.lutMask(g));
  }
  return varOf;
}

std::vector<Var> encodeNetlist(Solver& s, const Netlist& nl,
                               const std::vector<NetId>& boundNets,
                               const std::vector<Var>& boundVars) {
  return encodeNetlist(s, CompiledNetlist::compile(nl), boundNets, boundVars);
}

FanoutCone computeFanoutCone(const CompiledNetlist& cn,
                             const std::vector<NetId>& seeds) {
  FanoutCone cone;
  cone.gateInCone.assign(cn.numGates(), 0);
  cone.netInCone.assign(cn.numNets(), 0);
  for (NetId n : seeds) cone.netInCone[n] = 1;
  // One pass in dependency order: a gate is in the cone iff any fanin is.
  for (GateId g : cn.topoOrder()) {
    if (cn.kind(g) == CellKind::kInput) continue;
    for (NetId in : cn.fanin(g)) {
      if (!cone.netInCone[in]) continue;
      cone.gateInCone[g] = 1;
      cone.netInCone[cn.out(g)] = 1;
      ++cone.gateCount;
      break;
    }
  }
  return cone;
}

Var ConstVars::get(Solver& s, bool value) {
  Var& v = var_[value ? 1 : 0];
  if (v < 0) {
    v = s.newVar();
    s.addClause(mkLit(v, !value));
  }
  return v;
}

std::vector<Var> encodeResidual(Solver& s, const CompiledNetlist& cn,
                                const std::vector<PackedBits>& folded,
                                unsigned lane,
                                const std::vector<NetId>& boundNets,
                                const std::vector<Var>& boundVars,
                                ConstVars& consts) {
  assert(boundNets.size() == boundVars.size());
  assert(folded.size() == cn.numNets());
  std::vector<Var> varOf(cn.numNets(), -1);
  for (std::size_t i = 0; i < boundNets.size(); ++i)
    varOf[boundNets[i]] = boundVars[i];

  // Resolve a fanin net to a variable on demand: bound nets and residual
  // gate outputs already have one (topological order guarantees the driver
  // was visited first); folded-constant nets share the pinned constants;
  // an unbound X input (a key net the caller chose not to bind) floats
  // free.
  auto varFor = [&](NetId n) -> Var {
    if (varOf[n] >= 0) return varOf[n];
    const Logic fv = packedLane(folded[n], lane);
    varOf[n] = fv == Logic::X ? s.newVar() : consts.get(s, fv == Logic::T);
    return varOf[n];
  };

  std::vector<Var> ins;
  for (GateId g : cn.topoOrder()) {
    const CellKind k = cn.kind(g);
    if (k == CellKind::kInput) continue;
    const NetId on = cn.out(g);
    if (packedLane(folded[on], lane) != Logic::X)
      continue;  // the DIP pins this gate: no clauses needed
    ins.clear();
    for (NetId in : cn.fanin(g)) ins.push_back(varFor(in));
    addGateClauses(s, k, ins, varFor(on), cn.lutMask(g));
  }
  return varOf;
}

Var makeAnd(Solver& s, Var a, Var b) {
  const Var o = s.newVar();
  addGateClauses(s, CellKind::kAnd2, {a, b}, o);
  return o;
}

Var makeOr(Solver& s, Var a, Var b) {
  const Var o = s.newVar();
  addGateClauses(s, CellKind::kOr2, {a, b}, o);
  return o;
}

Var makeXor(Solver& s, Var a, Var b) {
  const Var o = s.newVar();
  addGateClauses(s, CellKind::kXor2, {a, b}, o);
  return o;
}

Var makeOrReduce(Solver& s, const std::vector<Var>& vs) {
  const Var o = s.newVar();
  if (vs.empty()) {
    s.addClause(mkLit(o, true));
    return o;
  }
  std::vector<Lit> big;
  big.reserve(vs.size() + 1);
  for (Var v : vs) {
    s.addClause(mkLit(o), mkLit(v, true));
    big.push_back(mkLit(v));
  }
  big.push_back(mkLit(o, true));
  s.addClause(std::move(big));
  return o;
}

EquivResult checkEquivalence(const Netlist& a, const Netlist& b) {
  assert(a.inputs().size() == b.inputs().size());
  assert(a.outputs().size() == b.outputs().size());
  Solver s;
  const std::vector<Var> va = encodeNetlist(s, a);
  // Share PI variables between the two copies.
  std::vector<NetId> bPIs = b.inputs();
  std::vector<Var> piVars;
  piVars.reserve(bPIs.size());
  for (std::size_t i = 0; i < bPIs.size(); ++i)
    piVars.push_back(va[a.inputs()[i]]);
  const std::vector<Var> vb = encodeNetlist(s, b, bPIs, piVars);

  std::vector<Var> diffs;
  diffs.reserve(a.outputs().size());
  for (std::size_t i = 0; i < a.outputs().size(); ++i)
    diffs.push_back(makeXor(s, va[a.outputs()[i]], vb[b.outputs()[i]]));
  const Var any = makeOrReduce(s, diffs);
  s.addClause(mkLit(any));

  EquivResult r;
  if (s.solve() == Result::kUnsat) {
    r.equivalent = true;
    return r;
  }
  r.equivalent = false;
  r.counterexample.reserve(a.inputs().size());
  for (NetId pi : a.inputs())
    r.counterexample.push_back(logicFromBool(s.modelValue(va[pi])));
  return r;
}

}  // namespace gkll::sat
