// Wide (W x 64-lane) bit-parallel evaluation of a CompiledNetlist.
//
// evalPacked (compiled.h) evaluates 64 patterns per pass with one
// PackedBits per net, indexed by NetId.  That layout hits two walls on
// million-net designs:
//
//   1. one 64-bit word per plane leaves 3/4 of an AVX2 register (and 7/8
//      of an AVX-512 register) idle, and
//   2. NetId order is *creation* order — a locked or optimised netlist
//      scatters a gate's fanin reads across the whole net array, so the
//      CSR sweep thrashes instead of staying in cache.
//
// This module widens the pass to W 64-bit words per signal (W x 64
// patterns per sweep) and re-blocks storage for the sweep:
//
//   - PackedLanes: planar signal-major storage — the W value words of a
//     signal are contiguous, value and X planes separate, so the per-gate
//     inner loop is a unit-stride bitwise kernel the compiler vectorises.
//   - WideEvaluator: compiles a CompiledNetlist into a *slot* permutation
//     (sources first, then combinational outputs in level order) plus a
//     flat fanin-slot table.  Level-ordered slots mean a gate's fanins
//     were written at most a few levels ago, so the sweep's working set is
//     a sliding window of recently-touched lines rather than the whole
//     design — the cache-blocked level traversal of DESIGN.md §13.
//   - The inner kernel is compiled three times (portable, -mavx2,
//     -mavx512f) from one source (packed_eval_kernel.inl) and selected at
//     runtime; all variants run the identical word-level formulas of the
//     PackedBits helpers, so results are byte-identical across ISAs and
//     to W independent evalPacked passes (property-tested).
//
// A WideEvaluator is immutable after construction and safe to share
// across threads; each caller brings its own Buffer (the slot planes).
// Like CompiledNetlist, it is a snapshot: stale after any Netlist edit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/compiled.h"

namespace gkll {

/// Which comb-sweep kernel to run.  Levels above kScalar exist only when
/// both the compiler supported the ISA at build time and the CPU reports
/// it at run time; kScalar is always available and is the byte-identity
/// reference.
enum class SimdLevel : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* simdLevelName(SimdLevel level);

/// Best kernel this build + this machine can run, after applying the
/// GKLL_SIMD environment override ("scalar" | "avx2" | "avx512" — a
/// request above what is available falls back to the best available).
SimdLevel bestSimdLevel();

/// True if `level`'s kernel was compiled in and the CPU supports it.
bool simdLevelAvailable(SimdLevel level);

/// Planar signal-major three-valued storage: `words` 64-bit lanes words
/// per signal, value plane and X plane separate, each signal's words
/// contiguous.  Freshly reset lanes are all X (the PackedBits default).
class PackedLanes {
 public:
  PackedLanes() = default;
  PackedLanes(std::size_t signals, std::size_t words) { reset(signals, words); }

  /// Resize to `signals` x `words` and set every lane to X.
  void reset(std::size_t signals, std::size_t words);

  std::size_t signals() const { return signals_; }
  std::size_t words() const { return words_; }
  std::size_t lanes() const { return words_ * 64; }

  std::uint64_t* v(std::size_t s) { return v_.data() + s * words_; }
  const std::uint64_t* v(std::size_t s) const { return v_.data() + s * words_; }
  std::uint64_t* x(std::size_t s) { return x_.data() + s * words_; }
  const std::uint64_t* x(std::size_t s) const { return x_.data() + s * words_; }

  std::uint64_t* vData() { return v_.data(); }
  std::uint64_t* xData() { return x_.data(); }

  PackedBits word(std::size_t s, std::size_t w) const {
    return {v(s)[w], x(s)[w]};
  }
  void setWord(std::size_t s, std::size_t w, PackedBits b) {
    v(s)[w] = b.v;
    x(s)[w] = b.x;
  }
  Logic lane(std::size_t s, std::size_t lane) const {
    return packedLane(word(s, lane / 64), static_cast<unsigned>(lane % 64));
  }
  void setLane(std::size_t s, std::size_t lane, Logic l) {
    PackedBits b = word(s, lane / 64);
    packedSetLane(b, static_cast<unsigned>(lane % 64), l);
    setWord(s, lane / 64, b);
  }

 private:
  std::size_t signals_ = 0, words_ = 0;
  std::vector<std::uint64_t> v_, x_;
};

namespace detail {

/// The compiled sweep: comb gates in level order over permuted net slots.
/// Built once per WideEvaluator, read by every kernel variant.
struct WidePlan {
  std::size_t numSlots = 0;
  std::vector<std::uint8_t> kind;      ///< CellKind per comb gate, level order
  std::vector<std::uint32_t> outSlot;  ///< output slot per comb gate
  std::vector<std::uint32_t> insOff;   ///< CSR offsets into insSlot (n+1)
  std::vector<std::uint32_t> insSlot;  ///< flat fanin slots
  std::vector<std::uint64_t> lutMasks; ///< one per kLut gate, in sweep order
  /// Level blocks: gates [blockOff[b], blockOff[b+1]) share one level.
  std::vector<std::uint32_t> blockOff;
};

// One symbol per ISA, all generated from packed_eval_kernel.inl.  The
// AVX variants exist only when CMake found the flags; dispatch never
// references a variant that was not built.
namespace widescalar {
void evalCombSweep(const WidePlan& p, std::uint64_t* v, std::uint64_t* x,
                   std::size_t W);
}
namespace wideavx2 {
void evalCombSweep(const WidePlan& p, std::uint64_t* v, std::uint64_t* x,
                   std::size_t W);
}
namespace wideavx512 {
void evalCombSweep(const WidePlan& p, std::uint64_t* v, std::uint64_t* x,
                   std::size_t W);
}

}  // namespace detail

/// W-word row counterpart of evalPackedCell: `ins[i]` points at fanin i's
/// row of `W` PackedBits words, the result lands in `out[0..W)`.  Exactly
/// evalPackedCell per word — the narrow helper is the W == 1 case.  The
/// withholding cone-LUT pass runs on this.
void evalWideCellRows(CellKind k, std::span<const PackedBits* const> ins,
                      PackedBits* out, std::size_t W, std::uint64_t lutMask = 0);

class WideEvaluator {
 public:
  /// Compile the sweep plan for `cn`.  `cn` (and its source netlist) must
  /// outlive the evaluator.  `level` defaults to the best kernel present.
  explicit WideEvaluator(const CompiledNetlist& cn,
                         SimdLevel level = bestSimdLevel());

  /// Per-caller scratch: the slot planes of one evaluation.  Reused across
  /// eval() calls (grown as needed); one Buffer per thread.
  class Buffer {
   public:
    std::size_t words() const { return slots_.words(); }

   private:
    friend class WideEvaluator;
    PackedLanes slots_;
  };

  /// Evaluate inputs.words() x 64 patterns in one sweep.  `inputs[i]` is
  /// the lane row of source().inputs()[i] (missing trailing signals float
  /// at X); `ffState[i]` drives flop i's Q net (zero signals = flops float
  /// at X, the combinational case).  Results are read back through
  /// netWord()/netLane().
  void eval(const PackedLanes& inputs, const PackedLanes& ffState,
            Buffer& buf) const;

  SimdLevel simd() const { return level_; }
  const CompiledNetlist& compiled() const { return *cn_; }
  std::size_t numSlots() const { return plan_.numSlots; }

  /// Word `w` of net `n` after an eval() into `buf`.
  PackedBits netWord(const Buffer& buf, NetId n, std::size_t w) const {
    return buf.slots_.word(slotOfNet_[n], w);
  }
  /// Lane `lane` (< buf.words()*64) of net `n`.
  Logic netLane(const Buffer& buf, NetId n, std::size_t lane) const {
    return buf.slots_.lane(slotOfNet_[n], lane);
  }
  /// PO words at word index `w`, in source().outputs() order — the wide
  /// counterpart of outputLanes().
  std::vector<PackedBits> outputWords(const Buffer& buf, std::size_t w) const;

 private:
  const CompiledNetlist* cn_ = nullptr;
  SimdLevel level_ = SimdLevel::kScalar;
  detail::WidePlan plan_;
  std::vector<std::uint32_t> slotOfNet_;
  /// Source injections: (slot, kind) for kConst0/kConst1 gates.
  std::vector<std::pair<std::uint32_t, CellKind>> constSlots_;
  std::vector<std::uint32_t> piSlot_;    ///< slot per primary input
  std::vector<std::uint32_t> flopSlot_;  ///< slot per flop Q net
};

}  // namespace gkll
