#include "netlist/bench_io.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace gkll {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> splitArgs(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',' || c == ';') {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cur = trim(cur);
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Pick the n-ary variant (e.g. kAnd2/kAnd3/kAnd4) for a base 2-input kind.
bool widen(CellKind base, std::size_t n, CellKind& out) {
  auto step = [&](CellKind two) {
    if (n < 2 || n > 4) return false;
    out = static_cast<CellKind>(static_cast<int>(two) + static_cast<int>(n) - 2);
    return true;
  };
  switch (base) {
    case CellKind::kAnd2:
      return step(CellKind::kAnd2);
    case CellKind::kNand2:
      return step(CellKind::kNand2);
    case CellKind::kOr2:
      return step(CellKind::kOr2);
    case CellKind::kNor2:
      return step(CellKind::kNor2);
    default:
      out = base;
      return n == static_cast<std::size_t>(cellNumInputs(base));
  }
}

struct PendingGate {
  std::string outName;
  std::string func;
  std::vector<std::string> args;
  int line = 0;
};

/// Strict decimal integer parse: the whole token must be digits (optional
/// leading '-').  strtoll alone would silently accept "2500abc" as 2500,
/// which is exactly the kind of malformed input an untrusted upload feeds.
bool parseDecimal(const std::string& s, long long& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoll(s.c_str(), &end, 10);
  return errno == 0 && end == s.c_str() + s.size();
}

/// Strict unsigned parse accepting decimal or 0x-hex (the LUT mask syntax).
bool parseMask(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(s.c_str(), &end, 0);
  return errno == 0 && end == s.c_str() + s.size();
}

}  // namespace

BenchParseResult parseBench(std::istream& in, std::string name) {
  BenchParseResult res;
  res.netlist.setName(name.empty() ? "bench" : std::move(name));
  Netlist& nl = res.netlist;

  std::vector<std::string> outputNames;
  std::vector<PendingGate> pending;

  auto fail = [&](int line, const std::string& msg) {
    res.ok = false;
    res.errorLine = line;
    res.error = "line " + std::to_string(line) + ": " + msg;
    return res;
  };

  std::string raw;
  int lineNo = 0;
  while (std::getline(in, raw)) {
    ++lineNo;
    auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::string line = trim(raw);
    if (line.empty()) continue;

    auto lp = line.find('(');
    auto rp = line.rfind(')');
    auto eq = line.find('=');

    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(y)
      if (lp == std::string::npos || rp == std::string::npos || rp < lp)
        return fail(lineNo, "malformed declaration: " + line);
      const std::string head = trim(line.substr(0, lp));
      const std::string arg = trim(line.substr(lp + 1, rp - lp - 1));
      if (head == "INPUT") {
        if (arg.empty()) return fail(lineNo, "INPUT with empty name");
        if (nl.findNet(arg)) return fail(lineNo, "duplicate net: " + arg);
        nl.addPI(arg);
      } else if (head == "OUTPUT") {
        if (arg.empty()) return fail(lineNo, "OUTPUT with empty name");
        outputNames.push_back(arg);
      } else {
        return fail(lineNo, "unknown declaration: " + head);
      }
      continue;
    }

    if (lp == std::string::npos || rp == std::string::npos || rp < lp || lp < eq)
      return fail(lineNo, "malformed assignment: " + line);
    PendingGate pg;
    pg.outName = trim(line.substr(0, eq));
    pg.func = trim(line.substr(eq + 1, lp - eq - 1));
    pg.args = splitArgs(line.substr(lp + 1, rp - lp - 1));
    pg.line = lineNo;
    if (pg.outName.empty()) return fail(lineNo, "missing output name");
    pending.push_back(std::move(pg));
  }

  // Create all defined nets first so gates can reference forward.
  for (const PendingGate& pg : pending) {
    if (nl.findNet(pg.outName))
      return fail(pg.line, "duplicate net: " + pg.outName);
    nl.addNet(pg.outName);
  }

  auto resolve = [&](const std::string& n, int line,
                     NetId& out) -> bool {
    auto id = nl.findNet(n);
    if (!id) {
      res.errorLine = line;
      res.error = "line " + std::to_string(line) + ": undefined net: " + n;
      return false;
    }
    out = *id;
    return true;
  };

  for (const PendingGate& pg : pending) {
    const NetId out = *nl.findNet(pg.outName);
    if (pg.func == "CONST0" || pg.func == "CONST1") {
      if (!pg.args.empty()) return fail(pg.line, "constants take no args");
      nl.addGate(pg.func == "CONST0" ? CellKind::kConst0 : CellKind::kConst1,
                 {}, out);
      continue;
    }
    if (pg.func == "DELAY") {
      if (pg.args.size() != 2) return fail(pg.line, "DELAY(in, ps)");
      NetId in;
      if (!resolve(pg.args[0], pg.line, in)) return res;
      long long d = 0;
      if (!parseDecimal(pg.args[1], d))
        return fail(pg.line, "malformed delay value: " + pg.args[1]);
      if (d < 0) return fail(pg.line, "negative delay");
      nl.addDelay(in, out, d);
      continue;
    }
    if (pg.func == "LUT") {
      if (pg.args.size() < 2 || pg.args.size() > 7)
        return fail(pg.line, "LUT(mask, in1..in6)");
      std::uint64_t mask = 0;
      if (!parseMask(pg.args[0], mask))
        return fail(pg.line, "malformed LUT mask: " + pg.args[0]);
      std::vector<NetId> ins;
      for (std::size_t i = 1; i < pg.args.size(); ++i) {
        NetId in;
        if (!resolve(pg.args[i], pg.line, in)) return res;
        ins.push_back(in);
      }
      nl.addLut(std::move(ins), out, mask);
      continue;
    }

    CellKind base;
    if (!cellKindFromName(pg.func, base))
      return fail(pg.line, "unknown gate: " + pg.func);
    CellKind kind;
    if (!widen(base, pg.args.size(), kind))
      return fail(pg.line, pg.func + " cannot take " +
                               std::to_string(pg.args.size()) + " inputs");
    std::vector<NetId> ins;
    for (const std::string& a : pg.args) {
      NetId in;
      if (!resolve(a, pg.line, in)) return res;
      ins.push_back(in);
    }
    nl.addGate(kind, std::move(ins), out);
  }

  for (const std::string& o : outputNames) {
    NetId n;
    if (!resolve(o, 0, n)) {
      res.errorLine = 0;
      res.error = "OUTPUT references undefined net: " + o;
      return res;
    }
    nl.markPO(n);
  }

  if (auto err = nl.validate()) {
    res.errorLine = 0;
    res.error = *err;
    return res;
  }
  res.ok = true;
  return res;
}

BenchParseResult parseBench(const std::string& text, std::string name) {
  std::istringstream in(text);
  return parseBench(in, std::move(name));
}

Netlist parseBenchOrThrow(const std::string& text, std::string name) {
  BenchParseResult res = parseBench(text, std::move(name));
  if (!res.ok) throw BenchParseError(res.errorLine, res.error);
  return std::move(res.netlist);
}

BenchParseResult parseBenchFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    BenchParseResult r;
    r.error = "cannot open " + path;
    return r;
  }
  auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  if (base.size() > 6 && base.substr(base.size() - 6) == ".bench")
    base.resize(base.size() - 6);
  return parseBench(f, std::move(base));
}

void writeBench(const Netlist& nl, std::ostream& out) {
  out << "# " << nl.name() << "\n";
  for (NetId n : nl.inputs()) out << "INPUT(" << nl.net(n).name << ")\n";
  for (NetId n : nl.outputs()) out << "OUTPUT(" << nl.net(n).name << ")\n";
  for (GateId g = 0; g < nl.numGates(); ++g) {
    const Gate& gg = nl.gate(g);
    if (gg.out == kNoNet && gg.fanin.empty()) continue;  // tombstone
    if (gg.kind == CellKind::kInput) continue;
    out << nl.net(gg.out).name << " = ";
    if (gg.kind == CellKind::kConst0 || gg.kind == CellKind::kConst1) {
      out << cellKindName(gg.kind) << "()\n";
      continue;
    }
    if (gg.kind == CellKind::kDelay) {
      out << "DELAY(" << nl.net(gg.fanin[0]).name << ", " << gg.delayPs
          << ")\n";
      continue;
    }
    if (gg.kind == CellKind::kLut) {
      out << "LUT(0x" << std::hex << gg.lutMask << std::dec;
      for (NetId in : gg.fanin) out << ", " << nl.net(in).name;
      out << ")\n";
      continue;
    }
    out << cellKindName(gg.kind) << "(";
    for (std::size_t i = 0; i < gg.fanin.size(); ++i) {
      if (i) out << ", ";
      out << nl.net(gg.fanin[i]).name;
    }
    out << ")\n";
  }
}

std::string writeBench(const Netlist& nl) {
  std::ostringstream out;
  writeBench(nl, out);
  return out.str();
}

bool writeBenchFile(const Netlist& nl, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  writeBench(nl, f);
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace gkll
