// Light-weight netlist clean-up passes — the "re-synthesis" step the
// paper invokes when discussing removal attacks ("the netlist after this
// removal can be re-synthesized ... then SAT attack can be applied").
// Removal/bypass transforms leave constants and orphaned logic behind;
// these passes restore a tidy netlist an attacker (or a test) can reason
// about.
//
// All passes are semantics-preserving over the PI/PO/flop interface and
// report what they did.
#pragma once

#include <cstddef>

#include "netlist/netlist.h"

namespace gkll {

struct OptReport {
  std::size_t constantsFolded = 0;  ///< gates replaced by constant drivers
  std::size_t buffersCollapsed = 0; ///< BUF/DELAY gates bypassed
  std::size_t deadGatesRemoved = 0; ///< gates with no path to any sink
  bool changed() const {
    return constantsFolded + buffersCollapsed + deadGatesRemoved > 0;
  }
};

/// Constant propagation: gates whose output is fixed by constant inputs
/// (e.g. AND with a 0 leg, XOR of a net with itself is left alone) are
/// replaced by constant drivers; iterates to a fixed point.
OptReport foldConstants(Netlist& nl);

/// Collapse functional buffers: readers of a kBuf/kDelay output are
/// rewired to its input (POs keep the buffer so the interface name
/// survives).  Note this deliberately destroys *timing* structure — it is
/// an attacker-side normalisation, never part of the defender's flow.
OptReport collapseBuffers(Netlist& nl);

/// Remove gates (and flops) from which no primary output is reachable.
OptReport removeDeadLogic(Netlist& nl);

/// foldConstants + collapseBuffers + removeDeadLogic to a fixed point.
OptReport optimize(Netlist& nl);

/// Rebuild a netlist without tombstoned gates and orphaned nets (compacts
/// ids; names survive).  Run after heavy gate removal.
Netlist compact(const Netlist& nl);

}  // namespace gkll
