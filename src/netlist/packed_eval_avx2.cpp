// AVX2 wide-sweep kernel: same portable source as packed_eval_scalar.cpp,
// auto-vectorised at 256 bits.  Compiled with -mavx2 only when the
// compiler supports the flag (GKLL_BUILD_AVX2 from CMake); otherwise this
// unit is empty and dispatch never references the symbol.
#ifdef GKLL_BUILD_AVX2
#define GKLL_WIDE_NS wideavx2
#include "netlist/packed_eval_kernel.inl"
#endif
