// GKNB — the compact versioned binary netlist format.
//
// The .bench text format is the interchange face of the library; GKNB is
// its storage face.  The service's NetlistStore spills cold designs to
// disk in this format, and the scale benchmarks use it to snapshot
// million-gate synthetic circuits without paying text round-trip costs.
//
// Layout (all multi-byte integers are LEB128 varints unless noted):
//
//   "GKNB"                      4-byte magic
//   version                     varint, currently 1
//   name                        str (varint length + bytes)
//   numNets                     varint
//   per net:  name str, wireDelay zigzag-varint
//   numGates                    varint
//   per gate: tag byte — 0xFF for a tombstone (a slot removeGate
//             neutralised), else the CellKind ordinal; non-tombstones
//             continue with drive varint, out net varint, fanin count +
//             ids varints, delayPs zigzag-varint, lutMask varint
//   pis / pos / ffs             varint count + varint ids each
//   contentHash                 8 bytes little-endian (NOT a varint)
//
// The trailer is the same Netlist::contentHash() the run journal stamps:
// a reader recomputes it over the reconstructed netlist and refuses the
// file on mismatch, so truncation and bit rot are detected and a handle
// in the content-addressed store provably names the bytes it returns.
// Tombstones round-trip exactly — GateIds, the ffs order and the hash all
// survive serialisation of a post-removal-attack netlist.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace gkll {

/// Current writer version.  Readers accept exactly this (the format has
/// no compatibility burden yet; bump and branch when it grows one).
inline constexpr std::uint32_t kGknbVersion = 1;

/// Read result: either a netlist or a diagnostic.  Never throws and never
/// asserts on malformed bytes — a corrupt spill file or truncated upload
/// becomes ok == false with a message naming the first defect.
struct GknbReadResult {
  bool ok = false;
  Netlist netlist;
  std::string error;
};

/// Serialise to a GKNB stream.
void writeGknb(const Netlist& nl, std::ostream& out);

/// Serialise to a file; returns false on I/O failure.
bool writeGknbFile(const Netlist& nl, const std::string& path);

/// Parse a GKNB stream.  Validates the magic, version, every id bound,
/// gate pin counts, PI/FF bookkeeping and the content-hash trailer.
GknbReadResult readGknb(std::istream& in);

/// Parse a GKNB file from disk.
GknbReadResult readGknbFile(const std::string& path);

}  // namespace gkll
