#include "netlist/compiled.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/telemetry.h"

namespace gkll {
namespace {

/// Exact packed counterpart of the scalar kMux2 evaluation: known select
/// picks a leg; an X select is known only where both legs agree and are
/// known.
PackedBits packedMux(PackedBits s, PackedBits in0, PackedBits in1) {
  const std::uint64_t selKnown = ~s.x;
  const std::uint64_t pickV = (~s.v & in0.v) | (s.v & in1.v);
  const std::uint64_t pickX = (~s.v & in0.x) | (s.v & in1.x);
  const std::uint64_t agree = ~(in0.v ^ in1.v) & ~in0.x & ~in1.x;
  const std::uint64_t x = (selKnown & pickX) | (~selKnown & ~agree);
  const std::uint64_t v = ((selKnown & pickV) | (~selKnown & in0.v)) & ~x;
  return {v, x};
}

/// Packed LUT with exact cofactor semantics: a lane's output is known 1
/// (resp. 0) iff every minterm consistent with its known input bits maps
/// to 1 (resp. 0) — identical to the recursive X-expansion in evalCell.
PackedBits packedLut(std::span<const PackedBits> ins, std::uint64_t mask) {
  std::uint64_t couldBe1 = 0, couldBe0 = 0;
  const std::size_t n = ins.size();
  for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
    std::uint64_t possible = ~0ULL;  // lanes for which minterm m is reachable
    for (std::size_t i = 0; i < n; ++i) {
      // could-be-1 = v | x; could-be-0 = ~v (canonical form: X lanes have
      // their value bit clear, so ~v covers both known-0 and X).
      possible &= ((m >> i) & 1ULL) ? (ins[i].v | ins[i].x) : ~ins[i].v;
    }
    if ((mask >> m) & 1ULL)
      couldBe1 |= possible;
    else
      couldBe0 |= possible;
  }
  return {couldBe1 & ~couldBe0, couldBe1 & couldBe0};
}

}  // namespace

PackedBits evalPackedCell(CellKind k, std::span<const PackedBits> ins,
                          std::uint64_t lutMask) {
  auto andAll = [&] {
    PackedBits v = packedConst(true);
    for (PackedBits i : ins) v = packedAnd(v, i);
    return v;
  };
  auto orAll = [&] {
    PackedBits v = packedConst(false);
    for (PackedBits i : ins) v = packedOr(v, i);
    return v;
  };
  switch (k) {
    case CellKind::kInput:
      return {};  // all X; driven externally
    case CellKind::kConst0:
      return packedConst(false);
    case CellKind::kConst1:
      return packedConst(true);
    case CellKind::kBuf:
    case CellKind::kDelay:
    case CellKind::kDff:
      return ins[0];
    case CellKind::kInv:
      return packedNot(ins[0]);
    case CellKind::kAnd2:
    case CellKind::kAnd3:
    case CellKind::kAnd4:
      return andAll();
    case CellKind::kNand2:
    case CellKind::kNand3:
    case CellKind::kNand4:
      return packedNot(andAll());
    case CellKind::kOr2:
    case CellKind::kOr3:
    case CellKind::kOr4:
      return orAll();
    case CellKind::kNor2:
    case CellKind::kNor3:
    case CellKind::kNor4:
      return packedNot(orAll());
    case CellKind::kXor2:
      return packedXor(ins[0], ins[1]);
    case CellKind::kXnor2:
      return packedNot(packedXor(ins[0], ins[1]));
    case CellKind::kMux2:
      return packedMux(ins[0], ins[1], ins[2]);
    case CellKind::kAoi21:
      return packedNot(packedOr(packedAnd(ins[0], ins[1]), ins[2]));
    case CellKind::kOai21:
      return packedNot(packedAnd(packedOr(ins[0], ins[1]), ins[2]));
    case CellKind::kLut:
      return packedLut(ins, lutMask);
  }
  return {};
}

std::vector<PackedBits> packPatterns(
    const std::vector<std::vector<Logic>>& patterns) {
  assert(patterns.size() <= 64);
  std::size_t numSignals = 0;
  for (const auto& p : patterns) numSignals = std::max(numSignals, p.size());
  std::vector<PackedBits> out(numSignals);
  for (unsigned lane = 0; lane < patterns.size(); ++lane)
    for (std::size_t i = 0; i < patterns[lane].size(); ++i)
      packedSetLane(out[i], lane, patterns[lane][i]);
  return out;
}

std::vector<Logic> unpackLane(const std::vector<PackedBits>& packed,
                              unsigned lane) {
  std::vector<Logic> out;
  out.reserve(packed.size());
  for (PackedBits b : packed) out.push_back(packedLane(b, lane));
  return out;
}

std::optional<CompiledNetlist> CompiledNetlist::tryCompile(const Netlist& nl,
                                                           std::string* error) {
  const auto t0 = std::chrono::steady_clock::now();
  CompiledNetlist c;
  c.src_ = &nl;
  const std::size_t nGates = nl.numGates();
  const std::size_t nNets = nl.numNets();

  // --- dense per-gate tables + CSR fanin, duplicate-driver check -----------
  c.kind_.resize(nGates);
  c.drive_.resize(nGates);
  c.out_.resize(nGates);
  c.delayPs_.resize(nGates);
  c.lutMask_.resize(nGates);
  c.faninOff_.assign(nGates + 1, 0);
  c.driver_.assign(nNets, kNoGate);
  std::size_t pins = 0;
  for (GateId g = 0; g < nGates; ++g) {
    const Gate& gg = nl.gate(g);
    c.kind_[g] = gg.kind;
    c.drive_[g] = gg.drive;
    c.out_[g] = gg.out;
    c.delayPs_[g] = gg.delayPs;
    c.lutMask_[g] = gg.lutMask;
    c.faninOff_[g] = static_cast<std::uint32_t>(pins);
    pins += gg.fanin.size();
    if (gg.out == kNoNet) continue;  // tombstone
    if (c.driver_[gg.out] != kNoGate) {
      if (error)
        *error = "net '" + nl.net(gg.out).name + "' is multiply driven (by " +
                 cellKindName(c.kind_[c.driver_[gg.out]]) + " gate " +
                 std::to_string(c.driver_[gg.out]) + " and " +
                 std::string(cellKindName(gg.kind)) + " gate " +
                 std::to_string(g) + ")";
      return std::nullopt;
    }
    c.driver_[gg.out] = g;
  }
  c.faninOff_[nGates] = static_cast<std::uint32_t>(pins);
  c.faninNets_.reserve(pins);
  for (GateId g = 0; g < nGates; ++g)
    for (NetId in : nl.gate(g).fanin) c.faninNets_.push_back(in);

  // --- CSR fanout (rebuilt from the gates, not copied from Net::fanouts,
  // so the view is self-consistent even if fanout bookkeeping drifts) -------
  c.fanoutOff_.assign(nNets + 1, 0);
  for (NetId in : c.faninNets_) ++c.fanoutOff_[in + 1];
  for (std::size_t n = 0; n < nNets; ++n) c.fanoutOff_[n + 1] += c.fanoutOff_[n];
  c.fanoutGates_.resize(pins);
  {
    std::vector<std::uint32_t> cursor(c.fanoutOff_.begin(),
                                      c.fanoutOff_.end() - 1);
    for (GateId g = 0; g < nGates; ++g)
      for (NetId in : c.fanin(g)) c.fanoutGates_[cursor[in]++] = g;
  }

  // --- partitions and flop index -------------------------------------------
  c.combMask_.assign(nGates, 0);
  c.flopIndex_.assign(nGates, -1);
  c.flops_.assign(nl.flops().begin(), nl.flops().end());
  for (std::size_t i = 0; i < c.flops_.size(); ++i)
    c.flopIndex_[c.flops_[i]] = static_cast<int>(i);

  // --- Kahn's algorithm over the combinational dependency graph.  DFF and
  // source gates have no combinational fanin dependency: a DFF's Q is
  // available at the start of the cycle, and its D pin is a sink. ----------
  std::vector<std::uint32_t> pending(nGates, 0);
  std::size_t live = 0;
  c.topo_.reserve(nGates);
  for (GateId g = 0; g < nGates; ++g) {
    if (c.out_[g] == kNoNet && c.fanin(g).empty()) continue;  // tombstone
    ++live;
    if (isSourceKind(c.kind_[g])) {
      c.sources_.push_back(g);
      c.topo_.push_back(g);
      continue;
    }
    if (c.kind_[g] == CellKind::kDff) {
      c.topo_.push_back(g);
      continue;
    }
    std::uint32_t deps = 0;
    for (NetId in : c.fanin(g)) {
      const GateId d = c.driver_[in];
      if (d != kNoGate && !isSourceKind(c.kind_[d]) &&
          c.kind_[d] != CellKind::kDff)
        ++deps;
    }
    pending[g] = deps;
    if (deps == 0) c.topo_.push_back(g);
  }

  for (std::size_t i = 0; i < c.topo_.size(); ++i) {
    // The vector doubles as the work queue: entries past `i` are already
    // ready, and releasing a gate appends its newly-ready readers.
    const GateId g = c.topo_[i];
    if (c.out_[g] == kNoNet) continue;
    // Edges out of sources/DFFs were never counted in `pending`.
    if (isSourceKind(c.kind_[g]) || c.kind_[g] == CellKind::kDff) continue;
    for (GateId reader : c.fanout(c.out_[g])) {
      const CellKind rk = c.kind_[reader];
      if (isSourceKind(rk) || rk == CellKind::kDff) continue;
      if (--pending[reader] == 0) c.topo_.push_back(reader);
    }
  }
  if (c.topo_.size() != live) {
    if (error) {
      // Name a gate stuck on the cycle for the diagnostic.
      *error = "combinational cycle detected";
      for (GateId g = 0; g < nGates; ++g) {
        if (pending[g] > 0 && c.out_[g] != kNoNet) {
          *error += " through net '" + nl.net(c.out_[g]).name +
                    "' (driven by " + cellKindName(c.kind_[g]) + " gate " +
                    std::to_string(g) + ")";
          break;
        }
      }
    }
    return std::nullopt;
  }

  c.topoPos_.assign(nGates, 0);
  for (std::uint32_t i = 0; i < c.topo_.size(); ++i)
    c.topoPos_[c.topo_[i]] = i;

  // --- combinational core + levels ----------------------------------------
  c.level_.assign(nNets, 0);
  c.comb_.reserve(c.topo_.size());
  for (GateId g : c.topo_) {
    const CellKind k = c.kind_[g];
    if (isSourceKind(k) || k == CellKind::kDff) continue;
    c.combMask_[g] = 1;
    c.comb_.push_back(g);
    if (c.out_[g] == kNoNet) continue;
    int m = 0;
    for (NetId in : c.fanin(g)) m = std::max(m, c.level_[in]);
    c.level_[c.out_[g]] = m + 1;
    c.maxLevel_ = std::max(c.maxLevel_, m + 1);
  }

  if (obs::enabled()) {
    const auto dt = std::chrono::steady_clock::now() - t0;
    obs::count("netlist.compiled.builds");
    obs::record(
        "netlist.compiled.build_us",
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            dt)
            .count());
    obs::record("netlist.compiled.gates", static_cast<double>(live));
  }
  return c;
}

CompiledNetlist CompiledNetlist::compile(const Netlist& nl) {
  std::string err;
  std::optional<CompiledNetlist> c = tryCompile(nl, &err);
  if (!c) {
    std::fprintf(stderr, "CompiledNetlist: netlist '%s': %s\n",
                 nl.name().c_str(), err.c_str());
    std::abort();
  }
  return *std::move(c);
}

void CompiledNetlist::evalInto(std::span<const Logic> inputs,
                               std::span<const Logic> ffState,
                               std::vector<Logic>& nets) const {
  nets.assign(numNets(), Logic::X);
  const auto& pis = src_->inputs();
  for (std::size_t i = 0; i < pis.size(); ++i)
    nets[pis[i]] = i < inputs.size() ? inputs[i] : Logic::X;
  if (!ffState.empty()) {
    assert(ffState.size() == flops_.size());
    for (std::size_t i = 0; i < flops_.size(); ++i)
      nets[out_[flops_[i]]] = ffState[i];
  }
  // Constants may appear anywhere in the gate order; write every source
  // value before evaluating any combinational gate.
  for (GateId g : sources_) {
    if (kind_[g] == CellKind::kConst0) nets[out_[g]] = Logic::F;
    if (kind_[g] == CellKind::kConst1) nets[out_[g]] = Logic::T;
  }
  std::vector<Logic> ins;
  for (GateId g : comb_) {
    if (out_[g] == kNoNet) continue;
    ins.clear();
    for (NetId in : fanin(g)) ins.push_back(nets[in]);
    nets[out_[g]] = evalCell(kind_[g], ins, lutMask_[g]);
  }
}

std::vector<Logic> CompiledNetlist::evalComb(
    std::span<const Logic> inputs) const {
  std::vector<Logic> nets;
  evalInto(inputs, {}, nets);
  return nets;
}

void CompiledNetlist::evalPacked(std::span<const PackedBits> inputs,
                                 std::span<const PackedBits> ffState,
                                 std::vector<PackedBits>& nets) const {
  nets.assign(numNets(), PackedBits{});
  const auto& pis = src_->inputs();
  for (std::size_t i = 0; i < pis.size() && i < inputs.size(); ++i)
    nets[pis[i]] = inputs[i];
  if (!ffState.empty()) {
    assert(ffState.size() == flops_.size());
    for (std::size_t i = 0; i < flops_.size(); ++i)
      nets[out_[flops_[i]]] = ffState[i];
  }
  for (GateId g : sources_) {
    if (kind_[g] == CellKind::kConst0) nets[out_[g]] = packedConst(false);
    if (kind_[g] == CellKind::kConst1) nets[out_[g]] = packedConst(true);
  }
  std::vector<PackedBits> ins;
  for (GateId g : comb_) {
    if (out_[g] == kNoNet) continue;
    ins.clear();
    for (NetId in : fanin(g)) ins.push_back(nets[in]);
    nets[out_[g]] = evalPackedCell(kind_[g], ins, lutMask_[g]);
  }
  if (obs::enabled()) obs::count("sim.packed.evals");
}

std::vector<PackedBits> CompiledNetlist::outputLanes(
    const std::vector<PackedBits>& nets) const {
  std::vector<PackedBits> out;
  out.reserve(src_->outputs().size());
  for (NetId po : src_->outputs()) out.push_back(nets[po]);
  return out;
}

}  // namespace gkll
