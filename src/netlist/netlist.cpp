#include "netlist/netlist.h"

#include <algorithm>
#include <cassert>

#include "netlist/compiled.h"

namespace gkll {

NetId Netlist::addNet(std::string name) {
  if (name.empty()) {
    do {
      name = "_n" + std::to_string(autoName_++);
    } while (byName_.count(name) != 0);
  }
  assert(byName_.count(name) == 0 && "duplicate net name");
  const NetId id = static_cast<NetId>(nets_.size());
  Net n;
  n.name = std::move(name);
  byName_.emplace(n.name, id);
  nets_.push_back(std::move(n));
  return id;
}

GateId Netlist::addGate(CellKind kind, std::vector<NetId> fanin, NetId out) {
  assert(out < nets_.size());
  assert(nets_[out].driver == kNoGate && "net already driven");
  const int expect = cellNumInputs(kind);
  assert((expect < 0 || static_cast<int>(fanin.size()) == expect) &&
         "fanin count mismatch");
  (void)expect;
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.kind = kind;
  g.fanin = std::move(fanin);
  g.out = out;
  for (NetId in : g.fanin) nets_[in].fanouts.push_back(id);
  nets_[out].driver = id;
  if (kind == CellKind::kDff) ffs_.push_back(id);
  gates_.push_back(std::move(g));
  return id;
}

NetId Netlist::addPI(std::string name) {
  const NetId n = addNet(std::move(name));
  addGate(CellKind::kInput, {}, n);
  pis_.push_back(n);
  return n;
}

void Netlist::registerPI(NetId n) {
  assert(nets_[n].driver != kNoGate &&
         gates_[nets_[n].driver].kind == CellKind::kInput);
  pis_.push_back(n);
}

void Netlist::unregisterPI(NetId n) {
  pis_.erase(std::remove(pis_.begin(), pis_.end(), n), pis_.end());
}

void Netlist::markPO(NetId n) {
  if (!isPO(n)) pos_.push_back(n);
}

void Netlist::unmarkPO(NetId n) {
  pos_.erase(std::remove(pos_.begin(), pos_.end(), n), pos_.end());
}

NetId Netlist::constNet(bool value) {
  NetId& cache = value ? const1_ : const0_;
  if (cache == kNoNet) {
    cache = addNet(value ? "_const1" : "_const0");
    addGate(value ? CellKind::kConst1 : CellKind::kConst0, {}, cache);
  }
  return cache;
}

GateId Netlist::addDelay(NetId in, NetId out, Ps d) {
  const GateId g = addGate(CellKind::kDelay, {in}, out);
  gates_[g].delayPs = d;
  return g;
}

GateId Netlist::addLut(std::vector<NetId> fanin, NetId out, std::uint64_t mask) {
  assert(fanin.size() >= 1 && fanin.size() <= 6);
  const GateId g = addGate(CellKind::kLut, std::move(fanin), out);
  gates_[g].lutMask = mask;
  return g;
}

void Netlist::rewireReaders(NetId oldNet, NetId newNet) {
  assert(oldNet != newNet);
  // The fanout list holds one entry per reading *pin*, so simply moving
  // each entry and retargeting one matching pin per entry keeps the
  // per-pin invariant even when a gate reads oldNet on several pins.
  for (GateId g : nets_[oldNet].fanouts) {
    for (NetId& pin : gates_[g].fanin) {
      if (pin == oldNet) {
        pin = newNet;
        break;  // one pin per fanout entry
      }
    }
    nets_[newNet].fanouts.push_back(g);
  }
  nets_[oldNet].fanouts.clear();
  // Keep the PO position stable: downstream checks match POs by index.
  for (NetId& po : pos_)
    if (po == oldNet) po = newNet;
}

void Netlist::replaceFanin(GateId g, NetId oldNet, NetId newNet) {
  // Replace exactly one pin, matching the one-fanout-entry-per-pin invariant.
  bool any = false;
  for (NetId& pin : gates_[g].fanin) {
    if (pin == oldNet) {
      pin = newNet;
      any = true;
      break;
    }
  }
  assert(any && "gate does not read oldNet");
  (void)any;
  auto& fo = nets_[oldNet].fanouts;
  fo.erase(std::find(fo.begin(), fo.end(), g));
  nets_[newNet].fanouts.push_back(g);
}

void Netlist::removeGate(GateId g) {
  Gate& gg = gates_[g];
  for (NetId in : gg.fanin) {
    auto& fo = nets_[in].fanouts;
    auto it = std::find(fo.begin(), fo.end(), g);
    if (it != fo.end()) fo.erase(it);
  }
  if (gg.out != kNoNet && nets_[gg.out].driver == g)
    nets_[gg.out].driver = kNoGate;
  if (gg.kind == CellKind::kDff)
    ffs_.erase(std::remove(ffs_.begin(), ffs_.end(), g), ffs_.end());
  // Tombstone: keep the slot so GateIds stay stable, but neutralise it.
  gg.fanin.clear();
  gg.out = kNoNet;
  gg.kind = CellKind::kConst0;
}

GateId Netlist::addTombstone() {
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.kind = CellKind::kConst0;
  g.out = kNoNet;
  gates_.push_back(std::move(g));
  return id;
}

void Netlist::rebindConstCache() {
  auto bind = [&](const char* name, CellKind kind, NetId& cache) {
    const auto id = findNet(name);
    if (!id) return;
    const GateId d = nets_[*id].driver;
    if (d != kNoGate && gates_[d].kind == kind) cache = *id;
  };
  bind("_const0", CellKind::kConst0, const0_);
  bind("_const1", CellKind::kConst1, const1_);
}

bool Netlist::isPO(NetId n) const {
  return std::find(pos_.begin(), pos_.end(), n) != pos_.end();
}

std::optional<NetId> Netlist::findNet(const std::string& name) const {
  auto it = byName_.find(name);
  if (it == byName_.end()) return std::nullopt;
  return it->second;
}

std::vector<GateId> Netlist::topoOrder() const {
  // The sort itself lives in CompiledNetlist — the tree's only toposort
  // implementation.  This wrapper exists for one-shot callers; anything on
  // a hot path should compile the netlist once and keep the view.
  const std::optional<CompiledNetlist> c = CompiledNetlist::tryCompile(*this);
  if (!c) return {};  // combinational cycle (or multiply-driven net)
  return {c->topoOrder().begin(), c->topoOrder().end()};
}

std::optional<std::string> Netlist::validate() const {
  for (NetId n = 0; n < nets_.size(); ++n) {
    if (nets_[n].driver == kNoGate) {
      // Orphan nets (undriven, unread, not part of the interface) are
      // legal leftovers of gate-removal passes; anything else undriven is
      // a structural error.
      if (nets_[n].fanouts.empty() && !isPO(n)) continue;
      return "net '" + nets_[n].name + "' has no driver";
    }
  }
  for (GateId g = 0; g < gates_.size(); ++g) {
    const Gate& gg = gates_[g];
    if (gg.out == kNoNet && gg.fanin.empty()) continue;  // tombstone
    const int expect = cellNumInputs(gg.kind);
    if (expect >= 0 && static_cast<int>(gg.fanin.size()) != expect)
      return std::string(cellKindName(gg.kind)) + " gate has " +
             std::to_string(gg.fanin.size()) + " fanins, expected " +
             std::to_string(expect);
    if (gg.out == kNoNet) return "gate with no output net";
    if (nets_[gg.out].driver != g)
      return "net '" + nets_[gg.out].name +
             "' driver bookkeeping broken (multiply driven?)";
  }
  // The compiled-view builder performs the graph-level checks: multiply-
  // driven nets (two live gates claiming one output) and combinational
  // cycles, both with diagnostics naming the offending net.
  std::string err;
  if (!CompiledNetlist::tryCompile(*this, &err).has_value()) return err;
  return std::nullopt;
}

NetlistStats Netlist::stats(const CellLibrary& lib) const {
  NetlistStats s;
  s.numPIs = pis_.size();
  s.numPOs = pos_.size();
  for (const Gate& g : gates_) {
    if (g.out == kNoNet && g.fanin.empty()) continue;  // tombstone
    if (isSourceKind(g.kind)) continue;
    ++s.numCells;
    if (g.kind == CellKind::kDff) ++s.numFFs;
    if (g.kind == CellKind::kLut)
      s.area += lib.lutArea(static_cast<int>(g.fanin.size()));
    else
      s.area += lib.info(g.kind, g.drive).area;
  }
  return s;
}

std::uint64_t Netlist::contentHash() const {
  // FNV-1a, folded over every structural feature in a fixed traversal
  // order.  No pointers, no map iteration order — runs on the same design
  // always agree; tombstoned gates hash as a fixed marker so removal
  // attacks change the hash without depending on vector compaction.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  auto mixStr = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xFF;  // terminator: "ab","c" != "a","bc"
    h *= 0x100000001b3ULL;
  };
  mixStr(name_);
  mix(nets_.size());
  mix(gates_.size());
  for (const Net& n : nets_) {
    mixStr(n.name);
    mix(static_cast<std::uint64_t>(n.wireDelay));
  }
  for (const Gate& g : gates_) {
    if (g.out == kNoNet && g.fanin.empty()) {  // tombstone
      mix(~0ULL);
      continue;
    }
    mix(static_cast<std::uint64_t>(g.kind));
    mix(g.drive);
    mix(g.out);
    mix(g.fanin.size());
    for (const NetId f : g.fanin) mix(f);
    mix(static_cast<std::uint64_t>(g.delayPs));
    mix(g.lutMask);
  }
  for (const NetId n : pis_) mix(n);
  for (const NetId n : pos_) mix(n);
  for (const GateId g : ffs_) mix(g);
  return h;
}

}  // namespace gkll
