// CompiledNetlist — the one analyzed, immutable view of a Netlist.
//
// A Netlist is a mutable construction object: gates are added, rewired,
// tombstoned, and every structural fact (dependency order, levels, fanout
// lists) can change under an edit.  Every consumer that previously
// re-derived those facts on its own — the zero-delay simulator, the event
// scheduler, STA, the CNF encoder, the optimisation passes, withholding —
// now compiles the netlist once into this view and reads cached arrays:
//
//   - CSR (compressed-sparse-row) fanin and fanout adjacency,
//   - the topological order (the only toposort implementation in the tree),
//   - per-net combinational levels,
//   - dense per-gate kind / drive / delay / LUT tables (no Gate pointer
//     chasing on hot paths),
//   - source / combinational / flop gate partitions and a combinational-
//     core mask.
//
// Invalidation rule: a CompiledNetlist is a snapshot.  After *any* Netlist
// mutation (addGate, rewireReaders, removeGate, ...) the view is stale and
// must be rebuilt; holders never observe edits.  The view keeps a pointer
// to its source netlist for name lookups only — the source must outlive
// the view.
//
// On top of the scalar evaluator the view provides a 64-way bit-parallel
// evaluator (evalPacked): each net carries one 64-bit value lane set plus a
// second 64-bit plane tracking X, so one pass evaluates 64 input patterns.
// This is what the attack oracles and random-pattern sampling batch on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netlist/logic.h"
#include "netlist/netlist.h"

namespace gkll {

/// 64 three-valued logic lanes for one signal.  Bit i of `x` set means
/// lane i is X; otherwise bit i of `v` is the 0/1 value.  Canonical form:
/// `v & x == 0` (an X lane's value bit is 0) — every helper below both
/// assumes and preserves this.
struct PackedBits {
  std::uint64_t v = 0;
  std::uint64_t x = ~0ULL;  ///< default: all lanes X

  bool operator==(const PackedBits&) const = default;
};

inline PackedBits packedConst(bool one) {
  return {one ? ~0ULL : 0ULL, 0ULL};
}
inline PackedBits packedSplat(Logic l) {
  if (l == Logic::X) return {0ULL, ~0ULL};
  return packedConst(l == Logic::T);
}
inline Logic packedLane(PackedBits b, unsigned lane) {
  if ((b.x >> lane) & 1ULL) return Logic::X;
  return logicFromBool((b.v >> lane) & 1ULL);
}
inline void packedSetLane(PackedBits& b, unsigned lane, Logic l) {
  const std::uint64_t bit = 1ULL << lane;
  b.v &= ~bit;
  b.x &= ~bit;
  if (l == Logic::X)
    b.x |= bit;
  else if (l == Logic::T)
    b.v |= bit;
}

// Lane-wise three-valued connectives (exact matches of logicNot/And/Or/Xor).
inline PackedBits packedNot(PackedBits a) { return {~a.v & ~a.x, a.x}; }
inline PackedBits packedAnd(PackedBits a, PackedBits b) {
  const std::uint64_t zero = (~a.v & ~a.x) | (~b.v & ~b.x);  // a known 0
  return {a.v & b.v, (a.x | b.x) & ~zero};
}
inline PackedBits packedOr(PackedBits a, PackedBits b) {
  const std::uint64_t one = a.v | b.v;  // canonical: v set only when known
  return {one, (a.x | b.x) & ~one};
}
inline PackedBits packedXor(PackedBits a, PackedBits b) {
  const std::uint64_t x = a.x | b.x;
  return {(a.v ^ b.v) & ~x, x};
}

/// Packed counterpart of evalCell: evaluate one cell on 64 lanes at once.
/// `ins` in pin order; `lutMask` only consulted for kLut.
PackedBits evalPackedCell(CellKind k, std::span<const PackedBits> ins,
                          std::uint64_t lutMask = 0);

/// Transpose pattern-major inputs (patterns[k][i] = signal i of lane k,
/// k < 64) into one PackedBits per signal.  Missing trailing signals in a
/// pattern default to X; lanes beyond patterns.size() are X.
std::vector<PackedBits> packPatterns(
    const std::vector<std::vector<Logic>>& patterns);

/// Lane `lane` of a signal-major packed vector, as a plain Logic vector.
std::vector<Logic> unpackLane(const std::vector<PackedBits>& packed,
                              unsigned lane);

class CompiledNetlist {
 public:
  /// Analyze `nl`.  Fails — returning std::nullopt and, when `error` is
  /// non-null, a descriptive message naming the offending net — on the two
  /// structural defects no consumer can survive: a combinational cycle, or
  /// a net driven by more than one live gate.
  static std::optional<CompiledNetlist> tryCompile(const Netlist& nl,
                                                   std::string* error = nullptr);

  /// Analyze a netlist that is known to be well-formed; prints the
  /// diagnostic and aborts on a structural defect (the debug-build
  /// equivalent of the asserts the mutators carry).
  static CompiledNetlist compile(const Netlist& nl);

  // --- source --------------------------------------------------------------
  const Netlist& source() const { return *src_; }
  std::size_t numGates() const { return kind_.size(); }
  std::size_t numNets() const { return fanoutOff_.size() - 1; }
  /// Gates that are neither tombstones nor duplicates — the length of
  /// topoOrder().
  std::size_t numLiveGates() const { return topo_.size(); }

  // --- dense per-gate tables ----------------------------------------------
  CellKind kind(GateId g) const { return kind_[g]; }
  std::uint8_t drive(GateId g) const { return drive_[g]; }
  NetId out(GateId g) const { return out_[g]; }
  Ps delayPs(GateId g) const { return delayPs_[g]; }
  std::uint64_t lutMask(GateId g) const { return lutMask_[g]; }
  bool isTombstone(GateId g) const {
    return out_[g] == kNoNet && faninOff_[g] == faninOff_[g + 1];
  }

  // --- CSR adjacency -------------------------------------------------------
  std::span<const NetId> fanin(GateId g) const {
    return {faninNets_.data() + faninOff_[g], faninOff_[g + 1] - faninOff_[g]};
  }
  /// Reader gates of a net, one entry per reading pin (matches
  /// Net::fanouts up to order).
  std::span<const GateId> fanout(NetId n) const {
    return {fanoutGates_.data() + fanoutOff_[n],
            fanoutOff_[n + 1] - fanoutOff_[n]};
  }
  GateId driver(NetId n) const { return driver_[n]; }

  // --- cached structure ----------------------------------------------------
  /// All live gates, sources first, combinational gates in dependency
  /// order (DFG Q pins count as sources; their D pins as sinks).
  std::span<const GateId> topoOrder() const { return topo_; }
  /// Position of a gate within topoOrder(); gates earlier in the order
  /// have smaller positions.  Undefined for tombstones.
  std::uint32_t topoPos(GateId g) const { return topoPos_[g]; }
  /// Only the combinational gates (the combinational core), in dependency
  /// order — the exact iteration set of every evaluation pass.
  std::span<const GateId> combGates() const { return comb_; }
  /// kInput / kConst0 / kConst1 gates.
  std::span<const GateId> sourceGates() const { return sources_; }
  /// The combinational-core mask: true for live gates that are neither
  /// sources nor flops.
  bool isCombGate(GateId g) const { return combMask_[g] != 0; }

  /// Combinational level per net: sources and flop Q pins are level 0,
  /// a gate output is 1 + max(level of its fanins).
  int level(NetId n) const { return level_[n]; }
  std::span<const int> levels() const { return level_; }
  int maxLevel() const { return maxLevel_; }

  /// Flop gates in Netlist::flops() order, with O(1) reverse lookup
  /// (-1 when the gate is not a flop).
  std::span<const GateId> flops() const { return flops_; }
  int flopIndex(GateId g) const { return flopIndex_[g]; }

  // --- scalar evaluation ---------------------------------------------------
  /// One steady-state zero-delay evaluation.  `inputs[i]` drives
  /// source().inputs()[i] (missing entries default to X); `ffState[i]`
  /// drives flop i's Q net (empty = flops float at X, the combinational
  /// case).  Writes every net's settled value into `nets`.
  void evalInto(std::span<const Logic> inputs, std::span<const Logic> ffState,
                std::vector<Logic>& nets) const;

  /// Convenience wrapper over evalInto for combinational netlists.
  std::vector<Logic> evalComb(std::span<const Logic> inputs) const;

  // --- 64-way bit-parallel evaluation --------------------------------------
  /// Same contract as evalInto, 64 patterns at a time: `inputs[i]` holds
  /// the 64 lanes of source().inputs()[i].  X lanes propagate with exactly
  /// the three-valued semantics of evalCell (verified lane-by-lane by the
  /// property tests).
  void evalPacked(std::span<const PackedBits> inputs,
                  std::span<const PackedBits> ffState,
                  std::vector<PackedBits>& nets) const;

  /// PO lanes of a full packed net vector, in source().outputs() order.
  std::vector<PackedBits> outputLanes(
      const std::vector<PackedBits>& nets) const;

 private:
  CompiledNetlist() = default;

  const Netlist* src_ = nullptr;

  std::vector<CellKind> kind_;
  std::vector<std::uint8_t> drive_;
  std::vector<NetId> out_;
  std::vector<Ps> delayPs_;
  std::vector<std::uint64_t> lutMask_;

  std::vector<std::uint32_t> faninOff_;   // numGates + 1
  std::vector<NetId> faninNets_;
  std::vector<std::uint32_t> fanoutOff_;  // numNets + 1
  std::vector<GateId> fanoutGates_;
  std::vector<GateId> driver_;            // per net

  std::vector<GateId> topo_;
  std::vector<std::uint32_t> topoPos_;
  std::vector<GateId> comb_;
  std::vector<GateId> sources_;
  std::vector<std::uint8_t> combMask_;
  std::vector<int> level_;
  int maxLevel_ = 0;

  std::vector<GateId> flops_;
  std::vector<int> flopIndex_;
};

}  // namespace gkll
