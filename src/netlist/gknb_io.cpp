#include "netlist/gknb_io.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "netlist/cell_library.h"

namespace gkll {
namespace {

constexpr char kMagic[4] = {'G', 'K', 'N', 'B'};
constexpr std::uint8_t kTombstoneTag = 0xFF;

// ---- encoding primitives -------------------------------------------------

void putVarint(std::ostream& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.put(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<char>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void putStr(std::ostream& out, const std::string& s) {
  putVarint(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Cursor over the input with sticky error state: every get* returns false
/// once a read fails, so the parse loop can check once per record.
struct Reader {
  std::istream& in;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) error = msg;
    return false;
  }

  bool getByte(std::uint8_t& b) {
    if (!error.empty()) return false;
    const int c = in.get();
    if (c == std::char_traits<char>::eof())
      return fail("unexpected end of file");
    b = static_cast<std::uint8_t>(c);
    return true;
  }

  bool getVarint(std::uint64_t& v) {
    v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      std::uint8_t b;
      if (!getByte(b)) return false;
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return true;
    }
    return fail("overlong varint");
  }

  bool getZigzag(std::int64_t& v) {
    std::uint64_t raw;
    if (!getVarint(raw)) return false;
    v = unzigzag(raw);
    return true;
  }

  bool getStr(std::string& s) {
    std::uint64_t len;
    if (!getVarint(len)) return false;
    if (len > (1u << 20)) return fail("string length out of range");
    s.resize(static_cast<std::size_t>(len));
    if (len != 0) {
      in.read(s.data(), static_cast<std::streamsize>(len));
      if (!in) return fail("unexpected end of file");
    }
    return true;
  }

  /// Fixed-width little-endian u64 (the hash trailer).
  bool getU64le(std::uint64_t& v) {
    v = 0;
    for (int i = 0; i < 8; ++i) {
      std::uint8_t b;
      if (!getByte(b)) return false;
      v |= static_cast<std::uint64_t>(b) << (8 * i);
    }
    return true;
  }
};

bool isTombstone(const Gate& g) {
  return g.out == kNoNet && g.fanin.empty();
}

}  // namespace

void writeGknb(const Netlist& nl, std::ostream& out) {
  out.write(kMagic, 4);
  putVarint(out, kGknbVersion);
  putStr(out, nl.name());

  putVarint(out, nl.numNets());
  for (NetId n = 0; n < nl.numNets(); ++n) {
    putStr(out, nl.net(n).name);
    putVarint(out, zigzag(nl.net(n).wireDelay));
  }

  putVarint(out, nl.numGates());
  for (GateId g = 0; g < nl.numGates(); ++g) {
    const Gate& gg = nl.gate(g);
    if (isTombstone(gg)) {
      out.put(static_cast<char>(kTombstoneTag));
      continue;
    }
    out.put(static_cast<char>(static_cast<int>(gg.kind)));
    putVarint(out, gg.drive);
    putVarint(out, gg.out);
    putVarint(out, gg.fanin.size());
    for (NetId in : gg.fanin) putVarint(out, in);
    putVarint(out, zigzag(gg.delayPs));
    putVarint(out, gg.lutMask);
  }

  putVarint(out, nl.inputs().size());
  for (NetId n : nl.inputs()) putVarint(out, n);
  putVarint(out, nl.outputs().size());
  for (NetId n : nl.outputs()) putVarint(out, n);
  putVarint(out, nl.flops().size());
  for (GateId g : nl.flops()) putVarint(out, g);

  const std::uint64_t h = nl.contentHash();
  for (int i = 0; i < 8; ++i)
    out.put(static_cast<char>((h >> (8 * i)) & 0xFF));
}

bool writeGknbFile(const Netlist& nl, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  writeGknb(nl, f);
  f.flush();
  return static_cast<bool>(f);
}

GknbReadResult readGknb(std::istream& in) {
  GknbReadResult res;
  Reader r{in, {}};
  auto fail = [&](const std::string& msg) {
    res.error = r.error.empty() ? msg : r.error;
    return res;
  };

  char magic[4] = {};
  in.read(magic, 4);
  if (!in || magic[0] != 'G' || magic[1] != 'K' || magic[2] != 'N' ||
      magic[3] != 'B')
    return fail("not a GKNB file (bad magic)");

  std::uint64_t version;
  if (!r.getVarint(version)) return fail("");
  if (version != kGknbVersion)
    return fail("unsupported GKNB version " + std::to_string(version));

  std::string name;
  if (!r.getStr(name)) return fail("");
  Netlist& nl = res.netlist;
  nl.setName(std::move(name));

  std::uint64_t numNets;
  if (!r.getVarint(numNets)) return fail("");
  if (numNets >= kNoNet) return fail("net count out of range");
  for (std::uint64_t i = 0; i < numNets; ++i) {
    std::string netName;
    std::int64_t wd;
    if (!r.getStr(netName) || !r.getZigzag(wd)) return fail("");
    if (netName.empty()) return fail("net with empty name");
    if (nl.findNet(netName)) return fail("duplicate net name: " + netName);
    const NetId id = nl.addNet(std::move(netName));
    nl.net(id).wireDelay = wd;
  }

  std::uint64_t numGates;
  if (!r.getVarint(numGates)) return fail("");
  if (numGates >= kNoGate) return fail("gate count out of range");
  for (std::uint64_t i = 0; i < numGates; ++i) {
    std::uint8_t tag;
    if (!r.getByte(tag)) return fail("");
    if (tag == kTombstoneTag) {
      nl.addTombstone();
      continue;
    }
    if (tag >= kNumCellKinds)
      return fail("unknown cell kind " + std::to_string(tag));
    const CellKind kind = static_cast<CellKind>(tag);
    std::uint64_t drive, out64, nIns;
    if (!r.getVarint(drive) || !r.getVarint(out64) || !r.getVarint(nIns))
      return fail("");
    if (drive == 0 || drive > 255) return fail("drive strength out of range");
    if (out64 >= numNets) return fail("gate output net id out of range");
    const NetId out = static_cast<NetId>(out64);
    if (nl.net(out).driver != kNoGate)
      return fail("net '" + nl.net(out).name + "' multiply driven");
    const int expect = cellNumInputs(kind);
    if (expect >= 0 && nIns != static_cast<std::uint64_t>(expect))
      return fail(std::string(cellKindName(kind)) + " gate with " +
                  std::to_string(nIns) + " fanins");
    if (kind == CellKind::kLut && (nIns < 1 || nIns > 6))
      return fail("LUT fanin count out of range");
    if (nIns > numNets) return fail("fanin count out of range");
    std::vector<NetId> fanin;
    fanin.reserve(static_cast<std::size_t>(nIns));
    for (std::uint64_t k = 0; k < nIns; ++k) {
      std::uint64_t in64;
      if (!r.getVarint(in64)) return fail("");
      if (in64 >= numNets) return fail("fanin net id out of range");
      fanin.push_back(static_cast<NetId>(in64));
    }
    std::int64_t delayPs;
    std::uint64_t lutMask;
    if (!r.getZigzag(delayPs) || !r.getVarint(lutMask)) return fail("");
    const GateId g = nl.addGate(kind, std::move(fanin), out);
    nl.gate(g).drive = static_cast<std::uint8_t>(drive);
    nl.gate(g).delayPs = delayPs;
    nl.gate(g).lutMask = lutMask;
  }

  std::uint64_t nPis;
  if (!r.getVarint(nPis)) return fail("");
  if (nPis > numNets) return fail("PI count out of range");
  for (std::uint64_t i = 0; i < nPis; ++i) {
    std::uint64_t n64;
    if (!r.getVarint(n64)) return fail("");
    if (n64 >= numNets) return fail("PI net id out of range");
    const NetId n = static_cast<NetId>(n64);
    const GateId d = nl.net(n).driver;
    if (d == kNoGate || nl.gate(d).kind != CellKind::kInput)
      return fail("PI net '" + nl.net(n).name + "' not driven by an input");
    nl.registerPI(n);
  }

  std::uint64_t nPos;
  if (!r.getVarint(nPos)) return fail("");
  if (nPos > numNets) return fail("PO count out of range");
  for (std::uint64_t i = 0; i < nPos; ++i) {
    std::uint64_t n64;
    if (!r.getVarint(n64)) return fail("");
    if (n64 >= numNets) return fail("PO net id out of range");
    // appendPO, not markPO: combinational-extraction pseudo POs may list
    // one net twice, and PO positions must survive the round trip.
    nl.appendPO(static_cast<NetId>(n64));
  }

  std::uint64_t nFfs;
  if (!r.getVarint(nFfs)) return fail("");
  if (nFfs != nl.flops().size())
    return fail("flop list does not match kDff gates");
  for (std::uint64_t i = 0; i < nFfs; ++i) {
    std::uint64_t g64;
    if (!r.getVarint(g64)) return fail("");
    if (g64 != nl.flops()[static_cast<std::size_t>(i)])
      return fail("flop order does not match kDff gate order");
  }

  std::uint64_t storedHash;
  if (!r.getU64le(storedHash)) return fail("");

  nl.rebindConstCache();
  if (nl.contentHash() != storedHash)
    return fail("content hash mismatch (corrupt or truncated file)");
  res.ok = true;
  return res;
}

GknbReadResult readGknbFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    GknbReadResult r;
    r.error = "cannot open " + path;
    return r;
  }
  return readGknb(f);
}

}  // namespace gkll
