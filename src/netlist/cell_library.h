// Synthetic standard-cell library modelled on a 0.13um-class process.
//
// The paper maps its designs onto the TSMC 0.13um CL013G SAGE-X library via
// Design Compiler.  We cannot ship that library, so this module provides a
// synthetic equivalent with the same *relative* areas and delays (XOR about
// 2.2x an X1 inverter in area, DFF about 5x, FO4-scale gate delays of a few
// tens of picoseconds).  All of Tables I/II in the paper depend only on
// these ratios, not on absolute values.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "netlist/logic.h"
#include "util/time_types.h"

namespace gkll {

/// Every cell kind the netlist can instantiate.
///
/// kDelay is an *ideal* delay element (the "A"/"B" boxes of the paper's
/// Figs. 3 and 5): it has zero area and a per-gate delay value, and the
/// synthesis step (flow/synth) maps it to a chain of real buffers and
/// inverters from this library — exactly the mechanism the paper describes
/// ("delay elements, e.g. inverters or buffers, are all from the cell
/// library to composite a unique delay").
///
/// kLut is the withholding lookup table of Sec. V-D: a truth-table cell of
/// up to six inputs whose contents are assumed to be held in tamper-proof
/// storage and invisible to an attacker.
enum class CellKind : std::uint8_t {
  kInput,   ///< primary-input pseudo cell (no fanin)
  kConst0,  ///< constant 0 source
  kConst1,  ///< constant 1 source
  kBuf,
  kInv,
  kAnd2,
  kAnd3,
  kAnd4,
  kNand2,
  kNand3,
  kNand4,
  kOr2,
  kOr3,
  kOr4,
  kNor2,
  kNor3,
  kNor4,
  kXor2,
  kXnor2,
  kMux2,   ///< fanin order {sel, in0, in1}: out = sel ? in1 : in0
  kAoi21,  ///< fanin {a, b, c}: out = !((a & b) | c)
  kOai21,  ///< fanin {a, b, c}: out = !((a | b) & c)
  kDff,    ///< fanin {d}; output is Q.  Single implicit global clock.
  kDelay,  ///< ideal delay element; see Gate::delayPs
  kLut,    ///< withheld truth table; see Gate::lutMask
};

inline constexpr int kNumCellKinds = static_cast<int>(CellKind::kLut) + 1;

/// Number of fanin pins of a kind, or -1 for variable (kLut).
int cellNumInputs(CellKind k);

/// Canonical upper-case name, e.g. "NAND2".
const char* cellKindName(CellKind k);

/// Inverse of cellKindName; returns false if the name is unknown.
bool cellKindFromName(const std::string& name, CellKind& out);

/// True for DFFs.
bool isSequential(CellKind k);

/// True for cells with no fanin (inputs and constants).
bool isSourceKind(CellKind k);

/// True for single-input cells that merely repeat/inverts their input
/// (kBuf, kInv, kDelay).
bool isUnaryKind(CellKind k);

namespace detail {

inline Logic andAll(std::span<const Logic> ins) {
  Logic v = Logic::T;
  for (Logic i : ins) v = logicAnd(v, i);
  return v;
}

inline Logic orAll(std::span<const Logic> ins) {
  Logic v = Logic::F;
  for (Logic i : ins) v = logicOr(v, i);
  return v;
}

/// Cold path: kLut with at least one X input (cofactor recursion over the
/// first X).  Out of line — it allocates, and X inputs are rare.
Logic evalLutWithX(std::span<const Logic> ins, std::uint64_t lutMask);

}  // namespace detail

/// Evaluate the steady-state function of a cell under three-valued logic.
/// `ins` must contain cellNumInputs(k) values (any count for kLut, <= 6).
/// kDelay behaves as a buffer; kDff is evaluated as transparent (returns d)
/// — sequential behaviour lives in the simulators.  Defined inline: this is
/// the innermost call of both the packed evaluator's scalar fallback and
/// the event simulator's scheduling loop, where the cross-TU call (no LTO)
/// was measurable.
inline Logic evalCell(CellKind k, std::span<const Logic> ins,
                      std::uint64_t lutMask = 0) {
  switch (k) {
    case CellKind::kInput:
      return Logic::X;  // inputs have no function; driven externally
    case CellKind::kConst0:
      return Logic::F;
    case CellKind::kConst1:
      return Logic::T;
    case CellKind::kBuf:
    case CellKind::kDelay:
    case CellKind::kDff:
      return ins[0];
    case CellKind::kInv:
      return logicNot(ins[0]);
    case CellKind::kAnd2:
    case CellKind::kAnd3:
    case CellKind::kAnd4:
      return detail::andAll(ins);
    case CellKind::kNand2:
    case CellKind::kNand3:
    case CellKind::kNand4:
      return logicNot(detail::andAll(ins));
    case CellKind::kOr2:
    case CellKind::kOr3:
    case CellKind::kOr4:
      return detail::orAll(ins);
    case CellKind::kNor2:
    case CellKind::kNor3:
    case CellKind::kNor4:
      return logicNot(detail::orAll(ins));
    case CellKind::kXor2:
      return logicXor(ins[0], ins[1]);
    case CellKind::kXnor2:
      return logicNot(logicXor(ins[0], ins[1]));
    case CellKind::kMux2: {
      const Logic sel = ins[0];
      if (sel == Logic::F) return ins[1];
      if (sel == Logic::T) return ins[2];
      // X select: output known only if both data inputs agree.
      return ins[1] == ins[2] ? ins[1] : Logic::X;
    }
    case CellKind::kAoi21:
      return logicNot(logicOr(logicAnd(ins[0], ins[1]), ins[2]));
    case CellKind::kOai21:
      return logicNot(logicAnd(logicOr(ins[0], ins[1]), ins[2]));
    case CellKind::kLut: {
      std::uint64_t idx = 0;
      for (std::size_t i = 0; i < ins.size(); ++i) {
        if (ins[i] == Logic::X) return detail::evalLutWithX(ins, lutMask);
        if (ins[i] == Logic::T) idx |= (1ULL << i);
      }
      return logicFromBool((lutMask >> idx) & 1ULL);
    }
  }
  return Logic::X;
}

/// Per-cell physical data: area and pin-to-output transport delays.
struct CellInfo {
  CentiUm2 area = 0;
  Ps rise = 0;  ///< input-to-output delay when the output rises
  Ps fall = 0;  ///< input-to-output delay when the output falls
};

/// The synthetic 0.13um library.  Inv exists in drive strengths X1/X2/X4
/// (drive = 1, 2, 4); Buf additionally in dedicated *delay-cell* variants
/// DLY1/DLY2/DLY4/DLY8 (drive = 8..64; symmetric 180..1440 ps) — the
/// long-channel delay buffers real 0.13um libraries provide, which keep
/// the paper's delay-element chains from exploding in cell count.  Every
/// other kind exists only in X1.
class CellLibrary {
 public:
  /// The process-wide synthetic library instance.
  static const CellLibrary& tsmc013c();

  /// A copy of tsmc013c() with overridden flop timing parameters — the
  /// seam the tests use to exercise library-precondition guards (e.g. the
  /// simulator's clkToQ >= holdTime requirement).  The returned library
  /// must outlive any consumer holding a reference to it.
  static CellLibrary withFlopTiming(Ps setup, Ps hold, Ps clkToQ);

  /// Area/delay for a kind at a drive strength.
  CellInfo info(CellKind k, int drive = 1) const;

  /// Worst-case (max of rise/fall) transport delay of a cell.
  Ps maxDelay(CellKind k, int drive = 1) const;

  /// Flip-flop timing parameters.
  Ps setupTime() const { return setup_; }
  Ps holdTime() const { return hold_; }
  Ps clkToQ() const { return clkToQ_; }

  /// Area of a withheld LUT with the given input count (grows as 2^n).
  CentiUm2 lutArea(int numInputs) const;

 private:
  CellLibrary();
  CellInfo cells_[kNumCellKinds];
  CellInfo bufDrive_[3];  // X1, X2, X4
  CellInfo dlyDrive_[4];  // DLY1..DLY8 (drive 8, 16, 32, 64)
  CellInfo invDrive_[3];
  Ps setup_ = 0, hold_ = 0, clkToQ_ = 0;
};

}  // namespace gkll
