// Three-valued logic used by both the zero-delay and the event-driven
// simulators.  X means "unknown / uninitialised".
#pragma once

#include <cstdint>

namespace gkll {

enum class Logic : std::uint8_t {
  F = 0,  ///< logic 0
  T = 1,  ///< logic 1
  X = 2,  ///< unknown
};

constexpr Logic logicFromBool(bool b) { return b ? Logic::T : Logic::F; }

constexpr bool isKnown(Logic v) { return v != Logic::X; }

/// Three-valued NOT.
constexpr Logic logicNot(Logic a) {
  if (a == Logic::X) return Logic::X;
  return a == Logic::T ? Logic::F : Logic::T;
}

/// Three-valued AND (0 dominates X).
constexpr Logic logicAnd(Logic a, Logic b) {
  if (a == Logic::F || b == Logic::F) return Logic::F;
  if (a == Logic::X || b == Logic::X) return Logic::X;
  return Logic::T;
}

/// Three-valued OR (1 dominates X).
constexpr Logic logicOr(Logic a, Logic b) {
  if (a == Logic::T || b == Logic::T) return Logic::T;
  if (a == Logic::X || b == Logic::X) return Logic::X;
  return Logic::F;
}

/// Three-valued XOR.
constexpr Logic logicXor(Logic a, Logic b) {
  if (a == Logic::X || b == Logic::X) return Logic::X;
  return logicFromBool(a != b);
}

constexpr char logicChar(Logic v) {
  return v == Logic::F ? '0' : (v == Logic::T ? '1' : 'X');
}

}  // namespace gkll
