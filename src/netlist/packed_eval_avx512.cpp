// AVX-512 wide-sweep kernel: same portable source, auto-vectorised at
// 512 bits.  Compiled with -mavx512f only when the compiler supports the
// flag (GKLL_BUILD_AVX512 from CMake); otherwise this unit is empty.
#ifdef GKLL_BUILD_AVX512
#define GKLL_WIDE_NS wideavx512
#include "netlist/packed_eval_kernel.inl"
#endif
