// The wide combinational sweep — included, not compiled directly.
//
// Each per-ISA translation unit defines GKLL_WIDE_NS (widescalar /
// wideavx2 / wideavx512) and includes this file; CMake gives the AVX
// units their -m flags, and the identical portable source auto-vectorises
// to the unit's ISA.  No intrinsics: every variant runs the exact
// word-level formulas of the PackedBits helpers (compiled.h), so all
// kernels are byte-identical by construction.
//
// The sweep walks comb gates level block by level block (WidePlan::
// blockOff); within a block the inner loops are unit-stride W-word
// bitwise passes over planar rows.  Output rows never alias fanin rows —
// a gate's output net is at a strictly higher level than its fanins, and
// slots are unique per net — hence the __restrict qualifiers.

#include <cstdint>

#include "netlist/compiled.h"
#include "netlist/packed_eval.h"

namespace gkll::detail::GKLL_WIDE_NS {
namespace {

// Word-level copies of packedNot/And/Or/Xor/Mux — identical formulas.
struct VX {
  std::uint64_t v, x;
};
inline VX vxNot(VX a) { return {~a.v & ~a.x, a.x}; }
inline VX vxAnd(VX a, VX b) {
  const std::uint64_t zero = (~a.v & ~a.x) | (~b.v & ~b.x);
  return {a.v & b.v, (a.x | b.x) & ~zero};
}
inline VX vxOr(VX a, VX b) {
  const std::uint64_t one = a.v | b.v;
  return {one, (a.x | b.x) & ~one};
}
inline VX vxXor(VX a, VX b) {
  const std::uint64_t x = a.x | b.x;
  return {(a.v ^ b.v) & ~x, x};
}
inline VX vxMux(VX s, VX in0, VX in1) {
  const std::uint64_t selKnown = ~s.x;
  const std::uint64_t pickV = (~s.v & in0.v) | (s.v & in1.v);
  const std::uint64_t pickX = (~s.v & in0.x) | (s.v & in1.x);
  const std::uint64_t agree = ~(in0.v ^ in1.v) & ~in0.x & ~in1.x;
  const std::uint64_t x = (selKnown & pickX) | (~selKnown & ~agree);
  const std::uint64_t v = ((selKnown & pickV) | (~selKnown & in0.v)) & ~x;
  return {v, x};
}

}  // namespace

void evalCombSweep(const WidePlan& p, std::uint64_t* v, std::uint64_t* x,
                   std::size_t W) {
  std::size_t lutCursor = 0;
  const std::uint32_t* insSlots = p.insSlot.data();
  for (std::size_t b = 0; b + 1 < p.blockOff.size(); ++b) {
    for (std::size_t gi = p.blockOff[b]; gi < p.blockOff[b + 1]; ++gi) {
      const auto k = static_cast<CellKind>(p.kind[gi]);
      const std::uint32_t* in = insSlots + p.insOff[gi];
      const std::size_t nIn = p.insOff[gi + 1] - p.insOff[gi];
      std::uint64_t* __restrict ov = v + std::size_t{p.outSlot[gi]} * W;
      std::uint64_t* __restrict ox = x + std::size_t{p.outSlot[gi]} * W;
      const auto rv = [&](std::size_t i) -> const std::uint64_t* {
        return v + std::size_t{in[i]} * W;
      };
      const auto rx = [&](std::size_t i) -> const std::uint64_t* {
        return x + std::size_t{in[i]} * W;
      };
      switch (k) {
        case CellKind::kBuf:
        case CellKind::kDelay: {
          const std::uint64_t* __restrict av = rv(0);
          const std::uint64_t* __restrict ax = rx(0);
          for (std::size_t w = 0; w < W; ++w) {
            ov[w] = av[w];
            ox[w] = ax[w];
          }
          break;
        }
        case CellKind::kInv: {
          const std::uint64_t* __restrict av = rv(0);
          const std::uint64_t* __restrict ax = rx(0);
          for (std::size_t w = 0; w < W; ++w) {
            const VX r = vxNot({av[w], ax[w]});
            ov[w] = r.v;
            ox[w] = r.x;
          }
          break;
        }
        case CellKind::kAnd2:
        case CellKind::kAnd3:
        case CellKind::kAnd4:
        case CellKind::kNand2:
        case CellKind::kNand3:
        case CellKind::kNand4: {
          // Fold into the output row, input by input, matching the
          // packedAnd fold of evalPackedCell (start from all-true).
          {
            const std::uint64_t* __restrict av = rv(0);
            const std::uint64_t* __restrict ax = rx(0);
            for (std::size_t w = 0; w < W; ++w) {
              const VX r = vxAnd({~0ULL, 0ULL}, {av[w], ax[w]});
              ov[w] = r.v;
              ox[w] = r.x;
            }
          }
          for (std::size_t i = 1; i < nIn; ++i) {
            const std::uint64_t* __restrict bv = rv(i);
            const std::uint64_t* __restrict bx = rx(i);
            for (std::size_t w = 0; w < W; ++w) {
              const VX r = vxAnd({ov[w], ox[w]}, {bv[w], bx[w]});
              ov[w] = r.v;
              ox[w] = r.x;
            }
          }
          if (k == CellKind::kNand2 || k == CellKind::kNand3 ||
              k == CellKind::kNand4) {
            for (std::size_t w = 0; w < W; ++w) {
              const VX r = vxNot({ov[w], ox[w]});
              ov[w] = r.v;
              ox[w] = r.x;
            }
          }
          break;
        }
        case CellKind::kOr2:
        case CellKind::kOr3:
        case CellKind::kOr4:
        case CellKind::kNor2:
        case CellKind::kNor3:
        case CellKind::kNor4: {
          {
            const std::uint64_t* __restrict av = rv(0);
            const std::uint64_t* __restrict ax = rx(0);
            for (std::size_t w = 0; w < W; ++w) {
              const VX r = vxOr({0ULL, 0ULL}, {av[w], ax[w]});
              ov[w] = r.v;
              ox[w] = r.x;
            }
          }
          for (std::size_t i = 1; i < nIn; ++i) {
            const std::uint64_t* __restrict bv = rv(i);
            const std::uint64_t* __restrict bx = rx(i);
            for (std::size_t w = 0; w < W; ++w) {
              const VX r = vxOr({ov[w], ox[w]}, {bv[w], bx[w]});
              ov[w] = r.v;
              ox[w] = r.x;
            }
          }
          if (k == CellKind::kNor2 || k == CellKind::kNor3 ||
              k == CellKind::kNor4) {
            for (std::size_t w = 0; w < W; ++w) {
              const VX r = vxNot({ov[w], ox[w]});
              ov[w] = r.v;
              ox[w] = r.x;
            }
          }
          break;
        }
        case CellKind::kXor2:
        case CellKind::kXnor2: {
          const std::uint64_t* __restrict av = rv(0);
          const std::uint64_t* __restrict ax = rx(0);
          const std::uint64_t* __restrict bv = rv(1);
          const std::uint64_t* __restrict bx = rx(1);
          if (k == CellKind::kXor2) {
            for (std::size_t w = 0; w < W; ++w) {
              const VX r = vxXor({av[w], ax[w]}, {bv[w], bx[w]});
              ov[w] = r.v;
              ox[w] = r.x;
            }
          } else {
            for (std::size_t w = 0; w < W; ++w) {
              const VX r = vxNot(vxXor({av[w], ax[w]}, {bv[w], bx[w]}));
              ov[w] = r.v;
              ox[w] = r.x;
            }
          }
          break;
        }
        case CellKind::kMux2: {
          const std::uint64_t* __restrict sv = rv(0);
          const std::uint64_t* __restrict sx = rx(0);
          const std::uint64_t* __restrict av = rv(1);
          const std::uint64_t* __restrict ax = rx(1);
          const std::uint64_t* __restrict bv = rv(2);
          const std::uint64_t* __restrict bx = rx(2);
          for (std::size_t w = 0; w < W; ++w) {
            const VX r =
                vxMux({sv[w], sx[w]}, {av[w], ax[w]}, {bv[w], bx[w]});
            ov[w] = r.v;
            ox[w] = r.x;
          }
          break;
        }
        case CellKind::kAoi21: {
          const std::uint64_t* __restrict av = rv(0);
          const std::uint64_t* __restrict ax = rx(0);
          const std::uint64_t* __restrict bv = rv(1);
          const std::uint64_t* __restrict bx = rx(1);
          const std::uint64_t* __restrict cv = rv(2);
          const std::uint64_t* __restrict cx = rx(2);
          for (std::size_t w = 0; w < W; ++w) {
            const VX r = vxNot(vxOr(vxAnd({av[w], ax[w]}, {bv[w], bx[w]}),
                                    {cv[w], cx[w]}));
            ov[w] = r.v;
            ox[w] = r.x;
          }
          break;
        }
        case CellKind::kOai21: {
          const std::uint64_t* __restrict av = rv(0);
          const std::uint64_t* __restrict ax = rx(0);
          const std::uint64_t* __restrict bv = rv(1);
          const std::uint64_t* __restrict bx = rx(1);
          const std::uint64_t* __restrict cv = rv(2);
          const std::uint64_t* __restrict cx = rx(2);
          for (std::size_t w = 0; w < W; ++w) {
            const VX r = vxNot(vxAnd(vxOr({av[w], ax[w]}, {bv[w], bx[w]}),
                                     {cv[w], cx[w]}));
            ov[w] = r.v;
            ox[w] = r.x;
          }
          break;
        }
        case CellKind::kLut: {
          // LUTs are rare (withholding only): per-word narrow fallback
          // through evalPackedCell keeps the exact cofactor semantics.
          const std::uint64_t mask = p.lutMasks[lutCursor++];
          PackedBits tmp[6];
          for (std::size_t w = 0; w < W; ++w) {
            for (std::size_t i = 0; i < nIn; ++i)
              tmp[i] = {rv(i)[w], rx(i)[w]};
            const PackedBits r = evalPackedCell(
                CellKind::kLut, std::span<const PackedBits>(tmp, nIn), mask);
            ov[w] = r.v;
            ox[w] = r.x;
          }
          break;
        }
        default:
          // Sources and flops are injected before the sweep and never
          // appear in the comb plan.
          break;
      }
    }
  }
}

}  // namespace gkll::detail::GKLL_WIDE_NS
