#include "netlist/netlist_ops.h"

#include <algorithm>
#include <cassert>

#include "netlist/compiled.h"
#include "runtime/parallel.h"

namespace gkll {

Netlist cloneNetlist(const Netlist& src, std::vector<NetId>& netMap) {
  Netlist dst(src.name());
  netMap.assign(src.numNets(), kNoNet);
  for (NetId n = 0; n < src.numNets(); ++n) netMap[n] = dst.addNet(src.net(n).name);
  for (GateId g = 0; g < src.numGates(); ++g) {
    const Gate& gg = src.gate(g);
    if (gg.out == kNoNet && gg.fanin.empty()) continue;  // tombstone
    std::vector<NetId> fanin;
    fanin.reserve(gg.fanin.size());
    for (NetId in : gg.fanin) fanin.push_back(netMap[in]);
    const GateId ng = dst.addGate(gg.kind, std::move(fanin), netMap[gg.out]);
    dst.gate(ng).drive = gg.drive;
    dst.gate(ng).delayPs = gg.delayPs;
    dst.gate(ng).lutMask = gg.lutMask;
  }
  for (NetId n = 0; n < src.numNets(); ++n)
    dst.net(netMap[n]).wireDelay = src.net(n).wireDelay;
  for (NetId n : src.inputs()) dst.registerPI(netMap[n]);
  for (NetId n : src.outputs()) dst.appendPO(netMap[n]);  // preserve slots
  return dst;
}

CombExtraction extractCombinational(const Netlist& seq) {
  CombExtraction res;
  Netlist& nl = res.netlist;
  nl.setName(seq.name() + "_comb");

  res.netMap.assign(seq.numNets(), kNoNet);
  std::vector<NetId>& netMap = res.netMap;
  for (NetId n = 0; n < seq.numNets(); ++n)
    netMap[n] = nl.addNet(seq.net(n).name);

  for (GateId g = 0; g < seq.numGates(); ++g) {
    const Gate& gg = seq.gate(g);
    if (gg.out == kNoNet && gg.fanin.empty()) continue;  // tombstone
    switch (gg.kind) {
      case CellKind::kDff:
        // Q becomes a pseudo primary input; D handled below.
        nl.addGate(CellKind::kInput, {}, netMap[gg.out]);
        break;
      case CellKind::kDelay: {
        // Delays are functionally transparent; keep a buffer so net names
        // survive for diagnostics.
        const GateId b =
            nl.addGate(CellKind::kBuf, {netMap[gg.fanin[0]]}, netMap[gg.out]);
        (void)b;
        break;
      }
      default: {
        std::vector<NetId> fanin;
        fanin.reserve(gg.fanin.size());
        for (NetId in : gg.fanin) fanin.push_back(netMap[in]);
        const GateId ng = nl.addGate(gg.kind, std::move(fanin), netMap[gg.out]);
        nl.gate(ng).drive = gg.drive;
        nl.gate(ng).lutMask = gg.lutMask;
        break;
      }
    }
  }

  // PI order: true PIs first (original order), then one pseudo PI per FF.
  for (NetId n : seq.inputs()) nl.registerPI(netMap[n]);
  for (NetId n : seq.outputs()) nl.appendPO(netMap[n]);  // preserve slots
  for (GateId f : seq.flops()) {
    const Gate& ff = seq.gate(f);
    nl.registerPI(netMap[ff.out]);
    res.pseudoPIs.push_back(netMap[ff.out]);
    res.pseudoPOs.push_back(netMap[ff.fanin[0]]);
    // appendPO, not markPO: one output slot per flop unconditionally, so
    // output positions align across extractions even when a D net doubles
    // as a primary output.
    nl.appendPO(netMap[ff.fanin[0]]);
  }
  return res;
}

std::vector<int> levelize(const Netlist& nl) {
  const CompiledNetlist cn = CompiledNetlist::compile(nl);
  return {cn.levels().begin(), cn.levels().end()};
}

std::vector<GateId> faninCone(const Netlist& nl, NetId target) {
  std::vector<GateId> cone;
  std::vector<bool> seen(nl.numGates(), false);
  std::vector<NetId> stack{target};
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    const GateId g = nl.net(n).driver;
    if (g == kNoGate || seen[g]) continue;
    seen[g] = true;
    cone.push_back(g);
    const Gate& gg = nl.gate(g);
    if (isSourceKind(gg.kind) || gg.kind == CellKind::kDff) continue;
    for (NetId in : gg.fanin) stack.push_back(in);
  }
  return cone;
}

std::vector<std::vector<std::uint32_t>> poFanoutSignatures(
    const Netlist& nl, runtime::ThreadPool* pool) {
  // Reverse reachability: for each PO, mark every net in its fanin cone
  // crossing through combinational gates only (stop at DFF boundaries).
  // Per-net formulation so the propagation parallelises deterministically:
  //   reach[n] = ownPOs(n)  ∪  ⋃ { reach[out(g)] : g comb consumer of n }
  // Nets are grouped by backward depth; within a level every net's set
  // depends only on strictly shallower levels, so a level is an
  // independent index space — each task writes only its own reach[n], and
  // sort+unique canonicalises the merge regardless of visit order.  The
  // result is the fixpoint of the same relation the old per-gate reverse-
  // topo sweep computed, byte-identical with or without a pool.
  const std::size_t numPOs = nl.outputs().size();
  std::vector<std::vector<std::uint32_t>> reach(nl.numNets());

  const CompiledNetlist cn = CompiledNetlist::compile(nl);
  for (std::uint32_t p = 0; p < numPOs; ++p)
    reach[nl.outputs()[p]].push_back(p);
  // FF D-pins are *not* sinks: the paper's algorithm [4] groups by primary
  // output fanout of the FF's combinational cone, so stop at FF boundary.

  // Backward level of every net: 1 + max over its combinational consumers'
  // output nets.  Iterating gates in reverse topological order finalises
  // each output net's level before the gate pushes it to its fanins.
  const auto comb = cn.combGates();
  std::vector<int> blevel(nl.numNets(), 0);
  int maxLevel = 0;
  for (auto it = comb.rbegin(); it != comb.rend(); ++it) {
    const GateId g = *it;
    if (cn.out(g) == kNoNet) continue;
    const int lvl = blevel[cn.out(g)] + 1;
    for (NetId in : cn.fanin(g)) {
      if (lvl > blevel[in]) blevel[in] = lvl;
    }
    if (lvl > maxLevel) maxLevel = lvl;
  }
  std::vector<std::vector<NetId>> byLevel(
      static_cast<std::size_t>(maxLevel) + 1);
  for (NetId n = 0; n < nl.numNets(); ++n)
    byLevel[static_cast<std::size_t>(blevel[n])].push_back(n);

  auto computeNet = [&](NetId n) {
    auto& r = reach[n];
    for (GateId g : cn.fanout(n)) {
      if (!cn.isCombGate(g) || cn.out(g) == kNoNet) continue;
      const auto& outReach = reach[cn.out(g)];
      r.insert(r.end(), outReach.begin(), outReach.end());
    }
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());
  };
  for (const std::vector<NetId>& nets : byLevel) {
    // Level 0 nets whose reach is empty need no canonicalisation, but the
    // PO-marked ones do (a net may back several POs) — always compute.
    if (pool == nullptr || pool->threads() <= 1 || nets.size() < 64) {
      for (NetId n : nets) computeNet(n);
    } else {
      runtime::ParallelOptions popt;
      popt.pool = pool;
      popt.grain = 16;
      runtime::parallelFor(
          nets.size(), [&](std::size_t i) { computeNet(nets[i]); }, popt);
    }
  }

  std::vector<std::vector<std::uint32_t>> sig;
  sig.reserve(nl.flops().size());
  for (GateId f : nl.flops()) sig.push_back(reach[nl.gate(f).out]);
  return sig;
}

bool structurallyEqual(const Netlist& a, const Netlist& b) {
  if (a.name() != b.name()) return false;
  if (a.numNets() != b.numNets() || a.numGates() != b.numGates()) return false;
  if (a.inputs() != b.inputs() || a.outputs() != b.outputs() ||
      a.flops() != b.flops())
    return false;
  for (NetId n = 0; n < a.numNets(); ++n) {
    const Net& na = a.net(n);
    const Net& nb = b.net(n);
    if (na.name != nb.name || na.wireDelay != nb.wireDelay) return false;
  }
  for (GateId g = 0; g < a.numGates(); ++g) {
    const Gate& ga = a.gate(g);
    const Gate& gb = b.gate(g);
    const bool tombA = ga.out == kNoNet && ga.fanin.empty();
    const bool tombB = gb.out == kNoNet && gb.fanin.empty();
    if (tombA != tombB) return false;
    if (tombA) continue;
    if (ga.kind != gb.kind || ga.drive != gb.drive || ga.out != gb.out ||
        ga.fanin != gb.fanin || ga.delayPs != gb.delayPs ||
        ga.lutMask != gb.lutMask)
      return false;
  }
  return true;
}

}  // namespace gkll
