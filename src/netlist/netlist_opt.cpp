#include "netlist/netlist_opt.h"

#include <cassert>
#include <vector>

#include "netlist/compiled.h"
#include "netlist/logic.h"

namespace gkll {
namespace {

bool isTombstone(const Gate& g) { return g.out == kNoNet && g.fanin.empty(); }

}  // namespace

OptReport foldConstants(Netlist& nl) {
  OptReport rep;
  std::vector<Logic> value;
  for (;;) {
    // One constness pass: X = unknown, F/T = provably constant.  The
    // compiled view's zero-stimulus evaluation is exactly this pass — PIs
    // and flop Q pins float at X, constants propagate.  The view is
    // rebuilt every round because the loop body edits the netlist.
    CompiledNetlist::compile(nl).evalInto({}, {}, value);

    bool changed = false;
    for (GateId g = 0; g < nl.numGates(); ++g) {
      const Gate& gg = nl.gate(g);
      if (isTombstone(gg)) continue;
      if (isSourceKind(gg.kind) || gg.kind == CellKind::kDff) continue;
      if (value[gg.out] == Logic::X) continue;
      const NetId out = gg.out;
      const bool one = value[out] == Logic::T;
      nl.removeGate(g);
      nl.addGate(one ? CellKind::kConst1 : CellKind::kConst0, {}, out);
      ++rep.constantsFolded;
      changed = true;
    }
    if (!changed) break;
  }
  return rep;
}

OptReport collapseBuffers(Netlist& nl) {
  OptReport rep;
  for (GateId g = 0; g < nl.numGates(); ++g) {
    const Gate& gg = nl.gate(g);
    if (isTombstone(gg)) continue;
    if (gg.kind != CellKind::kBuf && gg.kind != CellKind::kDelay) continue;
    const NetId out = gg.out;
    if (nl.isPO(out)) continue;  // keep the interface name driven
    const NetId in = gg.fanin[0];
    if (in == out) continue;
    nl.rewireReaders(out, in);
    nl.removeGate(g);  // `out` becomes an orphan net
    ++rep.buffersCollapsed;
  }
  return rep;
}

OptReport removeDeadLogic(Netlist& nl) {
  OptReport rep;
  // Needed-net worklist from the primary outputs; DFFs propagate need
  // from Q to D.
  std::vector<bool> needed(nl.numNets(), false);
  std::vector<NetId> stack;
  for (NetId po : nl.outputs()) {
    if (!needed[po]) {
      needed[po] = true;
      stack.push_back(po);
    }
  }
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    const GateId d = nl.net(n).driver;
    if (d == kNoGate) continue;
    for (NetId in : nl.gate(d).fanin) {
      if (!needed[in]) {
        needed[in] = true;
        stack.push_back(in);
      }
    }
  }

  for (GateId g = 0; g < nl.numGates(); ++g) {
    const Gate& gg = nl.gate(g);
    if (isTombstone(gg)) continue;
    // Interface gates stay, and so do constants: Netlist caches its
    // constant nets, so their drivers must never disappear behind the
    // cache's back.
    if (isSourceKind(gg.kind)) continue;
    if (gg.out != kNoNet && needed[gg.out]) continue;
    nl.removeGate(g);
    ++rep.deadGatesRemoved;
  }
  return rep;
}

OptReport optimize(Netlist& nl) {
  OptReport total;
  for (;;) {
    OptReport round;
    const OptReport f = foldConstants(nl);
    const OptReport b = collapseBuffers(nl);
    const OptReport d = removeDeadLogic(nl);
    round.constantsFolded = f.constantsFolded;
    round.buffersCollapsed = b.buffersCollapsed;
    round.deadGatesRemoved = d.deadGatesRemoved;
    total.constantsFolded += round.constantsFolded;
    total.buffersCollapsed += round.buffersCollapsed;
    total.deadGatesRemoved += round.deadGatesRemoved;
    if (!round.changed()) break;
  }
  return total;
}

Netlist compact(const Netlist& src) {
  Netlist dst(src.name());
  // A net survives if it is driven by a live gate or is a PI/PO.
  std::vector<NetId> map(src.numNets(), kNoNet);
  auto want = [&](NetId n) {
    if (map[n] == kNoNet) map[n] = dst.addNet(src.net(n).name);
    return map[n];
  };
  for (GateId g = 0; g < src.numGates(); ++g) {
    const Gate& gg = src.gate(g);
    if (isTombstone(gg)) continue;
    std::vector<NetId> fanin;
    fanin.reserve(gg.fanin.size());
    for (NetId in : gg.fanin) fanin.push_back(want(in));
    const GateId ng = dst.addGate(gg.kind, std::move(fanin), want(gg.out));
    dst.gate(ng).drive = gg.drive;
    dst.gate(ng).delayPs = gg.delayPs;
    dst.gate(ng).lutMask = gg.lutMask;
  }
  for (NetId n = 0; n < src.numNets(); ++n)
    if (map[n] != kNoNet) dst.net(map[n]).wireDelay = src.net(n).wireDelay;
  for (NetId pi : src.inputs())
    if (map[pi] != kNoNet) dst.registerPI(map[pi]);
  for (NetId po : src.outputs()) dst.appendPO(want(po));
  assert(!dst.validate().has_value());
  return dst;
}

}  // namespace gkll
