// Portable wide-sweep kernel — the always-present byte-identity reference.
#define GKLL_WIDE_NS widescalar
#include "netlist/packed_eval_kernel.inl"
