#include "netlist/packed_eval.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/telemetry.h"

namespace gkll {

// ---------------------------------------------------------------------------
// SIMD level selection

const char* simdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

bool simdLevelAvailable(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#if defined(GKLL_BUILD_AVX2) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if defined(GKLL_BUILD_AVX512) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

namespace {

bool parseSimdName(const char* s, SimdLevel& out) {
  const std::string name(s);
  if (name == "scalar") out = SimdLevel::kScalar;
  else if (name == "avx2") out = SimdLevel::kAvx2;
  else if (name == "avx512") out = SimdLevel::kAvx512;
  else return false;
  return true;
}

SimdLevel detectSimdLevel() {
  SimdLevel best = SimdLevel::kScalar;
  if (simdLevelAvailable(SimdLevel::kAvx2)) best = SimdLevel::kAvx2;
  if (simdLevelAvailable(SimdLevel::kAvx512)) best = SimdLevel::kAvx512;
  if (const char* env = std::getenv("GKLL_SIMD")) {
    SimdLevel want;
    if (parseSimdName(env, want)) {
      // An explicit request caps the level; fall back to the best level at
      // or below it that this build + CPU can actually run.
      while (static_cast<int>(want) > 0 && !simdLevelAvailable(want))
        want = static_cast<SimdLevel>(static_cast<int>(want) - 1);
      best = want;
    }
  }
  return best;
}

}  // namespace

SimdLevel bestSimdLevel() {
  static const SimdLevel level = detectSimdLevel();
  return level;
}

// ---------------------------------------------------------------------------
// PackedLanes

void PackedLanes::reset(std::size_t signals, std::size_t words) {
  signals_ = signals;
  words_ = words;
  const std::size_t n = signals * words;
  v_.assign(n, 0);
  x_.assign(n, ~0ULL);
}

// ---------------------------------------------------------------------------
// Row-level wide cell (the withholding cone pass runs on this)

void evalWideCellRows(CellKind k, std::span<const PackedBits* const> ins,
                      PackedBits* out, std::size_t W, std::uint64_t lutMask) {
  PackedBits tmp[8];
  assert(ins.size() <= 8);
  for (std::size_t w = 0; w < W; ++w) {
    for (std::size_t i = 0; i < ins.size(); ++i) tmp[i] = ins[i][w];
    out[w] = evalPackedCell(
        k, std::span<const PackedBits>(tmp, ins.size()), lutMask);
  }
}

// ---------------------------------------------------------------------------
// WideEvaluator

WideEvaluator::WideEvaluator(const CompiledNetlist& cn, SimdLevel level)
    : cn_(&cn), level_(level) {
  if (!simdLevelAvailable(level_)) level_ = SimdLevel::kScalar;
  obs::Span span("sim.wide.compile");

  const Netlist& nl = cn.source();
  const std::size_t nNets = cn.numNets();
  slotOfNet_.assign(nNets, 0xFFFFFFFFu);
  std::uint32_t next = 0;
  const auto claim = [&](NetId n) {
    if (slotOfNet_[n] == 0xFFFFFFFFu) slotOfNet_[n] = next++;
    return slotOfNet_[n];
  };

  // Slot order: PIs, other sources (constants), flop Q pins, then comb
  // outputs level block by level block — so a gate's fanin rows were
  // written at most a few levels (slots) earlier and the sweep's working
  // set slides instead of scattering over NetId creation order.
  piSlot_.clear();
  for (NetId n : nl.inputs()) piSlot_.push_back(claim(n));
  for (GateId g : cn.sourceGates()) {
    if (cn.out(g) == kNoNet) continue;
    const std::uint32_t s = claim(cn.out(g));
    if (cn.kind(g) == CellKind::kConst0 || cn.kind(g) == CellKind::kConst1)
      constSlots_.emplace_back(s, cn.kind(g));
  }
  flopSlot_.clear();
  for (GateId f : cn.flops()) flopSlot_.push_back(claim(cn.out(f)));

  // Comb gates bucketed by output level (stable within a level, so the
  // existing topo order is preserved inside each block).
  const auto comb = cn.combGates();
  const int maxLevel = cn.maxLevel();
  std::vector<std::uint32_t> count(static_cast<std::size_t>(maxLevel) + 2, 0);
  for (GateId g : comb) ++count[static_cast<std::size_t>(cn.level(cn.out(g)))];
  plan_.blockOff.assign(static_cast<std::size_t>(maxLevel) + 2, 0);
  for (int l = 0; l <= maxLevel; ++l)
    plan_.blockOff[static_cast<std::size_t>(l) + 1] =
        plan_.blockOff[static_cast<std::size_t>(l)] +
        count[static_cast<std::size_t>(l)];
  std::vector<GateId> ordered(comb.size());
  {
    std::vector<std::uint32_t> cursor(
        plan_.blockOff.begin(), plan_.blockOff.end() - 1);
    for (GateId g : comb)
      ordered[cursor[static_cast<std::size_t>(cn.level(cn.out(g)))]++] = g;
  }

  // Claim output slots in sweep order, then any undriven stragglers (they
  // stay X), then build the flat fanin-slot table.
  for (GateId g : ordered) claim(cn.out(g));
  for (NetId n = 0; n < nNets; ++n)
    if (slotOfNet_[n] == 0xFFFFFFFFu) slotOfNet_[n] = next++;
  plan_.numSlots = next;

  plan_.kind.reserve(ordered.size());
  plan_.outSlot.reserve(ordered.size());
  plan_.insOff.reserve(ordered.size() + 1);
  plan_.insOff.push_back(0);
  for (GateId g : ordered) {
    plan_.kind.push_back(static_cast<std::uint8_t>(cn.kind(g)));
    plan_.outSlot.push_back(slotOfNet_[cn.out(g)]);
    for (NetId in : cn.fanin(g)) plan_.insSlot.push_back(slotOfNet_[in]);
    plan_.insOff.push_back(static_cast<std::uint32_t>(plan_.insSlot.size()));
    if (cn.kind(g) == CellKind::kLut) plan_.lutMasks.push_back(cn.lutMask(g));
  }
}

void WideEvaluator::eval(const PackedLanes& inputs, const PackedLanes& ffState,
                         Buffer& buf) const {
  std::size_t W = inputs.words();
  if (W == 0) W = ffState.words();
  if (W == 0) W = 1;
  assert(inputs.signals() == 0 || inputs.words() == W);
  assert(ffState.signals() == 0 || ffState.words() == W);

  buf.slots_.reset(plan_.numSlots, W);  // everything X

  for (const auto& [slot, kind] : constSlots_) {
    const std::uint64_t fill = kind == CellKind::kConst1 ? ~0ULL : 0ULL;
    std::uint64_t* sv = buf.slots_.v(slot);
    std::uint64_t* sx = buf.slots_.x(slot);
    for (std::size_t w = 0; w < W; ++w) {
      sv[w] = fill;
      sx[w] = 0;
    }
  }
  const std::size_t nPi = std::min(inputs.signals(), piSlot_.size());
  for (std::size_t i = 0; i < nPi; ++i) {
    std::memcpy(buf.slots_.v(piSlot_[i]), inputs.v(i), W * sizeof(std::uint64_t));
    std::memcpy(buf.slots_.x(piSlot_[i]), inputs.x(i), W * sizeof(std::uint64_t));
  }
  const std::size_t nFf = std::min(ffState.signals(), flopSlot_.size());
  for (std::size_t i = 0; i < nFf; ++i) {
    std::memcpy(buf.slots_.v(flopSlot_[i]), ffState.v(i),
                W * sizeof(std::uint64_t));
    std::memcpy(buf.slots_.x(flopSlot_[i]), ffState.x(i),
                W * sizeof(std::uint64_t));
  }

  switch (level_) {
#ifdef GKLL_BUILD_AVX512
    case SimdLevel::kAvx512:
      detail::wideavx512::evalCombSweep(plan_, buf.slots_.vData(),
                                        buf.slots_.xData(), W);
      break;
#endif
#ifdef GKLL_BUILD_AVX2
    case SimdLevel::kAvx2:
      detail::wideavx2::evalCombSweep(plan_, buf.slots_.vData(),
                                      buf.slots_.xData(), W);
      break;
#endif
    default:
      detail::widescalar::evalCombSweep(plan_, buf.slots_.vData(),
                                        buf.slots_.xData(), W);
      break;
  }
  obs::count("sim.wide.evals");
}

std::vector<PackedBits> WideEvaluator::outputWords(const Buffer& buf,
                                                   std::size_t w) const {
  std::vector<PackedBits> out;
  out.reserve(cn_->source().outputs().size());
  for (NetId n : cn_->source().outputs()) out.push_back(netWord(buf, n, w));
  return out;
}

}  // namespace gkll
