#include "netlist/cell_library.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace gkll {
namespace {

struct KindMeta {
  const char* name;
  int numInputs;
};

// Order must match CellKind.
constexpr KindMeta kMeta[kNumCellKinds] = {
    {"INPUT", 0}, {"CONST0", 0}, {"CONST1", 0}, {"BUF", 1},   {"INV", 1},
    {"AND2", 2},  {"AND3", 3},   {"AND4", 4},   {"NAND2", 2}, {"NAND3", 3},
    {"NAND4", 4}, {"OR2", 2},    {"OR3", 3},    {"OR4", 4},   {"NOR2", 2},
    {"NOR3", 3},  {"NOR4", 4},   {"XOR2", 2},   {"XNOR2", 2}, {"MUX2", 3},
    {"AOI21", 3}, {"OAI21", 3},  {"DFF", 1},    {"DELAY", 1}, {"LUT", -1},
};

}  // namespace

namespace detail {

Logic evalLutWithX(std::span<const Logic> ins, std::uint64_t lutMask) {
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (ins[i] != Logic::X) continue;
    // Known output only if the two cofactors agree for every X input;
    // conservatively recurse on the first X input.
    std::vector<Logic> lo(ins.begin(), ins.end());
    std::vector<Logic> hi(ins.begin(), ins.end());
    lo[i] = Logic::F;
    hi[i] = Logic::T;
    const Logic a = evalCell(CellKind::kLut, lo, lutMask);
    const Logic b = evalCell(CellKind::kLut, hi, lutMask);
    return a == b ? a : Logic::X;
  }
  std::uint64_t idx = 0;
  for (std::size_t i = 0; i < ins.size(); ++i)
    if (ins[i] == Logic::T) idx |= (1ULL << i);
  return logicFromBool((lutMask >> idx) & 1ULL);
}

}  // namespace detail

int cellNumInputs(CellKind k) { return kMeta[static_cast<int>(k)].numInputs; }

const char* cellKindName(CellKind k) { return kMeta[static_cast<int>(k)].name; }

bool cellKindFromName(const std::string& name, CellKind& out) {
  for (int i = 0; i < kNumCellKinds; ++i) {
    if (name == kMeta[i].name) {
      out = static_cast<CellKind>(i);
      return true;
    }
  }
  // Accept the classic .bench spellings as aliases.
  if (name == "NOT") { out = CellKind::kInv; return true; }
  if (name == "BUFF") { out = CellKind::kBuf; return true; }
  if (name == "AND") { out = CellKind::kAnd2; return true; }
  if (name == "OR") { out = CellKind::kOr2; return true; }
  if (name == "NAND") { out = CellKind::kNand2; return true; }
  if (name == "NOR") { out = CellKind::kNor2; return true; }
  if (name == "XOR") { out = CellKind::kXor2; return true; }
  if (name == "XNOR") { out = CellKind::kXnor2; return true; }
  if (name == "MUX") { out = CellKind::kMux2; return true; }
  return false;
}

bool isSequential(CellKind k) { return k == CellKind::kDff; }

bool isSourceKind(CellKind k) {
  return k == CellKind::kInput || k == CellKind::kConst0 ||
         k == CellKind::kConst1;
}

bool isUnaryKind(CellKind k) {
  return k == CellKind::kBuf || k == CellKind::kInv || k == CellKind::kDelay;
}


CellLibrary::CellLibrary() {
  auto set = [&](CellKind k, double areaUm2, Ps rise, Ps fall) {
    cells_[static_cast<int>(k)] = CellInfo{um2(areaUm2), rise, fall};
  };
  // Synthetic 0.13um-class values: X1 inverter ~5.1 um^2 and ~35 ps;
  // everything else scaled with typical SAGE-X ratios.
  set(CellKind::kInput, 0.0, 0, 0);
  set(CellKind::kConst0, 0.0, 0, 0);
  set(CellKind::kConst1, 0.0, 0, 0);
  set(CellKind::kBuf, 6.4, 65, 60);
  set(CellKind::kInv, 5.1, 38, 30);
  set(CellKind::kAnd2, 7.7, 60, 55);
  set(CellKind::kAnd3, 10.2, 72, 65);
  set(CellKind::kAnd4, 12.8, 85, 75);
  set(CellKind::kNand2, 6.4, 45, 38);
  set(CellKind::kNand3, 9.0, 55, 48);
  set(CellKind::kNand4, 11.5, 68, 58);
  set(CellKind::kOr2, 7.7, 66, 60);
  set(CellKind::kOr3, 10.2, 80, 70);
  set(CellKind::kOr4, 12.8, 95, 82);
  set(CellKind::kNor2, 6.4, 52, 42);
  set(CellKind::kNor3, 9.0, 70, 55);
  set(CellKind::kNor4, 11.5, 85, 65);
  set(CellKind::kXor2, 11.5, 85, 80);
  set(CellKind::kXnor2, 11.5, 88, 82);
  set(CellKind::kMux2, 11.5, 80, 75);
  set(CellKind::kAoi21, 9.0, 58, 50);
  set(CellKind::kOai21, 9.0, 60, 52);
  set(CellKind::kDff, 25.6, 120, 120);  // delay = clock-to-Q
  set(CellKind::kDelay, 0.0, 0, 0);     // ideal until mapped by synthesis
  set(CellKind::kLut, 16.0, 95, 90);    // base; area scaled by lutArea()

  bufDrive_[0] = cells_[static_cast<int>(CellKind::kBuf)];
  bufDrive_[1] = CellInfo{um2(7.7), 52, 48};
  bufDrive_[2] = CellInfo{um2(12.8), 45, 42};
  dlyDrive_[0] = CellInfo{um2(9.0), 180, 180};    // DLY1
  dlyDrive_[1] = CellInfo{um2(12.8), 360, 360};   // DLY2
  dlyDrive_[2] = CellInfo{um2(16.6), 720, 720};   // DLY4
  dlyDrive_[3] = CellInfo{um2(20.5), 1440, 1440}; // DLY8
  invDrive_[0] = cells_[static_cast<int>(CellKind::kInv)];
  invDrive_[1] = CellInfo{um2(6.4), 30, 24};
  invDrive_[2] = CellInfo{um2(10.2), 24, 20};

  setup_ = 90;
  hold_ = 25;
  clkToQ_ = 120;
}

const CellLibrary& CellLibrary::tsmc013c() {
  static const CellLibrary lib;
  return lib;
}

CellLibrary CellLibrary::withFlopTiming(Ps setup, Ps hold, Ps clkToQ) {
  CellLibrary lib;
  lib.setup_ = setup;
  lib.hold_ = hold;
  lib.clkToQ_ = clkToQ;
  return lib;
}

CellInfo CellLibrary::info(CellKind k, int drive) const {
  if (drive != 1 && (k == CellKind::kBuf || k == CellKind::kInv)) {
    const CellInfo* table = (k == CellKind::kBuf) ? bufDrive_ : invDrive_;
    if (drive == 2) return table[1];
    if (drive == 4) return table[2];
    if (k == CellKind::kBuf) {
      if (drive == 8) return dlyDrive_[0];
      if (drive == 16) return dlyDrive_[1];
      if (drive == 32) return dlyDrive_[2];
      if (drive == 64) return dlyDrive_[3];
    }
  }
  return cells_[static_cast<int>(k)];
}

Ps CellLibrary::maxDelay(CellKind k, int drive) const {
  const CellInfo ci = info(k, drive);
  return ci.rise > ci.fall ? ci.rise : ci.fall;
}

CentiUm2 CellLibrary::lutArea(int numInputs) const {
  assert(numInputs >= 1 && numInputs <= 6);
  // Storage grows as 2^n on top of a fixed decoder cost.
  return um2(8.0) + um2(2.0) * (CentiUm2{1} << numInputs);
}

}  // namespace gkll
