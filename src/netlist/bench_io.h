// ISCAS-89 ".bench" format reader/writer, with three extensions needed by
// this library:
//   - `y = DELAY(x, 2500)`        ideal delay element, value in picoseconds
//   - `y = MUX(s, a, b)`          2:1 multiplexer, out = s ? b : a
//   - `y = LUT(0x8, a, b, c)`     withheld truth-table cell (hex mask)
//   - `y = CONST0()` / `CONST1()` constant drivers
// Classic gate names (NOT, BUFF, AND, OR, NAND, NOR, XOR, XNOR) are
// accepted with any fanin count of 2..4 for the n-ary kinds.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "netlist/netlist.h"

namespace gkll {

/// Parse result: either a netlist or a diagnostic with a line number.
struct BenchParseResult {
  bool ok = false;
  Netlist netlist;
  std::string error;  ///< human-readable, includes line number
  int errorLine = 0;  ///< 1-based line of the failure; 0 when not line-bound
};

/// Typed parse failure for untrusted inputs (the service daemon's upload
/// path).  Carries the 1-based source line (0 when the failure is not tied
/// to one line, e.g. an unreadable file).  parseBench never asserts or
/// aborts on malformed text — every syntactic or structural defect becomes
/// either a false BenchParseResult or, via parseBenchOrThrow, this
/// exception.
class BenchParseError : public std::runtime_error {
 public:
  BenchParseError(int line, const std::string& msg)
      : std::runtime_error(msg), line_(line) {}
  int line() const { return line_; }

 private:
  int line_ = 0;
};

/// Parse a netlist from a .bench stream — the primary entry point: lines
/// are consumed as they are read, so a million-gate file is never
/// materialised as one string (the peak transient is the pending-gate
/// table, a constant factor of the netlist's own name storage).
BenchParseResult parseBench(std::istream& in, std::string name = {});

/// Parse a netlist from .bench text (wraps the stream overload).
BenchParseResult parseBench(const std::string& text, std::string name = {});

/// Parse, throwing BenchParseError on malformed input.  The exception-
/// flavoured entry point for callers that feed untrusted text (client
/// uploads) into code that must never abort.
Netlist parseBenchOrThrow(const std::string& text, std::string name = {});

/// Parse a netlist from a .bench file on disk (streams; the file is never
/// read into memory whole).
BenchParseResult parseBenchFile(const std::string& path);

/// Serialise to a .bench stream (round-trips through parseBench) without
/// building the text in memory.
void writeBench(const Netlist& nl, std::ostream& out);

/// Serialise to .bench text (wraps the stream overload).
std::string writeBench(const Netlist& nl);

/// Write to a file; returns false on I/O failure.  Streams gate by gate.
bool writeBenchFile(const Netlist& nl, const std::string& path);

}  // namespace gkll
