// Structural operations on netlists used by the attacks and the flow:
// sequential-to-combinational conversion (FFs become pseudo PIs/POs, the
// standard pre-processing step of the SAT attack in Sec. VI), logic cones,
// levelisation and deep-copy with net mapping.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace gkll {

namespace runtime {
class ThreadPool;
}

/// Result of extracting the combinational core of a sequential circuit.
struct CombExtraction {
  Netlist netlist;  ///< purely combinational circuit
  /// Pseudo primary inputs (one per FF, the former Q nets), in the order of
  /// the original netlist's flops() list.
  std::vector<NetId> pseudoPIs;
  /// Pseudo primary outputs (one per FF, the former D nets), same order.
  std::vector<NetId> pseudoPOs;
  /// Old-net -> new-net mapping (e.g. to relocate key-input nets).
  std::vector<NetId> netMap;
};

/// Convert a sequential netlist into its combinational core by treating
/// "the inputs and outputs of FFs as pseudo primary outputs and inputs"
/// (paper Sec. VI).  Ideal kDelay elements are collapsed to buffers since
/// they are functionally transparent.
CombExtraction extractCombinational(const Netlist& seq);

/// Deep copy of a netlist; `netMap[oldNetId] == newNetId` on return.
Netlist cloneNetlist(const Netlist& src, std::vector<NetId>& netMap);

/// Full structural equality over exactly the features Netlist::contentHash
/// folds: name, nets (names + wire delays), gates (kind, drive, pins,
/// delay, LUT mask, tombstones), and PI/PO/FF order.  Two netlists that
/// compare equal are interchangeable for every consumer in this tree; the
/// content-addressed service store uses this to verify a hash hit before
/// reusing cached sessions (hash collisions must never alias designs).
bool structurallyEqual(const Netlist& a, const Netlist& b);

/// Combinational level of every net: sources/DFF outputs are level 0,
/// every gate output is 1 + max(level of fanins).
std::vector<int> levelize(const Netlist& nl);

/// Transitive fanin cone of a net (gate ids), up to sources/DFF outputs.
std::vector<GateId> faninCone(const Netlist& nl, NetId target);

/// The set of primary outputs structurally reachable from each FF's Q pin.
/// Used by the Karmakar-style FF grouping [4]: FFs that fan out to the same
/// PO set resist scan-based localisation better.  Result is one sorted PO
/// index list per flop, in flops() order.
///
/// `pool` parallelises the reachability propagation across nets of equal
/// backward depth (null = serial).  Each net's set is written only by its
/// own task and canonicalised by sort+unique, so the result is independent
/// of the pool — byte-identical serial vs parallel.
std::vector<std::vector<std::uint32_t>> poFanoutSignatures(
    const Netlist& nl, runtime::ThreadPool* pool = nullptr);

}  // namespace gkll
