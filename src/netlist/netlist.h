// Gate-level netlist representation.
//
// A Netlist is a set of nets and gates.  Every net has at most one driver
// gate; primary inputs are modelled as kInput gates.  Sequential elements
// are kDff gates clocked by a single implicit global clock (all the
// circuits the paper evaluates are single-clock).  Storage is index-based
// (dense vectors, 32-bit ids) for cache-friendly traversal of the
// 50k-gate benchmarks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/cell_library.h"
#include "util/time_types.h"

namespace gkll {

using NetId = std::uint32_t;
using GateId = std::uint32_t;

inline constexpr NetId kNoNet = 0xFFFFFFFFu;
inline constexpr GateId kNoGate = 0xFFFFFFFFu;

/// One cell instance.
struct Gate {
  CellKind kind = CellKind::kBuf;
  std::uint8_t drive = 1;  ///< drive strength (1/2/4); only Buf/Inv vary
  std::vector<NetId> fanin;
  NetId out = kNoNet;
  Ps delayPs = 0;           ///< only for kDelay: the ideal delay value
  std::uint64_t lutMask = 0;  ///< only for kLut: truth table, bit i = f(i)
};

/// One wire.
struct Net {
  std::string name;
  GateId driver = kNoGate;
  std::vector<GateId> fanouts;  ///< gates reading this net
  Ps wireDelay = 0;             ///< annotated by P&R; added to sink delays
};

/// Aggregate size/area statistics (Tables I/II report these).
struct NetlistStats {
  std::size_t numCells = 0;  ///< all gates except kInput/kConst*
  std::size_t numFFs = 0;
  std::size_t numPIs = 0;
  std::size_t numPOs = 0;
  CentiUm2 area = 0;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void setName(std::string n) { name_ = std::move(n); }

  // --- construction ------------------------------------------------------

  /// Create a new net.  Names must be unique; empty name auto-generates one.
  NetId addNet(std::string name = {});

  /// Create a gate driving `out` (which must not already have a driver).
  GateId addGate(CellKind kind, std::vector<NetId> fanin, NetId out);

  /// Create a net + kInput gate and register it as a primary input.
  NetId addPI(std::string name);

  /// Register an existing net (already driven by a kInput gate) as a
  /// primary input.  Used when cloning / converting netlists, where gates
  /// are recreated individually and the PI order must be controlled.
  void registerPI(NetId n);

  /// Remove a net from the PI list (the caller re-drives it, e.g. with a
  /// constant when fixing a key bit).
  void unregisterPI(NetId n);

  /// Mark an existing net as a primary output (no-op if already one).
  void markPO(NetId n);

  /// Append a primary-output slot even when the net is already listed —
  /// used for the pseudo POs of combinational extraction, where output
  /// *positions* must align 1:1 across circuits being compared even if a
  /// flop's D net doubles as a real PO.
  void appendPO(NetId n) { pos_.push_back(n); }

  /// Remove a net from the PO list (used when re-wiring during locking).
  void unmarkPO(NetId n);

  /// Create a constant-0 / constant-1 net on demand (cached).
  NetId constNet(bool value);

  /// Create an ideal delay element: out = in delayed by `d`.
  GateId addDelay(NetId in, NetId out, Ps d);

  /// Create a LUT gate with an explicit truth table.
  GateId addLut(std::vector<NetId> fanin, NetId out, std::uint64_t mask);

  /// Re-route: every reader of `oldNet` (and the PO marking, if any) now
  /// reads `newNet` instead.  The driver of `oldNet` is untouched, so the
  /// caller can insert logic between the two (the standard key-gate
  /// insertion primitive).
  void rewireReaders(NetId oldNet, NetId newNet);

  /// Replace one fanin pin of a gate.
  void replaceFanin(GateId g, NetId oldNet, NetId newNet);

  /// Delete a gate, leaving its output net driverless (used by removal
  /// attacks).  Fanout bookkeeping is updated.
  void removeGate(GateId g);

  /// Append a tombstone slot — the neutral shape removeGate leaves behind
  /// (no output, no fanins).  Deserialisers use this to reproduce a
  /// netlist that had gates removed, so GateIds and contentHash survive a
  /// round trip through external storage.
  GateId addTombstone();

  /// Re-bind the constNet() cache to existing "_const0"/"_const1" nets.
  /// Deserialisers recreate nets by name without going through constNet(),
  /// leaving the cache cold; without this, a later constNet() call would
  /// try to addNet a duplicate "_const0".  Safe to call on any netlist.
  void rebindConstCache();

  // --- access -------------------------------------------------------------

  std::size_t numNets() const { return nets_.size(); }
  std::size_t numGates() const { return gates_.size(); }
  const Net& net(NetId n) const { return nets_[n]; }
  Net& net(NetId n) { return nets_[n]; }
  const Gate& gate(GateId g) const { return gates_[g]; }
  Gate& gate(GateId g) { return gates_[g]; }

  const std::vector<NetId>& inputs() const { return pis_; }
  const std::vector<NetId>& outputs() const { return pos_; }
  const std::vector<GateId>& flops() const { return ffs_; }

  bool isPO(NetId n) const;

  /// Find a net by name.
  std::optional<NetId> findNet(const std::string& name) const;

  /// Gates in topological order: sources first, then combinational gates in
  /// dependency order; DFF outputs count as sources (their Q breaks cycles).
  /// Fails (returns empty) if a combinational cycle exists.  One-shot
  /// convenience wrapper over CompiledNetlist — hot paths should compile
  /// the netlist once and keep the view instead.
  std::vector<GateId> topoOrder() const;

  /// Structural validation: every net driven exactly once, every gate pin
  /// count matches its kind, no multiply-driven nets, no combinational
  /// cycles (the latter two delegated to the CompiledNetlist builder, which
  /// names the offending net).  Returns an error description, or nullopt
  /// when the netlist is well-formed.
  std::optional<std::string> validate() const;

  /// Size and area statistics against the given library.
  NetlistStats stats(const CellLibrary& lib = CellLibrary::tsmc013c()) const;

  /// Structural content hash (FNV-1a over gates, connectivity, PI/PO/FF
  /// order and net names).  Stable across process runs for the same
  /// netlist; any resynthesis, relock or rename changes it.  The run
  /// journal stamps this into its header so a replayed journal can be
  /// matched to the design it came from.
  std::uint64_t contentHash() const;

 private:
  std::string name_;
  std::vector<Net> nets_;
  std::vector<Gate> gates_;
  std::vector<NetId> pis_;
  std::vector<NetId> pos_;
  std::vector<GateId> ffs_;
  std::unordered_map<std::string, NetId> byName_;
  NetId const0_ = kNoNet;
  NetId const1_ = kNoNet;
  std::uint32_t autoName_ = 0;
};

}  // namespace gkll
