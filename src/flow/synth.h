// Synthesis substitute (the Design Compiler role in the paper's flow).
//
// The one synthesis capability the GK flow actually needs from DC is
// mapping *ideal delay elements* onto chains of real library cells under
// a min-delay design constraint (paper Sec. IV-B: "Design Compiler maps
// delay elements from the library for satisfying the constraints").  We
// compose chains from inverter *pairs* (drive X1/X2/X4), which are
// symmetric in rise/fall, plus at most one buffer for fine adjustment.
// Exactly as the paper observes (Sec. VI reasons 1-3), these chains cost
// many more cells than the GK logic itself and dominate the area
// overhead of Table II.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace gkll {

/// Outcome of mapping one ideal delay element.
struct DelayChain {
  GateId sourceDelay = kNoGate;  ///< the replaced kDelay gate
  std::vector<GateId> cells;     ///< inserted BUF/INV cells (may be empty)
  Ps target = 0;
  Ps achievedRise = 0;  ///< chain delay for a rising input transition
  Ps achievedFall = 0;
};

/// Aggregate report of a mapping pass.
struct SynthReport {
  std::vector<DelayChain> chains;
  int cellsAdded = 0;
  CentiUm2 areaAdded = 0;
  Ps worstError = 0;  ///< max |achieved - target| over both edges
};

/// Plan a delay chain for `target` ps without touching the netlist:
/// returns the cell sequence as (kind, drive) pairs.
struct ChainPlan {
  std::vector<std::pair<CellKind, int>> cells;
  Ps rise = 0;
  Ps fall = 0;
};
ChainPlan planDelayChain(Ps target,
                         const CellLibrary& lib = CellLibrary::tsmc013c());

/// Replace every ideal kDelay gate in the netlist with a mapped chain.
/// Gates with delayPs == 0 become plain buffers.  The netlist remains
/// valid; GateIds of pre-existing gates are unchanged.
SynthReport mapDelayElements(Netlist& nl,
                             const CellLibrary& lib = CellLibrary::tsmc013c());

}  // namespace gkll
