#include "flow/placement.h"

#include <algorithm>

#include "obs/telemetry.h"
#include "util/rng.h"

namespace gkll {

PlacementResult placeAndRoute(Netlist& nl, const PlacementOptions& opt) {
  PlacementResult res;
  obs::Span span("flow.pnr");
  span.arg("nets", nl.numNets());
  obs::count("flow.pnr.runs");
  Rng rng(opt.seed);

  for (NetId n = 0; n < nl.numNets(); ++n) {
    Net& net = nl.net(n);
    if (net.driver == kNoGate) continue;
    const CellKind k = nl.gate(net.driver).kind;
    if (isSourceKind(k) || k == CellKind::kDelay) {
      net.wireDelay = 0;
      continue;
    }
    const Ps fanout = static_cast<Ps>(net.fanouts.size());
    const Ps extra = fanout > 1 ? (fanout - 1) * opt.wireDelayPerFanout : 0;
    const Ps jitter =
        opt.wireJitter > 0 ? static_cast<Ps>(rng.below(
                                 static_cast<std::uint64_t>(opt.wireJitter) + 1))
                           : 0;
    net.wireDelay = opt.baseWireDelay + extra + jitter;
    res.maxWireDelay = std::max(res.maxWireDelay, net.wireDelay);
  }

  res.clockArrival.reserve(nl.flops().size());
  for (std::size_t i = 0; i < nl.flops().size(); ++i) {
    const Ps skew =
        opt.maxClockSkew > 0
            ? static_cast<Ps>(rng.below(
                  static_cast<std::uint64_t>(opt.maxClockSkew) + 1))
            : 0;
    res.clockArrival.push_back(skew);
  }
  return res;
}

}  // namespace gkll
