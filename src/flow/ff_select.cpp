#include "flow/ff_select.h"

#include <algorithm>
#include <map>

#include "lock/glitch_keygate.h"
#include "netlist/netlist_ops.h"
#include "obs/telemetry.h"
#include "runtime/parallel.h"

namespace gkll {

std::vector<FfCandidate> analyzeFlops(const Netlist& nl, const Sta& sta,
                                      const GkTiming& gk,
                                      const FfSelectOptions& opt) {
  const StaResult timing = sta.run();
  return analyzeFlops(nl, sta, timing, gk, opt, /*pool=*/nullptr);
}

std::vector<FfCandidate> analyzeFlops(const Netlist& nl, const Sta& sta,
                                      const StaResult& timing,
                                      const GkTiming& gk,
                                      const FfSelectOptions& opt,
                                      runtime::ThreadPool* pool) {
  obs::Span span("flow.ff_select.analyze");
  span.arg("flops", static_cast<std::int64_t>(nl.flops().size()));
  span.arg("parallel", pool != nullptr ? 1 : 0);
  std::vector<FfCandidate> out(nl.flops().size());

  auto analyzeOne = [&](std::size_t i) {
    const GateId ff = nl.flops()[i];
    const Gate& gate = nl.gate(ff);
    FfCandidate c;
    c.ff = ff;
    c.tArrival = timing.maxArrival[gate.fanin[0]];
    c.absLB = sta.absLowerBound(ff);
    c.absUB = sta.absUpperBound(ff);
    c.tCapture = sta.clockArrival(ff) + sta.clockPeriod();

    // The KEYGEN can realise any trigger time >= the zero-tap trigger.
    const Ps earliestTrigger = keygenEarliestTrigger(sta.library());

    // Eq. (5) with margins; both key-transition directions must work
    // because the toggle-flop KEYGEN alternates rising/falling triggers.
    TriggerWindow on = triggerWindowOnGlitch(c.tArrival, gk, /*risingKey=*/true,
                                             c.tCapture,
                                             sta.library().holdTime(), c.absUB);
    const TriggerWindow onF = triggerWindowOnGlitch(
        c.tArrival, gk, /*risingKey=*/false, c.tCapture,
        sta.library().holdTime(), c.absUB);
    on.lo = std::max(on.lo, onF.lo);
    on.hi = std::min(on.hi, onF.hi);
    on.lo = std::max(on.lo + opt.margin, earliestTrigger);
    on.hi -= opt.margin;
    c.onGlitch = on;

    TriggerWindow off =
        triggerWindowOffGlitch(gk, /*risingKey=*/true, c.absLB, c.absUB);
    const TriggerWindow offF =
        triggerWindowOffGlitch(gk, /*risingKey=*/false, c.absLB, c.absUB);
    off.lo = std::max(off.lo, offF.lo);
    off.hi = std::min(off.hi, offF.hi);
    off.lo = std::max(off.lo + opt.margin, earliestTrigger);
    off.hi -= opt.margin;
    c.offGlitch = off;

    // Coverage uses the *physical* glitch length (the path delay alone):
    // with symmetric MUX select/data delays the simulated glitch lasts
    // D_Path, so Eq. (2)'s D_Path + D_MUX would be optimistic here.
    const bool coverable =
        glitchCoversWindow(std::min(gk.dPathA, gk.dPathB) - opt.margin / 2,
                           sta.library().setupTime(), sta.library().holdTime());
    c.available = coverable && c.onGlitch.valid() &&
                  feasibleOnGlitch(c.tArrival, gk, true, c.absLB, c.absUB) &&
                  feasibleOnGlitch(c.tArrival, gk, false, c.absLB, c.absUB);
    out[i] = c;
  };

  // Null pool means SERIAL here (not the global pool): single-threaded
  // callers — CI baselines, the determinism tests — must not silently
  // fan out.  Each index writes only its own preallocated slot, so both
  // paths produce identical bytes.
  if (pool == nullptr) {
    for (std::size_t i = 0; i < out.size(); ++i) analyzeOne(i);
  } else {
    runtime::ParallelOptions po;
    po.pool = pool;
    po.grain = 16;
    runtime::parallelFor(out.size(), analyzeOne, po);
  }
  return out;
}

std::size_t countAvailable(const std::vector<FfCandidate>& cands) {
  std::size_t n = 0;
  for (const FfCandidate& c : cands) n += c.available ? 1 : 0;
  return n;
}

std::vector<GateId> karmakarGroup(const Netlist& nl,
                                  const std::vector<FfCandidate>& cands,
                                  runtime::ThreadPool* pool) {
  const auto sigs = poFanoutSignatures(nl, pool);
  // Group the *available* flops by identical PO signature.
  std::map<std::vector<std::uint32_t>, std::vector<GateId>> groups;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (!cands[i].available) continue;
    groups[sigs[i]].push_back(cands[i].ff);
  }
  std::vector<GateId> best;
  for (const auto& [sig, ffs] : groups) {
    // Flops driving no PO at all form a degenerate "group"; the scan-attack
    // defence of [4] needs a shared non-empty PO set.
    if (sig.empty()) continue;
    if (ffs.size() > best.size()) best = ffs;
  }
  return best;
}

}  // namespace gkll
