// Placement & routing substitute (the IC Compiler role).
//
// The paper's flow needs P&R for exactly two artefacts: post-layout wire
// delays and clock-tree skew between flops.  We model wire delay as a
// fanout-dependent per-net annotation and clock skew as a bounded
// deterministic per-flop offset, both derived from a seeded hash so that
// re-running the flow reproduces the identical "layout".  The default
// skew bound (80 ps) is kept below clkToQ - Thold - minWire so a plain
// Q->D path can never hold-violate, mirroring a hold-fixed real layout.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace gkll {

struct PlacementOptions {
  std::uint64_t seed = 7;
  Ps baseWireDelay = 8;       ///< every routed net
  Ps wireDelayPerFanout = 12; ///< extra per additional sink
  Ps wireJitter = 10;         ///< uniform extra in [0, jitter]
  Ps maxClockSkew = 80;       ///< per-flop clock arrival in [0, maxClockSkew]
};

struct PlacementResult {
  /// Clock arrival per flop, aligned with netlist.flops().
  std::vector<Ps> clockArrival;
  Ps maxWireDelay = 0;
};

/// Annotate wire delays onto the netlist (in place) and compute clock
/// arrivals.  Nets driven by kInput/kConst and kDelay outputs get zero
/// wire delay (delay elements already model their wire budget).
PlacementResult placeAndRoute(Netlist& nl, const PlacementOptions& opt);

/// Clock arrival for flops added *after* P&R (e.g. KEYGEN flops): the GK
/// flow places them next to their GK, on the trunk of the clock tree
/// (zero skew).
inline constexpr Ps kPostPlacementClockArrival = 0;

}  // namespace gkll
