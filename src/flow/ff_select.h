// Feasible-flop analysis (Table I) and Karmakar-style grouping [4].
//
// A flop is *available* for GK encryption (paper Sec. VI: on-glitch
// transmission with a fixed glitch length, the strictest scenario) when
// the timing budget around its D pin admits the whole Eq. (3)/(5)
// machinery: the data must settle, the glitch must be generated, start
// before the setup deadline and outlast the hold window — all within the
// original clock period.
#pragma once

#include <vector>

#include "timing/gk_constraints.h"
#include "timing/sta.h"

namespace gkll {

namespace runtime {
class ThreadPool;
}

struct FfSelectOptions {
  Ps glitchLen = ns(1);  ///< simulated glitch length target (paper: 1 ns)
  Ps margin = 150;       ///< safety margin on every window check
};

/// Per-flop feasibility record.
struct FfCandidate {
  GateId ff = kNoGate;
  Ps tArrival = 0;       ///< settle time of the D-pin data (max arrival)
  Ps absLB = 0;          ///< Eq. (1) lower bound, absolute frame
  Ps absUB = 0;          ///< Eq. (1) upper bound, absolute frame
  Ps tCapture = 0;       ///< T_j + Tclk
  TriggerWindow onGlitch;   ///< Eq. (5) window (after margin)
  TriggerWindow offGlitch;  ///< Eq. (6) window (after margin)
  bool available = false;   ///< on-glitch feasible (Table I criterion)
};

/// Analyse every flop.  `sta` must already carry the P&R clock arrivals.
/// Runs a fresh sta.run() internally.
std::vector<FfCandidate> analyzeFlops(const Netlist& nl, const Sta& sta,
                                      const GkTiming& gk,
                                      const FfSelectOptions& opt);

/// Same analysis on a precomputed StaResult (callers holding an
/// incremental timing session avoid the redundant full run).  `pool`
/// parallelises across flops (null = serial); each flop's record depends
/// only on its own slot of the timing arrays, so the result is
/// byte-identical to the serial loop.
std::vector<FfCandidate> analyzeFlops(const Netlist& nl, const Sta& sta,
                                      const StaResult& timing,
                                      const GkTiming& gk,
                                      const FfSelectOptions& opt,
                                      runtime::ThreadPool* pool);

/// Number of available flops.
std::size_t countAvailable(const std::vector<FfCandidate>& cands);

/// Karmakar et al. [4]: among the available flops, find the largest group
/// whose members fan out to the same set of primary outputs — encrypting
/// within one group resists scan-based localisation.  Returns the group's
/// flop ids (empty when no flop is available).  `pool` parallelises the
/// dominant PO-reachability propagation (null = serial); the result is
/// byte-identical either way — see poFanoutSignatures.
std::vector<GateId> karmakarGroup(const Netlist& nl,
                                  const std::vector<FfCandidate>& cands,
                                  runtime::ThreadPool* pool = nullptr);

}  // namespace gkll
