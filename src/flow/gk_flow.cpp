#include "flow/gk_flow.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "flow/synth.h"
#include "lock/xor_lock.h"
#include "netlist/netlist_ops.h"
#include "obs/journal.h"
#include "obs/telemetry.h"
#include "sim/event_sim.h"
#include "sim/logic_sim.h"
#include "timing/sta_incremental.h"
#include "util/rng.h"

namespace gkll {
namespace {

/// One full insertion attempt (everything except the repair loop).
GkFlowResult buildAttempt(const Netlist& original, const GkFlowOptions& opt,
                          const std::set<GateId>& bannedFfs, Rng& rng) {
  const CellLibrary& lib = CellLibrary::tsmc013c();
  GkFlowResult res;

  // --- P&R substitute ------------------------------------------------------
  std::vector<NetId> netMap;
  Netlist nl = cloneNetlist(original, netMap);
  nl.setName(original.name() + "_gk");
  const PlacementResult pr = placeAndRoute(nl, opt.placement);
  res.originalStats = nl.stats(lib);

  // --- clock period: keep the original design's period ---------------------
  StaConfig staCfg;
  staCfg.inputArrival = lib.clkToQ();
  staCfg.clockPeriod = opt.clockPeriod;
  Sta sta(nl, staCfg, lib);
  for (std::size_t i = 0; i < nl.flops().size(); ++i)
    sta.setClockArrival(nl.flops()[i], pr.clockArrival[i]);

  // One shared timing session feeds the period probe, the hybrid slack
  // filter and the dry-run host analysis: arrival times don't depend on
  // the clock period, so all three read the same propagation instead of
  // re-sweeping the design.  The first structural edit (xorLockInPlace)
  // ends the session's validity.
  obs::Span staSpan("flow.sta_probe");
  StaIncremental inc(sta);
  if (staCfg.clockPeriod == 0) {
    staCfg.clockPeriod = inc.minClockPeriod(100);
    sta.setClockPeriod(staCfg.clockPeriod);
    inc.setClockPeriod(staCfg.clockPeriod);
  }
  staSpan.end();
  res.clockPeriod = staCfg.clockPeriod;

  GkParams proto;
  proto.bufferVariant = opt.bufferVariant;
  // In variant (a) delay element A feeds the XNOR and B the XOR; variant
  // (b) swaps the gates.  Either way both physical path delays equal the
  // glitch target.
  proto.gkDelayA = opt.glitchLen - lib.maxDelay(opt.bufferVariant
                                                    ? CellKind::kXor2
                                                    : CellKind::kXnor2);
  proto.gkDelayB = opt.glitchLen - lib.maxDelay(opt.bufferVariant
                                                    ? CellKind::kXnor2
                                                    : CellKind::kXor2);
  const GkTiming gk = gkTiming(proto, lib);
  const FfSelectOptions selOpt{opt.glitchLen, opt.margin};

  // --- hybrid mode: conventional XOR/XNOR key gates first ------------------
  // The paper puts them "to the paths encrypted by GK", so the candidate
  // nets are biased to the fanin cones of the flops a dry-run host
  // selection would pick (using a copy of the RNG so the real selection
  // below replays the same choices), always slack-filtered so the
  // original clock period survives.
  std::vector<NetId> xorKeys;
  std::vector<int> xorKeyBits;
  if (opt.hybridXorKeys > 0) {
    obs::Span hybridSpan("flow.hybrid_xor");
    hybridSpan.arg("xor_keys", opt.hybridXorKeys);
    const StaResult& t0 = inc.result();
    const Ps xorCost = lib.maxDelay(CellKind::kXnor2) + opt.margin;
    std::vector<bool> slackOk(nl.numNets(), false);
    for (NetId n = 0; n < nl.numNets(); ++n) {
      const GateId d = nl.net(n).driver;
      if (d == kNoGate) continue;
      const CellKind k = nl.gate(d).kind;
      if (isSourceKind(k) || k == CellKind::kDff || k == CellKind::kDelay)
        continue;
      if (t0.requiredMax[n] == INT64_MAX) continue;
      if (t0.requiredMax[n] - t0.maxArrival[n] >= xorCost) slackOk[n] = true;
    }

    // Dry-run host selection.
    Rng preview = rng;
    const auto cands0 = analyzeFlops(nl, sta, t0, gk, selOpt, opt.pool);
    std::vector<GateId> group0 = karmakarGroup(nl, cands0, opt.pool);
    std::vector<GateId> others0;
    for (const FfCandidate& c : cands0) {
      if (!c.available) continue;
      if (std::find(group0.begin(), group0.end(), c.ff) != group0.end())
        continue;
      others0.push_back(c.ff);
    }
    preview.shuffle(group0);
    preview.shuffle(others0);
    group0.insert(group0.end(), others0.begin(), others0.end());

    std::vector<NetId> preferred;
    std::vector<bool> taken(nl.numNets(), false);
    int hosts0 = 0;
    for (GateId ff : group0) {
      if (bannedFfs.count(ff) != 0) continue;
      if (hosts0++ == opt.numGks) break;
      for (GateId g : faninCone(nl, nl.gate(ff).fanin[0])) {
        const NetId n = nl.gate(g).out;
        if (slackOk[n] && !taken[n]) {
          taken[n] = true;
          preferred.push_back(n);
        }
      }
    }
    // Shuffle within each tier (host cones first, then the rest) and keep
    // the tier order so key gates land on the GK paths first.
    rng.shuffle(preferred);
    std::vector<NetId> filler;
    for (NetId n = 0; n < nl.numNets(); ++n)
      if (slackOk[n] && !taken[n]) filler.push_back(n);
    rng.shuffle(filler);
    preferred.insert(preferred.end(), filler.begin(), filler.end());
    xorLockInPlace(nl, opt.hybridXorKeys, rng, xorKeys, xorKeyBits, "keyin_x",
                   std::move(preferred), /*shuffleCandidates=*/false);
  }

  // --- feasibility analysis (Table I) ---------------------------------------
  std::vector<FfCandidate> cands;
  std::vector<GateId> group;
  {
    obs::Span selSpan("flow.ff_select");
    if (opt.hybridXorKeys > 0) {
      // xorLockInPlace rewired nets — the shared session is stale; one
      // fresh full propagation covers the post-hybrid analysis.
      const StaResult timing = sta.run();
      cands = analyzeFlops(nl, sta, timing, gk, selOpt, opt.pool);
    } else {
      cands = analyzeFlops(nl, sta, inc.result(), gk, selOpt, opt.pool);
    }
    res.availableFfs = countAvailable(cands);
    group = karmakarGroup(nl, cands, opt.pool);
    res.karmakarFfs = group.size();
    selSpan.arg("available_ffs", static_cast<std::int64_t>(res.availableFfs));
    selSpan.arg("karmakar_ffs", static_cast<std::int64_t>(res.karmakarFfs));
    if (obs::journalEnabled()) {
      obs::journalRecord("flow.gk.ff_select")
          .i64("available_ffs", static_cast<std::int64_t>(res.availableFfs))
          .i64("karmakar_ffs", static_cast<std::int64_t>(res.karmakarFfs));
    }
  }

  // --- host selection: prefer the Karmakar group, then other available -----
  std::vector<GateId> others;
  for (const FfCandidate& c : cands) {
    if (!c.available) continue;
    if (std::find(group.begin(), group.end(), c.ff) != group.end()) continue;
    others.push_back(c.ff);
  }
  rng.shuffle(group);
  rng.shuffle(others);
  std::vector<GateId> order = group;
  order.insert(order.end(), others.begin(), others.end());

  std::vector<const FfCandidate*> byFf(nl.numGates(), nullptr);
  for (const FfCandidate& c : cands) byFf[c.ff] = &c;

  std::vector<GateId> hosts;
  for (GateId ff : order) {
    if (bannedFfs.count(ff) != 0) continue;
    hosts.push_back(ff);
    if (static_cast<int>(hosts.size()) == opt.numGks) break;
  }

  // --- GK + KEYGEN insertion ------------------------------------------------
  obs::Span insertSpan("flow.gk_insert");
  insertSpan.arg("hosts", static_cast<std::int64_t>(hosts.size()));
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const GateId ff = hosts[i];
    const FfCandidate& c = *byFf[ff];

    // Correct trigger: centre the glitch's coverage of the capture window.
    const Ps capture = c.tCapture;
    const Ps coverSlack = opt.glitchLen - lib.setupTime() - lib.holdTime();
    Ps trigStar = capture - lib.setupTime() - coverSlack / 2 - gk.react();
    trigStar = std::clamp(trigStar, c.onGlitch.lo + 1, c.onGlitch.hi - 1);

    // Wrong trigger: a glitch that misses the capture window entirely —
    // early (Eq. 6) when the cycle has room, else late (after the hold
    // edge), so the wrong key cleanly captures the inverted value.
    Ps trigWrong;
    if (c.offGlitch.valid()) {
      trigWrong = (c.offGlitch.lo + c.offGlitch.hi) / 2;
    } else {
      trigWrong = capture + lib.holdTime() + 2 * opt.margin - gk.react();
    }
    if (keygenTapForTrigger(trigWrong, lib) < 0)
      trigWrong = keygenEarliestTrigger(lib);

    GkParams p = proto;
    const Ps tapStar = keygenTapForTrigger(trigStar, lib);
    assert(tapStar >= 0);
    if (opt.bufferVariant) {
      // Variant (b): a constant key is correct (buffer); any transition
      // fires an inverter-level glitch, so *both* ADB taps are timed onto
      // the capture window to guarantee corruption.
      p.correct = rng.flip() ? GkBehavior::kConst1 : GkBehavior::kConst0;
      Ps trigStar2 = std::clamp(trigStar + opt.margin, c.onGlitch.lo + 1,
                                c.onGlitch.hi - 1);
      p.trigDelayA = tapStar;
      p.trigDelayB = std::max<Ps>(0, keygenTapForTrigger(trigStar2, lib));
    } else {
      const bool correctIsA = rng.flip();
      p.correct = correctIsA ? GkBehavior::kTrigA : GkBehavior::kTrigB;
      const Ps tapWrong = std::max<Ps>(0, keygenTapForTrigger(trigWrong, lib));
      p.trigDelayA = correctIsA ? tapStar : tapWrong;
      p.trigDelayB = correctIsA ? tapWrong : tapStar;
    }

    GkInsertion ins =
        insertGkAtFlop(nl, ff, p, "gk" + std::to_string(i));
    const auto [k1, k2] = keyBitsFor(p.correct);
    res.design.keyInputs.push_back(ins.keygen.k1);
    res.design.correctKey.push_back(k1);
    res.design.keyInputs.push_back(ins.keygen.k2);
    res.design.correctKey.push_back(k2);
    res.insertions.push_back(std::move(ins));
    res.lockedFfs.push_back(ff);
  }

  insertSpan.end();
  obs::count("flow.gk.inserted", hosts.size());
  if (obs::journalEnabled()) {
    obs::journalRecord("flow.gk.insert")
        .i64("hosts", static_cast<std::int64_t>(hosts.size()))
        .i64("key_bits", static_cast<std::int64_t>(res.design.keyInputs.size()))
        .i64("hybrid_xor_keys", static_cast<std::int64_t>(xorKeys.size()));
  }

  // Append the hybrid XOR keys after the GK keys.
  res.design.keyInputs.insert(res.design.keyInputs.end(), xorKeys.begin(),
                              xorKeys.end());
  res.design.correctKey.insert(res.design.correctKey.end(), xorKeyBits.begin(),
                               xorKeyBits.end());

  // --- re-synthesis: map ideal delay elements to cell chains ---------------
  if (opt.mapDelays) mapDelayElements(nl, lib);

  // --- clock arrivals for the final flop list (KEYGEN flops at trunk) ------
  res.clockArrival = pr.clockArrival;
  res.clockArrival.resize(nl.flops().size(), kPostPlacementClockArrival);

  // --- STA re-check: classify false vs true violations ---------------------
  {
    obs::Span recheckSpan("flow.sta_recheck");
    Sta recheck(nl, staCfg, lib);
    for (std::size_t i = 0; i < nl.flops().size(); ++i)
      recheck.setClockArrival(nl.flops()[i], res.clockArrival[i]);
    const StaResult t = recheck.run();
    for (std::size_t i = 0; i < nl.flops().size(); ++i) {
      if (t.setupSlack[i] >= 0) continue;
      const GateId ff = nl.flops()[i];
      const bool isGkHost =
          std::find(res.lockedFfs.begin(), res.lockedFfs.end(), ff) !=
          res.lockedFfs.end();
      if (isGkHost)
        ++res.falseViolations;  // deliberate delay: paper Sec. IV-B
      else
        ++res.trueViolations;
    }
    for (const Ps s : t.poSlack)
      if (s < 0) ++res.trueViolations;
  }

  res.design.netlist = std::move(nl);
  res.design.scheme = opt.hybridXorKeys > 0 ? "gk+xor" : "gk";

  // --- overheads -------------------------------------------------------------
  res.lockedStats = res.design.netlist.stats(lib);
  res.cellOverheadPct =
      100.0 *
      (static_cast<double>(res.lockedStats.numCells) -
       static_cast<double>(res.originalStats.numCells)) /
      static_cast<double>(res.originalStats.numCells);
  res.areaOverheadPct = 100.0 *
                        (toUm2(res.lockedStats.area) - toUm2(res.originalStats.area)) /
                        toUm2(res.originalStats.area);
  return res;
}

}  // namespace

GkFlowResult runGkFlow(const Netlist& original, const GkFlowOptions& opt) {
  obs::Span flowSpan("flow.gk");
  Rng rng(opt.seed);
  std::set<GateId> banned;
  GkFlowResult res;

  if (obs::journalEnabled()) {
    obs::journalRecord("flow.gk.start")
        .hex("netlist_hash", original.contentHash())
        .str("design", original.name())
        .i64("num_gks", opt.numGks)
        .i64("hybrid_xor_keys", opt.hybridXorKeys);
  }
  auto journalAttempt = [&](int round) {
    if (!obs::journalEnabled()) return;
    obs::journalRecord("flow.gk.attempt")
        .i64("round", round)
        .i64("inserted", static_cast<std::int64_t>(res.insertions.size()))
        .i64("true_violations", res.trueViolations)
        .i64("false_violations", res.falseViolations)
        .i64("po_mismatches", res.verify.poMismatches)
        .i64("state_mismatches", res.verify.stateMismatches)
        .f64("area_overhead_pct", res.areaOverheadPct);
  };

  for (int round = 0; round <= opt.maxRepairRounds; ++round) {
    obs::Span attemptSpan("flow.gk.attempt");
    attemptSpan.arg("round", round);
    obs::count("flow.gk.attempts");
    res = buildAttempt(original, opt, banned, rng);
    res.repairRounds = round;
    if (res.insertions.empty()) {
      journalAttempt(round);
      return res;
    }

    VerifyOptions vo;
    vo.clockPeriod = res.clockPeriod;
    vo.cycles = opt.verifyCycles;
    vo.seed = opt.seed ^ 0xABCDEF;
    vo.inputArrival = CellLibrary::tsmc013c().clkToQ();
    res.verify =
        verifySequential(original, res.design.netlist, original.flops().size(),
                         res.clockArrival, res.design.keyInputs,
                         res.design.correctKey, vo);
    journalAttempt(round);
    if (res.verify.ok() && res.trueViolations == 0) return res;

    // Repair: ban the hosts implicated by the earliest mismatch (the flop
    // ids of the clone equal the original's — cloneNetlist preserves gate
    // order), or every host when attribution is empty.
    bool attributed = false;
    for (std::size_t fi : res.verify.firstMismatchFlops) {
      const GateId ff = original.flops()[fi];
      if (std::find(res.lockedFfs.begin(), res.lockedFfs.end(), ff) !=
          res.lockedFfs.end()) {
        banned.insert(ff);
        attributed = true;
      }
    }
    if (!attributed)
      for (GateId ff : res.lockedFfs) banned.insert(ff);
  }
  return res;
}

VerifyReport verifySequential(const Netlist& original, const Netlist& locked,
                              std::size_t numSharedFlops,
                              const std::vector<Ps>& lockedClockArrival,
                              const std::vector<NetId>& keyInputs,
                              const std::vector<int>& keyValues,
                              const VerifyOptions& vo) {
  VerifyReport rep;
  obs::Span span("flow.verify");
  span.arg("cycles", vo.cycles);
  const CellLibrary& lib = CellLibrary::tsmc013c();
  assert(numSharedFlops == original.flops().size());
  assert(numSharedFlops <= locked.flops().size());
  assert(lockedClockArrival.size() == locked.flops().size());
  assert(keyInputs.size() == keyValues.size());
  assert(original.inputs().size() + keyInputs.size() == locked.inputs().size());

  const Ps tclk = vo.clockPeriod;
  const int cycles = vo.cycles;
  EventSimConfig cfg;
  cfg.clockPeriod = tclk;
  cfg.simTime = static_cast<Ps>(cycles + 1) * tclk;
  EventSim sim(locked, cfg, lib);
  for (std::size_t i = 0; i < locked.flops().size(); ++i)
    sim.setClockArrival(locked.flops()[i], lockedClockArrival[i]);
  for (std::size_t i = 0; i < keyInputs.size(); ++i)
    sim.setInitialInput(keyInputs[i], logicFromBool(keyValues[i] != 0));

  // Random per-cycle PI patterns.
  Rng rng(vo.seed);
  const std::size_t numPIs = original.inputs().size();
  std::vector<std::vector<Logic>> pattern(
      static_cast<std::size_t>(cycles), std::vector<Logic>(numPIs, Logic::F));
  for (auto& cyc : pattern)
    for (Logic& v : cyc) v = logicFromBool(rng.flip());

  for (std::size_t p = 0; p < numPIs; ++p) {
    const NetId pi = locked.inputs()[p];
    sim.setInitialInput(pi, pattern[0][p]);
    for (int k = 1; k < cycles; ++k)
      sim.drive(pi, static_cast<Ps>(k) * tclk + vo.inputArrival, pattern[static_cast<std::size_t>(k)][p]);
  }
  sim.run();

  auto stateAfterEdge = [&](int m) {
    std::vector<Logic> s(numSharedFlops);
    for (std::size_t i = 0; i < numSharedFlops; ++i) {
      const NetId q = locked.gate(locked.flops()[i]).out;
      s[i] = sim.valueAt(q, static_cast<Ps>(m) * tclk + lockedClockArrival[i] +
                                lib.clkToQ() + 20);
    }
    return s;
  };

  const int m0 = vo.syncCycle;
  if (cycles <= m0 + 1) return rep;  // nothing comparable

  SequentialSim ref(original);
  ref.setState(stateAfterEdge(m0));

  for (int m = m0; m + 1 < cycles; ++m) {
    const std::vector<Logic> poRef = ref.step(pattern[static_cast<std::size_t>(m)]);
    for (std::size_t j = 0; j < original.outputs().size(); ++j) {
      const Logic got =
          sim.valueAt(locked.outputs()[j], static_cast<Ps>(m + 1) * tclk);
      if (got != poRef[j]) ++rep.poMismatches;
    }
    const std::vector<Logic> sGot = stateAfterEdge(m + 1);
    bool anyHere = false;
    for (std::size_t i = 0; i < numSharedFlops; ++i) {
      if (sGot[i] != ref.state()[i]) {
        ++rep.stateMismatches;
        if (rep.firstMismatchFlops.empty() || anyHere) {
          rep.firstMismatchFlops.push_back(i);
          anyHere = true;
        }
      }
    }
    ++rep.cyclesCompared;
  }

  const Ps syncTime = static_cast<Ps>(m0) * tclk;
  for (const TimingViolation& v : sim.violations())
    if (v.edge > syncTime) ++rep.simViolations;
  return rep;
}

}  // namespace gkll
