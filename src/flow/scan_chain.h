// Scan-chain insertion — the BIST structure behind the paper's Sec. VI
// weakness discussion, as a real netlist transform.
//
// Every flop's D pin gets a scan multiplexer: D' = MUX(scan_enable, D,
// previous flop's Q); the first chain position reads the scan_in primary
// input and the last flop's Q is exported as scan_out.  With scan_enable
// high the flops form a shift register (state load/readout), with it low
// the circuit runs functionally — which is exactly the access model the
// scan attack (attack/scan_attack) and the TimingOracle assume.  The
// event-driven ScanSession below performs a full shift-in / capture /
// shift-out sequence and is used by the tests to validate that
// abstraction against the physical simulation, GK glitches included.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/logic.h"
#include "netlist/netlist.h"
#include "util/time_types.h"

namespace gkll {

struct ScanChain {
  NetId scanEnable = kNoNet;  ///< PI: 1 = shift, 0 = functional capture
  NetId scanIn = kNoNet;      ///< PI: serial data in
  NetId scanOut = kNoNet;     ///< PO: serial data out (last flop's Q)
  /// Flops in chain order (scan_in feeds order[0]).
  std::vector<GateId> order;
  /// The inserted scan MUXes, aligned with `order`.
  std::vector<GateId> muxes;
};

/// Stitch the flops of `nl` into one scan chain (in flops() order).
/// Call *after* any locking transforms so key structures are inside the
/// scanned logic, as in a real DFT flow.  Flops listed in `exclude` stay
/// off the chain — GK designs keep their KEYGEN toggle flops unscanned,
/// so the per-cycle key transitions continue through shift mode (the
/// "shift pulses keep the KEYGEN toggling" model of the TimingOracle).
ScanChain insertScanChain(Netlist& nl,
                          const std::vector<GateId>& exclude = {});

/// One complete scan operation, run on the event-driven simulator:
/// shift the state in (N cycles, scan_enable high), apply one functional
/// capture cycle, then shift the captured state out and return it.
struct ScanSessionResult {
  /// Captured state read back through scan_out, in chain order.
  std::vector<Logic> captured;
  int violations = 0;
  /// Settled primary-output values just before the capture edge.
  std::vector<Logic> poValues;
};

struct ScanSessionConfig {
  Ps clockPeriod = ns(8);
  /// Clock arrival per flop (flops() order); empty = all zero.
  std::vector<Ps> clockArrival;
  /// Key inputs held constant for the whole session.
  std::vector<NetId> keyInputs;
  std::vector<int> keyValues;
};

ScanSessionResult runScanSession(const Netlist& nl, const ScanChain& chain,
                                 const std::vector<Logic>& stateIn,
                                 const std::vector<Logic>& piValues,
                                 const ScanSessionConfig& cfg);

}  // namespace gkll
