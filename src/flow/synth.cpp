#include "flow/synth.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/telemetry.h"

namespace gkll {
namespace {

struct PairStep {
  int drive;
  Ps delay;  ///< symmetric per-edge delay of one inverter pair
};

}  // namespace

ChainPlan planDelayChain(Ps target, const CellLibrary& lib) {
  ChainPlan plan;
  if (target <= 0) return plan;  // mapped to a wire (caller adds a buffer)

  // Coarse steps: dedicated delay cells (rise/fall symmetric by design).
  const Ps d64 = lib.info(CellKind::kBuf, 64).rise;  // DLY8
  const Ps d32 = lib.info(CellKind::kBuf, 32).rise;  // DLY4
  const Ps d16 = lib.info(CellKind::kBuf, 16).rise;  // DLY2
  const Ps d8 = lib.info(CellKind::kBuf, 8).rise;    // DLY1
  // Fine steps: inverter pairs, rise/fall symmetric (a rising input falls
  // through the first INV and rises through the second: rise+fall both
  // ways).
  const PairStep pairs[] = {
      {1, lib.info(CellKind::kInv, 1).rise + lib.info(CellKind::kInv, 1).fall},
      {2, lib.info(CellKind::kInv, 2).rise + lib.info(CellKind::kInv, 2).fall},
      {4, lib.info(CellKind::kInv, 4).rise + lib.info(CellKind::kInv, 4).fall},
  };
  // One optional plain buffer as the finisher (small rise/fall asymmetry).
  const CellInfo bufs[] = {lib.info(CellKind::kBuf, 1),
                           lib.info(CellKind::kBuf, 2),
                           lib.info(CellKind::kBuf, 4)};
  const int bufDrive[] = {1, 2, 4};

  // Within the flow's timing margin a chain is "good enough" at +/-25 ps;
  // among good-enough plans the mapper minimises cell count (that is the
  // actual synthesis objective and the knob behind Table II's overheads).
  constexpr Ps kTolerance = 25;
  Ps bestErr = INT64_MAX;
  int bestCells = INT32_MAX;
  int bC64 = 0, bC32 = 0, bC16 = 0, bC8 = 0, bP1 = 0, bP2 = 0, bP4 = 0,
      bBuf = -1;
  const int max64 = static_cast<int>(target / d64) + 1;
  for (int c64 = 0; c64 <= std::min(max64, 64); ++c64) {
    for (int c32 = 0; c32 <= 1; ++c32) {
      for (int c16 = 0; c16 <= 1; ++c16) {
        for (int c8 = 0; c8 <= 1; ++c8) {
          for (int p1 = 0; p1 <= 2; ++p1) {
            for (int p2 = 0; p2 <= 1; ++p2) {
              for (int p4 = 0; p4 <= 1; ++p4) {
                const Ps base = c64 * d64 + c32 * d32 + c16 * d16 + c8 * d8 +
                                p1 * pairs[0].delay + p2 * pairs[1].delay +
                                p4 * pairs[2].delay;
                for (int b = -1; b < 3; ++b) {
                  Ps rise = base, fall = base;
                  if (b >= 0) {
                    rise += bufs[b].rise;
                    fall += bufs[b].fall;
                  }
                  const Ps err = std::max(std::llabs(rise - target),
                                          std::llabs(fall - target));
                  const int cells = c64 + c32 + c16 + c8 +
                                    2 * (p1 + p2 + p4) + (b >= 0 ? 1 : 0);
                  const bool better =
                      (err <= kTolerance && bestErr <= kTolerance)
                          ? cells < bestCells ||
                                (cells == bestCells && err < bestErr)
                          : err < bestErr;
                  if (better) {
                    bestErr = err;
                    bestCells = cells;
                    bC64 = c64;
                    bC32 = c32;
                    bC16 = c16;
                    bC8 = c8;
                    bP1 = p1;
                    bP2 = p2;
                    bP4 = p4;
                    bBuf = b;
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  for (int i = 0; i < bC64; ++i) plan.cells.emplace_back(CellKind::kBuf, 64);
  for (int i = 0; i < bC32; ++i) plan.cells.emplace_back(CellKind::kBuf, 32);
  for (int i = 0; i < bC16; ++i) plan.cells.emplace_back(CellKind::kBuf, 16);
  for (int i = 0; i < bC8; ++i) plan.cells.emplace_back(CellKind::kBuf, 8);
  auto pushPairs = [&](int count, int drive) {
    for (int i = 0; i < count; ++i) {
      plan.cells.emplace_back(CellKind::kInv, drive);
      plan.cells.emplace_back(CellKind::kInv, drive);
    }
  };
  pushPairs(bP1, 1);
  pushPairs(bP2, 2);
  pushPairs(bP4, 4);
  plan.rise = plan.fall = bC64 * d64 + bC32 * d32 + bC16 * d16 + bC8 * d8 +
                          bP1 * pairs[0].delay + bP2 * pairs[1].delay +
                          bP4 * pairs[2].delay;
  if (bBuf >= 0) {
    plan.cells.emplace_back(CellKind::kBuf, bufDrive[bBuf]);
    plan.rise += bufs[bBuf].rise;
    plan.fall += bufs[bBuf].fall;
  }
  return plan;
}

SynthReport mapDelayElements(Netlist& nl, const CellLibrary& lib) {
  SynthReport report;
  obs::Span span("flow.resynth");
  // Snapshot the delay gates first; we add gates while iterating.
  std::vector<GateId> delays;
  for (GateId g = 0; g < nl.numGates(); ++g) {
    const Gate& gg = nl.gate(g);
    if (!(gg.out == kNoNet && gg.fanin.empty()) && gg.kind == CellKind::kDelay)
      delays.push_back(g);
  }

  for (GateId g : delays) {
    const NetId in = nl.gate(g).fanin[0];
    const NetId out = nl.gate(g).out;
    const Ps target = nl.gate(g).delayPs;
    nl.removeGate(g);

    DelayChain chain;
    chain.sourceDelay = g;
    chain.target = target;

    ChainPlan plan = planDelayChain(target, lib);
    if (plan.cells.empty()) {
      // Degenerate target: a single X4 buffer keeps the net driven.
      plan.cells.emplace_back(CellKind::kBuf, 4);
      plan.rise = lib.info(CellKind::kBuf, 4).rise;
      plan.fall = lib.info(CellKind::kBuf, 4).fall;
    }

    NetId cur = in;
    for (std::size_t i = 0; i < plan.cells.size(); ++i) {
      const auto [kind, drive] = plan.cells[i];
      const bool last = i + 1 == plan.cells.size();
      const NetId next = last ? out : nl.addNet();
      const GateId cell = nl.addGate(kind, {cur}, next);
      nl.gate(cell).drive = static_cast<std::uint8_t>(drive);
      chain.cells.push_back(cell);
      report.areaAdded += lib.info(kind, drive).area;
      ++report.cellsAdded;
      cur = next;
    }
    chain.achievedRise = plan.rise;
    chain.achievedFall = plan.fall;
    report.worstError = std::max(
        {report.worstError, static_cast<Ps>(std::llabs(plan.rise - target)),
         static_cast<Ps>(std::llabs(plan.fall - target))});
    report.chains.push_back(std::move(chain));
  }
  assert(!nl.validate().has_value());
  if (obs::enabled()) {
    span.arg("chains", static_cast<std::int64_t>(report.chains.size()));
    span.arg("cells_added", report.cellsAdded);
    obs::count("flow.resynth.cells_added",
               static_cast<std::uint64_t>(report.cellsAdded));
  }
  return report;
}

}  // namespace gkll
