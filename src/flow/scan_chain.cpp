#include "flow/scan_chain.h"

#include <algorithm>
#include <cassert>

#include "sim/event_sim.h"

namespace gkll {

ScanChain insertScanChain(Netlist& nl, const std::vector<GateId>& exclude) {
  ScanChain chain;
  chain.scanEnable = nl.addPI("scan_en");
  chain.scanIn = nl.addPI("scan_in");
  for (GateId ff : nl.flops()) {  // snapshot before we add any gates
    if (std::find(exclude.begin(), exclude.end(), ff) == exclude.end())
      chain.order.push_back(ff);
  }

  NetId prev = chain.scanIn;
  for (GateId ff : chain.order) {
    const NetId d = nl.gate(ff).fanin[0];
    const NetId dScan = nl.addNet(nl.net(nl.gate(ff).out).name + "_sd");
    const GateId mux =
        nl.addGate(CellKind::kMux2, {chain.scanEnable, d, prev}, dScan);
    nl.replaceFanin(ff, d, dScan);
    chain.muxes.push_back(mux);
    prev = nl.gate(ff).out;
  }
  chain.scanOut = prev;
  nl.markPO(chain.scanOut);
  assert(!nl.validate().has_value());
  return chain;
}

ScanSessionResult runScanSession(const Netlist& nl, const ScanChain& chain,
                                 const std::vector<Logic>& stateIn,
                                 const std::vector<Logic>& piValues,
                                 const ScanSessionConfig& cfg) {
  const CellLibrary& lib = CellLibrary::tsmc013c();
  const std::size_t n = chain.order.size();
  assert(stateIn.size() == n);
  const Ps tclk = cfg.clockPeriod;
  const Ps inputAt = lib.clkToQ();  // PI change offset within a cycle

  EventSimConfig ecfg;
  ecfg.clockPeriod = tclk;
  ecfg.simTime = static_cast<Ps>(2 * n + 2) * tclk;
  EventSim sim(nl, ecfg, lib);
  if (!cfg.clockArrival.empty()) {
    assert(cfg.clockArrival.size() == nl.flops().size());
    for (std::size_t i = 0; i < nl.flops().size(); ++i)
      sim.setClockArrival(nl.flops()[i], cfg.clockArrival[i]);
  }
  for (std::size_t i = 0; i < cfg.keyInputs.size(); ++i)
    sim.setInitialInput(cfg.keyInputs[i],
                        logicFromBool(cfg.keyValues[i] != 0));

  // Functional primary inputs stay constant for the whole session.
  std::size_t p = 0;
  for (NetId pi : nl.inputs()) {
    if (pi == chain.scanEnable || pi == chain.scanIn) continue;
    if (std::find(cfg.keyInputs.begin(), cfg.keyInputs.end(), pi) !=
        cfg.keyInputs.end())
      continue;
    assert(p < piValues.size());
    sim.setInitialInput(pi, piValues[p++]);
  }

  // Shift in: the bit captured at edge k ends at chain position n - k.
  sim.setInitialInput(chain.scanEnable, Logic::T);
  sim.setInitialInput(chain.scanIn, stateIn[n - 1]);
  for (std::size_t k = 2; k <= n; ++k)
    sim.drive(chain.scanIn, static_cast<Ps>(k - 1) * tclk + inputAt,
              stateIn[n - k]);

  // One functional capture at edge n + 1.
  sim.drive(chain.scanEnable, static_cast<Ps>(n) * tclk + inputAt, Logic::F);
  sim.drive(chain.scanEnable, static_cast<Ps>(n + 1) * tclk + inputAt,
            Logic::T);
  sim.run();

  ScanSessionResult res;
  // Primary outputs settle just before the capture edge.
  for (NetId po : nl.outputs())
    res.poValues.push_back(
        sim.valueAt(po, static_cast<Ps>(n + 1) * tclk));

  // Shift out: position p's captured value appears at scan_out after
  // n-1-p further shift edges.
  const GateId last = chain.order.back();
  const auto& flops = nl.flops();
  const std::size_t lastIdx = static_cast<std::size_t>(
      std::find(flops.begin(), flops.end(), last) - flops.begin());
  const Ps lastSkew =
      cfg.clockArrival.empty() ? 0 : cfg.clockArrival[lastIdx];
  res.captured.resize(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const Ps edge =
        static_cast<Ps>(n + 1 + (n - 1 - pos)) * tclk + lastSkew;
    res.captured[pos] =
        sim.valueAt(chain.scanOut, edge + lib.clkToQ() + 20);
  }

  // Only the functional capture edge is timing-relevant for the caller.
  for (const TimingViolation& v : sim.violations()) {
    if (v.edge > static_cast<Ps>(n) * tclk &&
        v.edge <= static_cast<Ps>(n + 1) * tclk + 100)
      ++res.violations;
  }
  return res;
}

}  // namespace gkll
