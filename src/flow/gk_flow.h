// The complete GK insertion flow of paper Sec. IV-B, with the commercial
// EDA stages replaced by this repository's substitutes:
//
//   synth (DC)    -> the netlist arrives already mapped to our library
//   P&R (ICC)     -> flow/placement: wire delays + clock skew
//   STA (PT)      -> timing/sta: slacks, Eq. (1) bounds per flop
//   select        -> flow/ff_select: available flops (Table I) + [4] group
//   insert        -> lock/glitch_keygate: GK + KEYGEN per chosen flop
//   re-synthesis  -> flow/synth: ideal delay elements -> cell chains
//   re-check      -> STA again: classify expected "false" setup violations
//                    on GK paths vs true violations; repair loop on true
//                    violations (drop the offending flop, pick another)
//   sign-off      -> timing-accurate event simulation against the original
//                    (verifySequential), the ground truth EDA cannot give.
//
// The flow also implements the Table II hybrid mode: half the key budget
// as conventional XOR/XNOR key gates spliced into slack-filtered nets.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/ff_select.h"
#include "flow/placement.h"
#include "lock/glitch_keygate.h"
#include "lock/locking.h"
#include "timing/sta.h"

namespace gkll {

struct GkFlowOptions {
  int numGks = 4;
  int hybridXorKeys = 0;    ///< additional conventional XOR/XNOR key gates
  Ps glitchLen = ns(1);     ///< paper Sec. VI: 1 ns, on-glitch transmission
  Ps margin = 150;          ///< window safety margin (ps)
  Ps clockPeriod = 0;       ///< 0 = derive from the original design's STA
  bool mapDelays = true;    ///< run the re-synthesis (delay mapping) stage
  /// Insert Fig. 3(b) GKs instead of Fig. 3(a): the gate buffers under a
  /// *constant* key and its glitch inverts, so the secret behaviour is
  /// kConst0/kConst1 and both ADB taps are timed on-glitch (any transition
  /// key corrupts).  Caveat the paper leaves implicit: the two constants
  /// are behaviourally identical, so each variant-(b) GK has two correct
  /// (k1,k2) assignments — half the key space of variant (a).
  bool bufferVariant = false;
  int verifyCycles = 24;
  int maxRepairRounds = 3;
  std::uint64_t seed = 11;
  PlacementOptions placement;
  /// Worker pool for the per-flop feasibility analysis and the Karmakar
  /// PO-reachability propagation.  Null = serial — results are
  /// byte-identical either way, so callers opt in purely for speed.
  runtime::ThreadPool* pool = nullptr;
};

/// Timing-accurate functional comparison of locked vs original.
struct VerifyReport {
  int cyclesCompared = 0;
  int stateMismatches = 0;  ///< flop-state divergences after sync
  int poMismatches = 0;     ///< primary-output divergences after sync
  int simViolations = 0;    ///< setup/hold violations observed after sync
  /// Flop indices (shared-flop order) that diverged on the earliest
  /// mismatching cycle — the repair loop's attribution signal.
  std::vector<std::size_t> firstMismatchFlops;
  bool ok() const {
    return cyclesCompared > 0 && stateMismatches == 0 && poMismatches == 0 &&
           simViolations == 0;
  }
};

struct GkFlowResult {
  LockedDesign design;  ///< keyInputs: [gk0.k1, gk0.k2, ...] then XOR keys
  std::vector<GkInsertion> insertions;
  std::vector<GateId> lockedFfs;  ///< host flops that received a GK
  Ps clockPeriod = 0;
  /// Clock arrival per flop of design.netlist (flops() order; KEYGEN flops
  /// ride the clock trunk at arrival 0).
  std::vector<Ps> clockArrival;
  NetlistStats originalStats;
  NetlistStats lockedStats;
  double cellOverheadPct = 0;
  double areaOverheadPct = 0;
  std::size_t availableFfs = 0;   ///< Table I "Ava. FF"
  std::size_t karmakarFfs = 0;    ///< Table I "Ava. FF [4]"
  int falseViolations = 0;  ///< STA setup violations on GK paths (expected)
  int trueViolations = 0;   ///< violations elsewhere after repair (must be 0)
  int repairRounds = 0;
  VerifyReport verify;      ///< sign-off under the correct key
};

/// Run the full flow on `original` (which must be sequential).
GkFlowResult runGkFlow(const Netlist& original, const GkFlowOptions& opt);

struct VerifyOptions {
  Ps clockPeriod = ns(10);
  int cycles = 24;
  std::uint64_t seed = 99;
  Ps inputArrival = 120;  ///< when PI values change within a cycle
  int syncCycle = 2;      ///< warm-up before states are compared
};

/// Drive `locked` with random per-cycle PI patterns and constant key bits
/// in the event-driven simulator; synchronise the original's state to the
/// locked circuit's captured state at `syncCycle`, then compare flop
/// states and PO values cycle by cycle.  The first `numSharedFlops` of
/// locked.flops() must correspond 1:1 to original.flops().
VerifyReport verifySequential(const Netlist& original, const Netlist& locked,
                              std::size_t numSharedFlops,
                              const std::vector<Ps>& lockedClockArrival,
                              const std::vector<NetId>& keyInputs,
                              const std::vector<int>& keyValues,
                              const VerifyOptions& vo);

}  // namespace gkll
