#include "benchgen/synthetic_bench.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "util/rng.h"

namespace gkll {

const std::vector<BenchSpec>& iwls2005Specs() {
  // Cell/FF counts from Table I; PI/PO counts are the published ISCAS-89
  // interface sizes.  Seeds are arbitrary but fixed forever.  depth/deepFf
  // are calibrated so each circuit's slack profile lands near the paper's
  // Table I coverage (e.g. s1238 ~89% of flops GK-encryptable, s15850
  // ~43%).
  static const std::vector<BenchSpec> specs = {
      {"s1238", 341, 18, 14, 14, 0x1238, 45, 0.11},
      {"s5378", 775, 163, 35, 49, 0x5378, 48, 0.34},
      {"s9234", 613, 145, 36, 39, 0x9234, 48, 0.50},
      {"s13207", 901, 330, 62, 152, 0x13207, 50, 0.52},
      {"s15850", 447, 134, 77, 150, 0x15850, 45, 0.56},
      {"s38417", 5397, 1564, 28, 106, 0x38417, 55, 0.41},
      {"s38584", 5304, 1168, 38, 304, 0x38584, 55, 0.23},
  };
  return specs;
}

Netlist generateBenchmark(const BenchSpec& spec) {
  assert(spec.cells > spec.ffs);
  assert(spec.depth >= 4);
  Rng rng(spec.seed * 0x9E3779B97F4A7C15ULL + 1);
  Netlist nl(spec.name);

  // Level 0 sources: primary inputs and FF Q nets (DFF gates come last,
  // once their D nets exist).
  std::vector<std::vector<NetId>> levels(1);
  for (int i = 0; i < spec.pis; ++i)
    levels[0].push_back(nl.addPI("pi" + std::to_string(i)));
  std::vector<NetId> qNets;
  for (int i = 0; i < spec.ffs; ++i) {
    const NetId q = nl.addNet("ff" + std::to_string(i) + "_q");
    qNets.push_back(q);
    levels[0].push_back(q);
  }

  // Weighted gate mix roughly matching a mapped 0.13um design.
  struct Mix {
    CellKind kind;
    int weight;
  };
  static const Mix kMix[] = {
      {CellKind::kNand2, 22}, {CellKind::kNor2, 14}, {CellKind::kInv, 14},
      {CellKind::kAnd2, 9},   {CellKind::kOr2, 7},   {CellKind::kNand3, 8},
      {CellKind::kNor3, 5},   {CellKind::kXor2, 6},  {CellKind::kXnor2, 3},
      {CellKind::kAoi21, 5},  {CellKind::kOai21, 4}, {CellKind::kBuf, 3},
  };
  int totalWeight = 0;
  for (const Mix& m : kMix) totalWeight += m.weight;

  // Levelised construction: the first fanin of each gate comes from the
  // previous level (pinning the gate's logic level), the rest from nearby
  // earlier levels — giving a controlled critical depth with realistic
  // reconvergence.  Gate counts are spread evenly across levels.
  const int combGates = spec.cells - spec.ffs;
  const int depth = std::min(spec.depth, combGates);
  int remaining = combGates;
  // Every PI and FF state bit must be read somewhere (no dead state):
  // non-first fanins drain this queue before picking freely.
  std::vector<NetId> unread = levels[0];
  rng.shuffle(unread);
  for (int l = 1; l <= depth; ++l) {
    const int here = remaining / (depth - l + 1);
    std::vector<NetId> thisLevel;
    thisLevel.reserve(static_cast<std::size_t>(here));
    for (int i = 0; i < here; ++i) {
      int w = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(totalWeight)));
      CellKind kind = CellKind::kNand2;
      for (const Mix& m : kMix) {
        if (w < m.weight) {
          kind = m.kind;
          break;
        }
        w -= m.weight;
      }
      const int nIns = cellNumInputs(kind);
      std::vector<NetId> fanin;
      fanin.reserve(static_cast<std::size_t>(nIns));
      fanin.push_back(rng.pick(levels[static_cast<std::size_t>(l - 1)]));
      for (int k = 1; k < nIns; ++k) {
        if (!unread.empty()) {  // drain unread state/input bits first
          fanin.push_back(unread.back());
          unread.pop_back();
          continue;
        }
        // 75%: one of the four preceding levels; 25%: anywhere earlier.
        std::size_t fromLevel;
        if (rng.chance(0.75)) {
          const std::size_t back = 1 + rng.below(4);
          fromLevel = static_cast<std::size_t>(l) > back
                          ? static_cast<std::size_t>(l) - back
                          : 0;
        } else {
          fromLevel = static_cast<std::size_t>(rng.below(
              static_cast<std::uint64_t>(l)));
        }
        fanin.push_back(rng.pick(levels[fromLevel]));
      }
      const NetId out = nl.addNet();
      nl.addGate(kind, std::move(fanin), out);
      thisLevel.push_back(out);
    }
    remaining -= here;
    levels.push_back(std::move(thisLevel));
  }

  // FF D pins: a `deepFf` fraction hangs near the critical path (upper
  // quarter of levels — too little slack for a GK), the rest sit shallow
  // (lower half).  This is the knob that shapes Table I's coverage.
  const int shallowMax = std::max(1, depth / 2);
  const int deepMin = std::max(1, (3 * depth) / 4);
  for (int i = 0; i < spec.ffs; ++i) {
    const bool deep = rng.uniform() < spec.deepFf;
    std::size_t lvl;
    if (deep) {
      lvl = static_cast<std::size_t>(
          deepMin + static_cast<int>(rng.below(
                        static_cast<std::uint64_t>(depth - deepMin + 1))));
    } else {
      lvl = 1 + rng.below(static_cast<std::uint64_t>(shallowMax));
    }
    const NetId d = rng.pick(levels[lvl]);
    nl.addGate(CellKind::kDff, {d}, qNets[static_cast<std::size_t>(i)]);
  }

  // Primary outputs: distinct nets biased to the deepest levels (they
  // define the clock period together with the deep flops).
  std::vector<NetId> poCandidates;
  for (int l = depth;
       l >= 1 && static_cast<int>(poCandidates.size()) < (3 * spec.pos) / 2 + 4;
       --l)
    for (NetId n : levels[static_cast<std::size_t>(l)]) poCandidates.push_back(n);
  rng.shuffle(poCandidates);
  const int numPOs =
      std::min<int>(spec.pos, static_cast<int>(poCandidates.size()));
  for (int i = 0; i < numPOs; ++i)
    nl.markPO(poCandidates[static_cast<std::size_t>(i)]);

  assert(!nl.validate().has_value());
  return nl;
}

BenchSpec genSpec(std::int64_t cells, std::int64_t ffs, std::uint64_t seed,
                  int depth) {
  if (cells < 2)
    throw BenchGenError("gen spec needs at least 2 cells, got " +
                        std::to_string(cells));
  if (cells > kMaxGenCells)
    throw BenchGenError("gen spec of " + std::to_string(cells) +
                        " cells exceeds the " + std::to_string(kMaxGenCells) +
                        "-cell cap");
  if (ffs < 0 || ffs >= cells)
    throw BenchGenError("gen spec needs 0 <= ffs < cells, got cells=" +
                        std::to_string(cells) +
                        " ffs=" + std::to_string(ffs));
  if (depth != 0 && depth < 4)
    throw BenchGenError("gen spec depth must be 0 (derived) or >= 4, got " +
                        std::to_string(depth));
  BenchSpec spec;
  spec.name = "gen" + std::to_string(cells) + "x" + std::to_string(ffs) +
              (seed == 1 ? std::string() : "@" + std::to_string(seed));
  spec.cells = static_cast<int>(cells);
  spec.ffs = static_cast<int>(ffs);
  // Interface scales like a placed block's perimeter-to-area ratio; depth
  // like a balanced tree's height — both calibrated against the Table I
  // circuits (s38417: 5397 cells -> ~53 derived depth vs 55 tuned).
  spec.pis = std::clamp(static_cast<int>(std::sqrt(static_cast<double>(cells))),
                        4, 4096);
  spec.pos = spec.pis;
  spec.seed = seed;
  spec.depth =
      depth != 0
          ? depth
          : std::clamp(static_cast<int>(3.0 * std::cbrt(static_cast<double>(
                                                  cells))),
                       24, 120);
  return spec;
}

std::optional<BenchSpec> parseGenName(const std::string& name) {
  if (name.rfind("gen:", 0) != 0) return std::nullopt;
  const char* p = name.data() + 4;
  const char* end = name.data() + name.size();
  const auto malformed = [&]() -> BenchGenError {
    return BenchGenError("malformed gen spec '" + name +
                         "'; expected gen:<cells>x<ffs>[@<seed>]");
  };
  std::int64_t cells = 0, ffs = 0;
  std::uint64_t seed = 1;
  auto r = std::from_chars(p, end, cells);
  if (r.ec != std::errc{} || r.ptr == end || *r.ptr != 'x') throw malformed();
  r = std::from_chars(r.ptr + 1, end, ffs);
  if (r.ec != std::errc{}) throw malformed();
  if (r.ptr != end) {
    if (*r.ptr != '@') throw malformed();
    r = std::from_chars(r.ptr + 1, end, seed);
    if (r.ec != std::errc{} || r.ptr != end) throw malformed();
  }
  return genSpec(cells, ffs, seed);
}

Netlist generateByName(const std::string& name) {
  // The two hand-built circuits answer by name too, so CLI tools and CI
  // jobs can run their smoke tests on a seconds-scale design.
  if (const std::optional<BenchSpec> spec = parseGenName(name))
    return generateBenchmark(*spec);
  if (name == "c17") return makeC17();
  if (name == "toyseq") return makeToySeq();
  for (const BenchSpec& s : iwls2005Specs())
    if (s.name == name) return generateBenchmark(s);
  std::string known = "c17, toyseq";
  for (const BenchSpec& s : iwls2005Specs()) known += ", " + s.name;
  throw BenchGenError("unknown benchmark '" + name + "'; known: " + known +
                      ", or gen:<cells>x<ffs>[@<seed>]");
}

Netlist makeC17() {
  Netlist nl("c17");
  const NetId g1 = nl.addPI("G1");
  const NetId g2 = nl.addPI("G2");
  const NetId g3 = nl.addPI("G3");
  const NetId g6 = nl.addPI("G6");
  const NetId g7 = nl.addPI("G7");
  const NetId g10 = nl.addNet("G10");
  const NetId g11 = nl.addNet("G11");
  const NetId g16 = nl.addNet("G16");
  const NetId g19 = nl.addNet("G19");
  const NetId g22 = nl.addNet("G22");
  const NetId g23 = nl.addNet("G23");
  nl.addGate(CellKind::kNand2, {g1, g3}, g10);
  nl.addGate(CellKind::kNand2, {g3, g6}, g11);
  nl.addGate(CellKind::kNand2, {g2, g11}, g16);
  nl.addGate(CellKind::kNand2, {g11, g7}, g19);
  nl.addGate(CellKind::kNand2, {g10, g16}, g22);
  nl.addGate(CellKind::kNand2, {g16, g19}, g23);
  nl.markPO(g22);
  nl.markPO(g23);
  return nl;
}

Netlist makeToySeq() {
  // A 4-bit ripple-ish counter with enable and a comparator output:
  // state bits toggle when all lower bits are 1 and en is 1.
  Netlist nl("toyseq");
  const NetId en = nl.addPI("en");
  std::vector<NetId> q;
  for (int i = 0; i < 4; ++i) q.push_back(nl.addNet("q" + std::to_string(i)));

  NetId c = en;
  for (int i = 0; i < 4; ++i) {
    const NetId t = nl.addNet("t" + std::to_string(i));
    nl.addGate(CellKind::kXor2, {q[static_cast<std::size_t>(i)], c}, t);
    nl.addGate(CellKind::kDff, {t}, q[static_cast<std::size_t>(i)]);
    if (i < 3) {
      const NetId nc = nl.addNet("c" + std::to_string(i + 1));
      nl.addGate(CellKind::kAnd2, {q[static_cast<std::size_t>(i)], c}, nc);
      c = nc;
    }
  }
  // Output: AND of the top two bits.
  const NetId hit = nl.addNet("hit");
  nl.addGate(CellKind::kAnd2, {q[2], q[3]}, hit);
  nl.markPO(hit);
  nl.markPO(q[0]);
  return nl;
}

}  // namespace gkll
