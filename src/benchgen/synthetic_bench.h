// Deterministic synthetic benchmark generation — the IWLS2005 substitute.
//
// The paper evaluates on seven sequential IWLS2005/ISCAS-89 benchmarks
// after synthesis onto a 0.13um library.  We cannot ship those netlists,
// so this module generates sequential circuits with the *exact* post-
// synthesis cell and FF counts the paper reports in Table I (and the
// published ISCAS-89 PI/PO counts), built from the same cell families our
// library provides, with locality-biased wiring that yields realistic
// logic depths.  Everything is keyed by a fixed seed: the same name always
// produces bit-identical circuits.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace gkll {

/// Parameters of one synthetic benchmark.
struct BenchSpec {
  std::string name;
  int cells = 0;  ///< total cells after synthesis, *including* FFs (Table I)
  int ffs = 0;
  int pis = 0;
  int pos = 0;
  std::uint64_t seed = 0;
  /// Combinational depth (levels).  Gates are organised level by level so
  /// the critical path is ~depth gate delays — matching the multi-ns
  /// paths of the real 0.13um-mapped ISCAS-89 circuits.
  int depth = 50;
  /// Fraction of flops whose D pin hangs near the critical path (too
  /// little slack for a GK).  Calibrated per circuit so the timing-slack
  /// distribution reproduces the paper's Table I coverage profile.
  double deepFf = 0.3;
};

/// The seven circuits of the paper's Tables I/II with their published
/// cell/FF counts (s1238 341/18 ... s38584 5304/1168).  The paper's
/// "s9324" in Table I is a typo for s9234; we use s9234 throughout.
const std::vector<BenchSpec>& iwls2005Specs();

/// Unknown or malformed benchmark request — thrown by generateByName /
/// parseGenName / genSpec instead of crashing; what() names the valid
/// forms so service clients and CLI users see an actionable message.
class BenchGenError : public std::runtime_error {
 public:
  explicit BenchGenError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Hard ceiling on genSpec cell counts — keeps a typo'd request from
/// swallowing the machine (16M cells is ~2 GiB of netlist).
inline constexpr std::int64_t kMaxGenCells = 16'000'000;

/// Parameterised spec beyond the seven fixed circuits: an arbitrary-size
/// synthetic design, deterministic in `seed`, with the same locality-
/// biased levelised wiring as the paper substitutes.  PI/PO counts scale
/// as ~sqrt(cells); `depth` 0 derives ~3*cbrt(cells) (clamped to
/// [24, 120]).  Throws BenchGenError on non-positive / inconsistent /
/// over-cap counts.  The spec's name is "gen<cells>x<ffs>[@<seed>]".
BenchSpec genSpec(std::int64_t cells, std::int64_t ffs,
                  std::uint64_t seed = 1, int depth = 0);

/// Parse a "gen:<cells>x<ffs>[@<seed>]" name (e.g. "gen:1000000x50000",
/// "gen:200000x8000@7") into its spec.  Returns nullopt when `name` has
/// no "gen:" prefix; throws BenchGenError when it does but the rest is
/// malformed or out of range.
std::optional<BenchSpec> parseGenName(const std::string& name);

/// Generate the circuit for a spec (deterministic in spec.seed).
Netlist generateBenchmark(const BenchSpec& spec);

/// Convenience: generate one of the seven by name ("c17" and "toyseq"
/// answer too, as do "gen:<cells>x<ffs>[@<seed>]" parameterised specs);
/// throws BenchGenError listing the known names on an unknown one.
Netlist generateByName(const std::string& name);

/// The classic ISCAS-85 c17 netlist (6 NAND2 gates) — handy unit-test prey.
Netlist makeC17();

/// A small sequential toy: 4-bit counter-like circuit with enable, 4 FFs,
/// used by the quickstart example and the sequential tests.
Netlist makeToySeq();

}  // namespace gkll
