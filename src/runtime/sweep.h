// Parallel scenario sweeps and the bench JSON emitter.
//
// parallelSweep is the one driver every grid-shaped evaluation shares
// (bench_table1/table2, bench_fig7_scenarios, bench_fig9_windows, the
// keygen window sweeps): item i is computed by fn(i, rng_i) with a private
// Rng seeded from hash(masterSeed, i) — see runtime/seed.h — and the
// results come back in index order.  Because nothing about an item depends
// on scheduling, a sweep is byte-identical on 1 thread and on 64; the
// benches exploit that by running serial + parallel and *checking*.
//
// BenchJson writes BENCH_<name>.json (into GKLL_TRACE_DIR when set, else
// the working directory) with the run's thread count and wall-vs-CPU time
// alongside whatever metrics the bench sets — the fields that keep
// trajectories comparable between serial and parallel runs.
#pragma once

#include <cassert>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "runtime/parallel.h"
#include "runtime/seed.h"
#include "util/rng.h"

namespace gkll::runtime {

namespace detail {

/// Fixed-size array of result slots constructed *in place*: the storage is
/// raw until emplace(i, ...) move/direct-constructs slot i, so element
/// types need neither default construction nor assignment — a scenario row
/// can be exactly the aggregate its stages produce.  Concurrency contract:
/// distinct slots may be emplaced from distinct threads (each slot's byte
/// flag is its own memory location); a slot is written at most once, and
/// readers synchronise through the parallel join that ends the sweep.
template <class R>
class Slots {
 public:
  explicit Slots(std::size_t n) : n_(n), built_(n, 0) {
    data_ = std::allocator<R>().allocate(n_);
  }
  ~Slots() {
    for (std::size_t i = 0; i < n_; ++i)
      if (built_[i]) (data_ + i)->~R();
    std::allocator<R>().deallocate(data_, n_);
  }
  Slots(const Slots&) = delete;
  Slots& operator=(const Slots&) = delete;

  std::size_t size() const { return n_; }
  bool built(std::size_t i) const { return built_[i] != 0; }
  R& operator[](std::size_t i) { return data_[i]; }
  const R& operator[](std::size_t i) const { return data_[i]; }

  template <class... Args>
  R& emplace(std::size_t i, Args&&... args) {
    assert(i < n_ && !built_[i]);
    R* r = ::new (static_cast<void*>(data_ + i))
        R(std::forward<Args>(args)...);
    built_[i] = 1;
    return *r;
  }

  /// Move every (fully built) slot into a vector, index order.  The moved-
  /// from slots stay constructed; the destructor reclaims them.
  std::vector<R> take() {
    std::vector<R> out;
    out.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      assert(built_[i]);
      out.push_back(std::move(data_[i]));
    }
    return out;
  }

 private:
  R* data_ = nullptr;
  std::size_t n_ = 0;
  std::vector<unsigned char> built_;
};

}  // namespace detail

/// Milliseconds on the steady clock (wall) / of process CPU time (all
/// threads).  wall << cpu is the signature of a saturated pool.
double wallMsNow();
double cpuMsNow();

/// Deterministic parallel sweep: out[i] = fn(i, Rng(taskSeed(masterSeed,i))).
/// Results are constructed in place from fn's return value, so R needs only
/// a move constructor (no default construction, no assignment); fn must not
/// touch other items' state.
template <class R, class Fn>
std::vector<R> parallelSweep(std::size_t n, std::uint64_t masterSeed, Fn&& fn,
                             const ParallelOptions& opt = {}) {
  detail::Slots<R> out(n);
  parallelFor(
      n,
      [&](std::size_t i) {
        Rng rng(taskSeed(masterSeed, i));
        out.emplace(i, fn(i, rng));
      },
      opt);
  return out.take();
}

/// Scoped serial-vs-parallel measurement of one sweep body, for the
/// benches' determinism + speedup check: run() executes the body once on
/// the given pool and returns (result, wallMs).
struct SweepTiming {
  double wallMs = 0;
  double cpuMs = 0;
};

template <class Fn>
auto timedRun(Fn&& body, SweepTiming& t) {
  const double w0 = wallMsNow();
  const double c0 = cpuMsNow();
  auto result = body();
  t.wallMs = wallMsNow() - w0;
  t.cpuMs = cpuMsNow() - c0;
  return result;
}

/// BENCH_<name>.json writer.  Construction starts the clocks; destruction
/// stamps {"name","threads","wall_ms","cpu_ms"} plus every set() metric
/// (keys sorted, so files diff cleanly) and writes the file.
class BenchJson {
 public:
  explicit BenchJson(std::string name);
  ~BenchJson();
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void set(const std::string& key, double value);
  void set(const std::string& key, const std::string& value);

  const std::string& name() const { return name_; }
  std::string path() const;  ///< where the destructor will write

 private:
  std::string name_;
  double wallStart_ = 0;
  double cpuStart_ = 0;
  std::map<std::string, std::variant<double, std::string>> fields_;
};

}  // namespace gkll::runtime
