// Parallel scenario sweeps and the bench JSON emitter.
//
// parallelSweep is the one driver every grid-shaped evaluation shares
// (bench_table1/table2, bench_fig7_scenarios, bench_fig9_windows, the
// keygen window sweeps): item i is computed by fn(i, rng_i) with a private
// Rng seeded from hash(masterSeed, i) — see runtime/seed.h — and the
// results come back in index order.  Because nothing about an item depends
// on scheduling, a sweep is byte-identical on 1 thread and on 64; the
// benches exploit that by running serial + parallel and *checking*.
//
// BenchJson writes BENCH_<name>.json (into GKLL_TRACE_DIR when set, else
// the working directory) with the run's thread count and wall-vs-CPU time
// alongside whatever metrics the bench sets — the fields that keep
// trajectories comparable between serial and parallel runs.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "runtime/parallel.h"
#include "runtime/seed.h"
#include "util/rng.h"

namespace gkll::runtime {

/// Milliseconds on the steady clock (wall) / of process CPU time (all
/// threads).  wall << cpu is the signature of a saturated pool.
double wallMsNow();
double cpuMsNow();

/// Deterministic parallel sweep: out[i] = fn(i, Rng(taskSeed(masterSeed,i))).
/// R must be default-constructible; fn must not touch other items' state.
template <class R, class Fn>
std::vector<R> parallelSweep(std::size_t n, std::uint64_t masterSeed, Fn&& fn,
                             const ParallelOptions& opt = {}) {
  std::vector<R> out(n);
  parallelFor(
      n,
      [&](std::size_t i) {
        Rng rng(taskSeed(masterSeed, i));
        out[i] = fn(i, rng);
      },
      opt);
  return out;
}

/// Scoped serial-vs-parallel measurement of one sweep body, for the
/// benches' determinism + speedup check: run() executes the body once on
/// the given pool and returns (result, wallMs).
struct SweepTiming {
  double wallMs = 0;
  double cpuMs = 0;
};

template <class Fn>
auto timedRun(Fn&& body, SweepTiming& t) {
  const double w0 = wallMsNow();
  const double c0 = cpuMsNow();
  auto result = body();
  t.wallMs = wallMsNow() - w0;
  t.cpuMs = cpuMsNow() - c0;
  return result;
}

/// BENCH_<name>.json writer.  Construction starts the clocks; destruction
/// stamps {"name","threads","wall_ms","cpu_ms"} plus every set() metric
/// (keys sorted, so files diff cleanly) and writes the file.
class BenchJson {
 public:
  explicit BenchJson(std::string name);
  ~BenchJson();
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void set(const std::string& key, double value);
  void set(const std::string& key, const std::string& value);

  const std::string& name() const { return name_; }
  std::string path() const;  ///< where the destructor will write

 private:
  std::string name_;
  double wallStart_ = 0;
  double cpuStart_ = 0;
  std::map<std::string, std::variant<double, std::string>> fields_;
};

}  // namespace gkll::runtime
