#include "runtime/task_graph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/telemetry.h"
#include "runtime/sweep.h"

namespace gkll::runtime {

struct TaskGraph::Node final : detail::Job {
  TaskGraph* graph = nullptr;
  std::size_t id = 0;
  std::string kind;
  std::function<void(TaskCtx&)> fn;
  std::uint64_t seed = 0;
  std::vector<NodeId> deps;
  std::vector<NodeId> succs;
  std::atomic<std::size_t> remaining{0};

  // Written by the (single) executing thread, read after the join.
  std::thread::id enqueuer{};
  bool wasExecuted = false;
  bool wasStolen = false;
  double durationMs = 0;

  void execute() noexcept override {
    TaskGraph& g = *graph;
    const bool skip = g.abort_.load(std::memory_order_relaxed) ||
                      g.opt_.cancel.canceled() || g.opt_.deadline.expired();
    if (skip) {
      // Record *why* the body was skipped so run() can report the cause.
      if (g.opt_.cancel.canceled())
        g.sawCancel_.store(true, std::memory_order_relaxed);
      if (g.opt_.deadline.expired())
        g.sawDeadline_.store(true, std::memory_order_relaxed);
    } else {
      const double t0 = wallMsNow();
      try {
        TaskCtx ctx;
        ctx.node = id;
        ctx.seed = seed;
        ctx.rng = Rng(seed);
        ctx.pool = g.pool_;
        ctx.cancel = g.opt_.cancel;
        ctx.deadline = g.opt_.deadline;
        fn(ctx);
        wasExecuted = true;
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(g.errMu_);
          if (!g.firstError_) g.firstError_ = std::current_exception();
        }
        g.abort_.store(true, std::memory_order_relaxed);
      }
      durationMs = wallMsNow() - t0;
    }
    wasStolen = std::this_thread::get_id() != enqueuer;
    if (obs::enabled()) {
      obs::count("scheduler.execute." + kind);
      if (wasStolen) obs::count("scheduler.steal." + kind);
      obs::histRecord("scheduler.task_us", durationMs * 1000.0);
    }
    g.onNodeDone(*this);
  }
};

TaskGraph::TaskGraph(TaskGraphOptions opt)
    : opt_(opt),
      pool_(opt.pool != nullptr ? opt.pool : &ThreadPool::global()) {}

TaskGraph::~TaskGraph() {
  // A constructed-but-never-run graph has no jobs in flight; a run graph
  // joined inside run().  Either way nothing is outstanding here.
  assert(pendingNodes_.load(std::memory_order_relaxed) == 0);
}

TaskGraph::NodeId TaskGraph::add(std::string kind,
                                 std::function<void(TaskCtx&)> fn,
                                 const std::vector<NodeId>& deps,
                                 std::uint64_t seedIndex) {
  if (ran_) throw std::logic_error("TaskGraph::add after run()");
  const NodeId id = nodes_.size();
  for (NodeId d : deps) {
    if (d >= id)
      throw std::logic_error(
          "TaskGraph::add: dependency on a not-yet-added node");
  }
  Node& n = *nodes_.emplace_back(std::make_unique<Node>());
  n.graph = this;
  n.id = id;
  n.kind = std::move(kind);
  n.fn = std::move(fn);
  n.seed = taskSeed(opt_.masterSeed,
                    seedIndex == kSeedFromId ? static_cast<std::uint64_t>(id)
                                             : seedIndex);
  n.deps = deps;
  n.remaining.store(deps.size(), std::memory_order_relaxed);
  for (NodeId d : deps) nodes_[d]->succs.push_back(id);
  return id;
}

void TaskGraph::submitNode(Node& n) {
  n.enqueuer = std::this_thread::get_id();
  pool_->submit(&n);
}

void TaskGraph::onNodeDone(Node& n) {
  // Release each successor; whoever drops a successor's remaining count to
  // zero owns its submission.  The pending counter keeps run() helping
  // until every node (this one included) has fully unwound, so jobs on
  // nodes_ never outlive the graph.
  for (NodeId s : n.succs) {
    Node& succ = *nodes_[s];
    if (succ.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
      submitNode(succ);
  }
  pendingNodes_.fetch_sub(1, std::memory_order_release);
}

void TaskGraph::run() {
  if (ran_) throw std::logic_error("TaskGraph::run called twice");
  ran_ = true;
  if (nodes_.empty()) return;

  pendingNodes_.store(nodes_.size(), std::memory_order_relaxed);
  // Roots are nodes with no deps — judged by the immutable edge list, NOT
  // by remaining==0: an already-submitted root can finish and drive a
  // successor's remaining count to zero while this loop is still scanning,
  // and reading the counter here would double-submit that successor.
  for (auto& np : nodes_)
    if (np->deps.empty()) submitNode(*np);

  while (pendingNodes_.load(std::memory_order_acquire) > 0) {
    if (!pool_->runOneTask()) std::this_thread::yield();
  }

  // Everything below runs after the join: node fields are plain reads.
  std::vector<double> chainMs(nodes_.size(), 0.0);
  for (const auto& np : nodes_) {
    const Node& n = *np;
    if (n.wasExecuted) {
      ++stats_.executed;
      ++stats_.executedByKind[n.kind];
      stats_.totalTaskMs += n.durationMs;
    } else {
      ++stats_.skipped;
    }
    if (n.wasStolen) ++stats_.stolen;
    double start = 0.0;
    for (NodeId d : n.deps) start = std::max(start, chainMs[d]);
    chainMs[n.id] = start + n.durationMs;
    stats_.criticalPathMs = std::max(stats_.criticalPathMs, chainMs[n.id]);
  }
  stats_.canceled = sawCancel_.load(std::memory_order_relaxed);
  stats_.deadlineExpired = sawDeadline_.load(std::memory_order_relaxed);

  if (firstError_) std::rethrow_exception(firstError_);
}

}  // namespace gkll::runtime
