// Structured parallelism over the work-stealing pool.
//
//   parallelFor(n, body)   — run body(0..n-1), dynamically chunked across
//                            the pool; the caller participates and the call
//                            returns only when every index has run.
//   TaskGroup              — fork heterogeneous tasks, wait() joins them.
//
// Both propagate the *first* exception thrown by any task to the waiting
// thread (remaining chunks/tasks are skipped, running ones finish), honour
// a CancelToken (checked between chunks — a canceled parallelFor simply
// stops claiming work), and nest freely: a waiting thread helps execute
// pending pool tasks, so an inner parallelFor inside an outer chunk can
// never deadlock.
//
// Determinism contract: scheduling (chunk sizes, which thread runs what)
// varies with the thread count, but a body that writes only state derived
// from its own index — the pattern parallelSweep (runtime/sweep.h)
// packages with per-task RNG splitting — produces byte-identical results
// on any pool.  Use parallelFor for index spaces, TaskGroup for a handful
// of dissimilar tasks (e.g. racing solver configurations).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/cancel.h"
#include "runtime/pool.h"

namespace gkll::runtime {

struct ParallelOptions {
  ThreadPool* pool = nullptr;  ///< null = ThreadPool::global()
  std::size_t grain = 1;       ///< minimum indices per chunk
  CancelToken cancel{};        ///< checked before each chunk
};

namespace detail {

using ChunkFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

/// Type-erased core: runs fn over [0, n) in chunks of >= grain.
void parallelForImpl(std::size_t n, const ParallelOptions& opt, ChunkFn fn,
                     void* ctx);

}  // namespace detail

/// Parallel loop over [0, n).  body(i) must not touch state owned by other
/// indices; see the determinism contract above.
template <class Body>
void parallelFor(std::size_t n, Body&& body, const ParallelOptions& opt = {}) {
  using Fn = std::remove_reference_t<Body>;
  detail::ChunkFn chunk = [](void* ctx, std::size_t begin, std::size_t end) {
    Fn& f = *static_cast<Fn*>(ctx);
    for (std::size_t i = begin; i < end; ++i) f(i);
  };
  detail::parallelForImpl(n, opt, chunk, const_cast<Fn*>(std::addressof(body)));
}

/// Fork/join group of heterogeneous tasks.  run() and wait() are owner-
/// thread only; the tasks themselves run anywhere in the pool.  The
/// destructor joins outstanding tasks and *discards* their exceptions —
/// call wait() to observe them.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool = nullptr);
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);

  /// Join every task, then rethrow the first captured exception (if any).
  void wait();

 private:
  struct GroupJob;

  void joinAll();

  ThreadPool* pool_;
  std::atomic<std::size_t> pending_{0};
  std::mutex errMu_;
  std::exception_ptr firstError_;
  std::vector<std::unique_ptr<GroupJob>> jobs_;
};

}  // namespace gkll::runtime
