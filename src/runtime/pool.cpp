#include "runtime/pool.h"

#include "obs/histogram.h"
#include "obs/telemetry.h"

#include <chrono>
#include <cstdlib>
#include <string>

namespace gkll::runtime {
namespace detail {

namespace {
constexpr std::int64_t kInitialCap = 256;
}  // namespace

ChaseLevDeque::ChaseLevDeque() {
  buffers_.push_back(std::make_unique<Buffer>(kInitialCap));
  buf_.store(buffers_.back().get(), std::memory_order_relaxed);
}

ChaseLevDeque::Buffer::Buffer(std::int64_t capacity)
    : cap(capacity), slots(new std::atomic<Job*>[
          static_cast<std::size_t>(capacity)]) {}

ChaseLevDeque::Buffer* ChaseLevDeque::grow(Buffer* old, std::int64_t top,
                                           std::int64_t bottom) {
  buffers_.push_back(std::make_unique<Buffer>(old->cap * 2));
  Buffer* next = buffers_.back().get();
  for (std::int64_t i = top; i < bottom; ++i) next->put(i, old->get(i));
  buf_.store(next, std::memory_order_release);
  return next;
}

void ChaseLevDeque::push(Job* job) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Buffer* a = buf_.load(std::memory_order_relaxed);
  if (b - t > a->cap - 1) a = grow(a, t, b);
  a->put(b, job);
  bottom_.store(b + 1, std::memory_order_release);
}

Job* ChaseLevDeque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* a = buf_.load(std::memory_order_relaxed);
  // seq_cst store/load pair: the single point where owner and stealers must
  // agree on a total order (the fence in the canonical formulation).
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {  // empty: restore bottom
    bottom_.store(b + 1, std::memory_order_relaxed);
    return nullptr;
  }
  Job* job = a->get(b);
  if (t == b) {
    // Last element: race the stealers for it.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      job = nullptr;  // a stealer won
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return job;
}

Job* ChaseLevDeque::steal() {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Buffer* a = buf_.load(std::memory_order_acquire);
  Job* job = a->get(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed))
    return nullptr;  // lost the race; caller may retry elsewhere
  return job;
}

}  // namespace detail

namespace {

/// Which pool (if any) the current thread is a worker of, and its index.
struct TlsWorker {
  ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local TlsWorker t_worker;

}  // namespace

int ThreadPool::defaultThreads() {
  if (const char* env = std::getenv("GKLL_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(defaultThreads());
  return pool;
}

ThreadPool::ThreadPool(int threads) {
  lanes_ = threads > 0 ? threads : defaultThreads();
  const std::size_t numWorkers = static_cast<std::size_t>(lanes_ - 1);
  workers_.reserve(numWorkers);
  for (std::size_t i = 0; i < numWorkers; ++i)
    workers_.push_back(std::make_unique<Worker>());
  // Deques exist before any thread starts: workers steal from each other.
  for (std::size_t i = 0; i < numWorkers; ++i)
    workers_[i]->thread = std::thread([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleepMu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  sleepCv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

void ThreadPool::submit(detail::Job* job) {
  if (t_worker.pool == this) {
    workers_[t_worker.index]->deque.push(job);
  } else {
    std::lock_guard<std::mutex> lock(injectMu_);
    inject_.push_back(job);
  }
  pendingApprox_.fetch_add(1, std::memory_order_relaxed);
  // Empty critical section: a worker is either before its predicate check
  // (sees the new pendingApprox_) or inside wait (gets the notify).
  { std::lock_guard<std::mutex> lock(sleepMu_); }
  sleepCv_.notify_one();
}

detail::Job* ThreadPool::findWork(std::size_t selfIndex) {
  // 1. Own deque (workers only).
  if (selfIndex < workers_.size()) {
    if (detail::Job* j = workers_[selfIndex]->deque.pop()) return j;
  }
  // 2. Injection queue (LIFO pop is fine: jobs are independent).
  {
    std::lock_guard<std::mutex> lock(injectMu_);
    if (!inject_.empty()) {
      detail::Job* j = inject_.back();
      inject_.pop_back();
      return j;
    }
  }
  // 3. Steal, starting just past self so victims rotate.
  const std::size_t n = workers_.size();
  for (std::size_t k = 1; k <= n; ++k) {
    const std::size_t victim = (selfIndex + k) % (n + 1);
    if (victim >= n) continue;  // the "external" slot has no deque
    if (detail::Job* j = workers_[victim]->deque.steal()) return j;
  }
  return nullptr;
}

bool ThreadPool::runOneTask() {
  const std::size_t self =
      t_worker.pool == this ? t_worker.index : workers_.size();
  detail::Job* j = findWork(self);
  if (j == nullptr) return false;
  pendingApprox_.fetch_sub(1, std::memory_order_relaxed);
  j->execute();
  return true;
}

void ThreadPool::workerLoop(std::size_t index) {
  t_worker.pool = this;
  t_worker.index = index;
  // Pin this worker to a histogram shard keyed by its lane (disjoint
  // record() counters in steady state) and register its trace log now, so
  // worker tids reflect spawn order and stay stable across runs/reset().
  obs::registerThreadShard(static_cast<int>(index));
  obs::registry().registerCurrentThread();
  for (;;) {
    if (runOneTask()) continue;
    std::unique_lock<std::mutex> lock(sleepMu_);
    if (stop_.load(std::memory_order_relaxed)) return;
    if (pendingApprox_.load(std::memory_order_relaxed) > 0) continue;
    // Timed wait as a lost-wakeup backstop; the submit-side empty critical
    // section makes the common path race-free.
    sleepCv_.wait_for(lock, std::chrono::milliseconds(10));
    if (stop_.load(std::memory_order_relaxed)) return;
  }
}

}  // namespace gkll::runtime
