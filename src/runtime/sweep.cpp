#include "runtime/sweep.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>

namespace gkll::runtime {

double wallMsNow() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double cpuMsNow() {
  // std::clock() is per-process CPU time on POSIX — it sums every thread,
  // which is exactly the wall-vs-CPU comparison the bench JSON records.
  return 1000.0 * static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

BenchJson::BenchJson(std::string name) : name_(std::move(name)) {
  wallStart_ = wallMsNow();
  cpuStart_ = cpuMsNow();
}

void BenchJson::set(const std::string& key, double value) {
  fields_[key] = value;
}

void BenchJson::set(const std::string& key, const std::string& value) {
  fields_[key] = value;
}

std::string BenchJson::path() const {
  const char* dir = std::getenv("GKLL_TRACE_DIR");
  const std::string prefix =
      (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : std::string();
  return prefix + "BENCH_" + name_ + ".json";
}

namespace {

void jsonEscapeTo(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

BenchJson::~BenchJson() {
  const double wallMs = wallMsNow() - wallStart_;
  const double cpuMs = cpuMsNow() - cpuStart_;

  std::string out = "{\n  \"name\": \"";
  jsonEscapeTo(out, name_);
  out += "\",\n";
  char buf[128];
  std::snprintf(buf, sizeof buf, "  \"threads\": %d,\n",
                ThreadPool::global().threads());
  out += buf;
  std::snprintf(buf, sizeof buf, "  \"wall_ms\": %.3f,\n", wallMs);
  out += buf;
  std::snprintf(buf, sizeof buf, "  \"cpu_ms\": %.3f", cpuMs);
  out += buf;
  for (const auto& [key, value] : fields_) {
    out += ",\n  \"";
    jsonEscapeTo(out, key);
    out += "\": ";
    if (const double* d = std::get_if<double>(&value)) {
      std::snprintf(buf, sizeof buf, "%.17g", *d);
      out += buf;
    } else {
      out += '"';
      jsonEscapeTo(out, std::get<std::string>(value));
      out += '"';
    }
  }
  out += "\n}\n";

  const std::string p = path();
  std::ofstream f(p);
  if (f) {
    f << out;
    std::fprintf(stderr, "[bench] %s -> %s\n", name_.c_str(), p.c_str());
  } else {
    std::fprintf(stderr, "[bench] %s: FAILED to write %s\n", name_.c_str(),
                 p.c_str());
  }
}

}  // namespace gkll::runtime
