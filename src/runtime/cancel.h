// Cooperative cancellation and wall-clock budgets for the parallel runtime.
//
// CancelToken is a copyable handle onto a shared one-way flag: any holder
// may requestCancel(), every holder polls canceled().  A default-constructed
// token is *empty* — it can never fire — so APIs can take a token by value
// and "no cancellation" costs a null check.  Cancellation is cooperative
// throughout the tree: the SAT solver polls at conflict/decision
// boundaries, parallel_for between chunks; nothing is ever interrupted
// mid-operation, which is what keeps canceled solvers reusable.
//
// Deadline is an absolute steady-clock point ("finish by t"), the
// wall-clock sibling of Solver::setConflictBudget.  A default-constructed
// Deadline is unlimited.  Both types are plain values: cheap to copy into
// options structs and across threads.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

namespace gkll::runtime {

/// Shared one-way cancellation flag.  Thread-safe: requestCancel() and
/// canceled() may race freely from any number of threads.
class CancelToken {
 public:
  /// Empty token: canceled() is always false, requestCancel() a no-op.
  CancelToken() = default;

  /// A fresh, fireable token (allocates the shared flag).
  static CancelToken make() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  bool valid() const { return flag_ != nullptr; }

  void requestCancel() const {
    if (flag_) flag_->store(true, std::memory_order_release);
  }

  bool canceled() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Absolute wall-clock budget on the steady clock.  Default: unlimited.
class Deadline {
 public:
  Deadline() = default;

  static Deadline at(std::chrono::steady_clock::time_point tp) {
    Deadline d;
    d.armed_ = true;
    d.tp_ = tp;
    return d;
  }

  static Deadline afterMs(double ms) {
    return at(std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(ms)));
  }

  bool unlimited() const { return !armed_; }

  bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= tp_;
  }

  /// Milliseconds until expiry: +inf when unlimited, clamped at 0 after.
  double remainingMs() const {
    if (!armed_) return std::numeric_limits<double>::infinity();
    const auto left = tp_ - std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(left).count();
    return ms > 0.0 ? ms : 0.0;
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point tp_{};
};

}  // namespace gkll::runtime
