// Deterministic per-task RNG splitting.
//
// Parallel code must never share one Rng between tasks (the draw order
// would depend on scheduling).  Instead every task derives its own seed as
// a hash of (master seed, task index) and constructs a private Rng from
// it.  Because the seed depends only on the *logical* task index, a sweep
// produces byte-identical results on 1, 2, or 64 threads — the determinism
// contract tests/test_runtime.cpp pins down.
#pragma once

#include <cstdint>
#include <initializer_list>

namespace gkll::runtime {

/// Stateless splitmix64-style mix of (masterSeed, taskIndex).  taskIndex 0
/// is a valid task; the +1 keeps it from collapsing onto the master seed.
constexpr std::uint64_t taskSeed(std::uint64_t masterSeed,
                                 std::uint64_t taskIndex) {
  std::uint64_t z = masterSeed + 0x9E3779B97F4A7C15ULL * (taskIndex + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// taskSeed folded left over an index path: seedChain(m, {a, b}) ==
/// taskSeed(taskSeed(m, a), b).  Gives nested sweeps (scenario → stage →
/// sample) one canonical spelling for "the seed of this node in the
/// tree", so a distributed runner re-deriving a leaf seed from the master
/// cannot disagree with the in-process run about association order.
constexpr std::uint64_t seedChain(std::uint64_t masterSeed,
                                  std::initializer_list<std::uint64_t> path) {
  std::uint64_t s = masterSeed;
  for (const std::uint64_t idx : path) s = taskSeed(s, idx);
  return s;
}

}  // namespace gkll::runtime
