// Work-stealing thread pool.
//
// One Chase-Lev deque per worker: the owning worker pushes and pops at the
// bottom (LIFO, cache-warm), idle workers steal from the top (FIFO, oldest
// first — the coarsest subtasks, which is what keeps stealing rare).  The
// implementation follows the weak-memory formulation of Lê, Pop, Cohen &
// Zappa Nardelli (PPoPP'13) with the standalone fences replaced by
// seq_cst operations on top/bottom — marginally stronger, and expressible
// entirely through std::atomic so ThreadSanitizer reasons about it
// natively.  Retired ring buffers are kept until the deque dies, the
// classic safe-reclamation shortcut.
//
// Threads submit from anywhere: a pool worker pushes onto its own deque;
// external threads (main, tests) go through a small mutex-guarded
// injection queue that workers drain between steals.  Blocking waits do
// not exist — waiters *help*: parallel_for and TaskGroup::wait run pending
// tasks on the waiting thread until their own work completes, which is
// what makes nested parallelism deadlock-free.
//
// Sizing: ThreadPool(n) provides n lanes of parallelism — n-1 background
// workers plus the submitting thread, which always participates.  n = 0
// means defaultThreads(): the GKLL_THREADS environment variable if set,
// otherwise std::thread::hardware_concurrency().  The lazily-constructed
// global() pool is what the library's parallel paths use by default.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gkll::runtime {

namespace detail {

/// A unit of pool work.  execute() must be noexcept: structured wrappers
/// (parallel_for, TaskGroup) capture exceptions into their own state and
/// rethrow on the waiting thread.
struct Job {
  virtual void execute() noexcept = 0;
  virtual ~Job() = default;
};

/// Chase-Lev work-stealing deque of Job*.  push/pop: owner thread only;
/// steal: any thread.  Grows unboundedly; retired buffers are reclaimed at
/// destruction only (stealers may still be reading them).
class ChaseLevDeque {
 public:
  ChaseLevDeque();
  ~ChaseLevDeque() = default;
  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  void push(Job* job);  ///< owner only
  Job* pop();           ///< owner only; nullptr when empty
  Job* steal();         ///< any thread; nullptr when empty or race lost

 private:
  struct Buffer {
    explicit Buffer(std::int64_t capacity);
    const std::int64_t cap;  // power of two
    std::unique_ptr<std::atomic<Job*>[]> slots;

    Job* get(std::int64_t i) const {
      return slots[i & (cap - 1)].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, Job* j) {
      slots[i & (cap - 1)].store(j, std::memory_order_relaxed);
    }
  };

  Buffer* grow(Buffer* old, std::int64_t top, std::int64_t bottom);

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buf_{nullptr};
  std::vector<std::unique_ptr<Buffer>> buffers_;  // owner-mutated (grow only)
};

}  // namespace detail

class ThreadPool {
 public:
  /// n lanes of parallelism (n-1 workers + the caller); 0 = defaultThreads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism lanes (always >= 1).
  int threads() const { return lanes_; }

  /// GKLL_THREADS if set and > 0, else hardware_concurrency (min 1).
  static int defaultThreads();

  /// The process-wide pool, built on first use with defaultThreads() lanes.
  static ThreadPool& global();

  /// Enqueue a job.  The job must stay alive until it has executed; the
  /// pool never deletes jobs.  Callable from any thread.
  void submit(detail::Job* job);

  /// Execute one pending job on the calling thread, if any is available.
  /// This is the helping primitive waiters spin on.
  bool runOneTask();

 private:
  struct Worker {
    detail::ChaseLevDeque deque;
    std::thread thread;
  };

  void workerLoop(std::size_t index);
  detail::Job* findWork(std::size_t selfIndex);  ///< selfIndex==size: external

  int lanes_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex injectMu_;
  std::vector<detail::Job*> inject_;  // external submissions, FIFO-ish

  std::mutex sleepMu_;
  std::condition_variable sleepCv_;
  std::atomic<std::int64_t> pendingApprox_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace gkll::runtime
