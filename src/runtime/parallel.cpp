#include "runtime/parallel.h"

#include <algorithm>
#include <thread>

namespace gkll::runtime {
namespace detail {
namespace {

/// Shared frame of one parallelFor call.  Chunks are claimed dynamically
/// (an atomic ticket), so a slow chunk never leaves lanes idle while fast
/// chunks remain; determinism is unaffected because chunk *boundaries*
/// depend only on (n, grain, lanes)-independent arithmetic below.
struct ForFrame {
  ChunkFn fn = nullptr;
  void* ctx = nullptr;
  std::size_t n = 0;
  std::size_t numChunks = 0;
  CancelToken cancel;

  std::atomic<std::size_t> nextChunk{0};
  std::atomic<std::size_t> completedChunks{0};
  std::atomic<bool> abort{false};
  std::mutex errMu;
  std::exception_ptr firstError;

  std::size_t chunkBegin(std::size_t c) const { return c * n / numChunks; }
  std::size_t chunkEnd(std::size_t c) const { return (c + 1) * n / numChunks; }

  void runChunks() noexcept {
    for (;;) {
      const std::size_t c = nextChunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= numChunks) return;
      if (!abort.load(std::memory_order_relaxed) && !cancel.canceled()) {
        try {
          fn(ctx, chunkBegin(c), chunkEnd(c));
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(errMu);
            if (!firstError) firstError = std::current_exception();
          }
          abort.store(true, std::memory_order_relaxed);
        }
      }
      completedChunks.fetch_add(1, std::memory_order_release);
    }
  }
};

struct RunnerJob final : Job {
  ForFrame* frame = nullptr;
  std::atomic<std::size_t>* runnersDone = nullptr;
  void execute() noexcept override {
    frame->runChunks();
    runnersDone->fetch_add(1, std::memory_order_release);
  }
};

}  // namespace

void parallelForImpl(std::size_t n, const ParallelOptions& opt, ChunkFn fn,
                     void* ctx) {
  if (n == 0) return;
  ThreadPool& pool = opt.pool != nullptr ? *opt.pool : ThreadPool::global();
  const std::size_t grain = std::max<std::size_t>(1, opt.grain);
  const std::size_t lanes = static_cast<std::size_t>(pool.threads());

  ForFrame frame;
  frame.fn = fn;
  frame.ctx = ctx;
  frame.n = n;
  frame.cancel = opt.cancel;
  // Enough chunks for dynamic balancing (4 per lane), never smaller than
  // the grain.  A serial pool degenerates to one chunk = one plain loop.
  frame.numChunks =
      std::max<std::size_t>(1, std::min((n + grain - 1) / grain, lanes * 4));

  if (lanes <= 1 || frame.numChunks == 1) {
    frame.runChunks();
    if (frame.firstError) std::rethrow_exception(frame.firstError);
    return;
  }

  const std::size_t numRunners =
      std::min(lanes - 1, frame.numChunks - 1);  // caller is runner #0
  std::atomic<std::size_t> runnersDone{0};
  std::vector<RunnerJob> runners(numRunners);
  for (RunnerJob& r : runners) {
    r.frame = &frame;
    r.runnersDone = &runnersDone;
    pool.submit(&r);
  }

  frame.runChunks();

  // Help until every chunk has finished AND every runner job has unwound
  // (the jobs live on this stack frame).
  while (frame.completedChunks.load(std::memory_order_acquire) <
             frame.numChunks ||
         runnersDone.load(std::memory_order_acquire) < numRunners) {
    if (!pool.runOneTask()) std::this_thread::yield();
  }

  if (frame.firstError) std::rethrow_exception(frame.firstError);
}

}  // namespace detail

// --- TaskGroup ---------------------------------------------------------------

struct TaskGroup::GroupJob final : detail::Job {
  TaskGroup* group = nullptr;
  std::function<void()> fn;
  void execute() noexcept override {
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(group->errMu_);
      if (!group->firstError_) group->firstError_ = std::current_exception();
    }
    group->pending_.fetch_sub(1, std::memory_order_release);
  }
};

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ThreadPool::global()) {}

TaskGroup::~TaskGroup() { joinAll(); }

void TaskGroup::run(std::function<void()> fn) {
  auto job = std::make_unique<GroupJob>();
  job->group = this;
  job->fn = std::move(fn);
  pending_.fetch_add(1, std::memory_order_relaxed);
  GroupJob* raw = job.get();
  jobs_.push_back(std::move(job));
  pool_->submit(raw);
}

void TaskGroup::joinAll() {
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (!pool_->runOneTask()) std::this_thread::yield();
  }
}

void TaskGroup::wait() {
  joinAll();
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(errMu_);
    err = firstError_;
    firstError_ = nullptr;
  }
  jobs_.clear();  // every job has executed; safe to reclaim
  if (err) std::rethrow_exception(err);
}

}  // namespace gkll::runtime
