// Deterministic task-graph scheduler over the work-stealing pool.
//
// A TaskGraph is a DAG of named tasks ("nodes"): edges are data
// dependencies, declared at add() time by referencing already-added nodes,
// so the graph is acyclic by construction.  run() submits every node whose
// dependencies are met, workers submit successors as they complete, and the
// calling thread *helps* (executes pending pool jobs) until the graph has
// drained — the same no-blocking-waits discipline as parallelFor/TaskGroup,
// so graphs nest freely inside pool tasks and node bodies may themselves
// call parallelFor on the same pool.
//
// Determinism contract (the one the bench dual-runs byte-check): each node
// gets a private Rng seeded by taskSeed(masterSeed, seedIndex) — seedIndex
// defaults to the node id, which depends only on add() order, never on
// scheduling.  A node body that writes only state owned by its node (its
// result slot, state reachable solely through its out-edges) therefore
// produces byte-identical results on a 1-lane pool and on 64 lanes.
//
// Failure semantics: the first exception thrown by any node is captured
// and rethrown from run(); every node *after* the failure still runs
// through the scheduler but its body is skipped, so the graph always
// drains completely — no orphaned tasks, all jobs unwound before run()
// returns.  CancelToken / Deadline work the same way: once fired, bodies
// are skipped (counted in Stats::skipped) but propagation continues.
// Cancellation is not an error; run() returns normally with
// stats().canceled / deadlineExpired set.
//
// Telemetry (satellite of the DAG refactor, active only when
// obs::enabled()): per-kind execute/steal counters
// ("scheduler.execute.<kind>", "scheduler.steal.<kind>" — a task counts as
// stolen when it runs on a different thread than the one that enqueued it)
// and the "scheduler.task_us" LogHistogram of node latencies, all through
// the standard metrics JSONL path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/cancel.h"
#include "runtime/pool.h"
#include "runtime/seed.h"
#include "util/rng.h"

namespace gkll::runtime {

struct TaskGraphOptions {
  ThreadPool* pool = nullptr;    ///< null = ThreadPool::global()
  std::uint64_t masterSeed = 0;  ///< root of every node's taskSeed split
  CancelToken cancel{};          ///< checked before each node body
  Deadline deadline{};           ///< checked before each node body
};

/// Everything a node body receives.  `rng` is the node's private,
/// scheduling-independent random stream; `pool` is the pool the graph runs
/// on — nested parallelFor/TaskGroup inside a body must use it (not the
/// global pool) so a serial graph run stays serial all the way down.
struct TaskCtx {
  std::size_t node = 0;       ///< node id (add() order)
  std::uint64_t seed = 0;     ///< taskSeed(masterSeed, seedIndex)
  Rng rng{0};                 ///< seeded with `seed`
  ThreadPool* pool = nullptr;
  CancelToken cancel{};
  Deadline deadline{};
};

class TaskGraph {
 public:
  using NodeId = std::size_t;

  /// seedIndex sentinel: derive the node's seed from its id.
  static constexpr std::uint64_t kSeedFromId = ~std::uint64_t{0};

  explicit TaskGraph(TaskGraphOptions opt = {});
  ~TaskGraph();
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Add a node.  `kind` is the stage label telemetry aggregates by
  /// ("gen", "sta", "attack", ...); `deps` must all be ids returned by
  /// earlier add() calls (checked).  `seedIndex` overrides the value fed
  /// to taskSeed for bodies that must draw identical randomness across
  /// structurally repeated nodes (e.g. repetition instances of one
  /// scenario); the default ties the seed to the node id.
  NodeId add(std::string kind, std::function<void(TaskCtx&)> fn,
             const std::vector<NodeId>& deps = {},
             std::uint64_t seedIndex = kSeedFromId);

  std::size_t size() const { return nodes_.size(); }

  /// Execute the whole graph; blocks (helping) until every node has been
  /// scheduled and every job unwound, then rethrows the first node
  /// exception if any.  Single-shot: a TaskGraph runs once.
  void run();

  struct Stats {
    std::size_t executed = 0;  ///< bodies that ran
    std::size_t skipped = 0;   ///< bodies skipped (error/cancel/deadline)
    std::size_t stolen = 0;    ///< ran on a thread other than the enqueuer
    double totalTaskMs = 0;    ///< sum of node wall times
    double criticalPathMs = 0; ///< longest dependency chain (measured)
    bool canceled = false;
    bool deadlineExpired = false;
    /// executed-node count per kind (independent of obs::enabled()).
    std::map<std::string, std::size_t> executedByKind;
  };

  /// Valid after run().  totalTaskMs / criticalPathMs bounds the graph's
  /// achievable parallelism regardless of lane count — the benches export
  /// it as dag_parallelism next to the measured speedup.
  const Stats& stats() const { return stats_; }

 private:
  struct Node;

  void submitNode(Node& n);
  void onNodeDone(Node& n);

  TaskGraphOptions opt_;
  ThreadPool* pool_ = nullptr;
  // unique_ptr: stable addresses (nodes are pool Jobs holding atomics).
  std::vector<std::unique_ptr<Node>> nodes_;
  bool ran_ = false;

  std::atomic<std::size_t> pendingNodes_{0};
  std::atomic<bool> abort_{false};
  std::atomic<bool> sawCancel_{false};
  std::atomic<bool> sawDeadline_{false};
  std::mutex errMu_;
  std::exception_ptr firstError_;
  Stats stats_;
};

}  // namespace gkll::runtime
