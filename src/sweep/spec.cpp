#include "sweep/spec.h"

#include <cstdio>

#include "runtime/seed.h"

namespace gkll::sweep {

namespace {

bool parseInt(const std::string& s, std::size_t pos, std::size_t end,
              int& out) {
  if (pos >= end) return false;
  long v = 0;
  for (std::size_t i = pos; i < end; ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
    if (v > 1'000'000) return false;
  }
  out = static_cast<int>(v);
  return out > 0;
}

}  // namespace

bool parseLock(const std::string& s, LockKind& out, std::string* err) {
  out = LockKind{};
  if (s == "none") return true;
  const std::size_t colon = s.find(':');
  const std::string head = s.substr(0, colon);
  const auto fail = [&](const char* what) {
    if (err)
      *err = "bad lock \"" + s + "\": " + what +
             " (forms: none, xor:<bits>, sarlock:<bits>, gk:<gks>, "
             "gkw:<gks>, hybrid:<g>x<k>)";
    return false;
  };
  if (colon == std::string::npos) return fail("missing :<param>");
  if (head == "hybrid") {
    const std::size_t x = s.find('x', colon + 1);
    if (x == std::string::npos) return fail("hybrid needs <g>x<k>");
    if (!parseInt(s, colon + 1, x, out.a) ||
        !parseInt(s, x + 1, s.size(), out.b))
      return fail("hybrid counts must be positive integers");
    out.kind = LockKind::kHybrid;
    return true;
  }
  if (!parseInt(s, colon + 1, s.size(), out.a))
    return fail("parameter must be a positive integer");
  if (head == "xor") out.kind = LockKind::kXor;
  else if (head == "sarlock") out.kind = LockKind::kSarlock;
  else if (head == "gk") out.kind = LockKind::kGk;
  else if (head == "gkw") out.kind = LockKind::kGkWithhold;
  else return fail("unknown scheme");
  return true;
}

bool validAttack(const std::string& s) {
  return s == "none" || s == "sat" || s == "removal";
}

std::string ScenarioSpec::key() const {
  return design + "|" + lock + "|" + attack + "|r" + std::to_string(rep);
}

bool SweepSpec::validate(std::string* err) const {
  if (designs.empty() || locks.empty() || attacks.empty() || reps == 0) {
    if (err) *err = "sweep spec needs >=1 design, lock, attack and rep";
    return false;
  }
  LockKind lk;
  for (const std::string& l : locks)
    if (!parseLock(l, lk, err)) return false;
  for (const std::string& a : attacks)
    if (!validAttack(a)) {
      if (err) *err = "bad attack \"" + a + "\" (none, sat, removal)";
      return false;
    }
  return true;
}

std::vector<ScenarioSpec> SweepSpec::enumerate() const {
  std::vector<ScenarioSpec> out;
  out.reserve(designs.size() * locks.size() * attacks.size() * reps);
  std::size_t index = 0;
  for (const std::string& d : designs)
    for (const std::string& l : locks)
      for (const std::string& a : attacks)
        for (std::size_t r = 0; r < reps; ++r) {
          ScenarioSpec s;
          s.design = d;
          s.lock = l;
          s.attack = a;
          s.rep = r;
          s.index = index;
          s.seed = runtime::taskSeed(masterSeed, index);
          out.push_back(std::move(s));
          ++index;
        }
  return out;
}

std::string SweepSpec::canonical() const {
  std::string out = "sweep/v1;designs=";
  for (std::size_t i = 0; i < designs.size(); ++i)
    out += (i ? "," : "") + designs[i];
  out += ";locks=";
  for (std::size_t i = 0; i < locks.size(); ++i)
    out += (i ? "," : "") + locks[i];
  out += ";attacks=";
  for (std::size_t i = 0; i < attacks.size(); ++i)
    out += (i ? "," : "") + attacks[i];
  out += ";reps=" + std::to_string(reps);
  out += ";seed=" + std::to_string(masterSeed);
  return out;
}

std::uint64_t SweepSpec::hash() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : canonical()) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string sanitizeKey(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::vector<std::string> splitList(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > pos) out.push_back(csv.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace gkll::sweep
