#include "sweep/queue.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "sweep/spec.h"

namespace gkll::sweep {

namespace {

bool ensureDir(const std::string& path, std::string* err) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return true;
  if (err) *err = "mkdir " + path + ": " + std::strerror(errno);
  return false;
}

}  // namespace

WorkQueue::WorkQueue(const std::string& dir)
    : dir_(dir), claimsDir_(dir + "/claims") {
  ok_ = ensureDir(dir_, &error_) && ensureDir(claimsDir_, &error_);
}

std::string WorkQueue::claimPath(const std::string& key) const {
  return claimsDir_ + "/" + sanitizeKey(key);
}

bool WorkQueue::claim(const std::string& key) {
  const std::string path = claimPath(key);
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0666);
  if (fd < 0) return false;  // EEXIST: someone else holds it
  // Record the claimant for post-mortems; content is advisory only.
  const std::string body = key + "\npid=" + std::to_string(::getpid()) + "\n";
  (void)!::write(fd, body.data(), body.size());
  ::close(fd);
  return true;
}

bool WorkQueue::reset() {
  DIR* d = ::opendir(claimsDir_.c_str());
  if (d == nullptr) {
    error_ = "opendir " + claimsDir_ + ": " + std::strerror(errno);
    return false;
  }
  bool ok = true;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    if (::unlink((claimsDir_ + "/" + name).c_str()) != 0) ok = false;
  }
  ::closedir(d);
  return ok;
}

std::vector<std::string> WorkQueue::claimed() const {
  std::vector<std::string> out;
  DIR* d = ::opendir(claimsDir_.c_str());
  if (d == nullptr) return out;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") out.push_back(name);
  }
  ::closedir(d);
  return out;
}

}  // namespace gkll::sweep
