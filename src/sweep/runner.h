// Scenario execution backends for the sweep grid.
//
// A ScenarioRunner turns one ScenarioSpec into a flat metric map.  The
// metrics are the DETERMINISTIC face of a scenario — pure functions of
// (spec, scenario seed), independent of which worker/process/backend ran
// it and of wall-clock — because they are what the coordinator aggregates
// into the byte-identity-checked BENCH_<name>.json.  Wall time rides
// alongside in ScenarioResult::wallMs and is kept OUT of the metric map
// (it lands in the separate latency sidecar, see coordinator.h).
//
// Backends:
//   LocalRunner   — in-process: benchgen -> lock -> attack, mirroring the
//                   bench_sat_attack recipe (extractCombinational fronts,
//                   attackSurface for GK schemes, 1M-conflict SAT budget).
//   ServiceRunner — drives a gkll_serve daemon over ONE keep-alive
//                   connection per runner (upload/lock/attack verbs); N
//                   forked workers with a ServiceRunner each therefore
//                   stress the daemon over N concurrent connections.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "service/client.h"
#include "sweep/spec.h"

namespace gkll::sweep {

struct ScenarioResult {
  bool ok = false;
  std::string error;  ///< set when !ok
  /// Deterministic metrics, sorted by name.
  std::vector<std::pair<std::string, double>> metrics;
  double wallMs = 0;  ///< measured; never part of the identity contract
};

class ScenarioRunner {
 public:
  virtual ~ScenarioRunner() = default;
  virtual ScenarioResult run(const ScenarioSpec& s) = 0;
};

/// In-process backend.  Stateless across scenarios (each scenario compiles
/// its own design); per-scenario sub-seeds derive from s.seed via
/// runtime::seedChain so reruns are byte-identical.
class LocalRunner : public ScenarioRunner {
 public:
  ScenarioResult run(const ScenarioSpec& s) override;
};

/// Where a ServiceRunner connects; exactly one of the two is set.
struct ServiceEndpoint {
  std::string unixPath;
  int tcpPort = 0;
};

class ServiceRunner : public ScenarioRunner {
 public:
  explicit ServiceRunner(ServiceEndpoint ep) : ep_(std::move(ep)) {}

  /// Unsupported combinations on this backend (sarlock locks, removal
  /// attacks) return ok=false with an explanatory error.
  ScenarioResult run(const ScenarioSpec& s) override;

 private:
  bool roundTrip(const std::string& payload, std::string& response,
                 std::string* err);

  ServiceEndpoint ep_;
  service::ServiceClient client_;  // keep-alive across scenarios
  std::int64_t nextId_ = 1;
};

}  // namespace gkll::sweep
