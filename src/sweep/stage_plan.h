// Stage-graph scenario plans — the scheduling layer shared by the bench
// harnesses (bench/scenario_driver.h) and the distributed sweep runner
// (sweep/runner.h, DESIGN.md §14).
//
// A StagePlan declares each scenario instance as a chain/diamond of
// *stages* — nodes in one runtime::TaskGraph — so independent stages of
// different scenarios overlap and a heavy stage can use ctx.pool for
// parallelism inside itself.
//
// Determinism: a stage's Rng is seeded by taskSeed(masterSeed,
// taskSeed(scenarioOffset + scenario, stage-ordinal)) — a function of
// *what* the stage is, never of scheduling or of the repetition instance.
// The scenarioOffset term is what lets an external runner execute one
// scenario of a larger matrix in isolation and still reproduce the exact
// seeds the full in-process run would have used: run scenario j alone with
// scenarioOffset = j and the stage seeds match the offset-0 run of the
// whole matrix.
//
// This layer is deliberately free of bench::Reporter: progress ticks and
// instance-completion reporting go through StageCallbacks, plain
// std::functions the caller binds to whatever sink it owns (the bench
// Reporter, the sweep worker's journal, a test's vector).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/seed.h"
#include "runtime/sweep.h"
#include "runtime/task_graph.h"
#include "util/rng.h"

namespace gkll::sweep {

/// Context handed to every stage body.  `pool` is the pool the pass runs
/// on — intra-stage parallelism must use it (never ThreadPool::global(),
/// which would parallelise the serial baseline of a dual run).
struct StageCtx {
  std::size_t instance = 0;  ///< DAG instance index = rep * scenarios + s
  std::size_t scenario = 0;
  std::size_t rep = 0;
  runtime::ThreadPool* pool = nullptr;
  Rng rng{0};
};

/// Driver hooks a StagePlan reports into.  Both optional; both may fire
/// from worker threads and in any order across instances.
struct StageCallbacks {
  /// One stage of some instance finished.
  std::function<void()> tick;
  /// The LAST stage of instance (scenario, rep) finished; wallMs is the
  /// summed wall time of all its stages.
  std::function<void(std::size_t scenario, std::size_t rep, double wallMs)>
      instanceDone;
};

/// One pass's stage-graph builder handle: `reps * scenarios` independent
/// instances, each declared as stages with explicit dependencies.  Exactly
/// one stage per instance must be declared through result(), whose return
/// value is emplaced into the instance's result slot (R needs no default
/// constructor).
template <class R>
class StagePlan {
 public:
  using NodeId = runtime::TaskGraph::NodeId;

  StagePlan(runtime::TaskGraph& graph, runtime::detail::Slots<R>& slots,
            std::size_t scenarios, std::size_t reps,
            const StageCallbacks* callbacks = nullptr,
            std::size_t scenarioOffset = 0)
      : graph_(&graph),
        slots_(&slots),
        scenarios_(scenarios),
        reps_(reps),
        offset_(scenarioOffset),
        callbacks_(callbacks),
        inst_(scenarios * reps),
        ordinal_(scenarios * reps, 0) {}

  std::size_t scenarios() const { return scenarios_; }
  std::size_t reps() const { return reps_; }
  std::size_t instances() const { return scenarios_ * reps_; }
  std::size_t scenarioOf(std::size_t k) const { return k % scenarios_; }
  std::size_t stages() const { return stageCount_; }

  /// Declare one stage of instance `k`; `deps` are NodeIds of earlier
  /// stages (usually of the same instance).  Returns the stage's NodeId.
  NodeId stage(std::size_t k, std::string kind,
               std::function<void(StageCtx&)> fn,
               const std::vector<NodeId>& deps = {}) {
    const std::uint64_t seedIndex =
        runtime::taskSeed(offset_ + scenarioOf(k), ordinal_[k]++);
    inst_[k].outstanding.fetch_add(1, std::memory_order_relaxed);
    ++stageCount_;
    return graph_->add(
        std::move(kind),
        [this, k, fn = std::move(fn)](runtime::TaskCtx& tctx) {
          StageCtx ctx;
          ctx.instance = k;
          ctx.scenario = scenarioOf(k);
          ctx.rep = k / scenarios_;
          ctx.pool = tctx.pool;
          ctx.rng = Rng(tctx.seed);
          const double t0 = runtime::wallMsNow();
          fn(ctx);
          finishStage(k, runtime::wallMsNow() - t0);
        },
        deps, seedIndex);
  }

  /// Declare the terminal stage of instance `k`: fn returns the instance's
  /// result row, emplaced directly into the result slot.
  template <class Fn>
  NodeId result(std::size_t k, std::string kind, Fn fn,
                const std::vector<NodeId>& deps = {}) {
    return stage(
        k, std::move(kind),
        [this, k, fn = std::move(fn)](StageCtx& ctx) {
          slots_->emplace(k, fn(ctx));
        },
        deps);
  }

 private:
  struct InstanceState {
    std::atomic<std::size_t> outstanding{0};
    std::atomic<double> wallMs{0.0};
  };

  static void addMs(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }

  void finishStage(std::size_t k, double ms) {
    InstanceState& st = inst_[k];
    addMs(st.wallMs, ms);
    if (callbacks_ == nullptr) return;
    if (callbacks_->tick) callbacks_->tick();
    if (st.outstanding.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    // Last stage of the instance — completion can land in any order.
    if (callbacks_->instanceDone)
      callbacks_->instanceDone(scenarioOf(k), k / scenarios_,
                               st.wallMs.load(std::memory_order_relaxed));
  }

  runtime::TaskGraph* graph_;
  runtime::detail::Slots<R>* slots_;
  std::size_t scenarios_;
  std::size_t reps_;
  std::size_t offset_;
  const StageCallbacks* callbacks_ = nullptr;
  std::size_t stageCount_ = 0;
  std::vector<InstanceState> inst_;   // built single-threaded, drained by run
  std::vector<std::uint32_t> ordinal_;
};

}  // namespace gkll::sweep
