#include "sweep/runner.h"

#include <algorithm>
#include <exception>

#include "attack/removal_attack.h"
#include "attack/sat_attack.h"
#include "benchgen/synthetic_bench.h"
#include "core/gk_encryptor.h"
#include "lock/locking.h"
#include "lock/sarlock.h"
#include "lock/xor_lock.h"
#include "netlist/netlist_ops.h"
#include "runtime/seed.h"
#include "runtime/sweep.h"
#include "service/proto.h"
#include "util/json.h"

namespace gkll::sweep {

namespace {

/// The bench_sat_attack attacker: generous but bounded — the largest XOR
/// baselines refute in ~150k conflicts; past 1M counts as "gave up".
constexpr std::uint64_t kSatConflictBudget = 1'000'000;

void put(std::vector<std::pair<std::string, double>>& m, const char* name,
         double v) {
  m.emplace_back(name, v);
}

void finishMetrics(ScenarioResult& out) {
  std::sort(out.metrics.begin(), out.metrics.end());
  out.ok = true;
}

}  // namespace

// --- LocalRunner -------------------------------------------------------------

ScenarioResult LocalRunner::run(const ScenarioSpec& s) {
  ScenarioResult out;
  const double t0 = runtime::wallMsNow();
  auto& m = out.metrics;
  try {
    LockKind lk;
    if (!parseLock(s.lock, lk, &out.error)) return out;

    const Netlist original = generateByName(s.design);
    const NetlistStats origStats = original.stats();
    put(m, "cells", static_cast<double>(origStats.numCells));
    put(m, "ffs", static_cast<double>(original.flops().size()));

    // --- lock ---------------------------------------------------------------
    Netlist comb;
    std::vector<NetId> keys;
    Netlist oracleComb;
    double areaOverheadPct = 0;
    switch (lk.kind) {
      case LockKind::kNone: {
        comb = extractCombinational(original).netlist;
        oracleComb = comb;
        break;
      }
      case LockKind::kXor:
      case LockKind::kSarlock: {
        LockedDesign ld;
        if (lk.kind == LockKind::kXor) {
          XorLockOptions xo;
          xo.numKeyBits = lk.a;
          xo.seed = s.seed;
          ld = xorLock(original, xo);
        } else {
          SarLockOptions so;
          so.numKeyBits = lk.a;
          so.seed = s.seed;
          ld = sarLock(original, so);
        }
        const NetlistStats lst = ld.netlist.stats();
        areaOverheadPct =
            origStats.area > 0
                ? 100.0 * static_cast<double>(lst.area - origStats.area) /
                      static_cast<double>(origStats.area)
                : 0.0;
        CombExtraction ce = extractCombinational(ld.netlist);
        comb = std::move(ce.netlist);
        for (NetId k : ld.keyInputs) keys.push_back(ce.netMap[k]);
        oracleComb = extractCombinational(original).netlist;
        break;
      }
      default: {  // gk / gkw / hybrid
        if (original.flops().empty()) {
          out.error = "lock " + s.lock + " requires a sequential design, " +
                      s.design + " has no flops";
          return out;
        }
        GkEncryptor enc(original);
        EncryptOptions eo;
        eo.numGks = lk.a;
        eo.hybridXorKeys = lk.kind == LockKind::kHybrid ? lk.b : 0;
        eo.withholding = lk.kind == LockKind::kGkWithhold;
        eo.seed = s.seed;
        const GkFlowResult flow = enc.encrypt(eo);
        put(m, "gks_inserted", static_cast<double>(flow.insertions.size()));
        areaOverheadPct = flow.areaOverheadPct;
        GkEncryptor::AttackSurface surf = enc.attackSurface(flow);
        comb = std::move(surf.comb);
        keys = std::move(surf.gkKeys);
        keys.insert(keys.end(), surf.otherKeys.begin(), surf.otherKeys.end());
        oracleComb = std::move(surf.oracleComb);
        break;
      }
    }
    if (lk.kind != LockKind::kNone) {
      put(m, "key_bits", static_cast<double>(keys.size()));
      put(m, "area_overhead_pct", areaOverheadPct);
    }

    // --- attack -------------------------------------------------------------
    if (s.attack == "sat" && !keys.empty()) {
      SatAttackOptions o;
      o.conflictBudget = kSatConflictBudget;
      const SatAttackResult r = satAttack(comb, keys, oracleComb, o);
      put(m, "sat_dips", r.dips);
      put(m, "sat_decrypted", r.decrypted ? 1 : 0);
      put(m, "sat_unsat_iter1", r.unsatAtFirstIteration ? 1 : 0);
      put(m, "sat_key_unsat", r.keyConstraintsUnsat ? 1 : 0);
      put(m, "sat_converged", r.converged ? 1 : 0);
      put(m, "sat_budget_exhausted", r.budgetExhausted ? 1 : 0);
    } else if (s.attack == "removal" && !keys.empty()) {
      RemovalAttackOptions o;
      o.seed = runtime::seedChain(s.seed, {1});
      const RemovalAttackResult r = removalAttack(comb, keys, oracleComb, o);
      put(m, "rm_located", r.located ? 1 : 0);
      put(m, "rm_restored", r.restoredFunction ? 1 : 0);
      put(m, "rm_skewed_nets", static_cast<double>(r.skewedKeyNets.size()));
      put(m, "rm_flip_prob", r.flipProbability);
    }
    finishMetrics(out);
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }
  out.wallMs = runtime::wallMsNow() - t0;
  return out;
}

// --- ServiceRunner -----------------------------------------------------------

bool ServiceRunner::roundTrip(const std::string& payload,
                              std::string& response, std::string* err) {
  // One reconnect retry: keep-alive connections die with daemon restarts
  // and idle timeouts; a fresh scenario should survive that.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!client_.connected()) {
      const bool up = ep_.unixPath.empty() ? client_.connectTcp(ep_.tcpPort)
                                           : client_.connectUnix(ep_.unixPath);
      if (!up) {
        if (err) *err = "connect: " + client_.error();
        continue;
      }
    }
    if (client_.request(payload, response)) return true;
    if (err) *err = "transport: " + client_.error();
  }
  return false;
}

ScenarioResult ServiceRunner::run(const ScenarioSpec& s) {
  ScenarioResult out;
  const double t0 = runtime::wallMsNow();
  auto& m = out.metrics;

  LockKind lk;
  if (!parseLock(s.lock, lk, &out.error)) return out;
  if (lk.kind == LockKind::kSarlock) {
    out.error = "lock " + s.lock + " is not supported by the service backend";
    return out;
  }
  if (s.attack == "removal") {
    out.error = "removal attack is not supported by the service backend";
    return out;
  }

  const auto call = [&](const std::string& payload,
                        util::JsonValue& reply) -> bool {
    std::string response;
    if (!roundTrip(payload, response, &out.error)) return false;
    if (!parseJson(response, reply) || !reply.isObject()) {
      out.error = "unparseable service response";
      return false;
    }
    if (!reply.boolOr("ok", false)) {
      out.error = "service error: " + reply.stringOr("error", "?") + ": " +
                  reply.stringOr("message", "");
      return false;
    }
    return true;
  };

  // --- upload ---------------------------------------------------------------
  service::JsonWriter up;
  up.i64("id", nextId_++).str("verb", "upload").str("generate", s.design);
  util::JsonValue reply;
  if (!call(up.finish(), reply)) return out;
  put(m, "cells", reply.numberOr("cells", 0));
  put(m, "ffs", reply.numberOr("ffs", 0));
  const std::string handle = reply.stringOr("handle", "");

  // --- lock -----------------------------------------------------------------
  std::string lockedHandle;
  if (lk.kind != LockKind::kNone) {
    service::JsonWriter lw;
    lw.i64("id", nextId_++)
        .str("verb", "lock")
        .str("handle", handle)
        .i64("seed", static_cast<std::int64_t>(s.seed));
    if (lk.kind == LockKind::kXor) {
      lw.str("scheme", "xor").i64("key_bits", lk.a);
    } else {
      lw.str("scheme", "gk").i64("num_gks", lk.a);
      if (lk.kind == LockKind::kHybrid) lw.i64("hybrid_xor_keys", lk.b);
      if (lk.kind == LockKind::kGkWithhold) lw.boolean("withholding", true);
    }
    if (!call(lw.finish(), reply)) return out;
    put(m, "key_bits", reply.numberOr("key_bits", 0));
    if (const util::JsonValue* v = reply.find("area_overhead_pct"))
      put(m, "area_overhead_pct", v->number);
    if (const util::JsonValue* v = reply.find("num_gks"))
      put(m, "gks_inserted", v->number);
    lockedHandle = reply.stringOr("locked_handle", "");
  }

  // --- attack ---------------------------------------------------------------
  if (s.attack == "sat" && !lockedHandle.empty()) {
    service::JsonWriter aw;
    aw.i64("id", nextId_++)
        .str("verb", "attack")
        .str("handle", lockedHandle)
        .str("mode", "sat")
        .i64("conflict_budget", static_cast<std::int64_t>(kSatConflictBudget));
    if (!call(aw.finish(), reply)) return out;
    put(m, "sat_dips", reply.numberOr("dips", 0));
    put(m, "sat_decrypted", reply.boolOr("decrypted", false) ? 1 : 0);
    put(m, "sat_unsat_iter1",
        reply.boolOr("unsat_at_first_iteration", false) ? 1 : 0);
    put(m, "sat_key_unsat",
        reply.boolOr("key_constraints_unsat", false) ? 1 : 0);
    put(m, "sat_converged", reply.boolOr("converged", false) ? 1 : 0);
    put(m, "sat_budget_exhausted",
        reply.boolOr("budget_exhausted", false) ? 1 : 0);
  }
  finishMetrics(out);
  out.wallMs = runtime::wallMsNow() - t0;
  return out;
}

}  // namespace gkll::sweep
