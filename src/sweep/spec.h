// Sweep matrix specification: the scenario grid (designs x locks x
// attacks x repetitions) a distributed sweep runs, with a canonical
// enumeration order, canonical per-scenario keys and deterministic
// per-scenario seeds.
//
// The enumeration IS the contract: scenario index = position in
// enumerate() (design-major, then lock, then attack, then rep), and the
// scenario seed is taskSeed(masterSeed, index).  Any process that can
// parse the spec re-derives the same keys and seeds, which is what makes
// a killed-and-resumed sweep byte-identical to an uninterrupted one
// (DESIGN.md §14): work may be re-sharded arbitrarily across workers, but
// what each scenario *computes* is pinned by (spec, masterSeed) alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gkll::sweep {

/// A parsed lock descriptor.  String forms:
///   "none"            no lock (attack stages are skipped)
///   "xor:<bits>"      XOR/XNOR key gates [9]
///   "sarlock:<bits>"  SARLock point function (removal-attack prey)
///   "gk:<gks>"        glitch key-gates (paper Sec. IV)
///   "gkw:<gks>"       GKs with LUT withholding (paper Sec. V-D)
///   "hybrid:<g>x<k>"  g GKs + k conventional XOR keys (paper Sec. VI)
struct LockKind {
  enum Kind { kNone, kXor, kSarlock, kGk, kGkWithhold, kHybrid };
  Kind kind = kNone;
  int a = 0;  ///< key bits (xor/sarlock) or GK count (gk/gkw/hybrid)
  int b = 0;  ///< hybrid: conventional XOR key count
};

/// Parse a lock string; false (with *err set) on malformed input.
bool parseLock(const std::string& s, LockKind& out, std::string* err);

/// Attack strings: "none", "sat", "removal".
bool validAttack(const std::string& s);

/// One cell of the matrix, fully resolved.
struct ScenarioSpec {
  std::string design;  ///< any benchgen name (c17, s27, gen:1000x50, ...)
  std::string lock;    ///< LockKind string form
  std::string attack;  ///< "none" | "sat" | "removal"
  std::size_t rep = 0;
  std::size_t index = 0;      ///< canonical position in enumerate()
  std::uint64_t seed = 0;     ///< taskSeed(masterSeed, index)

  /// Canonical journal/queue key: "<design>|<lock>|<attack>|r<rep>".
  std::string key() const;
};

struct SweepSpec {
  std::vector<std::string> designs;
  std::vector<std::string> locks;    ///< LockKind string forms
  std::vector<std::string> attacks;  ///< "none" | "sat" | "removal"
  std::size_t reps = 1;
  std::uint64_t masterSeed = 1;

  /// Validate every axis value; false (with *err) on the first bad entry.
  bool validate(std::string* err) const;

  /// All scenarios in canonical order (design-major, then lock, attack,
  /// rep), with index and seed filled in.
  std::vector<ScenarioSpec> enumerate() const;

  /// One-line canonical form (sorted nothing — axis order is meaningful);
  /// the manifest the resume path compares against.
  std::string canonical() const;

  /// FNV-1a 64 of canonical() — cheap spec identity for manifests.
  std::uint64_t hash() const;
};

/// Filesystem-safe form of a scenario key ([A-Za-z0-9._-], rest -> '_');
/// used for claim-file names.  Collisions are acceptable there (a
/// collision only serialises two scenarios onto one worker).
std::string sanitizeKey(const std::string& key);

/// Split a comma-separated axis list ("c17,s27" -> {"c17","s27"}); empty
/// segments are dropped.
std::vector<std::string> splitList(const std::string& csv);

}  // namespace gkll::sweep
