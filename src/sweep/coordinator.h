// Sweep coordinator: shards a SweepSpec's scenario matrix across fork'd
// worker processes over the file-based WorkQueue, journals every
// completion crash-safely, resumes by replaying journals, and aggregates
// finished runs into deterministic artifacts (DESIGN.md §14).
//
// The resume/identity contract, which tests/test_sweep.cpp property-tests
// and the CI sweep-smoke job gates:
//
//   A sweep killed at ANY scenario boundary (SIGKILL included) and re-run
//   with the same spec produces BENCH_<name>.json and the CDF sidecar
//   BYTE-IDENTICAL to an uninterrupted run — regardless of worker count
//   or of which worker ran which scenario.
//
// What makes that hold:
//   - scenario metrics are pure functions of (spec, scenario seed)
//     (runner.h), so re-sharding changes nothing a record contains;
//   - completion is an append-only journal record (journal.w<i>.jsonl,
//     JournalOpenMode::kResume), so a kill loses at most the in-flight
//     scenario, never a finished one;
//   - aggregation reads records in canonical scenario order and derives
//     order-sensitive statistics (means) from that order, while
//     percentiles/CDFs come from LogHistogram snapshot merges whose
//     bucket counts are permutation-invariant by construction;
//   - wall-clock times are quarantined in a separate latency sidecar
//     that is NOT part of the identity contract;
//   - aggregate files are written to a temp name and rename()d, so a
//     crash during aggregation never leaves a torn artifact.
#pragma once

#include <cstdint>
#include <string>

#include "sweep/runner.h"
#include "sweep/spec.h"

namespace gkll::sweep {

struct SweepOptions {
  std::string dir;           ///< sweep directory (queue, journals, artifacts)
  std::string name = "sweep";///< artifact stem: BENCH_<name>.json etc.
  std::size_t workers = 0;   ///< 0 = run in-process; N = fork N workers
  /// Testing/CI fault injection: the FIRST worker raises SIGKILL on itself
  /// after completing this many new scenarios (-1 = off).  Forked mode
  /// only — an in-process SIGKILL would take the coordinator with it.
  int crashAfter = -1;
  /// Stop cleanly (exit incomplete) after this many new scenarios across
  /// the in-process worker (-1 = off).  The property test's kill-at-every-
  /// boundary knob.
  int stopAfter = -1;
  /// Backend: endpoint set => ServiceRunner (daemon), else LocalRunner.
  ServiceEndpoint service;
  bool quiet = false;  ///< suppress per-scenario progress lines
};

struct SweepOutcome {
  bool complete = false;  ///< every scenario journaled; artifacts written
  bool failed = false;    ///< a scenario errored — spec bug, do not resume
  std::size_t total = 0;
  std::size_t skipped = 0;  ///< already journaled before this run
  std::size_t ran = 0;      ///< newly completed by this run
  std::string aggregatePath;  ///< BENCH_<name>.json (when complete)
  std::string cdfPath;        ///< SWEEP_<name>.cdf.json (when complete)
  std::string latencyPath;    ///< SWEEP_<name>.latency.json (when complete)
  std::string error;
};

/// Run (or resume) a sweep.  Re-invoking with the same spec and dir after
/// any interruption continues where the journals left off; a spec that
/// does not match the directory's manifest is refused.
SweepOutcome runSweep(const SweepSpec& spec, const SweepOptions& opt);

/// CLI exit code for an outcome: 0 complete, 3 incomplete (resume by
/// re-running), 2 failed/config error.
int exitCodeFor(const SweepOutcome& outcome);

}  // namespace gkll::sweep
