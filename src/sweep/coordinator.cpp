#include "sweep/coordinator.h"

#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <unordered_map>

#include "obs/histogram.h"
#include "obs/journal.h"
#include "sweep/queue.h"
#include "util/json.h"

namespace gkll::sweep {

namespace {

std::string fmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Write `content` atomically: temp file + rename, so readers (and crash
/// recovery) never see a torn artifact.
bool writeFileAtomic(const std::string& path, const std::string& content,
                     std::string* err) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      if (err) *err = "cannot write " + tmp;
      return false;
    }
    f << content;
    if (!f.flush()) {
      if (err) *err = "short write to " + tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (err) *err = "rename " + tmp + " -> " + path + " failed";
    return false;
  }
  return true;
}

/// Render a sorted string->string field map as a flat JSON object with a
/// trailing newline.  Deterministic: iteration order is the map order.
std::string renderFlatJson(const std::map<std::string, std::string>& fields) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : fields) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + jsonEscape(k) + "\": " + v;
  }
  out += "\n}\n";
  return out;
}

std::string journalPathFor(const std::string& dir, std::size_t worker) {
  return dir + "/journal.w" + std::to_string(worker) + ".jsonl";
}

std::string manifestPath(const std::string& dir) {
  return dir + "/manifest.json";
}

/// Check (or create) the directory's spec manifest; refuse a spec that
/// does not match what the directory was started with — resuming a sweep
/// under a different matrix would silently aggregate mixed results.
bool checkManifest(const std::string& dir, const SweepSpec& spec,
                   const std::string& name, std::string* err) {
  const std::string path = manifestPath(dir);
  std::ifstream f(path, std::ios::binary);
  if (f) {
    std::ostringstream buf;
    buf << f.rdbuf();
    util::JsonValue v;
    if (!parseJson(buf.str(), v) || !v.isObject()) {
      *err = "unreadable sweep manifest " + path;
      return false;
    }
    if (v.stringOr("spec", "") != spec.canonical()) {
      *err = "sweep dir " + dir + " was started with a different spec:\n  " +
             v.stringOr("spec", "?") + "\nvs requested\n  " + spec.canonical();
      return false;
    }
    return true;
  }
  std::map<std::string, std::string> fields;
  fields["type"] = "\"sweep.manifest\"";
  fields["name"] = "\"" + jsonEscape(name) + "\"";
  fields["spec"] = "\"" + jsonEscape(spec.canonical()) + "\"";
  char hash[32];
  std::snprintf(hash, sizeof hash, "\"0x%016llx\"",
                static_cast<unsigned long long>(spec.hash()));
  fields["spec_hash"] = hash;
  return writeFileAtomic(path, renderFlatJson(fields), err);
}

struct CompletedRecord {
  std::size_t journalIndex = 0;  ///< which journal file (sorted order)
  util::JsonValue json;          ///< the scenario.done record
};

/// Replay every journal.w<i>.jsonl in the dir (numeric order) and collect
/// the first-seen record per scenario key.  Torn tails are tolerated —
/// that is the crash signature resume exists for.
bool readCompleted(const std::string& dir,
                   std::unordered_map<std::string, CompletedRecord>& out,
                   std::size_t& numJournals, std::string* err) {
  std::vector<std::pair<std::size_t, std::string>> files;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.rfind("journal.w", 0) != 0) continue;
      const std::size_t dot = name.find(".jsonl");
      if (dot == std::string::npos || dot + 6 != name.size()) continue;
      const std::string num = name.substr(9, dot - 9);
      if (num.empty() ||
          num.find_first_not_of("0123456789") != std::string::npos)
        continue;
      files.emplace_back(std::stoul(num), dir + "/" + name);
    }
    ::closedir(d);
  }
  std::sort(files.begin(), files.end());
  numJournals = files.size();
  for (std::size_t j = 0; j < files.size(); ++j) {
    obs::JournalReader r;
    if (!r.read(files[j].second)) {
      // An empty / headerless journal from a worker killed before its
      // first flush holds nothing to resume; skip it.
      continue;
    }
    for (const obs::JournalRecord* rec : r.scenarioDoneRecords()) {
      const std::string key = rec->json.stringOr("key", "");
      if (out.find(key) == out.end())
        out.emplace(key, CompletedRecord{j, rec->json});
    }
  }
  (void)err;
  return true;
}

/// One worker's claim-run-journal loop.  Exit codes: 0 = drained, 3 =
/// stopAfter reached (cleanly incomplete), 4 = journal unusable, 5 = a
/// scenario failed (spec bug — do not blindly resume).
int workerLoop(std::size_t workerIndex, const SweepOptions& opt,
               const std::vector<ScenarioSpec>& scenarios,
               const std::set<std::string>& completed, WorkQueue& queue) {
  obs::RunJournal journal;
  if (!journal.open(journalPathFor(opt.dir, workerIndex), "gkll_sweep", 0,
                    obs::JournalOpenMode::kResume)) {
    std::fprintf(stderr, "[sweep w%zu] cannot open journal\n", workerIndex);
    return 4;
  }
  std::unique_ptr<ScenarioRunner> runner;
  if (!opt.service.unixPath.empty() || opt.service.tcpPort != 0)
    runner = std::make_unique<ServiceRunner>(opt.service);
  else
    runner = std::make_unique<LocalRunner>();

  int done = 0;
  for (const ScenarioSpec& s : scenarios) {
    const std::string key = s.key();
    if (completed.count(key) != 0) continue;
    if (opt.stopAfter >= 0 && done >= opt.stopAfter)
      return 3;  // checked BEFORE claiming so stopAfter=0 runs nothing
    if (!queue.claim(key)) continue;  // another worker took it
    const ScenarioResult r = runner->run(s);
    if (!r.ok) {
      journal.record("scenario.error").str("key", key).str("error", r.error);
      std::fprintf(stderr, "[sweep w%zu] %s FAILED: %s\n", workerIndex,
                   key.c_str(), r.error.c_str());
      return 5;
    }
    {
      obs::RunJournal::Record rec = journal.record("scenario.done");
      rec.str("key", key)
          .i64("index", static_cast<std::int64_t>(s.index))
          .hex("seed", s.seed)
          .f64("wall_ms", r.wallMs);
      for (const auto& [mk, mv] : r.metrics) rec.f64("m_" + mk, mv);
    }  // record flushed here — the scenario is durable from this line on
    ++done;
    if (!opt.quiet)
      std::fprintf(stderr, "[sweep w%zu] done %s (%.0f ms)\n", workerIndex,
                   key.c_str(), r.wallMs);
    if (opt.crashAfter >= 0 && workerIndex == 0 && done >= opt.crashAfter) {
      // Fault injection: die the hard way, mid-run, with claims held.
      ::raise(SIGKILL);
    }
  }
  return 0;
}

/// Group key of a scenario: the matrix cell without the rep suffix.
std::string groupOf(const ScenarioSpec& s) {
  return s.design + "|" + s.lock + "|" + s.attack;
}

bool writeAggregates(const SweepSpec& spec, const SweepOptions& opt,
                     const std::vector<ScenarioSpec>& scenarios,
                     const std::unordered_map<std::string, CompletedRecord>&
                         completed,
                     std::size_t numJournals, SweepOutcome& outcome) {
  // --- per-scenario fields, canonical order --------------------------------
  std::map<std::string, std::string> bench;
  bench["name"] = "\"" + jsonEscape(opt.name) + "\"";
  char hash[32];
  std::snprintf(hash, sizeof hash, "\"0x%016llx\"",
                static_cast<unsigned long long>(spec.hash()));
  bench["spec_hash"] = hash;
  bench["scenarios"] = fmtDouble(static_cast<double>(scenarios.size()));

  // Group statistics.  Means accumulate in CANONICAL scenario order
  // (double addition is not permutation-invariant, so worker sharding must
  // not choose the order); percentiles and CDFs come from per-journal
  // LogHistograms merged via Snapshot::add — bucket counts are integers,
  // so the merge is permutation-invariant by construction.
  struct GroupStat {
    double sum = 0;
    std::uint64_t n = 0;
  };
  std::map<std::string, GroupStat> groupSums;  // "<group>.<metric>"
  using HistKey = std::string;                 // "<group>.<metric>"
  std::vector<std::map<HistKey, std::unique_ptr<obs::LogHistogram>>>
      perJournal(numJournals);
  obs::LogHistogram latency;  // wall_ms, all scenarios — sidecar only

  for (const ScenarioSpec& s : scenarios) {
    const auto it = completed.find(s.key());
    if (it == completed.end()) return false;  // caller guaranteed complete
    const util::JsonValue& rec = it->second.json;
    const std::string group = groupOf(s);
    latency.record(rec.numberOr("wall_ms", 0));
    for (const auto& [field, value] : rec.object) {
      if (field.rfind("m_", 0) != 0 || !value.isNumber()) continue;
      const std::string metric = field.substr(2);
      // Reps share per-scenario fields only through their distinct keys;
      // the group fields fold the reps together.
      bench["s." + s.key() + "." + metric] = fmtDouble(value.number);
      GroupStat& gs = groupSums[group + "." + metric];
      gs.sum += value.number;
      ++gs.n;
      auto& hists = perJournal[it->second.journalIndex];
      auto hit = hists.find(group + "." + metric);
      if (hit == hists.end())
        hit = hists
                  .emplace(group + "." + metric,
                           std::make_unique<obs::LogHistogram>())
                  .first;
      hit->second->record(value.number);
    }
  }

  // Merge per-journal snapshots (the cross-process LogHistogram seam).
  std::map<HistKey, obs::LogHistogram::Snapshot> merged;
  for (const auto& hists : perJournal)
    for (const auto& [hk, hist] : hists) merged[hk].add(hist->snapshot());

  std::map<std::string, std::string> cdf;
  cdf["name"] = "\"" + jsonEscape(opt.name) + "\"";
  cdf["spec_hash"] = hash;
  for (const auto& [hk, snap] : merged) {
    const GroupStat& gs = groupSums[hk];
    bench["g." + hk + "_mean"] =
        fmtDouble(gs.n > 0 ? gs.sum / static_cast<double>(gs.n) : 0.0);
    bench["g." + hk + "_p50"] = fmtDouble(snap.quantile(0.50));
    bench["g." + hk + "_p90"] = fmtDouble(snap.quantile(0.90));
    bench["g." + hk + "_p99"] = fmtDouble(snap.quantile(0.99));
    std::string arr = "[";
    bool first = true;
    for (const auto& [ub, frac] : snap.cdf()) {
      if (!first) arr += ",";
      first = false;
      arr += "[" + fmtDouble(ub) + "," + fmtDouble(frac) + "]";
    }
    arr += "]";
    cdf["g." + hk] = arr;
  }

  // Latency sidecar: real measured wall times — useful, NOT deterministic,
  // and deliberately not part of the byte-identity contract.
  std::map<std::string, std::string> lat;
  const obs::LogHistogram::Snapshot ls = latency.snapshot();
  lat["scenario_wall_ms_count"] = fmtDouble(static_cast<double>(ls.count));
  lat["scenario_wall_ms_mean"] = fmtDouble(ls.mean());
  lat["scenario_wall_ms_p50"] = fmtDouble(ls.quantile(0.50));
  lat["scenario_wall_ms_p90"] = fmtDouble(ls.quantile(0.90));
  lat["scenario_wall_ms_p99"] = fmtDouble(ls.quantile(0.99));

  outcome.aggregatePath = opt.dir + "/BENCH_" + opt.name + ".json";
  outcome.cdfPath = opt.dir + "/SWEEP_" + opt.name + ".cdf.json";
  outcome.latencyPath = opt.dir + "/SWEEP_" + opt.name + ".latency.json";
  return writeFileAtomic(outcome.aggregatePath, renderFlatJson(bench),
                         &outcome.error) &&
         writeFileAtomic(outcome.cdfPath, renderFlatJson(cdf),
                         &outcome.error) &&
         writeFileAtomic(outcome.latencyPath, renderFlatJson(lat),
                         &outcome.error);
}

}  // namespace

SweepOutcome runSweep(const SweepSpec& spec, const SweepOptions& opt) {
  SweepOutcome outcome;
  if (opt.dir.empty()) {
    outcome.failed = true;
    outcome.error = "sweep needs a --dir";
    return outcome;
  }
  if (!spec.validate(&outcome.error)) {
    outcome.failed = true;
    return outcome;
  }
  WorkQueue queue(opt.dir);
  if (!queue.ok()) {
    outcome.failed = true;
    outcome.error = queue.error();
    return outcome;
  }
  if (!checkManifest(opt.dir, spec, opt.name, &outcome.error)) {
    outcome.failed = true;
    return outcome;
  }

  const std::vector<ScenarioSpec> scenarios = spec.enumerate();
  outcome.total = scenarios.size();

  // Resume: everything already journaled is done forever.  Claims are
  // intra-run only — wipe them so claims from a killed worker generation
  // cannot shadow unfinished scenarios.
  std::unordered_map<std::string, CompletedRecord> completed;
  std::size_t numJournals = 0;
  readCompleted(opt.dir, completed, numJournals, &outcome.error);
  std::set<std::string> completedKeys;
  for (const ScenarioSpec& s : scenarios)
    if (completed.find(s.key()) != completed.end()) completedKeys.insert(s.key());
  outcome.skipped = completedKeys.size();
  queue.reset();

  bool workersOk = true;
  if (completedKeys.size() < scenarios.size()) {
    if (opt.workers == 0) {
      const int rc = workerLoop(0, opt, scenarios, completedKeys, queue);
      if (rc == 5 || rc == 4) {
        outcome.failed = true;
        outcome.error = rc == 5 ? "a scenario failed (see journal)"
                                : "cannot open worker journal";
      }
      workersOk = rc == 0;
    } else {
      // Fork BEFORE any thread pool exists: the coordinator does no
      // parallel work of its own, and each child builds its own pools.
      std::vector<pid_t> pids;
      for (std::size_t w = 0; w < opt.workers; ++w) {
        const pid_t pid = ::fork();
        if (pid == 0) {
          const int rc = workerLoop(w, opt, scenarios, completedKeys, queue);
          ::_exit(rc);
        }
        if (pid < 0) {
          outcome.failed = true;
          outcome.error = std::string("fork: ") + std::strerror(errno);
          break;
        }
        pids.push_back(pid);
      }
      for (const pid_t pid : pids) {
        int status = 0;
        if (::waitpid(pid, &status, 0) < 0) {
          workersOk = false;
          continue;
        }
        if (!WIFEXITED(status)) {
          // Killed (e.g. the crashAfter SIGKILL): incomplete, resumable.
          workersOk = false;
        } else if (WEXITSTATUS(status) == 5 || WEXITSTATUS(status) == 4) {
          workersOk = false;
          outcome.failed = true;
          outcome.error = "a worker reported a failed scenario (see journals)";
        } else if (WEXITSTATUS(status) != 0) {
          workersOk = false;
        }
      }
    }
  }

  // Re-read the journals: the only source of truth for what finished.
  completed.clear();
  readCompleted(opt.dir, completed, numJournals, &outcome.error);
  std::size_t nowDone = 0;
  for (const ScenarioSpec& s : scenarios)
    if (completed.find(s.key()) != completed.end()) ++nowDone;
  outcome.ran = nowDone - outcome.skipped;

  if (nowDone == scenarios.size() && !outcome.failed) {
    if (writeAggregates(spec, opt, scenarios, completed, numJournals,
                        outcome))
      outcome.complete = true;
    else if (outcome.error.empty())
      outcome.error = "aggregation failed";
  } else if (!outcome.failed && !workersOk) {
    outcome.error = "interrupted: " +
                    std::to_string(scenarios.size() - nowDone) +
                    " scenario(s) outstanding — re-run to resume";
  } else if (!outcome.failed && outcome.error.empty() &&
             nowDone < scenarios.size()) {
    outcome.error = std::to_string(scenarios.size() - nowDone) +
                    " scenario(s) outstanding — re-run to resume";
  }
  return outcome;
}

int exitCodeFor(const SweepOutcome& outcome) {
  if (outcome.complete) return 0;
  if (outcome.failed) return 2;
  return 3;
}

}  // namespace gkll::sweep
