// File-based work queue for the sweep grid: one claim file per scenario,
// taken with open(O_CREAT|O_EXCL) — the one filesystem primitive that is
// atomic on every local filesystem and over NFSv3+.  Workers race to
// claim; exactly one wins; there is no coordinator in the claim path.
//
// Claims are INTRA-RUN state only.  Completion is recorded in the
// workers' run journals (the durable artifact); the coordinator wipes the
// claims directory before every worker generation, so a claim left behind
// by a crashed worker can never shadow unfinished work on resume
// (DESIGN.md §14).
#pragma once

#include <string>
#include <vector>

namespace gkll::sweep {

class WorkQueue {
 public:
  /// `dir` is the queue directory (created if missing, along with its
  /// claims/ subdirectory).  ok() is false when creation failed.
  explicit WorkQueue(const std::string& dir);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  const std::string& dir() const { return dir_; }

  /// Atomically claim `key` for this process.  True exactly once per key
  /// per queue generation, across any number of racing processes.
  bool claim(const std::string& key);

  /// Delete every claim file — start a new claim generation.  Call only
  /// while no worker is running.
  bool reset();

  /// Sanitised names of currently claimed keys (diagnostic).
  std::vector<std::string> claimed() const;

 private:
  std::string claimPath(const std::string& key) const;

  std::string dir_;
  std::string claimsDir_;
  bool ok_ = false;
  std::string error_;
};

}  // namespace gkll::sweep
