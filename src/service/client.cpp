#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gkll::service {

ServiceClient::~ServiceClient() { close(); }

ServiceClient::ServiceClient(ServiceClient&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      error_(std::move(o.error_)),
      stats_(std::exchange(o.stats_, {})) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    error_ = std::move(o.error_);
    stats_ = std::exchange(o.stats_, {});
  }
  return *this;
}

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ServiceClient::connectUnix(const std::string& path) {
  close();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    error_ = "unix socket path too long: " + path;
    ::close(fd);
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    error_ = "connect " + path + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool ServiceClient::connectTcp(int port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    error_ = "connect 127.0.0.1:" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool ServiceClient::request(const std::string& payload, std::string& response) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  if (!writeFrame(fd_, payload)) {
    error_ = std::string("send: ") + std::strerror(errno);
    close();
    return false;
  }
  std::string err;
  const ReadStatus rs = readFrame(fd_, response, &err, maxFrameBytes);
  if (rs != ReadStatus::kOk) {
    error_ = rs == ReadStatus::kEof ? "server closed the connection" : err;
    close();
    return false;
  }
  stats_.requests += 1;
  stats_.bytesSent += payload.size() + sizeof(std::uint32_t);
  stats_.bytesReceived += response.size() + sizeof(std::uint32_t);
  return true;
}

}  // namespace gkll::service
