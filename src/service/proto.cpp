#include "service/proto.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace gkll::service {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::key(std::string_view k) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += jsonEscape(k);
  out_ += "\":";
}

JsonWriter& JsonWriter::str(std::string_view k, std::string_view v) {
  key(k);
  out_ += '"';
  out_ += jsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::i64(std::string_view k, std::int64_t v) {
  key(k);
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::u64(std::string_view k, std::uint64_t v) {
  key(k);
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::num(std::string_view k, double v) {
  key(k);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::boolean(std::string_view k, bool v) {
  key(k);
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view k, std::string_view rawJson) {
  key(k);
  out_ += rawJson;
  return *this;
}

JsonWriter& JsonWriter::hash(std::string_view k, std::uint64_t v) {
  return str(k, hashHandle(v));
}

std::string JsonWriter::finish() {
  out_ += '}';
  return std::move(out_);
}

std::string hashHandle(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string encodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 4);
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  out += static_cast<char>((n >> 24) & 0xff);
  out += static_cast<char>((n >> 16) & 0xff);
  out += static_cast<char>((n >> 8) & 0xff);
  out += static_cast<char>(n & 0xff);
  out.append(payload.data(), payload.size());
  return out;
}

void FrameDecoder::feed(std::string_view bytes) {
  if (failed_) return;
  // Compact the consumed prefix before it grows unbounded.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (1u << 20)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

FrameDecoder::Status FrameDecoder::next(std::string& payload) {
  if (failed_) return Status::kError;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return Status::kNeedMore;
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  const std::uint32_t n = (std::uint32_t(p[0]) << 24) |
                          (std::uint32_t(p[1]) << 16) |
                          (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
  if (n > max_) {
    failed_ = true;
    error_ = "frame length " + std::to_string(n) + " exceeds limit " +
             std::to_string(max_);
    return Status::kError;
  }
  if (avail < 4u + n) return Status::kNeedMore;
  payload.assign(buf_, pos_ + 4, n);
  pos_ += 4u + n;
  return Status::kFrame;
}

bool writeAll(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool writeFrame(int fd, std::string_view payload) {
  const std::string frame = encodeFrame(payload);
  return writeAll(fd, frame.data(), frame.size());
}

namespace {

/// Read exactly n bytes; distinguishes clean EOF at offset 0 from a
/// mid-buffer truncation.
enum class FillStatus { kOk, kEofAtStart, kTruncated, kIoError };

FillStatus readExact(int fd, char* dst, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, dst + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return FillStatus::kIoError;
    }
    if (r == 0) return got == 0 ? FillStatus::kEofAtStart : FillStatus::kTruncated;
    got += static_cast<std::size_t>(r);
  }
  return FillStatus::kOk;
}

}  // namespace

ReadStatus readFrame(int fd, std::string& payload, std::string* err,
                     std::uint32_t maxFrameBytes) {
  unsigned char hdr[4];
  switch (readExact(fd, reinterpret_cast<char*>(hdr), 4)) {
    case FillStatus::kOk:
      break;
    case FillStatus::kEofAtStart:
      return ReadStatus::kEof;
    case FillStatus::kTruncated:
      if (err) *err = "truncated frame header";
      return ReadStatus::kError;
    case FillStatus::kIoError:
      if (err) *err = std::string("read: ") + std::strerror(errno);
      return ReadStatus::kError;
  }
  const std::uint32_t n = (std::uint32_t(hdr[0]) << 24) |
                          (std::uint32_t(hdr[1]) << 16) |
                          (std::uint32_t(hdr[2]) << 8) | std::uint32_t(hdr[3]);
  if (n > maxFrameBytes) {
    if (err)
      *err = "frame length " + std::to_string(n) + " exceeds limit " +
             std::to_string(maxFrameBytes);
    return ReadStatus::kError;
  }
  payload.resize(n);
  if (n > 0) {
    switch (readExact(fd, payload.data(), n)) {
      case FillStatus::kOk:
        break;
      case FillStatus::kEofAtStart:
      case FillStatus::kTruncated:
        if (err) *err = "truncated frame payload";
        return ReadStatus::kError;
      case FillStatus::kIoError:
        if (err) *err = std::string("read: ") + std::strerror(errno);
        return ReadStatus::kError;
    }
  }
  return ReadStatus::kOk;
}

}  // namespace gkll::service
